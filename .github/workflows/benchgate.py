#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Usage: benchgate.py base.txt head.txt max_regression_percent

Parses `go test -bench` output (several -count repetitions per benchmark),
takes the median per benchmark name of every metric present — ns/op always,
B/op and allocs/op when the run used -benchmem — and fails when any
benchmark present in both files regressed by more than the threshold on any
metric. A benchmark whose base allocates nothing must keep allocating
nothing: a zero-base B/op or allocs/op regression fails outright, because a
percentage of zero can never trip the threshold. Medians make the gate
robust to the occasional noisy repetition on shared CI runners; the
human-readable comparison is printed by benchstat in the step before.
"""
import re
import statistics
import sys

NAME = re.compile(r"^(Benchmark\S+)\s+\d+\s")
METRICS = ("ns/op", "B/op", "allocs/op")
# Benchmarks may interleave custom ReportMetric columns (points, routers,
# ...) between ns/op and the -benchmem pair, so each metric is located
# anywhere on the line rather than positionally.
VALUE = {m: re.compile(r"([0-9.e+]+) " + re.escape(m) + r"(?:\s|$)")
         for m in METRICS}


def load(path):
    """Parse one bench file into {benchmark: {metric: median}}."""
    runs = {}
    with open(path) as f:
        for line in f:
            m = NAME.match(line)
            if not m:
                continue
            per = runs.setdefault(m.group(1), {})
            for metric, rx in VALUE.items():
                v = rx.search(line)
                if v:
                    per.setdefault(metric, []).append(float(v.group(1)))
    return {name: {metric: statistics.median(vals)
                   for metric, vals in per.items()}
            for name, per in runs.items()}


def main():
    base, head, limit = sys.argv[1], sys.argv[2], float(sys.argv[3])
    old, new = load(base), load(head)
    if not new:
        # The head must always produce benchmarks; an empty parse means the
        # bench run or this parser broke, and passing silently would let an
        # arbitrary regression through.
        print(f"benchgate: no benchmarks parsed from head file {head}")
        return 1
    shared = sorted(set(old) & set(new))
    if not shared:
        # An empty base is the bootstrap case (benchmarks renamed or newly
        # introduced on this PR); nothing to compare yet.
        print("benchgate: no common benchmarks between base and head; skipping")
        return 0
    failed = []
    compared = 0
    for name in shared:
        for metric in METRICS:
            if metric not in old[name] or metric not in new[name]:
                continue  # base predates -benchmem; ns/op still gates
            compared += 1
            o, n = old[name][metric], new[name][metric]
            if o == 0:
                # Nothing to take a percentage of: a zero base may only
                # stay zero (new allocations on an allocation-free path
                # are a regression whatever the threshold).
                if n > 0:
                    failed.append(f"{name} ({metric})")
                    print(f"{name:60s} {o:14.0f} -> {n:14.0f} {metric} "
                          f"  << regressed from zero")
                continue
            delta = (n - o) / o * 100
            marker = ""
            if delta > limit:
                failed.append(f"{name} ({metric})")
                marker = f"  << exceeds +{limit:.0f}% limit"
            print(f"{name:60s} {o:14.0f} -> {n:14.0f} {metric:9s} "
                  f"({delta:+7.2f}%){marker}")
    if failed:
        print(f"\nbenchgate: {len(failed)} metric(s) regressed more than "
              f"{limit:.0f}%: {', '.join(failed)}")
        return 1
    print(f"\nbenchgate: OK ({compared} metrics across {len(shared)} "
          f"benchmarks within +{limit:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
