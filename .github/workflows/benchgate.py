#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Usage: benchgate.py base.txt head.txt max_regression_percent

Parses `go test -bench` output (several -count repetitions per benchmark),
takes the median ns/op per benchmark name, and fails when any benchmark
present in both files regressed by more than the threshold. Medians make
the gate robust to the occasional noisy repetition on shared CI runners;
the human-readable comparison is printed by benchstat in the step before.
"""
import re
import statistics
import sys

LINE = re.compile(r"^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op")


def load(path):
    runs = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                runs.setdefault(m.group(1), []).append(float(m.group(2)))
    return {name: statistics.median(vals) for name, vals in runs.items()}


def main():
    base, head, limit = sys.argv[1], sys.argv[2], float(sys.argv[3])
    old, new = load(base), load(head)
    if not new:
        # The head must always produce benchmarks; an empty parse means the
        # bench run or this parser broke, and passing silently would let an
        # arbitrary regression through.
        print(f"benchgate: no benchmarks parsed from head file {head}")
        return 1
    shared = sorted(set(old) & set(new))
    if not shared:
        # An empty base is the bootstrap case (benchmarks renamed or newly
        # introduced on this PR); nothing to compare yet.
        print("benchgate: no common benchmarks between base and head; skipping")
        return 0
    failed = []
    for name in shared:
        delta = (new[name] - old[name]) / old[name] * 100
        marker = ""
        if delta > limit:
            failed.append(name)
            marker = f"  << exceeds +{limit:.0f}% limit"
        print(f"{name:60s} {old[name]:14.0f} -> {new[name]:14.0f} ns/op "
              f"({delta:+7.2f}%){marker}")
    if failed:
        print(f"\nbenchgate: {len(failed)} benchmark(s) regressed more than "
              f"{limit:.0f}%: {', '.join(failed)}")
        return 1
    print(f"\nbenchgate: OK ({len(shared)} benchmarks within +{limit:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
