#!/usr/bin/env python3
"""Ratcheted coverage gate.

Usage: covgate.py <coverprofile> <floor-file>

Computes statement coverage (total and per package) from a Go cover
profile, writes a per-package markdown report to $GITHUB_STEP_SUMMARY
(stdout when unset), and fails when total coverage drops below the
committed floor. The floor is a ratchet: raise it in <floor-file> as
coverage grows, so refactors cannot silently shed tests.
"""
import os
import sys
from collections import defaultdict


def parse_profile(path):
    """Per-package and total (covered, total) statement counts."""
    pkg = defaultdict(lambda: [0, 0])
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("mode:"):
                continue
            # sldf/internal/core/sweep.go:31.44,36.2 3 1
            loc, stmts, count = line.rsplit(" ", 2)
            name = loc.split(":")[0]
            p = name.rsplit("/", 1)[0]
            n = int(stmts)
            pkg[p][1] += n
            if int(count) > 0:
                pkg[p][0] += n
    return pkg


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    profile, floor_file = sys.argv[1], sys.argv[2]
    with open(floor_file) as f:
        floor = float(f.read().strip())

    pkg = parse_profile(profile)
    covered = sum(c for c, _ in pkg.values())
    total = sum(t for _, t in pkg.values())
    pct = 100.0 * covered / total if total else 0.0

    lines = ["## Coverage", "", "| package | statements | coverage |", "|---|---:|---:|"]
    for p in sorted(pkg):
        c, t = pkg[p]
        lines.append(f"| {p} | {t} | {100.0 * c / t:.1f}% |")
    lines.append(f"| **total** | **{total}** | **{pct:.1f}%** |")
    lines.append("")
    lines.append(f"Floor: {floor:.1f}% (`.github/workflows/coverage-floor.txt`)")
    report = "\n".join(lines) + "\n"

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(report)
    print(report)

    if pct < floor:
        print(f"FAIL: total coverage {pct:.1f}% is below the {floor:.1f}% floor")
        sys.exit(1)
    print(f"OK: total coverage {pct:.1f}% >= floor {floor:.1f}%")
    if pct - floor > 1.5:
        print(
            f"note: coverage exceeds the floor by {pct - floor:.1f} points; "
            "consider ratcheting coverage-floor.txt up"
        )


if __name__ == "__main__":
    main()
