# Development and CI entry points. CI calls these targets instead of
# inlining commands so the lint toolchain is pinned in exactly one
# place and a local `make lint` reproduces the CI lint job bit for bit.

# staticcheck floats its minimum Go at @latest; pin it here (the only
# place) and bump deliberately.
STATICCHECK_VERSION := v0.6.1

GO ?= go
BIN := bin

.PHONY: build test race fmt fmt-check vet lint staticcheck sldfcheck seeded-selftest FORCE

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-stress the concurrency-heavy surfaces: the netsim engine's
# parallel flow solver and the campaign scheduler's churn/remote
# machinery. -count=2 reruns every test to widen the interleaving net.
race:
	$(GO) test -race -count=2 ./internal/netsim/ ./internal/campaign/...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The full lint stack, in the order CI runs it.
lint: fmt-check vet sldfcheck seeded-selftest staticcheck

$(BIN)/sldfcheck: FORCE
	$(GO) build -o $(BIN)/sldfcheck ./cmd/sldfcheck

FORCE:

# The repo's own invariant analyzers (internal/check): determinism,
# hot-path allocations, cache-key completeness, sentinel-error
# comparisons. Gating — any diagnostic fails the target.
sldfcheck: $(BIN)/sldfcheck
	$(GO) vet -vettool=$(abspath $(BIN)/sldfcheck) ./...

# Prove the gate has teeth: a module seeded with one violation per
# analyzer must FAIL sldfcheck. A checker that silently stopped firing
# would otherwise look exactly like a clean tree.
seeded-selftest: $(BIN)/sldfcheck
	@out="$$(cd internal/check/testdata/seeded && $(GO) vet -vettool=$(abspath $(BIN)/sldfcheck) ./... 2>&1)"; \
	if [ $$? -eq 0 ]; then \
		echo "seeded-violation module unexpectedly passed sldfcheck"; exit 1; \
	fi; \
	echo "sldfcheck caught the seeded violations:"; echo "$$out"

# Requires network on first run (go install); the version is pinned
# above so local and CI runs agree.
staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...
