// Benchmark harness: one benchmark per paper table/figure plus simulator
// kernel micro-benchmarks and design-choice ablations. Each figure bench
// runs a scaled-down version of the corresponding experiment and reports
// the headline quantity (saturation rate, accepted throughput, pJ/bit) as
// custom benchmark metrics, so `go test -bench=.` regenerates the shape of
// the paper's evaluation.
package sldf_test

import (
	"fmt"
	"testing"

	"sldf/internal/analysis"
	"sldf/internal/core"
	"sldf/internal/cost"
	"sldf/internal/engine"
	"sldf/internal/layout"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
	"sldf/internal/traffic"
)

// benchSim is the per-iteration simulation window used by figure benches.
func benchSim() core.SimParams {
	return core.SimParams{Warmup: 200, Measure: 400, ExtraDrain: 200, PacketSize: 4}
}

// measure runs one load point and reports throughput/latency metrics.
func measure(b *testing.B, cfg core.Config, pattern string, rate float64) metrics.Point {
	b.Helper()
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor(pattern)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.MeasureLoad(pat, rate, benchSim())
	if err != nil {
		b.Fatal(err)
	}
	return res.Point
}

// --- Tables ---------------------------------------------------------------

func BenchmarkTable1ChipSurvey(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		for _, c := range cost.TableI() {
			tput += c.ThroughputTb()
		}
	}
	b.ReportMetric(tput/float64(b.N), "Tb/s-total")
}

func BenchmarkTable2HopCosts(b *testing.B) {
	var e float64
	for i := 0; i < b.N; i++ {
		for _, c := range analysis.TableII() {
			e += c.EnergyPJ
		}
	}
	_ = e
}

func BenchmarkTable3Comparison(b *testing.B) {
	var rows []cost.Row
	for i := 0; i < b.N; i++ {
		rows = cost.TableIII()
	}
	sl, sw := rows[7], rows[8]
	b.ReportMetric(float64(sl.Cabinets)/float64(sw.Cabinets), "cabinet-reduction")
	b.ReportMetric(sw.CableLengthE()/sl.CableLengthE(), "cable-ratio")
}

func BenchmarkTable4Equations(b *testing.B) {
	// The analytical model itself (Eqs. 1-7) across the balanced family.
	var n int
	for i := 0; i < b.N; i++ {
		for m := 2; m <= 8; m++ {
			p := analysis.Balanced(m)
			n += p.Terminals()
		}
	}
	_ = n
}

// --- Figures ---------------------------------------------------------------

func BenchmarkFig9Layout(b *testing.B) {
	var r layout.Report
	var err error
	for i := 0; i < b.N; i++ {
		r, err = layout.PaperPlan().Analyze()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BisectionTBs, "TB/s-bisection")
	b.ReportMetric(float64(r.DiffPairs), "diff-pairs")
}

func BenchmarkFig10IntraCGroup(b *testing.B) {
	// Fig. 10(a): mesh C-group vs single switch under uniform traffic at an
	// offered load above the switch's capacity.
	var meshT, swT float64
	for i := 0; i < b.N; i++ {
		swT = measure(b, core.Config{Kind: core.SingleSwitch, Terminals: 4, Seed: 1},
			"uniform", 2.5).Throughput
		meshT = measure(b, core.Config{Kind: core.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1},
			"uniform", 2.5).Throughput
	}
	b.ReportMetric(swT, "switch-flits/cyc/chip")
	b.ReportMetric(meshT, "mesh-flits/cyc/chip")
	b.ReportMetric(meshT/swT, "speedup")
}

func BenchmarkFig10Local(b *testing.B) {
	// Fig. 10(c): intra-W-group uniform at 1.4 flits/cycle/chip (above the
	// switch-based cap of 1).
	swb := core.Config{Kind: core.SwitchDragonfly, DF: core.Radix16DF(), Seed: 1}
	swb.DF.G = 1
	swl := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	swl.SLDF.G = 1
	var base, less float64
	for i := 0; i < b.N; i++ {
		base = measure(b, swb, "uniform", 1.4).Throughput
		less = measure(b, swl, "uniform", 1.4).Throughput
	}
	b.ReportMetric(base, "sw-based-flits/cyc/chip")
	b.ReportMetric(less, "sw-less-flits/cyc/chip")
}

func BenchmarkFig11Global(b *testing.B) {
	// Fig. 11(a): the full radix-16 system (1312 chips) under global
	// uniform traffic near the switch-based knee.
	swb := core.Config{Kind: core.SwitchDragonfly, DF: core.Radix16DF(), Seed: 1}
	swl2 := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		IntraWidth: 2, Seed: 1}
	var base, less metrics.Point
	for i := 0; i < b.N; i++ {
		base = measure(b, swb, "uniform", 0.7)
		less = measure(b, swl2, "uniform", 0.7)
	}
	b.ReportMetric(base.Latency, "sw-based-latency")
	b.ReportMetric(less.Latency, "sw-less-2B-latency")
}

func BenchmarkFig12Scalability(b *testing.B) {
	// Fig. 12(b): the larger radix-24 stand-in; the 1B mesh bisection
	// bottleneck vs the 2B fix.
	swl := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix24SLDF(), Seed: 1}
	swl2 := swl
	swl2.IntraWidth = 2
	var t1, t2 float64
	for i := 0; i < b.N; i++ {
		t1 = measure(b, swl, "uniform", 0.6).Throughput
		t2 = measure(b, swl2, "uniform", 0.6).Throughput
	}
	b.ReportMetric(t1, "1B-flits/cyc/chip")
	b.ReportMetric(t2, "2B-flits/cyc/chip")
}

func BenchmarkFig13Adversarial(b *testing.B) {
	// Fig. 13(b): worst-case Wi→Wi+1, minimal vs Valiant, radix-16.
	cfgMin := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	cfgVal := cfgMin
	cfgVal.Mode = routing.Valiant
	var tMin, tVal float64
	for i := 0; i < b.N; i++ {
		tMin = measure(b, cfgMin, "worst-case", 0.2).Throughput
		tVal = measure(b, cfgVal, "worst-case", 0.2).Throughput
	}
	b.ReportMetric(tMin, "minimal-flits/cyc/chip")
	b.ReportMetric(tVal, "valiant-flits/cyc/chip")
	b.ReportMetric(tVal/tMin, "valiant-gain")
}

func BenchmarkFig14AllReduce(b *testing.B) {
	// Fig. 14(a): bidirectional ring on the C-group mesh vs the switch.
	var sw, mesh float64
	for i := 0; i < b.N; i++ {
		sw = measure(b, core.Config{Kind: core.SingleSwitch, Terminals: 4, Seed: 1},
			"ring-bidir", 3.0).Throughput
		mesh = measure(b, core.Config{Kind: core.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1},
			"ring-bidir", 3.0).Throughput
	}
	b.ReportMetric(sw, "switch-flits/cyc/chip")
	b.ReportMetric(mesh, "mesh-flits/cyc/chip")
}

func BenchmarkFig15Energy(b *testing.B) {
	// Fig. 15(a): energy per transmission, switch-based vs switch-less,
	// radix-16 uniform at 0.3.
	swb := core.Config{Kind: core.SwitchDragonfly, DF: core.Radix16DF(), Seed: 1}
	swl := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	var eb, el float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			cfg core.Config
			out *float64
		}{{swb, &eb}, {swl, &el}} {
			sys, err := core.Build(c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			pat, _ := sys.PatternFor("uniform")
			res, err := sys.MeasureLoad(pat, 0.3, benchSim())
			sys.Close()
			if err != nil {
				b.Fatal(err)
			}
			st := res.Stats
			*c.out = st.MeanHops(netsim.HopOnChip)*1 + st.MeanHops(netsim.HopShortReach)*1 +
				st.MeanHops(netsim.HopLongLocal)*20 + st.MeanHops(netsim.HopGlobal)*20
		}
	}
	b.ReportMetric(eb, "sw-based-pJ/bit")
	b.ReportMetric(el, "sw-less-pJ/bit")
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationVCScheme(b *testing.B) {
	// Baseline (4 VC, XY) vs reduced (3 VC, restricted row-column-row)
	// under single-W-group uniform traffic: the VC saving costs throughput.
	base := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	base.SLDF.G = 1
	red := base
	red.Scheme = routing.ReducedVC
	var tb, tr float64
	for i := 0; i < b.N; i++ {
		tb = measure(b, base, "uniform", 1.2).Throughput
		tr = measure(b, red, "uniform", 1.2).Throughput
	}
	b.ReportMetric(tb, "baseline4vc-flits/cyc/chip")
	b.ReportMetric(tr, "reduced3vc-flits/cyc/chip")
}

func BenchmarkAblationMisrouteRestriction(b *testing.B) {
	// Unrestricted Valiant (4 VCs) vs restricted-lower Valiant (3 VCs,
	// paper Sec. IV-B) under the worst-case pattern: the VC saving costs
	// some path diversity (destinations with low indices have few or no
	// admissible intermediates).
	val := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		Scheme: routing.ReducedVC, Mode: routing.Valiant, Seed: 1}
	low := val
	low.Mode = routing.ValiantLower
	var tv, tl float64
	for i := 0; i < b.N; i++ {
		tv = measure(b, val, "worst-case", 0.2).Throughput
		tl = measure(b, low, "worst-case", 0.2).Throughput
	}
	b.ReportMetric(tv, "valiant4vc-flits/cyc/chip")
	b.ReportMetric(tl, "lower3vc-flits/cyc/chip")
}

func BenchmarkAblationIntraWidth(b *testing.B) {
	// 1B vs 2B vs 4B intra-C-group bandwidth on global uniform (radix-16).
	for _, w := range []int32{1, 2, 4} {
		cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
			IntraWidth: w, Seed: 1}
		cfg.SLDF.G = 1
		var t float64
		b.Run(map[int32]string{1: "1B", 2: "2B", 4: "4B"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t = measure(b, cfg, "uniform", 1.5).Throughput
			}
			b.ReportMetric(t, "flits/cyc/chip")
		})
	}
}

func BenchmarkAblationPortLayout(b *testing.B) {
	// Perimeter vs south-north port attachment under the baseline scheme.
	peri := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	peri.SLDF.G = 1
	sn := peri
	sn.SLDF.Layout = topology.LayoutSouthNorth
	var tp, ts float64
	for i := 0; i < b.N; i++ {
		tp = measure(b, peri, "uniform", 1.2).Throughput
		ts = measure(b, sn, "uniform", 1.2).Throughput
	}
	b.ReportMetric(tp, "perimeter-flits/cyc/chip")
	b.ReportMetric(ts, "southnorth-flits/cyc/chip")
}

// --- Campaign runner --------------------------------------------------------

// BenchmarkCampaignParallel tracks the sweep/campaign layer's speedup: the
// same multi-point single-W-group sweep run serially and with 4 concurrent
// point jobs (each simulation single-threaded so the comparison isolates
// the campaign fan-out). The jobs4 variant should run several times faster
// per op than jobs1 on a multi-core machine; results are identical. The
// lowest-point variant measures only the grid's lowest rate, where the
// active-set engine skips nearly every router and link.
func BenchmarkCampaignParallel(b *testing.B) {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		Seed: 1, Workers: 1}
	cfg.SLDF.G = 1
	rates := core.RateGrid(0.2, 1.6, 0.2)
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			var sat float64
			for i := 0; i < b.N; i++ {
				s, err := core.SweepOpts(cfg, "uniform", rates, benchSim(),
					core.RunOptions{Jobs: jobs})
				if err != nil {
					b.Fatal(err)
				}
				sat = s.Saturation(3)
			}
			b.ReportMetric(sat, "saturation")
			b.ReportMetric(float64(len(rates)), "points")
		})
	}
	// Eight copies of the grid's lowest rate: the campaign worker builds
	// once and resets between points, so this isolates the per-point cost
	// at the rate where the active-set engine skips nearly everything.
	low := make([]float64, 8)
	for i := range low {
		low[i] = rates[0]
	}
	b.Run("lowest-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepOpts(cfg, "uniform", low, benchSim(),
				core.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCampaignReset tracks the system-reuse win: measuring a load
// point on a reset network vs paying a fresh construction per point, at
// the sweep grid's lowest rate (mostly quiescent network) and near the
// saturation knee.
func BenchmarkCampaignReset(b *testing.B) {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		Seed: 1, Workers: 1}
	cfg.SLDF.G = 1
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	pat, _ := sys.PatternFor("uniform")
	for _, rate := range []float64{0.2, 0.8} {
		b.Run(fmt.Sprintf("rate%.1f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys.Reset()
				if _, err := sys.MeasureLoad(pat, rate, benchSim()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Flow solver ------------------------------------------------------------

// flowBenchSim is benchSim under the analytical engine.
func flowBenchSim() core.SimParams {
	sp := benchSim()
	sp.Engine = netsim.EngineFlow
	return sp
}

// BenchmarkFlowSolve times one analytical load point on the full radix-16
// system (1312 chips), cold (route-trace cache discarded every solve) vs
// warm (traces reused across Reset — the build-once/measure-many sweep
// configuration). The warm/cold ratio is the cache's per-point win.
func BenchmarkFlowSolve(b *testing.B) {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		Seed: 1, Workers: 1}
	for _, mode := range []struct {
		name string
		cold bool
	}{{"cold", true}, {"warm", false}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := core.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			pat, _ := sys.PatternFor("uniform")
			sp := flowBenchSim()
			sp.FlowCold = mode.cold
			if _, err := sys.MeasureLoad(pat, 0.5, sp); err != nil {
				b.Fatal(err) // populate the cache (and retained buffers) once
			}
			sys.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.MeasureLoad(pat, 0.5, sp); err != nil {
					b.Fatal(err)
				}
				sys.Reset()
			}
			fs := sys.Net.FlowSolverStats()
			b.ReportMetric(float64(fs.Traces)/float64(fs.Solves), "traces/solve")
		})
	}
}

// BenchmarkFlowSweepWarm times a full analytical rate-grid sweep on one
// system, cold vs warm: the warm variant traces the grid's routes once at
// the first point and serves every later point from the cache.
func BenchmarkFlowSweepWarm(b *testing.B) {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(),
		Seed: 1, Workers: 1}
	rates := core.RateGrid(0.1, 0.8, 0.1)
	for _, mode := range []struct {
		name string
		cold bool
	}{{"cold", true}, {"warm", false}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := core.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			pat, _ := sys.PatternFor("uniform")
			sp := flowBenchSim()
			sp.FlowCold = mode.cold
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, rate := range rates {
					if _, err := sys.MeasureLoad(pat, rate, sp); err != nil {
						b.Fatal(err)
					}
					sys.Reset()
				}
			}
			b.ReportMetric(float64(len(rates)), "points")
		})
	}
}

// --- Simulator kernel -------------------------------------------------------

// benchStep times one simulator cycle at steady state on the single-W-group
// system, for the given cycle engine and offered load. Low rates are where
// sweeps spend most of their points; the active-set engine's advantage
// comes from skipping the quiescent majority of routers and links there.
func benchStep(b *testing.B, kind netsim.EngineKind, rate float64) {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1,
		Workers: 1}
	cfg.SLDF.G = 1
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.Net.SetEngine(kind)
	pat, _ := sys.PatternFor("uniform")
	gen := traffic.NewRate(pat, rate, 4, sys.NodesPerChip)
	sys.Net.SetTraffic(gen, 4, netsim.DstSameIndex)
	for i := 0; i < 2000; i++ { // reach steady state before timing
		sys.Net.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Net.Step()
	}
	b.ReportMetric(float64(len(sys.Net.Routers)), "routers")
}

func BenchmarkStepActiveSet(b *testing.B) {
	for _, rate := range []float64{0.2, 0.8} {
		b.Run(fmt.Sprintf("rate%.1f", rate), func(b *testing.B) {
			benchStep(b, netsim.EngineActiveSet, rate)
		})
	}
}

func BenchmarkStepReference(b *testing.B) {
	for _, rate := range []float64{0.2, 0.8} {
		b.Run(fmt.Sprintf("rate%.1f", rate), func(b *testing.B) {
			benchStep(b, netsim.EngineReference, rate)
		})
	}
}

func BenchmarkKernelCycle(b *testing.B) {
	// Raw simulator speed: router-cycles per second on the single-W-group
	// system under uniform load.
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1}
	cfg.SLDF.G = 1
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	pat, _ := sys.PatternFor("uniform")
	gen := traffic.NewRate(pat, 0.8, 4, sys.NodesPerChip)
	sys.Net.SetTraffic(gen, 4, netsim.DstSameIndex)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Net.Step()
	}
	b.ReportMetric(float64(len(sys.Net.Routers)), "routers")
}

func BenchmarkKernelBuildRadix16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(core.Config{Kind: core.SwitchlessDragonfly,
			SLDF: core.Radix16SLDF(), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}

func BenchmarkKernelRNG(b *testing.B) {
	r := engine.NewRNG(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x += r.Uint64()
	}
	_ = x
}
