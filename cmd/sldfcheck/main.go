// Command sldfcheck is the repo's invariant multichecker: the four
// go/analysis analyzers of internal/check (determinism, hotpath,
// cachekey, sentinel) behind the standard unitchecker protocol.
//
// Run it over package patterns directly —
//
//	go build -o bin/sldfcheck ./cmd/sldfcheck
//	./bin/sldfcheck ./...
//
// which re-execs itself as `go vet -vettool=sldfcheck <patterns>` so the
// go command handles package loading, export data and caching; or hand
// it to go vet yourself:
//
//	go vet -vettool=$(pwd)/bin/sldfcheck ./...
//
// Exit status is non-zero when any analyzer reports a diagnostic. See
// the README section "Static analysis & invariants" for the directive
// vocabulary (//sldf:hotpath, //sldf:nondeterministic-ok, ...).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"sldf/internal/check"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") && !strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetSelf(args))
	}
	// unitchecker.Main handles -V=full, -flags and the *.cfg protocol
	// requests the go command issues, and never returns.
	unitchecker.Main(check.Analyzers()...)
}

// vetSelf re-execs the binary through `go vet -vettool`, turning bare
// package patterns (sldfcheck ./...) into a full multichecker run.
func vetSelf(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sldfcheck: cannot locate own binary: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "sldfcheck: %v\n", err)
		return 2
	}
	return 0
}
