// Command sldfcollective measures collective-communication makespans on
// the evaluated systems: the paper Fig. 4 latency argument (ring vs 2D
// row-column vs hierarchical AllReduce) run end to end, with every step
// drained to its exact completion cycle. Jobs run through the campaign
// pipeline, so they are content-addressed (resumable with -cache), fan out
// locally with -jobs, and shard across sldfd worker daemons with -remote —
// all byte-identical to a serial run.
//
//	sldfcollective -dim 4 -volume 4096
//	sldfcollective -systems sw-less,2d-mesh -schedules ring,hierarchical
//	sldfcollective -jobs 8 -cache .pts -csv collective.csv
//	sldfcollective -remote host1:8437,host2:8437
//	sldfcollective -faults 0.05 -faultseed 3      # re-routed around faults
//
// With -killchip the command switches to the churn panel: each case runs
// the collective twice — undisturbed, and with the chip killed before step
// -killstep (schedules recompute over the survivors) — and reports the
// exact makespan cost of the in-flight death:
//
//	sldfcollective -systems sw-less,2d-mesh -killchip 1 -killstep 2
//	sldfcollective -killchip 1 -churn "policy=retry"   # stranded packets retry
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/core"
	"sldf/internal/metrics"
	"sldf/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package's historical usage-error status
		}
		fmt.Fprintf(os.Stderr, "sldfcollective: %v\n", err)
		os.Exit(1)
	}
}

// errUsage signals main that the flag package already reported the problem
// (usage text included) on the error writer.
var errUsage = errors.New("usage error")

// systemNames are the -systems values, in presentation order.
var systemNames = []string{"switch", "2d-mesh", "sw-based", "sw-less"}

// run executes the command with the given arguments, writing the report to
// w and diagnostics to errw. Split from main so tests can drive flag
// parsing, execution and formatting.
func run(args []string, w, errw io.Writer) error {
	fs := flag.NewFlagSet("sldfcollective", flag.ContinueOnError)
	fs.SetOutput(errw)
	systems := fs.String("systems", strings.Join(systemNames, ","),
		"comma-separated systems: "+strings.Join(systemNames, " | "))
	schedules := fs.String("schedules", strings.Join(core.CollectiveSchedules(), ","),
		"comma-separated schedules: "+strings.Join(core.CollectiveSchedules(), " | "))
	dim := fs.Int("dim", 4, "chip grid dimension for switch/2d-mesh (dim×dim chips)")
	volume := fs.Int64("volume", 4096, "AllReduce payload per chip in flits")
	packet := fs.Int("packet", core.DefaultCollectivePacket, "packet size in flits (used for injection AND the efficiency column)")
	maxStep := fs.Int64("maxstep", 0, "cycle bound per dependent step (0 = the collective.Run default, 1<<20)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	faults := fs.Float64("faults", 0, "fraction of eligible links to fail (schedules re-route around dead chips)")
	faultRouters := fs.Float64("faultrouters", 0, "fraction of eligible routers to fail")
	faultSeed := fs.Uint64("faultseed", 1, "fault-draw seed")
	churn := fs.String("churn", "", "in-run fault timeline, e.g. links=0.02,seed=7,start=1000,end=5000,repair=2000,policy=retry (empty = no churn)")
	engine := fs.String("engine", "", "simulation engine: active-set (default) | reference | flow")
	killChip := fs.Int("killchip", -1, "chip to kill mid-collective; switches to the churn panel (negative = off)")
	killStep := fs.Int("killstep", 1, "dependent step before which -killchip dies")
	jobs := fs.Int("jobs", 1, "cases measured concurrently (results identical for any value)")
	cacheDir := fs.String("cache", "", "directory for the on-disk result cache (empty = off)")
	remoteAddrs := fs.String("remote", "", "comma-separated sldfd worker addresses; shards cases across them (results identical to local)")
	csvPath := fs.String("csv", "", "also write the panel as CSV to this path (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return errUsage // the flag package already printed error + usage
	}
	if *dim < 2 {
		return fmt.Errorf("-dim must be >= 2 (got %d)", *dim)
	}
	if *packet < 1 {
		return fmt.Errorf("-packet must be >= 1 (got %d)", *packet)
	}

	timeline, err := topology.ParseChurn(*churn)
	if err != nil {
		return err
	}
	engineKind, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}

	var spec core.CollectiveFigureSpec
	spec.Name = "collective"
	spec.Title = fmt.Sprintf("Collective makespans, %d flits/chip payload", *volume)
	var churnSpec core.ChurnFigureSpec
	churnSpec.Name = "collective-churn"
	churnSpec.Title = fmt.Sprintf("Mid-collective chip %d death before step %d, %d flits/chip payload",
		*killChip, *killStep, *volume)
	scheduleList := strings.Split(*schedules, ",")
	for _, sch := range scheduleList {
		if !slices.Contains(core.CollectiveSchedules(), sch) {
			return fmt.Errorf("unknown schedule %q (want %s)",
				sch, strings.Join(core.CollectiveSchedules(), ", "))
		}
	}
	faultSpec := topology.FaultSpec{Seed: *faultSeed, LinkFraction: *faults, RouterFraction: *faultRouters}
	for _, name := range strings.Split(*systems, ",") {
		cfg, err := systemConfig(name, *dim, *seed)
		if err != nil {
			return err
		}
		if *faults > 0 || *faultRouters > 0 {
			cfg.Faults = faultSpec
		}
		cfg.Churn = timeline
		for _, sch := range scheduleList {
			if *killChip >= 0 {
				churnSpec.Cases = append(churnSpec.Cases, core.ChurnCaseSpec{
					Cfg: cfg, Schedule: sch, Label: name, Volume: *volume,
					PacketSize: int32(*packet), MaxStepCycles: *maxStep,
					KillChip: int32(*killChip), KillStep: *killStep,
					Engine: engineKind,
				})
			} else {
				spec.Cases = append(spec.Cases, core.CollectiveCaseSpec{
					Cfg: cfg, Schedule: sch, Label: name, Volume: *volume,
					PacketSize: int32(*packet), MaxStepCycles: *maxStep,
					Engine: engineKind,
				})
			}
		}
	}

	opts := core.RunOptions{Jobs: *jobs}
	var diskCache *campaign.Cache
	if *cacheDir != "" {
		c, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		diskCache = c
		opts.Store = campaign.NewTiered[metrics.Point](
			campaign.NewMemoryLRU[metrics.Point](1024), c)
	}
	if *remoteAddrs != "" {
		backend, err := remote.New(strings.Split(*remoteAddrs, ","), remote.Options{})
		if err != nil {
			return err
		}
		if err := backend.Check(); err != nil {
			return err
		}
		opts.Backend = backend
		fmt.Fprintf(errw, "backend: %s\n", backend.Name())
	}

	if *killChip >= 0 {
		fig, err := core.RunChurnFigure(churnSpec, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n\n", fig.Title)
		fmt.Fprintf(w, "%-10s %-16s %8s %12s %12s %12s %8s %8s\n",
			"system", "schedule", "steps", "baseline", "cycles", "cost", "dropped", "retried")
		for _, r := range fig.Rows {
			fmt.Fprintf(w, "%-10s %-16s %8d %12d %12d %12d %8d %8d\n",
				r.System, r.Schedule, r.Steps, r.BaselineCycles, r.Cycles,
				r.CostCycles, r.Dropped, r.Retried)
		}
		if err := writeCSV(w, *csvPath, fig.CSV()); err != nil {
			return err
		}
		if diskCache != nil {
			fmt.Fprintln(errw, diskCache.StatsLine())
		}
		return nil
	}

	fig, err := core.RunCollectiveFigure(spec, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s\n\n", fig.Title)
	fmt.Fprintf(w, "%-10s %-16s %8s %12s %10s %14s\n",
		"system", "schedule", "steps", "cycles", "packets", "flits/cyc/chip")
	for _, r := range fig.Rows {
		fmt.Fprintf(w, "%-10s %-16s %8d %12d %10d %14.2f\n",
			r.System, r.Schedule, r.Steps, r.Cycles, r.Packets, r.Efficiency)
	}
	if err := writeCSV(w, *csvPath, fig.CSV()); err != nil {
		return err
	}
	if diskCache != nil {
		fmt.Fprintln(errw, diskCache.StatsLine())
	}
	return nil
}

// writeCSV writes a rendered CSV panel to path ("-" = the report stream,
// "" = discard).
func writeCSV(w io.Writer, path, csv string) error {
	switch path {
	case "":
		return nil
	case "-":
		fmt.Fprint(w, "\n"+csv)
		return nil
	default:
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		return nil
	}
}

// systemConfig maps a -systems name to its configuration: switch and
// 2d-mesh sized by -dim, the Dragonfly pair as one radix-16 W-group (the
// intra-W-group scale the paper's Fig. 4 argues about).
func systemConfig(name string, dim int, seed uint64) (core.Config, error) {
	switch name {
	case "switch":
		return core.Config{Kind: core.SingleSwitch, Terminals: dim * dim, Seed: seed}, nil
	case "2d-mesh":
		return core.Config{Kind: core.MeshCGroup, ChipletDim: dim, NoCDim: 2, Seed: seed}, nil
	case "sw-based":
		cfg := core.Config{Kind: core.SwitchDragonfly, DF: core.Radix16DF(), Seed: seed}
		cfg.DF.G = 1
		return cfg, nil
	case "sw-less":
		cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: seed}
		cfg.SLDF.G = 1
		return cfg, nil
	default:
		return core.Config{}, fmt.Errorf("unknown system %q (want %s)",
			name, strings.Join(systemNames, ", "))
	}
}
