// Command sldfcollective measures AllReduce schedule makespans on a wafer
// C-group mesh vs a switch-attached group: the flat ring, the bidirectional
// ring, and the 2D row-column algorithm of paper Fig. 4.
//
//	sldfcollective -chips 16 -volume 4096
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"sldf/internal/collective"
	"sldf/internal/core"
)

func main() {
	var (
		chipDim = flag.Int("dim", 4, "chip grid dimension (dim×dim chips per C-group)")
		volume  = flag.Int64("volume", 4096, "AllReduce payload per chip in flits")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	dim := *chipDim
	chips := dim * dim

	type system struct {
		name string
		cfg  core.Config
	}
	systems := []system{
		{"switch", core.Config{Kind: core.SingleSwitch, Terminals: chips, Seed: *seed}},
		{"mesh-cgroup", core.Config{Kind: core.MeshCGroup, ChipletDim: dim, NoCDim: 2, Seed: *seed}},
	}
	schedules := []struct {
		name string
		mk   func() collective.Schedule
	}{
		{"ring", func() collective.Schedule {
			return collective.RingAllReduce(collective.SnakeOrder(dim, dim), *volume)
		}},
		{"bidir-ring", func() collective.Schedule {
			return collective.BidirRingAllReduce(collective.SnakeOrder(dim, dim), *volume)
		}},
		{"2d-row-col", func() collective.Schedule {
			return collective.TwoDAllReduce(dim, dim, *volume)
		}},
	}

	fmt.Printf("AllReduce makespan, %d chips, %d flits/chip payload\n\n", chips, *volume)
	fmt.Printf("%-14s %-12s %8s %12s %14s\n", "system", "schedule", "steps", "cycles", "flits/cyc/chip")
	for _, sys := range systems {
		for _, sch := range schedules {
			s, err := core.Build(sys.cfg)
			if err != nil {
				fatalf("build %s: %v", sys.name, err)
			}
			schedule := sch.mk()
			res, err := collective.Run(s.Net, schedule, 4, 1<<22)
			s.Close()
			if err != nil {
				fatalf("%s/%s: %v", sys.name, sch.name, err)
			}
			eff := float64(res.Packets) * 4 / float64(res.Cycles) / float64(chips)
			fmt.Printf("%-14s %-12s %8d %12d %14.2f\n",
				sys.name, sch.name, schedule.StepCount(), res.Cycles, eff)
		}
	}
	fmt.Printf("\nring steps grow O(N); the 2D algorithm needs O(√N)=%d steps — the\n",
		4*(dim-1))
	fmt.Printf("Fig. 4(b) latency argument. Ideal speedup ring→2D ≈ %.1f×.\n",
		float64(2*(chips-1))/math.Max(1, float64(4*(dim-1))))
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sldfcollective: "+format+"\n", args...)
	os.Exit(1)
}
