package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h must succeed, got %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of sldfcollective") {
		t.Errorf("-h did not print usage on the error writer:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("-h wrote to the data stream: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-systems", "nope"},
		{"-schedules", "nope"},
		{"-dim", "1"},
		{"-packet", "0"},
		{"-no-such-flag"},
		{"-jobs", "x"},
		{"-churn", "links=nope"},
		{"-churn", "policy=yolo"},
	}
	for _, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTinyCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "collective.csv")
	var buf strings.Builder
	args := []string{"-systems", "switch,2d-mesh", "-schedules", "ring,2d",
		"-dim", "2", "-volume", "64", "-jobs", "2", "-csv", csv}
	if err := run(args, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"system", "schedule", "switch", "2d-mesh", "ring"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+4 { // header + 2 systems × 2 schedules
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), data)
	}
	if lines[0] != "system,schedule,steps,cycles,packets,flits_per_cycle_per_chip,step_cycles" {
		t.Errorf("unexpected header %q", lines[0])
	}
}

// TestRunPacketSizeThreadsThrough pins the -packet satellite fix: the flag
// changes both the injected packets and the efficiency column, so two runs
// at different packet sizes report different step traces while moving the
// same payload.
func TestRunPacketSizeThreadsThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	csvFor := func(packet string) string {
		dir := t.TempDir()
		csv := filepath.Join(dir, "out.csv")
		var buf strings.Builder
		args := []string{"-systems", "2d-mesh", "-schedules", "ring",
			"-dim", "2", "-volume", "256", "-packet", packet, "-csv", csv}
		if err := run(args, &buf, io.Discard); err != nil {
			t.Fatalf("run(-packet %s): %v", packet, err)
		}
		data, err := os.ReadFile(csv)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	p4, p8 := csvFor("4"), csvFor("8")
	if p4 == p8 {
		t.Fatalf("-packet had no effect on the measurement:\n%s", p4)
	}
	// Packets halve when the packet size doubles (same payload volume).
	f4, f8 := strings.Split(strings.Split(p4, "\n")[1], ","), strings.Split(strings.Split(p8, "\n")[1], ",")
	if f4[4] == f8[4] {
		t.Errorf("packet count identical across -packet 4/8: %s vs %s", f4[4], f8[4])
	}
}

// TestRunChurnPanel drives the -killchip path end to end: the panel must
// report a finite, positive makespan for both the baseline and the
// disturbed run, and a repeat invocation must be byte-identical (the
// mid-AllReduce death cost is deterministic).
func TestRunChurnPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	csvFor := func(name string) string {
		csv := filepath.Join(dir, name)
		var buf strings.Builder
		args := []string{"-systems", "2d-mesh", "-schedules", "ring",
			"-dim", "2", "-volume", "64", "-killchip", "1", "-killstep", "2",
			"-churn", "policy=retry", "-csv", csv}
		if err := run(args, &buf, io.Discard); err != nil {
			t.Fatalf("run: %v", err)
		}
		out := buf.String()
		for _, want := range []string{"chip 1 death before step 2", "baseline", "cost", "2d-mesh"} {
			if !strings.Contains(out, want) {
				t.Errorf("churn report missing %q in:\n%s", want, out)
			}
		}
		data, err := os.ReadFile(csv)
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		return string(data)
	}
	a := csvFor("a.csv")
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 2 { // header + 1 case
		t.Fatalf("CSV has %d lines, want 2:\n%s", len(lines), a)
	}
	f := strings.Split(lines[1], ",")
	// system,schedule,kill_chip,kill_step,steps,baseline_cycles,cycles,...
	if f[5] == "0" || f[6] == "0" {
		t.Fatalf("zero makespan in churn row: %s", lines[1])
	}
	if b := csvFor("b.csv"); a != b {
		t.Fatalf("churn panel not reproducible:\n%s\nvs\n%s", a, b)
	}
}

func TestRunCacheReplayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	args := func(csv string) []string {
		return []string{"-systems", "2d-mesh", "-schedules", "ring,hierarchical",
			"-dim", "2", "-volume", "64", "-cache", cache, "-csv", csv}
	}
	cold, warm := filepath.Join(dir, "cold.csv"), filepath.Join(dir, "warm.csv")
	var buf strings.Builder
	if err := run(args(cold), &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args(warm), &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("cache replay diverged:\n%s\nvs\n%s", a, b)
	}
}
