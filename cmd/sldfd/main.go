// Command sldfd is the sweep worker daemon: it executes campaign job specs
// shipped by a coordinator (sldfsweep -remote / sldffigures -remote /
// sldfcollective -remote) over the HTTP/JSON protocol in
// internal/campaign/remote. Registered job kinds: core/point@v1 (sweep
// load points) and collective/makespan@v1 (collective executions).
//
//	sldfd -listen :8437 -jobs 8                 # 8 concurrent measurements
//	sldfd -listen :8437 -cache /var/sldf/points # with a durable point store
//
// Endpoints: POST /run (job batches), GET /healthz (liveness), GET /stats
// (execution counters). A worker keeps built networks warm between
// batches (reset between points — bitwise identical to fresh builds) and,
// with -cache, fronts the disk tier with an in-memory LRU so replayed
// points never re-simulate. Failure semantics live on the coordinator:
// if this process dies mid-run, its outstanding batches are re-sharded
// onto the surviving workers and the merged sweep is unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/metrics"

	// Register the core point executor so shipped specs can run here.
	_ "sldf/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package's historical usage-error status
		}
		fmt.Fprintf(os.Stderr, "sldfd: %v\n", err)
		os.Exit(1)
	}
}

// errUsage signals main that the flag package already reported the problem
// (usage text included) on the error writer.
var errUsage = errors.New("usage error")

// run parses flags and serves until the context (or a termination signal)
// stops it. ready, when non-nil, receives the bound address once the
// listener is up — tests use it to learn the ephemeral port.
func run(args []string, errw io.Writer, ready func(addr string, stop context.CancelFunc)) error {
	fs := flag.NewFlagSet("sldfd", flag.ContinueOnError)
	fs.SetOutput(errw)
	listen := fs.String("listen", ":8437", "address to serve the worker protocol on")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "concurrent measurements (persistent worker goroutines)")
	cacheDir := fs.String("cache", "", "directory for the durable point store (empty = memory only)")
	mem := fs.Int("mem", 1024, "in-memory point store capacity (0 = unbounded)")
	sysCache := fs.Int("syscache", remote.DefaultWorkerState, "built systems each worker keeps warm (LRU-evicted; large systems are memory-heavy)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return errUsage // the flag package already printed error + usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "unexpected arguments: %v\n", fs.Args())
		return errUsage
	}

	// The store is tiered: memory LRU in front, disk behind when -cache is
	// set. A memory-only daemon still serves replays within its lifetime.
	var store campaign.PointStore
	hot := campaign.NewMemoryLRU[metrics.Point](*mem)
	if *cacheDir != "" {
		disk, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		store = campaign.NewTiered[metrics.Point](hot, disk)
	} else {
		store = hot
	}

	worker := remote.NewServer(remote.ServerOptions{Jobs: *jobs, Store: store, WorkerState: *sysCache})
	defer worker.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: worker}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if ready != nil {
		ready(ln.Addr().String(), stop)
	}
	fmt.Fprintf(errw, "sldfd: serving on %s (%d workers, store: %s)\n",
		ln.Addr(), *jobs, storeDesc(*cacheDir, *mem))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(errw, "sldfd: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	<-serveErr // http.ErrServerClosed after a clean Shutdown
	return nil
}

// storeDesc names the store tiering for the startup log line.
func storeDesc(cacheDir string, mem int) string {
	if cacheDir != "" {
		return fmt.Sprintf("memory(%d) over disk(%s)", mem, cacheDir)
	}
	return fmt.Sprintf("memory(%d)", mem)
}
