package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunHelp(t *testing.T) {
	var errOut strings.Builder
	if err := run([]string{"-h"}, &errOut, nil); err != nil {
		t.Fatalf("-h must succeed, got %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of sldfd") {
		t.Errorf("-h did not print usage:\n%s", errOut.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-jobs", "x"},
		{"stray-positional"},
	} {
		if err := run(args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	var (
		mu   sync.Mutex
		addr string
		stop func()
	)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-jobs", "2", "-mem", "16"},
			io.Discard, func(a string, s context.CancelFunc) {
				mu.Lock()
				addr, stop = a, s
				mu.Unlock()
			})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		a := addr
		mu.Unlock()
		if a != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	base := "http://" + addr
	mu.Unlock()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		OK      bool     `json:"ok"`
		Workers int      `json:"workers"`
		Kinds   []string `json:"kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.OK || h.Workers != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	// The daemon must advertise the core point executor: that is what a
	// coordinator will ship it.
	found := false
	for _, k := range h.Kinds {
		if k == "core/point@v1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("core point executor not registered: %v", h.Kinds)
	}

	mu.Lock()
	stop()
	mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
