// Command sldffigures regenerates the data behind every evaluation figure
// of the paper (Figs. 10–15). Each figure's series are written as CSV files
// into -out and summarized on stdout (saturation points, peak throughputs,
// energy bars).
//
//	sldffigures -quick              # CI-scale everything (minutes)
//	sldffigures -fig 11             # only Fig. 11 at paper scale
//	sldffigures -full -fig 12       # the 18560-chip scalability run
//	sldffigures -jobs 8 -cache .pts # 8 concurrent points, resumable
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/core"
	"sldf/internal/metrics"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-scale runs (small windows, thinner grids, radix-24 stand-in for Fig. 12)")
		full     = flag.Bool("full", false, "force paper-scale runs (Table IV windows)")
		fig      = flag.String("fig", "all", "which figure: 10 | 11 | 12 | 13 | 14 | 15 | all")
		out      = flag.String("out", "figures", "output directory for CSV files")
		jobs     = flag.Int("jobs", 1, "sweep points measured concurrently (results identical for any value)")
		cacheDir = flag.String("cache", "", "directory for the on-disk point cache (empty = off); re-runs skip already-measured points")
	)
	flag.Parse()

	scale := core.ScaleQuick
	if *full || (!*quick && *fig != "all") {
		scale = core.ScalePaper
	}
	if *quick {
		scale = core.ScaleQuick
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	opts := core.RunOptions{Jobs: *jobs}
	if *cacheDir != "" {
		c, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Cache = c
	}

	runners := map[string]func(core.Scale, core.RunOptions) ([]metrics.Figure, error){
		"10": core.Fig10,
		"11": core.Fig11,
		"12": core.Fig12,
		"13": core.Fig13,
		"14": core.Fig14,
	}
	order := []string{"10", "11", "12", "13", "14"}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	for _, id := range order {
		if !want(id) {
			continue
		}
		start := time.Now()
		figs, err := runners[id](scale, opts)
		if err != nil {
			fatalf("fig %s: %v", id, err)
		}
		for _, f := range figs {
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			fmt.Printf("== %s — %s (%s)\n", f.Name, f.Title, path)
			for _, s := range f.Series {
				fmt.Printf("   %-16s saturation ≈ %.2f  peak throughput %.2f flits/cycle/chip\n",
					s.Label, s.Saturation(3), s.MaxThroughput())
			}
		}
		fmt.Printf("-- fig %s done in %s\n\n", id, time.Since(start).Round(time.Second))
	}

	if want("15") {
		start := time.Now()
		efigs, err := core.Fig15(scale, opts)
		if err != nil {
			fatalf("fig 15: %v", err)
		}
		for _, f := range efigs {
			var b strings.Builder
			b.WriteString("system,intra_pj_per_bit,inter_pj_per_bit,total_pj_per_bit\n")
			fmt.Printf("== %s — %s\n", f.Name, f.Title)
			for _, bar := range f.Bars {
				fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f\n", bar.Label, bar.Intra, bar.Inter, bar.Total())
				fmt.Printf("   %-16s %6.1f pJ/bit (intra %5.1f + inter %5.1f)\n",
					bar.Label, bar.Total(), bar.Intra, bar.Inter)
			}
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
		}
		fmt.Printf("-- fig 15 done in %s\n", time.Since(start).Round(time.Second))
	}

	if opts.Cache != nil {
		fmt.Fprintln(os.Stderr, opts.Cache.StatsLine())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sldffigures: "+format+"\n", args...)
	os.Exit(1)
}
