// Command sldffigures regenerates the data behind every evaluation figure
// of the paper (Figs. 10–15). Experiments come from the core registry —
// each figure is a declarative spec (configs × patterns × rate grid)
// executed by the generic runner — so this command enumerates the registry
// instead of dispatching to hand-written runners. Each figure's series are
// written as CSV files into -out and summarized on stdout (saturation
// points, peak throughputs, energy bars).
//
//	sldffigures -quick              # CI-scale everything (minutes)
//	sldffigures -fig 11             # only Fig. 11 at paper scale
//	sldffigures -full -fig 12       # the 18560-chip scalability run
//	sldffigures -jobs 8 -cache .pts # 8 concurrent points, resumable
//	sldffigures -remote host1:8437,host2:8437  # shard across sldfd workers
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/core"
	"sldf/internal/metrics"
	"sldf/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package's historical usage-error status
		}
		fmt.Fprintf(os.Stderr, "sldffigures: %v\n", err)
		os.Exit(1)
	}
}

// errUsage signals main that the flag package already reported the problem
// (usage text included) on the error writer.
var errUsage = errors.New("usage error")

// run executes the command with the given arguments, writing summaries to
// w and diagnostics to errw. Split from main so tests can drive flag
// parsing and formatting.
func run(args []string, w, errw io.Writer) error {
	fs := flag.NewFlagSet("sldffigures", flag.ContinueOnError)
	fs.SetOutput(errw)
	quick := fs.Bool("quick", false, "CI-scale runs (small windows, thinner grids, radix-24 stand-in for Fig. 12)")
	full := fs.Bool("full", false, "force paper-scale runs (Table IV windows)")
	fig := fs.String("fig", "all", "which experiment: "+strings.Join(core.ExperimentNames(), " | ")+" | all")
	out := fs.String("out", "figures", "output directory for CSV files")
	jobs := fs.Int("jobs", 1, "sweep points measured concurrently (results identical for any value)")
	cacheDir := fs.String("cache", "", "directory for the on-disk point cache (empty = off); re-runs skip already-measured points")
	remoteAddrs := fs.String("remote", "", "comma-separated sldfd worker addresses; shards sweep points across them (results identical to local)")
	churn := fs.String("churn", "", "in-run fault timeline armed on resilience-figure networks, e.g. links=0.02,seed=7,start=1000,end=5000,repair=2000,policy=retry (empty = no churn)")
	engine := fs.String("engine", "", "simulation engine for every measurement: active-set (default) | reference | flow")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return errUsage // the flag package already printed error + usage
	}
	if _, ok := core.LookupExperiment(*fig); !ok && *fig != "all" {
		return fmt.Errorf("unknown -fig %q (want %s, or all)",
			*fig, strings.Join(core.ExperimentNames(), ", "))
	}

	scale := core.ScaleQuick
	if *full || (!*quick && *fig != "all") {
		scale = core.ScalePaper
	}
	if *quick {
		scale = core.ScaleQuick
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	opts := core.RunOptions{Jobs: *jobs}
	timeline, err := topology.ParseChurn(*churn)
	if err != nil {
		return err
	}
	opts.Churn = timeline
	if opts.Engine, err = core.ParseEngine(*engine); err != nil {
		return err
	}
	var diskCache *campaign.Cache
	if *cacheDir != "" {
		c, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		diskCache = c
		opts.Store = campaign.NewTiered[metrics.Point](
			campaign.NewMemoryLRU[metrics.Point](1024), c)
	}
	if *remoteAddrs != "" {
		backend, err := remote.New(strings.Split(*remoteAddrs, ","), remote.Options{})
		if err != nil {
			return err
		}
		if err := backend.Check(); err != nil {
			return err
		}
		opts.Backend = backend
		fmt.Fprintf(errw, "backend: %s\n", backend.Name())
	}

	for _, spec := range core.Experiments() {
		if *fig != "all" && *fig != spec.Name {
			continue
		}
		start := time.Now()
		res, err := core.RunExperiment(spec, scale, opts)
		if err != nil {
			return fmt.Errorf("fig %s: %w", spec.Name, err)
		}
		for _, f := range res.Figures {
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(w, "== %s — %s (%s)\n", f.Name, f.Title, path)
			for _, s := range f.Series {
				fmt.Fprintf(w, "   %-16s saturation ≈ %.2f  peak throughput %.2f flits/cycle/chip\n",
					s.Label, s.Saturation(3), s.MaxThroughput())
			}
		}
		for _, f := range res.Energy {
			fmt.Fprintf(w, "== %s — %s\n", f.Name, f.Title)
			for _, bar := range f.Bars {
				fmt.Fprintf(w, "   %-16s %6.1f pJ/bit (intra %5.1f + inter %5.1f)\n",
					bar.Label, bar.Total(), bar.Intra, bar.Inter)
			}
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
		for _, f := range res.Collectives {
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(w, "== %s — %s (%s)\n", f.Name, f.Title, path)
			for _, r := range f.Rows {
				fmt.Fprintf(w, "   %-14s %-16s %4d steps %10d cycles  %.2f flits/cyc/chip\n",
					r.System, r.Schedule, r.Steps, r.Cycles, r.Efficiency)
			}
		}
		fmt.Fprintf(w, "-- fig %s done in %s\n", spec.Name, time.Since(start).Round(time.Second))
		// Latency experiments historically end with a blank separator line;
		// the energy panel (Fig. 15) closes the report without one.
		if len(res.Figures) > 0 {
			fmt.Fprintln(w)
		}
	}

	if diskCache != nil {
		fmt.Fprintln(errw, diskCache.StatsLine())
	}
	return nil
}
