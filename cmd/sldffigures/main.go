// Command sldffigures regenerates the data behind every evaluation figure
// of the paper (Figs. 10–15). Each figure's series are written as CSV files
// into -out and summarized on stdout (saturation points, peak throughputs,
// energy bars).
//
//	sldffigures -quick              # CI-scale everything (minutes)
//	sldffigures -fig 11             # only Fig. 11 at paper scale
//	sldffigures -full -fig 12       # the 18560-chip scalability run
//	sldffigures -jobs 8 -cache .pts # 8 concurrent points, resumable
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/core"
	"sldf/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package's historical usage-error status
		}
		fmt.Fprintf(os.Stderr, "sldffigures: %v\n", err)
		os.Exit(1)
	}
}

// errUsage signals main that the flag package already reported the problem
// (usage text included) on the error writer.
var errUsage = errors.New("usage error")

// figRunners maps figure IDs to their sweep-based experiment runners
// (Fig. 15, the energy bars, has a different result shape and is handled
// separately).
var figRunners = map[string]func(core.Scale, core.RunOptions) ([]metrics.Figure, error){
	"10":         core.Fig10,
	"11":         core.Fig11,
	"12":         core.Fig12,
	"13":         core.Fig13,
	"14":         core.Fig14,
	"resilience": core.FigResilience,
}

// run executes the command with the given arguments, writing summaries to
// w and diagnostics to errw. Split from main so tests can drive flag
// parsing and formatting.
func run(args []string, w, errw io.Writer) error {
	fs := flag.NewFlagSet("sldffigures", flag.ContinueOnError)
	fs.SetOutput(errw)
	quick := fs.Bool("quick", false, "CI-scale runs (small windows, thinner grids, radix-24 stand-in for Fig. 12)")
	full := fs.Bool("full", false, "force paper-scale runs (Table IV windows)")
	fig := fs.String("fig", "all", "which figure: 10 | 11 | 12 | 13 | 14 | 15 | resilience | all")
	out := fs.String("out", "figures", "output directory for CSV files")
	jobs := fs.Int("jobs", 1, "sweep points measured concurrently (results identical for any value)")
	cacheDir := fs.String("cache", "", "directory for the on-disk point cache (empty = off); re-runs skip already-measured points")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return errUsage // the flag package already printed error + usage
	}
	switch *fig {
	case "10", "11", "12", "13", "14", "15", "resilience", "all":
	default:
		return fmt.Errorf("unknown -fig %q (want 10–15, resilience, or all)", *fig)
	}

	scale := core.ScaleQuick
	if *full || (!*quick && *fig != "all") {
		scale = core.ScalePaper
	}
	if *quick {
		scale = core.ScaleQuick
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	opts := core.RunOptions{Jobs: *jobs}
	if *cacheDir != "" {
		c, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = c
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	for _, id := range []string{"10", "11", "12", "13", "14", "resilience"} {
		if !want(id) {
			continue
		}
		start := time.Now()
		figs, err := figRunners[id](scale, opts)
		if err != nil {
			return fmt.Errorf("fig %s: %w", id, err)
		}
		for _, f := range figs {
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(w, "== %s — %s (%s)\n", f.Name, f.Title, path)
			for _, s := range f.Series {
				fmt.Fprintf(w, "   %-16s saturation ≈ %.2f  peak throughput %.2f flits/cycle/chip\n",
					s.Label, s.Saturation(3), s.MaxThroughput())
			}
		}
		fmt.Fprintf(w, "-- fig %s done in %s\n\n", id, time.Since(start).Round(time.Second))
	}

	if want("15") {
		start := time.Now()
		efigs, err := core.Fig15(scale, opts)
		if err != nil {
			return fmt.Errorf("fig 15: %w", err)
		}
		for _, f := range efigs {
			var b strings.Builder
			b.WriteString("system,intra_pj_per_bit,inter_pj_per_bit,total_pj_per_bit\n")
			fmt.Fprintf(w, "== %s — %s\n", f.Name, f.Title)
			for _, bar := range f.Bars {
				fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f\n", bar.Label, bar.Intra, bar.Inter, bar.Total())
				fmt.Fprintf(w, "   %-16s %6.1f pJ/bit (intra %5.1f + inter %5.1f)\n",
					bar.Label, bar.Total(), bar.Intra, bar.Inter)
			}
			path := filepath.Join(*out, f.Name+".csv")
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
		fmt.Fprintf(w, "-- fig 15 done in %s\n", time.Since(start).Round(time.Second))
	}

	if opts.Cache != nil {
		fmt.Fprintln(errw, opts.Cache.StatsLine())
	}
	return nil
}
