package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h must succeed, got %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of sldffigures") {
		t.Errorf("-h did not print usage on the error writer:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("-h wrote to the data stream: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "9"}, // 9 is the layout study (sldftables), not a sweep figure
		{"-fig", "nope"},
		{"-no-such-flag"},
		{"-jobs", "x"},
	}
	for _, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunQuickFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-quick", "-fig", "14", "-out", dir, "-jobs", "4"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"== fig14a — AllReduce: Intra-C-group",
		"== fig14b — AllReduce: Intra-W-group",
		"saturation ≈",
		"-- fig 14 done in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
	for _, name := range []string{"fig14a.csv", "fig14b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no data rows", name)
		}
		if !strings.HasPrefix(lines[0], "rate,") {
			t.Errorf("%s: unexpected header %q", name, lines[0])
		}
	}
}
