package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sldf/internal/core"
)

// A tiny single-W-group resilience experiment (32 chips, one seed, two
// fractions) so the -churn path can be validated end to end without the
// registered 1312-chip resilience figure's cost.
func init() {
	cfg := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 5}
	cfg.SLDF.G = 1
	core.RegisterExperiment(core.ExperimentSpec{
		Name:  "figtest-res",
		Title: "test-only tiny resilience figure",
		Plan: func(core.Scale) core.ExperimentPlan {
			return core.ExperimentPlan{Resilience: []core.ResilienceFigureSpec{{
				Name: "figtest-res", Title: "tiny resilience",
				Opts: core.ResilienceOpts{
					Fractions: []float64{0, 0.05},
					Seeds:     []uint64{1},
					Pattern:   "uniform",
					Rate:      0.2,
					Sim:       core.QuickSim(),
				},
				Series: []core.ResilienceSeriesSpec{{Cfg: cfg}},
			}}}
		},
	})
}

func TestRunHelp(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h must succeed, got %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of sldffigures") {
		t.Errorf("-h did not print usage on the error writer:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("-h wrote to the data stream: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "9"}, // 9 is the layout study (sldftables), not a sweep figure
		{"-fig", "nope"},
		{"-no-such-flag"},
		{"-jobs", "x"},
		{"-churn", "links=2.0"},   // fraction outside [0, 1]
		{"-churn", "bogus"},       // not key=value
		{"-engine", "warp-drive"}, // unknown engine
	}
	for _, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunChurnFlag validates the -churn flag end to end: a churn-degraded
// resilience figure runs through the registry runner, lands on disk, and
// the timeline measurably changes the figure relative to a churn-free run.
func TestRunChurnFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	runOne := func(dir string, extra ...string) string {
		t.Helper()
		args := append([]string{"-quick", "-fig", "figtest-res", "-out", dir}, extra...)
		var buf strings.Builder
		if err := run(args, &buf, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		if !strings.Contains(buf.String(), "== figtest-res") {
			t.Fatalf("summary missing the figure:\n%s", buf.String())
		}
		data, err := os.ReadFile(filepath.Join(dir, "figtest-res.csv"))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) < 2 {
			t.Fatalf("figtest-res.csv has no data rows:\n%s", data)
		}
		return string(data)
	}
	clean := runOne(t.TempDir())
	churned := runOne(t.TempDir(),
		"-churn", "links=0.08,seed=3,start=100,end=400,repair=200,policy=drop")
	if clean == churned {
		t.Fatalf("-churn changed nothing; the timeline never reached the sweep:\n%s", churned)
	}
}

func TestRunQuickFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-quick", "-fig", "14", "-out", dir, "-jobs", "4"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"== fig14a — AllReduce: Intra-C-group",
		"== fig14b — AllReduce: Intra-W-group",
		"saturation ≈",
		"-- fig 14 done in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
	for _, name := range []string{"fig14a.csv", "fig14b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV not written: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no data rows", name)
		}
		if !strings.HasPrefix(lines[0], "rate,") {
			t.Errorf("%s: unexpected header %q", name, lines[0])
		}
	}
}
