// sldfscale finds the simulator's soft scaling ceilings.
//
// It grows one dimension — system size in chips, injected link-fault
// fraction, or concurrent campaign jobs — until a step fails validation or
// a resource budget trips, then reports the per-step wall/heap/RSS
// trajectory and the resulting ceiling:
//
//	sldfscale -dim chips -kind sw-less -max-rss-gb 8
//	sldfscale -dim faults -kind sw-less
//	sldfscale -dim jobs -kind 2d-mesh -min-ceiling 4
//
// With -json the full report is written as JSON (to a file, or stdout with
// "-"); -min-ceiling turns the run into a CI gate that fails when the
// ceiling regresses below the given value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sldf/internal/core"
	"sldf/internal/netsim"
	"sldf/internal/scale"
)

func main() {
	var (
		dim         = flag.String("dim", "chips", "growth dimension: chips | faults | jobs")
		kind        = flag.String("kind", "sw-less", "system kind: sw-less | sw-based | switch | 2d-mesh")
		workers     = flag.Int("workers", 1, "simulation worker goroutines per system")
		maxSteps    = flag.Int("max-steps", 0, "stop after this many steps (0 = unlimited)")
		maxStepWall = flag.Duration("max-step-wall", 2*time.Minute, "stop after a step exceeding this wall time (0 = unlimited)")
		maxRSSGB    = flag.Float64("max-rss-gb", 16, "stop once resident set exceeds this many GiB (0 = unlimited)")
		minCeiling  = flag.Float64("min-ceiling", 0, "exit nonzero unless the ceiling value reaches this (0 = no gate)")
		jsonOut     = flag.String("json", "", "write the report as JSON to this file (\"-\" = stdout)")
		quiet       = flag.Bool("q", false, "suppress per-step progress lines")
		engine      = flag.String("engine", "", "validation-run engine for -dim chips: active-set (default) | reference | flow (flow climbs far past the cycle ceiling)")
		flowPar     = flag.Int("flowpar", 0, "flow engine: parallel trace/waterfill workers for the validation run (0 = serial; results identical)")
	)
	flag.Parse()

	k, err := parseKind(*kind)
	if err != nil {
		fatal(err)
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	var d scale.Dimension
	switch *dim {
	case "chips":
		d = scale.ChipsDimensionEngine(k, *workers, eng, *flowPar)
	case "faults":
		if eng != netsim.EngineActiveSet {
			fatal(fmt.Errorf("-engine applies to -dim chips only"))
		}
		d = scale.FaultFractionDimension(k, *workers)
	case "jobs":
		if eng != netsim.EngineActiveSet {
			fatal(fmt.Errorf("-engine applies to -dim chips only"))
		}
		d = scale.JobsDimension(k, *workers)
	default:
		fatal(fmt.Errorf("unknown -dim %q (want chips, faults, or jobs)", *dim))
	}
	budget := scale.Budget{
		MaxStepWall: *maxStepWall,
		MaxRSS:      uint64(*maxRSSGB * (1 << 30)),
		MaxSteps:    *maxSteps,
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	rep := scale.Run(d, budget, logf)

	if rep.Ceiling != nil {
		fmt.Printf("%s: ceiling %s (value %g) — stopped by %s after %d steps\n",
			rep.Dimension, rep.Ceiling.Label, rep.Ceiling.Value, rep.Tripped, len(rep.Samples))
		fmt.Printf("  build %.0f ms, sim %.0f ms, heap %.1f MB, rss %.1f MB",
			rep.Ceiling.BuildMS, rep.Ceiling.SimMS, rep.Ceiling.HeapMB, rep.Ceiling.RSSMB)
		if rep.Ceiling.HeapPerChip > 0 {
			fmt.Printf(", %.0f heap bytes/chip", rep.Ceiling.HeapPerChip)
		}
		fmt.Println()
	} else {
		fmt.Printf("%s: no step passed — stopped by %s\n", rep.Dimension, rep.Tripped)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *minCeiling > 0 {
		if rep.Ceiling == nil || rep.Ceiling.Value < *minCeiling {
			got := 0.0
			if rep.Ceiling != nil {
				got = rep.Ceiling.Value
			}
			fmt.Fprintf(os.Stderr, "sldfscale: ceiling gate failed: %g < %g\n", got, *minCeiling)
			os.Exit(2)
		}
		fmt.Printf("ceiling gate passed: %g >= %g\n", rep.Ceiling.Value, *minCeiling)
	}
}

func parseKind(s string) (core.SystemKind, error) {
	switch s {
	case "sw-less":
		return core.SwitchlessDragonfly, nil
	case "sw-based":
		return core.SwitchDragonfly, nil
	case "switch":
		return core.SingleSwitch, nil
	case "2d-mesh", "mesh":
		return core.MeshCGroup, nil
	}
	return 0, fmt.Errorf("unknown -kind %q (want sw-less, sw-based, switch, or 2d-mesh)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sldfscale:", err)
	os.Exit(1)
}
