// Command sldfsweep runs a latency-vs-injection-rate sweep over one or more
// systems and emits CSV (one latency and throughput column per system).
//
// Example — reproduce a Fig. 11(a)-style comparison:
//
//	sldfsweep -systems sw-based,sw-less,sw-less-2B -pattern uniform \
//	          -from 0.1 -to 1.0 -step 0.1 > fig11a.csv
//
// Example — the same sweep on a degraded network with 5% of channels and
// 2% of redundant routers failed (deterministic for a given -faultseed):
//
//	sldfsweep -systems sw-less,sw-less-mis -faults 0.05 -faultrouters 0.02 \
//	          -faultseed 7 -from 0.1 -to 0.6 -step 0.1 > degraded.csv
//
// Example — live churn: 2% of channels die (and are repaired 2000 cycles
// later) at seeded cycles mid-run, with stranded packets retried at their
// source (deterministic for a given seed= in the spec):
//
//	sldfsweep -systems sw-less -churn "links=0.02,seed=7,start=1000,end=5000,repair=2000,policy=retry" \
//	          -from 0.1 -to 0.6 -step 0.1 > churn.csv
//
// Example — the same sweep sharded across two sldfd worker daemons (the
// CSV is bitwise identical to the local run, even if a worker dies
// mid-sweep):
//
//	sldfd -listen :8437 &    # on each worker host
//	sldfsweep -remote host1:8437,host2:8437 -systems sw-based,sw-less \
//	          -from 0.1 -to 1.0 -step 0.1 > fig11a.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/core"
	"sldf/internal/metrics"
	"sldf/internal/profiling"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

func main() {
	var (
		systems  = flag.String("systems", "sw-based,sw-less", "comma-separated systems: sw-based | sw-less | sw-less-2B | sw-less-4B | switch | mesh, each with optional -mis suffix for Valiant routing")
		size     = flag.String("size", "radix16", "scale: radix16 | radix24 | radix32 | radix56")
		pattern  = flag.String("pattern", "uniform", "traffic pattern")
		from     = flag.Float64("from", 0.1, "first injection rate")
		to       = flag.Float64("to", 1.0, "last injection rate")
		step     = flag.Float64("step", 0.1, "rate step")
		groups   = flag.Int("groups", 0, "override W-group count")
		warmup   = flag.Int64("warmup", 5000, "warmup cycles")
		measure  = flag.Int64("measure", 10000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 0, "parallel workers per simulation")
		jobs     = flag.Int("jobs", 1, "sweep points measured concurrently (results identical for any value)")
		cacheDir = flag.String("cache", "", "directory for the on-disk point cache (empty = off)")
		remotes  = flag.String("remote", "", "comma-separated sldfd worker addresses; shards points across them (results identical to local)")

		faults       = flag.Float64("faults", 0, "fraction of channels to fail at build time (0 = pristine network)")
		faultRouters = flag.Float64("faultrouters", 0, "fraction of redundant routers (port modules, spare cores) to fail")
		faultSeed    = flag.Uint64("faultseed", 1, "fault-sampling seed (same spec + seed = same failures)")
		churn        = flag.String("churn", "", "in-run fault timeline, e.g. links=0.02,routers=0.01,seed=7,start=1000,end=5000,repair=2000,policy=retry (empty = no churn)")
		engine       = flag.String("engine", "", "simulation engine: active-set (default) | reference | flow")

		flowPar  = flag.Int("flowpar", 0, "flow engine: parallel trace/waterfill workers per point (0 = serial; CSV identical for any value)")
		flowCold = flag.Bool("flowcold", false, "flow engine: re-trace every route at every point (CSV identical, for timing baselines)")
		flowSeed = flag.Bool("flowseed", false, "flow engine: warm-start waterfill throttles from the adjacent point (APPROXIMATE: partitions the point cache)")
	)
	prof := profiling.Flags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "sldfsweep:", err)
		}
	}()

	timeline, err := topology.ParseChurn(*churn)
	if err != nil {
		fatalf("%v", err)
	}

	rates := core.RateGrid(*from, *to, *step)
	sp := core.SimParams{Warmup: *warmup, Measure: *measure,
		ExtraDrain: *measure / 2, PacketSize: 4}
	if sp.Engine, err = core.ParseEngine(*engine); err != nil {
		fatalf("%v", err)
	}
	sp.FlowWorkers = *flowPar
	sp.FlowCold = *flowCold
	sp.FlowSeedThrottles = *flowSeed

	opts := core.RunOptions{Jobs: *jobs}
	var diskCache *campaign.Cache
	if *cacheDir != "" {
		c, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		diskCache = c
		opts.Store = campaign.NewTiered[metrics.Point](
			campaign.NewMemoryLRU[metrics.Point](1024), c)
	}
	if *remotes != "" {
		backend, err := remote.New(strings.Split(*remotes, ","), remote.Options{})
		if err != nil {
			fatalf("%v", err)
		}
		if err := backend.Check(); err != nil {
			fatalf("%v", err)
		}
		opts.Backend = backend
		fmt.Fprintf(os.Stderr, "backend: %s\n", backend.Name())
	}

	fig := metrics.Figure{Name: "sweep", Title: *pattern}
	for _, name := range strings.Split(*systems, ",") {
		cfg, err := parseSystem(strings.TrimSpace(name), *size, *groups)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Seed = *seed
		cfg.Workers = *workers
		cfg.Faults = faultSpecFromFlags(*faults, *faultRouters, *faultSeed)
		cfg.Churn = timeline
		fmt.Fprintf(os.Stderr, "sweeping %s over %d rates...\n", name, len(rates))
		t0 := time.Now()
		s, err := core.SweepOpts(cfg, *pattern, rates, sp, opts)
		if err != nil {
			fatalf("sweep %s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "sweep %s: %d rates in %v (incl. build)\n",
			name, len(rates), time.Since(t0).Round(time.Millisecond))
		s.Label = name
		fig.Series = append(fig.Series, s)
	}
	fmt.Print(fig.CSV())
	for _, s := range fig.Series {
		fmt.Fprintf(os.Stderr, "saturation(%s) ≈ %.2f flits/cycle/chip\n",
			s.Label, s.Saturation(3))
	}
	if diskCache != nil {
		fmt.Fprintln(os.Stderr, diskCache.StatsLine())
	}
}

// parseSystem maps a CLI name like "sw-less-2B-mis" to a Config.
func parseSystem(name, size string, groups int) (core.Config, error) {
	cfg := core.Config{}
	base := name
	switch {
	case strings.HasSuffix(base, "-mis-lower"):
		cfg.Mode = routing.ValiantLower
		base = strings.TrimSuffix(base, "-mis-lower")
	case strings.HasSuffix(base, "-mis"):
		cfg.Mode = routing.Valiant
		base = strings.TrimSuffix(base, "-mis")
	case strings.HasSuffix(base, "-ugal"):
		cfg.Mode = routing.Adaptive
		base = strings.TrimSuffix(base, "-ugal")
	}
	switch {
	case base == "switch":
		cfg.Kind = core.SingleSwitch
		cfg.Terminals = 4
		return cfg, nil
	case base == "mesh":
		cfg.Kind = core.MeshCGroup
		cfg.ChipletDim, cfg.NoCDim = 2, 2
		return cfg, nil
	case base == "sw-based":
		cfg.Kind = core.SwitchDragonfly
		switch size {
		case "radix16":
			cfg.DF = core.Radix16DF()
		case "radix24":
			cfg.DF = core.Radix24DF()
		case "radix32":
			cfg.DF = core.Radix32DF()
		case "radix56":
			cfg.DF = core.Radix56DF()
		default:
			return cfg, fmt.Errorf("unknown size %q", size)
		}
		if groups > 0 {
			cfg.DF.G = groups
		}
		return cfg, nil
	case strings.HasPrefix(base, "sw-less"):
		cfg.Kind = core.SwitchlessDragonfly
		switch size {
		case "radix16":
			cfg.SLDF = core.Radix16SLDF()
		case "radix24":
			cfg.SLDF = core.Radix24SLDF()
		case "radix32":
			cfg.SLDF = core.Radix32SLDF()
		case "radix56":
			cfg.SLDF = core.Radix56SLDF()
		default:
			return cfg, fmt.Errorf("unknown size %q", size)
		}
		switch strings.TrimPrefix(base, "sw-less") {
		case "":
			cfg.IntraWidth = 1
		case "-2B":
			cfg.IntraWidth = 2
		case "-4B":
			cfg.IntraWidth = 4
		case "-rvc":
			cfg.Scheme = routing.ReducedVC
		default:
			return cfg, fmt.Errorf("unknown system %q", base)
		}
		if groups > 0 {
			cfg.SLDF.G = groups
		}
		return cfg, nil
	}
	return cfg, fmt.Errorf("unknown system %q", name)
}

// faultSpecFromFlags maps the -faults/-faultrouters/-faultseed flags to a
// build-time fault spec; both fractions at zero keep the build pristine
// (bitwise identical to a run without the flags, whatever the seed).
func faultSpecFromFlags(linkFrac, routerFrac float64, seed uint64) topology.FaultSpec {
	if linkFrac <= 0 && routerFrac <= 0 {
		return topology.FaultSpec{}
	}
	return topology.FaultSpec{
		Seed:           seed,
		LinkFraction:   linkFrac,
		RouterFraction: routerFrac,
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sldfsweep: "+format+"\n", args...)
	os.Exit(1)
}
