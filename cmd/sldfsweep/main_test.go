package main

import (
	"testing"

	"sldf/internal/core"
	"sldf/internal/routing"
)

func TestParseSystem(t *testing.T) {
	cases := []struct {
		name  string
		kind  core.SystemKind
		mode  routing.Mode
		width int32
	}{
		{"sw-based", core.SwitchDragonfly, routing.Minimal, 0},
		{"sw-based-mis", core.SwitchDragonfly, routing.Valiant, 0},
		{"sw-less", core.SwitchlessDragonfly, routing.Minimal, 1},
		{"sw-less-2B", core.SwitchlessDragonfly, routing.Minimal, 2},
		{"sw-less-4B", core.SwitchlessDragonfly, routing.Minimal, 4},
		{"sw-less-mis", core.SwitchlessDragonfly, routing.Valiant, 1},
		{"sw-less-2B-mis", core.SwitchlessDragonfly, routing.Valiant, 2},
		{"sw-less-mis-lower", core.SwitchlessDragonfly, routing.ValiantLower, 1},
		{"sw-less-ugal", core.SwitchlessDragonfly, routing.Adaptive, 1},
		{"switch", core.SingleSwitch, routing.Minimal, 0},
		{"mesh", core.MeshCGroup, routing.Minimal, 0},
	}
	for _, c := range cases {
		cfg, err := parseSystem(c.name, "radix16", 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cfg.Kind != c.kind || cfg.Mode != c.mode {
			t.Fatalf("%s: kind=%v mode=%v", c.name, cfg.Kind, cfg.Mode)
		}
		if c.width != 0 && cfg.IntraWidth != c.width {
			t.Fatalf("%s: width=%d want %d", c.name, cfg.IntraWidth, c.width)
		}
	}
}

func TestParseSystemRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"nope", "sw-less-9B", "sw-based-x"} {
		if _, err := parseSystem(bad, "radix16", 0); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if _, err := parseSystem("sw-less", "radix99", 0); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestParseSystemSizes(t *testing.T) {
	for _, size := range []string{"radix16", "radix24", "radix32"} {
		cfg, err := parseSystem("sw-less", size, 0)
		if err != nil {
			t.Fatalf("%s: %v", size, err)
		}
		if cfg.SLDF.AB == 0 {
			t.Fatalf("%s: SLDF params not set", size)
		}
	}
}

func TestFaultSpecFromFlags(t *testing.T) {
	if spec := faultSpecFromFlags(0, 0, 42); !spec.Empty() {
		t.Fatalf("zero fractions must stay pristine, got %+v", spec)
	}
	spec := faultSpecFromFlags(0.05, 0.02, 7)
	if spec.Empty() || spec.Seed != 7 || spec.LinkFraction != 0.05 || spec.RouterFraction != 0.02 {
		t.Fatalf("flags not mapped: %+v", spec)
	}
}

func TestParseSystemGroupsOverride(t *testing.T) {
	cfg, err := parseSystem("sw-less", "radix16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SLDF.G != 1 {
		t.Fatalf("groups override ignored: %d", cfg.SLDF.G)
	}
}
