// Command sldftables regenerates the paper's tables and the Fig. 9 layout
// study: Table I (chip survey), Table II (hop costs), Table III (network
// comparison), Table IV (simulation defaults), and the C-group floorplan
// feasibility report.
//
//	sldftables                # everything
//	sldftables -table 3       # only Table III
//	sldftables -fig 9         # only the layout report
//	sldftables -sat           # simulated saturation-rate summary (quick scale)
//	sldftables -experiments   # the experiment registry with figure mappings
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sldf/internal/analysis"
	"sldf/internal/campaign"
	"sldf/internal/core"
	"sldf/internal/cost"
	"sldf/internal/layout"
	"sldf/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package's historical usage-error status
		}
		fmt.Fprintf(os.Stderr, "sldftables: %v\n", err)
		os.Exit(1)
	}
}

// errUsage signals main that the flag package already reported the problem
// (usage text included) on the error writer.
var errUsage = errors.New("usage error")

// run executes the command with the given arguments, writing report output
// to w and diagnostics to errw. Split from main so tests can drive flag
// parsing and formatting.
func run(args []string, w, errw io.Writer) error {
	fs := flag.NewFlagSet("sldftables", flag.ContinueOnError)
	fs.SetOutput(errw)
	table := fs.String("table", "all", "which table: 1 | 2 | 3 | 4 | all")
	figN := fs.Int("fig", 0, "also print a figure study (9 = layout)")
	sat := fs.Bool("sat", false, "also print a simulated saturation-rate summary (single W-group, quick windows)")
	experiments := fs.Bool("experiments", false, "also print the experiment registry (every registered spec with its figure mapping)")
	jobs := fs.Int("jobs", 0, "sweep points measured concurrently for -sat (0 = all points at once)")
	cacheDir := fs.String("cache", "", "directory for the -sat on-disk point cache (empty = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is success, not failure
		}
		return errUsage // the flag package already printed error + usage
	}
	switch *table {
	case "1", "2", "3", "4", "all":
	default:
		return fmt.Errorf("unknown -table %q (want 1, 2, 3, 4 or all)", *table)
	}
	if *figN != 0 && *figN != 9 {
		return fmt.Errorf("unknown -fig %d (only the Fig. 9 layout study exists)", *figN)
	}

	want := func(id string) bool { return *table == "all" || *table == id }

	if want("1") {
		fmt.Fprintln(w, "TABLE I — external communication and switching capability")
		fmt.Fprintf(w, "%-10s %-10s %8s %10s %12s\n", "chip", "category", "lanes", "Gbps/lane", "Tb/s total")
		for _, c := range cost.TableI() {
			fmt.Fprintf(w, "%-10s %-10s %8d %10.0f %12.1f\n",
				c.Name, c.Category, c.Lanes, c.DataRateGb, c.ThroughputTb())
		}
		fmt.Fprintln(w)
	}

	if want("2") {
		fmt.Fprintln(w, "TABLE II — hop cost comparison")
		fmt.Fprintf(w, "%-10s %14s %14s\n", "hop", "latency (ns)", "energy (pJ/bit)")
		for _, name := range []string{"global", "local", "sr", "on-chip"} {
			c := analysis.TableII()[name]
			fmt.Fprintf(w, "%-10s %14.1f %14.1f\n", name, c.LatencyNS, c.EnergyPJ)
		}
		fmt.Fprintln(w)
	}

	if want("3") {
		fmt.Fprintln(w, "TABLE III — comparison of key specifications (radix-64 class)")
		fmt.Fprintf(w, "%-28s %6s %6s %8s %8s %10s %9s %7s %7s  %s\n",
			"network", "chipR", "swR", "switches", "cabinets", "processors",
			"cables", "Tlocal", "Tglob", "diameter")
		for _, r := range cost.TableIII() {
			fmt.Fprintf(w, "%-28s %6d %6d %8d %8d %10d %8dK %7.2f %7.2f  %s\n",
				r.Name, r.ChipRadix, r.SWRadix, r.Switches, r.Cabinets,
				r.Processors, r.Cables/1000, r.TLocal, r.TGlobal, r.Diameter)
		}
		sl, sw := cost.Slingshot(), cost.SwitchlessDragonfly()
		fmt.Fprintf(w, "\nswitch-less vs Slingshot at %d processors: %d→%d cabinets, "+
			"%d→0 switches, inter-cabinet cable ratio %.2f (paper: 73K/154K = 0.47)\n\n",
			sw.Processors, sl.Cabinets, sw.Cabinets, sl.Switches,
			sw.CableLengthE()/sl.CableLengthE())
	}

	if want("4") {
		sp := core.DefaultSim()
		fmt.Fprintln(w, "TABLE IV — default simulation parameters")
		fmt.Fprintf(w, "%-24s %v flits\n", "packet length", sp.PacketSize)
		fmt.Fprintf(w, "%-24s 32 flits\n", "input buffer size")
		fmt.Fprintf(w, "%-24s 1 flit/cycle\n", "base link bandwidth")
		fmt.Fprintf(w, "%-24s 1 cycle\n", "short-reach link delay")
		fmt.Fprintf(w, "%-24s 8 cycles\n", "long-reach link delay")
		fmt.Fprintf(w, "%-24s %d cycles after %d warmup\n", "simulation time", sp.Measure, sp.Warmup)
		fmt.Fprintln(w)
	}

	if *figN == 9 || (*table == "all" && *figN == 0) {
		r, err := layout.PaperPlan().Analyze()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "FIG. 9 — C-group layout feasibility (60mm × 60mm, 16 chiplets)")
		fmt.Fprintf(w, "%-32s %d\n", "external ports (k)", r.ExternalPorts)
		fmt.Fprintf(w, "%-32s %.0f Gb/s\n", "on-wafer bandwidth/port", r.OnWaferPortGbps)
		fmt.Fprintf(w, "%-32s %.0f Gb/s\n", "off-wafer bandwidth/port", r.OffWaferPortGbps)
		fmt.Fprintf(w, "%-32s %d (paper: 1536)\n", "differential pairs", r.DiffPairs)
		fmt.Fprintf(w, "%-32s %d (paper: ~5500)\n", "total IOs incl. power/ground", r.TotalIOs)
		fmt.Fprintf(w, "%-32s %.2f TB/s (paper: 12)\n", "on-wafer bisection", r.BisectionTBs)
		fmt.Fprintf(w, "%-32s %.2f TB/s (paper: 20.9)\n", "off-wafer aggregate", r.AggregateTBs)
		fmt.Fprintf(w, "%-32s %.0f%%\n", "silicon area utilization", r.AreaUtilization*100)
		fmt.Fprintf(w, "%-32s %d\n", "C-groups per wafer", r.CGroupsPerWafer)
		fmt.Fprintf(w, "%-32s %d (paper: 192)\n", "wafer IO channels (4 CG, k=48)", r.WaferIOChannels)
		fmt.Fprintf(w, "%-32s %v\n", "feasible", r.Feasible())
	}

	if *experiments {
		experimentRegistry(w)
	}

	if *sat {
		if err := saturationSummary(w, errw, *jobs, *cacheDir); err != nil {
			return err
		}
	}
	return nil
}

// experimentRegistry enumerates the core experiment registry: every
// registered spec with the figures it expands to and their series. The
// command prints data the registry declares — there is no per-figure code
// here to drift out of sync.
func experimentRegistry(w io.Writer) {
	fmt.Fprintln(w, "EXPERIMENT REGISTRY — declarative specs behind sldffigures")
	for _, spec := range core.Experiments() {
		fmt.Fprintf(w, "%-12s %s\n", spec.Name, spec.Title)
		plan := spec.Plan(core.ScaleQuick)
		for _, f := range plan.Figures {
			labels := make([]string, len(f.Series))
			for i, s := range f.Series {
				labels[i] = seriesLabel(s)
			}
			fmt.Fprintf(w, "  %-10s %-34s %d series: %s\n",
				f.Name, f.Title, len(f.Series), strings.Join(labels, ", "))
		}
		for _, f := range plan.Energy {
			labels := make([]string, len(f.Bars))
			for i, b := range f.Bars {
				labels[i] = b.Label
			}
			fmt.Fprintf(w, "  %-10s %-34s %d bars: %s\n",
				f.Name, f.Title, len(f.Bars), strings.Join(labels, ", "))
		}
		for _, f := range plan.Resilience {
			labels := make([]string, len(f.Series))
			for i, s := range f.Series {
				labels[i] = s.Label
			}
			fmt.Fprintf(w, "  %-10s %-34s %d series over %d fractions: %s\n",
				f.Name, f.Title, len(f.Series), len(f.Opts.Fractions), strings.Join(labels, ", "))
		}
		for _, f := range plan.Collectives {
			systems := map[string]bool{}
			schedules := map[string]bool{}
			for _, c := range f.Cases {
				label := c.Label
				if label == "" {
					label = c.Cfg.Label()
				}
				systems[label] = true
				schedules[c.Schedule] = true
			}
			fmt.Fprintf(w, "  %-10s %-34s %d cases: %d systems × %d schedules\n",
				f.Name, f.Title, len(f.Cases), len(systems), len(schedules))
		}
	}
	fmt.Fprintln(w)
}

// seriesLabel resolves a series spec's display label the way the runner
// does.
func seriesLabel(s core.SeriesSpec) string {
	if s.Label != "" {
		return s.Label
	}
	return s.Cfg.Label()
}

// saturationSummary measures saturation rates of the radix-16 systems
// confined to one W-group under uniform and bit-reverse traffic, fanning
// the sweep points out over the campaign runner.
func saturationSummary(w, errw io.Writer, jobs int, cacheDir string) error {
	opts := core.RunOptions{Jobs: jobs}
	if jobs <= 0 {
		opts.Jobs = 16
	}
	var diskCache *campaign.Cache
	if cacheDir != "" {
		c, err := campaign.OpenCache(cacheDir)
		if err != nil {
			return err
		}
		diskCache = c
		opts.Store = campaign.NewTiered[metrics.Point](
			campaign.NewMemoryLRU[metrics.Point](1024), c)
	}
	swb := core.Config{Kind: core.SwitchDragonfly, DF: core.Radix16DF(), Seed: 1, Workers: 1}
	swb.DF.G = 1
	swl := core.Config{Kind: core.SwitchlessDragonfly, SLDF: core.Radix16SLDF(), Seed: 1, Workers: 1}
	swl.SLDF.G = 1
	swl2 := swl
	swl2.IntraWidth = 2
	patterns := []string{"uniform", "bit-reverse"}
	rates := core.RateGrid(0.2, 2.0, 0.2)

	fmt.Fprintln(w, "SATURATION — single W-group, quick windows, latency-knee criterion")
	fmt.Fprintf(w, "%-14s", "system")
	for _, p := range patterns {
		fmt.Fprintf(w, "%14s", p)
	}
	fmt.Fprintln(w)
	for _, cfg := range []core.Config{swb, swl, swl2} {
		fmt.Fprintf(w, "%-14s", cfg.Label())
		for _, p := range patterns {
			s, err := core.SweepOpts(cfg, p, rates, core.QuickSim(), opts)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", cfg.Label(), p, err)
			}
			fmt.Fprintf(w, "%14.2f", s.Saturation(3))
		}
		fmt.Fprintln(w)
	}
	if diskCache != nil {
		fmt.Fprintln(errw, diskCache.StatsLine())
	}
	return nil
}
