// Command sldftables regenerates the paper's tables and the Fig. 9 layout
// study: Table I (chip survey), Table II (hop costs), Table III (network
// comparison), Table IV (simulation defaults), and the C-group floorplan
// feasibility report.
//
//	sldftables            # everything
//	sldftables -table 3   # only Table III
//	sldftables -fig 9     # only the layout report
package main

import (
	"flag"
	"fmt"
	"os"

	"sldf/internal/analysis"
	"sldf/internal/core"
	"sldf/internal/cost"
	"sldf/internal/layout"
)

func main() {
	table := flag.String("table", "all", "which table: 1 | 2 | 3 | 4 | all")
	figN := flag.Int("fig", 0, "also print a figure study (9 = layout)")
	flag.Parse()

	want := func(id string) bool { return *table == "all" || *table == id }

	if want("1") {
		fmt.Println("TABLE I — external communication and switching capability")
		fmt.Printf("%-10s %-10s %8s %10s %12s\n", "chip", "category", "lanes", "Gbps/lane", "Tb/s total")
		for _, c := range cost.TableI() {
			fmt.Printf("%-10s %-10s %8d %10.0f %12.1f\n",
				c.Name, c.Category, c.Lanes, c.DataRateGb, c.ThroughputTb())
		}
		fmt.Println()
	}

	if want("2") {
		fmt.Println("TABLE II — hop cost comparison")
		fmt.Printf("%-10s %14s %14s\n", "hop", "latency (ns)", "energy (pJ/bit)")
		for _, name := range []string{"global", "local", "sr", "on-chip"} {
			c := analysis.TableII()[name]
			fmt.Printf("%-10s %14.1f %14.1f\n", name, c.LatencyNS, c.EnergyPJ)
		}
		fmt.Println()
	}

	if want("3") {
		fmt.Println("TABLE III — comparison of key specifications (radix-64 class)")
		fmt.Printf("%-28s %6s %6s %8s %8s %10s %9s %7s %7s  %s\n",
			"network", "chipR", "swR", "switches", "cabinets", "processors",
			"cables", "Tlocal", "Tglob", "diameter")
		for _, r := range cost.TableIII() {
			fmt.Printf("%-28s %6d %6d %8d %8d %10d %8dK %7.2f %7.2f  %s\n",
				r.Name, r.ChipRadix, r.SWRadix, r.Switches, r.Cabinets,
				r.Processors, r.Cables/1000, r.TLocal, r.TGlobal, r.Diameter)
		}
		sl, sw := cost.Slingshot(), cost.SwitchlessDragonfly()
		fmt.Printf("\nswitch-less vs Slingshot at %d processors: %d→%d cabinets, "+
			"%d→0 switches, inter-cabinet cable ratio %.2f (paper: 73K/154K = 0.47)\n\n",
			sw.Processors, sl.Cabinets, sw.Cabinets, sl.Switches,
			sw.CableLengthE()/sl.CableLengthE())
	}

	if want("4") {
		sp := core.DefaultSim()
		fmt.Println("TABLE IV — default simulation parameters")
		fmt.Printf("%-24s %v flits\n", "packet length", sp.PacketSize)
		fmt.Printf("%-24s 32 flits\n", "input buffer size")
		fmt.Printf("%-24s 1 flit/cycle\n", "base link bandwidth")
		fmt.Printf("%-24s 1 cycle\n", "short-reach link delay")
		fmt.Printf("%-24s 8 cycles\n", "long-reach link delay")
		fmt.Printf("%-24s %d cycles after %d warmup\n", "simulation time", sp.Measure, sp.Warmup)
		fmt.Println()
	}

	if *figN == 9 || (*table == "all" && *figN == 0) {
		r, err := layout.PaperPlan().Analyze()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sldftables: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("FIG. 9 — C-group layout feasibility (60mm × 60mm, 16 chiplets)")
		fmt.Printf("%-32s %d\n", "external ports (k)", r.ExternalPorts)
		fmt.Printf("%-32s %.0f Gb/s\n", "on-wafer bandwidth/port", r.OnWaferPortGbps)
		fmt.Printf("%-32s %.0f Gb/s\n", "off-wafer bandwidth/port", r.OffWaferPortGbps)
		fmt.Printf("%-32s %d (paper: 1536)\n", "differential pairs", r.DiffPairs)
		fmt.Printf("%-32s %d (paper: ~5500)\n", "total IOs incl. power/ground", r.TotalIOs)
		fmt.Printf("%-32s %.2f TB/s (paper: 12)\n", "on-wafer bisection", r.BisectionTBs)
		fmt.Printf("%-32s %.2f TB/s (paper: 20.9)\n", "off-wafer aggregate", r.AggregateTBs)
		fmt.Printf("%-32s %.0f%%\n", "silicon area utilization", r.AreaUtilization*100)
		fmt.Printf("%-32s %d\n", "C-groups per wafer", r.CGroupsPerWafer)
		fmt.Printf("%-32s %d (paper: 192)\n", "wafer IO channels (4 CG, k=48)", r.WaferIOChannels)
		fmt.Printf("%-32s %v\n", "feasible", r.Feasible())
	}
}
