package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunAllTables(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"TABLE I — external communication",
		"TABLE II — hop cost comparison",
		"TABLE III — comparison of key specifications",
		"TABLE IV — default simulation parameters",
		"FIG. 9 — C-group layout feasibility",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTableFilter(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-table", "3"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "TABLE III") {
		t.Error("-table 3 did not print Table III")
	}
	for _, absent := range []string{"TABLE I —", "TABLE II —", "TABLE IV", "FIG. 9"} {
		if strings.Contains(out, absent) {
			t.Errorf("-table 3 leaked %q", absent)
		}
	}
	// Formatting: the Slingshot comparison line carries the headline claim.
	if !strings.Contains(out, "inter-cabinet cable ratio") {
		t.Error("Table III summary line missing")
	}
}

func TestRunFig9Only(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-table", "4", "-fig", "9"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "FIG. 9") || !strings.Contains(out, "TABLE IV") {
		t.Errorf("-table 4 -fig 9 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "differential pairs") {
		t.Error("layout report rows missing")
	}
}

func TestRunTableIVFormatting(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-table", "4"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"packet length            4 flits",
		"input buffer size        32 flits",
		"10000 cycles after 5000 warmup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV row %q missing in:\n%s", want, out)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h must succeed, got %v", err)
	}
	if !strings.Contains(errOut.String(), "Usage of sldftables") {
		t.Errorf("-h did not print usage on the error writer:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("-h wrote to the data stream: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-table", "7"},
		{"-fig", "8"},
		{"-no-such-flag"},
		{"-jobs", "not-a-number"},
	}
	for _, args := range cases {
		var buf strings.Builder
		if err := run(args, &buf, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunSaturationSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated saturation summary is slow")
	}
	var buf strings.Builder
	if err := run([]string{"-table", "4", "-sat", "-jobs", "8"}, &buf, io.Discard); err != nil {
		t.Fatalf("run -sat: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "SATURATION — single W-group") {
		t.Fatal("saturation header missing")
	}
	for _, sys := range []string{"sw-based", "sw-less", "sw-less-2B"} {
		if !strings.Contains(out, sys) {
			t.Errorf("saturation row for %s missing", sys)
		}
	}
}

func TestRunExperimentRegistry(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-table", "1", "-experiments"}, &buf, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"EXPERIMENT REGISTRY",
		"fig10a", "fig11b", "fig12a", "fig13b", "fig14b", "fig15a", "figres",
		"sw-less-2B", "sw-less-bi-2B", "sw-less-mis",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry listing missing %q in:\n%s", want, out)
		}
	}
}
