// Command slsim runs a single simulation load point and prints its metrics.
//
// Examples:
//
//	slsim -system sw-less -pattern uniform -rate 0.5
//	slsim -system sw-based -pattern worst-case -mode valiant -rate 0.2
//	slsim -system sw-less -scheme reduced -width 2 -rate 0.8 -warmup 2000 -measure 4000
//	slsim -system sw-less -rate 0.4 -churn "links=0.02,seed=7,start=2000,end=8000,repair=2000,policy=retry"
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sldf/internal/core"
	"sldf/internal/netsim"
	"sldf/internal/profiling"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

func main() {
	var (
		system   = flag.String("system", "sw-less", "system: sw-less | sw-based | switch | mesh")
		size     = flag.String("size", "radix16", "scale: radix16 | radix24 | radix32 | radix56")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform | bit-reverse | bit-shuffle | bit-transpose | hotspot | worst-case | ring | ring-bidir")
		rate     = flag.Float64("rate", 0.5, "offered load in flits/cycle/chip")
		mode     = flag.String("mode", "minimal", "routing mode: minimal | valiant | valiant-lower | adaptive")
		scheme   = flag.String("scheme", "baseline", "SLDF VC scheme: baseline | reduced")
		width    = flag.Int("width", 1, "intra-C-group bandwidth multiplier (1, 2, 4)")
		groups   = flag.Int("groups", 0, "override W-group count (1 = single group)")
		warmup   = flag.Int64("warmup", 5000, "warmup cycles")
		measure  = flag.Int64("measure", 10000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		printKey = flag.Bool("printkey", false, "also print the point's content-addressed campaign job key (correlates with -cache stores and sldfd workers)")
		churn    = flag.String("churn", "", "in-run fault timeline, e.g. links=0.02,seed=7,start=2000,end=8000,repair=2000,policy=retry (empty = no churn)")
		engine   = flag.String("engine", "", "simulation engine: active-set (default) | reference | flow")

		flowPar   = flag.Int("flowpar", 0, "flow engine: parallel trace/waterfill workers (0 = serial; results identical for any value)")
		flowCold  = flag.Bool("flowcold", false, "flow engine: discard the route-trace cache before the solve (results identical, for timing baselines)")
		flowSeed  = flag.Bool("flowseed", false, "flow engine: seed waterfill throttles from the previous solve (APPROXIMATE: results may differ)")
		flowStats = flag.Bool("flowstats", false, "flow engine: print cumulative solver statistics (traces, cache hits, phase walls) after the run")
	)
	prof := profiling.Flags()
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "slsim:", err)
		}
	}()

	cfg := core.Config{Seed: *seed, Workers: *workers, IntraWidth: int32(*width)}
	timeline, err := topology.ParseChurn(*churn)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Churn = timeline
	switch *mode {
	case "minimal":
		cfg.Mode = routing.Minimal
	case "valiant":
		cfg.Mode = routing.Valiant
	case "valiant-lower":
		cfg.Mode = routing.ValiantLower
	case "adaptive", "ugal":
		cfg.Mode = routing.Adaptive
	default:
		fatalf("unknown mode %q", *mode)
	}
	switch *scheme {
	case "baseline":
		cfg.Scheme = routing.BaselineVC
	case "reduced":
		cfg.Scheme = routing.ReducedVC
	default:
		fatalf("unknown scheme %q", *scheme)
	}
	switch *system {
	case "sw-less":
		cfg.Kind = core.SwitchlessDragonfly
		switch *size {
		case "radix16":
			cfg.SLDF = core.Radix16SLDF()
		case "radix24":
			cfg.SLDF = core.Radix24SLDF()
		case "radix32":
			cfg.SLDF = core.Radix32SLDF()
		case "radix56":
			cfg.SLDF = core.Radix56SLDF()
		default:
			fatalf("unknown size %q", *size)
		}
		if *groups > 0 {
			cfg.SLDF.G = *groups
		}
	case "sw-based":
		cfg.Kind = core.SwitchDragonfly
		switch *size {
		case "radix16":
			cfg.DF = core.Radix16DF()
		case "radix24":
			cfg.DF = core.Radix24DF()
		case "radix32":
			cfg.DF = core.Radix32DF()
		case "radix56":
			cfg.DF = core.Radix56DF()
		default:
			fatalf("unknown size %q", *size)
		}
		if *groups > 0 {
			cfg.DF.G = *groups
		}
	case "switch":
		cfg.Kind = core.SingleSwitch
		cfg.Terminals = 4
	case "mesh":
		cfg.Kind = core.MeshCGroup
		cfg.ChipletDim, cfg.NoCDim = 2, 2
	default:
		fatalf("unknown system %q", *system)
	}

	sys, err := core.Build(cfg)
	if err != nil {
		fatalf("build: %v", err)
	}
	defer sys.Close()
	fmt.Printf("system   : %s (%d chips, %d routers, %d links, %d W-groups)\n",
		sys.Label, sys.Chips, len(sys.Net.Routers), len(sys.Net.Links), sys.Groups)

	pat, err := sys.PatternFor(*pattern)
	if err != nil {
		fatalf("%v", err)
	}
	sp := core.SimParams{Warmup: *warmup, Measure: *measure,
		ExtraDrain: *measure / 2, PacketSize: 4}
	if sp.Engine, err = core.ParseEngine(*engine); err != nil {
		fatalf("%v", err)
	}
	sp.FlowWorkers = *flowPar
	sp.FlowCold = *flowCold
	sp.FlowSeedThrottles = *flowSeed
	if *printKey {
		// The same (config, pattern, rate, window) measured by a sweep —
		// locally or on a worker daemon — stores its point under this key.
		spec, err := core.PointJob(cfg, *pattern, *rate, sp)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("job key  : %s\n", spec.Key)
	}
	res, err := sys.MeasureLoad(pat, *rate, sp)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	st := res.Stats
	fmt.Printf("pattern  : %s @ %.3f flits/cycle/chip\n", *pattern, *rate)
	fmt.Printf("latency  : mean %.1f  p50 %.0f  p99 %.0f cycles (network-only mean %.1f)\n",
		res.Point.Latency, res.Point.P50, res.Point.P99, st.MeanNetLatency())
	fmt.Printf("accepted : %.4f flits/cycle/chip\n", res.Point.Throughput)
	fmt.Printf("packets  : injected %d, delivered %d, in-flight %d\n",
		st.InjectedPkts, st.DeliveredPkts, st.InFlightPkts)
	if !timeline.Empty() {
		fmt.Printf("churn    : dropped %d, retried %d, refused %d\n",
			st.DroppedPkts, st.RetriedPkts, st.RefusedPkts)
	}
	fmt.Printf("hops/pkt : on-chip %.2f  short-reach %.2f  local %.2f  global %.2f\n",
		st.MeanHops(netsim.HopOnChip), st.MeanHops(netsim.HopShortReach),
		st.MeanHops(netsim.HopLongLocal), st.MeanHops(netsim.HopGlobal))
	fmt.Printf("energy   : %.1f pJ/bit (intra-C-group %.1f + inter-C-group %.1f)\n",
		res.Energy.Total(), res.Energy.IntraCGroup, res.Energy.InterCGroup)
	if *flowStats {
		fs := sys.Net.FlowSolverStats()
		fmt.Printf("flow     : %d solves, %d segments, %d traces, %d cache hits, %d evicted, %d full invalidations\n",
			fs.Solves, fs.Segments, fs.Traces, fs.CacheHits, fs.Evicted, fs.FullInvalidations)
		fmt.Printf("flow     : %d waterfill rounds, %d transpose builds\n",
			fs.WaterfillIters, fs.TransposeBuilds)
		fmt.Printf("flowwall : trace %v, waterfill %v, histogram %v\n",
			fs.TraceWall.Round(time.Microsecond), fs.WaterfillWall.Round(time.Microsecond),
			fs.HistWall.Round(time.Microsecond))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "slsim: "+format+"\n", args...)
	os.Exit(1)
}
