package sldf_test

import (
	"fmt"

	"sldf"
)

// ExampleBuild constructs the smallest interesting system — one wafer
// C-group of four chiplets — and reports its shape.
func ExampleBuild() {
	sys, err := sldf.Build(sldf.Config{
		Kind: sldf.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	fmt.Printf("%s: %d chips, %d routers\n", sys.Label, sys.Chips, len(sys.Net.Routers))
	// Output: 2d-mesh: 4 chips, 16 routers
}

// ExampleAnalysis evaluates the paper's closed-form model for the Table III
// case study without any simulation.
func ExampleAnalysis() {
	a := sldf.Analysis{N: 12, M: 4, A: 4, B: 8, H: 17}
	fmt.Printf("k=%d g=%d N=%d Tcg=%.0f\n", a.K(), a.Groups(), a.Terminals(), a.TCGroup())
	// Output: k=48 g=545 N=279040 Tcg=3
}

// ExampleSystem_MeasureLoad runs one load point on a switch and prints the
// accepted throughput, which tracks the offered load below saturation.
func ExampleSystem_MeasureLoad() {
	sys, err := sldf.Build(sldf.Config{Kind: sldf.SingleSwitch, Terminals: 4, Seed: 7})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	pat, _ := sys.PatternFor("uniform")
	res, err := sys.MeasureLoad(pat, 0.5, sldf.SimParams{
		Warmup: 500, Measure: 2000, ExtraDrain: 500, PacketSize: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted %.1f flits/cycle/chip\n", res.Point.Throughput)
	// Output: accepted 0.5 flits/cycle/chip
}
