// Adversarial: show why non-minimal routing matters (paper Fig. 13). Under
// the worst-case pattern every chip of W-group i talks only to W-group i+1,
// so minimal routing funnels a whole group's traffic through one global
// channel. Valiant routing spreads it over every W-group and recovers an
// order of magnitude of throughput.
package main

import (
	"fmt"
	"log"
	"os"

	"sldf"
)

func main() {
	sp := sldf.SimParams{Warmup: 600, Measure: 1200, ExtraDrain: 600, PacketSize: 4}
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	if os.Getenv("SLDF_QUICK") != "" {
		// CI smoke mode: tiny windows and a thin rate grid.
		sp = sldf.SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
		rates = []float64{0.05, 0.2}
	}

	base := sldf.Config{Kind: sldf.SwitchlessDragonfly, SLDF: sldf.Radix16SLDF(), Seed: 7}
	valiant := base
	valiant.Mode = sldf.Valiant
	valiant2B := valiant
	valiant2B.IntraWidth = 2

	for _, pattern := range []string{"worst-case", "hotspot"} {
		fmt.Printf("== %s traffic on the radix-16 switch-less Dragonfly (1312 chips)\n", pattern)
		for _, c := range []struct {
			cfg   sldf.Config
			label string
		}{
			{base, "minimal"},
			{valiant, "valiant"},
			{valiant2B, "valiant-2B"},
		} {
			series, err := sldf.Sweep(c.cfg, pattern, rates, sp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11s", c.label)
			for _, p := range series.Points {
				fmt.Printf("  %.2f→%.3f", p.Rate, p.Throughput)
			}
			fmt.Printf("   (offered→accepted flits/cycle/chip)\n")
		}
		fmt.Println()
	}
	fmt.Println("minimal routing pins the worst case to 1/40 of the global channels;")
	fmt.Println("valiant misrouting recovers throughput at the cost of one extra")
	fmt.Println("global + two extra local hops per packet (paper Sec. V-B4).")
}
