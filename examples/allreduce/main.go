// AllReduce: compare ring-AllReduce bandwidth on a switch-attached C-group
// vs the wafer C-group mesh (paper Fig. 14a), then measure the end-to-end
// makespan of pushing a fixed data volume around the ring — the metric an
// ML-training user actually cares about.
package main

import (
	"fmt"
	"log"
	"os"

	"sldf"
	"sldf/internal/core"
	"sldf/internal/netsim"
	"sldf/internal/traffic"
)

func main() {
	sp := sldf.SimParams{Warmup: 800, Measure: 1600, ExtraDrain: 800, PacketSize: 4}
	rates := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	volume := int64(4096)
	if os.Getenv("SLDF_QUICK") != "" {
		// CI smoke mode: tiny windows, thin grid, small ring volume.
		sp = sldf.SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
		rates = []float64{1.0, 3.0}
		volume = 256
	}

	fmt.Println("== steady-state ring throughput (Fig. 14a)")
	systems := []struct {
		cfg     sldf.Config
		pattern string
		label   string
	}{
		{sldf.Config{Kind: sldf.SingleSwitch, Terminals: 4, Seed: 1}, "ring", "sw-based-uni"},
		{sldf.Config{Kind: sldf.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1}, "ring", "sw-less-uni"},
		{sldf.Config{Kind: sldf.SingleSwitch, Terminals: 4, Seed: 1}, "ring-bidir", "sw-based-bi"},
		{sldf.Config{Kind: sldf.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1}, "ring-bidir", "sw-less-bi"},
	}
	for _, s := range systems {
		series, err := sldf.Sweep(s.cfg, s.pattern, rates, sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s saturates ≈ %.1f flits/cycle/chip (peak accepted %.2f)\n",
			s.label, series.Saturation(3), series.MaxThroughput())
	}

	// Makespan mode: every chip must circulate the volume to its ring
	// neighbour (one AllReduce step). Lower is better; the mesh C-group's
	// four injection ports per chip finish first.
	fmt.Printf("\n== fixed-volume ring step makespan (%d flits/chip)\n", volume)
	for _, s := range systems[:2] {
		sys, err := core.Build(s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		ring := traffic.Ring{N: int32(sys.Chips)}
		vol := traffic.NewVolume(ring, volume, 4, sys.Chips, sys.NodesPerChip)
		sys.Net.SetTraffic(vol, 4, netsim.DstSameIndex)
		sys.Net.StartMeasurement()
		// RunUntil drains to the exact completion cycle — no batch-size
		// quantization in the reported makespan.
		cycles, err := sys.Net.RunUntil(func(n *netsim.Network) bool {
			return n.InFlight() == 0 && vol.Done()
		}, 1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Net.Snapshot()
		fmt.Printf("  %-14s %6d cycles for %d packets (%.2f flits/cycle/chip effective)\n",
			s.label, cycles, st.DeliveredPkts,
			float64(st.DeliveredPkts*4)/float64(cycles)/float64(sys.Chips))
		sys.Close()
	}
}
