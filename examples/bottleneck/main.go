// Bottleneck: use the simulator's link-utilization statistics to show *why*
// the uniform-bandwidth switch-less Dragonfly loses global throughput
// (paper Fig. 12 and Sec. III-B2): under heavy global traffic the C-group
// mesh links saturate long before the long-reach channels, and doubling
// only the intra-C-group bandwidth ("2B") removes the bottleneck.
package main

import (
	"fmt"
	"log"
	"os"

	"sldf"
	"sldf/internal/core"
	"sldf/internal/netsim"
)

func main() {
	sp := sldf.SimParams{Warmup: 600, Measure: 1200, ExtraDrain: 600, PacketSize: 4}
	if os.Getenv("SLDF_QUICK") != "" {
		// CI smoke mode: tiny measurement windows.
		sp = sldf.SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
	}
	const rate = 0.7 // above the 1B knee, below the 2B knee

	for _, width := range []int32{1, 2} {
		cfg := sldf.Config{
			Kind:       sldf.SwitchlessDragonfly,
			SLDF:       sldf.Radix16SLDF(),
			IntraWidth: width,
			Seed:       11,
		}
		sys, err := core.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		pat, _ := sys.PatternFor("uniform")
		res, err := sys.MeasureLoad(pat, rate, sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s @ %.1f flits/cycle/chip global uniform\n", sys.Label, rate)
		fmt.Printf("   accepted %.3f, mean latency %.0f cycles\n",
			res.Point.Throughput, res.Point.Latency)
		fmt.Printf("   class utilization: on-chip %.2f  short-reach %.2f  local %.2f  global %.2f\n",
			res.Utilization[netsim.HopOnChip], res.Utilization[netsim.HopShortReach],
			res.Utilization[netsim.HopLongLocal], res.Utilization[netsim.HopGlobal])
		fmt.Printf("   hottest links:\n")
		for _, u := range res.Hottest[:4] {
			l := u.Link
			fmt.Printf("     %-8s router %5d → %5d   %.0f%% busy\n",
				l.Class, l.Src, l.Dst, u.Utilization*100)
		}
		sys.Close()
		fmt.Println()
	}
	fmt.Println("with uniform bandwidth (1B) the mesh links run far hotter than the")
	fmt.Println("long-reach channels — the Eq. 6 bisection limit in action; at 2B the")
	fmt.Println("pressure moves back to the local/global channels where it belongs.")
}
