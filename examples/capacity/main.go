// Capacity: explore the architecture's design space analytically — scan the
// balanced rule of paper Eq. 3 across C-group sizes, reproduce the Table III
// cost comparison, and check the Fig. 9 wafer floorplan — without running a
// single simulation cycle.
package main

import (
	"fmt"
	"log"

	"sldf"
)

func main() {
	fmt.Println("== Eq. 1/3 design space: balanced configurations n=3m, ab=2m²")
	fmt.Printf("%4s %6s %6s %6s %8s %14s %10s\n", "m", "k", "ab", "g", "chips/W", "system chips", "T_global")
	for m := 2; m <= 8; m++ {
		a := sldf.Analysis{N: 3 * m, M: m, A: 1, B: 2 * m * m}
		if err := a.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %6d %6d %6d %8d %14d %10.2f\n",
			m, a.K(), a.AB(), a.Groups(), a.AB()*m*m, a.Terminals(), a.TGlobal())
	}

	fmt.Println("\n== the paper's case study (Table III scale, n=12 m=4 ab=32 h=17)")
	cs := sldf.Analysis{N: 12, M: 4, A: 4, B: 8, H: 17}
	fmt.Printf("k=%d ports, g=%d W-groups, N=%d chiplets\n", cs.K(), cs.Groups(), cs.Terminals())
	fmt.Printf("bounds: T_cgroup ≤ %.1f, T_local ≤ %.1f, T_global ≤ %.2f flits/cycle/chip\n",
		cs.TCGroup(), cs.TLocal(), cs.TGlobal())

	fmt.Println("\n== Table III cost comparison (derived)")
	for _, r := range sldf.TableIII() {
		fmt.Printf("%-30s %8d switches %6d cabinets %8d processors\n",
			r.Name, r.Switches, r.Cabinets, r.Processors)
	}

	fmt.Println("\n== Fig. 9 wafer floorplan")
	rep, err := sldf.LayoutReport()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C-group: %d ports, %.1f TB/s bisection, %.1f TB/s off-wafer aggregate\n",
		rep.ExternalPorts, rep.BisectionTBs, rep.AggregateTBs)
	fmt.Printf("silicon utilization %.0f%%, %d C-groups/wafer, feasible=%v\n",
		rep.AreaUtilization*100, rep.CGroupsPerWafer, rep.Feasible())
}
