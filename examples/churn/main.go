// Churn: live fault timelines — components die and come back at seeded
// cycles *while the simulation runs*, routing recomputes around the
// corpses, and stranded packets are dropped or retried per policy. Two
// walkthroughs:
//
//  1. A steady-state load point on the wafer mesh under a seeded
//     death/repair window, with the full churn accounting (dropped,
//     retried, refused — and packet conservation).
//  2. The question the churn experiment family answers end to end: what
//     does a chip death at step k cost an in-flight AllReduce? The same
//     collective runs undisturbed and with a mid-flight kill (the
//     schedule recomputes over the survivors), and the makespan delta is
//     the exact price of the death.
//
// Every number here is deterministic: same seeds, same timeline, same
// output, on either cycle engine.
package main

import (
	"fmt"
	"log"
	"os"

	"sldf"
	"sldf/internal/core"
)

func main() {
	sp := sldf.SimParams{Warmup: 500, Measure: 2000, ExtraDrain: 1000, PacketSize: 4}
	spec := "links=0.03,routers=0.02,seed=7,start=700,end=2500,repair=600,policy=retry"
	volume := int64(512)
	if os.Getenv("SLDF_QUICK") != "" {
		// CI smoke mode: tiny windows, same structure.
		sp = sldf.SimParams{Warmup: 100, Measure: 400, ExtraDrain: 200, PacketSize: 4}
		spec = "links=0.03,routers=0.02,seed=7,start=150,end=500,repair=120,policy=retry"
		volume = 128
	}

	// 1. Steady state under churn: the timeline arms the build (fault-grade
	// routing tables), then kills and repairs sampled components at seeded
	// cycles mid-measurement.
	timeline, err := sldf.ParseChurn(spec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sldf.Config{Kind: sldf.MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 7}
	cfg.Churn = timeline
	sys, err := sldf.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.MeasureLoad(pat, 0.4, sp)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("== uniform 0.4 on %s under churn %q\n", sys.Label, spec)
	fmt.Printf("  latency %.1f cycles, accepted %.3f flits/cycle/chip\n",
		res.Point.Latency, res.Point.Throughput)
	fmt.Printf("  injected %d = delivered %d + dropped %d + in-flight %d (retried %d, refused %d)\n",
		st.InjectedPkts, st.DeliveredPkts, st.DroppedPkts, st.InFlightPkts,
		st.RetriedPkts, st.RefusedPkts)
	if st.InjectedPkts != st.DeliveredPkts+st.DroppedPkts+st.InFlightPkts {
		log.Fatalf("packet conservation violated")
	}
	sys.Close()

	// 2. Mid-AllReduce chip death. An armed zero-event timeline builds
	// fault-grade without scheduling any sampled churn; the kill is then
	// injected at an exact step boundary, so the baseline and the disturbed
	// run differ by the death alone.
	ccfg := sldf.Config{Kind: sldf.MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1}
	ccfg.Churn.Armed = true
	csys, err := core.Build(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	defer csys.Close()
	cs := core.ChurnCollectiveSpec{
		Cfg: ccfg, Schedule: "ring", Volume: volume, KillChip: -1,
	}
	base, err := csys.MeasureChurnCollective(cs)
	if err != nil {
		log.Fatal(err)
	}
	csys.Reset()
	cs.KillChip, cs.KillStep = 1, 2
	kill, err := csys.MeasureChurnCollective(cs)
	if err != nil {
		log.Fatal(err)
	}
	pre, post := int64(kill.Aux[1]), int64(kill.Aux[2])
	fmt.Printf("\n== ring AllReduce (%d flits/chip) on %s, chip %d dies before step %d\n",
		volume, csys.Label, cs.KillChip, cs.KillStep)
	fmt.Printf("  undisturbed makespan %6.0f cycles\n", base.Latency)
	fmt.Printf("  disturbed   makespan %6.0f cycles (%d pre-kill + %d post-kill)\n",
		kill.Latency, pre, post)
	fmt.Printf("  cost of the death    %+6.0f cycles (dropped %d, retried %d)\n",
		kill.Latency-base.Latency, int64(kill.Aux[3]), int64(kill.Aux[4]))
}
