// Quickstart: build a single-W-group switch-less Dragonfly (8 C-groups, 32
// chips), offer uniform traffic at half load, and print what the library
// measured — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"sldf"
)

func main() {
	cfg := sldf.Config{
		Kind: sldf.SwitchlessDragonfly,
		SLDF: sldf.Radix16SLDF(),
		Seed: 42,
	}
	cfg.SLDF.G = 1 // single W-group: a one-cabinet system (Sec. III-D1)

	sys, err := sldf.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("built %q: %d chips, %d routers, %d links\n",
		sys.Label, sys.Chips, len(sys.Net.Routers), len(sys.Net.Links))

	pat, err := sys.PatternFor("uniform")
	if err != nil {
		log.Fatal(err)
	}
	sp := sldf.SimParams{Warmup: 1000, Measure: 2000, ExtraDrain: 1000, PacketSize: 4}
	if os.Getenv("SLDF_QUICK") != "" {
		// CI smoke mode: tiny measurement windows.
		sp = sldf.SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
	}
	res, err := sys.MeasureLoad(pat, 0.5, sp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("uniform @ 0.5 flits/cycle/chip:\n")
	fmt.Printf("  mean latency   %.1f cycles (p99 %.0f)\n", res.Point.Latency, res.Point.P99)
	fmt.Printf("  accepted load  %.3f flits/cycle/chip\n", res.Point.Throughput)
	fmt.Printf("  energy         %.1f pJ/bit\n", res.Energy.Total())

	// The same architecture, analytically (paper Eqs. 1-5).
	a := sldf.Analysis{N: 6, M: 2, A: 1, B: 8, H: 5}
	fmt.Printf("analytical bounds: T_cgroup ≤ %.1f, T_local ≤ %.1f, T_global ≤ %.2f flits/cycle/chip\n",
		a.TCGroup(), a.TLocal(), a.TGlobal())
}
