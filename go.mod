module sldf

go 1.24
