// Package analysis implements the paper's closed-form architecture model
// (Sec. III-B): scalability (Eq. 1), throughput bounds (Eqs. 2–6), the
// balanced-configuration rule (Eq. 3), and the diameter decomposition
// (Eq. 7) with the hop-cost constants of Table II.
package analysis

import "fmt"

// Params are the paper's architecture symbols (Sec. III).
type Params struct {
	N int // n: interconnection interfaces per chiplet
	M int // m: chiplets per C-group edge (C-group = m×m chiplets)
	A int // a: C-groups per wafer
	B int // b: wafers per W-group
	H int // h: global ports per C-group (0 → maximum k-ab+1)
}

// K returns the external port count of a C-group: k = n·m.
func (p Params) K() int { return p.N * p.M }

// AB returns the number of C-groups per W-group.
func (p Params) AB() int { return p.A * p.B }

// GlobalPorts returns h, defaulting to the maximum k-ab+1 (Sec. III-A4).
func (p Params) GlobalPorts() int {
	if p.H > 0 {
		return p.H
	}
	return p.K() - p.AB() + 1
}

// Groups returns g = ab·h + 1, the number of W-groups.
func (p Params) Groups() int { return p.AB()*p.GlobalPorts() + 1 }

// Terminals returns N of Eq. 1: total chiplets = ab·m²·g.
func (p Params) Terminals() int {
	return p.AB() * p.M * p.M * p.Groups()
}

// Validate rejects configurations where the local port budget is exceeded:
// a C-group needs ab-1 local + h global ports out of its k external ports.
func (p Params) Validate() error {
	if p.N < 1 || p.M < 1 || p.A < 1 || p.B < 1 {
		return fmt.Errorf("analysis: non-positive parameter in %+v", p)
	}
	need := p.AB() - 1 + p.GlobalPorts()
	if need > p.K() {
		return fmt.Errorf("analysis: %d ports needed but k = %d", need, p.K())
	}
	return nil
}

// TGlobal returns the Eq. 2 upper bound on global saturation throughput in
// flits/cycle/chip: (mn − ab + 1)/m².
func (p Params) TGlobal() float64 {
	return float64(p.M*p.N-p.AB()+1) / float64(p.M*p.M)
}

// TLocal returns the Eq. 4 intra-W-group saturation bound: ab/m².
func (p Params) TLocal() float64 {
	return float64(p.AB()) / float64(p.M*p.M)
}

// TCGroup returns the Eq. 5 intra-C-group saturation bound: n/m.
func (p Params) TCGroup() float64 {
	return float64(p.N) / float64(p.M)
}

// BisectionCGroup returns Eq. 6: the full-duplex bisection bandwidth of the
// 2D-mesh C-group in flits/cycle, nm/2 = k/2.
func (p Params) BisectionCGroup() float64 {
	return float64(p.N*p.M) / 2
}

// Balanced returns the Eq. 3 recommendation (n = 3m, ab = 2m²) for the
// given m.
func Balanced(m int) Params {
	return Params{N: 3 * m, M: m, A: 1, B: 2 * m * m}
}

// IsBalanced reports whether the configuration satisfies Eq. 3.
func (p Params) IsBalanced() bool {
	return p.N == 3*p.M && p.AB() == 2*p.M*p.M
}

// HopCost is a latency/energy cost pair for one channel class (Table II).
type HopCost struct {
	LatencyNS float64
	EnergyPJ  float64 // pJ/bit
}

// TableII returns the paper's hop-cost constants.
func TableII() map[string]HopCost {
	return map[string]HopCost{
		"global":  {LatencyNS: 150, EnergyPJ: 20},
		"local":   {LatencyNS: 150, EnergyPJ: 20},
		"sr":      {LatencyNS: 5, EnergyPJ: 2},
		"on-chip": {LatencyNS: 1, EnergyPJ: 0.1},
	}
}

// Diameter describes Eq. 7: the worst-case hop composition of the
// switch-less Dragonfly: Hg + 2·Hl + (8m−2)·Hsr.
type Diameter struct {
	Global     int // Hg count
	Local      int // Hl count
	ShortReach int // Hsr count
}

// SLDFDiameter returns Eq. 7 for C-group edge size m (in chiplets).
func SLDFDiameter(m int) Diameter {
	return Diameter{Global: 1, Local: 2, ShortReach: 8*m - 2}
}

// SwitchDragonflyDiameter returns the baseline diameter composition
// Hg + 2Hl + 2H*l (terminal hops priced as local hops).
func SwitchDragonflyDiameter() Diameter {
	return Diameter{Global: 1, Local: 4, ShortReach: 0}
}

// LatencyNS prices a diameter with Table II constants.
func (d Diameter) LatencyNS() float64 {
	c := TableII()
	return float64(d.Global)*c["global"].LatencyNS +
		float64(d.Local)*c["local"].LatencyNS +
		float64(d.ShortReach)*c["sr"].LatencyNS
}

// PaperRadix16 is the simulated small configuration: each C-group is a 2×2
// array of chiplets with n=6 interfaces each → k=12 ports (7 local + 5
// global), ab=8 C-groups per W-group, g=41, 1312 chips.
func PaperRadix16() Params { return Params{N: 6, M: 2, A: 1, B: 8, H: 5} }

// PaperTableIII is the Slingshot-scale case study of Sec. III-C: n=12, m=4,
// a=4, b=8 → k=48, ab=32, h=17, g=545, N=279040.
func PaperTableIII() Params { return Params{N: 12, M: 4, A: 4, B: 8, H: 17} }
