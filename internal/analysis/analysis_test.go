package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq1PaperExamples(t *testing.T) {
	// "Using a very small configuration (a,b,m,n) = (2,4,2,6), the total
	// chiplet number can reach 1K" — exactly 1312.
	p := Params{A: 2, B: 4, M: 2, N: 6}
	if p.H != 0 {
		t.Fatal("test expects default h")
	}
	if g := p.Groups(); g != 41 {
		t.Fatalf("g = %d, want 41", g)
	}
	if n := p.Terminals(); n != 1312 {
		t.Fatalf("N = %d, want 1312", n)
	}
}

func TestEq1TableIIIConfig(t *testing.T) {
	p := PaperTableIII()
	if k := p.K(); k != 48 {
		t.Fatalf("k = %d, want 48", k)
	}
	if ab := p.AB(); ab != 32 {
		t.Fatalf("ab = %d, want 32", ab)
	}
	if h := p.GlobalPorts(); h != 17 {
		t.Fatalf("h = %d, want 17", h)
	}
	if g := p.Groups(); g != 545 {
		t.Fatalf("g = %d, want 545", g)
	}
	if n := p.Terminals(); n != 279040 {
		t.Fatalf("N = %d, want 279040", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEq1Radix16(t *testing.T) {
	p := PaperRadix16()
	if p.Groups() != 41 || p.Terminals() != 1312 {
		t.Fatalf("radix-16 analysis: g=%d N=%d", p.Groups(), p.Terminals())
	}
	if p.GlobalPorts() != 5 {
		t.Fatalf("h = %d, want 5", p.GlobalPorts())
	}
}

func TestThroughputBoundsTableIII(t *testing.T) {
	p := PaperTableIII()
	// Paper Table III: switch-less Dragonfly Tlocal = 2 (with 3 intra-CG),
	// Tglobal = 1.
	if got := p.TLocal(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Tlocal = %v, want 2", got)
	}
	if got := p.TCGroup(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Tcg = %v, want 3", got)
	}
	if got := p.TGlobal(); math.Abs(got-17.0/16) > 1e-9 {
		t.Fatalf("Tglobal = %v, want 17/16", got)
	}
	// Eq. 6: Bcg = k/2 = 24.
	if got := p.BisectionCGroup(); math.Abs(got-24) > 1e-9 {
		t.Fatalf("Bcg = %v, want 24", got)
	}
}

func TestBalancedRule(t *testing.T) {
	for m := 1; m <= 8; m++ {
		p := Balanced(m)
		if !p.IsBalanced() {
			t.Fatalf("Balanced(%d) not balanced: %+v", m, p)
		}
		// Balanced configurations achieve Tglobal ≥ 1 flit/cycle/chip
		// (the paper's load-balance target).
		if tg := p.TGlobal(); tg < 1-1e-9 {
			t.Fatalf("balanced m=%d: Tglobal %v < 1", m, tg)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("balanced m=%d invalid: %v", m, err)
		}
	}
}

func TestTGlobalBalancedIsUnity(t *testing.T) {
	// With Eq. 3 the bound is exactly (3m²-2m²+1)/m² = 1 + 1/m².
	f := func(mRaw uint8) bool {
		m := int(mRaw%8) + 1
		p := Balanced(m)
		want := 1 + 1/float64(m*m)
		return math.Abs(p.TGlobal()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOverSubscription(t *testing.T) {
	// ab too large for k: 6·2=12 ports but ab-1+h = 31+1 needed.
	p := Params{N: 6, M: 2, A: 8, B: 4, H: 1}
	if err := p.Validate(); err == nil {
		t.Fatal("oversubscribed config must fail validation")
	}
}

func TestDiameterEq7(t *testing.T) {
	d := SLDFDiameter(4) // m = 4 → 8m-2 = 30 short-reach hops
	if d.ShortReach != 30 || d.Global != 1 || d.Local != 2 {
		t.Fatalf("Eq.7 composition %+v", d)
	}
	// Latency pricing: 150 + 2·150 + 30·5 = 600 ns.
	if got := d.LatencyNS(); math.Abs(got-600) > 1e-9 {
		t.Fatalf("diameter latency %v, want 600", got)
	}
	sw := SwitchDragonflyDiameter()
	// Hg + 2Hl + 2H*l = 5 long hops → 750 ns: the switch-less diameter is
	// cheaper despite more hops.
	if got := sw.LatencyNS(); math.Abs(got-750) > 1e-9 {
		t.Fatalf("switch-based diameter latency %v, want 750", got)
	}
}

func TestTableIIConstants(t *testing.T) {
	c := TableII()
	if c["global"].EnergyPJ < c["sr"].EnergyPJ || c["sr"].EnergyPJ < c["on-chip"].EnergyPJ {
		t.Fatal("Table II energy ordering violated")
	}
	if c["sr"].LatencyNS >= c["local"].LatencyNS {
		t.Fatal("short-reach must be faster than cable hops")
	}
}

func TestThroughputMonotonicity(t *testing.T) {
	// Increasing n (chiplet interfaces) must not decrease any bound.
	f := func(mRaw, nRaw uint8) bool {
		m := int(mRaw%4) + 1
		n := int(nRaw%8) + 4
		p1 := Params{N: n, M: m, A: 1, B: 2, H: 1}
		p2 := Params{N: n + 1, M: m, A: 1, B: 2, H: 1}
		return p2.TGlobal() >= p1.TGlobal() &&
			p2.TCGroup() >= p1.TCGroup() &&
			p2.BisectionCGroup() >= p1.BisectionCGroup()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
