package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sldf/internal/metrics"
)

// JobSpec is a declarative, serializable measurement job: data, not code.
// A spec names a registered executor kind and carries its JSON payload, so
// the identical job can run in-process, be shipped to a worker daemon, or
// be satisfied straight from a store by its content-addressed key.
type JobSpec struct {
	// Key is the job's content address: it must cover every input that
	// affects the result, and doubles as the store key. An empty key
	// disables caching for the job.
	Key string `json:"key"`
	// Kind names the registered executor that interprets Payload.
	Kind string `json:"kind"`
	// Payload is the executor-specific job description.
	Payload json.RawMessage `json:"payload"`
}

// Executor interprets one kind of JobSpec payload. The worker carries
// reusable per-goroutine state exactly as for closure jobs.
type Executor func(w *Worker, payload json.RawMessage) (metrics.Point, error)

var (
	executorsMu sync.RWMutex
	executors   = map[string]Executor{}
)

// RegisterExecutor installs the executor for a spec kind. Kinds should be
// versioned (e.g. "core/point@v1") so payload-schema changes register a new
// kind instead of silently reinterpreting old specs. Registering a kind
// twice panics: two executors for one kind could produce divergent results
// for the same content address.
func RegisterExecutor(kind string, fn Executor) {
	executorsMu.Lock()
	defer executorsMu.Unlock()
	if _, dup := executors[kind]; dup {
		panic(fmt.Sprintf("campaign: executor %q registered twice", kind))
	}
	executors[kind] = fn
}

// ExecutorKinds lists the registered spec kinds, sorted.
func ExecutorKinds() []string {
	executorsMu.RLock()
	defer executorsMu.RUnlock()
	kinds := make([]string, 0, len(executors))
	for k := range executors { //sldf:nondeterministic-ok keys are sorted immediately after collection

		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// ExecuteSpec runs one spec on the worker via the executor registry.
func ExecuteSpec(w *Worker, spec JobSpec) (metrics.Point, error) {
	executorsMu.RLock()
	fn, ok := executors[spec.Kind]
	executorsMu.RUnlock()
	if !ok {
		return metrics.Point{}, fmt.Errorf("campaign: no executor registered for job kind %q", spec.Kind)
	}
	return fn(w, spec.Payload)
}

// ExecOptions configure a Backend execution.
type ExecOptions struct {
	// Jobs is the in-process concurrency for backends that execute here
	// (LocalBackend; values <= 1 run serially). Remote backends dispatch
	// one batch per live worker and run measurements at each daemon's own
	// -jobs setting, so they ignore this field.
	Jobs int
	// Store, when non-nil, satisfies specs by key before execution and
	// records fresh results after.
	Store PointStore
}

// Backend executes declarative job specs somewhere — this process, or a
// fleet of worker daemons — and returns their points indexed like the
// input. Every backend must be result-transparent: for the same specs the
// returned points are bitwise identical to a serial in-process run,
// whatever the sharding, concurrency, or mid-run worker failures.
type Backend interface {
	// Name identifies the backend for logs and stats lines.
	Name() string
	// Execute runs the specs. On error the slice still has len(specs) with
	// incomplete slots zero, and the reported error is the failing spec
	// with the lowest index among those that ran.
	Execute(specs []JobSpec, opts ExecOptions) ([]metrics.Point, error)
}

// LocalBackend executes specs on this process's worker goroutines — the
// historical in-process pool behind every sweep, now one implementation of
// the Backend seam.
type LocalBackend struct{}

// Name implements Backend.
func (LocalBackend) Name() string { return "local" }

// Execute implements Backend via the generic scheduler.
func (LocalBackend) Execute(specs []JobSpec, opts ExecOptions) ([]metrics.Point, error) {
	jobs := make([]Job[metrics.Point], len(specs))
	for i, spec := range specs {
		jobs[i] = Job[metrics.Point]{
			Key: spec.Key,
			Run: func(w *Worker) (metrics.Point, error) { return ExecuteSpec(w, spec) },
		}
	}
	return Run(jobs, Options[metrics.Point]{Jobs: opts.Jobs, Store: opts.Store})
}
