package campaign

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sldf/internal/metrics"
)

// The test executor computes a deterministic point from its payload; tests
// across this package and the remote subpackage share it via TestSpecs.
const testExecKind = "campaign-test/linear@v1"

type testPayload struct {
	Base float64 `json:"base"`
	Rate float64 `json:"rate"`
}

func init() {
	RegisterExecutor(testExecKind, func(w *Worker, payload json.RawMessage) (metrics.Point, error) {
		var p testPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return metrics.Point{}, err
		}
		if p.Rate < 0 {
			return metrics.Point{}, fmt.Errorf("negative rate %g", p.Rate)
		}
		return metrics.Point{
			Rate:       p.Rate,
			Latency:    p.Base + 10*p.Rate,
			Throughput: p.Rate * 0.9,
		}, nil
	})
}

// testSpecs builds n deterministic specs for the test executor.
func testSpecs(t *testing.T, n int) []JobSpec {
	t.Helper()
	specs := make([]JobSpec, n)
	for i := range specs {
		payload, err := json.Marshal(testPayload{Base: 5, Rate: float64(i) / 10})
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = JobSpec{
			Key:     fmt.Sprintf("test-linear-%d", i),
			Kind:    testExecKind,
			Payload: payload,
		}
	}
	return specs
}

func TestLocalBackendMatchesSerialRun(t *testing.T) {
	specs := testSpecs(t, 17)
	serial, err := LocalBackend{}.Execute(specs, ExecOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8, 64} {
		got, err := LocalBackend{}.Execute(specs, ExecOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("jobs=%d diverged from serial", jobs)
		}
	}
}

func TestLocalBackendUsesStore(t *testing.T) {
	store := NewMemoryLRU[metrics.Point](32)
	specs := testSpecs(t, 5)
	cold, err := LocalBackend{}.Execute(specs, ExecOptions{Jobs: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 5 {
		t.Fatalf("store has %d entries, want 5", store.Len())
	}
	warm, err := LocalBackend{}.Execute(specs, ExecOptions{Jobs: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("store replay diverged")
	}
	if store.Hits() != 5 {
		t.Fatalf("store hits=%d, want 5", store.Hits())
	}
}

func TestExecuteSpecUnknownKind(t *testing.T) {
	_, err := ExecuteSpec(&Worker{}, JobSpec{Kind: "nope/unregistered@v0"})
	if err == nil || !strings.Contains(err.Error(), "no executor registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecutorKindsListed(t *testing.T) {
	kinds := ExecutorKinds()
	found := false
	for _, k := range kinds {
		if k == testExecKind {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered kind missing from %v", kinds)
	}
}

func TestRegisterExecutorDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterExecutor(testExecKind, nil)
}

func TestLocalBackendPropagatesJobError(t *testing.T) {
	payload, _ := json.Marshal(testPayload{Rate: -1})
	specs := testSpecs(t, 3)
	specs[1] = JobSpec{Kind: testExecKind, Payload: payload}
	_, err := LocalBackend{}.Execute(specs, ExecOptions{Jobs: 2})
	if err == nil || !strings.Contains(err.Error(), "negative rate") {
		t.Fatalf("err = %v", err)
	}
}
