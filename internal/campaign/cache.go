package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"sldf/internal/metrics"
)

// CacheSchemaVersion is the on-disk point-cache schema generation. It is
// folded into the entry filename hash AND recorded inside every entry, so
// entries written by an older schema are simply never found (different
// filenames), and an entry that somehow lands on the right path without the
// current version stamp is rejected on read. Bump it whenever the meaning
// of a cache key or the stored record changes, so stale points from older
// revisions can never be replayed silently.
//
// History: v1 (unversioned, PR 1) stored {key, point} under a bare key
// hash; v2 versions both the path and the record.
const CacheSchemaVersion = 2

// Cache is an on-disk store of measured load points keyed by an opaque
// string covering everything that determines the result (config hash,
// pattern, rate, simulation parameters). One small JSON file per point
// keeps the format inspectable; writes go to a temp file that is fsynced
// and atomically renamed into place, so a crash mid-write can never leave a
// truncated entry behind. The stored key is verified on read so a hash
// collision can never replay the wrong point. Cache implements
// Store[metrics.Point].
type Cache struct {
	dir      string
	mu       sync.Mutex
	hits     atomic.Int64
	misses   atomic.Int64
	putFails atomic.Int64
}

// cacheEntry is the on-disk record for one point.
type cacheEntry struct {
	Version int           `json:"version"`
	Key     string        `json:"key"`
	Point   metrics.Point `json:"point"`
}

// OpenCache opens (creating if needed) a point cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", CacheSchemaVersion, key)))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:12])+".json")
}

// Get returns the cached point for key, if present.
func (c *Cache) Get(key string) (metrics.Point, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return metrics.Point{}, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != CacheSchemaVersion || e.Key != key {
		c.misses.Add(1)
		return metrics.Point{}, false
	}
	c.hits.Add(1)
	return e.Point, true
}

// Put stores the point for key, overwriting any previous entry. Failures
// are additionally counted (see PutFails) so callers may treat a failed
// write as non-fatal without losing the signal entirely.
func (c *Cache) Put(key string, pt metrics.Point) (err error) {
	defer func() {
		if err != nil {
			c.putFails.Add(1)
		}
	}()
	data, err := json.Marshal(cacheEntry{Version: CacheSchemaVersion, Key: key, Point: pt})
	if err != nil {
		return fmt.Errorf("campaign: encode cache entry: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp, err := os.CreateTemp(c.dir, "point-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: write cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write cache entry: %w", err)
	}
	// The temp file's content must be durable before the rename makes it
	// visible under the entry path: rename-before-data on a crash would
	// resurface as a zero-length "entry".
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: sync cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write cache entry: %w", err)
	}
	// Sync the directory so the rename itself survives a crash. A failure
	// here is counted but the entry is already readable by this process.
	if d, err := os.Open(c.dir); err == nil {
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return fmt.Errorf("campaign: sync cache dir: %w", syncErr)
		}
	}
	return nil
}

// Hits returns the number of successful lookups so far.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of failed lookups so far.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// PutFails returns the number of failed writes so far.
func (c *Cache) PutFails() int64 { return c.putFails.Load() }

// StatsLine formats the end-of-run counters for CLI reporting.
func (c *Cache) StatsLine() string {
	line := fmt.Sprintf("cache: %d hits, %d misses (%s)", c.Hits(), c.Misses(), c.dir)
	if n := c.PutFails(); n > 0 {
		line += fmt.Sprintf(" — %d writes FAILED", n)
	}
	return line
}
