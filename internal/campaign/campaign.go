// Package campaign schedules sweep measurement jobs across worker
// goroutines. Each job is an independent measurement (one system, pattern
// and injection rate) whose result slot is fixed up front, so the assembled
// output is bitwise identical no matter how many workers run the jobs or in
// what order they finish. Workers carry a small keyed store that jobs use to
// reuse expensive state (a built network is reset between points instead of
// rebuilt), and an optional on-disk cache lets a re-run skip points that
// were already measured.
package campaign

import (
	"sync"

	"sldf/internal/metrics"
)

// Job is one schedulable measurement producing a single load point.
type Job struct {
	// Key identifies the point for the on-disk cache; an empty key disables
	// caching for this job. Two jobs with equal keys must produce equal
	// points (the key must cover every input that affects the result).
	Key string
	// Run performs the measurement. The worker is owned by a single
	// goroutine for the worker's lifetime, so Run may freely mutate state
	// cached on it.
	Run func(w *Worker) (metrics.Point, error)
}

// Worker is the per-goroutine context passed to jobs: a keyed store for
// state that is expensive to construct and can be reused across the jobs
// that happen to land on the same worker.
type Worker struct {
	state map[string]any
}

// Cached returns the value stored under key, if any.
func (w *Worker) Cached(key string) (any, bool) {
	v, ok := w.state[key]
	return v, ok
}

// Store saves a value under key. Values implementing Close() are closed
// when the campaign run finishes.
func (w *Worker) Store(key string, v any) {
	if w.state == nil {
		w.state = map[string]any{}
	}
	w.state[key] = v
}

// close releases every stored value that knows how to release itself.
func (w *Worker) close() {
	for _, v := range w.state {
		if c, ok := v.(interface{ Close() }); ok {
			c.Close()
		}
	}
	w.state = nil
}

// Options configure a campaign run.
type Options struct {
	// Jobs is the number of concurrent measurement jobs; values <= 1 run
	// serially on the calling goroutine.
	Jobs int
	// Cache, when non-nil, is consulted before and updated after every job
	// with a non-empty Key.
	Cache *Cache
}

// Run executes the jobs and returns their points indexed like the input.
// On error the returned slice still has len(jobs) but slots whose jobs did
// not complete are zero; the error reported is the failing job with the
// lowest index among those that ran.
func Run(jobs []Job, opts Options) ([]metrics.Point, error) {
	points := make([]metrics.Point, len(jobs))
	if len(jobs) == 0 {
		return points, nil
	}

	workers := opts.Jobs
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		w := &Worker{}
		defer w.close()
		for i := range jobs {
			if err := runOne(&jobs[i], w, opts.Cache, &points[i]); err != nil {
				return points, err
			}
		}
		return points, nil
	}

	var (
		idx      = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = len(jobs)
		failed   bool
	)
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{}
			defer w.close()
			for i := range idx {
				mu.Lock()
				stop := failed
				mu.Unlock()
				if stop {
					continue
				}
				if err := runOne(&jobs[i], w, opts.Cache, &points[i]); err != nil {
					mu.Lock()
					if !failed || i < errIdx {
						firstErr, errIdx, failed = err, i, true
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return points, firstErr
}

// runOne executes a single job through the cache.
func runOne(j *Job, w *Worker, cache *Cache, out *metrics.Point) error {
	if j.Key != "" && cache != nil {
		if pt, ok := cache.Get(j.Key); ok {
			*out = pt
			return nil
		}
	}
	pt, err := j.Run(w)
	if err != nil {
		return err
	}
	*out = pt
	if j.Key != "" && cache != nil {
		// A failed cache write must not discard a successfully measured
		// point; the cache counts the failure for end-of-run reporting.
		_ = cache.Put(j.Key, pt)
	}
	return nil
}
