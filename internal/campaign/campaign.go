// Package campaign is the execution layer of the sweep pipeline: it turns
// declarative measurement jobs into results, through pluggable seams at
// every stage.
//
//   - Run is the generic in-process scheduler: typed jobs fan out over
//     worker goroutines, and the assembled output is bitwise identical no
//     matter how many workers run the jobs or in what order they finish.
//   - JobSpec + the executor registry make jobs data instead of code: a
//     spec names a registered executor and carries a JSON payload, so the
//     same job can run in this process, in a worker daemon on another
//     machine, or be replayed from a store.
//   - Backend abstracts where specs execute (LocalBackend here; the remote
//     subpackage shards them across worker daemons).
//   - Store abstracts where results persist (disk cache, memory LRU, or a
//     tiered combination).
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package campaign

import (
	"sync"
)

// Job is one schedulable unit of work producing a typed result.
type Job[T any] struct {
	// Key identifies the job's result for the store; an empty key disables
	// caching for this job. Two jobs with equal keys must produce equal
	// results (the key must cover every input that affects the result).
	Key string
	// Run performs the work. The worker is owned by a single goroutine for
	// the worker's lifetime, so Run may freely mutate state cached on it.
	Run func(w *Worker) (T, error)
}

// Worker is the per-goroutine context passed to jobs: a keyed store for
// state that is expensive to construct and can be reused across the jobs
// that happen to land on the same worker. A state limit (SetStateLimit)
// bounds how many values a long-lived worker retains; Run's short-lived
// workers default to unbounded.
type Worker struct {
	state map[string]any
	order []string // access order, least recently used first
	limit int
}

// SetStateLimit bounds the worker's retained values to n (0 = unbounded).
// When a Store would exceed the bound, the least recently used value is
// closed (if it implements Close()) and dropped. Long-lived workers — a
// daemon's persistent pool serving many configurations over its lifetime —
// must set a limit or grow without bound.
func (w *Worker) SetStateLimit(n int) { w.limit = n }

// Cached returns the value stored under key, if any.
func (w *Worker) Cached(key string) (any, bool) {
	v, ok := w.state[key]
	if ok {
		w.touch(key)
	}
	return v, ok
}

// Store saves a value under key. Values implementing Close() are closed
// when evicted or when the campaign run finishes.
func (w *Worker) Store(key string, v any) {
	if w.state == nil {
		w.state = map[string]any{}
	}
	if _, exists := w.state[key]; !exists {
		w.order = append(w.order, key)
	}
	w.state[key] = v
	w.touch(key)
	if w.limit > 0 && len(w.state) > w.limit {
		evict := w.order[0]
		w.order = w.order[1:]
		if c, ok := w.state[evict].(interface{ Close() }); ok {
			c.Close()
		}
		delete(w.state, evict)
	}
}

// touch moves key to the most-recently-used end of the access order.
func (w *Worker) touch(key string) {
	for i, k := range w.order {
		if k == key {
			w.order = append(append(w.order[:i:i], w.order[i+1:]...), key)
			return
		}
	}
}

// Close releases every stored value that knows how to release itself.
// Long-lived owners (worker pools) call it when retiring a worker; Run
// closes its workers itself.
func (w *Worker) Close() {
	for _, v := range w.state { //sldf:nondeterministic-ok release-only teardown; no result depends on close order

		if c, ok := v.(interface{ Close() }); ok {
			c.Close()
		}
	}
	w.state = nil
	w.order = nil
}

// Options configure a campaign run over results of type T.
type Options[T any] struct {
	// Jobs is the number of concurrent jobs; values <= 1 run serially on
	// the calling goroutine.
	Jobs int
	// Store, when non-nil, is consulted before and updated after every job
	// with a non-empty Key.
	Store Store[T]
}

// Run executes the jobs and returns their results indexed like the input.
// On error the returned slice still has len(jobs) but slots whose jobs did
// not complete are zero; the error reported is the failing job with the
// lowest index among those that ran.
func Run[T any](jobs []Job[T], opts Options[T]) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	workers := opts.Jobs
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		w := &Worker{}
		defer w.Close()
		for i := range jobs {
			if err := runOne(&jobs[i], w, opts.Store, &results[i]); err != nil {
				return results, err
			}
		}
		return results, nil
	}

	var (
		idx      = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = len(jobs)
		failed   bool
	)
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{}
			defer w.Close()
			for i := range idx {
				mu.Lock()
				stop := failed
				mu.Unlock()
				if stop {
					continue
				}
				if err := runOne(&jobs[i], w, opts.Store, &results[i]); err != nil {
					mu.Lock()
					if !failed || i < errIdx {
						firstErr, errIdx, failed = err, i, true
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, firstErr
}

// runOne executes a single job through the store.
func runOne[T any](j *Job[T], w *Worker, store Store[T], out *T) error {
	if j.Key != "" && store != nil {
		if v, ok := store.Get(j.Key); ok {
			*out = v
			return nil
		}
	}
	v, err := j.Run(w)
	if err != nil {
		return err
	}
	*out = v
	if j.Key != "" && store != nil {
		// A failed store write must not discard a successfully computed
		// result; stores count the failure for end-of-run reporting.
		_ = store.Put(j.Key, v)
	}
	return nil
}
