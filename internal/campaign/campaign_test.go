package campaign

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"sldf/internal/metrics"
)

// indexJobs builds n jobs whose points encode their own index, so result
// placement can be checked regardless of scheduling order.
func indexJobs(n int) []Job[metrics.Point] {
	jobs := make([]Job[metrics.Point], n)
	for i := range jobs {
		jobs[i] = Job[metrics.Point]{Run: func(w *Worker) (metrics.Point, error) {
			return metrics.Point{Rate: float64(i), Latency: float64(i * 10)}, nil
		}}
	}
	return jobs
}

func TestRunOrdersResultsForAnyWorkerCount(t *testing.T) {
	want, err := Run(indexJobs(23), Options[metrics.Point]{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 16, 100} {
		got, err := Run(indexJobs(23), Options[metrics.Point]{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: results diverged from serial run", jobs)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	pts, err := Run(nil, Options[metrics.Point]{Jobs: 4})
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty run: %v, %v", pts, err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	jobs := indexJobs(8)
	jobs[3].Run = func(w *Worker) (metrics.Point, error) { return metrics.Point{}, boom }
	for _, n := range []int{1, 4} {
		if _, err := Run(jobs, Options[metrics.Point]{Jobs: n}); !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: error %v, want %v", n, err, boom)
		}
	}
}

// closeable records whether the campaign closed it after the run.
type closeable struct{ closed *bool }

func (c closeable) Close() { *c.closed = true }

func TestWorkerStateReusedAndClosed(t *testing.T) {
	var builds int
	var closed bool
	jobs := make([]Job[metrics.Point], 10)
	for i := range jobs {
		jobs[i] = Job[metrics.Point]{Run: func(w *Worker) (metrics.Point, error) {
			if _, ok := w.Cached("sys"); !ok {
				builds++
				w.Store("sys", closeable{closed: &closed})
			}
			return metrics.Point{}, nil
		}}
	}
	if _, err := Run(jobs, Options[metrics.Point]{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("serial run built %d times, want 1 (worker state not reused)", builds)
	}
	if !closed {
		t.Fatal("worker state not closed after the run")
	}
}

func TestWorkerStateClosedOnError(t *testing.T) {
	var closed bool
	jobs := []Job[metrics.Point]{{Run: func(w *Worker) (metrics.Point, error) {
		w.Store("sys", closeable{closed: &closed})
		return metrics.Point{}, errors.New("boom")
	}}}
	if _, err := Run(jobs, Options[metrics.Point]{Jobs: 1}); err == nil {
		t.Fatal("error not propagated")
	}
	if !closed {
		t.Fatal("worker state leaked on the error path")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pt := metrics.Point{Rate: 0.3, Latency: 41.5, P50: 38, P99: 120, Throughput: 0.29}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("k1", pt); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !reflect.DeepEqual(got, pt) {
		t.Fatalf("round trip: %+v, ok=%v", got, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	// A second Open over the same directory sees the entry (persistence).
	c2, err := OpenCache(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get("k1"); !ok || !reflect.DeepEqual(got, pt) {
		t.Fatal("entry not persistent across opens")
	}
}

func TestRunUsesCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var runs int
	mkJobs := func() []Job[metrics.Point] {
		jobs := make([]Job[metrics.Point], 6)
		for i := range jobs {
			jobs[i] = Job[metrics.Point]{
				Key: fmt.Sprintf("point-%d", i),
				Run: func(w *Worker) (metrics.Point, error) {
					runs++
					return metrics.Point{Rate: float64(i)}, nil
				},
			}
		}
		return jobs
	}
	cold, err := Run(mkJobs(), Options[metrics.Point]{Jobs: 1, Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Fatalf("cold run executed %d jobs, want 6", runs)
	}
	warm, err := Run(mkJobs(), Options[metrics.Point]{Jobs: 1, Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Fatalf("warm run re-executed jobs (%d total runs)", runs)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache replay diverged from cold run")
	}
}

func TestRunSurvivesCacheWriteFailure(t *testing.T) {
	dir := t.TempDir() + "/gone"
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Pull the directory out from under the cache: every Put now fails,
	// but measured points must still be returned.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	jobs := []Job[metrics.Point]{{Key: "k", Run: func(w *Worker) (metrics.Point, error) {
		return metrics.Point{Rate: 0.5}, nil
	}}}
	pts, err := Run(jobs, Options[metrics.Point]{Jobs: 1, Store: cache})
	if err != nil {
		t.Fatalf("cache write failure aborted the run: %v", err)
	}
	if pts[0].Rate != 0.5 {
		t.Fatalf("point lost: %+v", pts[0])
	}
	if cache.PutFails() == 0 {
		t.Fatal("write failure not counted")
	}
}

func TestCacheRejectsForeignEntry(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("real-key", metrics.Point{Rate: 1}); err != nil {
		t.Fatal(err)
	}
	// A different key must miss even though the cache is non-empty.
	if _, ok := c.Get("other-key"); ok {
		t.Fatal("foreign key hit")
	}
}

func TestWorkerStateLimitEvictsLRU(t *testing.T) {
	w := &Worker{}
	w.SetStateLimit(2)
	closed := map[string]*bool{}
	store := func(key string) {
		f := new(bool)
		closed[key] = f
		w.Store(key, closeable{closed: f})
	}
	store("a")
	store("b")
	// Touch "a" so "b" is the eviction victim.
	if _, ok := w.Cached("a"); !ok {
		t.Fatal("a missing")
	}
	store("c")
	if _, ok := w.Cached("b"); ok {
		t.Fatal("b survived past the state limit")
	}
	if !*closed["b"] {
		t.Fatal("evicted value not closed (resource leak)")
	}
	if *closed["a"] || *closed["c"] {
		t.Fatal("resident value closed prematurely")
	}
	w.Close()
	if !*closed["a"] || !*closed["c"] {
		t.Fatal("Close did not release remaining values")
	}
}

func TestWorkerStateUnboundedByDefault(t *testing.T) {
	w := &Worker{}
	for i := 0; i < 100; i++ {
		w.Store(fmt.Sprintf("k%d", i), i)
	}
	for i := 0; i < 100; i++ {
		if _, ok := w.Cached(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d evicted without a limit", i)
		}
	}
	w.Close()
}
