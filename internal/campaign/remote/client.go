package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/metrics"
)

// DefaultBatchSize is the number of specs per worker request. Small enough
// that a worker loss mid-run forfeits little work, large enough that a
// worker amortizes system construction across the batch's points.
const DefaultBatchSize = 8

// Options configure the coordinator.
type Options struct {
	// BatchSize caps the specs per request (<= 0 uses DefaultBatchSize).
	BatchSize int
	// Client is the HTTP client for worker requests; nil uses a client
	// without timeout (simulations can legitimately run for minutes —
	// liveness is probed separately with HealthTimeout).
	Client *http.Client
	// HealthTimeout bounds a /healthz probe (<= 0 means 5s).
	HealthTimeout time.Duration
	// MaxStrikes is the number of consecutive transport failures after
	// which a worker is retired for the run (<= 0 uses 3). A success
	// resets the count, so transient drops cost a retry, not the worker.
	MaxStrikes int
}

// Backend is the coordinator side of the protocol: a campaign.Backend that
// shards job specs across worker daemons, re-shards on worker loss, and
// merges results deterministically by spec index.
type Backend struct {
	addrs []string
	opts  Options
}

// New returns a coordinator over the given worker addresses
// (host:port or full http:// URLs).
func New(addrs []string, opts Options) (*Backend, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: no worker addresses")
	}
	norm := make([]string, len(addrs))
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("remote: empty worker address")
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		norm[i] = strings.TrimRight(a, "/")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = 5 * time.Second
	}
	if opts.MaxStrikes <= 0 {
		opts.MaxStrikes = 3
	}
	return &Backend{addrs: norm, opts: opts}, nil
}

// Name implements campaign.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("remote(%d workers)", len(b.addrs))
}

// Check probes every worker's /healthz and reports the unreachable ones.
func (b *Backend) Check() error {
	client := &http.Client{Timeout: b.opts.HealthTimeout}
	var dead []string
	for _, addr := range b.addrs {
		resp, err := client.Get(addr + "/healthz")
		if err != nil {
			dead = append(dead, fmt.Sprintf("%s (%v)", addr, err))
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			dead = append(dead, fmt.Sprintf("%s (status %d)", addr, resp.StatusCode))
		}
	}
	if len(dead) > 0 {
		return fmt.Errorf("remote: %d of %d workers unhealthy: %s",
			len(dead), len(b.addrs), strings.Join(dead, "; "))
	}
	return nil
}

// batch is a contiguous chunk of spec indices dispatched as one request.
type batch struct {
	idxs     []int
	attempts int
}

// Execute implements campaign.Backend. Specs already satisfied by the
// store never leave the coordinator; the rest are batched and fanned out
// across the workers. A worker whose request fails at the transport level
// is retired and its batch re-queued for the survivors, so any prefix of
// worker deaths short of all of them still completes the run with
// bitwise-identical results (jobs are content-addressed and deterministic,
// so duplicate execution after a dropped response merges to the same
// bytes). Application-level job errors are deterministic and not retried;
// the lowest-index one is reported after the run drains.
func (b *Backend) Execute(specs []campaign.JobSpec, opts campaign.ExecOptions) ([]metrics.Point, error) {
	results := make([]metrics.Point, len(specs))
	if len(specs) == 0 {
		return results, nil
	}

	// Coordinator-side store pass: replay known points, ship the rest.
	var pending []int
	for i, spec := range specs {
		if spec.Key != "" && opts.Store != nil {
			if pt, ok := opts.Store.Get(spec.Key); ok {
				results[i] = pt
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, nil
	}

	// Batches cap at BatchSize but shrink for small runs, so a sweep with
	// fewer points than BatchSize × workers still spreads across the fleet
	// instead of landing on whichever worker grabs the queue first.
	batchSize := (len(pending) + len(b.addrs) - 1) / len(b.addrs)
	if batchSize > b.opts.BatchSize {
		batchSize = b.opts.BatchSize
	}
	if batchSize < 1 {
		batchSize = 1
	}
	var queue []batch
	for lo := 0; lo < len(pending); lo += batchSize {
		hi := lo + batchSize
		if hi > len(pending) {
			hi = len(pending)
		}
		queue = append(queue, batch{idxs: pending[lo:hi]})
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		inflight int
		jobErr   error
		jobErrAt = len(specs)
		lastFail error
		gaveUp   bool
		wg       sync.WaitGroup
	)
	// A batch that keeps failing wherever it lands (every response dropped)
	// must not ping-pong forever; after enough attempts to have visited the
	// whole fleet repeatedly, the run gives up.
	maxAttempts := b.opts.MaxStrikes * len(b.addrs) * 2

	worker := func(addr string) {
		defer wg.Done()
		strikes := 0
		for {
			mu.Lock()
			for len(queue) == 0 && inflight > 0 && !gaveUp {
				cond.Wait()
			}
			if len(queue) == 0 || gaveUp {
				mu.Unlock()
				return // drained (or aborted): nothing left to take
			}
			bt := queue[0]
			queue = queue[1:]
			inflight++
			mu.Unlock()

			resp, err := b.post(addr, specs, bt)

			mu.Lock()
			inflight--
			if err != nil {
				// Transport failure: requeue the batch for the fleet. A
				// worker failing MaxStrikes times in a row is retired for
				// the run; a batch exceeding its attempt budget aborts it.
				bt.attempts++
				lastFail = fmt.Errorf("remote: worker %s: %w", addr, err)
				if bt.attempts >= maxAttempts {
					gaveUp = true
				} else {
					queue = append(queue, bt)
				}
				strikes++
				retired := strikes >= b.opts.MaxStrikes
				cond.Broadcast()
				mu.Unlock()
				if retired {
					return
				}
				continue
			}
			strikes = 0
			for k, idx := range bt.idxs {
				r := resp.Results[k]
				if r.Err != "" {
					if idx < jobErrAt {
						jobErr = fmt.Errorf("remote: job %d (%s): %s", idx, specs[idx].Key, r.Err)
						jobErrAt = idx
					}
					continue
				}
				results[idx] = r.Point
			}
			cond.Broadcast()
			mu.Unlock()

			// Persist outside the scheduler lock: a disk-backed store
			// fsyncs per point, and that must not serialize the fleet's
			// batch dispatch. Each result index is owned by exactly one
			// batch, so the unlocked writes cannot race.
			if opts.Store != nil {
				for k, idx := range bt.idxs {
					if specs[idx].Key != "" && resp.Results[k].Err == "" {
						_ = opts.Store.Put(specs[idx].Key, resp.Results[k].Point)
					}
				}
			}
		}
	}

	wg.Add(len(b.addrs))
	for _, addr := range b.addrs {
		go worker(addr)
	}
	wg.Wait()

	if jobErr != nil {
		return results, jobErr
	}
	if gaveUp {
		return results, fmt.Errorf("remote: batch abandoned after %d failed attempts (last: %v)",
			maxAttempts, lastFail)
	}
	if len(queue) > 0 {
		left := 0
		for _, bt := range queue {
			left += len(bt.idxs)
		}
		return results, fmt.Errorf("remote: %d of %d jobs unexecuted, all %d workers failed (last: %v)",
			left, len(specs), len(b.addrs), lastFail)
	}
	return results, nil
}

// post ships one batch to a worker and decodes its results.
func (b *Backend) post(addr string, specs []campaign.JobSpec, bt batch) (runResponse, error) {
	req := runRequest{Jobs: make([]campaign.JobSpec, len(bt.idxs))}
	for k, idx := range bt.idxs {
		req.Jobs[k] = specs[idx]
	}
	body, err := json.Marshal(req)
	if err != nil {
		return runResponse{}, fmt.Errorf("encode batch: %w", err)
	}
	httpResp, err := b.opts.Client.Post(addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return runResponse{}, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return runResponse{}, fmt.Errorf("status %s", httpResp.Status)
	}
	var resp runResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return runResponse{}, fmt.Errorf("decode response: %w", err)
	}
	if len(resp.Results) != len(bt.idxs) {
		return runResponse{}, fmt.Errorf("response has %d results for %d jobs",
			len(resp.Results), len(bt.idxs))
	}
	return resp, nil
}
