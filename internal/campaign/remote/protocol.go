// Package remote shards campaign job specs across worker daemons over an
// HTTP/JSON protocol and merges their results deterministically.
//
// The protocol has three endpoints, all served by Server (the worker side,
// embedded in cmd/sldfd):
//
//	POST /run     — execute a batch of campaign.JobSpec, return per-job
//	                results in request order
//	GET  /healthz — liveness (200 + JSON once the worker accepts jobs)
//	GET  /stats   — counters: requests, jobs, errors, store hits
//
// Backend is the coordinator side: it splits a spec list into batches,
// fans them out across workers, re-shards batches from workers that die
// mid-run onto the survivors, and assembles results by spec index, so the
// merged output is bitwise identical to a serial local run — including
// under injected worker loss. Jobs are content-addressed (spec keys cover
// every result-affecting input) and executors are deterministic, so a
// batch that executes twice because its response was dropped merges to the
// same bytes.
package remote

import (
	"sldf/internal/campaign"
	"sldf/internal/metrics"
)

// runRequest is the POST /run body: a batch of declarative job specs.
type runRequest struct {
	Jobs []campaign.JobSpec `json:"jobs"`
}

// jobResult is one spec's outcome, in request order. Err is the job's
// application-level failure (deterministic — retrying elsewhere cannot
// help), distinct from transport failures, which surface as HTTP errors
// and trigger re-sharding.
type jobResult struct {
	Point metrics.Point `json:"point"`
	Err   string        `json:"err,omitempty"`
}

// runResponse is the POST /run reply, parallel to the request's Jobs.
type runResponse struct {
	Results []jobResult `json:"results"`
}

// healthResponse is the GET /healthz reply.
type healthResponse struct {
	OK      bool     `json:"ok"`
	Workers int      `json:"workers"`
	Kinds   []string `json:"kinds"` // registered executor kinds
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Requests   int64 `json:"requests"`
	Jobs       int64 `json:"jobs"`
	JobErrors  int64 `json:"job_errors"`
	StoreHits  int64 `json:"store_hits"`
	BadPayload int64 `json:"bad_payloads"`
}
