package remote

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"sldf/internal/campaign"
	"sldf/internal/metrics"
)

// The cluster tests emulate a coordinator over N in-process worker daemons
// (httptest servers) with seeded random faults — workers killed mid-run,
// responses dropped after execution — and assert that the merged results
// stay bitwise identical to a serial local run (d7024e M4 style: drops and
// deaths are part of normal operation, not test failures).

const clusterExecKind = "remote-test/poly@v1"

type clusterPayload struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

func init() {
	campaign.RegisterExecutor(clusterExecKind, func(w *campaign.Worker, payload json.RawMessage) (metrics.Point, error) {
		var p clusterPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return metrics.Point{}, err
		}
		if p.A < 0 {
			return metrics.Point{}, fmt.Errorf("poly: negative A %g", p.A)
		}
		return metrics.Point{
			Rate:       p.A,
			Latency:    3*p.A + p.B*p.B,
			P50:        p.A * p.B,
			P99:        p.A + 7,
			Throughput: p.B / 3,
		}, nil
	})
}

func clusterSpecs(t *testing.T, n int) []campaign.JobSpec {
	t.Helper()
	specs := make([]campaign.JobSpec, n)
	for i := range specs {
		payload, err := json.Marshal(clusterPayload{A: float64(i) / 7, B: float64(i%5) + 0.25})
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = campaign.JobSpec{
			Key:     fmt.Sprintf("poly-%d", i),
			Kind:    clusterExecKind,
			Payload: payload,
		}
	}
	return specs
}

// serialResults is the ground truth: the same specs through the local
// backend, serially.
func serialResults(t *testing.T, specs []campaign.JobSpec) []metrics.Point {
	t.Helper()
	want, err := campaign.LocalBackend{}.Execute(specs, campaign.ExecOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// cluster spins up n worker daemons and returns their addresses plus a
// cleanup-registered handle to each.
func cluster(t *testing.T, n int, jobs int) ([]string, []*httptest.Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := range addrs {
		srv := NewServer(ServerOptions{Jobs: jobs})
		ts := httptest.NewServer(srv)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		addrs[i] = ts.URL
		servers[i] = ts
	}
	return addrs, servers
}

func TestClusterMatchesSerial(t *testing.T) {
	specs := clusterSpecs(t, 53)
	want := serialResults(t, specs)
	addrs, _ := cluster(t, 3, 2)
	b, err := New(addrs, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	got, err := b.Execute(specs, campaign.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("3-worker merge diverged from serial run")
	}
}

// flakyProxy fronts a healthy worker and injects seeded faults: some
// requests are rejected before execution (worker appeared dead), some are
// executed but their response dropped (connection cut after work).
type flakyProxy struct {
	backend  http.Handler
	rng      *rand.Rand
	rejectPp int // percent rejected up front
	dropPp   int // percent executed, response dropped
	dead     atomic.Bool
	kills    atomic.Int64
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "killed", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/run" {
		roll := f.rng.Intn(100)
		if roll < f.rejectPp {
			f.kills.Add(1)
			http.Error(w, "injected pre-execution fault", http.StatusInternalServerError)
			return
		}
		if roll < f.rejectPp+f.dropPp {
			// Execute the batch (the daemon does the work), then cut the
			// connection so the coordinator never sees the response.
			rec := httptest.NewRecorder()
			f.backend.ServeHTTP(rec, r)
			f.kills.Add(1)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "injected post-execution drop", http.StatusInternalServerError)
			return
		}
	}
	f.backend.ServeHTTP(w, r)
}

func TestClusterSurvivesSeededKillsAndDrops(t *testing.T) {
	specs := clusterSpecs(t, 61)
	want := serialResults(t, specs)

	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		var addrs []string
		var proxies []*flakyProxy
		for i := 0; i < 4; i++ {
			srv := NewServer(ServerOptions{Jobs: 2})
			proxy := &flakyProxy{
				backend:  srv,
				rng:      rand.New(rand.NewSource(rng.Int63())),
				rejectPp: 15,
				dropPp:   15,
			}
			ts := httptest.NewServer(proxy)
			t.Cleanup(func() { ts.Close(); srv.Close() })
			addrs = append(addrs, ts.URL)
			proxies = append(proxies, proxy)
		}
		// One worker dies permanently partway through: flip it dead after
		// its first successful request. Do it deterministically by marking
		// the first proxy dead up front for odd seeds.
		if seed%2 == 1 {
			proxies[0].dead.Store(true)
		}

		b, err := New(addrs, Options{BatchSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Execute(specs, campaign.ExecOptions{})
		if err != nil {
			// A draw where every worker happened to die is legal for the
			// backend but useless for the equivalence check; with 15%+15%
			// fault rates and 4 workers it should not happen on these seeds.
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: merged results diverged from serial after injected faults", seed)
		}
	}
}

func TestClusterAllWorkersDead(t *testing.T) {
	specs := clusterSpecs(t, 9)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	b, err := New([]string{dead.URL, dead.URL}, Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Execute(specs, campaign.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "unexecuted") {
		t.Fatalf("err = %v, want all-workers-failed", err)
	}
	if err := b.Check(); err == nil {
		t.Fatal("Check passed against a dead cluster")
	}
}

func TestClusterPropagatesLowestJobError(t *testing.T) {
	specs := clusterSpecs(t, 12)
	bad, _ := json.Marshal(clusterPayload{A: -1})
	specs[4].Payload = bad
	specs[9].Payload = bad
	addrs, _ := cluster(t, 2, 1)
	b, err := New(addrs, Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Execute(specs, campaign.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "job 4") {
		t.Fatalf("err = %v, want lowest-index job error", err)
	}
}

func TestClusterCoordinatorStoreShortCircuits(t *testing.T) {
	specs := clusterSpecs(t, 10)
	want := serialResults(t, specs)
	store := campaign.NewMemoryLRU[metrics.Point](64)
	addrs, _ := cluster(t, 2, 2)
	b, err := New(addrs, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := b.Execute(specs, campaign.ExecOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("cold remote run diverged")
	}
	// Warm run: every spec satisfied from the coordinator store; no worker
	// is contacted, so even a dead cluster serves it.
	deadBackend, err := New([]string{"http://127.0.0.1:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := deadBackend.Execute(specs, campaign.ExecOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("store replay diverged")
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	addrs, servers := cluster(t, 1, 2)
	b, err := New(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := clusterSpecs(t, 6)
	if _, err := b.Execute(specs, campaign.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(servers[0].URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 6 || st.Requests == 0 {
		t.Fatalf("stats = %+v, want 6 jobs over >0 requests", st)
	}
	hresp, err := http.Get(servers[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Workers != 2 {
		t.Fatalf("health = %+v", h)
	}
	found := false
	for _, k := range h.Kinds {
		if k == clusterExecKind {
			found = true
		}
	}
	if !found {
		t.Fatalf("health kinds %v missing %s", h.Kinds, clusterExecKind)
	}
}

func TestNewValidatesAddresses(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := New([]string{" "}, Options{}); err == nil {
		t.Fatal("blank address accepted")
	}
	b, err := New([]string{"localhost:9", "http://example.com/"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.addrs[0] != "http://localhost:9" || b.addrs[1] != "http://example.com" {
		t.Fatalf("normalization: %v", b.addrs)
	}
}
