package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"sldf/internal/campaign"
)

// ServerOptions configure a worker daemon's job execution.
type ServerOptions struct {
	// Jobs is the number of persistent worker goroutines executing specs
	// (<= 0 means 1). Each keeps its own reusable state (built systems are
	// reset between points), so a daemon warms up once per configuration.
	Jobs int
	// Store, when non-nil, satisfies specs by key before execution and
	// records fresh results — the daemon's local tier of the result store.
	Store campaign.PointStore
	// WorkerState bounds the reusable values (built systems) each pool
	// worker retains, evicting least-recently-used with their resources
	// released (<= 0 uses DefaultWorkerState). Without a bound a daemon
	// serving many configurations over its lifetime grows monotonically.
	WorkerState int
}

// DefaultWorkerState is the per-worker built-system retention of a daemon
// pool: enough to keep a typical sweep's configurations warm, small enough
// that paper-scale systems cannot pile up.
const DefaultWorkerState = 4

// Server is the worker side of the coordinator/worker protocol: an
// http.Handler executing batches of declarative job specs on a persistent
// in-process worker pool.
type Server struct {
	opts  ServerOptions
	tasks chan task
	wg    sync.WaitGroup
	mu    sync.RWMutex
	done  bool

	requests   atomic.Int64
	jobs       atomic.Int64
	jobErrors  atomic.Int64
	storeHits  atomic.Int64
	badPayload atomic.Int64
}

// task is one spec queued to the pool with its pre-assigned result slot.
type task struct {
	spec campaign.JobSpec
	out  *jobResult
	wg   *sync.WaitGroup
}

// NewServer starts the worker pool and returns the ready-to-serve server.
// Close releases the pool.
func NewServer(opts ServerOptions) *Server {
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.WorkerState <= 0 {
		opts.WorkerState = DefaultWorkerState
	}
	s := &Server{opts: opts, tasks: make(chan task)}
	for i := 0; i < opts.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker owns one campaign.Worker for the server's lifetime, so state
// cached by jobs (built networks) is reused across requests.
func (s *Server) worker() {
	defer s.wg.Done()
	w := &campaign.Worker{}
	w.SetStateLimit(s.opts.WorkerState)
	defer w.Close()
	for t := range s.tasks {
		s.runTask(w, t)
	}
}

// runTask executes one spec through the store, mirroring the local
// scheduler's semantics.
func (s *Server) runTask(w *campaign.Worker, t task) {
	defer t.wg.Done()
	s.jobs.Add(1)
	key := t.spec.Key
	if key != "" && s.opts.Store != nil {
		if pt, ok := s.opts.Store.Get(key); ok {
			s.storeHits.Add(1)
			t.out.Point = pt
			return
		}
	}
	pt, err := campaign.ExecuteSpec(w, t.spec)
	if err != nil {
		s.jobErrors.Add(1)
		t.out.Err = err.Error()
		return
	}
	t.out.Point = pt
	if key != "" && s.opts.Store != nil {
		_ = s.opts.Store.Put(key, pt)
	}
}

// Close stops accepting jobs, drains the queue and releases the pool's
// worker state. In-flight requests complete.
func (s *Server) Close() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	close(s.tasks)
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeHTTP implements the protocol's three endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/run" && r.Method == http.MethodPost:
		s.handleRun(w, r)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		writeJSON(w, healthResponse{OK: true, Workers: s.opts.Jobs, Kinds: campaign.ExecutorKinds()})
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		writeJSON(w, statsResponse{
			Requests:   s.requests.Load(),
			Jobs:       s.jobs.Load(),
			JobErrors:  s.jobErrors.Load(),
			StoreHits:  s.storeHits.Load(),
			BadPayload: s.badPayload.Load(),
		})
	default:
		http.NotFound(w, r)
	}
}

// handleRun executes one batch and replies with per-job results in request
// order.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badPayload.Add(1)
		http.Error(w, fmt.Sprintf("decode run request: %v", err), http.StatusBadRequest)
		return
	}
	results := make([]jobResult, len(req.Jobs))
	var wg sync.WaitGroup

	s.mu.RLock()
	if s.done {
		s.mu.RUnlock()
		http.Error(w, "server closed", http.StatusServiceUnavailable)
		return
	}
	wg.Add(len(req.Jobs))
	for i := range req.Jobs {
		s.tasks <- task{spec: req.Jobs[i], out: &results[i], wg: &wg}
	}
	s.mu.RUnlock()
	wg.Wait()
	writeJSON(w, runResponse{Results: results})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
