package campaign

import (
	"fmt"
	"sync"

	"sldf/internal/metrics"
)

// Store is a keyed result store consulted by the scheduler before running a
// job and updated after. Implementations must be safe for concurrent use.
// Two values stored under the same key must be equal (keys are
// content-addressed), so replacing one tier's copy with another's can never
// change results.
type Store[T any] interface {
	// Get returns the stored value for key, if present.
	Get(key string) (T, bool)
	// Put stores the value for key. Failures are reported but callers may
	// treat them as non-fatal: a store is an accelerator, not the result
	// channel.
	Put(key string, v T) error
}

// PointStore is the store type the sweep pipeline and the remote protocol
// use: measurement points keyed by their full content address.
type PointStore = Store[metrics.Point]

// MemoryLRU is a fixed-capacity in-memory Store with least-recently-used
// eviction. It is the hot tier in front of a disk cache: replays of recent
// points never touch the filesystem.
type MemoryLRU[T any] struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*lruEntry[T]
	head    *lruEntry[T] // most recently used
	tail    *lruEntry[T] // least recently used
	hits    int64
	misses  int64
}

type lruEntry[T any] struct {
	key        string
	val        T
	prev, next *lruEntry[T]
}

// NewMemoryLRU returns an LRU store holding at most capacity entries
// (capacity <= 0 means an unbounded store).
func NewMemoryLRU[T any](capacity int) *MemoryLRU[T] {
	return &MemoryLRU[T]{cap: capacity, entries: map[string]*lruEntry[T]{}}
}

// Get returns the stored value and promotes the entry to most recent.
func (m *MemoryLRU[T]) Get(key string) (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		var zero T
		return zero, false
	}
	m.hits++
	m.unlink(e)
	m.pushFront(e)
	return e.val, true
}

// Put stores the value, evicting the least recently used entry when over
// capacity. It never fails.
func (m *MemoryLRU[T]) Put(key string, v T) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		e.val = v
		m.unlink(e)
		m.pushFront(e)
		return nil
	}
	e := &lruEntry[T]{key: key, val: v}
	m.entries[key] = e
	m.pushFront(e)
	if m.cap > 0 && len(m.entries) > m.cap {
		evict := m.tail
		m.unlink(evict)
		delete(m.entries, evict.key)
	}
	return nil
}

// Len returns the number of resident entries.
func (m *MemoryLRU[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Hits returns the number of successful lookups so far.
func (m *MemoryLRU[T]) Hits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// Misses returns the number of failed lookups so far.
func (m *MemoryLRU[T]) Misses() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses
}

// StatsLine formats the counters for CLI reporting.
func (m *MemoryLRU[T]) StatsLine() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("memory: %d hits, %d misses (%d resident)", m.hits, m.misses, len(m.entries))
}

func (m *MemoryLRU[T]) unlink(e *lruEntry[T]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if m.head == e {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if m.tail == e {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *MemoryLRU[T]) pushFront(e *lruEntry[T]) {
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

// Tiered layers a fast store in front of a slow one: lookups try the hot
// tier first and promote cold hits into it; writes land in both. Hot
// replays of recently measured points stop hitting the filesystem while
// every result still persists in the cold tier.
type Tiered[T any] struct {
	hot  Store[T]
	cold Store[T]
}

// NewTiered returns a two-tier store. Either tier may be nil, making the
// other authoritative alone.
func NewTiered[T any](hot, cold Store[T]) *Tiered[T] {
	return &Tiered[T]{hot: hot, cold: cold}
}

// Get tries the hot tier, then the cold tier (promoting a cold hit).
func (t *Tiered[T]) Get(key string) (T, bool) {
	if t.hot != nil {
		if v, ok := t.hot.Get(key); ok {
			return v, true
		}
	}
	if t.cold != nil {
		if v, ok := t.cold.Get(key); ok {
			if t.hot != nil {
				_ = t.hot.Put(key, v)
			}
			return v, true
		}
	}
	var zero T
	return zero, false
}

// Put writes to both tiers, reporting the cold tier's error (the durable
// copy is the one whose loss matters).
func (t *Tiered[T]) Put(key string, v T) error {
	if t.hot != nil {
		_ = t.hot.Put(key, v)
	}
	if t.cold != nil {
		return t.cold.Put(key, v)
	}
	return nil
}

// StatsLine combines the tiers' counters where available.
func (t *Tiered[T]) StatsLine() string {
	line := ""
	for _, tier := range []Store[T]{t.hot, t.cold} {
		if s, ok := tier.(interface{ StatsLine() string }); ok {
			if line != "" {
				line += "; "
			}
			line += s.StatsLine()
		}
	}
	return line
}
