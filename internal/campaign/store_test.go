package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sldf/internal/metrics"
)

func TestMemoryLRUEvictsLeastRecentlyUsed(t *testing.T) {
	m := NewMemoryLRU[metrics.Point](2)
	a, b, c := metrics.Point{Rate: 1}, metrics.Point{Rate: 2}, metrics.Point{Rate: 3}
	m.Put("a", a)
	m.Put("b", b)
	// Touch "a" so "b" becomes the eviction victim.
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", c)
	if _, ok := m.Get("b"); ok {
		t.Fatal("b not evicted (LRU order broken)")
	}
	if got, ok := m.Get("a"); !ok || !reflect.DeepEqual(got, a) {
		t.Fatalf("a lost: %+v ok=%v", got, ok)
	}
	if got, ok := m.Get("c"); !ok || !reflect.DeepEqual(got, c) {
		t.Fatalf("c lost: %+v ok=%v", got, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("len %d, want 2", m.Len())
	}
}

func TestMemoryLRUOverwriteKeepsSingleEntry(t *testing.T) {
	m := NewMemoryLRU[metrics.Point](4)
	m.Put("k", metrics.Point{Rate: 1})
	m.Put("k", metrics.Point{Rate: 2})
	if m.Len() != 1 {
		t.Fatalf("len %d, want 1", m.Len())
	}
	if got, _ := m.Get("k"); got.Rate != 2 {
		t.Fatalf("overwrite lost: %+v", got)
	}
}

func TestMemoryLRUUnbounded(t *testing.T) {
	m := NewMemoryLRU[metrics.Point](0)
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprint(i), metrics.Point{Rate: float64(i)})
	}
	if m.Len() != 100 {
		t.Fatalf("unbounded store evicted: len %d", m.Len())
	}
}

func TestTieredPromotesColdHits(t *testing.T) {
	disk, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hot := NewMemoryLRU[metrics.Point](8)
	tiered := NewTiered[metrics.Point](hot, disk)

	pt := metrics.Point{Rate: 0.4, Latency: 33}
	if err := tiered.Put("k", pt); err != nil {
		t.Fatal(err)
	}
	// Fresh tiers over the same directory: only the disk copy survives.
	hot2 := NewMemoryLRU[metrics.Point](8)
	disk2, err := OpenCache(disk.Dir())
	if err != nil {
		t.Fatal(err)
	}
	tiered2 := NewTiered[metrics.Point](hot2, disk2)
	if got, ok := tiered2.Get("k"); !ok || !reflect.DeepEqual(got, pt) {
		t.Fatalf("cold get: %+v ok=%v", got, ok)
	}
	if disk2.Hits() != 1 {
		t.Fatalf("first get should hit disk, hits=%d", disk2.Hits())
	}
	// The hit was promoted: the second lookup must not touch the disk.
	if got, ok := tiered2.Get("k"); !ok || !reflect.DeepEqual(got, pt) {
		t.Fatalf("hot get: %+v ok=%v", got, ok)
	}
	if disk2.Hits() != 1 {
		t.Fatalf("hot replay hit the filesystem (disk hits=%d)", disk2.Hits())
	}
	if hot2.Hits() != 1 {
		t.Fatalf("hot tier hits=%d, want 1", hot2.Hits())
	}
	if !strings.Contains(tiered2.StatsLine(), "memory:") || !strings.Contains(tiered2.StatsLine(), "cache:") {
		t.Fatalf("stats line missing tiers: %q", tiered2.StatsLine())
	}
}

func TestTieredNilTiers(t *testing.T) {
	hotOnly := NewTiered[metrics.Point](NewMemoryLRU[metrics.Point](2), nil)
	if err := hotOnly.Put("k", metrics.Point{Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := hotOnly.Get("k"); !ok {
		t.Fatal("hot-only tier lost the entry")
	}
	empty := NewTiered[metrics.Point](nil, nil)
	if _, ok := empty.Get("k"); ok {
		t.Fatal("empty tier hit")
	}
	if err := empty.Put("k", metrics.Point{}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheVersioningRejectsOldSchema(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "some-point-key"

	// A v1-era entry (no version stamp) lives under a different filename
	// (the bare key hash); the versioned cache must never find it.
	v1 := struct {
		Key   string        `json:"key"`
		Point metrics.Point `json:"point"`
	}{Key: key, Point: metrics.Point{Rate: 9, Latency: 999}}
	data, _ := json.Marshal(v1)
	if err := os.WriteFile(filepath.Join(dir, "0123456789abcdef01234567.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("unversioned stale entry replayed")
	}

	// Even an entry forged onto the *current* path is rejected without the
	// current version stamp.
	if err := c.Put(key, metrics.Point{Rate: 1}); err != nil {
		t.Fatal(err)
	}
	var path string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "0123456789abcdef01234567.json" {
			path = filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatal("versioned entry not written")
	}
	forged, _ := json.Marshal(struct {
		Version int           `json:"version"`
		Key     string        `json:"key"`
		Point   metrics.Point `json:"point"`
	}{Version: CacheSchemaVersion - 1, Key: key, Point: metrics.Point{Rate: 8}})
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("old-version entry on the current path replayed")
	}
}

func TestCachePutLeavesNoTempFilesBehind(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), metrics.Point{Rate: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries, want 4", len(entries))
	}
}
