package check

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CacheKeyAnalyzer machine-checks content-address completeness: a
// key-serialization function annotated //sldf:cachekey <Type> must
// reference every exported field of that spec struct — directly or
// through same-package functions it calls — unless the field is marked
// //sldf:keyignore <reason> at its declaration. A spec field that is
// neither in the key nor explicitly declared result-neutral is exactly
// how two different measurements come to share a cache slot (the
// FlowSeedThrottles precedent: an approximate knob must partition the
// key, while FlowWorkers/FlowCold legitimately stay out).
var CacheKeyAnalyzer = &analysis.Analyzer{
	Name: "sldfcachekey",
	Doc: "check that //sldf:cachekey <Type> functions reference every " +
		"exported field of the spec type; exempt execution knobs with " +
		"//sldf:keyignore <reason> on the field",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCacheKey,
}

const keyIgnore = "keyignore"

func runCacheKey(pass *analysis.Pass) (any, error) {
	fd := newFileDirectives(pass)
	fd.reportNaked(keyIgnore)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		f := enclosingFile(pass, decl.Pos())
		if f == nil {
			return
		}
		for _, d := range fd.at(f, decl.Pos(), "cachekey") {
			if d.arg == "" {
				pass.Reportf(d.pos, "//sldf:cachekey needs a type name argument")
				continue
			}
			checkKeyFunc(pass, fd, decl, d.arg)
		}
	})
	return nil, nil
}

func checkKeyFunc(pass *analysis.Pass, fd *fileDirectives, decl *ast.FuncDecl, typeName string) {
	named := resolveNamed(pass, typeName)
	if named == nil {
		pass.Reportf(decl.Name.Pos(), "//sldf:cachekey %s: cannot resolve the type in this package or its imports", typeName)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(decl.Name.Pos(), "//sldf:cachekey %s: not a struct type", typeName)
		return
	}

	used := make(map[string]bool)
	wholeUse := collectFieldUses(pass, decl, named, used)

	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() || used[field.Name()] || wholeUse {
			continue
		}
		if ignored, naked := fieldKeyIgnored(pass, fd, named, field.Name()); ignored {
			continue
		} else if naked {
			continue // the naked-directive diagnostic already fired
		}
		pass.Reportf(decl.Name.Pos(),
			"cache key for %s never reads exported field %s: a spec that differs only in %s would replay the wrong cached result (serialize it, or mark the field //sldf:keyignore <reason>)",
			typeName, field.Name(), field.Name())
	}
}

// collectFieldUses walks the transitive same-package call closure of the
// key function and marks every field of the spec type that is selected.
// It returns true when a whole value of the type escapes to another
// package (fmt %+v, json.Marshal, ...), which serializes every field at
// once and satisfies the check wholesale.
func collectFieldUses(pass *analysis.Pass, root *ast.FuncDecl, named *types.Named, used map[string]bool) bool {
	decls := packageFuncDecls(pass)
	visited := map[*ast.FuncDecl]bool{}
	wholeUse := false
	var walk func(d *ast.FuncDecl)
	walk = func(d *ast.FuncDecl) {
		if d == nil || visited[d] || d.Body == nil {
			return
		}
		visited[d] = true
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[n]
				if ok && sel.Kind() == types.FieldVal && sameNamed(receiverNamed(sel), named) {
					used[n.Sel.Name] = true
				}
			case *ast.CallExpr:
				if callee, ok := pass.TypesInfo.Uses[usedIdent(n.Fun)].(*types.Func); ok {
					if callee.Pkg() == pass.Pkg {
						walk(decls[callee])
					} else {
						// A whole spec value handed to another package
						// (fmt.Sprintf("%+v", spec), json.Marshal(spec))
						// serializes all of it.
						for _, arg := range n.Args {
							if at := pass.TypesInfo.TypeOf(arg); at != nil && sameNamed(namedOf(at), named) {
								wholeUse = true
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(root)
	return wholeUse
}

// receiverNamed unwraps the named struct type a field selection reads
// from, through pointers.
func receiverNamed(sel *types.Selection) *types.Named {
	return namedOf(sel.Recv())
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n
		}
	}
	return nil
}

func sameNamed(a, b *types.Named) bool {
	return a != nil && b != nil && a.Obj() == b.Obj()
}

// packageFuncDecls indexes this pass's function declarations by their
// types.Func objects, methods included.
func packageFuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					out[obj] = fn
				}
			}
		}
	}
	return out
}

// resolveNamed resolves "T" in the pass package or "pkg.T" through its
// imports.
func resolveNamed(pass *analysis.Pass, name string) *types.Named {
	scope := pass.Pkg.Scope()
	if pkgName, typ, ok := strings.Cut(name, "."); ok {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				name = typ
				break
			}
		}
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil
	}
	if tn, ok := obj.(*types.TypeName); ok {
		if n, ok := tn.Type().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// fieldKeyIgnored looks for a //sldf:keyignore directive on the field's
// declaration line. The struct must be declared in the pass package —
// cross-package spec types cannot carry checked ignore markers, so their
// every exported field must be serialized.
func fieldKeyIgnored(pass *analysis.Pass, fd *fileDirectives, named *types.Named, fieldName string) (ignored, naked bool) {
	if named.Obj().Pkg() != pass.Pkg {
		return false, false
	}
	spec := structSpec(pass, named)
	if spec == nil {
		return false, false
	}
	for _, f := range spec.Fields.List {
		for _, id := range f.Names {
			if id.Name != fieldName {
				continue
			}
			file := enclosingFile(pass, f.Pos())
			if file == nil {
				return false, false
			}
			for _, d := range fd.at(file, f.Pos(), keyIgnore) {
				if d.arg != "" {
					return true, false
				}
				naked = true
			}
			return false, naked
		}
	}
	return false, false
}

// structSpec finds the *ast.StructType of a named type declared in this
// pass.
func structSpec(pass *analysis.Pass, named *types.Named) *ast.StructType {
	pos := named.Obj().Pos()
	for _, f := range pass.Files {
		if f.FileStart > pos || pos > f.FileEnd {
			continue
		}
		var found *ast.StructType
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Pos() != pos {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				found = st
			}
			return false
		})
		if found != nil {
			return found
		}
	}
	return nil
}
