package check_test

import (
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"sldf/internal/check"
	"sldf/internal/check/checktest"
)

func TestDeterminismFixtures(t *testing.T) {
	checktest.Run(t, "testdata", check.DeterminismAnalyzer, "determinism")
}

func TestHotpathFixtures(t *testing.T) {
	checktest.Run(t, "testdata", check.HotpathAnalyzer, "hotpath")
}

func TestCacheKeyFixtures(t *testing.T) {
	checktest.Run(t, "testdata", check.CacheKeyAnalyzer, "cachekey")
}

func TestSentinelFixtures(t *testing.T) {
	checktest.Run(t, "testdata", check.SentinelAnalyzer, "sentinel")
}

func messages(ds []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.Message)
		b.WriteString("\n")
	}
	return b.String()
}

func wantContains(t *testing.T, got string, frags ...string) {
	t.Helper()
	for _, f := range frags {
		if !strings.Contains(got, f) {
			t.Errorf("diagnostics missing %q; got:\n%s", f, got)
		}
	}
}

// A directive with no reason must not suppress, and must itself be
// reported — so every suppression in the tree documents why it is safe.
// The naked-directive diagnostic lands on the directive comment's own
// line, which the // want protocol cannot annotate, hence these
// source-string tests.
func TestNakedNondeterministicOKIsReported(t *testing.T) {
	got := messages(checktest.Diagnostics(t, check.DeterminismAnalyzer, `
// Package p is deterministic.
//
//sldf:deterministic
package p

// Keys hides behind a reasonless directive.
func Keys(m map[string]int) []string {
	var out []string
	//sldf:nondeterministic-ok
	for k := range m {
		out = append(out, k)
	}
	return out
}
`))
	wantContains(t, got,
		"naked //sldf:nondeterministic-ok directive",
		"map iteration order")
}

func TestNakedAllocOKIsReported(t *testing.T) {
	got := messages(checktest.Diagnostics(t, check.HotpathAnalyzer, `
package p

// Hot allocates behind a reasonless directive.
//
//sldf:hotpath
func Hot() []int {
	//sldf:alloc-ok
	return make([]int, 4)
}
`))
	wantContains(t, got,
		"naked //sldf:alloc-ok directive",
		"make allocates")
}

func TestNakedKeyIgnoreIsReported(t *testing.T) {
	got := messages(checktest.Diagnostics(t, check.CacheKeyAnalyzer, `
package p

import "fmt"

type Spec struct {
	A int
	//sldf:keyignore
	B int
}

//sldf:cachekey Spec
func Key(s Spec) string {
	return fmt.Sprintf("%d", s.A)
}
`))
	wantContains(t, got, "naked //sldf:keyignore directive")
}

func TestCacheKeyDirectiveNeedsType(t *testing.T) {
	got := messages(checktest.Diagnostics(t, check.CacheKeyAnalyzer, `
package p

//sldf:cachekey
func Key() string {
	return ""
}
`))
	wantContains(t, got, "needs a type name argument")
}

// Packages that do not opt in with //sldf:deterministic are exempt from
// the determinism contract entirely.
func TestDeterminismIsOptIn(t *testing.T) {
	got := checktest.Diagnostics(t, check.DeterminismAnalyzer, `
package p

import "time"

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Stamp() time.Time {
	return time.Now()
}
`)
	if len(got) != 0 {
		t.Errorf("non-opted-in package produced diagnostics:\n%s", messages(got))
	}
}

func TestAnalyzersAreRegistered(t *testing.T) {
	want := map[string]bool{
		"sldfdeterminism": false,
		"sldfhotpath":     false,
		"sldfcachekey":    false,
		"sldfsentinel":    false,
	}
	for _, a := range check.Analyzers() {
		if _, ok := want[a.Name]; !ok {
			t.Errorf("unexpected analyzer %s", a.Name)
			continue
		}
		want[a.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %s not registered", name)
		}
	}
}
