// Package checktest runs check's analyzers over GOPATH-style fixture
// packages and matches their diagnostics against // want annotations —
// the analysistest protocol, reimplemented on the standard library's
// source importer so the fixture suite needs nothing beyond GOROOT.
//
// A fixture directory testdata/src/<pkg> holds ordinary Go files whose
// expected diagnostics are written on the offending line:
//
//	for k := range m { // want `map iteration order`
//
// The quoted text is a regular expression; every diagnostic must match a
// want on its line and every want must be matched by a diagnostic.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run analyzes testdata/src/<pkg> under dir with the analyzer and
// reports every mismatch between diagnostics and // want annotations as
// a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", pkgDir)
	}
	diags := analyze(t, fset, files, pkg, a)
	checkWants(t, fset, files, diags)
}

// Diagnostics type-checks a single in-memory file and returns the
// analyzer's raw diagnostics — for assertions the line-anchored want
// protocol cannot express, such as a diagnostic reported on a directive
// comment's own line.
func Diagnostics(t *testing.T, a *analysis.Analyzer, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return analyze(t, fset, []*ast.File{f}, f.Name.Name, a)
}

func analyze(t *testing.T, fset *token.FileSet, files []*ast.File, pkgPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		// The source importer type-checks stdlib imports from GOROOT
		// source: no export data, no network, no go command.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]any),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	for _, req := range a.Requires {
		if req == inspect.Analyzer {
			pass.ResultOf[req] = inspector.New(files)
			continue
		}
		t.Fatalf("unsupported requirement %s", req.Name)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return diags
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, spec, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(spec, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if t.Failed() {
		var lines []string
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			lines = append(lines, fmt.Sprintf("  %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
		}
		t.Logf("all diagnostics:\n%s", strings.Join(lines, "\n"))
	}
}
