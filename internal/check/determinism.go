package check

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer enforces the repo's bitwise-reproducibility
// contract in packages that opt in with a package-level
// //sldf:deterministic directive: every serial, parallel, cached and
// remote execution of the same spec must produce byte-identical results,
// so nothing on a result path may depend on map iteration order, global
// RNG state, or the wall clock.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "sldfdeterminism",
	Doc: "flag map iteration, global math/rand state and wall-clock reads " +
		"in packages declared //sldf:deterministic; suppress benign sites " +
		"with //sldf:nondeterministic-ok <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

const nondetOK = "nondeterministic-ok"

func runDeterminism(pass *analysis.Pass) (any, error) {
	fd := newFileDirectives(pass)
	if !hasPackageDirective(fd, "deterministic") {
		return nil, nil
	}
	fd.reportNaked(nondetOK)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.RangeStmt)(nil),
		(*ast.Ident)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		case *ast.Ident:
			// Qualified references (rand.Intn) are caught here too: the
			// selector's Sel ident resolves to the same function object.
			checkNondetRef(pass, fd, n, n)
		}
	})
	return nil, nil
}

// checkNondetRef flags uses of global math/rand state and wall-clock
// reads. Seeded generators (rand.New, rand.NewSource, rand.NewZipf, and
// every *rand.Rand method) are deterministic and stay silent; only the
// package-level convenience functions share mutable global state.
func checkNondetRef(pass *analysis.Pass, fd *fileDirectives, id *ast.Ident, site ast.Node) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return
	}
	// Package-level functions only: methods have a receiver and carry
	// their own state (e.g. *rand.Rand), which is seedable and fine.
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(obj.Name(), "New") {
			return // constructors of caller-owned, seeded state
		}
		f := enclosingFile(pass, site.Pos())
		if f == nil || fd.suppressed(f, site.Pos(), nondetOK) {
			return
		}
		pass.Reportf(site.Pos(), "global %s.%s uses shared RNG state: results depend on call interleaving; use a seeded *rand.Rand (or annotate //sldf:nondeterministic-ok <reason>)",
			obj.Pkg().Name(), obj.Name())
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			f := enclosingFile(pass, site.Pos())
			if f == nil || fd.suppressed(f, site.Pos(), nondetOK) {
				return
			}
			pass.Reportf(site.Pos(), "wall-clock time.%s in a deterministic package: results must not depend on real time (annotate //sldf:nondeterministic-ok <reason> for profiling/stats paths)",
				obj.Name())
		}
	}
}

// checkMapRange flags `range` over a map unless the loop body is provably
// order-insensitive (see orderInsensitiveBody).
func checkMapRange(pass *analysis.Pass, fd *fileDirectives, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass, rng) {
		return
	}
	f := enclosingFile(pass, rng.Pos())
	if f == nil || fd.suppressed(f, rng.Pos(), nondetOK) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is random and this body is not provably order-insensitive: sort the keys first, or annotate //sldf:nondeterministic-ok <reason>")
}

// orderInsensitiveBody reports whether a map-range body cannot observe
// iteration order. The whitelist is deliberately narrow — integer
// accumulation, boolean latching, keyed stores into another map, and
// deletion — because "looks commutative" is exactly how ordering bugs
// slip in (float += is not associative; argmax tie-breaks on order).
func orderInsensitiveBody(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	keyObj := rangeVarObj(pass, rng.Key)
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(pass, keyObj, s) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) with k the range key removes a distinct entry
			// per iteration — order cannot matter.
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "delete") || len(call.Args) != 2 {
				return false
			}
			if keyObj == nil || rangeVarObj(pass, call.Args[1]) != keyObj {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// orderInsensitiveAssign accepts integer compound accumulation (+=, |=,
// &=, ^=), boolean/constant latching (x = true), and stores into another
// map keyed by the range key (distinct source keys hit distinct slots).
func orderInsensitiveAssign(pass *analysis.Pass, keyObj types.Object, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return isIntegerExpr(pass, lhs) && !exprReadsMapOrder(rhs)
	case token.ASSIGN:
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			t := pass.TypesInfo.TypeOf(idx.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
			return keyObj != nil && rangeVarObj(pass, idx.Index) == keyObj
		}
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			tv, ok := pass.TypesInfo.Types[rhs]
			return ok && tv.Value != nil // constant latch: last write is identical
		}
	}
	return false
}

// exprReadsMapOrder conservatively reports whether an accumulation RHS
// could smuggle order back in (e.g. x += f() where f reads the
// accumulator). Plain operands and arithmetic over them are fine; any
// call is not.
func exprReadsMapOrder(e ast.Expr) bool {
	ordered := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isCall := n.(*ast.CallExpr); isCall {
			ordered = true
			return false
		}
		return true
	})
	return ordered
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
