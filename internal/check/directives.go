package check

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// A directive is one parsed //sldf:<kind> [argument] comment line.
type directive struct {
	pos  token.Pos // position of the comment
	line int       // line the comment sits on
	kind string    // "hotpath", "nondeterministic-ok", ...
	arg  string    // trailing text: a reason or a type name
}

const directivePrefix = "//sldf:"

// parseDirectives extracts every //sldf: directive from a file, keyed by
// the line the comment occupies. A directive suppresses (or annotates) the
// line it shares with code, or the line immediately below a comment-only
// line — the two ways Go code conventionally carries a marker.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]directive {
	out := make(map[int][]directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			kind, arg, _ := strings.Cut(rest, " ")
			d := directive{
				pos:  c.Pos(),
				line: fset.Position(c.Pos()).Line,
				kind: kind,
				arg:  strings.TrimSpace(arg),
			}
			out[d.line] = append(out[d.line], d)
		}
	}
	return out
}

// fileDirectives lazily parses and memoizes the directives of every file
// in a pass, plus which lines carry code — a directive that trails code
// annotates only its own line, while a standalone comment line annotates
// the line below it.
type fileDirectives struct {
	pass  *analysis.Pass
	files map[*ast.File]map[int][]directive
	code  map[*ast.File]map[int]bool
}

func newFileDirectives(pass *analysis.Pass) *fileDirectives {
	return &fileDirectives{
		pass:  pass,
		files: make(map[*ast.File]map[int][]directive),
		code:  make(map[*ast.File]map[int]bool),
	}
}

func (fd *fileDirectives) of(f *ast.File) map[int][]directive {
	m, ok := fd.files[f]
	if !ok {
		m = parseDirectives(fd.pass.Fset, f)
		fd.files[f] = m
		fd.code[f] = codeLines(fd.pass.Fset, f)
	}
	return m
}

// codeLines marks every line holding a non-comment token, by walking node
// start and end positions. Comment groups attached as Doc/line comments
// are skipped so a comment-only line stays unmarked.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.CommentGroup, *ast.Comment:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		if end := n.End(); end.IsValid() {
			lines[fset.Position(end-1).Line] = true
		}
		return true
	})
	return lines
}

// at returns the directives of the given kind attached to pos: trailing
// on the same line, or standing alone on the line above it.
func (fd *fileDirectives) at(f *ast.File, pos token.Pos, kind string) []directive {
	m := fd.of(f)
	line := fd.pass.Fset.Position(pos).Line
	var out []directive
	for _, d := range m[line] {
		if d.kind == kind {
			out = append(out, d)
		}
	}
	if !fd.code[f][line-1] {
		for _, d := range m[line-1] {
			if d.kind == kind {
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic at pos is suppressed by a
// reason-bearing directive of the given kind. A directive with no reason
// does not suppress — the analyzers separately report naked directives, so
// every suppression in the tree documents why it is safe.
func (fd *fileDirectives) suppressed(f *ast.File, pos token.Pos, kind string) bool {
	for _, d := range fd.at(f, pos, kind) {
		if d.arg != "" {
			return true
		}
	}
	return false
}

// reportNaked emits a diagnostic for every directive of the given kind
// that carries no reason, anywhere in the pass. Called once per analyzer
// that owns the directive kind.
func (fd *fileDirectives) reportNaked(kind string) {
	for _, f := range fd.pass.Files {
		if inTestFile(fd.pass, f.Pos()) {
			continue
		}
		for _, ds := range fd.of(f) {
			for _, d := range ds {
				if d.kind == kind && d.arg == "" {
					fd.pass.Reportf(d.pos, "naked //sldf:%s directive: state the reason it is safe", kind)
				}
			}
		}
	}
}

// enclosingFile returns the *ast.File of the pass containing pos.
func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// inTestFile reports whether pos lies in a _test.go file. The determinism
// and hotpath invariants guard result-producing code; tests iterate maps
// and allocate freely without affecting any shipped result.
func inTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// hasPackageDirective reports whether any file of the pass carries a
// package-level //sldf:<kind> directive (conventionally in the package
// documentation block). Analyzers that are opt-in per package key off it.
func hasPackageDirective(fd *fileDirectives, kind string) bool {
	for _, f := range fd.pass.Files {
		for _, ds := range fd.of(f) {
			for _, d := range ds {
				if d.kind == kind {
					return true
				}
			}
		}
	}
	return false
}
