// Package check is the repo's invariant lint suite: go/analysis analyzers
// that move the guarantees the test suites prove dynamically — bitwise
// serial==parallel==cached equality, zero-alloc steady-state stepping,
// content-addressed cache-key completeness, sentinel-error discipline —
// to compile time, so a violation is flagged at the line that introduces
// it instead of hours later by a flaky-looking CI diff.
//
// Four analyzers, all driven by //sldf: source directives:
//
//   - determinism: in packages whose source carries a package-level
//     //sldf:deterministic directive, flags map iteration whose body is
//     not provably order-insensitive, global math/rand state, and wall
//     clock (time.Now/Since/Until) reads. Benign sites are annotated
//     //sldf:nondeterministic-ok <reason> (the reason is mandatory).
//
//   - hotpath: for functions and function literals annotated
//     //sldf:hotpath, flags heap-allocating constructs — fmt calls,
//     map/slice/pointer composite literals, make/new, appends that grow a
//     different slice than they were given, capturing closures, and
//     implicit interface boxing — complementing the runtime
//     AllocsPerRun==0 pins with point-of-introduction diagnostics.
//     Deliberate cold-path allocations are annotated
//     //sldf:alloc-ok <reason>.
//
//   - cachekey: a key-serialization function annotated
//     //sldf:cachekey <Type> must reference every exported field of that
//     spec struct (directly or through same-package callees), unless the
//     field is marked //sldf:keyignore <reason> at its declaration. This
//     machine-checks the "every result-affecting input is in the content
//     address" contract of pointKey/cacheID/collectiveKey/churnKey.
//
//   - sentinel: package-level error values named Err*/err* must be
//     matched with errors.Is, never == / != or string comparison of
//     err.Error().
//
// cmd/sldfcheck is the driver; `sldfcheck ./...` runs the suite over the
// module via `go vet -vettool`. See README "Static analysis & invariants".
package check

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full suite in a stable order, for the sldfcheck
// driver and the programmatic self-test.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		HotpathAnalyzer,
		CacheKeyAnalyzer,
		SentinelAnalyzer,
	}
}
