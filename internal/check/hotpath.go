package check

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotpathAnalyzer statically flags heap-allocating constructs in
// functions annotated //sldf:hotpath — the steady-state stepping and
// solver paths whose zero-allocation contract the AllocsPerRun==0 tests
// pin at runtime. The runtime pins catch a regression; this analyzer
// points at the line that introduced it. Deliberate allocations on cold
// branches inside a hot function (error construction, one-time growth)
// are annotated //sldf:alloc-ok <reason>.
var HotpathAnalyzer = &analysis.Analyzer{
	Name: "sldfhotpath",
	Doc: "flag allocating constructs (fmt, composite literals, make/new, " +
		"foreign-slice appends, capturing closures, interface boxing) in " +
		"//sldf:hotpath functions; suppress cold branches with " +
		"//sldf:alloc-ok <reason>",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotpath,
}

const allocOK = "alloc-ok"

// hotFunc is one annotated body plus the signature its returns box into.
type hotFunc struct {
	file    *ast.File
	body    *ast.BlockStmt
	results *types.Tuple
}

func runHotpath(pass *analysis.Pass) (any, error) {
	fd := newFileDirectives(pass)
	fd.reportNaked(allocOK)
	for _, f := range hotFuncs(pass, fd) {
		checkHotBody(pass, fd, f)
	}
	return nil, nil
}

// hotFuncs collects the bodies annotated //sldf:hotpath: named function
// declarations (directive in the doc comment) and function literals
// (directive on, or on the line above, the `func` keyword — the
// persistent phase closures built once and stepped every cycle).
func hotFuncs(pass *analysis.Pass, fd *fileDirectives) []hotFunc {
	var hot []hotFunc
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if inTestFile(pass, n.Pos()) {
			return
		}
		f := enclosingFile(pass, n.Pos())
		if f == nil || len(fd.at(f, n.Pos(), "hotpath")) == 0 {
			return
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return
			}
			var res *types.Tuple
			if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
				res = fn.Type().(*types.Signature).Results()
			}
			hot = append(hot, hotFunc{file: f, body: n.Body, results: res})
		case *ast.FuncLit:
			var res *types.Tuple
			if sig, ok := typeOf(pass, n).(*types.Signature); ok {
				res = sig.Results()
			}
			hot = append(hot, hotFunc{file: f, body: n.Body, results: res})
		}
	})
	return hot
}

func checkHotBody(pass *analysis.Pass, fd *fileDirectives, hf hotFunc) {
	report := func(pos ast.Node, format string, args ...any) {
		if fd.suppressed(hf.file, pos.Pos(), allocOK) {
			return
		}
		pass.Reportf(pos.Pos(), "hot path: "+format+" (annotate //sldf:alloc-ok <reason> if this branch is cold)", args...)
	}

	// Self-append targets: `x = append(x, ...)` is the amortized
	// steady-state idiom (the runtime pin proves it stops growing).
	// ast.Inspect is preorder, so the assignment registers its append
	// call before the call itself is visited.
	selfAppend := make(map[*ast.CallExpr]bool)

	results := hf.results
	ast.Inspect(hf.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesVariables(pass, n) {
				report(n, "capturing closure allocates its environment")
			}
			// Keep descending: the literal's body executes on the hot
			// path too. Its returns box into its own signature, not the
			// enclosing one, so stop matching ReturnStmts against ours.
			checkHotBody(pass, fd, hotFunc{file: hf.file, body: n.Body, results: sigResults(pass, n)})
			return false
		case *ast.CompositeLit:
			t := typeOf(pass, n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates")
			case *types.Map:
				report(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n, "&composite literal escapes to the heap")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppend(pass, call) && len(call.Args) > 0 {
					if types.ExprString(n.Lhs[0]) == types.ExprString(call.Args[0]) {
						selfAppend[call] = true
					}
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if lt := typeOf(pass, n.Lhs[i]); boxes(pass, lt, rhs) {
						report(rhs, "assignment boxes a concrete value into interface %s", typeName(pass, lt))
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, n, selfAppend)
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, res := range n.Results {
					if rt := results.At(i).Type(); boxes(pass, rt, res) {
						report(res, "return boxes a concrete value into interface %s", typeName(pass, rt))
					}
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	switch fun := pass.TypesInfo.Uses[usedIdent(call.Fun)].(type) {
	case *types.Builtin:
		switch fun.Name() {
		case "make":
			report(call, "make allocates; hoist to setup and reuse")
		case "new":
			report(call, "new allocates; hoist to setup and reuse")
		case "append":
			if !selfAppend[call] {
				report(call, "append grows a slice it does not write back to; preallocate or self-append")
			}
		}
		return
	case *types.Func:
		if pkg := fun.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			report(call, "fmt.%s allocates (formatting state and boxed operands)", fun.Name())
			return
		}
	}
	tv, hasTV := pass.TypesInfo.Types[call.Fun]
	if hasTV && tv.IsType() && len(call.Args) == 1 {
		// A conversion T(x): boxes when T is an interface.
		if boxes(pass, tv.Type, call.Args[0]) {
			report(call, "conversion boxes a concrete value into interface %s", typeName(pass, tv.Type))
		}
		return
	}
	sig, ok := typeOf(pass, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
			// The variadic call also allocates its backing slice; each
			// boxed element diagnostic already marks the site.
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, pt, arg) {
			report(arg, "argument boxes a concrete value into interface %s", typeName(pass, pt))
		}
	}
}

// boxes reports whether storing arg into a destination of type dst
// heap-allocates an interface payload: dst is an interface, arg a
// concrete non-constant value whose representation does not fit the
// interface data word. Pointer-shaped values (pointers, channels, maps,
// funcs, unsafe pointers) fit directly; constants box to static data;
// small scalars are skipped — the real offenders in this codebase are
// strings, structs, slices and arrays.
func boxes(pass *analysis.Pass, dst types.Type, arg ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	switch at := tv.Type.Underlying().(type) {
	case *types.Struct, *types.Array, *types.Slice:
		return true
	case *types.Basic:
		if at.Kind() == types.UntypedNil {
			return false
		}
		return at.Info()&types.IsString != 0
	default:
		return false
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.TypeOf(e)
}

func typeName(pass *analysis.Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

func sigResults(pass *analysis.Pass, lit *ast.FuncLit) *types.Tuple {
	if sig, ok := typeOf(pass, lit).(*types.Signature); ok {
		return sig.Results()
	}
	return nil
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	b, ok := pass.TypesInfo.Uses[usedIdent(call.Fun)].(*types.Builtin)
	return ok && b.Name() == "append"
}

// usedIdent unwraps the identifier a call's Fun resolves through:
// a bare ident or the Sel of a selector.
func usedIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	case *ast.ParenExpr:
		return usedIdent(f.X)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return usedIdent(f.X)
	case *ast.IndexListExpr:
		return usedIdent(f.X)
	}
	return nil
}

// capturesVariables reports whether a function literal references any
// variable declared outside itself but inside the surrounding function —
// the captures that force an environment allocation. References to
// package-level objects cost nothing.
func capturesVariables(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil || obj.Parent() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level: no capture
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}
