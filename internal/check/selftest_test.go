package check_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles cmd/sldfcheck into a temp dir and returns the repo
// root and the binary path.
func buildTool(t *testing.T) (root, tool string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool = filepath.Join(t.TempDir(), "sldfcheck")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/sldfcheck")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sldfcheck: %v\n%s", err, out)
	}
	return root, tool
}

// TestRepoIsCheckClean is the meta-invariant: the shipped tree must
// pass its own analyzers with zero diagnostics, so an un-clean tree can
// never merge even if the CI lint step is skipped.
func TestRepoIsCheckClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds sldfcheck and vets the whole repo")
	}
	root, tool := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sldfcheck over ./... reported diagnostics:\n%s", out)
	}
}

// TestSeededViolationsAreCaught proves the gate has teeth: a module
// seeded with one violation per analyzer must fail, with each
// analyzer's diagnostic present. A silently-passing checker is worse
// than none.
func TestSeededViolationsAreCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("builds sldfcheck and vets the seeded module")
	}
	root, tool := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = filepath.Join(root, "internal", "check", "testdata", "seeded")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("sldfcheck passed over the seeded-violation module:\n%s", out)
	}
	for _, frag := range []string{
		"map iteration order",            // sldfdeterminism
		"wall-clock time.Now",            // sldfdeterminism
		"use errors.Is",                  // sldfsentinel
		"make allocates",                 // sldfhotpath
		"never reads exported field Dos", // sldfcachekey
	} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("seeded run missing diagnostic %q; output:\n%s", frag, out)
		}
	}
}
