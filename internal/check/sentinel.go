package check

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SentinelAnalyzer enforces the sentinel-error contract: package-level
// error values named Err*/err* (ErrPartitioned, ErrCycleLimit,
// ErrDeadChip, ...) are matched with errors.Is, never == / != and never
// by comparing err.Error() text. The sentinels here are routinely
// wrapped (%w, DeadChipError, the routing fault wrappers), so a direct
// comparison compiles, passes the happy-path test, and silently stops
// matching the wrapped form — the exact bug class errors.Is exists for.
var SentinelAnalyzer = &analysis.Analyzer{
	Name: "sldfsentinel",
	Doc: "sentinel errors must be matched with errors.Is, not ==/!= or " +
		"err.Error() string comparison",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSentinel,
}

func runSentinel(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if isNil(pass, n.X) || isNil(pass, n.Y) {
				return // err == nil is the one blessed direct comparison
			}
			if sentinelRef(pass, n.X) != nil || sentinelRef(pass, n.Y) != nil {
				pass.Reportf(n.OpPos, "sentinel error compared with %s: wrapped errors will not match; use errors.Is", n.Op)
				return
			}
			if isErrorText(pass, n.X) || isErrorText(pass, n.Y) {
				pass.Reportf(n.OpPos, "comparing err.Error() text: brittle against wrapping and message edits; use errors.Is (or errors.As)")
			}
		case *ast.SwitchStmt:
			// switch err { case ErrX: } compares with == per case.
			if n.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(n.Tag)) {
				return
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if sentinelRef(pass, e) != nil {
						pass.Reportf(e.Pos(), "sentinel error in a switch case compares with ==: wrapped errors will not match; use errors.Is in if/else chains or switch { case errors.Is(...) }")
					}
				}
			}
		}
	})
	return nil, nil
}

// sentinelRef resolves an expression to a package-level error variable
// whose name marks it as a sentinel (Err... / err...), in this package
// or any imported one.
func sentinelRef(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	name := v.Name()
	if strings.HasPrefix(name, "Err") || strings.HasPrefix(name, "err") {
		return v
	}
	return nil
}

// isErrorText reports whether e is a call of the error interface's
// Error() method — the telltale of string-matching an error.
func isErrorText(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorType(pass.TypesInfo.TypeOf(sel.X))
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type()) ||
		types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
