module seededviolation

go 1.24
