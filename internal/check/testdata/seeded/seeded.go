// Package seededviolation deliberately breaks one invariant per
// analyzer. The CI self-test (and TestSeededViolationsAreCaught) runs
// sldfcheck over this module and requires failure — proving the gate
// can still catch violations, not merely pass clean trees.
//
//sldf:deterministic
package seededviolation

import (
	"errors"
	"fmt"
	"time"
)

// ErrSeeded is the sentinel the direct comparison below must trip on.
var ErrSeeded = errors.New("seeded violation")

// Spec feeds the key below; Dos is deliberately left out of it.
type Spec struct {
	Chips int
	Dos   int
}

// Tags observes map iteration order (sldfdeterminism).
func Tags(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Stamp reads the wall clock (sldfdeterminism).
func Stamp() time.Time {
	return time.Now()
}

// IsSeeded compares a sentinel with == (sldfsentinel).
func IsSeeded(err error) bool {
	return err == ErrSeeded
}

// Hot allocates on an annotated hot path (sldfhotpath).
//
//sldf:hotpath
func Hot() []int {
	return make([]int, 8)
}

// Key never serializes Dos (sldfcachekey).
//
//sldf:cachekey Spec
func Key(s Spec) string {
	return fmt.Sprintf("chips=%d", s.Chips)
}
