// Package cachekey exercises the sldfcachekey analyzer: every exported
// field of a //sldf:cachekey spec type must be read by the key
// function's same-package call closure, be marked //sldf:keyignore, or
// the whole value must escape to a serializer.
package cachekey

import "fmt"

// Spec is the spec under test. C is a declared execution knob; D is
// the forgotten field the analyzer must catch. The keyignore on C must
// NOT leak onto D's line (trailing-comment attachment regression).
type Spec struct {
	A      int
	B      string
	C      int //sldf:keyignore execution knob; results identical for any C
	D      int
	hidden int
}

// Key reads A directly and B through a helper, but never D.
//
//sldf:cachekey Spec
func Key(s Spec) string { // want `never reads exported field D`
	return fmt.Sprintf("a=%d|b=%s", s.A, part(s))
}

func part(s Spec) string {
	_ = s.hidden
	return s.B
}

// FullKey covers every non-ignored field: silent.
//
//sldf:cachekey Spec
func FullKey(s Spec) string {
	return fmt.Sprintf("a=%d|b=%s|d=%d", s.A, s.B, s.D)
}

// Whole has no per-field reads at all.
type Whole struct {
	A int
	B int
}

// WholeKey hands the entire value to a foreign serializer, which
// covers every field at once: silent.
//
//sldf:cachekey Whole
func WholeKey(w Whole) string {
	return fmt.Sprintf("%+v", w)
}

// Missing names a type that does not exist.
//
//sldf:cachekey NoSuchSpec
func Missing() string { // want `cannot resolve the type`
	return ""
}
