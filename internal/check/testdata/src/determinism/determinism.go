// Package determinism exercises the sldfdeterminism analyzer in a
// package that opts in to the bitwise-reproducibility contract.
//
//sldf:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Histogram accumulates integers: order-insensitive, stays silent.
func Histogram(m map[string]int) (total, n int) {
	for _, v := range m {
		total += v
		n++
	}
	return
}

// Keys observes iteration order through append.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `map iteration order`
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysAnnotated carries a reasoned suppression and stays silent.
func KeysAnnotated(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //sldf:nondeterministic-ok keys are sorted immediately below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Copy stores into another map keyed by the range key: distinct source
// keys hit distinct slots, silent.
func Copy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Invert indexes the destination by the range VALUE, not the key —
// collisions resolve in iteration order, so this is flagged.
func Invert(m map[int]string) map[string]int {
	inv := make(map[string]int, len(m))
	for k, v := range m { // want `map iteration order`
		inv[v] = k
	}
	return inv
}

// Prune deletes the visited key: order-insensitive, silent.
func Prune(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Jitter reads the shared global generator.
func Jitter() float64 {
	return rand.Float64() // want `global rand\.Float64`
}

// Seeded owns its generator state: silent.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

// Elapsed is a reasoned profiling suppression: silent.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) //sldf:nondeterministic-ok wall-clock diagnostics only, never part of results
}

// FloatSum is float accumulation: += is not associative, so map order
// changes the bits. Flagged.
func FloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order`
		total += v
	}
	return total
}
