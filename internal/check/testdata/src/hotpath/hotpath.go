// Package hotpath exercises the sldfhotpath analyzer: allocation
// hazards inside //sldf:hotpath bodies are flagged, everything outside
// them is ignored.
package hotpath

import "fmt"

var sink any

type stepper struct {
	buf   []int
	stamp []int32
}

func record(v any) { sink = v }

// Step is the clean steady-state shape: integer work plus a
// self-append that reuses capacity. Silent.
//
//sldf:hotpath
func (s *stepper) Step(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	s.buf = append(s.buf, total)
	return total
}

// Bad trips every allocating construct.
//
//sldf:hotpath
func (s *stepper) Bad(vals []int) {
	_ = []int{1, 2}         // want `slice literal allocates`
	_ = map[int]int{}       // want `map literal allocates`
	_ = &stepper{}          // want `&composite literal escapes`
	_ = make([]byte, 8)     // want `make allocates`
	_ = new(stepper)        // want `new allocates`
	s.buf = append(vals, 1) // want `append grows a slice it does not write back to`
	fmt.Println(len(vals))  // want `fmt\.Println allocates`
	sink = *s               // want `assignment boxes a concrete value`
	record(*s)              // want `argument boxes a concrete value`
	_ = any(*s)             // want `conversion boxes a concrete value`
}

// Snapshot boxes its struct receiver into the any result.
//
//sldf:hotpath
func (s *stepper) Snapshot() any {
	return *s // want `return boxes a concrete value`
}

// Counter returns a closure that captures i: the environment
// allocation is flagged at the literal.
//
//sldf:hotpath
func Counter() func() int {
	i := 0
	return func() int { // want `capturing closure allocates`
		i++
		return i
	}
}

// Grow suppresses a deliberate cold-branch allocation with a reason.
//
//sldf:hotpath
func (s *stepper) Grow(n int) {
	if n > cap(s.stamp) {
		s.stamp = make([]int32, n) //sldf:alloc-ok one-time growth; steady state reuses capacity
	}
}

// PointerBox assigns a pointer-shaped value to an interface: fits the
// data word, no allocation, silent.
//
//sldf:hotpath
func (s *stepper) PointerBox() {
	sink = s
}

// Build annotates a function literal: the directive on the line above
// the literal marks its body hot even though Build itself is cold.
func Build() func() {
	_ = []int{1, 2, 3} // silent: Build is not a hot path
	//sldf:hotpath
	step := func() {
		_ = make([]int, 4) // want `make allocates`
	}
	return step
}

// Cold allocates freely without an annotation: silent.
func Cold() []int {
	return []int{1, 2, 3}
}
