// Package sentinel exercises the sldfsentinel analyzer: sentinel
// errors match only through errors.Is, never ==/!= or error-text
// comparison.
package sentinel

import "errors"

// ErrDead mimics the repo's wrapped sentinels (ErrDeadChip & co).
var ErrDead = errors.New("dead chip")

// Classify walks the blessed and the broken comparison forms.
func Classify(err error) int {
	if err == nil { // silent: nil comparison is the blessed direct form
		return 0
	}
	if err == ErrDead { // want `use errors\.Is`
		return 1
	}
	if err != ErrDead { // want `use errors\.Is`
		return 2
	}
	if errors.Is(err, ErrDead) { // silent: the correct match
		return 3
	}
	if err.Error() == "dead chip" { // want `err\.Error\(\) text`
		return 4
	}
	switch err {
	case ErrDead: // want `switch case compares with ==`
		return 5
	}
	return 6
}

// Same compares two non-sentinel errors: outside the contract, silent.
func Same(a, b error) bool {
	return a == b
}
