// Package collective models the collective-communication algorithms the
// paper uses to motivate the switch-less C-group (Sec. III-B4, Fig. 4):
// ring AllReduce and the 2D row-column algorithm. Algorithms are expressed
// as sequences of steps; each step is a fixed-volume traffic phase whose
// makespan is measured on the simulator, so the O(N) vs O(√N) step-count
// behaviour of Fig. 4 appears as end-to-end cycles.
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package collective

import (
	"errors"
	"fmt"

	"sldf/internal/netsim"
	"sldf/internal/traffic"
)

// ErrPartitioned reports that a schedule cannot be built because faults
// leave fewer than two participants able to communicate — there is no
// collective to run. Callers match it with errors.Is.
var ErrPartitioned = errors.New("collective: fewer than two alive participants")

// Step is one dependent phase of a collective: every participating chip
// sends Flits flits according to Pattern before the next step may begin.
type Step struct {
	Pattern traffic.Pattern
	Flits   int64
	// Participants lists the chips that transmit during this step; nil means
	// every chip of the network. Steps that involve only a subset (a
	// hierarchical phase, a schedule re-routed around dead chips) must list
	// it, or the step barrier would wait forever on chips with nothing to
	// send.
	Participants []int32
}

// Schedule is an ordered list of dependent steps.
type Schedule struct {
	Name  string
	Steps []Step
}

// RingAllReduce returns the classic ring schedule over the chip sequence
// `order`: 2(N−1) steps (reduce-scatter then all-gather), each moving
// volume/N flits per chip to its ring successor.
func RingAllReduce(order []int32, volume int64) Schedule {
	n := int64(len(order))
	if n < 2 {
		return Schedule{Name: "ring-allreduce"}
	}
	chunk := (volume + n - 1) / n
	steps := make([]Step, 0, 2*(n-1))
	for i := int64(0); i < 2*(n-1); i++ {
		steps = append(steps, Step{
			Pattern:      traffic.NewRingOrder(order, false),
			Flits:        chunk,
			Participants: order,
		})
	}
	return Schedule{Name: "ring-allreduce", Steps: steps}
}

// ReduceScatter returns the ring reduce-scatter half of the AllReduce:
// N−1 steps, each moving volume/N flits per chip to its ring successor,
// after which every chip holds one fully reduced shard.
func ReduceScatter(order []int32, volume int64) Schedule {
	return ringHalf("reduce-scatter", order, volume)
}

// AllGather returns the ring all-gather half: N−1 steps of volume/N flits
// per chip, circulating every shard to every participant.
func AllGather(order []int32, volume int64) Schedule {
	return ringHalf("all-gather", order, volume)
}

// ringHalf is the shared shape of reduce-scatter and all-gather: one ring
// pass instead of the AllReduce's two.
func ringHalf(name string, order []int32, volume int64) Schedule {
	n := int64(len(order))
	if n < 2 {
		return Schedule{Name: name}
	}
	chunk := (volume + n - 1) / n
	steps := make([]Step, 0, n-1)
	for i := int64(0); i < n-1; i++ {
		steps = append(steps, Step{
			Pattern:      traffic.NewRingOrder(order, false),
			Flits:        chunk,
			Participants: order,
		})
	}
	return Schedule{Name: name, Steps: steps}
}

// AllToAll returns the rotation (shift) schedule for an all-to-all
// personalized exchange: N−1 steps; in step k every participant i sends its
// volume/N chunk destined for participant (i+k) mod N directly. Unlike the
// ring schedules, each step is a different permutation, exercising the
// network's bisection rather than neighbour links.
func AllToAll(order []int32, volume int64) Schedule {
	n := len(order)
	if n < 2 {
		return Schedule{Name: "all-to-all"}
	}
	chunk := (volume + int64(n) - 1) / int64(n)
	steps := make([]Step, 0, n-1)
	for k := 1; k < n; k++ {
		perm := identityMap(order)
		for i, c := range order {
			perm[c] = order[(i+k)%n]
		}
		steps = append(steps, Step{
			Pattern:      traffic.Permutation{Map: perm, Desc: fmt.Sprintf("a2a-shift-%d", k)},
			Flits:        chunk,
			Participants: order,
		})
	}
	return Schedule{Name: "all-to-all", Steps: steps}
}

// identityMap returns a self-mapped permutation table covering every chip
// that appears in order (self-maps read as silence under
// traffic.Permutation), so schedule permutations stay silent for
// non-participants.
func identityMap(order []int32) []int32 {
	max := int32(0)
	for _, c := range order {
		if c > max {
			max = c
		}
	}
	m := make([]int32, max+1)
	for i := range m {
		m[i] = int32(i)
	}
	return m
}

// HierarchicalAllReduce returns the two-level schedule over equally sized
// chip groups (the W-groups of a Dragonfly, or sub-blocks of a flat
// system): an intra-group ring reduce-scatter, a ring AllReduce of each
// shard slot across the groups, then an intra-group all-gather. With G
// groups of m chips it needs 2(m−1) + 2(G−1) dependent steps instead of
// the flat ring's 2(Gm−1), yet moves exactly the same per-chip volume —
// 2(Gm−1)/(Gm)·V when V divides evenly — because the inter-group phase
// operates on 1/m shards. Groups must share one size; callers with uneven
// (fault-degraded) groups re-route to a flat schedule instead.
func HierarchicalAllReduce(groups [][]int32, volume int64) Schedule {
	const name = "hier-allreduce"
	g := len(groups)
	if g == 0 {
		return Schedule{Name: name}
	}
	m := len(groups[0])
	all := make([]int32, 0, g*m)
	for _, grp := range groups {
		if len(grp) != m {
			return Schedule{Name: name} // uneven groups: caller must re-route
		}
		all = append(all, grp...)
	}
	if g*m < 2 {
		return Schedule{Name: name}
	}
	var steps []Step

	// Intra-group ring: reduce-scatter down to 1/m shards. All groups run
	// their (disjoint) rings inside the same dependent steps.
	intraChunk := (volume + int64(m) - 1) / int64(m)
	intra := identityMap(all)
	for _, grp := range groups {
		for i, c := range grp {
			intra[c] = grp[(i+1)%m]
		}
	}
	if m > 1 {
		for k := 0; k < m-1; k++ {
			steps = append(steps, Step{
				Pattern:      traffic.Permutation{Map: intra, Desc: "hier-intra-ring"},
				Flits:        intraChunk,
				Participants: all,
			})
		}
	}

	// Inter-group ring AllReduce: slot i of every group forms a ring across
	// the groups, reducing its 1/m shard — m disjoint rings of length G in
	// each step.
	if g > 1 {
		interChunk := (volume + int64(m)*int64(g) - 1) / (int64(m) * int64(g))
		inter := identityMap(all)
		for gi, grp := range groups {
			next := groups[(gi+1)%g]
			for i, c := range grp {
				inter[c] = next[i]
			}
		}
		for k := 0; k < 2*(g-1); k++ {
			steps = append(steps, Step{
				Pattern:      traffic.Permutation{Map: inter, Desc: "hier-inter-ring"},
				Flits:        interChunk,
				Participants: all,
			})
		}
	}

	// Intra-group all-gather: the reduced shards circulate back.
	if m > 1 {
		for k := 0; k < m-1; k++ {
			steps = append(steps, Step{
				Pattern:      traffic.Permutation{Map: intra, Desc: "hier-intra-ring"},
				Flits:        intraChunk,
				Participants: all,
			})
		}
	}
	return Schedule{Name: name, Steps: steps}
}

// BidirRingAllReduce halves the step count by sending both directions
// simultaneously (each direction carries half the volume).
func BidirRingAllReduce(order []int32, volume int64) Schedule {
	n := int64(len(order))
	if n < 2 {
		return Schedule{Name: "bidir-ring-allreduce"}
	}
	chunk := (volume/2 + n - 1) / n
	steps := make([]Step, 0, n-1)
	for i := int64(0); i < n-1; i++ {
		steps = append(steps, Step{
			Pattern:      traffic.NewRingOrder(order, true),
			Flits:        2 * chunk, // both directions together
			Participants: order,
		})
	}
	return Schedule{Name: "bidir-ring-allreduce", Steps: steps}
}

// TwoDAllReduce returns the row-column schedule of Fig. 4(b) over a
// rows×cols chip grid (chip = row*cols + col): ring reduce-scatter +
// all-gather along rows, then along columns — 2(cols−1) + 2(rows−1) steps
// instead of 2(rows·cols−1).
func TwoDAllReduce(rows, cols int, volume int64) Schedule {
	order := make([]int32, rows*cols)
	for i := range order {
		order[i] = int32(i)
	}
	return TwoDAllReduceOrder(order, rows, cols, volume)
}

// TwoDAllReduceOrder is TwoDAllReduce over an explicit participant list
// laid out as a logical rows×cols grid (participant index r*cols + c sits
// at grid position (r, c)). A fault-degraded system re-routes by passing
// its alive chips here with a re-factored grid shape.
func TwoDAllReduceOrder(order []int32, rows, cols int, volume int64) Schedule {
	var steps []Step
	n := int64(rows * cols)
	if n < 2 || int(n) != len(order) {
		return Schedule{Name: "2d-allreduce"}
	}
	// Row phase: independent rings inside each row run concurrently; one
	// Step covers all rows because the patterns are disjoint.
	if cols > 1 {
		rowChunk := (volume + int64(cols) - 1) / int64(cols)
		perm := identityMap(order)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				perm[order[r*cols+c]] = order[r*cols+(c+1)%cols]
			}
		}
		for i := 0; i < 2*(cols-1); i++ {
			steps = append(steps, Step{
				Pattern:      traffic.Permutation{Map: perm, Desc: "row-ring"},
				Flits:        rowChunk,
				Participants: order,
			})
		}
	}
	// Column phase: each chip now holds a row-reduced shard; rings run down
	// the columns.
	if rows > 1 {
		colChunk := (volume + n - 1) / n
		perm := identityMap(order)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				perm[order[r*cols+c]] = order[((r+1)%rows)*cols+c]
			}
		}
		for i := 0; i < 2*(rows-1); i++ {
			steps = append(steps, Step{
				Pattern:      traffic.Permutation{Map: perm, Desc: "col-ring"},
				Flits:        colChunk,
				Participants: order,
			})
		}
	}
	return Schedule{Name: "2d-allreduce", Steps: steps}
}

// StepCount returns the number of dependent steps.
func (s Schedule) StepCount() int { return len(s.Steps) }

// TotalFlitsPerChip returns the data volume each chip transmits.
func (s Schedule) TotalFlitsPerChip() int64 {
	var total int64
	for _, st := range s.Steps {
		total += st.Flits
	}
	return total
}

// Result is the measured execution of a schedule.
type Result struct {
	Cycles     int64   // total makespan
	StepCycles []int64 // per-step makespan
	Packets    int64   // packets delivered
}

// Run executes the schedule on the network: each step's volume is injected
// (as packetSize-flit packets) and fully drained before the next step
// starts, modelling the data dependency between collective steps. Each step
// runs to its exact completion cycle via netsim.RunUntil — the barrier sits
// where the last packet lands, not at the next multiple of some polling
// batch — so StepCycles and Cycles are precise makespans.
// maxCyclesPerStep bounds each step (0 = 1<<20).
//
// Per-chip volumes follow the network's surviving injector counts (a chip
// that lost cores splits its volume across fewer nodes), and only the
// step's Participants are charged, so schedules re-routed around dead
// chips drain exactly.
func Run(net *netsim.Network, s Schedule, packetSize int32, maxCyclesPerStep int64) (Result, error) {
	return RunSteps(net, s, packetSize, maxCyclesPerStep, 0, len(s.Steps))
}

// RunSteps executes the half-open step range [lo, hi) of the schedule with
// Run's exact-barrier semantics. It is the churn primitive: run steps
// [0, k), kill a component, recompute a survivor schedule, and run that —
// per-chip volumes and injector counts are re-read from the network on
// every call, so the post-death range sees the degraded chip tables.
func RunSteps(net *netsim.Network, s Schedule, packetSize int32, maxCyclesPerStep int64, lo, hi int) (Result, error) {
	if maxCyclesPerStep <= 0 {
		maxCyclesPerStep = 1 << 20
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Steps) {
		hi = len(s.Steps)
	}
	counts := make([]int, net.NumChips())
	for c := range counts {
		counts[c] = len(net.ChipNodes[c])
	}
	var res Result
	startDelivered := net.Snapshot().DeliveredPkts
	for i := lo; i < hi; i++ {
		step := s.Steps[i]
		vol := traffic.NewVolumePerChip(step.Pattern, step.Flits, packetSize, counts, step.Participants)
		net.SetTraffic(vol, packetSize, netsim.DstSameIndex)
		// InFlight first: it is O(shards), while Done scans the per-node
		// volume table — with the conjunction this way the scan only runs on
		// cycles where the network has actually drained.
		ran, err := net.RunUntil(func(n *netsim.Network) bool {
			return n.InFlight() == 0 && vol.Done()
		}, maxCyclesPerStep)
		if err != nil {
			return res, fmt.Errorf("collective %s step %d: %w", s.Name, i, err)
		}
		res.StepCycles = append(res.StepCycles, ran)
		res.Cycles += ran
	}
	res.Packets = net.Snapshot().DeliveredPkts - startDelivered
	return res, nil
}

// FilterOrder returns order restricted to the chips alive reports true
// for, preserving sequence — the re-routing primitive for running ring
// schedules on fault-degraded networks (the ring simply closes over the
// survivors). A nil alive returns order unchanged.
func FilterOrder(order []int32, alive func(int32) bool) []int32 {
	if alive == nil {
		return order
	}
	out := make([]int32, 0, len(order))
	for _, c := range order {
		if alive(c) {
			out = append(out, c)
		}
	}
	return out
}

// SnakeOrder returns the boustrophedon chip order for a rows×cols grid,
// embedding a ring on physically adjacent chips.
func SnakeOrder(rows, cols int) []int32 {
	order := make([]int32, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cc := c
			if r%2 == 1 {
				cc = cols - 1 - c
			}
			order = append(order, int32(r*cols+cc))
		}
	}
	return order
}
