// Package collective models the collective-communication algorithms the
// paper uses to motivate the switch-less C-group (Sec. III-B4, Fig. 4):
// ring AllReduce and the 2D row-column algorithm. Algorithms are expressed
// as sequences of steps; each step is a fixed-volume traffic phase whose
// makespan is measured on the simulator, so the O(N) vs O(√N) step-count
// behaviour of Fig. 4 appears as end-to-end cycles.
package collective

import (
	"fmt"

	"sldf/internal/netsim"
	"sldf/internal/traffic"
)

// Step is one dependent phase of a collective: every participating chip
// sends Flits flits according to Pattern before the next step may begin.
type Step struct {
	Pattern traffic.Pattern
	Flits   int64
}

// Schedule is an ordered list of dependent steps.
type Schedule struct {
	Name  string
	Steps []Step
}

// RingAllReduce returns the classic ring schedule over the chip sequence
// `order`: 2(N−1) steps (reduce-scatter then all-gather), each moving
// volume/N flits per chip to its ring successor.
func RingAllReduce(order []int32, volume int64) Schedule {
	n := int64(len(order))
	if n < 2 {
		return Schedule{Name: "ring-allreduce"}
	}
	chunk := (volume + n - 1) / n
	steps := make([]Step, 0, 2*(n-1))
	for i := int64(0); i < 2*(n-1); i++ {
		steps = append(steps, Step{
			Pattern: traffic.NewRingOrder(order, false),
			Flits:   chunk,
		})
	}
	return Schedule{Name: "ring-allreduce", Steps: steps}
}

// BidirRingAllReduce halves the step count by sending both directions
// simultaneously (each direction carries half the volume).
func BidirRingAllReduce(order []int32, volume int64) Schedule {
	n := int64(len(order))
	if n < 2 {
		return Schedule{Name: "bidir-ring-allreduce"}
	}
	chunk := (volume/2 + n - 1) / n
	steps := make([]Step, 0, n-1)
	for i := int64(0); i < n-1; i++ {
		steps = append(steps, Step{
			Pattern: traffic.NewRingOrder(order, true),
			Flits:   2 * chunk, // both directions together
		})
	}
	return Schedule{Name: "bidir-ring-allreduce", Steps: steps}
}

// TwoDAllReduce returns the row-column schedule of Fig. 4(b) over a
// rows×cols chip grid (chip = row*cols + col): ring reduce-scatter +
// all-gather along rows, then along columns — 2(cols−1) + 2(rows−1) steps
// instead of 2(rows·cols−1).
func TwoDAllReduce(rows, cols int, volume int64) Schedule {
	var steps []Step
	n := int64(rows * cols)
	if n < 2 {
		return Schedule{Name: "2d-allreduce"}
	}
	// Row phase: independent rings inside each row run concurrently; one
	// Step covers all rows because the patterns are disjoint.
	if cols > 1 {
		rowChunk := (volume + int64(cols) - 1) / int64(cols)
		perm := make([]int32, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				perm[r*cols+c] = int32(r*cols + (c+1)%cols)
			}
		}
		for i := 0; i < 2*(cols-1); i++ {
			steps = append(steps, Step{
				Pattern: traffic.Permutation{Map: perm, Desc: "row-ring"},
				Flits:   rowChunk,
			})
		}
	}
	// Column phase: each chip now holds a row-reduced shard; rings run down
	// the columns.
	if rows > 1 {
		colChunk := (volume + n - 1) / n
		perm := make([]int32, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				perm[r*cols+c] = int32(((r+1)%rows)*cols + c)
			}
		}
		for i := 0; i < 2*(rows-1); i++ {
			steps = append(steps, Step{
				Pattern: traffic.Permutation{Map: perm, Desc: "col-ring"},
				Flits:   colChunk,
			})
		}
	}
	return Schedule{Name: "2d-allreduce", Steps: steps}
}

// StepCount returns the number of dependent steps.
func (s Schedule) StepCount() int { return len(s.Steps) }

// TotalFlitsPerChip returns the data volume each chip transmits.
func (s Schedule) TotalFlitsPerChip() int64 {
	var total int64
	for _, st := range s.Steps {
		total += st.Flits
	}
	return total
}

// Result is the measured execution of a schedule.
type Result struct {
	Cycles     int64   // total makespan
	StepCycles []int64 // per-step makespan
	Packets    int64   // packets delivered
}

// Run executes the schedule on the network: each step's volume is injected
// (as packetSize-flit packets) and fully drained before the next step
// starts, modelling the data dependency between collective steps.
// maxCyclesPerStep bounds each step (0 = 1<<20).
func Run(net *netsim.Network, s Schedule, packetSize int32, maxCyclesPerStep int64) (Result, error) {
	if maxCyclesPerStep <= 0 {
		maxCyclesPerStep = 1 << 20
	}
	chips := net.NumChips()
	nodes := len(net.ChipNodes[0])
	var res Result
	startDelivered := net.Snapshot().DeliveredPkts
	for i, step := range s.Steps {
		vol := traffic.NewVolume(step.Pattern, step.Flits, packetSize, chips, nodes)
		net.SetTraffic(vol, packetSize, netsim.DstSameIndex)
		stepStart := net.Cycle
		for {
			if err := net.Run(64); err != nil {
				return res, fmt.Errorf("collective %s step %d: %w", s.Name, i, err)
			}
			if vol.Done() && net.InFlight() == 0 {
				break
			}
			if net.Cycle-stepStart > maxCyclesPerStep {
				return res, fmt.Errorf("collective %s step %d exceeded %d cycles",
					s.Name, i, maxCyclesPerStep)
			}
		}
		res.StepCycles = append(res.StepCycles, net.Cycle-stepStart)
		res.Cycles += net.Cycle - stepStart
	}
	res.Packets = net.Snapshot().DeliveredPkts - startDelivered
	return res, nil
}

// SnakeOrder returns the boustrophedon chip order for a rows×cols grid,
// embedding a ring on physically adjacent chips.
func SnakeOrder(rows, cols int) []int32 {
	order := make([]int32, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cc := c
			if r%2 == 1 {
				cc = cols - 1 - c
			}
			order = append(order, int32(r*cols+cc))
		}
	}
	return order
}
