package collective

import (
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/topology"
	"sldf/internal/traffic"
)

func buildMesh(t testing.TB, chipletDim int) *topology.MeshCGroup {
	t.Helper()
	g, err := topology.BuildMeshCGroup(chipletDim, 2, topology.DefaultLinkClasses(1, 1),
		netsim.NetworkOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Net.SetRoute(g.RouteXY())
	return g
}

func TestRingScheduleShape(t *testing.T) {
	order := SnakeOrder(4, 4)
	s := RingAllReduce(order, 1600)
	if s.StepCount() != 30 { // 2(N-1) with N=16
		t.Fatalf("ring steps = %d, want 30", s.StepCount())
	}
	if s.Steps[0].Flits != 100 {
		t.Fatalf("chunk = %d, want 100", s.Steps[0].Flits)
	}
}

func TestTwoDScheduleShape(t *testing.T) {
	s := TwoDAllReduce(4, 4, 1600)
	if s.StepCount() != 12 { // 2(4-1)+2(4-1)
		t.Fatalf("2D steps = %d, want 12", s.StepCount())
	}
	// Far fewer dependent steps than the flat ring.
	if s.StepCount() >= RingAllReduce(SnakeOrder(4, 4), 1600).StepCount() {
		t.Fatal("2D must need fewer steps than the ring")
	}
}

func TestBidirHalvesSteps(t *testing.T) {
	order := SnakeOrder(2, 2)
	uni := RingAllReduce(order, 400)
	bi := BidirRingAllReduce(order, 400)
	if bi.StepCount() != uni.StepCount()/2 {
		t.Fatalf("bidir steps %d, uni %d", bi.StepCount(), uni.StepCount())
	}
}

func TestSnakeOrderAdjacency(t *testing.T) {
	order := SnakeOrder(4, 4)
	if len(order) != 16 {
		t.Fatalf("order len %d", len(order))
	}
	seen := map[int32]bool{}
	for i, c := range order {
		if seen[c] {
			t.Fatalf("duplicate chip %d", c)
		}
		seen[c] = true
		if i == 0 {
			continue
		}
		// Consecutive chips must be grid-adjacent.
		pr, pc := order[i-1]/4, order[i-1]%4
		cr, cc := c/4, c%4
		if abs(pr-cr)+abs(pc-cc) != 1 {
			t.Fatalf("snake break between %d and %d", order[i-1], c)
		}
	}
}

func abs(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunRingCompletes(t *testing.T) {
	g := buildMesh(t, 2) // 4 chips
	defer g.Net.Close()
	s := RingAllReduce(SnakeOrder(2, 2), 256)
	res, err := Run(g.Net, s, 4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.StepCycles) != s.StepCount() {
		t.Fatalf("bad result %+v", res)
	}
	// Every chip transmits per step: 4 chips × 64 flits/step packets.
	wantPkts := int64(s.StepCount()) * 4 * (64 / 4) / 4 * 4
	if res.Packets != wantPkts {
		t.Fatalf("packets %d, want %d", res.Packets, wantPkts)
	}
}

func TestTwoDBeatsRingOnMesh(t *testing.T) {
	// Fig. 4's point: on a 16-chip C-group mesh the 2D algorithm's O(√N)
	// dependent steps finish far sooner than the ring's O(N).
	const volume = 512
	ring := func() int64 {
		g := buildMesh(t, 4)
		defer g.Net.Close()
		res, err := Run(g.Net, RingAllReduce(SnakeOrder(4, 4), volume), 4, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}()
	twoD := func() int64 {
		g := buildMesh(t, 4)
		defer g.Net.Close()
		res, err := Run(g.Net, TwoDAllReduce(4, 4, volume), 4, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}()
	if twoD >= ring {
		t.Fatalf("2D makespan %d not better than ring %d", twoD, ring)
	}
}

func TestEmptySchedules(t *testing.T) {
	if RingAllReduce(nil, 100).StepCount() != 0 {
		t.Fatal("empty ring must have no steps")
	}
	if TwoDAllReduce(1, 1, 100).StepCount() != 0 {
		t.Fatal("1x1 2D must have no steps")
	}
	if AllToAll([]int32{3}, 100).StepCount() != 0 {
		t.Fatal("1-chip all-to-all must have no steps")
	}
	if ReduceScatter(nil, 100).StepCount() != 0 || AllGather(nil, 100).StepCount() != 0 {
		t.Fatal("empty ring halves must have no steps")
	}
	if HierarchicalAllReduce(nil, 100).StepCount() != 0 {
		t.Fatal("groupless hierarchical must have no steps")
	}
	if HierarchicalAllReduce([][]int32{{0, 1}, {2}}, 100).StepCount() != 0 {
		t.Fatal("uneven groups must yield an empty schedule (caller re-routes)")
	}
}

// blocks partitions 0..n-1 into g equal groups, the shape W-groups have.
func blocks(g, m int) [][]int32 {
	out := make([][]int32, g)
	for i := range out {
		for j := 0; j < m; j++ {
			out[i] = append(out[i], int32(i*m+j))
		}
	}
	return out
}

// TestScheduleVolumeConservation pins the schedule algebra on volumes that
// divide evenly, where the chunk arithmetic is exact: the ring AllReduce
// moves 2(N−1)/N·V per chip (reduce-scatter and all-gather each half of
// it), the rotation all-to-all (N−1)/N·V, and the hierarchical two-level
// schedule moves exactly the flat ring's volume — it saves dependent
// steps, never flits.
func TestScheduleVolumeConservation(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		order := SnakeOrder(1, n)
		v := int64(16 * n * n) // divisible by n, 2n, and n*m for the splits below
		nn := int64(n)

		ring := RingAllReduce(order, v).TotalFlitsPerChip()
		if want := 2 * (nn - 1) * v / nn; ring != want {
			t.Fatalf("n=%d ring volume %d, want %d", n, ring, want)
		}
		rs := ReduceScatter(order, v).TotalFlitsPerChip()
		ag := AllGather(order, v).TotalFlitsPerChip()
		if rs != ring/2 || ag != ring/2 {
			t.Fatalf("n=%d rs=%d ag=%d, want each %d (half the AllReduce)", n, rs, ag, ring/2)
		}
		if rs+ag != ring {
			t.Fatalf("n=%d reduce-scatter + all-gather = %d, want ring's %d", n, rs+ag, ring)
		}
		if a2a := AllToAll(order, v).TotalFlitsPerChip(); a2a != (nn-1)*v/nn {
			t.Fatalf("n=%d all-to-all volume %d, want %d", n, a2a, (nn-1)*v/nn)
		}
		// Two-level with g groups of m chips (g·m = n): same total volume as
		// the flat ring over n chips, in 2(m−1)+2(g−1) < 2(n−1) steps.
		g, m := 2, n/2
		hier := HierarchicalAllReduce(blocks(g, m), v)
		if got := hier.TotalFlitsPerChip(); got != ring {
			t.Fatalf("n=%d hierarchical volume %d, want flat ring's %d", n, got, ring)
		}
		if want := 2*(m-1) + 2*(g-1); hier.StepCount() != want {
			t.Fatalf("n=%d hierarchical steps %d, want %d", n, hier.StepCount(), want)
		}
		if n > 4 && hier.StepCount() >= RingAllReduce(order, v).StepCount() {
			t.Fatalf("n=%d hierarchical must need fewer dependent steps than the ring", n)
		}
	}
}

// TestTotalFlitsMatchesStepSum pins TotalFlitsPerChip to the per-step
// declaration for every schedule shape.
func TestTotalFlitsMatchesStepSum(t *testing.T) {
	order := SnakeOrder(2, 4)
	for _, s := range []Schedule{
		RingAllReduce(order, 555),
		BidirRingAllReduce(order, 555),
		ReduceScatter(order, 555),
		AllGather(order, 555),
		AllToAll(order, 555),
		TwoDAllReduce(2, 4, 555),
		HierarchicalAllReduce(blocks(2, 4), 555),
	} {
		var sum int64
		for _, st := range s.Steps {
			sum += st.Flits
		}
		if got := s.TotalFlitsPerChip(); got != sum {
			t.Fatalf("%s: TotalFlitsPerChip %d != step sum %d", s.Name, got, sum)
		}
	}
}

// TestStepPatternsPermuteParticipants checks every step of every new
// schedule maps each participant to a distinct other participant (silent
// self-maps excluded) — the property that lets disjoint rings share one
// dependent step.
func TestStepPatternsPermuteParticipants(t *testing.T) {
	order := SnakeOrder(2, 4)
	for _, s := range []Schedule{
		AllToAll(order, 512),
		TwoDAllReduceOrder(order, 2, 4, 512),
		HierarchicalAllReduce(blocks(4, 2), 512),
	} {
		for i, st := range s.Steps {
			if len(st.Participants) != len(order) {
				t.Fatalf("%s step %d: %d participants, want %d", s.Name, i, len(st.Participants), len(order))
			}
			seen := map[int32]bool{}
			for _, src := range st.Participants {
				d := st.Pattern.Dest(src, nil)
				if d < 0 || d == src {
					t.Fatalf("%s step %d: participant %d is silent", s.Name, i, src)
				}
				if seen[d] {
					t.Fatalf("%s step %d: destination %d receives twice", s.Name, i, d)
				}
				seen[d] = true
			}
		}
	}
}

func TestFilterOrder(t *testing.T) {
	order := []int32{0, 1, 2, 3, 4}
	alive := func(c int32) bool { return c%2 == 0 }
	got := FilterOrder(order, alive)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("filtered order %v", got)
	}
	if out := FilterOrder(order, nil); len(out) != len(order) {
		t.Fatalf("nil predicate must keep the order, got %v", out)
	}
}

// TestExactStepBarriers is the regression test for the 64-cycle
// quantization bug: each step must drain at its precise completion cycle.
// On the XY-routed mesh the step makespan is shift-invariant, so the old
// batched loop's observation is exactly the new one rounded up to the next
// multiple of its 64-cycle batch — which is what Run used to report.
func TestExactStepBarriers(t *testing.T) {
	s := RingAllReduce(SnakeOrder(2, 2), 256)

	g := buildMesh(t, 2)
	defer g.Net.Close()
	exact, err := Run(g.Net, s, 4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the historical semantics: poll completion only at 64-cycle
	// boundaries.
	q := buildMesh(t, 2)
	defer q.Net.Close()
	var quantized []int64
	counts := make([]int, q.Net.NumChips())
	for c := range counts {
		counts[c] = len(q.Net.ChipNodes[c])
	}
	for _, step := range s.Steps {
		vol := traffic.NewVolumePerChip(step.Pattern, step.Flits, 4, counts, step.Participants)
		q.Net.SetTraffic(vol, 4, netsim.DstSameIndex)
		start := q.Net.Cycle
		for {
			if err := q.Net.Run(64); err != nil {
				t.Fatal(err)
			}
			if vol.Done() && q.Net.InFlight() == 0 {
				break
			}
		}
		quantized = append(quantized, q.Net.Cycle-start)
	}

	var exactSum, quantSum int64
	for i, want := range quantized {
		got := exact.StepCycles[i]
		if rounded := (got + 63) / 64 * 64; rounded != want {
			t.Fatalf("step %d: exact %d rounds to %d, but batched loop observed %d",
				i, got, rounded, want)
		}
		exactSum += got
		quantSum += want
	}
	if exact.Cycles != exactSum {
		t.Fatalf("Cycles %d != step sum %d", exact.Cycles, exactSum)
	}
	if exactSum >= quantSum {
		t.Fatalf("exact makespan %d not below quantized %d — the bug this fixes", exactSum, quantSum)
	}
}

// TestRunPartialParticipants runs a schedule that involves only half the
// chips: the step barrier must not wait on the silent ones.
func TestRunPartialParticipants(t *testing.T) {
	g := buildMesh(t, 2) // 4 chips
	defer g.Net.Close()
	sub := []int32{0, 3} // one snake-diagonal pair
	s := RingAllReduce(sub, 64)
	res, err := Run(g.Net, s, 4, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.StepCycles) != s.StepCount() {
		t.Fatalf("bad result %+v", res)
	}
	// 2 participants × 2(N−1)=2 steps × ceil(32/(4 nodes × 4 flits)) pkts/node.
	if res.Packets != 2*2*4*2 {
		t.Fatalf("packets %d, want %d", res.Packets, 2*2*4*2)
	}
}
