package collective

import (
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/topology"
)

func buildMesh(t testing.TB, chipletDim int) *topology.MeshCGroup {
	t.Helper()
	g, err := topology.BuildMeshCGroup(chipletDim, 2, topology.DefaultLinkClasses(1, 1),
		netsim.NetworkOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Net.SetRoute(g.RouteXY())
	return g
}

func TestRingScheduleShape(t *testing.T) {
	order := SnakeOrder(4, 4)
	s := RingAllReduce(order, 1600)
	if s.StepCount() != 30 { // 2(N-1) with N=16
		t.Fatalf("ring steps = %d, want 30", s.StepCount())
	}
	if s.Steps[0].Flits != 100 {
		t.Fatalf("chunk = %d, want 100", s.Steps[0].Flits)
	}
}

func TestTwoDScheduleShape(t *testing.T) {
	s := TwoDAllReduce(4, 4, 1600)
	if s.StepCount() != 12 { // 2(4-1)+2(4-1)
		t.Fatalf("2D steps = %d, want 12", s.StepCount())
	}
	// Far fewer dependent steps than the flat ring.
	if s.StepCount() >= RingAllReduce(SnakeOrder(4, 4), 1600).StepCount() {
		t.Fatal("2D must need fewer steps than the ring")
	}
}

func TestBidirHalvesSteps(t *testing.T) {
	order := SnakeOrder(2, 2)
	uni := RingAllReduce(order, 400)
	bi := BidirRingAllReduce(order, 400)
	if bi.StepCount() != uni.StepCount()/2 {
		t.Fatalf("bidir steps %d, uni %d", bi.StepCount(), uni.StepCount())
	}
}

func TestSnakeOrderAdjacency(t *testing.T) {
	order := SnakeOrder(4, 4)
	if len(order) != 16 {
		t.Fatalf("order len %d", len(order))
	}
	seen := map[int32]bool{}
	for i, c := range order {
		if seen[c] {
			t.Fatalf("duplicate chip %d", c)
		}
		seen[c] = true
		if i == 0 {
			continue
		}
		// Consecutive chips must be grid-adjacent.
		pr, pc := order[i-1]/4, order[i-1]%4
		cr, cc := c/4, c%4
		if abs(pr-cr)+abs(pc-cc) != 1 {
			t.Fatalf("snake break between %d and %d", order[i-1], c)
		}
	}
}

func abs(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunRingCompletes(t *testing.T) {
	g := buildMesh(t, 2) // 4 chips
	defer g.Net.Close()
	s := RingAllReduce(SnakeOrder(2, 2), 256)
	res, err := Run(g.Net, s, 4, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.StepCycles) != s.StepCount() {
		t.Fatalf("bad result %+v", res)
	}
	// Every chip transmits per step: 4 chips × 64 flits/step packets.
	wantPkts := int64(s.StepCount()) * 4 * (64 / 4) / 4 * 4
	if res.Packets != wantPkts {
		t.Fatalf("packets %d, want %d", res.Packets, wantPkts)
	}
}

func TestTwoDBeatsRingOnMesh(t *testing.T) {
	// Fig. 4's point: on a 16-chip C-group mesh the 2D algorithm's O(√N)
	// dependent steps finish far sooner than the ring's O(N).
	const volume = 512
	ring := func() int64 {
		g := buildMesh(t, 4)
		defer g.Net.Close()
		res, err := Run(g.Net, RingAllReduce(SnakeOrder(4, 4), volume), 4, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}()
	twoD := func() int64 {
		g := buildMesh(t, 4)
		defer g.Net.Close()
		res, err := Run(g.Net, TwoDAllReduce(4, 4, volume), 4, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}()
	if twoD >= ring {
		t.Fatalf("2D makespan %d not better than ring %d", twoD, ring)
	}
}

func TestEmptySchedules(t *testing.T) {
	if RingAllReduce(nil, 100).StepCount() != 0 {
		t.Fatal("empty ring must have no steps")
	}
	if TwoDAllReduce(1, 1, 100).StepCount() != 0 {
		t.Fatal("1x1 2D must have no steps")
	}
}
