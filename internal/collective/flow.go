package collective

import (
	"fmt"

	"sldf/internal/engine"
	"sldf/internal/netsim"
)

// Flow-level collective execution (netsim.EngineFlow): each dependent step
// becomes one analytical makespan solve instead of a cycle-stepped drain.
// Per-chip volumes, surviving injector counts and participants follow
// exactly the cycle path's rules (see RunSteps), so schedules re-routed
// around dead chips solve over the same degraded chip tables.

// RunFlow executes the whole schedule analytically; the flow-engine
// counterpart of Run.
func RunFlow(net *netsim.Network, s Schedule, packetSize int32) (Result, error) {
	return RunStepsFlow(net, s, packetSize, 0, len(s.Steps))
}

// RunStepsFlow executes the half-open step range [lo, hi) analytically;
// the flow-engine counterpart of RunSteps. Each step's transfers are
// derived from its pattern (one destination draw per participant, from a
// deterministic per-step RNG stream, so repeated runs are identical) and
// solved by netsim.FlowMakespan; chip tables are re-read per call, so a
// post-death range sees the survivors.
func RunStepsFlow(net *netsim.Network, s Schedule, packetSize int32, lo, hi int) (Result, error) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Steps) {
		hi = len(s.Steps)
	}
	counts := make([]int, net.NumChips())
	for c := range counts {
		counts[c] = len(net.ChipNodes[c])
	}
	var res Result
	// One volume buffer serves every step: FlowMakespan copies what it needs
	// before returning, so reuse keeps a long schedule allocation-free.
	vols := make([]netsim.FlowVolume, 0, len(counts))
	var allChips []int32
	for i := lo; i < hi; i++ {
		step := s.Steps[i]
		participants := step.Participants
		if participants == nil {
			if allChips == nil {
				allChips = make([]int32, 0, len(counts))
				for c := range counts {
					if counts[c] > 0 {
						allChips = append(allChips, int32(c))
					}
				}
			}
			participants = allChips
		}
		rng := engine.NewRNGStream(0x51EBF10A, uint64(i))
		vols = vols[:0]
		var pkts int64
		for _, src := range participants {
			if int(src) >= len(counts) || counts[src] == 0 || step.Flits <= 0 {
				continue
			}
			dst := step.Pattern.Dest(src, &rng)
			if dst < 0 {
				continue
			}
			// Mirror traffic.NewVolumePerChip: every surviving node of the
			// chip sends ceil(Flits / (nodes*packetSize)) packets.
			denom := int64(counts[src]) * int64(packetSize)
			perNode := (step.Flits + denom - 1) / denom
			pkts += perNode * int64(counts[src])
			vols = append(vols, netsim.FlowVolume{
				Src: src, Dst: dst,
				Flits: perNode * int64(packetSize) * int64(counts[src]),
			})
		}
		ran, err := net.FlowMakespan(vols, packetSize)
		if err != nil {
			return res, fmt.Errorf("collective %s step %d: %w", s.Name, i, err)
		}
		res.StepCycles = append(res.StepCycles, ran)
		res.Cycles += ran
		res.Packets += pkts
	}
	return res, nil
}
