package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"sldf/internal/campaign"
	"sldf/internal/collective"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
)

// This file answers "what does a chip death at step k cost an in-flight
// AllReduce?" as a first-class experiment family: a declarative
// ChurnCollectiveSpec runs a collective to step k, kills a chip through the
// armed fault timeline (routing recomputes, stranded packets drop or retry
// per policy), recomputes the schedule over the survivors, and finishes on
// it — all through the registered executor, so churn cases get the same
// content-addressed caching and remote sharding as every other job kind.

// ChurnJobKind is the registered executor for mid-collective death jobs.
const ChurnJobKind = "collective/churn@v1"

// ChurnCollectiveSpec describes one churn-collective execution. Pure data,
// so it ships to worker daemons unchanged. Cfg.Churn must be armed (the
// executor arms a zero-event timeline when it is not), because the kill is
// injected through the network's churn machinery.
type ChurnCollectiveSpec struct {
	Cfg Config `json:"cfg"`
	// Schedule is a CollectiveSchedules name, resolved against the built
	// system (and re-resolved against the survivors after the kill).
	Schedule string `json:"schedule"`
	// Volume is the AllReduce payload per chip in flits.
	Volume int64 `json:"volume"`
	// PacketSize is the packet length in flits (0 = DefaultCollectivePacket).
	PacketSize int32 `json:"packet,omitempty"`
	// MaxStepCycles bounds each dependent step (0 = collective.Run default).
	MaxStepCycles int64 `json:"max_step_cycles,omitempty"`
	// Engine selects the cycle engine; the non-default engine gets its own
	// cache slot.
	Engine netsim.EngineKind `json:"engine,omitempty"`
	// KillChip is the chip that dies mid-collective; negative runs the
	// undisturbed baseline.
	KillChip int32 `json:"kill_chip"`
	// KillStep is the dependent step before which the chip dies: steps
	// [0, KillStep) run on the full schedule, then the kill, then the
	// survivor schedule's remaining steps.
	KillStep int `json:"kill_step"`
}

func init() {
	campaign.RegisterExecutor(ChurnJobKind, runChurnJob)
}

func runChurnJob(w *campaign.Worker, payload json.RawMessage) (metrics.Point, error) {
	var cs ChurnCollectiveSpec
	if err := json.Unmarshal(payload, &cs); err != nil {
		return metrics.Point{}, fmt.Errorf("core: decode churn spec: %w", err)
	}
	// The kill is injected through the timeline machinery, so force it on:
	// an armed zero-event timeline builds fault-grade and simulates bitwise
	// identically to the corresponding static-fault build.
	cs.Cfg.Churn.Armed = true
	sys, err := workerSystem(w, cs.Cfg.cacheID(), cs.Cfg)
	if err != nil {
		return metrics.Point{}, err
	}
	return sys.MeasureChurnCollective(cs)
}

func (cs ChurnCollectiveSpec) packet() int32 {
	if cs.PacketSize <= 0 {
		return DefaultCollectivePacket
	}
	return cs.PacketSize
}

// churnKey is the content address of one churn job; the armed timeline is
// part of cacheID, and the kill coordinates complete it.
//
//sldf:cachekey ChurnCollectiveSpec
func churnKey(cs ChurnCollectiveSpec) string {
	cfg := cs.Cfg
	cfg.Churn.Armed = true
	key := fmt.Sprintf("%s|churncollective=%s|vol=%d|pkt=%d|maxstep=%d|kill=%d@%d",
		cfg.cacheID(), cs.Schedule, cs.Volume, cs.packet(), cs.MaxStepCycles,
		cs.KillChip, cs.KillStep)
	if cs.Engine != netsim.EngineActiveSet {
		key += "|engine=" + cs.Engine.String()
	}
	return key
}

// ChurnJob builds the declarative job spec for one churn-collective case.
func ChurnJob(cs ChurnCollectiveSpec) (campaign.JobSpec, error) {
	payload, err := json.Marshal(cs)
	if err != nil {
		return campaign.JobSpec{}, fmt.Errorf("core: encode churn spec: %w", err)
	}
	return campaign.JobSpec{
		Key:     churnKey(cs),
		Kind:    ChurnJobKind,
		Payload: payload,
	}, nil
}

// MeasureChurnCollective runs one churn-collective case on the system,
// returning its result encoded as a campaign point:
//
//	Rate       = offered volume (flits/chip)
//	Latency    = end-to-end makespan including the disturbance (cycles)
//	P50 / P99  = median / maximum step makespan
//	Throughput = delivered flits/cycle/chip over the makespan
//	Aux        = [packets, pre-kill cycles, post-kill cycles,
//	              dropped, retried, step 0 cycles, step 1 cycles, ...]
//
// A negative KillChip measures the undisturbed baseline (pre-kill cycles =
// the whole makespan). Cycle and packet counts are integers carried exactly
// in float64, so the encoding round-trips bit-identically through stores.
func (s *System) MeasureChurnCollective(cs ChurnCollectiveSpec) (metrics.Point, error) {
	if !s.Net.ChurnArmed() {
		return metrics.Point{}, fmt.Errorf("core: churn collective on %s without an armed timeline", s.Label)
	}
	s.Net.SetEngine(cs.Engine)
	sch, err := ScheduleFor(s, cs.Schedule, cs.Volume)
	if err != nil {
		return metrics.Point{}, err
	}

	// Step ranges run through the case's engine: the cycle engines drain to
	// exact barriers, the flow engine solves each step analytically.
	runRange := func(sch collective.Schedule, lo, hi int) (collective.Result, error) {
		if cs.Engine == netsim.EngineFlow {
			return collective.RunStepsFlow(s.Net, sch, cs.packet(), lo, hi)
		}
		return collective.RunSteps(s.Net, sch, cs.packet(), cs.MaxStepCycles, lo, hi)
	}

	var pre, post collective.Result
	if cs.KillChip < 0 {
		pre, err = runRange(sch, 0, len(sch.Steps))
		if err != nil {
			return metrics.Point{}, fmt.Errorf("%s/%s baseline: %w", s.Label, cs.Schedule, err)
		}
	} else {
		k := cs.KillStep
		if k < 0 {
			k = 0
		}
		if k > len(sch.Steps) {
			k = len(sch.Steps)
		}
		pre, err = runRange(sch, 0, k)
		if err != nil {
			return metrics.Point{}, fmt.Errorf("%s/%s pre-kill: %w", s.Label, cs.Schedule, err)
		}
		if err := s.ApplyChipKill(cs.KillChip); err != nil {
			return metrics.Point{}, fmt.Errorf("%s/%s kill chip %d: %w", s.Label, cs.Schedule, cs.KillChip, err)
		}
		// The survivors re-close the collective: resolve the schedule again
		// over the degraded chip tables and run its remaining steps. Steps
		// already executed count as done — the survivor schedule is entered
		// at the same step index (clamped; it may be shorter).
		surv, err := ScheduleFor(s, cs.Schedule, cs.Volume)
		if err != nil {
			return metrics.Point{}, fmt.Errorf("%s/%s survivors: %w", s.Label, cs.Schedule, err)
		}
		lo := k
		if lo > len(surv.Steps) {
			lo = len(surv.Steps)
		}
		post, err = runRange(surv, lo, len(surv.Steps))
		if err != nil {
			return metrics.Point{}, fmt.Errorf("%s/%s post-kill: %w", s.Label, cs.Schedule, err)
		}
	}

	st := s.Net.Snapshot()
	total := pre.Cycles + post.Cycles
	packets := pre.Packets + post.Packets
	pt := metrics.Point{Rate: float64(cs.Volume), Latency: float64(total)}
	if total > 0 {
		pt.Throughput = float64(packets) * float64(cs.packet()) /
			float64(total) / float64(s.Chips)
	}
	steps := append(append([]int64(nil), pre.StepCycles...), post.StepCycles...)
	if n := len(steps); n > 0 {
		sorted := append([]int64(nil), steps...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pt.P50 = float64(sorted[n/2])
		pt.P99 = float64(sorted[n-1])
	}
	pt.Aux = make([]float64, 0, 5+len(steps))
	pt.Aux = append(pt.Aux, float64(packets), float64(pre.Cycles), float64(post.Cycles),
		float64(st.DroppedPkts), float64(st.RetriedPkts))
	for _, c := range steps {
		pt.Aux = append(pt.Aux, float64(c))
	}
	return pt, nil
}

// ChurnCaseSpec is one row of a churn figure: a schedule on a system with a
// chip killed before a given step. Each case measures two jobs — the
// undisturbed baseline and the disturbed run — so the row carries the exact
// cost of the death.
type ChurnCaseSpec struct {
	Cfg      Config
	Schedule string
	// Label overrides the config-derived system label when non-empty.
	Label         string
	Volume        int64
	PacketSize    int32
	MaxStepCycles int64
	Engine        netsim.EngineKind
	KillChip      int32
	KillStep      int
}

// Spec lowers the case to its disturbed-run job description; baseline()
// is the same case with the kill removed.
func (c ChurnCaseSpec) Spec() ChurnCollectiveSpec {
	return ChurnCollectiveSpec{Cfg: c.Cfg, Schedule: c.Schedule, Volume: c.Volume,
		PacketSize: c.PacketSize, MaxStepCycles: c.MaxStepCycles, Engine: c.Engine,
		KillChip: c.KillChip, KillStep: c.KillStep}
}

func (c ChurnCaseSpec) baseline() ChurnCollectiveSpec {
	cs := c.Spec()
	cs.KillChip = -1
	cs.KillStep = 0
	return cs
}

// ChurnFigureSpec is one churn-resilience panel: a named list of cases.
type ChurnFigureSpec struct {
	Name, Title string
	Cases       []ChurnCaseSpec
}

// ChurnRowFromPoints decodes a case's baseline and disturbed points into
// the row the figure renders.
func ChurnRowFromPoints(c ChurnCaseSpec, label string, base, kill metrics.Point) metrics.ChurnRow {
	row := metrics.ChurnRow{
		System:         label,
		Schedule:       c.Schedule,
		KillChip:       c.KillChip,
		KillStep:       c.KillStep,
		BaselineCycles: int64(base.Latency),
		Cycles:         int64(kill.Latency),
	}
	row.CostCycles = row.Cycles - row.BaselineCycles
	if len(kill.Aux) >= 5 {
		row.Packets = int64(kill.Aux[0])
		row.PreCycles = int64(kill.Aux[1])
		row.PostCycles = int64(kill.Aux[2])
		row.Dropped = int64(kill.Aux[3])
		row.Retried = int64(kill.Aux[4])
		row.StepCycles = make([]int64, 0, len(kill.Aux)-5)
		for _, s := range kill.Aux[5:] {
			row.StepCycles = append(row.StepCycles, int64(s))
		}
	}
	row.Steps = len(row.StepCycles)
	return row
}

// RunChurnFigure measures every case of a churn panel through the Backend
// seam: each case becomes two content-addressed jobs (baseline, disturbed)
// executed by the local pool or a worker fleet, satisfied from the store
// when present, and merged by case index — byte-identical however they run.
func RunChurnFigure(fs ChurnFigureSpec, opts RunOptions) (metrics.ChurnFigure, error) {
	fig := metrics.ChurnFigure{Name: fs.Name, Title: fs.Title}
	specs := make([]campaign.JobSpec, 0, 2*len(fs.Cases))
	for _, c := range fs.Cases {
		base, err := ChurnJob(c.baseline())
		if err != nil {
			return fig, fmt.Errorf("%s: %w", fs.Name, err)
		}
		kill, err := ChurnJob(c.Spec())
		if err != nil {
			return fig, fmt.Errorf("%s: %w", fs.Name, err)
		}
		specs = append(specs, base, kill)
	}
	backend := opts.Backend
	if backend == nil {
		backend = campaign.LocalBackend{}
	}
	pts, err := backend.Execute(specs, campaign.ExecOptions{Jobs: opts.Jobs, Store: opts.Store})
	if err != nil {
		return fig, fmt.Errorf("%s: %w", fs.Name, err)
	}
	fig.Rows = make([]metrics.ChurnRow, len(fs.Cases))
	for i, c := range fs.Cases {
		label := c.Label
		if label == "" {
			label = c.Cfg.Label()
		}
		fig.Rows[i] = ChurnRowFromPoints(c, label, pts[2*i], pts[2*i+1])
	}
	return fig, nil
}
