package core

import (
	"fmt"
	"strings"
	"testing"

	"sldf/internal/metrics"
	"sldf/internal/netsim"
)

// TestResilienceSweepChurn pins the RunOptions.Churn seam (sldffigures
// -churn): a non-empty timeline must reach every network the resilience
// sweep builds, measurably degrading the fault grid relative to the same
// sweep without it. Both sweeps are deterministic, so inequality is a
// stable assertion, not a statistical one.
func TestResilienceSweepChurn(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 5}
	cfg.SLDF.G = 1
	opts := ResilienceOpts{
		Fractions: []float64{0, 0.05},
		Seeds:     []uint64{1},
		Pattern:   "uniform",
		Rate:      0.4,
		Sim:       tinySim(),
	}
	base, err := ResilienceSweep(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Run.Churn = churnWindow(0.03, 0, netsim.DropInFlight)
	churned, err := ResilienceSweep(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Points) != len(churned.Points) || len(base.Points) == 0 {
		t.Fatalf("sweep shapes diverged: %d vs %d points", len(base.Points), len(churned.Points))
	}
	same := true
	for i := range base.Points {
		if base.Points[i] != churned.Points[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("Run.Churn changed nothing: the timeline never reached the built networks\n%+v", churned.Points)
	}
}

// TestChurnCountersSurface is the regression test for the churn-accounting
// gap: netsim's dropped/retried/refused counters must flow into
// metrics.Point and from there into Figure.CSV's per-series churn columns —
// a churn sweep that silently reports zero losses hides exactly the effect
// it measures. Churn-free figures must keep their historical CSV shape.
func TestChurnCountersSurface(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	cfg.Churn = churnWindow(0.05, 0.02, netsim.RetrySource)
	res := measureEngine(t, cfg, "uniform", 0.8, netsim.EngineActiveSet)
	st := res.Stats
	if st.DroppedPkts+st.RetriedPkts+st.RefusedPkts == 0 {
		t.Fatal("timeline perturbed nothing; the surfacing test is vacuous")
	}
	if res.Point.Dropped != st.DroppedPkts ||
		res.Point.Retried != st.RetriedPkts ||
		res.Point.Refused != st.RefusedPkts {
		t.Fatalf("Point counters diverge from Stats: point {%d %d %d}, stats {%d %d %d}",
			res.Point.Dropped, res.Point.Retried, res.Point.Refused,
			st.DroppedPkts, st.RetriedPkts, st.RefusedPkts)
	}

	fig := metrics.Figure{Name: "churned", Series: []metrics.Series{
		{Label: "mesh", Points: []metrics.Point{res.Point}},
	}}
	csv := fig.CSV()
	if !strings.Contains(csv, "mesh_dropped,mesh_retried,mesh_refused") {
		t.Errorf("churned CSV missing churn columns:\n%s", csv)
	}
	cell := fmt.Sprintf(",%d,%d,%d", res.Point.Dropped, res.Point.Retried, res.Point.Refused)
	if !strings.Contains(csv, cell) {
		t.Errorf("churned CSV missing counter cells %q:\n%s", cell, csv)
	}

	clean := res.Point
	clean.Dropped, clean.Retried, clean.Refused = 0, 0, 0
	cleanFig := metrics.Figure{Name: "clean", Series: []metrics.Series{
		{Label: "mesh", Points: []metrics.Point{clean}},
	}}
	if got := cleanFig.CSV(); strings.Contains(got, "_dropped") {
		t.Errorf("churn-free CSV grew churn columns:\n%s", got)
	}
}
