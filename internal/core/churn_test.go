package core

import (
	"fmt"
	"reflect"
	"testing"

	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// churnWindow is a seeded timeline whose deaths land inside tinySim's
// 800-cycle span and whose repairs complete before the drain ends, so every
// event (and both transitions of every component) is exercised.
func churnWindow(links, routers float64, policy netsim.DropPolicy) topology.FaultTimeline {
	return topology.FaultTimeline{
		Armed:     true,
		Seed:      13,
		LinkChurn: links, RouterChurn: routers,
		Start: 150, End: 500,
		Repair: 250,
		Policy: policy,
	}
}

// TestEngineEquivalenceChurn extends the tentpole's correctness gate to live
// churn: with components dying and coming back mid-run — stranding packets,
// recomputing routes, re-admitting repaired hardware — the active-set engine
// must remain bitwise identical to the full-scan reference engine on every
// system kind. The sampled fractions follow each kind's fault domain (the
// Dragonfly domain holds only switch↔switch channels; the single switch has
// no redundancy at all, so it gets explicit NIC death/repair events).
func TestEngineEquivalenceChurn(t *testing.T) {
	mesh := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	mesh.Churn = churnWindow(0.05, 0.02, netsim.RetrySource)
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11}
	swl.SLDF.G = 1
	swl.Churn = churnWindow(0.04, 0.02, netsim.RetrySource)
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 5}
	swb.DF.G = 1
	swb.Churn = churnWindow(0.05, 0, netsim.DropInFlight)
	swDrop := Config{Kind: SingleSwitch, Terminals: 4, Seed: 5}
	swDrop.Churn = topology.FaultTimeline{Armed: true, Policy: netsim.DropInFlight,
		Events: switchNICEvents(t, swDrop)}
	cases := []struct {
		name    string
		cfg     Config
		pattern string
		rate    float64
	}{
		{"mesh", mesh, "uniform", 0.8},
		{"sw-less", swl, "bit-reverse", 0.6},
		{"sw-based", swb, "uniform", 0.6},
		{"switch", swDrop, "uniform", 0.8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := measureEngine(t, tc.cfg, tc.pattern, tc.rate, netsim.EngineReference)
			act := measureEngine(t, tc.cfg, tc.pattern, tc.rate, netsim.EngineActiveSet)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
			if ref.Utilization != act.Utilization {
				t.Fatalf("utilization diverged: %v vs %v", ref.Utilization, act.Utilization)
			}
			if ref.Stats.DeliveredPkts == 0 {
				t.Fatal("no traffic delivered; the comparison is vacuous")
			}
			if ref.Stats.DroppedPkts+ref.Stats.RetriedPkts+ref.Stats.RefusedPkts == 0 {
				t.Fatal("timeline perturbed nothing; the churn comparison is vacuous")
			}
		})
	}
}

// switchNICEvents builds a death+repair pair for one NIC of a single-switch
// system. The switch fault domain is empty (every component is a single
// point of failure), so churn there is always explicit.
func switchNICEvents(t *testing.T, cfg Config) []netsim.TimedFault {
	t.Helper()
	probe := cfg
	probe.Churn = topology.FaultTimeline{Armed: true}
	sys, err := Build(probe)
	if err != nil {
		t.Fatalf("probe build: %v", err)
	}
	defer sys.Close()
	nic := sys.Net.ChipNodes[1][0]
	return []netsim.TimedFault{
		netsim.RouterFault(250, nic, false),
		netsim.RouterFault(500, nic, true),
	}
}

// TestEngineEquivalenceChurnParallel checks cross-shard staging under churn:
// multi-worker active-set runs over a fault timeline must match the serial
// reference bit for bit — including the serial churn batches interleaved
// between parallel phases.
func TestEngineEquivalenceChurnParallel(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 77,
				Workers: workers}
			cfg.SLDF.G = 1
			cfg.Churn = churnWindow(0.04, 0.02, netsim.RetrySource)
			serial := cfg
			serial.Workers = 1
			ref := measureEngine(t, serial, "uniform", 0.8, netsim.EngineReference)
			act := measureEngine(t, cfg, "uniform", 0.8, netsim.EngineActiveSet)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
			if ref.Stats.DroppedPkts+ref.Stats.RetriedPkts+ref.Stats.RefusedPkts == 0 {
				t.Fatal("timeline perturbed nothing; the churn comparison is vacuous")
			}
		})
	}
}

// TestChurnZeroEventTimelineMatchesStatic is the tentpole's compatibility
// gate: an armed timeline with no events must simulate bitwise identically
// to the corresponding static-fault build — the churn plumbing (per-step due
// check, apply hooks, alive-chip table) may cost nothing behaviorally.
func TestChurnZeroEventTimelineMatchesStatic(t *testing.T) {
	for _, kind := range []netsim.EngineKind{netsim.EngineActiveSet, netsim.EngineReference} {
		t.Run(kind.String(), func(t *testing.T) {
			static := faultedTinyCfg(routing.Minimal)
			armed := static
			armed.Churn = topology.FaultTimeline{Armed: true}
			want := measureEngine(t, static, "uniform", 0.8, kind)
			got := measureEngine(t, armed, "uniform", 0.8, kind)
			if !reflect.DeepEqual(want.Stats, got.Stats) {
				t.Fatalf("armed zero-event build diverged from static build:\nstatic: %+v\narmed:  %+v",
					want.Stats, got.Stats)
			}
			if want.Utilization != got.Utilization {
				t.Fatalf("utilization diverged: %v vs %v", want.Utilization, got.Utilization)
			}
		})
	}
}

// TestChurnSystemResetMidTimeline is the reset-coverage satellite at system
// level: interrupting a run halfway through a timeline (deaths applied,
// repairs pending) and calling Reset must restore build-time fault state and
// the base routing exactly — a full measurement afterwards is bitwise equal
// to one on a fresh build, on both engines.
func TestChurnSystemResetMidTimeline(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	cfg.Churn = churnWindow(0.05, 0.02, netsim.RetrySource)
	for _, kind := range []netsim.EngineKind{netsim.EngineActiveSet, netsim.EngineReference} {
		t.Run(kind.String(), func(t *testing.T) {
			fresh := measureEngine(t, cfg, "uniform", 0.8, kind)

			sys, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			wantR, wantL := sys.Net.DisabledCounts()
			pending := sys.Net.ChurnPending()
			pat, err := sys.PatternFor("uniform")
			if err != nil {
				t.Fatal(err)
			}
			// Stop just past the first death: its repair (250 cycles later)
			// is still pending, so the timeline is partially applied. (A
			// MeasureLoad here would drain past every repair and land back
			// on base state.)
			events := cfg.Churn.Resolve(sys.churnDomain)
			if len(events) == 0 {
				t.Fatal("timeline resolved to nothing")
			}
			sys.Net.SetEngine(kind)
			if err := sys.Net.Run(events[0].Cycle + 1); err != nil {
				t.Fatal(err)
			}
			if r, l := sys.Net.DisabledCounts(); r == wantR && l == wantL {
				t.Fatal("no component died during the partial run; the reset is vacuous")
			}
			if got := sys.Net.ChurnPending(); got == 0 || got == pending {
				t.Fatalf("timeline not partially applied: %d of %d events pending", got, pending)
			}
			sys.Reset()
			if gotR, gotL := sys.Net.DisabledCounts(); gotR != wantR || gotL != wantL {
				t.Fatalf("Reset did not restore build-time faults: (%d, %d) → (%d, %d)",
					wantR, wantL, gotR, gotL)
			}
			if got := sys.Net.ChurnPending(); got != pending {
				t.Fatalf("Reset left %d of %d timeline events pending", got, pending)
			}
			sp := tinySim()
			sp.Engine = kind
			res, err := sys.MeasureLoad(pat, 0.8, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Stats, res.Stats) {
				t.Fatalf("reset-mid-churn replay diverged from fresh build:\nfresh: %+v\nreset: %+v",
					fresh.Stats, res.Stats)
			}
		})
	}
}

// TestMeasureChurnCollective pins the churn experiment primitive: a chip
// death at step k of an AllReduce has a finite, reproducible cost, identical
// across engines, and visible in the drop accounting.
func TestMeasureChurnCollective(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	cfg.Churn = topology.FaultTimeline{Armed: true, Policy: netsim.DropInFlight}
	run := func(kind netsim.EngineKind, killChip int32, killStep int) metrics.Point {
		t.Helper()
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		pt, err := sys.MeasureChurnCollective(ChurnCollectiveSpec{
			Cfg: cfg, Schedule: "ring", Volume: 128, Engine: kind,
			KillChip: killChip, KillStep: killStep,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	base := run(netsim.EngineActiveSet, -1, 0)
	kill := run(netsim.EngineActiveSet, 1, 2)
	if base.Latency <= 0 || kill.Latency <= 0 {
		t.Fatalf("non-positive makespans: baseline %v, kill %v", base.Latency, kill.Latency)
	}
	if kill.Aux[1] <= 0 || kill.Aux[2] <= 0 {
		t.Fatalf("kill run did not split around the death: pre=%v post=%v", kill.Aux[1], kill.Aux[2])
	}
	if reflect.DeepEqual(base, kill) {
		t.Fatal("chip death changed nothing")
	}
	// Reproducible: a second fresh run returns the identical point.
	if again := run(netsim.EngineActiveSet, 1, 2); !reflect.DeepEqual(kill, again) {
		t.Fatalf("churn collective not reproducible:\nfirst:  %+v\nsecond: %+v", kill, again)
	}
	// Engine-independent: the reference engine agrees bit for bit.
	if ref := run(netsim.EngineReference, 1, 2); !reflect.DeepEqual(kill, ref) {
		t.Fatalf("engines diverged on churn collective:\nactive:    %+v\nreference: %+v", kill, ref)
	}
}

// TestMeasureChurnCollectiveReuse checks the worker-cache path: measuring on
// a reset system equals measuring on a fresh build (the executor caches
// systems by config and resets between jobs).
func TestMeasureChurnCollectiveReuse(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11}
	cfg.SLDF.G = 1
	cfg.Churn = topology.FaultTimeline{Armed: true, Policy: netsim.RetrySource}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cs := ChurnCollectiveSpec{Cfg: cfg, Schedule: "ring", Volume: 128, KillChip: 2, KillStep: 1}
	first, err := sys.MeasureChurnCollective(cs)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	second, err := sys.MeasureChurnCollective(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reset system diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestRunChurnFigure runs a two-case panel end to end through the backend
// seam and checks the decoded rows carry exact baseline/disturbed cycle
// accounting.
func TestRunChurnFigure(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	drop := cfg
	drop.Churn = topology.FaultTimeline{Armed: true, Policy: netsim.DropInFlight}
	retry := cfg
	retry.Churn = topology.FaultTimeline{Armed: true, Policy: netsim.RetrySource}
	fig, err := RunChurnFigure(ChurnFigureSpec{
		Name: "figtest", Title: "test",
		Cases: []ChurnCaseSpec{
			{Cfg: drop, Label: "mesh-drop", Schedule: "ring", Volume: 128, KillChip: 1, KillStep: 2},
			{Cfg: retry, Label: "mesh-retry", Schedule: "ring", Volume: 128, KillChip: 1, KillStep: 2},
		},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if row.BaselineCycles <= 0 || row.Cycles <= 0 {
			t.Fatalf("row %s has empty makespans: %+v", row.System, row)
		}
		if row.CostCycles != row.Cycles-row.BaselineCycles {
			t.Fatalf("row %s cost mismatch: %+v", row.System, row)
		}
		if row.Steps == 0 || int64(row.Steps) != int64(len(row.StepCycles)) {
			t.Fatalf("row %s step accounting: %+v", row.System, row)
		}
		if row.PreCycles+row.PostCycles != row.Cycles {
			t.Fatalf("row %s pre+post != total: %+v", row.System, row)
		}
	}
	if reflect.DeepEqual(fig.Rows[0], fig.Rows[1]) {
		t.Fatal("drop and retry policies produced identical rows")
	}
	csv := fig.CSV()
	if len(csv) == 0 {
		t.Fatal("empty CSV")
	}
}
