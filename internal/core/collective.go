package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"sldf/internal/campaign"
	"sldf/internal/collective"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
)

// This file promotes collective-communication measurements (paper Fig. 4's
// latency argument) to a first-class experiment family of the campaign
// pipeline: a declarative CollectiveSpec executed by a registered job kind,
// so collective makespans get the same content-addressed caching, local
// fan-out and remote sharding as sweep load points — instead of the
// CLI-only corner they used to live in.

// CollectiveJobKind is the registered executor for declarative collective
// makespan jobs. Versioned like core/point@v1: an incompatible spec change
// registers a new kind rather than reinterpreting shipped payloads.
const CollectiveJobKind = "collective/makespan@v1"

// DefaultCollectivePacket is the packet size collective jobs use when the
// spec leaves PacketSize zero (paper Table IV default).
const DefaultCollectivePacket = 4

// CollectiveSpec is the declarative description of one collective
// execution: a schedule resolved against a system, run step-by-step to its
// exact makespan. Pure data, so it ships to worker daemons unchanged.
type CollectiveSpec struct {
	Cfg Config `json:"cfg"`
	// Schedule is a CollectiveSchedules name ("ring", "2d", "hierarchical",
	// ...), resolved against the built system by ScheduleFor.
	Schedule string `json:"schedule"`
	// Volume is the AllReduce payload per chip in flits.
	Volume int64 `json:"volume"`
	// PacketSize is the packet length in flits (0 = DefaultCollectivePacket).
	PacketSize int32 `json:"packet,omitempty"`
	// MaxStepCycles bounds each dependent step (0 = collective.Run default).
	MaxStepCycles int64 `json:"max_step_cycles,omitempty"`
	// Engine selects the cycle engine; both measure identical makespans and
	// the non-default engine gets its own cache slot (a reference cross-check
	// must simulate, not replay the active-set result).
	Engine netsim.EngineKind `json:"engine,omitempty"`
}

func init() {
	campaign.RegisterExecutor(CollectiveJobKind, runCollectiveJob)
}

// runCollectiveJob executes one CollectiveSpec on a campaign worker,
// reusing the worker's built system across jobs that share a configuration.
func runCollectiveJob(w *campaign.Worker, payload json.RawMessage) (metrics.Point, error) {
	var cs CollectiveSpec
	if err := json.Unmarshal(payload, &cs); err != nil {
		return metrics.Point{}, fmt.Errorf("core: decode collective spec: %w", err)
	}
	sys, err := workerSystem(w, cs.Cfg.cacheID(), cs.Cfg)
	if err != nil {
		return metrics.Point{}, err
	}
	return sys.MeasureCollective(cs)
}

// collectiveKey is the content address of one collective job; like
// pointKey it covers every result-affecting input, and a non-default
// engine gets a distinct slot.
//
//sldf:cachekey CollectiveSpec
func collectiveKey(cs CollectiveSpec) string {
	key := fmt.Sprintf("%s|collective=%s|vol=%d|pkt=%d|maxstep=%d",
		cs.Cfg.cacheID(), cs.Schedule, cs.Volume, cs.packet(), cs.MaxStepCycles)
	if cs.Engine != netsim.EngineActiveSet {
		key += "|engine=" + cs.Engine.String()
	}
	return key
}

func (cs CollectiveSpec) packet() int32 {
	if cs.PacketSize <= 0 {
		return DefaultCollectivePacket
	}
	return cs.PacketSize
}

// CollectiveJob builds the declarative job spec for one collective
// execution, shareable between the local pool, stores and worker daemons.
func CollectiveJob(cs CollectiveSpec) (campaign.JobSpec, error) {
	payload, err := json.Marshal(cs)
	if err != nil {
		return campaign.JobSpec{}, fmt.Errorf("core: encode collective spec: %w", err)
	}
	return campaign.JobSpec{
		Key:     collectiveKey(cs),
		Kind:    CollectiveJobKind,
		Payload: payload,
	}, nil
}

// CollectiveSchedules lists the schedule names ScheduleFor resolves, in
// presentation order.
func CollectiveSchedules() []string {
	return []string{"ring", "bidir-ring", "reduce-scatter", "all-gather",
		"2d", "all-to-all", "hierarchical"}
}

// ScheduleFor resolves a named schedule against a built system. Rings run
// over the system's natural chip order (the snake on a mesh C-group, chip
// ID order elsewhere); the 2D algorithm factors the participants into a
// near-square logical grid; the hierarchical schedule groups chips by
// W-group (or, on single-group systems, by C-group / switch / grid row).
//
// On fault-degraded builds dead chips are excluded and the schedule
// re-routes over the survivors (rings close over them, grids re-factor);
// hierarchical falls back to the flat ring when faults leave the groups
// uneven. When fewer than two participants survive there is nothing to
// run and the error wraps collective.ErrPartitioned.
func ScheduleFor(s *System, name string, volume int64) (collective.Schedule, error) {
	alive := s.chipAlive()
	order := collective.FilterOrder(s.collectiveOrder(), alive)
	if len(order) < 2 {
		return collective.Schedule{}, fmt.Errorf("core: %s on %s: %d of %d chips alive: %w",
			name, s.Label, len(order), s.Chips, collective.ErrPartitioned)
	}
	switch name {
	case "ring":
		return collective.RingAllReduce(order, volume), nil
	case "bidir-ring":
		return collective.BidirRingAllReduce(order, volume), nil
	case "reduce-scatter":
		return collective.ReduceScatter(order, volume), nil
	case "all-gather":
		return collective.AllGather(order, volume), nil
	case "all-to-all":
		return collective.AllToAll(order, volume), nil
	case "2d":
		rows, cols := gridShape(len(order))
		return collective.TwoDAllReduceOrder(order, rows, cols, volume), nil
	case "hierarchical":
		groups := s.collectiveGroups(alive)
		for _, g := range groups[1:] {
			if len(g) != len(groups[0]) {
				// Faults left the groups uneven; the aligned-slot inter-group
				// rings no longer exist, so re-route to the flat ring.
				return collective.RingAllReduce(order, volume), nil
			}
		}
		return collective.HierarchicalAllReduce(groups, volume), nil
	default:
		return collective.Schedule{}, fmt.Errorf("core: unknown collective schedule %q (want %v)",
			name, CollectiveSchedules())
	}
}

// chipAlive returns the liveness predicate, or nil on pristine builds.
func (s *System) chipAlive() func(int32) bool {
	if s.aliveChips == nil {
		return nil
	}
	return func(c int32) bool { return s.aliveChips[c] }
}

// collectiveOrder is the system's natural ring embedding: the snake order
// on a mesh C-group (physically adjacent successors), ascending chip IDs
// elsewhere (IDs already walk C-groups and W-groups consecutively).
func (s *System) collectiveOrder() []int32 {
	if s.Cfg.Kind == MeshCGroup {
		return collective.SnakeOrder(s.Cfg.ChipletDim, s.Cfg.ChipletDim)
	}
	order := make([]int32, s.Chips)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// collectiveGroups partitions the alive chips for the hierarchical
// schedule: by W-group on multi-group systems, otherwise by the natural
// sub-block (C-group on the switch-less system, switch on the Dragonfly,
// grid row on a mesh, near-square blocks on a single switch). Empty groups
// are dropped.
func (s *System) collectiveGroups(alive func(int32) bool) [][]int32 {
	size := 0
	switch {
	case s.Groups > 1:
		size = s.ChipsPerGroup
	case s.Cfg.Kind == SwitchlessDragonfly:
		size = s.Cfg.SLDF.ChipCols * s.Cfg.SLDF.ChipRows
	case s.Cfg.Kind == SwitchDragonfly:
		size = s.Cfg.DF.P
	case s.Cfg.Kind == MeshCGroup:
		size = s.Cfg.ChipletDim
	default:
		_, size = gridShape(s.Chips)
	}
	if size < 1 {
		size = 1
	}
	var groups [][]int32
	for base := 0; base < s.Chips; base += size {
		var g []int32
		hi := base + size
		if hi > s.Chips {
			hi = s.Chips
		}
		for c := base; c < hi; c++ {
			if alive == nil || alive(int32(c)) {
				g = append(g, int32(c))
			}
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

// gridShape factors n into the most square rows×cols grid (rows <= cols).
// Primes degenerate to 1×n, which reduces the 2D schedule to a flat ring —
// still a valid re-route.
func gridShape(n int) (rows, cols int) {
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	if rows == 0 {
		rows = 1
	}
	return rows, n / rows
}

// MeasureCollective resolves and runs one collective schedule on the
// system, returning its result encoded as a campaign point:
//
//	Rate       = offered volume (flits/chip)
//	Latency    = exact end-to-end makespan (cycles)
//	P50 / P99  = median / maximum step makespan
//	Throughput = delivered flits/cycle/chip over the makespan
//	Aux        = [delivered packets, step 0 cycles, step 1 cycles, ...]
//
// Cycle counts are integers carried exactly in float64, so the encoding
// round-trips bit-identically through JSON stores and the wire protocol.
func (s *System) MeasureCollective(cs CollectiveSpec) (metrics.Point, error) {
	s.Net.SetEngine(cs.Engine)
	sch, err := ScheduleFor(s, cs.Schedule, cs.Volume)
	if err != nil {
		return metrics.Point{}, err
	}
	var res collective.Result
	if cs.Engine == netsim.EngineFlow {
		res, err = collective.RunFlow(s.Net, sch, cs.packet())
	} else {
		res, err = collective.Run(s.Net, sch, cs.packet(), cs.MaxStepCycles)
	}
	if err != nil {
		return metrics.Point{}, fmt.Errorf("%s/%s: %w", s.Label, cs.Schedule, err)
	}
	pt := metrics.Point{Rate: float64(cs.Volume)}
	pt.Latency = float64(res.Cycles)
	if res.Cycles > 0 {
		pt.Throughput = float64(res.Packets) * float64(cs.packet()) /
			float64(res.Cycles) / float64(s.Chips)
	}
	if n := len(res.StepCycles); n > 0 {
		sorted := append([]int64(nil), res.StepCycles...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pt.P50 = float64(sorted[n/2])
		pt.P99 = float64(sorted[n-1])
	}
	pt.Aux = make([]float64, 0, 1+len(res.StepCycles))
	pt.Aux = append(pt.Aux, float64(res.Packets))
	for _, c := range res.StepCycles {
		pt.Aux = append(pt.Aux, float64(c))
	}
	return pt, nil
}

// CollectiveRowFromPoint decodes a collective job's point back into the
// row the figure renders, labelled with the case's system and schedule.
func CollectiveRowFromPoint(system, schedule string, pt metrics.Point) metrics.CollectiveRow {
	row := metrics.CollectiveRow{
		System:     system,
		Schedule:   schedule,
		Cycles:     int64(pt.Latency),
		Efficiency: pt.Throughput,
	}
	if len(pt.Aux) > 0 {
		row.Packets = int64(pt.Aux[0])
		row.StepCycles = make([]int64, 0, len(pt.Aux)-1)
		for _, c := range pt.Aux[1:] {
			row.StepCycles = append(row.StepCycles, int64(c))
		}
	}
	row.Steps = len(row.StepCycles)
	return row
}

// CollectiveCaseSpec is one row of a collective figure: a schedule on a
// system at a volume.
type CollectiveCaseSpec struct {
	Cfg      Config
	Schedule string
	// Label overrides the config-derived system label when non-empty.
	Label         string
	Volume        int64
	PacketSize    int32
	MaxStepCycles int64
	Engine        netsim.EngineKind
}

// Spec lowers the case to its declarative job description.
func (c CollectiveCaseSpec) Spec() CollectiveSpec {
	return CollectiveSpec{Cfg: c.Cfg, Schedule: c.Schedule, Volume: c.Volume,
		PacketSize: c.PacketSize, MaxStepCycles: c.MaxStepCycles, Engine: c.Engine}
}

// CollectiveFigureSpec is one collective-makespan panel: a named list of
// cases.
type CollectiveFigureSpec struct {
	Name, Title string
	Cases       []CollectiveCaseSpec
}

// RunCollectiveFigure measures every case of a collective panel through
// the Backend seam: cases become content-addressed job specs executed by
// the local pool or a worker fleet, satisfied from the store when present,
// and merged by case index — byte-identical however they run.
func RunCollectiveFigure(fs CollectiveFigureSpec, opts RunOptions) (metrics.CollectiveFigure, error) {
	fig := metrics.CollectiveFigure{Name: fs.Name, Title: fs.Title}
	specs := make([]campaign.JobSpec, len(fs.Cases))
	for i, c := range fs.Cases {
		spec, err := CollectiveJob(c.Spec())
		if err != nil {
			return fig, fmt.Errorf("%s: %w", fs.Name, err)
		}
		specs[i] = spec
	}
	backend := opts.Backend
	if backend == nil {
		backend = campaign.LocalBackend{}
	}
	pts, err := backend.Execute(specs, campaign.ExecOptions{Jobs: opts.Jobs, Store: opts.Store})
	if err != nil {
		return fig, fmt.Errorf("%s: %w", fs.Name, err)
	}
	fig.Rows = make([]metrics.CollectiveRow, len(fs.Cases))
	for i, c := range fs.Cases {
		label := c.Label
		if label == "" {
			label = c.Cfg.Label()
		}
		fig.Rows[i] = CollectiveRowFromPoint(label, c.Schedule, pts[i])
	}
	return fig, nil
}
