package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/collective"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// collectiveKinds is one small configuration per system kind, the coverage
// the collective experiment family promises.
func collectiveKinds() []struct {
	name string
	cfg  Config
} {
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 7, Workers: 1}
	swb.DF.G = 1
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7, Workers: 1}
	swl.SLDF.G = 1
	return []struct {
		name string
		cfg  Config
	}{
		{"switch", Config{Kind: SingleSwitch, Terminals: 4, Seed: 7, Workers: 1}},
		{"mesh", Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 7, Workers: 1}},
		{"sw-based", swb},
		{"sw-less", swl},
	}
}

// TestCollectiveEngineEquivalence is the acceptance criterion for the new
// drain path: on every system kind, the active-set engine and the full-scan
// reference engine measure identical makespans (every step cycle, packet
// count and derived column) for every schedule in the library.
func TestCollectiveEngineEquivalence(t *testing.T) {
	for _, k := range collectiveKinds() {
		for _, sch := range CollectiveSchedules() {
			t.Run(k.name+"/"+sch, func(t *testing.T) {
				measure := func(eng netsim.EngineKind) metrics.Point {
					sys, err := Build(k.cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					pt, err := sys.MeasureCollective(CollectiveSpec{
						Cfg: k.cfg, Schedule: sch, Volume: 96, Engine: eng})
					if err != nil {
						t.Fatal(err)
					}
					return pt
				}
				act := measure(netsim.EngineActiveSet)
				ref := measure(netsim.EngineReference)
				if !reflect.DeepEqual(act, ref) {
					t.Fatalf("engines diverged:\nactive:    %+v\nreference: %+v", act, ref)
				}
				if act.Latency <= 0 || len(act.Aux) < 2 {
					t.Fatalf("vacuous measurement %+v", act)
				}
			})
		}
	}
}

// TestCollectiveSerialCachedRemoteByteIdentical is the pipeline acceptance
// criterion: the same collective panel measured serially, replayed from a
// cold disk cache, and sharded across an emulated 2-worker cluster renders
// byte-identical CSV.
func TestCollectiveSerialCachedRemoteByteIdentical(t *testing.T) {
	var spec CollectiveFigureSpec
	spec.Name = "eq"
	for _, k := range collectiveKinds() {
		for _, sch := range []string{"ring", "2d", "hierarchical"} {
			spec.Cases = append(spec.Cases, CollectiveCaseSpec{
				Cfg: k.cfg, Schedule: sch, Label: k.name, Volume: 96})
		}
	}

	serial, err := RunCollectiveFigure(spec, RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := serial.CSV()

	// Cold cache fill, then a replay that must not re-simulate.
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	filled, err := RunCollectiveFigure(spec, RunOptions{Jobs: 4, Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := filled.CSV(); got != want {
		t.Fatalf("parallel cache-fill diverged:\n%s\nvs\n%s", got, want)
	}
	replay, err := RunCollectiveFigure(spec, RunOptions{Jobs: 1, Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := replay.CSV(); got != want {
		t.Fatalf("cache replay diverged:\n%s\nvs\n%s", got, want)
	}
	if cache.Hits() != int64(len(spec.Cases)) {
		t.Fatalf("replay hit the cache %d times, want %d", cache.Hits(), len(spec.Cases))
	}

	backend, err := remote.New(remoteCluster(t, 2), remote.Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunCollectiveFigure(spec, RunOptions{Jobs: 4, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if got := dist.CSV(); got != want {
		t.Fatalf("2-worker remote run diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestCollectiveSpecJSONRoundTrip guards the wire format: a spec survives
// JSON exactly and its job key covers schedule, volume, packet and engine.
func TestCollectiveSpecJSONRoundTrip(t *testing.T) {
	cs := CollectiveSpec{Cfg: collectiveKinds()[1].cfg, Schedule: "hierarchical",
		Volume: 12345, PacketSize: 8, MaxStepCycles: 999, Engine: netsim.EngineReference}
	data, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	var back CollectiveSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs, back) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", cs, back)
	}
	base, _ := CollectiveJob(cs)
	for _, mut := range []func(*CollectiveSpec){
		func(s *CollectiveSpec) { s.Schedule = "ring" },
		func(s *CollectiveSpec) { s.Volume = 54321 },
		func(s *CollectiveSpec) { s.PacketSize = 4 },
		func(s *CollectiveSpec) { s.MaxStepCycles = 0 },
		func(s *CollectiveSpec) { s.Engine = netsim.EngineActiveSet },
	} {
		m := cs
		mut(&m)
		spec, err := CollectiveJob(m)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Key == base.Key {
			t.Fatalf("mutated spec %+v shares the content address %q", m, base.Key)
		}
	}
}

// TestCollectiveFaultedReroutes proves the fault contract: schedules on a
// degraded build re-route over the surviving chips and still drain to
// completion, with fewer participants than the pristine run.
func TestCollectiveFaultedReroutes(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7, Workers: 1}
	cfg.SLDF.G = 1
	// Seed 6 at these fractions deterministically kills a chip, so the
	// re-route path (not just the pristine-order fast path) is exercised.
	cfg.Faults = topology.FaultSpec{Seed: 6, LinkFraction: 0.08, RouterFraction: 0.08}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if len(sys.DeadChips()) == 0 {
		t.Fatal("fault draw killed no chip; the re-route path is untested")
	}
	for _, sch := range CollectiveSchedules() {
		s, err := ScheduleFor(sys, sch, 96)
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		for _, st := range s.Steps {
			for _, c := range st.Participants {
				if !sys.Net.ChipAlive(c) {
					t.Fatalf("%s schedules dead chip %d", sch, c)
				}
			}
		}
		sys.Reset()
		pt, err := sys.MeasureCollective(CollectiveSpec{Cfg: cfg, Schedule: sch, Volume: 96})
		if err != nil {
			t.Fatalf("%s on faulted build: %v", sch, err)
		}
		if pt.Latency <= 0 {
			t.Fatalf("%s: empty measurement %+v", sch, pt)
		}
	}
}

// TestCollectivePartitioned: fewer than two alive participants must
// surface collective.ErrPartitioned, not hang or measure nothing.
func TestCollectivePartitioned(t *testing.T) {
	sys, err := Build(Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.aliveChips = []bool{true, false, false, false}
	_, err = ScheduleFor(sys, "ring", 64)
	if !errors.Is(err, collective.ErrPartitioned) {
		t.Fatalf("got %v, want ErrPartitioned", err)
	}
}

// TestCollectiveUnknownSchedule pins the error path a bad -schedules flag
// or a stale shipped spec hits.
func TestCollectiveUnknownSchedule(t *testing.T) {
	sys, err := Build(Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := ScheduleFor(sys, "nope", 64); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestGoldenCollective locks the exact post-barrier-fix makespans for every
// system kind into a committed fixture: per-step cycles, totals and packet
// counts. Regenerate deliberately with
//
//	go test ./internal/core -run TestGoldenCollective -update
func TestGoldenCollective(t *testing.T) {
	type entry struct {
		System string                  `json:"system"`
		Rows   []metrics.CollectiveRow `json:"rows"`
	}
	var got []entry
	for _, k := range collectiveKinds() {
		e := entry{System: k.name}
		for _, sch := range []string{"ring", "2d", "hierarchical"} {
			sys, err := Build(k.cfg)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := sys.MeasureCollective(CollectiveSpec{Cfg: k.cfg, Schedule: sch, Volume: 128})
			sys.Close()
			if err != nil {
				t.Fatal(err)
			}
			e.Rows = append(e.Rows, CollectiveRowFromPoint(k.name, sch, pt))
		}
		got = append(got, e)
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden_collective.json")
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("collective makespans diverged from the committed fixture\ngot:\n%s\nwant:\n%s",
			data, want)
	}
}
