// Package core wires the substrates together: it builds each evaluated
// system (switch-based Dragonfly, switch-less Dragonfly, single switch,
// standalone C-group mesh), runs open-loop load points with Table IV
// parameters, and provides the per-figure experiment runners used by the
// benchmark harness and the sldffigures command.
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package core

import (
	"fmt"

	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// SystemKind identifies one of the evaluated network systems.
type SystemKind uint8

const (
	// SwitchDragonfly is the switch-based Dragonfly baseline ("SW-based").
	SwitchDragonfly SystemKind = iota
	// SwitchlessDragonfly is the paper's contribution ("SW-less").
	SwitchlessDragonfly
	// SingleSwitch is one non-blocking switch with terminals (Fig. 10a-b).
	SingleSwitch
	// MeshCGroup is a standalone wafer C-group mesh (Fig. 10a-b).
	MeshCGroup
)

// String names the system kind.
func (k SystemKind) String() string {
	switch k {
	case SwitchDragonfly:
		return "sw-based"
	case SwitchlessDragonfly:
		return "sw-less"
	case SingleSwitch:
		return "switch"
	case MeshCGroup:
		return "2d-mesh"
	}
	return "unknown"
}

// Config fully describes a system to simulate.
type Config struct {
	Kind SystemKind

	// DF parameterizes SwitchDragonfly.
	DF topology.DragonflyParams
	// SLDF parameterizes SwitchlessDragonfly.
	SLDF topology.SLDFParams
	// Terminals parameterizes SingleSwitch.
	Terminals int
	// ChipletDim/NoCDim parameterize MeshCGroup.
	ChipletDim int
	NoCDim     int

	// Scheme selects the SLDF VC discipline (ignored by other kinds).
	Scheme routing.Scheme
	// Mode selects minimal or Valiant routing (SLDF and Dragonfly).
	Mode routing.Mode
	// IntraWidth multiplies intra-C-group link bandwidth: 1 = paper
	// uniform, 2 = "2B", 4 = "4B".
	IntraWidth int32

	// Faults injects deterministic component failures at build time
	// (defective dies, cut cables) and switches routing to the fault-aware
	// algorithms; see topology.FaultSpec and the routing package. An empty
	// spec leaves the build bitwise identical to a fault-free one. Faulted
	// networks provision FaultVCs virtual channels per link so degraded
	// detours keep one VC per C-group traversal.
	Faults topology.FaultSpec

	// Churn schedules in-run component death and repair: a deterministic
	// fault timeline both cycle engines apply mid-simulation, with routing
	// recomputed and in-flight packets dropped or retried at every event
	// batch (see topology.FaultTimeline). A non-empty timeline builds the
	// system fault-grade (FaultVCs, fault-aware routing) from cycle zero so
	// survivors always have a detour discipline; an armed zero-event
	// timeline therefore simulates bitwise identically to the corresponding
	// static-fault build.
	Churn topology.FaultTimeline

	Seed uint64
	// Workers and WatchdogCycles shape execution, never measured results,
	// so cacheID leaves them out of the content address.
	Workers        int   //sldf:keyignore execution knob; results identical for any worker count
	WatchdogCycles int64 //sldf:keyignore execution knob; only bounds deadlock detection
}

// FaultVCs is the per-link virtual-channel provisioning of faulted builds:
// the netsim maximum, giving degraded detours the deepest available VC
// ladder. The fault-aware routing constructors verify the degraded
// diameter fits and fail with routing.ErrDegradedVCs otherwise.
const FaultVCs = 8

// SimParams are the measurement-window parameters (paper Table IV).
type SimParams struct {
	Warmup     int64 // cycles before the window opens
	Measure    int64 // window length
	ExtraDrain int64 // post-window cycles (traffic stays on) to flush packets
	PacketSize int32 // flits

	// Engine selects the simulation engine for the measurement. The
	// default, netsim.EngineActiveSet, skips quiescent routers and links;
	// netsim.EngineReference walks everything each cycle. Those two are
	// cycle engines and produce bitwise-identical statistics, so
	// serial-reference runs can cross-check active-set results (see the
	// engine equivalence tests). netsim.EngineFlow instead solves the
	// window analytically from a sampled traffic matrix — approximate, with
	// pinned error bounds validated in the cross-engine suite, but usable
	// orders of magnitude past the cycle engines' scale ceiling.
	Engine netsim.EngineKind

	// FlowWorkers sets the flow solver's intra-point parallelism under
	// EngineFlow (<= 0 keeps the solver serial). Like Workers and
	// WatchdogCycles it is a pure execution knob — statistics are
	// bit-identical for any value — so it is excluded from point cache keys.
	FlowWorkers int //sldf:keyignore execution knob; solver output is bit-identical for any worker count
	// FlowCold discards the flow solver's route-trace cache before every
	// solve, forcing cold-start behavior. Results are identical either way;
	// the knob exists for benchmarking and equivalence harnesses.
	FlowCold bool //sldf:keyignore execution knob; cold and warm caches solve to identical bits
	// FlowSeedThrottles warm-starts the flow waterfill from the adjacent
	// point's solution. APPROXIMATE (see netsim.FlowOptions.SeedThrottles):
	// unlike the other flow knobs it can shift results, so it is reflected
	// in point cache keys and should only be enabled for exploratory sweeps.
	FlowSeedThrottles bool
}

// ParseEngine maps a CLI -engine value to its kind. The empty string is
// the default (active-set) engine.
func ParseEngine(name string) (netsim.EngineKind, error) {
	switch name {
	case "", "active-set":
		return netsim.EngineActiveSet, nil
	case "reference":
		return netsim.EngineReference, nil
	case "flow":
		return netsim.EngineFlow, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q (want active-set, reference or flow)", name)
}

// DefaultSim returns the Table IV defaults: 4-flit packets, 5000 warmup,
// 10000 measured cycles.
func DefaultSim() SimParams {
	return SimParams{Warmup: 5000, Measure: 10000, ExtraDrain: 5000, PacketSize: 4}
}

// QuickSim returns CI-scale parameters for tests and -quick runs.
func QuickSim() SimParams {
	return SimParams{Warmup: 400, Measure: 800, ExtraDrain: 400, PacketSize: 4}
}

// Radix16SLDF returns the paper's small evaluated switch-less system:
// 2×2 chiplets of 2×2 NoC nodes per C-group, 12 external ports (7 local +
// 5 global), 8 C-groups per W-group, 41 W-groups, 1312 chips.
func Radix16SLDF() topology.SLDFParams {
	return topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 8, H: 5}
}

// Radix16DF returns the matching switch-based baseline: radix-16 switches
// with terminal:local:global = 4:7:5.
func Radix16DF() topology.DragonflyParams {
	return topology.DragonflyParams{P: 4, A: 8, H: 5}
}

// Radix32SLDF returns the paper's large evaluated system: 8 chips per
// C-group (4×2 chiplets), 24 external ports (15 local + 9 global), 16
// C-groups per W-group, 145 W-groups, 18560 chips.
func Radix32SLDF() topology.SLDFParams {
	return topology.SLDFParams{NoCDim: 2, ChipCols: 4, ChipRows: 2, AB: 16, H: 9}
}

// Radix32DF returns the large switch-based baseline (8:15:9).
func Radix32DF() topology.DragonflyParams {
	return topology.DragonflyParams{P: 8, A: 16, H: 9}
}

// Radix24SLDF is a mid-size stand-in for scalability studies at CI scale
// (6120 chips): used by -quick runs of Fig. 12.
func Radix24SLDF() topology.SLDFParams {
	return topology.SLDFParams{NoCDim: 2, ChipCols: 3, ChipRows: 2, AB: 12, H: 7}
}

// Radix24DF is the matching switch-based stand-in (6:11:7).
func Radix24DF() topology.DragonflyParams {
	return topology.DragonflyParams{P: 6, A: 12, H: 7}
}

// Radix56SLDF is the 100k+-chip rung of the balanced family (14 chips per
// C-group, 28 C-groups per W-group, 421 W-groups, 165 032 chips): far past
// the cycle engines' ceiling, it exists for the flow solver's scale
// validation and the warm-sweep wall-clock benchmarks.
func Radix56SLDF() topology.SLDFParams {
	return topology.SLDFParams{NoCDim: 2, ChipCols: 7, ChipRows: 2, AB: 28, H: 15}
}

// Radix56DF is the matching 165 032-terminal switch-based system (14:27:15).
func Radix56DF() topology.DragonflyParams {
	return topology.DragonflyParams{P: 14, A: 28, H: 15}
}

func (c Config) validate() error {
	if c.IntraWidth != 0 && c.IntraWidth != 1 && c.IntraWidth != 2 && c.IntraWidth != 4 {
		return fmt.Errorf("core: IntraWidth must be 1, 2 or 4 (got %d)", c.IntraWidth)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Churn.Validate(); err != nil {
		return err
	}
	return nil
}

func (c Config) netOptions() netsim.NetworkOptions {
	return netsim.NetworkOptions{
		Seed:           c.Seed,
		Workers:        c.Workers,
		WatchdogCycles: c.WatchdogCycles,
	}
}
