package core

import (
	"testing"

	"sldf/internal/routing"
	"sldf/internal/traffic"
)

// tiny simulation parameters for unit tests.
func tinySim() SimParams {
	return SimParams{Warmup: 200, Measure: 400, ExtraDrain: 200, PacketSize: 4}
}

func TestBuildAllKinds(t *testing.T) {
	cfgs := map[string]Config{
		"switch":   {Kind: SingleSwitch, Terminals: 4, Seed: 1},
		"mesh":     {Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 1},
		"sw-based": {Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 1},
		"sw-less":  {Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 1},
	}
	want := map[string]int{"switch": 4, "mesh": 4, "sw-based": 1312, "sw-less": 1312}
	for name, cfg := range cfgs {
		sys, err := Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Chips != want[name] {
			t.Fatalf("%s: chips = %d, want %d", name, sys.Chips, want[name])
		}
		sys.Close()
	}
}

func TestBuildRejectsBadWidth(t *testing.T) {
	cfg := Config{Kind: SingleSwitch, Terminals: 4, IntraWidth: 3}
	if _, err := Build(cfg); err == nil {
		t.Fatal("IntraWidth 3 must be rejected")
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Kind: SwitchDragonfly, DF: Radix16DF()}, "sw-based"},
		{Config{Kind: SwitchDragonfly, DF: Radix16DF(), Mode: routing.Valiant}, "sw-based-mis"},
		{Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF()}, "sw-less"},
		{Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), IntraWidth: 2}, "sw-less-2B"},
		{Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Mode: routing.Valiant}, "sw-less-mis"},
		{Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Scheme: routing.ReducedVC}, "sw-less-rvc"},
	}
	for _, c := range cases {
		sys, err := Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Label != c.want {
			t.Fatalf("label %q, want %q", sys.Label, c.want)
		}
		sys.Close()
	}
}

func TestMeasureLoadSane(t *testing.T) {
	sys, err := Build(Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.MeasureLoad(pat, 0.5, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if res.Point.Latency <= 0 {
		t.Fatalf("non-positive latency %v", res.Point.Latency)
	}
	// Accepted throughput should track offered load below saturation.
	if res.Point.Throughput < 0.4 || res.Point.Throughput > 0.6 {
		t.Fatalf("throughput %v at offered 0.5", res.Point.Throughput)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestSweepMonotoneLoad(t *testing.T) {
	cfg := Config{Kind: SingleSwitch, Terminals: 4, Seed: 4}
	s, err := Sweep(cfg, "uniform", []float64{0.2, 0.6, 1.4}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Latency must be non-decreasing with offered load (heavily congested
	// last point).
	if !(s.Points[0].Latency <= s.Points[1].Latency &&
		s.Points[1].Latency < s.Points[2].Latency) {
		t.Fatalf("latency not increasing with load: %+v", s.Points)
	}
	// The switch cannot accept more than ~1 flit/cycle/chip.
	if s.Points[2].Throughput > 1.1 {
		t.Fatalf("switch accepted %v > capacity", s.Points[2].Throughput)
	}
}

func TestPatternForScoping(t *testing.T) {
	sys, err := Build(Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Groups != 41 || sys.ChipsPerGroup != 32 {
		t.Fatalf("groups=%d chipsPerGroup=%d", sys.Groups, sys.ChipsPerGroup)
	}
	pat, err := sys.PatternFor("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	hs := pat.(traffic.Hotspot)
	if len(hs.HotGroups) != 4 || hs.ChipsPerGroup != 32 {
		t.Fatalf("hotspot misconfigured: %+v", hs)
	}
	if _, err := sys.PatternFor("worst-case"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PatternFor("nope"); err == nil {
		t.Fatal("unknown pattern must error")
	}
}

func TestSwitchlessBeatsSwitchIntraCGroup(t *testing.T) {
	// The Fig. 10(a) headline at test scale: the mesh C-group accepts ≥2×
	// the per-chip throughput of the single switch at high offered load.
	sp := tinySim()
	sw, err := Sweep(Config{Kind: SingleSwitch, Terminals: 4, Seed: 6},
		"uniform", []float64{2.5}, sp)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := Sweep(Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 6},
		"uniform", []float64{2.5}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Points[0].Throughput < 2*sw.Points[0].Throughput {
		t.Fatalf("mesh %v vs switch %v flits/cycle/chip",
			mesh.Points[0].Throughput, sw.Points[0].Throughput)
	}
}

func TestReducedVCSchemeRuns(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(),
		Scheme: routing.ReducedVC, Seed: 7}
	cfg.SLDF.G = 1 // keep the test fast: one W-group
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat, _ := sys.PatternFor("uniform")
	res, err := sys.MeasureLoad(pat, 0.6, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeliveredPkts == 0 {
		t.Fatal("reduced scheme delivered nothing")
	}
}

func TestValiantHelpsWorstCase(t *testing.T) {
	// Fig. 13(b): under the Wi→Wi+1 worst case, minimal routing is capped
	// by the single direct global channel (1/(40·…) of capacity at
	// radix-16) while Valiant spreads over all channels.
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 8}
	sp := tinySim()
	rate := []float64{0.2}
	minS, err := Sweep(cfg, "worst-case", rate, sp)
	if err != nil {
		t.Fatal(err)
	}
	val := cfg
	val.Mode = routing.Valiant
	valS, err := Sweep(val, "worst-case", rate, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Non-minimal routing must accept several times more worst-case traffic.
	if valS.Points[0].Throughput < 3*minS.Points[0].Throughput {
		t.Fatalf("valiant %v vs minimal %v under worst-case",
			valS.Points[0].Throughput, minS.Points[0].Throughput)
	}
}

func TestSweepScoped(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 10}
	mk := func(sys *System) traffic.Pattern {
		// Confine traffic to chips 0 and 1.
		return traffic.Uniform{N: 2}
	}
	s, err := SweepScoped(cfg, mk, "scoped", []float64{0.4, 0.8}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "scoped" || len(s.Points) != 2 {
		t.Fatalf("series %+v", s)
	}
	// Only half the chips transmit: all-chip throughput ≈ rate/2.
	if p := s.Points[0]; p.Throughput < 0.15 || p.Throughput > 0.25 {
		t.Fatalf("scoped throughput %v at offered 0.4", p.Throughput)
	}
	// Default label comes from the built system when empty.
	s2, err := SweepScoped(cfg, mk, "", []float64{0.4}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Label != "2d-mesh" {
		t.Fatalf("default label %q", s2.Label)
	}
}

func TestScaleSimParams(t *testing.T) {
	if ScalePaper.Sim().Warmup != 5000 || ScalePaper.Sim().Measure != 10000 {
		t.Fatal("paper scale must use Table IV windows")
	}
	if q := ScaleQuick.Sim(); q.Measure >= ScalePaper.Sim().Measure {
		t.Fatal("quick scale must be smaller")
	}
	if got := len((ScaleQuick).rates(0.1, 1.0, 0.1)); got >= len((ScalePaper).rates(0.1, 1.0, 0.1)) {
		t.Fatal("quick rate grid must be thinner")
	}
}
