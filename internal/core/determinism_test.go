package core

import "testing"

// TestSystemDeterminismAcrossWorkers verifies the simulator's headline
// engineering property at full-system scope: the same seed produces
// bit-identical results no matter how many worker goroutines step the
// network (the two-phase cycle gives every link queue a single producer
// and consumer per phase).
func TestSystemDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 77,
			Workers: workers}
		cfg.SLDF.G = 1
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		pat, err := sys.PatternFor("uniform")
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.MeasureLoad(pat, 0.8, tinySim())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(3)
	c := run(8)
	for i, o := range []Result{b, c} {
		if o.Stats.InjectedPkts != a.Stats.InjectedPkts ||
			o.Stats.DeliveredPkts != a.Stats.DeliveredPkts {
			t.Fatalf("worker set %d: packet counts diverged: %d/%d vs %d/%d",
				i, o.Stats.InjectedPkts, o.Stats.DeliveredPkts,
				a.Stats.InjectedPkts, a.Stats.DeliveredPkts)
		}
		if o.Stats.Latency.Sum != a.Stats.Latency.Sum ||
			o.Stats.Latency.Count != a.Stats.Latency.Count {
			t.Fatalf("worker set %d: latency sums diverged", i)
		}
		if o.Stats.Hops != a.Stats.Hops {
			t.Fatalf("worker set %d: hop counters diverged", i)
		}
		if o.Stats.WindowFlits != a.Stats.WindowFlits {
			t.Fatalf("worker set %d: window flits diverged", i)
		}
	}
}
