package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// TestPointKeyEnginePartition pins down the cache semantics of the engine
// toggle: the default engine keeps the legacy key format (old caches stay
// valid), while a reference-engine run gets its own slot — a cross-check
// that replayed the cached active-set point would verify nothing.
func TestPointKeyEnginePartition(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 1}
	sp := tinySim()
	def := pointKey(cfg, "uniform", 0.2, sp)
	if strings.Contains(def, "engine=") {
		t.Fatalf("default-engine key must keep the legacy format, got %q", def)
	}
	sp.Engine = netsim.EngineReference
	ref := pointKey(cfg, "uniform", 0.2, sp)
	if ref == def {
		t.Fatal("reference-engine run shares the default engine's cache slot")
	}
}

// measureEngine builds cfg fresh and measures one load point with the given
// cycle engine.
func measureEngine(t *testing.T, cfg Config, pattern string, rate float64, k netsim.EngineKind) Result {
	t.Helper()
	return measureEngineSim(t, cfg, pattern, rate, k, tinySim())
}

// measureEngineSim is measureEngine with explicit window parameters.
func measureEngineSim(t *testing.T, cfg Config, pattern string, rate float64, k netsim.EngineKind, sp SimParams) Result {
	t.Helper()
	sys, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor(pattern)
	if err != nil {
		t.Fatalf("pattern %s: %v", pattern, err)
	}
	sp.Engine = k
	res, err := sys.MeasureLoad(pat, rate, sp)
	if err != nil {
		t.Fatalf("measure (%v): %v", k, err)
	}
	return res
}

// TestEngineEquivalence is the tentpole's correctness gate: the active-set
// engine must be bitwise identical to the full-scan reference engine — the
// complete Stats struct (counters, hop mix, the full latency histogram) and
// the per-class link utilization — across every system kind under uniform,
// adversarial and collective workloads at a low rate and at saturation.
func TestEngineEquivalence(t *testing.T) {
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 5}
	swb.DF.G = 1
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 5}
	swl.SLDF.G = 1
	cases := []struct {
		name   string
		cfg    Config
		lo, hi float64
	}{
		{"switch", Config{Kind: SingleSwitch, Terminals: 4, Seed: 5}, 0.2, 2.5},
		{"mesh", Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 5}, 0.2, 2.5},
		{"sw-based", swb, 0.1, 1.4},
		{"sw-less", swl, 0.1, 1.4},
	}
	// bit-reverse is the adversarial permutation here: the group-level
	// worst-case pattern is degenerate (self-traffic) on these single-group
	// systems and is covered at full scale by the routing-modes test below.
	for _, tc := range cases {
		for _, pattern := range []string{"uniform", "bit-reverse", "ring-bidir"} {
			for _, rate := range []float64{tc.lo, tc.hi} {
				name := fmt.Sprintf("%s/%s/%.1f", tc.name, pattern, rate)
				t.Run(name, func(t *testing.T) {
					ref := measureEngine(t, tc.cfg, pattern, rate, netsim.EngineReference)
					act := measureEngine(t, tc.cfg, pattern, rate, netsim.EngineActiveSet)
					if !reflect.DeepEqual(ref.Stats, act.Stats) {
						t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
					}
					if !reflect.DeepEqual(ref.Point, act.Point) {
						t.Fatalf("points diverged: %+v vs %+v", ref.Point, act.Point)
					}
					if ref.Utilization != act.Utilization {
						t.Fatalf("utilization diverged: %v vs %v", ref.Utilization, act.Utilization)
					}
					if ref.Stats.DeliveredPkts == 0 {
						t.Fatal("no traffic delivered; the comparison is vacuous")
					}
				})
			}
		}
	}
}

// TestEngineEquivalenceRoutingModes covers the routing algorithms with
// per-packet state and the adaptive pre-allocate congestion snapshot, where
// skipping a router the reference engine would visit (or vice versa) would
// desynchronize per-router RNG streams immediately.
func TestEngineEquivalenceRoutingModes(t *testing.T) {
	base := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 9}
	valiant := base
	valiant.Mode = routing.Valiant
	lower := base
	lower.Mode = routing.ValiantLower
	adaptive := base
	adaptive.Mode = routing.Adaptive
	reduced := base
	reduced.Scheme = routing.ReducedVC
	cases := []struct {
		name    string
		cfg     Config
		pattern string
		rate    float64
	}{
		{"minimal", base, "worst-case", 0.1},
		{"valiant", valiant, "worst-case", 0.1},
		{"valiant-lower", lower, "worst-case", 0.1},
		{"adaptive", adaptive, "uniform", 0.3},
		{"reduced-vc", reduced, "uniform", 0.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Full 41-W-group system so misrouting has intermediates and the
			// worst-case pattern actually crosses groups. Short windows keep
			// the suite fast: 1312 chips still give thousands of packets.
			cfg := tc.cfg
			sp := SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
			ref := measureEngineSim(t, cfg, tc.pattern, tc.rate, netsim.EngineReference, sp)
			act := measureEngineSim(t, cfg, tc.pattern, tc.rate, netsim.EngineActiveSet, sp)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
			if ref.Stats.DeliveredPkts == 0 {
				t.Fatal("no traffic delivered; the comparison is vacuous")
			}
		})
	}
}

// TestEngineEquivalenceParallel checks that the active-set engine's
// cross-shard link staging is deterministic: multi-worker active-set runs
// must match the single-worker reference run bit for bit.
func TestEngineEquivalenceParallel(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 77,
				Workers: workers}
			cfg.SLDF.G = 1
			serial := cfg
			serial.Workers = 1
			ref := measureEngine(t, serial, "uniform", 0.8, netsim.EngineReference)
			act := measureEngine(t, cfg, "uniform", 0.8, netsim.EngineActiveSet)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
		})
	}
}

// TestEngineEquivalenceFaulted extends the tentpole's correctness gate to
// degraded topologies: with disabled links and routers, the active-set
// engine must remain bitwise identical to the full-scan reference engine —
// dead routers must never enter the bitmap, dead links never park on the
// timing wheel, and neither may perturb the shared injector walk. Covers
// every system kind that admits faults, plus Valiant detours on the full
// multi-W-group system.
func TestEngineEquivalenceFaulted(t *testing.T) {
	swl1 := faultedTinyCfg(routing.Minimal)
	mesh := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5}
	mesh.Faults = topology.FaultSpec{Seed: 2, LinkFraction: 0.08, RouterFraction: 0.04}
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 5}
	swb.Faults = topology.FaultSpec{Seed: 1, LinkFraction: 0.05}
	swlFull := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 9}
	swlFull.Faults = topology.FaultSpec{Seed: 1, LinkFraction: 0.04, RouterFraction: 0.02}
	swlMis := swlFull
	swlMis.Mode = routing.Valiant
	cases := []struct {
		name    string
		cfg     Config
		pattern string
		rate    float64
		sp      SimParams
	}{
		{"mesh", mesh, "uniform", 0.8, tinySim()},
		{"sw-less-g1", swl1, "bit-reverse", 0.6, tinySim()},
		{"sw-based", swb, "uniform", 0.2, shortSim()},
		{"sw-less-full", swlFull, "worst-case", 0.1, shortSim()},
		{"sw-less-full-mis", swlMis, "uniform", 0.2, shortSim()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := measureEngineSim(t, tc.cfg, tc.pattern, tc.rate, netsim.EngineReference, tc.sp)
			act := measureEngineSim(t, tc.cfg, tc.pattern, tc.rate, netsim.EngineActiveSet, tc.sp)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
			if ref.Utilization != act.Utilization {
				t.Fatalf("utilization diverged: %v vs %v", ref.Utilization, act.Utilization)
			}
			if ref.Stats.DeliveredPkts == 0 {
				t.Fatal("no traffic delivered; the comparison is vacuous")
			}
		})
	}
}

// shortSim is the multi-W-group window: 1312 chips give plenty of packets.
func shortSim() SimParams {
	return SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
}

// TestEngineEquivalenceFaultedParallel checks cross-shard staging on a
// degraded network: multi-worker active-set runs must match the serial
// reference bit for bit when links and routers are disabled.
func TestEngineEquivalenceFaultedParallel(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			cfg := faultedTinyCfg(routing.Minimal)
			cfg.Workers = workers
			serial := cfg
			serial.Workers = 1
			ref := measureEngine(t, serial, "uniform", 0.8, netsim.EngineReference)
			act := measureEngine(t, cfg, "uniform", 0.8, netsim.EngineActiveSet)
			if !reflect.DeepEqual(ref.Stats, act.Stats) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref.Stats, act.Stats)
			}
			if ref.Stats.DeliveredPkts == 0 {
				t.Fatal("no traffic delivered; the comparison is vacuous")
			}
		})
	}
}

// TestEngineEquivalenceFaultedAfterReset checks the build-once/measure-many
// path on a degraded network: fault state must survive Reset, and a reset
// faulted system under the active-set engine must equal a fresh faulted
// build measured with the reference engine.
func TestEngineEquivalenceFaultedAfterReset(t *testing.T) {
	cfg := faultedTinyCfg(routing.Minimal)
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	wantR, wantL := sys.Net.DisabledCounts()
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySim()
	sp.Engine = netsim.EngineActiveSet
	// Saturate first so the reset has in-flight packets to discard.
	if _, err := sys.MeasureLoad(pat, 1.6, sp); err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	if gotR, gotL := sys.Net.DisabledCounts(); gotR != wantR || gotL != wantL {
		t.Fatalf("Reset changed the fault set: (%d, %d) → (%d, %d)", wantR, wantL, gotR, gotL)
	}
	act, err := sys.MeasureLoad(pat, 0.3, sp)
	if err != nil {
		t.Fatal(err)
	}
	ref := measureEngine(t, cfg, "uniform", 0.3, netsim.EngineReference)
	if !reflect.DeepEqual(ref.Stats, act.Stats) {
		t.Fatalf("stats diverged:\nreference (fresh): %+v\nactive (reset):    %+v", ref.Stats, act.Stats)
	}
}

// TestEngineEquivalenceAfterReset checks the build-once/measure-many path:
// a measurement on a reset system under the active-set engine equals a
// fresh build measured with the reference engine.
func TestEngineEquivalenceAfterReset(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 13}
	cfg.SLDF.G = 1
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sp := tinySim()
	sp.Engine = netsim.EngineActiveSet
	// Saturate first so the reset has in-flight packets and grown buffers
	// to rebuild from.
	if _, err := sys.MeasureLoad(pat, 1.6, sp); err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	act, err := sys.MeasureLoad(pat, 0.3, sp)
	if err != nil {
		t.Fatal(err)
	}
	ref := measureEngine(t, cfg, "uniform", 0.3, netsim.EngineReference)
	if !reflect.DeepEqual(ref.Stats, act.Stats) {
		t.Fatalf("stats diverged:\nreference (fresh): %+v\nactive (reset):    %+v", ref.Stats, act.Stats)
	}
}
