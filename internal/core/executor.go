package core

import (
	"encoding/json"
	"fmt"

	"sldf/internal/campaign"
	"sldf/internal/metrics"
)

// PointJobKind is the registered executor for declarative load-point jobs.
// The version suffix guards the payload schema: a future incompatible
// PointSpec registers a new kind instead of reinterpreting shipped specs.
const PointJobKind = "core/point@v1"

// PointSpec is the declarative description of one load-point measurement —
// the unit the coordinator/worker protocol ships. Everything is plain data:
// a worker daemon that imports core can reconstruct and run the identical
// measurement from the JSON alone.
type PointSpec struct {
	Cfg     Config    `json:"cfg"`
	Pattern string    `json:"pattern"` // a PatternFor name
	Rate    float64   `json:"rate"`
	Sim     SimParams `json:"sim"`
}

func init() {
	campaign.RegisterExecutor(PointJobKind, runPointSpec)
}

// runPointSpec executes one PointSpec on a campaign worker, reusing the
// worker's built system across specs that share a configuration (reset
// between points — bitwise identical to a fresh build).
func runPointSpec(w *campaign.Worker, payload json.RawMessage) (metrics.Point, error) {
	var ps PointSpec
	if err := json.Unmarshal(payload, &ps); err != nil {
		return metrics.Point{}, fmt.Errorf("core: decode point spec: %w", err)
	}
	sys, err := workerSystem(w, ps.Cfg.cacheID(), ps.Cfg)
	if err != nil {
		return metrics.Point{}, err
	}
	pat, err := sys.PatternFor(ps.Pattern)
	if err != nil {
		return metrics.Point{}, err
	}
	res, err := sys.MeasureLoad(pat, ps.Rate, ps.Sim)
	if err != nil {
		return metrics.Point{}, err
	}
	return res.Point, nil
}

// PointJob builds the declarative job spec for one load point. The spec's
// key is the point's content address (identical to the closure path's cache
// key), so caches and stores are shared between execution styles.
func PointJob(cfg Config, pattern string, rate float64, sp SimParams) (campaign.JobSpec, error) {
	payload, err := json.Marshal(PointSpec{Cfg: cfg, Pattern: pattern, Rate: rate, Sim: sp})
	if err != nil {
		return campaign.JobSpec{}, fmt.Errorf("core: encode point spec: %w", err)
	}
	return campaign.JobSpec{
		Key:     pointKey(cfg, pattern, rate, sp),
		Kind:    PointJobKind,
		Payload: payload,
	}, nil
}
