package core

import (
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// This file declares the paper's evaluation as registry data: each figure
// registers an ExperimentSpec whose plan enumerates configurations ×
// patterns × rate grids (see registry.go for the spec types and the one
// generic runner). The historical hand-written Fig10…Fig15 runner
// functions are gone; their exact grids live on in these declarations, and
// RunExperiment reproduces their output byte for byte.

// Scale selects experiment fidelity: ScaleQuick shrinks cycle counts, rate
// grids and (for Fig. 12) the large system so the whole campaign runs on a
// laptop/CI; ScalePaper uses Table IV windows and the paper's systems.
type Scale uint8

const (
	// ScaleQuick is CI-sized.
	ScaleQuick Scale = iota
	// ScalePaper is the paper's full configuration.
	ScalePaper
)

// Sim returns the measurement parameters for the scale.
func (s Scale) Sim() SimParams {
	if s == ScalePaper {
		return DefaultSim()
	}
	return SimParams{Warmup: 600, Measure: 1200, ExtraDrain: 600, PacketSize: 4}
}

// rates returns a figure's x-axis for the scale: the paper grid, or a
// thinned version for quick runs.
func (s Scale) rates(lo, hi, step float64) []float64 {
	if s == ScalePaper {
		return RateGrid(lo, hi, step)
	}
	return RateGrid(lo, hi, step*2)
}

const seed = 0x5EEDF00D

// Axis labels shared by every latency figure.
const (
	xLabelRate    = "Injection Rate (flits/cycle/chip)"
	yLabelLatency = "Average Latency (cycles)"
)

// latencyFigure assembles a FigureSpec with the standard axes.
func latencyFigure(name, title string, series ...SeriesSpec) FigureSpec {
	return FigureSpec{Name: name, Title: title,
		XLabel: xLabelRate, YLabel: yLabelLatency, Series: series}
}

// seriesOver builds one SeriesSpec per config over a shared pattern, grid
// and window (labels derive from the configs).
func seriesOver(cfgs []Config, pattern string, rates []float64, sp SimParams) []SeriesSpec {
	out := make([]SeriesSpec, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = SeriesSpec{Cfg: cfg, Pattern: pattern, Rates: rates, Sim: sp}
	}
	return out
}

func withMode(c Config, m routing.Mode) Config {
	c.Mode = m
	return c
}

// radix16Trio returns the standard small-system comparison set: switch-based
// baseline, switch-less, switch-less with doubled intra-C-group bandwidth.
// groups1 restricts the systems to a single W-group.
func radix16Trio(groups1 bool) (swb, swl, swl2 Config) {
	swb = Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swl = Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	if groups1 {
		swb.DF.G = 1
		swl.SLDF.G = 1
	}
	swl2 = swl
	swl2.IntraWidth = 2
	return swb, swl, swl2
}

func init() {
	RegisterExperiment(ExperimentSpec{Name: "10",
		Title: "Fig. 10 — intra-C-group and intra-W-group performance",
		Plan:  planFig10})
	RegisterExperiment(ExperimentSpec{Name: "11",
		Title: "Fig. 11 — global performance, radix-16 system (1312 chips)",
		Plan:  planFig11})
	RegisterExperiment(ExperimentSpec{Name: "12",
		Title: "Fig. 12 — scalability: the large system (radix-32; radix-24 stand-in at quick scale)",
		Plan:  planFig12})
	RegisterExperiment(ExperimentSpec{Name: "13",
		Title: "Fig. 13 — adversarial traffic, minimal vs non-minimal routing",
		Plan:  planFig13})
	RegisterExperiment(ExperimentSpec{Name: "14",
		Title: "Fig. 14 — ring-AllReduce traffic, uni- and bidirectional",
		Plan:  planFig14})
	RegisterExperiment(ExperimentSpec{Name: "resilience",
		Title: "Resilience — latency under increasing channel/router failures (no paper counterpart)",
		Plan:  planResilience})
	RegisterExperiment(ExperimentSpec{Name: "15",
		Title: "Fig. 15 — average energy per transmission (Sec. V-C pricing)",
		Plan:  planFig15})
	RegisterExperiment(ExperimentSpec{Name: "collective",
		Title: "Fig. 4 — collective makespans: ring vs 2D vs hierarchical AllReduce and primitives",
		Plan:  planCollective})
	RegisterExperiment(ExperimentSpec{Name: "churn",
		Title: "Churn — makespan cost of a chip death mid-AllReduce (no paper counterpart)",
		Plan:  planChurn})
}

// planFig10 reproduces Fig. 10: (a,b) intra-C-group switch vs 2D-mesh under
// uniform and bit-reverse; (c-f) intra-W-group SW-based vs SW-less vs
// SW-less-2B under uniform, bit-reverse, bit-shuffle and bit-transpose.
func planFig10(scale Scale) ExperimentPlan {
	sp := scale.Sim()
	var plan ExperimentPlan

	// (a, b): one C-group of 2×2 chiplets (4×4 NoC routers) vs one switch
	// with 4 chips.
	intraCfgs := []Config{
		{Kind: SingleSwitch, Terminals: 4, Seed: seed},
		{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: seed},
	}
	for _, f := range []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig10a", "Intra-C-group: Uniform", "uniform", 0.25, 3.5, 0.25},
		{"fig10b", "Intra-C-group: Bit-reverse", "bit-reverse", 0.2, 2.4, 0.2},
	} {
		plan.Figures = append(plan.Figures, latencyFigure(f.name, f.title,
			seriesOver(intraCfgs, f.pattern, scale.rates(f.lo, f.hi, f.step), sp)...))
	}

	// (c-f): one W-group (8 C-groups / 32 chips) in isolation.
	swb, swl, swl2 := radix16Trio(true)
	localCfgs := []Config{swb, swl, swl2}
	for _, f := range []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig10c", "Local: Uniform", "uniform", 0.2, 2.0, 0.2},
		{"fig10d", "Local: Bit-reverse", "bit-reverse", 0.2, 1.6, 0.2},
		{"fig10e", "Local: Bit-shuffle", "bit-shuffle", 0.05, 0.5, 0.05},
		{"fig10f", "Local: Bit-transpose", "bit-transpose", 0.2, 1.8, 0.2},
	} {
		plan.Figures = append(plan.Figures, latencyFigure(f.name, f.title,
			seriesOver(localCfgs, f.pattern, scale.rates(f.lo, f.hi, f.step), sp)...))
	}
	return plan
}

// planFig11 reproduces Fig. 11: global performance of the full radix-16
// system (41 W-groups, 1312 chips) under uniform and bit-reverse traffic.
func planFig11(scale Scale) ExperimentPlan {
	sp := scale.Sim()
	swb, swl, swl2 := radix16Trio(false)
	cfgs := []Config{swb, swl, swl2}
	var plan ExperimentPlan
	for _, f := range []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig11a", "Global: Uniform", "uniform", 0.1, 1.0, 0.1},
		{"fig11b", "Global: Bit-reverse", "bit-reverse", 0.1, 0.6, 0.1},
	} {
		plan.Figures = append(plan.Figures, latencyFigure(f.name, f.title,
			seriesOver(cfgs, f.pattern, scale.rates(f.lo, f.hi, f.step), sp)...))
	}
	return plan
}

// planFig12 reproduces Fig. 12 (scalability): the large system's local
// (intra-W-group traffic on the full network) and global performance.
// ScalePaper uses the radix-32 system (18560 chips); ScaleQuick a radix-24
// stand-in (6120 chips) with the same structure.
func planFig12(scale Scale) ExperimentPlan {
	sp := scale.Sim()
	dfP, slP := Radix24DF(), Radix24SLDF()
	if scale == ScalePaper {
		dfP, slP = Radix32DF(), Radix32SLDF()
	}
	swb := Config{Kind: SwitchDragonfly, DF: dfP, Seed: seed}
	swl := Config{Kind: SwitchlessDragonfly, SLDF: slP, Seed: seed}
	swl2 := swl
	swl2.IntraWidth = 2
	swl4 := swl
	swl4.IntraWidth = 4

	// The large systems dominate the campaign's runtime; quick scale uses a
	// deliberately coarse grid.
	localRates := scale.rates(0.25, 1.5, 0.25)
	globalRates := scale.rates(0.1, 0.8, 0.1)
	if scale == ScaleQuick {
		localRates = []float64{0.4, 0.9, 1.4}
		globalRates = []float64{0.2, 0.4, 0.6}
	}

	return ExperimentPlan{Figures: []FigureSpec{
		// (a) Local: traffic confined to W-group 0 of the full system.
		latencyFigure("fig12a", "Scalability: Local Uniform",
			seriesOver([]Config{swb, swl, swl2}, "local-uniform-wgroup", localRates, sp)...),
		// (b) Global uniform across the whole system.
		latencyFigure("fig12b", "Scalability: Global Uniform",
			seriesOver([]Config{swb, swl, swl2, swl4}, "uniform", globalRates, sp)...),
	}}
}

// planFig13 reproduces Fig. 13: adversarial traffic (hotspot over 4
// W-groups and the worst-case Wi→Wi+1 pattern) under minimal vs non-minimal
// routing on the radix-16 system.
func planFig13(scale Scale) ExperimentPlan {
	sp := scale.Sim()
	mk := func(mode routing.Mode, kind SystemKind, width int32) Config {
		c := Config{Kind: kind, Seed: seed, Mode: mode, IntraWidth: width}
		if kind == SwitchDragonfly {
			c.DF = Radix16DF()
		} else {
			c.SLDF = Radix16SLDF()
		}
		return c
	}
	cfgs := []Config{
		mk(routing.Minimal, SwitchDragonfly, 0),
		mk(routing.Minimal, SwitchlessDragonfly, 0),
		mk(routing.Valiant, SwitchDragonfly, 0),
		mk(routing.Valiant, SwitchlessDragonfly, 0),
		mk(routing.Valiant, SwitchlessDragonfly, 2),
	}
	var plan ExperimentPlan
	for _, f := range []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig13a", "Adversarial: Hotspot (4 W-groups)", "hotspot", 0.08, 0.8, 0.08},
		{"fig13b", "Adversarial: Worst-Case", "worst-case", 0.048, 0.48, 0.048},
	} {
		plan.Figures = append(plan.Figures, latencyFigure(f.name, f.title,
			seriesOver(cfgs, f.pattern, scale.rates(f.lo, f.hi, f.step), sp)...))
	}
	return plan
}

// planFig14 reproduces Fig. 14: ring-AllReduce traffic within a C-group (a)
// and within a W-group (b), with unidirectional and bidirectional rings.
func planFig14(scale Scale) ExperimentPlan {
	sp := scale.Sim()

	// (a) Intra-C-group: 4 chips on one switch vs the 4×4 C-group mesh.
	swbA := Config{Kind: SingleSwitch, Terminals: 4, Seed: seed}
	swlA := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: seed}
	ratesA := scale.rates(0.4, 4.0, 0.4)
	figA := latencyFigure("fig14a", "AllReduce: Intra-C-group",
		SeriesSpec{Cfg: swbA, Pattern: "ring", Label: "sw-based-uni", Rates: ratesA, Sim: sp},
		SeriesSpec{Cfg: swlA, Pattern: "ring", Label: "sw-less-uni", Rates: ratesA, Sim: sp},
		SeriesSpec{Cfg: swbA, Pattern: "ring-bidir", Label: "sw-based-bi", Rates: ratesA, Sim: sp},
		SeriesSpec{Cfg: swlA, Pattern: "ring-bidir", Label: "sw-less-bi", Rates: ratesA, Sim: sp},
	)

	// (b) Intra-W-group: single-W-group systems, ring over 32 chips.
	swbB, swlB, swlB2 := radix16Trio(true)
	ratesB := scale.rates(0.2, 2.0, 0.2)
	figB := latencyFigure("fig14b", "AllReduce: Intra-W-group",
		SeriesSpec{Cfg: swbB, Pattern: "ring", Label: "sw-based-uni", Rates: ratesB, Sim: sp},
		SeriesSpec{Cfg: swlB, Pattern: "ring", Label: "sw-less-uni", Rates: ratesB, Sim: sp},
		SeriesSpec{Cfg: swbB, Pattern: "ring-bidir", Label: "sw-based-bi", Rates: ratesB, Sim: sp},
		SeriesSpec{Cfg: swlB, Pattern: "ring-bidir", Label: "sw-less-bi", Rates: ratesB, Sim: sp},
		SeriesSpec{Cfg: swlB2, Pattern: "ring-bidir", Label: "sw-less-bi-2B", Rates: ratesB, Sim: sp},
	)
	return ExperimentPlan{Figures: []FigureSpec{figA, figB}}
}

// EnergyBar is one bar of Fig. 15; the container (and its CSV rendering)
// lives with the other result types in internal/metrics.
type EnergyBar = metrics.EnergyBar

// EnergyFigure is one panel of Fig. 15.
type EnergyFigure = metrics.EnergyFigure

// planFig15 reproduces Fig. 15: average energy per transmission for minimal
// and non-minimal routing on the small (radix-16) and large system,
// measured from delivered-packet hop traces under uniform traffic priced
// with the paper's simplified intra-C-group model (Sec. V-C).
func planFig15(scale Scale) ExperimentPlan {
	sp := scale.Sim()
	const rate = 0.3
	panel := func(name, title string, df, sl Config) EnergyFigureSpec {
		spec := EnergyFigureSpec{Name: name, Title: title}
		for _, c := range []struct {
			cfg   Config
			label string
		}{
			{df, "sw-based"},
			{sl, "sw-less"},
			{withMode(df, routing.Valiant), "sw-based-mis"},
			{withMode(sl, routing.Valiant), "sw-less-mis"},
		} {
			spec.Bars = append(spec.Bars, EnergyBarSpec{
				Cfg: c.cfg, Pattern: "uniform", Rate: rate, Label: c.label, Sim: sp})
		}
		return spec
	}

	dfL, slL := Radix24DF(), Radix24SLDF()
	if scale == ScalePaper {
		dfL, slL = Radix32DF(), Radix32SLDF()
	}
	return ExperimentPlan{Energy: []EnergyFigureSpec{
		panel("fig15a", "Energy: Small-Scale (radix-16)",
			Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed},
			Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}),
		panel("fig15b", "Energy: Large-Scale",
			Config{Kind: SwitchDragonfly, DF: dfL, Seed: seed},
			Config{Kind: SwitchlessDragonfly, SLDF: slL, Seed: seed}),
	}}
}

// planCollective measures collective schedules end to end (paper Fig. 4's
// latency argument as exact makespans, not steady-state rates): every
// schedule of the library on each of the four system kinds, plus a
// multi-W-group panel where the hierarchical two-level schedule's
// O(m + G) dependent steps beat the flat ring's O(mG).
func planCollective(scale Scale) ExperimentPlan {
	volume := int64(256)
	if scale == ScalePaper {
		volume = 4096
	}
	kinds := []Config{
		{Kind: SingleSwitch, Terminals: 16, Seed: seed},
		{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: seed},
	}
	swb, swl, _ := radix16Trio(true)
	kinds = append(kinds, swb, swl)
	main := CollectiveFigureSpec{Name: "figcollective",
		Title: "Collective makespans (single group / W-group)"}
	for _, cfg := range kinds {
		for _, sch := range CollectiveSchedules() {
			main.Cases = append(main.Cases, CollectiveCaseSpec{
				Cfg: cfg, Schedule: sch, Volume: volume})
		}
	}

	// Across W-groups: tiny balanced 3-W-group systems at quick scale; the
	// full radix-16 network (41 W-groups, 1312 chips) at paper scale, where
	// the flat ring's 2(N−1) dependent steps are exactly the pathology the
	// hierarchical schedule removes — and too slow to simulate, so only the
	// sub-linear schedules run there.
	wg := CollectiveFigureSpec{Name: "figcollectivewg",
		Title: "Collective makespans across W-groups"}
	if scale == ScalePaper {
		swbFull, swlFull, _ := radix16Trio(false)
		for _, cfg := range []Config{swbFull, swlFull} {
			for _, sch := range []string{"hierarchical", "2d"} {
				wg.Cases = append(wg.Cases, CollectiveCaseSpec{
					Cfg: cfg, Schedule: sch, Volume: volume})
			}
		}
	} else {
		swbTiny := Config{Kind: SwitchDragonfly,
			DF: topology.DragonflyParams{P: 2, A: 2, H: 1}, Seed: seed}
		swlTiny := Config{Kind: SwitchlessDragonfly,
			SLDF: topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 1, AB: 2, H: 1}, Seed: seed}
		for _, c := range []struct {
			cfg   Config
			label string
		}{{swbTiny, "sw-based-3wg"}, {swlTiny, "sw-less-3wg"}} {
			for _, sch := range []string{"ring", "hierarchical", "2d"} {
				wg.Cases = append(wg.Cases, CollectiveCaseSpec{
					Cfg: c.cfg, Schedule: sch, Label: c.label, Volume: volume})
			}
		}
	}
	return ExperimentPlan{Collectives: []CollectiveFigureSpec{main, wg}}
}

// planChurn is the live-churn experiment (no counterpart in the paper,
// which simulates static networks): the exact makespan cost of one chip
// dying mid-flight during a ring AllReduce, on each of the four system
// kinds, under both stranded-packet policies on the redundant topologies.
// Every case runs the collective twice — undisturbed and with the death
// injected before step KillStep, after which the survivors re-close the
// ring and finish — so the reported cost is exact, not modeled.
func planChurn(scale Scale) ExperimentPlan {
	volume := int64(128)
	if scale == ScalePaper {
		volume = 1024
	}
	armed := func(cfg Config, policy netsim.DropPolicy) Config {
		cfg.Churn.Armed = true
		cfg.Churn.Policy = policy
		return cfg
	}
	fig := ChurnFigureSpec{Name: "figchurn",
		Title: "Churn resilience: chip death mid-AllReduce"}
	swb, swl, _ := radix16Trio(true)
	for _, policy := range []netsim.DropPolicy{netsim.DropInFlight, netsim.RetrySource} {
		suffix := "-" + policy.String()
		for _, c := range []struct {
			cfg   Config
			label string
		}{
			{Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: seed}, "2d-mesh" + suffix},
			{swb, "sw-based" + suffix},
			{swl, "sw-less" + suffix},
		} {
			fig.Cases = append(fig.Cases, ChurnCaseSpec{
				Cfg: armed(c.cfg, policy), Schedule: "ring", Label: c.label,
				Volume: volume, KillChip: 1, KillStep: 2})
		}
	}
	// The single switch has no redundancy: only its terminals can die, and
	// a dead chip's packets are unroutable — measure the drop policy only.
	fig.Cases = append(fig.Cases, ChurnCaseSpec{
		Cfg:      armed(Config{Kind: SingleSwitch, Terminals: 16, Seed: seed}, netsim.DropInFlight),
		Schedule: "ring", Label: "switch-drop", Volume: volume, KillChip: 1, KillStep: 2})
	return ExperimentPlan{Churn: []ChurnFigureSpec{fig}}
}

// planResilience is the degraded-topology experiment (no counterpart in the
// paper, which simulates pristine networks): mean latency and accepted
// throughput of the radix-16 systems under uniform traffic as an
// increasing fraction of channels (and, scaled at 1:2, routers) fails.
// Curves: the switch-based baseline and the switch-less system with
// minimal routing, plus the switch-less system with Valiant misrouting.
//
// The zero-fraction point is the pristine network under its paper routing;
// faulted points use the fault-aware routing (C-group-graph shortest
// paths, up*/down* inside C-groups), so part of the first step's latency
// offset is the discipline change, not the faults. Each point averages the
// fault seeds' clean draws; partitioned draws are dropped (quick scale
// keeps fractions low enough that this is rare).
func planResilience(scale Scale) ExperimentPlan {
	fractions := []float64{0, 0.02, 0.05, 0.1, 0.15}
	seeds := []uint64{1, 2, 3}
	if scale == ScaleQuick {
		fractions = []float64{0, 0.05, 0.1}
		seeds = []uint64{1, 2}
	}
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	return ExperimentPlan{Resilience: []ResilienceFigureSpec{{
		Name:   "figres",
		Title:  "Resilience: Uniform @ 0.2 flits/cycle/chip",
		XLabel: "Channel Failure Fraction",
		YLabel: yLabelLatency,
		Opts: ResilienceOpts{
			Fractions:   fractions,
			RouterScale: 0.5,
			Seeds:       seeds,
			Pattern:     "uniform",
			Rate:        0.2,
			Sim:         scale.Sim(),
		},
		Series: []ResilienceSeriesSpec{
			{Cfg: swb, Label: "sw-based"},
			{Cfg: swl, Label: "sw-less"},
			{Cfg: withMode(swl, routing.Valiant), Label: "sw-less-mis"},
		},
	}}}
}
