package core

import (
	"fmt"
	"sync"

	"sldf/internal/metrics"
	"sldf/internal/routing"
	"sldf/internal/traffic"
)

// Scale selects experiment fidelity: ScaleQuick shrinks cycle counts, rate
// grids and (for Fig. 12) the large system so the whole campaign runs on a
// laptop/CI; ScalePaper uses Table IV windows and the paper's systems.
type Scale uint8

const (
	// ScaleQuick is CI-sized.
	ScaleQuick Scale = iota
	// ScalePaper is the paper's full configuration.
	ScalePaper
)

// Sim returns the measurement parameters for the scale.
func (s Scale) Sim() SimParams {
	if s == ScalePaper {
		return DefaultSim()
	}
	return SimParams{Warmup: 600, Measure: 1200, ExtraDrain: 600, PacketSize: 4}
}

// rates returns a figure's x-axis for the scale: the paper grid, or a
// thinned version for quick runs.
func (s Scale) rates(lo, hi, step float64) []float64 {
	if s == ScalePaper {
		return RateGrid(lo, hi, step)
	}
	return RateGrid(lo, hi, step*2)
}

const seed = 0x5EEDF00D

// Fig10 reproduces Fig. 10: (a,b) intra-C-group switch vs 2D-mesh under
// uniform and bit-reverse; (c-f) intra-W-group SW-based vs SW-less vs
// SW-less-2B under uniform, bit-reverse, bit-shuffle and bit-transpose.
func Fig10(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	sp := scale.Sim()
	var figs []metrics.Figure

	// (a, b): one C-group of 2×2 chiplets (4×4 NoC routers) vs one switch
	// with 4 chips.
	intra := []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig10a", "Intra-C-group: Uniform", "uniform", 0.25, 3.5, 0.25},
		{"fig10b", "Intra-C-group: Bit-reverse", "bit-reverse", 0.2, 2.4, 0.2},
	}
	for _, f := range intra {
		fig := metrics.Figure{Name: f.name, Title: f.title,
			XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
		for _, cfg := range []Config{
			{Kind: SingleSwitch, Terminals: 4, Seed: seed},
			{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: seed},
		} {
			s, err := SweepOpts(cfg, f.pattern, scale.rates(f.lo, f.hi, f.step), sp, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.name, err)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}

	// (c-f): one W-group (8 C-groups / 32 chips) in isolation.
	local := []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig10c", "Local: Uniform", "uniform", 0.2, 2.0, 0.2},
		{"fig10d", "Local: Bit-reverse", "bit-reverse", 0.2, 1.6, 0.2},
		{"fig10e", "Local: Bit-shuffle", "bit-shuffle", 0.05, 0.5, 0.05},
		{"fig10f", "Local: Bit-transpose", "bit-transpose", 0.2, 1.8, 0.2},
	}
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swb.DF.G = 1
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	swl.SLDF.G = 1
	swl2 := swl
	swl2.IntraWidth = 2
	for _, f := range local {
		fig := metrics.Figure{Name: f.name, Title: f.title,
			XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
		for _, cfg := range []Config{swb, swl, swl2} {
			s, err := SweepOpts(cfg, f.pattern, scale.rates(f.lo, f.hi, f.step), sp, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.name, err)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig11 reproduces Fig. 11: global performance of the full radix-16 system
// (41 W-groups, 1312 chips) under uniform and bit-reverse traffic.
func Fig11(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	sp := scale.Sim()
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	swl2 := swl
	swl2.IntraWidth = 2
	var figs []metrics.Figure
	cases := []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig11a", "Global: Uniform", "uniform", 0.1, 1.0, 0.1},
		{"fig11b", "Global: Bit-reverse", "bit-reverse", 0.1, 0.6, 0.1},
	}
	for _, f := range cases {
		fig := metrics.Figure{Name: f.name, Title: f.title,
			XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
		for _, cfg := range []Config{swb, swl, swl2} {
			s, err := SweepOpts(cfg, f.pattern, scale.rates(f.lo, f.hi, f.step), sp, opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.name, err)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig12 reproduces Fig. 12 (scalability): the large system's local
// (intra-W-group traffic on the full network) and global performance.
// ScalePaper uses the radix-32 system (18560 chips); ScaleQuick a radix-24
// stand-in (6120 chips) with the same structure.
func Fig12(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	sp := scale.Sim()
	var dfP = Radix24DF()
	var slP = Radix24SLDF()
	if scale == ScalePaper {
		dfP = Radix32DF()
		slP = Radix32SLDF()
	}
	swb := Config{Kind: SwitchDragonfly, DF: dfP, Seed: seed}
	swl := Config{Kind: SwitchlessDragonfly, SLDF: slP, Seed: seed}
	swl2 := swl
	swl2.IntraWidth = 2
	swl4 := swl
	swl4.IntraWidth = 4

	var figs []metrics.Figure

	// (a) Local: traffic confined to W-group 0 of the full system.
	// The large systems dominate the campaign's runtime; quick scale uses a
	// deliberately coarse grid.
	localRates := scale.rates(0.25, 1.5, 0.25)
	globalRates := scale.rates(0.1, 0.8, 0.1)
	if scale == ScaleQuick {
		localRates = []float64{0.4, 0.9, 1.4}
		globalRates = []float64{0.2, 0.4, 0.6}
	}

	figA := metrics.Figure{Name: "fig12a", Title: "Scalability: Local Uniform",
		XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
	for _, cfg := range []Config{swb, swl, swl2} {
		mk := func(sys *System) traffic.Pattern {
			return traffic.Uniform{N: int32(sys.ChipsPerGroup)}
		}
		s, err := SweepScopedOpts(cfg, mk, "", "local-uniform-wgroup", localRates, sp, opts)
		if err != nil {
			return nil, fmt.Errorf("fig12a: %w", err)
		}
		figA.Series = append(figA.Series, s)
	}
	figs = append(figs, figA)

	// (b) Global uniform across the whole system.
	figB := metrics.Figure{Name: "fig12b", Title: "Scalability: Global Uniform",
		XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
	for _, cfg := range []Config{swb, swl, swl2, swl4} {
		s, err := SweepOpts(cfg, "uniform", globalRates, sp, opts)
		if err != nil {
			return nil, fmt.Errorf("fig12b: %w", err)
		}
		figB.Series = append(figB.Series, s)
	}
	figs = append(figs, figB)
	return figs, nil
}

// Fig13 reproduces Fig. 13: adversarial traffic (hotspot over 4 W-groups
// and the worst-case Wi→Wi+1 pattern) under minimal vs non-minimal routing
// on the radix-16 system.
func Fig13(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	sp := scale.Sim()
	mk := func(mode routing.Mode, kind SystemKind, width int32) Config {
		c := Config{Kind: kind, Seed: seed, Mode: mode, IntraWidth: width}
		if kind == SwitchDragonfly {
			c.DF = Radix16DF()
		} else {
			c.SLDF = Radix16SLDF()
		}
		return c
	}
	cfgs := []Config{
		mk(routing.Minimal, SwitchDragonfly, 0),
		mk(routing.Minimal, SwitchlessDragonfly, 0),
		mk(routing.Valiant, SwitchDragonfly, 0),
		mk(routing.Valiant, SwitchlessDragonfly, 0),
		mk(routing.Valiant, SwitchlessDragonfly, 2),
	}
	var figs []metrics.Figure
	cases := []struct {
		name, title, pattern string
		lo, hi, step         float64
	}{
		{"fig13a", "Adversarial: Hotspot (4 W-groups)", "hotspot", 0.08, 0.8, 0.08},
		{"fig13b", "Adversarial: Worst-Case", "worst-case", 0.048, 0.48, 0.048},
	}
	for _, f := range cases {
		fig := metrics.Figure{Name: f.name, Title: f.title,
			XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
		for _, cfg := range cfgs {
			s, err := SweepOpts(cfg, f.pattern, scale.rates(f.lo, f.hi, f.step), sp, opts)
			if err != nil {
				return nil, fmt.Errorf("%s(%s): %w", f.name, f.pattern, err)
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig14 reproduces Fig. 14: ring-AllReduce traffic within a C-group (a) and
// within a W-group (b), with unidirectional and bidirectional rings.
func Fig14(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	sp := scale.Sim()
	var figs []metrics.Figure

	// (a) Intra-C-group: 4 chips on one switch vs the 4×4 C-group mesh.
	figA := metrics.Figure{Name: "fig14a", Title: "AllReduce: Intra-C-group",
		XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
	swbA := Config{Kind: SingleSwitch, Terminals: 4, Seed: seed}
	swlA := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: seed}
	for _, c := range []struct {
		cfg     Config
		pattern string
		label   string
	}{
		{swbA, "ring", "sw-based-uni"},
		{swlA, "ring", "sw-less-uni"},
		{swbA, "ring-bidir", "sw-based-bi"},
		{swlA, "ring-bidir", "sw-less-bi"},
	} {
		s, err := SweepOpts(c.cfg, c.pattern, scale.rates(0.4, 4.0, 0.4), sp, opts)
		if err != nil {
			return nil, fmt.Errorf("fig14a: %w", err)
		}
		s.Label = c.label
		figA.Series = append(figA.Series, s)
	}
	figs = append(figs, figA)

	// (b) Intra-W-group: single-W-group systems, ring over 32 chips.
	figB := metrics.Figure{Name: "fig14b", Title: "AllReduce: Intra-W-group",
		XLabel: "Injection Rate (flits/cycle/chip)", YLabel: "Average Latency (cycles)"}
	swbB := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swbB.DF.G = 1
	swlB := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	swlB.SLDF.G = 1
	swlB2 := swlB
	swlB2.IntraWidth = 2
	for _, c := range []struct {
		cfg     Config
		pattern string
		label   string
	}{
		{swbB, "ring", "sw-based-uni"},
		{swlB, "ring", "sw-less-uni"},
		{swbB, "ring-bidir", "sw-based-bi"},
		{swlB, "ring-bidir", "sw-less-bi"},
		{swlB2, "ring-bidir", "sw-less-bi-2B"},
	} {
		s, err := SweepOpts(c.cfg, c.pattern, scale.rates(0.2, 2.0, 0.2), sp, opts)
		if err != nil {
			return nil, fmt.Errorf("fig14b: %w", err)
		}
		s.Label = c.label
		figB.Series = append(figB.Series, s)
	}
	figs = append(figs, figB)
	return figs, nil
}

// EnergyBar is one bar of Fig. 15: average transmission energy split into
// intra- and inter-C-group components.
type EnergyBar struct {
	Label string
	Intra float64 // pJ/bit inside C-groups (NoC + short-reach)
	Inter float64 // pJ/bit on long-reach cables
}

// Total returns the bar height.
func (b EnergyBar) Total() float64 { return b.Intra + b.Inter }

// EnergyFigure is one panel of Fig. 15.
type EnergyFigure struct {
	Name  string
	Title string
	Bars  []EnergyBar
}

// Fig15 reproduces Fig. 15: average energy per transmission for minimal and
// non-minimal routing on the small (radix-16) and large system, measured
// from delivered-packet hop traces under uniform traffic priced with the
// paper's simplified intra-C-group model (Sec. V-C).
func Fig15(scale Scale, opts RunOptions) ([]EnergyFigure, error) {
	sp := scale.Sim()
	rate := 0.3

	// Energy bars need the raw hop mix (Result.Stats), but campaign.Job
	// produces metrics.Point results, so Fig. 15 fans its independent
	// bars out over opts.Jobs goroutines directly. Each bar builds its
	// own system, so results are identical for any job count. If another
	// experiment ever needs a non-Point fan-out, generalize the campaign
	// scheduler's result type instead of copying this block.
	run := func(name, title string, df Config, sl Config) (EnergyFigure, error) {
		fig := EnergyFigure{Name: name, Title: title}
		cases := []struct {
			cfg   Config
			label string
		}{
			{df, "sw-based"},
			{sl, "sw-less"},
			{withMode(df, routing.Valiant), "sw-based-mis"},
			{withMode(sl, routing.Valiant), "sw-less-mis"},
		}
		bars := make([]EnergyBar, len(cases))
		errs := make([]error, len(cases))
		jobs := opts.Jobs
		if jobs < 1 {
			jobs = 1
		}
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i, c := range cases {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				sys, err := Build(c.cfg)
				if err != nil {
					errs[i] = err
					return
				}
				defer sys.Close()
				pat, err := sys.PatternFor("uniform")
				if err != nil {
					errs[i] = err
					return
				}
				res, err := sys.MeasureLoad(pat, rate, sp)
				if err != nil {
					errs[i] = err
					return
				}
				st := res.Stats
				// Simplified pricing: every intra-C-group hop ≈ 1 pJ/bit.
				intra := st.MeanHops(0)*1 + st.MeanHops(1)*1
				inter := st.MeanHops(2)*20 + st.MeanHops(3)*20
				bars[i] = EnergyBar{Label: c.label, Intra: intra, Inter: inter}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fig, err
			}
		}
		fig.Bars = bars
		return fig, nil
	}

	small, err := run("fig15a", "Energy: Small-Scale (radix-16)",
		Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed},
		Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed})
	if err != nil {
		return nil, err
	}
	dfL, slL := Radix24DF(), Radix24SLDF()
	if scale == ScalePaper {
		dfL, slL = Radix32DF(), Radix32SLDF()
	}
	large, err := run("fig15b", "Energy: Large-Scale",
		Config{Kind: SwitchDragonfly, DF: dfL, Seed: seed},
		Config{Kind: SwitchlessDragonfly, SLDF: slL, Seed: seed})
	if err != nil {
		return nil, err
	}
	return []EnergyFigure{small, large}, nil
}

func withMode(c Config, m routing.Mode) Config {
	c.Mode = m
	return c
}

// FigResilience is the degraded-topology experiment (no counterpart in the
// paper, which simulates pristine networks): mean latency and accepted
// throughput of the radix-16 systems under uniform traffic as an
// increasing fraction of channels (and, scaled at 1:2, routers) fails.
// Curves: the switch-based baseline and the switch-less system with
// minimal routing, plus the switch-less system with Valiant misrouting.
//
// The zero-fraction point is the pristine network under its paper routing;
// faulted points use the fault-aware routing (C-group-graph shortest
// paths, up*/down* inside C-groups), so part of the first step's latency
// offset is the discipline change, not the faults. Each point averages the
// fault seeds' clean draws; partitioned draws are dropped (quick scale
// keeps fractions low enough that this is rare).
func FigResilience(scale Scale, opts RunOptions) ([]metrics.Figure, error) {
	fractions := []float64{0, 0.02, 0.05, 0.1, 0.15}
	seeds := []uint64{1, 2, 3}
	if scale == ScaleQuick {
		fractions = []float64{0, 0.05, 0.1}
		seeds = []uint64{1, 2}
	}
	ropts := ResilienceOpts{
		Fractions:   fractions,
		RouterScale: 0.5,
		Seeds:       seeds,
		Pattern:     "uniform",
		Rate:        0.2,
		Sim:         scale.Sim(),
		Run:         opts,
	}
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: seed}
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: seed}
	swlMis := withMode(swl, routing.Valiant)

	fig := metrics.Figure{Name: "figres", Title: "Resilience: Uniform @ 0.2 flits/cycle/chip",
		XLabel: "Channel Failure Fraction", YLabel: "Average Latency (cycles)"}
	for _, c := range []struct {
		cfg   Config
		label string
	}{
		{swb, "sw-based"},
		{swl, "sw-less"},
		{swlMis, "sw-less-mis"},
	} {
		rs, err := ResilienceSweep(c.cfg, ropts)
		if err != nil {
			return nil, fmt.Errorf("figres (%s): %w", c.label, err)
		}
		s := rs.Series()
		s.Label = c.label
		fig.Series = append(fig.Series, s)
	}
	return []metrics.Figure{fig}, nil
}
