package core

import (
	"strings"
	"testing"
)

// The full experiment campaign is exercised by cmd/sldffigures; these tests
// run the cheap registry experiments end-to-end at quick scale and assert
// the paper's qualitative results on the produced series.

func TestFig10Runner(t *testing.T) {
	res, err := RunExperimentByName("10", ScaleQuick, RunOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures
	if len(figs) != 6 {
		t.Fatalf("Fig10 produced %d sub-figures, want 6", len(figs))
	}
	byName := map[string][]float64{}
	for _, f := range figs {
		if len(f.Series) < 2 {
			t.Fatalf("%s has %d series", f.Name, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s/%s empty", f.Name, s.Label)
			}
			byName[f.Name+"/"+s.Label] = []float64{s.Saturation(3), s.MaxThroughput()}
		}
	}
	// Fig. 10(a): the mesh C-group clearly outperforms the switch.
	if byName["fig10a/2d-mesh"][1] < 2*byName["fig10a/switch"][1] {
		t.Fatalf("fig10a: mesh %v vs switch %v", byName["fig10a/2d-mesh"], byName["fig10a/switch"])
	}
	// Fig. 10(c): SW-less-2B accepts more than SW-based.
	if byName["fig10c/sw-less-2B"][1] <= byName["fig10c/sw-based"][1] {
		t.Fatalf("fig10c: 2B %v vs sw-based %v", byName["fig10c/sw-less-2B"], byName["fig10c/sw-based"])
	}
	// Fig. 10(e): bit-shuffle is bounded by inter-C-group links; 2B gives
	// no meaningful advantage over SW-based (within 15%).
	if byName["fig10e/sw-less-2B"][1] > 1.15*byName["fig10e/sw-based"][1] {
		t.Fatalf("fig10e: unexpected 2B advantage: %v vs %v",
			byName["fig10e/sw-less-2B"], byName["fig10e/sw-based"])
	}
}

func TestFig14Runner(t *testing.T) {
	res, err := RunExperimentByName("14", ScaleQuick, RunOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures
	if len(figs) != 2 {
		t.Fatalf("Fig14 produced %d figures", len(figs))
	}
	a := figs[0]
	if a.Name != "fig14a" || len(a.Series) != 4 {
		t.Fatalf("fig14a malformed: %s/%d", a.Name, len(a.Series))
	}
	get := func(label string) float64 {
		for _, s := range a.Series {
			if s.Label == label {
				return s.MaxThroughput()
			}
		}
		t.Fatalf("missing series %s", label)
		return 0
	}
	// Paper Fig. 14(a): sw-based capped at ~1 regardless of direction;
	// sw-less ~2 (uni) and higher still (bi).
	if get("sw-less-uni") < 1.5*get("sw-based-uni") {
		t.Fatalf("uni: sw-less %v vs sw-based %v", get("sw-less-uni"), get("sw-based-uni"))
	}
	if get("sw-less-bi") < get("sw-less-uni") {
		t.Fatalf("bi %v below uni %v on sw-less", get("sw-less-bi"), get("sw-less-uni"))
	}
	b := figs[1]
	if b.Name != "fig14b" || len(b.Series) != 5 {
		t.Fatalf("fig14b malformed: %s/%d", b.Name, len(b.Series))
	}
}

func TestGridHelpers(t *testing.T) {
	g := RateGrid(0.1, 0.5, 0.1)
	if len(g) != 5 {
		t.Fatalf("grid = %v", g)
	}
	if got := ScaleQuick.rates(0.1, 1.0, 0.1); len(got) != 5 {
		t.Fatalf("quick rates = %v", got)
	}
	if got := ScalePaper.rates(0.1, 1.0, 0.1); len(got) != 10 {
		t.Fatalf("paper rates = %v", got)
	}
}

func TestSystemLabelsUnique(t *testing.T) {
	// Every distinct configuration used by the experiment runners must
	// produce a distinct label (they become CSV column names).
	labels := map[string]bool{}
	for _, cfg := range []Config{
		{Kind: SwitchDragonfly, DF: Radix16DF()},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF()},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), IntraWidth: 2},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), IntraWidth: 4},
	} {
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if labels[sys.Label] {
			t.Fatalf("duplicate label %q", sys.Label)
		}
		labels[sys.Label] = true
		sys.Close()
	}
}

func TestEnergyBarStructure(t *testing.T) {
	b := EnergyBar{Label: "x", Intra: 2.5, Inter: 40}
	if b.Total() != 42.5 {
		t.Fatalf("total %v", b.Total())
	}
}

func TestRingPatternSnakeOnMesh(t *testing.T) {
	sys, err := Build(Config{Kind: MeshCGroup, ChipletDim: 3, NoCDim: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat := sys.ringPattern(false)
	if !strings.Contains(pat.Name(), "ring") {
		t.Fatalf("pattern name %q", pat.Name())
	}
	// Walk the ring from chip 0: it must visit all 9 chips and return.
	rng := sys.Net.Router(0).RNG
	cur := int32(0)
	seen := map[int32]bool{0: true}
	for i := 0; i < 9; i++ {
		cur = pat.Dest(cur, &rng)
		if cur < 0 || cur >= 9 {
			t.Fatalf("ring left chip range: %d", cur)
		}
		seen[cur] = true
	}
	if len(seen) != 9 || cur != 0 {
		t.Fatalf("ring did not cover all chips and close: %v end=%d", seen, cur)
	}
}
