package core

import (
	"fmt"

	"sldf/internal/energy"
	"sldf/internal/engine"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/traffic"
)

// Flow-engine measurement path: MeasureLoad dispatches here when
// SimParams.Engine is netsim.EngineFlow. The traffic pattern is discretized
// into a sampled chip-to-chip demand matrix (deterministic per-chip RNG
// streams, so cached points reproduce exactly) and handed to the network's
// analytical solver; the Result surface is identical to the cycle path's.

// flowDemands samples the traffic matrix: every chip that still has a
// terminal draws FlowSampleCount destinations, each carrying an equal share
// of the chip's offered rate. The pattern is re-wrapped against the current
// alive set on every call, so churn segments re-filter dead chips.
func (s *System) flowDemands(pat traffic.Pattern, rate float64) []netsim.FlowDemand {
	fpat := traffic.FilterDead(pat, s.aliveChips)
	samples := netsim.FlowSampleCount(s.Chips)
	per := rate / float64(samples)
	// The demand buffer is retained on the System so steady-state sweep
	// points (and churn re-segments) allocate nothing here.
	if cap(s.flowDemandBuf) < s.Chips*samples {
		s.flowDemandBuf = make([]netsim.FlowDemand, 0, s.Chips*samples)
	}
	demands := s.flowDemandBuf[:0]
	// One RNG variable reused across chips: &rng escapes through the
	// Pattern interface, so a loop-local would heap-allocate per chip.
	var rng engine.RNG
	for c := int32(0); int(c) < s.Chips; c++ {
		if len(s.Net.ChipNodes[c]) == 0 {
			continue
		}
		rng = netsim.FlowDemandRNG(s.Cfg.Seed, c)
		for i := 0; i < samples; i++ {
			dst := fpat.Dest(c, &rng)
			if dst < 0 {
				continue
			}
			demands = append(demands, netsim.FlowDemand{Src: c, Dst: dst, Rate: per})
		}
	}
	s.flowDemandBuf = demands
	return demands
}

// measureLoadFlow is the EngineFlow counterpart of MeasureLoad's
// run/measure/drain sequence: one analytical solve (segmented across any
// armed churn timeline), then the same Snapshot/utilization/energy surface.
func (s *System) measureLoadFlow(pat traffic.Pattern, rate float64, sp SimParams) (Result, error) {
	err := s.Net.SolveFlow(netsim.FlowOptions{
		Demands:       func() []netsim.FlowDemand { return s.flowDemands(pat, rate) },
		PacketSize:    sp.PacketSize,
		Warmup:        sp.Warmup,
		Measure:       sp.Measure,
		Workers:       sp.FlowWorkers,
		Cold:          sp.FlowCold,
		SeedThrottles: sp.FlowSeedThrottles,
	})
	if err != nil {
		return Result{}, fmt.Errorf("%s flow solve: %w", s.Label, err)
	}
	st := s.Net.Snapshot()
	byClass, hottest := s.Net.LinkUtilization(8)
	return Result{
		Rate: rate,
		Point: metrics.Point{
			Rate:       rate,
			Latency:    st.MeanLatency(),
			P50:        float64(st.Latency.Quantile(0.5)),
			P99:        float64(st.Latency.Quantile(0.99)),
			Throughput: st.Throughput(),
			Dropped:    st.DroppedPkts,
			Retried:    st.RetriedPkts,
			Refused:    st.RefusedPkts,
		},
		Stats:       st,
		Energy:      energy.FromStats(st, energy.TableII()),
		Utilization: byClass,
		Hottest:     hottest,
	}, nil
}
