package core

import (
	"reflect"
	"strings"
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// measureFlowSeries measures a rate grid on ONE built system (Reset between
// points — the configuration every sweep worker runs), returning the full
// per-point results and the network's cumulative solver statistics. This is
// the warm path: the second and later points should be served from the
// route-trace cache.
func measureFlowSeries(t *testing.T, cfg Config, pattern string, rates []float64, sp SimParams) ([]Result, netsim.FlowStats) {
	t.Helper()
	sys, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor(pattern)
	if err != nil {
		t.Fatalf("pattern: %v", err)
	}
	sp.Engine = netsim.EngineFlow
	out := make([]Result, 0, len(rates))
	for _, rate := range rates {
		res, err := sys.MeasureLoad(pat, rate, sp)
		if err != nil {
			t.Fatalf("measure @%.2f: %v", rate, err)
		}
		out = append(out, res)
		sys.Reset()
	}
	return out, sys.Net.FlowSolverStats()
}

// flowEquivalenceKinds is the property-test grid: all four system kinds plus
// a churn-timeline variant (mid-window link deaths segment every solve).
func flowEquivalenceKinds() []struct {
	name string
	cfg  Config
} {
	kinds := collectiveKinds()
	churn := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 5, Workers: 1}
	churn.Churn = topology.FaultTimeline{
		Armed: true, Seed: 3, LinkChurn: 0.1, Start: 150, End: 700,
		Policy: netsim.DropInFlight,
	}
	return append(kinds, struct {
		name string
		cfg  Config
	}{"mesh-churn", churn})
}

// TestFlowCacheEquivalence is the tentpole's correctness gate: on every
// system kind (switch, mesh, sw-based, sw-less, and a live-churn timeline),
// a warm-cache sweep and a parallel warm sweep must be bitwise identical —
// full Stats surface, not summaries — to a forced-cold sweep that re-traces
// every route at every point.
func TestFlowCacheEquivalence(t *testing.T) {
	rates := []float64{0.2, 0.4, 0.6}
	for _, k := range flowEquivalenceKinds() {
		t.Run(k.name, func(t *testing.T) {
			sp := QuickSim()

			cold := sp
			cold.FlowCold = true
			want, _ := measureFlowSeries(t, k.cfg, "uniform", rates, cold)

			warm, ws := measureFlowSeries(t, k.cfg, "uniform", rates, sp)
			// Churn-armed systems rebuild routing (SetRoute) at every event
			// batch and on Reset, discarding the cache each time by design —
			// only churn-free sweeps are required to amortize.
			if ws.CacheHits == 0 && k.cfg.Churn.Empty() {
				t.Fatal("warm sweep never hit the route-trace cache")
			}

			par := sp
			par.FlowWorkers = 4
			parallel, _ := measureFlowSeries(t, k.cfg, "uniform", rates, par)

			for i, rate := range rates {
				if !reflect.DeepEqual(want[i], warm[i]) {
					t.Errorf("@%.2f: warm-cache result diverged from cold\ncold: %+v\nwarm: %+v",
						rate, want[i].Stats, warm[i].Stats)
				}
				if !reflect.DeepEqual(want[i], parallel[i]) {
					t.Errorf("@%.2f: parallel result diverged from cold serial\ncold:     %+v\nparallel: %+v",
						rate, want[i].Stats, parallel[i].Stats)
				}
			}
		})
	}
}

// TestFlowWarmSweepCacheEffect pins that the warm path actually amortizes:
// on a churn-free system, points after the first re-trace nothing — every
// route of the whole sweep is traced during point one.
func TestFlowWarmSweepCacheEffect(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7, Workers: 1}
	cfg.SLDF.G = 1
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sp := QuickSim()
	sp.Engine = netsim.EngineFlow
	var tracesAfterFirst int64
	for i, rate := range []float64{0.2, 0.4, 0.6} {
		if _, err := sys.MeasureLoad(pat, rate, sp); err != nil {
			t.Fatalf("measure @%.2f: %v", rate, err)
		}
		sys.Reset()
		fs := sys.Net.FlowSolverStats()
		if i == 0 {
			tracesAfterFirst = fs.Traces
			if tracesAfterFirst == 0 {
				t.Fatal("first point traced nothing")
			}
		} else if fs.Traces != tracesAfterFirst {
			t.Fatalf("point %d re-traced: %d traces total, %d after point one",
				i+1, fs.Traces, tracesAfterFirst)
		} else if fs.CacheHits == 0 {
			t.Fatalf("point %d served no flows from the cache", i+1)
		}
	}
}

// TestFlowSeedThrottles covers the opt-in approximate warm start: it must
// run, deliver a sane point, and partition the on-disk point cache (seeded
// results may differ from cold ones, so they must never share a key).
func TestFlowSeedThrottles(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7, Workers: 1}
	cfg.SLDF.G = 1
	sp := QuickSim()
	sp.FlowSeedThrottles = true
	res, _ := measureFlowSeries(t, cfg, "uniform", []float64{0.3, 0.4}, sp)
	for _, r := range res {
		if r.Stats.DeliveredPkts == 0 || r.Point.Latency <= 0 {
			t.Fatalf("vacuous seeded point %+v", r.Point)
		}
	}
	sp.Engine = netsim.EngineFlow
	seeded := pointKey(cfg, "uniform", 0.4, sp)
	sp.FlowSeedThrottles = false
	if plain := pointKey(cfg, "uniform", 0.4, sp); seeded == plain {
		t.Fatal("seeded and unseeded points share a cache key")
	}
	if !strings.Contains(seeded, "flowseed") {
		t.Fatalf("seeded key %q lacks the flowseed marker", seeded)
	}
	// FlowWorkers and FlowCold are result-neutral and must NOT partition.
	par := sp
	par.FlowWorkers, par.FlowCold = 8, true
	if pointKey(cfg, "uniform", 0.4, par) != pointKey(cfg, "uniform", 0.4, sp) {
		t.Fatal("execution-only flow knobs changed the point cache key")
	}
}
