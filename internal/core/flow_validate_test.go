package core

import (
	"math"
	"reflect"
	"testing"

	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// The flow engine's pinned accuracy bounds against the cycle engine over
// the Fig. 10 grid (all four system kinds, quick windows), measured over
// the stable region only — points where BOTH engines stay below
// flowStableFactor × their own zero-load latency. The filter is symmetric
// because the engines diverge at criticality by construction, not by bug:
// at offered ≈ capacity the steady-state queueing model correctly reports
// near-unbounded latency while the open-loop cycle engine reports however
// much queue its finite window could grow. Saturation POSITION still
// cross-checks (a point one engine calls saturated and the other calls
// deeply stable would fail the mean bounds through its neighbours); only
// latency MAGNITUDE past the knee is uncomparable. The bounds are
// empirical: mean errors observed at roughly half these values, pinned
// with headroom so they gate regressions rather than noise.
const (
	// flowStableFactor is the repo's standard saturation-knee criterion
	// (metrics.Series.Saturation uses the same factor 3).
	flowStableFactor = 3.0
	// flowMeanLatencyTol bounds the mean relative latency error.
	flowMeanLatencyTol = 0.20
	// flowMeanThroughputTol bounds the mean relative accepted-throughput
	// error. Throughput is the stronger invariant: in the stable region
	// both engines must accept what is offered.
	flowMeanThroughputTol = 0.05
	// flowPointLatencyTol bounds every individual point's relative latency
	// error, so a single wild point cannot hide inside a good mean.
	flowPointLatencyTol = 0.60
)

// TestFlowEngineValidation is the flow engine's accuracy gate: both engines
// run the registered Fig. 10 grid (switch, 2d-mesh, sw-based and sw-less —
// all four system kinds — under uniform and the bit-permutation patterns),
// and the flow engine's stable-region results must stay within the pinned
// mean relative error bounds above. Cross-validation is documented-bounds,
// not bitwise: the analytical model approximates the cycle engines, it
// never replays them.
func TestFlowEngineValidation(t *testing.T) {
	spec, ok := LookupExperiment("10")
	if !ok {
		t.Fatal("experiment 10 not registered")
	}
	plan := spec.Plan(ScaleQuick)
	if len(plan.Figures) == 0 {
		t.Fatal("fig10 plan has no figures")
	}

	var latErrSum, thrErrSum float64
	var compared int
	kinds := map[SystemKind]int{}
	for _, fs := range plan.Figures {
		for _, ss := range fs.Series {
			cycZero, flowZero := -1.0, -1.0
			for _, rate := range ss.Rates {
				cyc := measureEngineSim(t, ss.Cfg, ss.Pattern, rate, netsim.EngineActiveSet, ss.Sim)
				flow := measureEngineSim(t, ss.Cfg, ss.Pattern, rate, netsim.EngineFlow, ss.Sim)
				if cycZero < 0 {
					cycZero, flowZero = cyc.Point.Latency, flow.Point.Latency
				}
				if cyc.Point.Latency > flowStableFactor*cycZero ||
					flow.Point.Latency > flowStableFactor*flowZero {
					continue // saturated for at least one engine: no steady state to validate
				}
				if flow.Stats.DeliveredPkts == 0 {
					t.Errorf("%s %s %s @%.2f: flow solve delivered nothing",
						fs.Name, ss.Cfg.Label(), ss.Pattern, rate)
					continue
				}
				latErr := math.Abs(flow.Point.Latency-cyc.Point.Latency) / cyc.Point.Latency
				thrErr := math.Abs(flow.Point.Throughput-cyc.Point.Throughput) /
					math.Max(cyc.Point.Throughput, 1e-9)
				if latErr > flowPointLatencyTol {
					t.Errorf("%s %s %s @%.2f: latency error %.0f%% (flow %.1f vs cycle %.1f) exceeds the per-point bound %.0f%%",
						fs.Name, ss.Cfg.Label(), ss.Pattern, rate,
						100*latErr, flow.Point.Latency, cyc.Point.Latency, 100*flowPointLatencyTol)
				}
				latErrSum += latErr
				thrErrSum += thrErr
				compared++
				kinds[ss.Cfg.Kind]++
			}
		}
	}
	if compared == 0 {
		t.Fatal("no stable-region points to compare")
	}
	for _, k := range []SystemKind{SingleSwitch, MeshCGroup, SwitchDragonfly, SwitchlessDragonfly} {
		if kinds[k] == 0 {
			t.Errorf("system kind %s contributed no compared points", k)
		}
	}
	meanLat := latErrSum / float64(compared)
	meanThr := thrErrSum / float64(compared)
	t.Logf("flow vs cycle over fig10: %d stable points, mean latency error %.1f%%, mean throughput error %.2f%%",
		compared, 100*meanLat, 100*meanThr)
	if meanLat > flowMeanLatencyTol {
		t.Errorf("mean relative latency error %.1f%% exceeds the pinned bound %.0f%%",
			100*meanLat, 100*flowMeanLatencyTol)
	}
	if meanThr > flowMeanThroughputTol {
		t.Errorf("mean relative throughput error %.2f%% exceeds the pinned bound %.0f%%",
			100*meanThr, 100*flowMeanThroughputTol)
	}
}

// TestFlowCollective checks the collective seam under EngineFlow: every
// schedule on every system kind yields a finite positive makespan with
// per-step cycles and a packet count, cross-checked loosely (same order of
// magnitude) against the cycle engine. Analytical per-step solves cannot
// be bitwise against a drained cycle sim — the bound here is coarse by
// design; the tight accuracy gate is TestFlowEngineValidation.
func TestFlowCollective(t *testing.T) {
	for _, k := range collectiveKinds() {
		for _, sch := range CollectiveSchedules() {
			t.Run(k.name+"/"+sch, func(t *testing.T) {
				measure := func(eng netsim.EngineKind) metrics.Point {
					sys, err := Build(k.cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer sys.Close()
					pt, err := sys.MeasureCollective(CollectiveSpec{
						Cfg: k.cfg, Schedule: sch, Volume: 96, Engine: eng})
					if err != nil {
						t.Fatal(err)
					}
					return pt
				}
				flow := measure(netsim.EngineFlow)
				cyc := measure(netsim.EngineActiveSet)
				if flow.Latency <= 0 || len(flow.Aux) < 2 || flow.Aux[0] <= 0 {
					t.Fatalf("vacuous flow measurement %+v", flow)
				}
				if ratio := flow.Latency / cyc.Latency; ratio < 0.2 || ratio > 5 {
					t.Errorf("flow makespan %.0f vs cycle %.0f: ratio %.2f outside [0.2, 5]",
						flow.Latency, cyc.Latency, ratio)
				}
			})
		}
	}
}

// TestFlowChurnCollective checks the churn-collective seam under
// EngineFlow: a mid-collective chip death still yields a baseline, a
// disturbed makespan and a nonnegative cost, and the run is deterministic.
func TestFlowChurnCollective(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 7, Workers: 1}
	cfg.Churn = topology.FaultTimeline{Armed: true}
	run := func(killChip int32) metrics.Point {
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		pt, err := sys.MeasureChurnCollective(ChurnCollectiveSpec{
			Cfg: cfg, Schedule: "ring", Volume: 128, Engine: netsim.EngineFlow,
			KillChip: killChip, KillStep: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	baseline := run(-1)
	kill := run(1)
	// Encoding (see MeasureChurnCollective): Latency = makespan, Aux =
	// [packets, pre-kill cycles, post-kill cycles, dropped, retried, ...].
	for name, pt := range map[string]metrics.Point{"baseline": baseline, "kill": kill} {
		if pt.Latency <= 0 || len(pt.Aux) < 5 || pt.Aux[0] <= 0 {
			t.Fatalf("vacuous %s churn measurement %+v", name, pt)
		}
	}
	if kill.Aux[1] <= 0 || kill.Aux[2] <= 0 {
		t.Fatalf("kill run has empty pre/post phases: %+v", kill.Aux[:5])
	}
	if again := run(1); !reflect.DeepEqual(kill, again) {
		t.Fatalf("flow churn collective not deterministic:\n%+v\n%+v", kill, again)
	}
}

// TestFlowEngineDeterminism pins the flow path's reproducibility: the same
// configuration solved twice yields identical points (the demand matrix is
// sampled from per-chip RNG streams, not shared state).
func TestFlowEngineDeterminism(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7}
	cfg.SLDF.G = 1
	a := measureEngine(t, cfg, "uniform", 0.4, netsim.EngineFlow)
	b := measureEngine(t, cfg, "uniform", 0.4, netsim.EngineFlow)
	if !reflect.DeepEqual(a.Point, b.Point) {
		t.Fatalf("flow points differ across identical runs:\n%+v\n%+v", a.Point, b.Point)
	}
}
