package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// -update regenerates the golden fixtures instead of diffing against them:
//
//	go test ./internal/core -run TestGoldenStats -update
var updateGolden = flag.Bool("update", false, "rewrite golden-stats fixtures")

// goldenCases pins one small configuration per system kind under a benign
// and an adversarial pattern, plus one deterministic faulted build. The
// committed fixtures lock the simulator's complete Stats output — every
// counter, the hop mix, the full latency histogram — so an engine or
// performance refactor that silently changes results fails here first.
func goldenCases() []struct {
	name string
	cfg  Config
} {
	swb := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 7}
	swb.DF.G = 1
	swl := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 7}
	swl.SLDF.G = 1
	faulted := swl
	faulted.Faults = topology.FaultSpec{Seed: 4, LinkFraction: 0.08, RouterFraction: 0.04}
	faultedMis := faulted
	faultedMis.Mode = routing.Valiant
	// Churn fixtures lock the full drop/retry accounting of a seeded fault
	// timeline — deaths, repairs, mid-run re-routes — not just steady-state
	// counters.
	churned := swl
	churned.Churn = churnWindow(0.04, 0.02, netsim.RetrySource)
	meshChurned := Config{Kind: MeshCGroup, ChipletDim: 4, NoCDim: 2, Seed: 7}
	meshChurned.Churn = churnWindow(0.05, 0.02, netsim.DropInFlight)
	return []struct {
		name string
		cfg  Config
	}{
		{"switch", Config{Kind: SingleSwitch, Terminals: 4, Seed: 7}},
		{"mesh", Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 7}},
		{"sw-based", swb},
		{"sw-less", swl},
		{"sw-less-faulted", faulted},
		{"sw-less-faulted-mis", faultedMis},
		{"sw-less-churn", churned},
		{"mesh-churn", meshChurned},
	}
}

// goldenPatterns pairs each kind with a benign and an adversarial load.
var goldenPatterns = []struct {
	pattern string
	rate    float64
}{
	{"uniform", 0.4},
	{"bit-reverse", 0.4},
}

func TestGoldenStats(t *testing.T) {
	for _, c := range goldenCases() {
		for _, pr := range goldenPatterns {
			name := fmt.Sprintf("%s-%s", c.name, pr.pattern)
			t.Run(name, func(t *testing.T) {
				sys, err := Build(c.cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				pat, err := sys.PatternFor(pr.pattern)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.MeasureLoad(pat, pr.rate, tinySim())
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.DeliveredPkts == 0 {
					t.Fatal("no traffic delivered; the fixture would be vacuous")
				}
				got, err := json.MarshalIndent(res.Stats, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", "golden_"+name+".json")
				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run with -update to generate)", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("stats diverged from %s.\nIf the change is intentional, regenerate with:\n"+
						"  go test ./internal/core -run TestGoldenStats -update\ngot:\n%s", path, got)
				}
			})
		}
	}
}
