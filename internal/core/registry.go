package core

import (
	"fmt"

	"sldf/internal/campaign"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
)

// This file is the experiment registry: every evaluation figure of the
// paper is a data value — configurations × patterns × rate grid, plus a
// reducer selecting what the measurements become (latency curves, energy
// bars, resilience curves) — executed by one generic runner. Commands
// enumerate the registry instead of switching over hand-written runner
// functions, and a new experiment is a registration, not a code path.

// SeriesSpec is one curve of a latency figure: a configuration swept over
// a rate grid under a named traffic pattern.
type SeriesSpec struct {
	Cfg Config
	// Pattern is a PatternFor name. Named patterns keep the spec pure data,
	// which is what lets a remote backend execute it.
	Pattern string
	// Label overrides the config-derived series label when non-empty.
	Label string
	Rates []float64
	// Sim is the measurement window for every point of the series.
	Sim SimParams
}

// FigureSpec is one latency-vs-rate figure: a named set of series specs.
type FigureSpec struct {
	Name, Title    string
	XLabel, YLabel string
	Series         []SeriesSpec
}

// EnergyBarSpec is one bar of an energy figure: a single load point whose
// delivered-packet hop mix is priced by the paper's Sec. V-C model.
type EnergyBarSpec struct {
	Cfg     Config
	Pattern string
	Rate    float64
	Label   string
	Sim     SimParams
}

// EnergyFigureSpec is one energy-bar panel.
type EnergyFigureSpec struct {
	Name, Title string
	Bars        []EnergyBarSpec
}

// ResilienceSeriesSpec is one curve of a resilience figure; the shared
// failure grid lives on the figure spec.
type ResilienceSeriesSpec struct {
	Cfg   Config
	Label string
}

// ResilienceFigureSpec is one degraded-topology figure: systems measured
// at a fixed traffic point across a failure-fraction grid.
type ResilienceFigureSpec struct {
	Name, Title    string
	XLabel, YLabel string
	// Opts carries the failure grid, seeds and traffic point shared by all
	// series (Run is overridden by the runner's options).
	Opts   ResilienceOpts
	Series []ResilienceSeriesSpec
}

// ExperimentPlan is the scale-resolved grid of one experiment. Exactly the
// spec kinds present are executed; an experiment usually has one kind.
type ExperimentPlan struct {
	Figures     []FigureSpec
	Energy      []EnergyFigureSpec
	Resilience  []ResilienceFigureSpec
	Collectives []CollectiveFigureSpec
	Churn       []ChurnFigureSpec
}

// ExperimentSpec is one registered experiment: a name, and the plan it
// expands to at a given scale.
type ExperimentSpec struct {
	// Name is the registry key ("10" … "15", "resilience").
	Name string
	// Title is a one-line description for registry listings.
	Title string
	// Plan resolves the declarative grid for the scale (quick grids are
	// thinned, the large system swaps radix).
	Plan func(Scale) ExperimentPlan
}

var experimentRegistry []ExperimentSpec

// RegisterExperiment adds a spec to the registry in enumeration order.
// Duplicate names panic: two specs for one figure would race for its
// output files.
func RegisterExperiment(spec ExperimentSpec) {
	if spec.Name == "" || spec.Plan == nil {
		panic("core: experiment spec needs a name and a plan")
	}
	for _, e := range experimentRegistry {
		if e.Name == spec.Name {
			panic(fmt.Sprintf("core: experiment %q registered twice", spec.Name))
		}
	}
	experimentRegistry = append(experimentRegistry, spec)
}

// Experiments returns the registered specs in registration order (the
// paper's figure order).
func Experiments() []ExperimentSpec {
	out := make([]ExperimentSpec, len(experimentRegistry))
	copy(out, experimentRegistry)
	return out
}

// ExperimentNames returns the registered names in registration order.
func ExperimentNames() []string {
	names := make([]string, len(experimentRegistry))
	for i, e := range experimentRegistry {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment finds a registered spec by name.
func LookupExperiment(name string) (ExperimentSpec, bool) {
	for _, e := range experimentRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return ExperimentSpec{}, false
}

// ExperimentResult is the output of one experiment run: latency/resilience
// figures, energy panels and/or collective-makespan panels.
type ExperimentResult struct {
	Figures     []metrics.Figure
	Energy      []EnergyFigure
	Collectives []metrics.CollectiveFigure
	Churn       []metrics.ChurnFigure
}

// RunExperiment executes a registered experiment at the given scale: the
// one generic runner behind every figure. Latency series run through the
// Backend seam (shardable across workers); energy bars fan out over the
// generic campaign scheduler; resilience curves run the fault grid. The
// produced figures are bitwise identical to the historical hand-written
// runners.
func RunExperiment(spec ExperimentSpec, scale Scale, opts RunOptions) (ExperimentResult, error) {
	plan := spec.Plan(scale)
	applyEngineOverride(&plan, opts.Engine)
	applyFlowOverride(&plan, opts)
	var res ExperimentResult
	for _, fs := range plan.Figures {
		fig, err := runFigureSpec(fs, opts)
		if err != nil {
			return res, err
		}
		res.Figures = append(res.Figures, fig)
	}
	for _, es := range plan.Energy {
		fig, err := runEnergySpec(es, opts)
		if err != nil {
			return res, err
		}
		res.Energy = append(res.Energy, fig)
	}
	for _, rs := range plan.Resilience {
		fig, err := runResilienceSpec(rs, opts)
		if err != nil {
			return res, err
		}
		res.Figures = append(res.Figures, fig)
	}
	for _, cs := range plan.Collectives {
		fig, err := RunCollectiveFigure(cs, opts)
		if err != nil {
			return res, err
		}
		res.Collectives = append(res.Collectives, fig)
	}
	for _, cs := range plan.Churn {
		fig, err := RunChurnFigure(cs, opts)
		if err != nil {
			return res, err
		}
		res.Churn = append(res.Churn, fig)
	}
	return res, nil
}

// RunExperimentByName is RunExperiment after a registry lookup.
func RunExperimentByName(name string, scale Scale, opts RunOptions) (ExperimentResult, error) {
	spec, ok := LookupExperiment(name)
	if !ok {
		return ExperimentResult{}, fmt.Errorf("core: unknown experiment %q (registered: %v)",
			name, ExperimentNames())
	}
	return RunExperiment(spec, scale, opts)
}

// applyEngineOverride rewrites every measurement of a resolved plan to run
// under the given engine (RunOptions.Engine, the figure CLIs' -engine
// flag). The default engine leaves the plan untouched, so registered specs
// keep their own per-series engine choices unless the caller overrides.
func applyEngineOverride(plan *ExperimentPlan, engine netsim.EngineKind) {
	if engine == netsim.EngineActiveSet {
		return
	}
	for i := range plan.Figures {
		for j := range plan.Figures[i].Series {
			plan.Figures[i].Series[j].Sim.Engine = engine
		}
	}
	for i := range plan.Energy {
		for j := range plan.Energy[i].Bars {
			plan.Energy[i].Bars[j].Sim.Engine = engine
		}
	}
	for i := range plan.Resilience {
		plan.Resilience[i].Opts.Sim.Engine = engine
	}
	for i := range plan.Collectives {
		for j := range plan.Collectives[i].Cases {
			plan.Collectives[i].Cases[j].Engine = engine
		}
	}
	for i := range plan.Churn {
		for j := range plan.Churn[i].Cases {
			plan.Churn[i].Cases[j].Engine = engine
		}
	}
}

// applyFlowOverride threads the RunOptions flow-solver knobs into every
// SimParams-carrying measurement of a resolved plan (latency series, energy
// bars, resilience grids). Collective and churn cases solve through
// FlowMakespan, which shares the network's trace cache automatically and
// has no per-case window parameters to override.
func applyFlowOverride(plan *ExperimentPlan, opts RunOptions) {
	if opts.FlowWorkers == 0 && !opts.FlowCold && !opts.FlowSeedThrottles {
		return
	}
	set := func(sp *SimParams) {
		if opts.FlowWorkers != 0 {
			sp.FlowWorkers = opts.FlowWorkers
		}
		if opts.FlowCold {
			sp.FlowCold = true
		}
		if opts.FlowSeedThrottles {
			sp.FlowSeedThrottles = true
		}
	}
	for i := range plan.Figures {
		for j := range plan.Figures[i].Series {
			set(&plan.Figures[i].Series[j].Sim)
		}
	}
	for i := range plan.Energy {
		for j := range plan.Energy[i].Bars {
			set(&plan.Energy[i].Bars[j].Sim)
		}
	}
	for i := range plan.Resilience {
		set(&plan.Resilience[i].Opts.Sim)
	}
}

// runFigureSpec sweeps every series of a latency figure.
func runFigureSpec(fs FigureSpec, opts RunOptions) (metrics.Figure, error) {
	fig := metrics.Figure{Name: fs.Name, Title: fs.Title, XLabel: fs.XLabel, YLabel: fs.YLabel}
	for _, ss := range fs.Series {
		label := ss.Label
		if label == "" {
			label = ss.Cfg.Label()
		}
		s, err := runNamedSeries(ss.Cfg, label, ss.Pattern, ss.Rates, ss.Sim, opts)
		if err != nil {
			return fig, fmt.Errorf("%s: %w", fs.Name, err)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// runEnergySpec measures every bar of an energy panel as a typed campaign
// job: the generic scheduler's result type is EnergyBar here, which is what
// lets energy figures share the fan-out machinery instead of copying it.
func runEnergySpec(es EnergyFigureSpec, opts RunOptions) (EnergyFigure, error) {
	fig := EnergyFigure{Name: es.Name, Title: es.Title}
	jobs := make([]campaign.Job[EnergyBar], len(es.Bars))
	for i, bar := range es.Bars {
		jobs[i] = campaign.Job[EnergyBar]{
			Run: func(w *campaign.Worker) (EnergyBar, error) {
				// Every bar has a distinct configuration (worker caching
				// could never hit) and the full-scale panels hold 18560-chip
				// systems, so build and release per bar to keep peak
				// residency at one system per worker.
				sys, err := Build(bar.Cfg)
				if err != nil {
					return EnergyBar{}, err
				}
				defer sys.Close()
				pat, err := sys.PatternFor(bar.Pattern)
				if err != nil {
					return EnergyBar{}, err
				}
				res, err := sys.MeasureLoad(pat, bar.Rate, bar.Sim)
				if err != nil {
					return EnergyBar{}, err
				}
				st := res.Stats
				// Simplified pricing: every intra-C-group hop ≈ 1 pJ/bit.
				intra := st.MeanHops(0)*1 + st.MeanHops(1)*1
				inter := st.MeanHops(2)*20 + st.MeanHops(3)*20
				return EnergyBar{Label: bar.Label, Intra: intra, Inter: inter}, nil
			},
		}
	}
	bars, err := campaign.Run(jobs, campaign.Options[EnergyBar]{Jobs: opts.Jobs})
	if err != nil {
		return fig, fmt.Errorf("%s: %w", es.Name, err)
	}
	fig.Bars = bars
	return fig, nil
}

// runResilienceSpec sweeps every curve of a resilience figure across the
// shared failure grid.
func runResilienceSpec(rs ResilienceFigureSpec, opts RunOptions) (metrics.Figure, error) {
	fig := metrics.Figure{Name: rs.Name, Title: rs.Title, XLabel: rs.XLabel, YLabel: rs.YLabel}
	for _, ss := range rs.Series {
		ropts := rs.Opts
		ropts.Run = opts
		sweep, err := ResilienceSweep(ss.Cfg, ropts)
		if err != nil {
			return fig, fmt.Errorf("%s (%s): %w", rs.Name, ss.Label, err)
		}
		s := sweep.Series()
		if ss.Label != "" {
			s.Label = ss.Label
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
