package core

import (
	"strings"
	"testing"
)

// The registry declarations replaced the hand-written Fig* runners; these
// tests pin the declared structure — experiment names, figure names,
// series labels and grid sizes — to what those runners produced, so a
// refactor of the registry cannot silently drop a curve.

func TestRegistryEnumeratesPaperFigures(t *testing.T) {
	want := []string{"10", "11", "12", "13", "14", "resilience", "15", "collective", "churn"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if _, ok := LookupExperiment(name); !ok {
			t.Fatalf("lookup %q failed", name)
		}
	}
	if _, ok := LookupExperiment("nope"); ok {
		t.Fatal("lookup of unregistered experiment succeeded")
	}
}

// figureShape pins one figure's declared structure.
type figureShape struct {
	series []string // labels in order
	points int      // rates per series (0 = don't check)
}

func TestRegistryFigureStructure(t *testing.T) {
	// Quick-scale shapes, matching the historical runners exactly.
	shapes := map[string]figureShape{
		"fig10a": {series: []string{"switch", "2d-mesh"}, points: 7},
		"fig10b": {series: []string{"switch", "2d-mesh"}, points: 6},
		"fig10c": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 5},
		"fig10d": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 4},
		"fig10e": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 5},
		"fig10f": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 5},
		"fig11a": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 5},
		"fig11b": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 3},
		"fig12a": {series: []string{"sw-based", "sw-less", "sw-less-2B"}, points: 3},
		"fig12b": {series: []string{"sw-based", "sw-less", "sw-less-2B", "sw-less-4B"}, points: 3},
		"fig13a": {series: []string{"sw-based", "sw-less", "sw-based-mis", "sw-less-mis", "sw-less-2B-mis"}, points: 5},
		"fig13b": {series: []string{"sw-based", "sw-less", "sw-based-mis", "sw-less-mis", "sw-less-2B-mis"}, points: 5},
		"fig14a": {series: []string{"sw-based-uni", "sw-less-uni", "sw-based-bi", "sw-less-bi"}, points: 5},
		"fig14b": {series: []string{"sw-based-uni", "sw-less-uni", "sw-based-bi", "sw-less-bi", "sw-less-bi-2B"}, points: 5},
	}
	seen := map[string]bool{}
	for _, spec := range Experiments() {
		plan := spec.Plan(ScaleQuick)
		for _, f := range plan.Figures {
			shape, ok := shapes[f.Name]
			if !ok {
				continue
			}
			seen[f.Name] = true
			if len(f.Series) != len(shape.series) {
				t.Errorf("%s: %d series, want %d", f.Name, len(f.Series), len(shape.series))
				continue
			}
			for i, ss := range f.Series {
				label := ss.Label
				if label == "" {
					label = ss.Cfg.Label()
				}
				if label != shape.series[i] {
					t.Errorf("%s series %d: label %q, want %q", f.Name, i, label, shape.series[i])
				}
				if shape.points > 0 && len(ss.Rates) != shape.points {
					t.Errorf("%s/%s: %d rates, want %d", f.Name, label, len(ss.Rates), shape.points)
				}
				if ss.Pattern == "" {
					t.Errorf("%s/%s: empty pattern (spec not remote-able)", f.Name, label)
				}
			}
		}
	}
	for name := range shapes {
		if !seen[name] {
			t.Errorf("figure %s missing from the registry", name)
		}
	}
}

func TestRegistryEnergyAndResilienceStructure(t *testing.T) {
	spec15, _ := LookupExperiment("15")
	plan := spec15.Plan(ScaleQuick)
	if len(plan.Energy) != 2 || len(plan.Figures) != 0 {
		t.Fatalf("fig15 plan: %d energy, %d latency figures", len(plan.Energy), len(plan.Figures))
	}
	wantBars := []string{"sw-based", "sw-less", "sw-based-mis", "sw-less-mis"}
	for _, f := range plan.Energy {
		if !strings.HasPrefix(f.Name, "fig15") {
			t.Errorf("energy panel %q", f.Name)
		}
		if len(f.Bars) != len(wantBars) {
			t.Fatalf("%s: %d bars", f.Name, len(f.Bars))
		}
		for i, b := range f.Bars {
			if b.Label != wantBars[i] {
				t.Errorf("%s bar %d: %q, want %q", f.Name, i, b.Label, wantBars[i])
			}
		}
	}

	specR, _ := LookupExperiment("resilience")
	rplan := specR.Plan(ScaleQuick)
	if len(rplan.Resilience) != 1 {
		t.Fatalf("resilience plan: %d figures", len(rplan.Resilience))
	}
	rf := rplan.Resilience[0]
	if rf.Name != "figres" || len(rf.Series) != 3 || len(rf.Opts.Fractions) != 3 {
		t.Fatalf("figres shape: %+v", rf)
	}
}

func TestRunExperimentByNameUnknown(t *testing.T) {
	_, err := RunExperimentByName("99", ScaleQuick, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterExperimentValidation(t *testing.T) {
	mustPanic := func(name string, spec ExperimentSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		RegisterExperiment(spec)
	}
	mustPanic("empty", ExperimentSpec{})
	mustPanic("duplicate", ExperimentSpec{Name: "10",
		Plan: func(Scale) ExperimentPlan { return ExperimentPlan{} }})
}
