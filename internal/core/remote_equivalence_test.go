package core

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"sldf/internal/campaign"
	"sldf/internal/campaign/remote"
	"sldf/internal/metrics"
)

// These tests prove the acceptance criterion end to end on the real
// simulator: a sweep sharded across an emulated 3-worker cluster is
// bitwise identical to the serial local sweep, including when a worker is
// killed partway through the run.

func remoteCluster(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := remote.NewServer(remote.ServerOptions{Jobs: 2})
		ts := httptest.NewServer(srv)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		addrs[i] = ts.URL
	}
	return addrs
}

func TestRemoteSweepBitwiseIdenticalToSerial(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11, Workers: 1}
	cfg.SLDF.G = 1
	rates := RateGrid(0.2, 1.4, 0.2)

	serial, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	backend, err := remote.New(remoteCluster(t, 3), remote.Options{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SweepOpts(cfg, "uniform", rates, tinySim(),
		RunOptions{Jobs: 4, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist, serial) {
		t.Fatalf("3-worker remote sweep diverged from serial:\n%+v\nvs\n%+v", dist, serial)
	}
}

// killingProxy forwards to a live worker until its budget of successful
// requests is spent, then fails everything — a worker lost mid-run.
type killingProxy struct {
	backend http.Handler
	budget  atomic.Int64
}

func (k *killingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/run" && k.budget.Add(-1) < 0 {
		http.Error(w, "worker lost", http.StatusInternalServerError)
		return
	}
	k.backend.ServeHTTP(w, r)
}

func TestRemoteSweepSurvivesWorkerLossMidRun(t *testing.T) {
	cfg := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 3, Workers: 1}
	rates := RateGrid(0.3, 2.1, 0.3)

	serial, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		addrs := make([]string, 3)
		for i := range addrs {
			srv := remote.NewServer(remote.ServerOptions{Jobs: 1})
			var h http.Handler = srv
			if i == 0 {
				// The first worker dies after a seeded number of batches.
				kp := &killingProxy{backend: srv}
				kp.budget.Store(int64(rng.Intn(3)))
				h = kp
			}
			ts := httptest.NewServer(h)
			t.Cleanup(func() { ts.Close(); srv.Close() })
			addrs[i] = ts.URL
		}
		backend, err := remote.New(addrs, remote.Options{BatchSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := SweepOpts(cfg, "uniform", rates, tinySim(),
			RunOptions{Jobs: 4, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dist, serial) {
			t.Fatalf("trial %d: sweep after worker loss diverged from serial", trial)
		}
	}
}

// TestRemoteWorkerStoreServesReplays exercises the daemon-side store tier:
// a second identical sweep is answered from the worker's memory tier
// without re-simulation, byte-identically.
func TestRemoteWorkerStoreServesReplays(t *testing.T) {
	store := campaign.NewMemoryLRU[metrics.Point](128)
	srv := remote.NewServer(remote.ServerOptions{Jobs: 2, Store: store})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	cfg := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 8, Workers: 1}
	rates := RateGrid(0.5, 1.5, 0.5)
	backend, err := remote.New([]string{ts.URL}, remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if store.Hits() != 0 || store.Len() != len(rates) {
		t.Fatalf("cold run: hits=%d len=%d", store.Hits(), store.Len())
	}
	warm, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if int(store.Hits()) != len(rates) {
		t.Fatalf("warm run hits=%d, want %d", store.Hits(), len(rates))
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("worker-store replay diverged")
	}
}
