package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// ResilienceOpts configures a resilience sweep: one traffic point measured
// across increasing failure fractions, averaged over fault seeds.
type ResilienceOpts struct {
	// Fractions is the x-axis: the fraction of the topology's samplable
	// channels to fail. A fraction of exactly 0 measures the pristine
	// network under its paper routing (the fault-aware router, whose
	// up*/down* intra-C-group discipline differs from pristine XY, is only
	// installed when faults exist).
	Fractions []float64
	// RouterScale sets the router-failure fraction as a multiple of the
	// link fraction (0 = links only).
	RouterScale float64
	// Seeds are the fault seeds averaged per fraction (at least one).
	Seeds []uint64
	// Pattern and Rate fix the measured traffic point.
	Pattern string
	Rate    float64
	// Sim is the measurement window.
	Sim SimParams
	// Run controls parallelism: Run.Jobs (fraction, seed) points are
	// measured concurrently. Results are identical for any value. The
	// point cache is not consulted: resilience points are keyed by their
	// fault spec and cheap relative to full sweeps. A non-empty Run.Churn
	// timeline is armed on every built network, layering in-run component
	// death and repair over the static fault grid.
	Run RunOptions
}

// ResiliencePoint aggregates one failure fraction across fault seeds.
type ResiliencePoint struct {
	Fraction float64
	// Seeds is the number of fault draws measured.
	Seeds int
	// Infeasible counts draws the subsystem rejected: the surviving
	// network was partitioned, a chip lost every terminal, or degraded
	// detours exceeded the VC provisioning.
	Infeasible int
	// Deadlocked counts draws whose measurement tripped the progress
	// watchdog.
	Deadlocked int
	// Latency/P50/P99/Throughput are means over the clean draws.
	Latency    float64
	P50        float64
	P99        float64
	Throughput float64
}

// Clean returns the number of fault draws that produced a measurement.
func (p ResiliencePoint) Clean() int { return p.Seeds - p.Infeasible - p.Deadlocked }

// ResilienceSeries is one system's latency/throughput-versus-failure
// curve.
type ResilienceSeries struct {
	Label  string
	Points []ResiliencePoint
}

// Series flattens the curve into a metrics.Series with the failure
// fraction on the rate axis, for CSV rendering alongside ordinary sweeps.
// Fractions where no fault draw produced a measurement are omitted — an
// all-zero point would masquerade as a perfect network — so their CSV
// cells render empty; the Infeasible/Deadlocked counts remain on the
// ResiliencePoint.
func (rs ResilienceSeries) Series() metrics.Series {
	s := metrics.Series{Label: rs.Label}
	for _, p := range rs.Points {
		if p.Clean() == 0 {
			continue
		}
		s.Points = append(s.Points, metrics.Point{
			Rate:       p.Fraction,
			Latency:    p.Latency,
			P50:        p.P50,
			P99:        p.P99,
			Throughput: p.Throughput,
		})
	}
	return s
}

// ResilienceSweep measures cfg's traffic point across the failure grid.
// For every (fraction, seed) pair the network is rebuilt with the drawn
// fault set and measured once; infeasible draws (typed rejections) and
// watchdog-tripped runs are counted per point instead of failing the
// sweep. Any other error aborts. Results are deterministic for a fixed
// (FaultSpec, seed) grid regardless of Run.Jobs, the worker count, or the
// cycle engine (both engines are bitwise identical).
func ResilienceSweep(cfg Config, opts ResilienceOpts) (ResilienceSeries, error) {
	if len(opts.Fractions) == 0 || len(opts.Seeds) == 0 {
		return ResilienceSeries{}, fmt.Errorf("core: resilience sweep needs fractions and seeds")
	}
	if opts.RouterScale < 0 {
		return ResilienceSeries{}, fmt.Errorf("core: negative RouterScale %g", opts.RouterScale)
	}
	type cell struct {
		point      metrics.Point
		infeasible bool
		deadlocked bool
		err        error
	}
	nf, ns := len(opts.Fractions), len(opts.Seeds)
	cells := make([]cell, nf*ns)
	jobs := opts.Run.Jobs
	if jobs < 1 {
		jobs = 1
	}
	// A fatal (non-typed) error stops the remaining cells from building
	// and measuring; typed infeasible/deadlock outcomes never set it.
	var aborted atomic.Bool
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for fi, fraction := range opts.Fractions {
		for si, seed := range opts.Seeds {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if aborted.Load() {
					return
				}
				if fraction == 0 && si > 0 {
					// Fraction 0 builds the identical pristine network for
					// every seed; measure it once and fan the result out
					// after the wait.
					return
				}
				c := &cells[fi*ns+si]
				pcfg := cfg
				pcfg.Faults = topology.FaultSpec{
					Seed:           seed,
					LinkFraction:   fraction,
					RouterFraction: opts.RouterScale * fraction,
				}
				if !opts.Run.Churn.Empty() {
					// Live churn rides on top of the static fault draw: the
					// degraded network additionally loses (and regains)
					// components mid-measurement.
					pcfg.Churn = opts.Run.Churn
				}
				sys, err := Build(pcfg)
				if err != nil {
					if errors.Is(err, routing.ErrPartitioned) ||
						errors.Is(err, routing.ErrDegradedVCs) ||
						errors.Is(err, netsim.ErrDeadChip) {
						c.infeasible = true
					} else {
						c.err = err
						aborted.Store(true)
					}
					return
				}
				defer sys.Close()
				pat, err := sys.PatternFor(opts.Pattern)
				if err != nil {
					c.err = err
					aborted.Store(true)
					return
				}
				res, err := sys.MeasureLoad(pat, opts.Rate, opts.Sim)
				if err != nil {
					switch {
					case errors.Is(err, netsim.ErrDeadlock):
						c.deadlocked = true
					case errors.Is(err, routing.ErrPartitioned),
						errors.Is(err, routing.ErrDegradedVCs),
						errors.Is(err, netsim.ErrDeadChip):
						// A churn timeline can disconnect survivors that the
						// static draw left connected; that is an infeasible
						// draw mid-measurement, not a sweep failure.
						c.infeasible = true
					default:
						c.err = err
						aborted.Store(true)
					}
					return
				}
				c.point = res.Point
			}()
		}
	}
	wg.Wait()
	for fi, fraction := range opts.Fractions {
		if fraction != 0 {
			continue
		}
		for si := 1; si < ns; si++ {
			cells[fi*ns+si] = cells[fi*ns]
		}
	}

	series := ResilienceSeries{Label: cfg.Label()}
	for fi, fraction := range opts.Fractions {
		pt := ResiliencePoint{Fraction: fraction, Seeds: ns}
		for si := range opts.Seeds {
			c := &cells[fi*ns+si]
			if c.err != nil {
				return series, fmt.Errorf("core: resilience point (fraction %g, seed %d): %w",
					fraction, opts.Seeds[si], c.err)
			}
			switch {
			case c.infeasible:
				pt.Infeasible++
			case c.deadlocked:
				pt.Deadlocked++
			default:
				pt.Latency += c.point.Latency
				pt.P50 += c.point.P50
				pt.P99 += c.point.P99
				pt.Throughput += c.point.Throughput
			}
		}
		if n := float64(pt.Clean()); n > 0 {
			pt.Latency /= n
			pt.P50 /= n
			pt.P99 /= n
			pt.Throughput /= n
		}
		series.Points = append(series.Points, pt)
	}
	return series, nil
}
