package core

import (
	"errors"
	"reflect"
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
)

// faultedTinyCfg is a single-W-group radix-16 SLDF with a moderate seeded
// fault load, small enough for CI measurement windows.
func faultedTinyCfg(mode routing.Mode) Config {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11, Mode: mode}
	cfg.SLDF.G = 1
	cfg.Faults = topology.FaultSpec{Seed: 4, LinkFraction: 0.08, RouterFraction: 0.04}
	return cfg
}

func TestBuildFaultedProvisionsAndDisables(t *testing.T) {
	sys, err := Build(faultedTinyCfg(routing.Minimal))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	routers, links := sys.Net.DisabledCounts()
	if routers == 0 || links == 0 {
		t.Fatalf("faulted build disabled %d routers, %d links; want both > 0", routers, links)
	}
	for _, l := range sys.Net.Links {
		if l.VCs != FaultVCs {
			t.Fatalf("faulted build provisions %d VCs on link %d, want %d", l.VCs, l.ID, FaultVCs)
		}
	}
}

func TestBuildEmptyFaultSpecIsPristine(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11}
	cfg.SLDF.G = 1
	cfg.Faults = topology.FaultSpec{Seed: 99} // a bare seed injects nothing
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Net.Faulted() {
		t.Fatal("empty fault spec disabled components")
	}
	for _, l := range sys.Net.Links {
		if l.VCs != routing.SLDFVCCount(routing.BaselineVC, routing.Minimal) {
			t.Fatalf("empty fault spec changed VC provisioning to %d", l.VCs)
		}
		break
	}
}

func TestBuildFaultedRejectsUnsupportedModes(t *testing.T) {
	cfg := faultedTinyCfg(routing.Minimal)
	cfg.Scheme = routing.ReducedVC
	if _, err := Build(cfg); err == nil {
		t.Fatal("reduced-VC faulted build accepted")
	}
	cfg = faultedTinyCfg(routing.Adaptive)
	if _, err := Build(cfg); err == nil {
		t.Fatal("adaptive faulted build accepted")
	}
	dfc := Config{Kind: SwitchDragonfly, DF: Radix16DF(), Seed: 1, Mode: routing.Valiant}
	dfc.Faults = topology.FaultSpec{Seed: 1, LinkFraction: 0.05}
	if _, err := Build(dfc); err == nil {
		t.Fatal("valiant faulted dragonfly accepted")
	}
	bad := faultedTinyCfg(routing.Minimal)
	bad.Faults.LinkFraction = 1.5
	if _, err := Build(bad); err == nil {
		t.Fatal("out-of-range fraction accepted")
	}
}

// TestFaultedMeasurementDeterministic locks the acceptance criterion that
// a fault sweep is deterministic for a fixed (FaultSpec, seed): identical
// Stats for repeated builds, across worker counts, and across cycle
// engines.
func TestFaultedMeasurementDeterministic(t *testing.T) {
	measure := func(mode routing.Mode, workers int, engine netsim.EngineKind) netsim.Stats {
		cfg := faultedTinyCfg(mode)
		cfg.Workers = workers
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		pat, err := sys.PatternFor("uniform")
		if err != nil {
			t.Fatal(err)
		}
		sp := tinySim()
		sp.Engine = engine
		res, err := sys.MeasureLoad(pat, 0.3, sp)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	for _, mode := range []routing.Mode{routing.Minimal, routing.Valiant} {
		base := measure(mode, 1, netsim.EngineActiveSet)
		if base.DeliveredPkts == 0 {
			t.Fatalf("%v: no traffic delivered", mode)
		}
		if again := measure(mode, 1, netsim.EngineActiveSet); !reflect.DeepEqual(base, again) {
			t.Fatalf("%v: repeated faulted build diverged", mode)
		}
		if par := measure(mode, 4, netsim.EngineActiveSet); !reflect.DeepEqual(base, par) {
			t.Fatalf("%v: 4-worker faulted run diverged from serial", mode)
		}
		if ref := measure(mode, 1, netsim.EngineReference); !reflect.DeepEqual(base, ref) {
			t.Fatalf("%v: reference engine diverged on faulted network", mode)
		}
	}
}

func TestResilienceSweepSmall(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 11}
	cfg.SLDF.G = 1
	opts := ResilienceOpts{
		Fractions:   []float64{0, 0.1},
		RouterScale: 0.5,
		Seeds:       []uint64{1, 2},
		Pattern:     "uniform",
		Rate:        0.3,
		Sim:         tinySim(),
	}
	serial, err := ResilienceSweep(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(serial.Points))
	}
	for _, p := range serial.Points {
		if p.Seeds != 2 {
			t.Fatalf("point %g measured %d seeds, want 2", p.Fraction, p.Seeds)
		}
	}
	if p0 := serial.Points[0]; p0.Clean() != 2 || p0.Latency <= 0 {
		t.Fatalf("pristine point unhealthy: %+v", p0)
	}
	// Parallel execution must be bitwise identical.
	opts.Run.Jobs = 4
	parallel, err := ResilienceSweep(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel resilience sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// The flattened series keeps the fraction axis.
	ms := serial.Series()
	if ms.Points[1].Rate != 0.1 {
		t.Fatalf("flattened series rate axis = %v", ms.Points)
	}
	if _, err := ResilienceSweep(cfg, ResilienceOpts{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// TestResilienceSeriesOmitsEmptyPoints: a fraction where every draw was
// infeasible must vanish from the flattened curve instead of rendering as
// an all-zero (perfect-looking) point.
func TestResilienceSeriesOmitsEmptyPoints(t *testing.T) {
	rs := ResilienceSeries{Label: "x", Points: []ResiliencePoint{
		{Fraction: 0, Seeds: 2, Latency: 10},
		{Fraction: 0.5, Seeds: 2, Infeasible: 1, Deadlocked: 1},
	}}
	s := rs.Series()
	if len(s.Points) != 1 || s.Points[0].Rate != 0 {
		t.Fatalf("empty point not omitted: %+v", s.Points)
	}
}

// TestResilienceSweepCountsInfeasible forces partitions with an absurd
// failure fraction — C-groups that keep chips but lose every external
// channel — and checks they are counted per point, not fatal.
func TestResilienceSweepCountsInfeasible(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 3}
	cfg.SLDF.G = 1
	opts := ResilienceOpts{
		Fractions: []float64{0.6},
		Seeds:     []uint64{1, 2, 3, 4},
		Pattern:   "uniform",
		Rate:      0.2,
		Sim:       tinySim(),
	}
	rs, err := ResilienceSweep(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Points[0].Infeasible == 0 {
		t.Fatalf("60%% channel loss never partitioned the W-group: %+v", rs.Points[0])
	}
}

// TestFaultedBuildTypedErrors checks that Build surfaces the routing
// layer's typed partition error for a deterministic partitioning spec.
func TestFaultedBuildTypedErrors(t *testing.T) {
	cfg := Config{Kind: SingleSwitch, Terminals: 4, Seed: 1}
	cfg.Faults = topology.FaultSpec{Links: []int32{0}}
	_, err := Build(cfg)
	if !errors.Is(err, routing.ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
}
