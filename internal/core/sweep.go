package core

import (
	"fmt"
	"math"

	"sldf/internal/campaign"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
	"sldf/internal/traffic"
)

// RunOptions configure how a sweep's load points are executed.
type RunOptions struct {
	// Jobs is the number of measurement points run (or dispatched)
	// concurrently (<= 1 runs serially). Results are bitwise identical for
	// any value: every point starts from an identical just-built network
	// state and has its result slot fixed up front.
	Jobs int
	// Store, when non-nil, skips points already measured with an identical
	// (config, pattern, rate, sim-params) key and records new ones. Wrap
	// the disk cache in a memory tier (campaign.NewTiered) so hot replays
	// skip the filesystem.
	Store campaign.PointStore
	// Backend selects where named-pattern sweep points execute: nil or
	// campaign.LocalBackend{} runs them on this process's worker pool, a
	// remote backend shards them across worker daemons. Every backend is
	// result-transparent (see campaign.Backend), so the sweep output is
	// bitwise identical whichever executes it. Sweeps whose pattern is a
	// caller-supplied closure (SweepScopedOpts) cannot be shipped as data
	// and always run locally.
	Backend campaign.Backend
	// Engine, when non-default, overrides the simulation engine of every
	// measurement in a registry experiment plan (see RunExperiment) —
	// the -engine flag of the figure CLIs. Cache keys already partition by
	// engine, so overridden runs never replay another engine's points.
	Engine netsim.EngineKind
	// Churn, when non-empty, arms this in-run fault timeline on every
	// system a resilience sweep builds, degrading the fault grid with live
	// component death and repair (the -churn flag of sldffigures). Other
	// experiment families ignore it; their configs carry their own
	// Config.Churn. Resilience points are never cached, so the timeline
	// cannot collide with cached churn-free points.
	Churn topology.FaultTimeline
	// FlowWorkers, FlowCold and FlowSeedThrottles override the flow solver's
	// execution knobs on every measurement of a registry experiment plan
	// (see the matching SimParams fields) — the -flowpar/-flowcold/-flowseed
	// flags of the figure CLIs. FlowWorkers and FlowCold are result-neutral;
	// FlowSeedThrottles is approximate and partitions the point cache.
	FlowWorkers       int
	FlowCold          bool
	FlowSeedThrottles bool
}

// RateGrid returns the inclusive grid lo, lo+step, ..., hi using integer
// stepping, so accumulated floating-point error cannot drop or duplicate
// the final rate point the way a `for r := lo; r <= hi; r += step` loop
// can. A hi that does not lie on the grid is truncated to the last on-grid
// point below it.
func RateGrid(lo, hi, step float64) []float64 {
	if step <= 0 || hi < lo {
		return nil
	}
	n := int(math.Floor((hi-lo)/step + 0.5))
	if float64(n)*step > hi-lo+step*1e-6 {
		n--
	}
	out := make([]float64, n+1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Label returns the series label that Build assigns to a system built from
// this configuration, without building it. Sweeps use it so that a fully
// cached series never needs a network construction.
func (c Config) Label() string {
	switch c.Kind {
	case SingleSwitch:
		return "switch"
	case MeshCGroup:
		return "2d-mesh"
	case SwitchDragonfly:
		label := "sw-based"
		if c.Mode == routing.Valiant {
			label += "-mis"
		}
		return label
	case SwitchlessDragonfly:
		label := "sw-less"
		if c.IntraWidth > 1 {
			label += fmt.Sprintf("-%dB", c.IntraWidth)
		}
		scheme := c.Scheme
		switch c.Mode {
		case routing.Valiant:
			label += "-mis"
		case routing.ValiantLower:
			label += "-mis-lower"
			// Build forces the reduced scheme for the restricted-lower mode.
			scheme = routing.ReducedVC
		case routing.Adaptive:
			label += "-ugal"
		}
		if scheme == routing.ReducedVC {
			label += "-rvc"
		}
		return label
	}
	return "unknown"
}

// cacheID canonically serializes every configuration field that affects
// measured results. Workers and WatchdogCycles are deliberately excluded:
// they change how a simulation executes, never what it measures. The fault
// component is appended only when faults are injected, keeping fault-free
// keys byte-compatible with existing caches.
//
//sldf:cachekey Config
//sldf:cachekey topology.FaultSpec
func (c Config) cacheID() string {
	id := fmt.Sprintf("kind=%d df=%+v sldf=%+v term=%d chiplet=%d noc=%d scheme=%d mode=%d width=%d seed=%#x",
		c.Kind, c.DF, c.SLDF, c.Terminals, c.ChipletDim, c.NoCDim,
		c.Scheme, c.Mode, c.IntraWidth, c.Seed)
	if !c.Faults.Empty() {
		id += fmt.Sprintf(" faults={seed:%#x lf:%.17g rf:%.17g links:%v routers:%v}",
			c.Faults.Seed, c.Faults.LinkFraction, c.Faults.RouterFraction,
			c.Faults.Links, c.Faults.Routers)
	}
	// The churn component is appended only when a timeline is armed,
	// keeping churn-free keys byte-compatible with existing caches.
	if ch := c.Churn.ChurnString(); ch != "" {
		id += " churn={" + ch + "}"
	}
	return id
}

// pointKey is the on-disk cache key for one measured load point. The
// explicit field list keeps keys byte-compatible with pre-Engine caches.
// A non-default engine gets its own cache slot even though both engines
// measure bitwise-identical results: a serial-reference cross-check must
// actually simulate, not replay the cached active-set point it is
// supposed to check.
//
//sldf:cachekey SimParams
func pointKey(cfg Config, patternKey string, rate float64, sp SimParams) string {
	key := fmt.Sprintf("%s|pat=%s|rate=%.17g|sim={Warmup:%d Measure:%d ExtraDrain:%d PacketSize:%d}",
		cfg.cacheID(), patternKey, rate, sp.Warmup, sp.Measure, sp.ExtraDrain, sp.PacketSize)
	if sp.Engine != netsim.EngineActiveSet {
		key += "|engine=" + sp.Engine.String()
	}
	// FlowWorkers and FlowCold are execution knobs (bit-identical results)
	// and stay out of the key; throttle seeding changes the measurement, so
	// seeded points get their own cache slot.
	if sp.FlowSeedThrottles {
		key += "|flowseed=1"
	}
	return key
}

// Sweep measures a series of load points for a named traffic pattern,
// running them serially without a cache. See SweepOpts.
func Sweep(cfg Config, patternName string, rates []float64, sp SimParams) (metrics.Series, error) {
	return SweepOpts(cfg, patternName, rates, sp, RunOptions{})
}

// SweepOpts measures a series of load points for a named traffic pattern
// under the given execution options. Each point starts from an identical
// just-built network state: a worker builds the system once and resets it
// between its points, so the series equals the historical build-per-point
// output for any worker count.
func SweepOpts(cfg Config, patternName string, rates []float64, sp SimParams, opts RunOptions) (metrics.Series, error) {
	return runNamedSeries(cfg, cfg.Label(), patternName, rates, sp, opts)
}

// SweepScoped is Sweep with a caller-supplied pattern factory, for traffic
// confined to a subset of chips (e.g. one W-group of a large system). It
// runs serially without a cache; see SweepScopedOpts.
func SweepScoped(cfg Config, mkPattern func(*System) traffic.Pattern, label string, rates []float64, sp SimParams) (metrics.Series, error) {
	return SweepScopedOpts(cfg, mkPattern, label, "", rates, sp, RunOptions{})
}

// SweepScopedOpts is SweepOpts with a caller-supplied pattern factory.
// patternKey names the factory's pattern for the result cache; it must
// uniquely identify the pattern given the configuration (the factory may
// only depend on cfg-derived system properties). An empty patternKey
// disables caching for the sweep. An empty label takes the config's label.
func SweepScopedOpts(cfg Config, mkPattern func(*System) traffic.Pattern, label, patternKey string, rates []float64, sp SimParams, opts RunOptions) (metrics.Series, error) {
	if label == "" {
		label = cfg.Label()
	}
	series := metrics.Series{Label: label}
	sysKey := cfg.cacheID()
	jobs := make([]campaign.Job[metrics.Point], len(rates))
	for i, rate := range rates {
		var key string
		if patternKey != "" {
			key = pointKey(cfg, patternKey, rate, sp)
		}
		jobs[i] = campaign.Job[metrics.Point]{
			Key: key,
			Run: func(w *campaign.Worker) (metrics.Point, error) {
				sys, err := workerSystem(w, sysKey, cfg)
				if err != nil {
					return metrics.Point{}, err
				}
				res, err := sys.MeasureLoad(mkPattern(sys), rate, sp)
				if err != nil {
					return metrics.Point{}, err
				}
				return res.Point, nil
			},
		}
	}
	pts, err := campaign.Run(jobs, campaign.Options[metrics.Point]{Jobs: opts.Jobs, Store: opts.Store})
	if err != nil {
		return series, err
	}
	series.Points = pts
	return series, nil
}

// runNamedSeries executes a named-pattern sweep through the Backend seam:
// the rate points become declarative job specs (data, not code) that the
// backend — in-process pool or remote worker fleet — executes and merges
// deterministically.
func runNamedSeries(cfg Config, label, pattern string, rates []float64, sp SimParams, opts RunOptions) (metrics.Series, error) {
	series := metrics.Series{Label: label}
	specs := make([]campaign.JobSpec, len(rates))
	for i, rate := range rates {
		spec, err := PointJob(cfg, pattern, rate, sp)
		if err != nil {
			return series, err
		}
		specs[i] = spec
	}
	backend := opts.Backend
	if backend == nil {
		backend = campaign.LocalBackend{}
	}
	pts, err := backend.Execute(specs, campaign.ExecOptions{Jobs: opts.Jobs, Store: opts.Store})
	if err != nil {
		return series, err
	}
	series.Points = pts
	return series, nil
}

// workerSystem returns a worker-local system for cfg, building on first use
// and resetting to the just-built state on reuse. The campaign worker owns
// the system and closes it (releasing its goroutine pool) when the run
// finishes, on success and error paths alike.
func workerSystem(w *campaign.Worker, key string, cfg Config) (*System, error) {
	if v, ok := w.Cached(key); ok {
		sys := v.(*System)
		sys.Reset()
		return sys, nil
	}
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	w.Store(key, sys)
	return sys, nil
}
