package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/routing"
	"sldf/internal/traffic"
)

func TestRateGridIntegerStepping(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		n            int
	}{
		// Every grid the figure runners use.
		{0.25, 3.5, 0.25, 14},
		{0.2, 2.4, 0.2, 12},
		{0.2, 2.0, 0.2, 10},
		{0.2, 1.6, 0.2, 8},
		{0.05, 0.5, 0.05, 10},
		{0.2, 1.8, 0.2, 9},
		{0.1, 1.0, 0.1, 10},
		{0.1, 0.6, 0.1, 6},
		{0.25, 1.5, 0.25, 6},
		{0.1, 0.8, 0.1, 8},
		{0.08, 0.8, 0.08, 10},
		{0.048, 0.48, 0.048, 10},
		{0.4, 4.0, 0.4, 10},
		// hi off the grid truncates to the last on-grid point.
		{0.0, 0.25, 0.1, 3},
		// Degenerate inputs.
		{0.5, 0.5, 0.1, 1},
	}
	for _, c := range cases {
		g := RateGrid(c.lo, c.hi, c.step)
		if len(g) != c.n {
			t.Fatalf("RateGrid(%v,%v,%v) = %d points %v, want %d",
				c.lo, c.hi, c.step, len(g), g, c.n)
		}
		if g[0] != c.lo {
			t.Fatalf("RateGrid(%v,%v,%v) starts at %v", c.lo, c.hi, c.step, g[0])
		}
		if math.Abs(g[len(g)-1]-(c.lo+float64(c.n-1)*c.step)) > 1e-12 {
			t.Fatalf("RateGrid(%v,%v,%v) ends at %v", c.lo, c.hi, c.step, g[len(g)-1])
		}
	}
	if g := RateGrid(0.5, 0.4, 0.1); g != nil {
		t.Fatalf("inverted range produced %v", g)
	}
	if g := RateGrid(0.1, 1.0, 0); g != nil {
		t.Fatalf("zero step produced %v", g)
	}
}

func TestConfigLabelMatchesBuild(t *testing.T) {
	cfgs := []Config{
		{Kind: SingleSwitch, Terminals: 4},
		{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2},
		{Kind: SwitchDragonfly, DF: Radix16DF()},
		{Kind: SwitchDragonfly, DF: Radix16DF(), Mode: routing.Valiant},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF()},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), IntraWidth: 2},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Mode: routing.Valiant},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Mode: routing.ValiantLower},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Mode: routing.Adaptive},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Scheme: routing.ReducedVC},
		{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), IntraWidth: 4, Mode: routing.Valiant},
	}
	for _, cfg := range cfgs {
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		built := sys.Label
		sys.Close()
		if got := cfg.Label(); got != built {
			t.Fatalf("Config.Label() = %q, Build label = %q", got, built)
		}
	}
}

func TestResetMatchesFreshBuild(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 77}
	cfg.SLDF.G = 1

	fresh, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	pat, err := fresh.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.MeasureLoad(pat, 0.8, tinySim())
	if err != nil {
		t.Fatal(err)
	}

	// Dirty a second system with a different load point, reset it, and
	// re-measure: the result must be bitwise identical to the fresh build.
	reused, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reused.Close()
	rpat, err := reused.PatternFor("uniform")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.MeasureLoad(rpat, 0.3, tinySim()); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	got, err := reused.MeasureLoad(rpat, 0.8, tinySim())
	if err != nil {
		t.Fatal(err)
	}

	if got.Stats.InjectedPkts != want.Stats.InjectedPkts ||
		got.Stats.DeliveredPkts != want.Stats.DeliveredPkts {
		t.Fatalf("packet counts diverged after reset: %d/%d vs %d/%d",
			got.Stats.InjectedPkts, got.Stats.DeliveredPkts,
			want.Stats.InjectedPkts, want.Stats.DeliveredPkts)
	}
	if got.Stats.Latency != want.Stats.Latency {
		t.Fatal("latency histogram diverged after reset")
	}
	if got.Stats.Hops != want.Stats.Hops {
		t.Fatal("hop counters diverged after reset")
	}
	if !reflect.DeepEqual(got.Point, want.Point) {
		t.Fatalf("points diverged after reset: %+v vs %+v", got.Point, want.Point)
	}
	if got.Utilization != want.Utilization {
		t.Fatal("utilization diverged after reset")
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 42, Workers: 1}
	cfg.SLDF.G = 1
	rates := RateGrid(0.2, 1.2, 0.2)

	serial, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{3, 8} {
		par, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("jobs=%d series diverged from serial:\n%+v\nvs\n%+v", jobs, par, serial)
		}
	}
}

func TestSweepScopedParallelMatchesSerial(t *testing.T) {
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 9, Workers: 1}
	cfg.SLDF.G = 1
	mk := func(sys *System) traffic.Pattern {
		return traffic.Uniform{N: int32(sys.ChipsPerGroup)}
	}
	rates := RateGrid(0.3, 0.9, 0.3)
	serial, err := SweepScopedOpts(cfg, mk, "", "local-uniform", rates, tinySim(),
		RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Label != "sw-less" {
		t.Fatalf("empty label not derived from config: %q", serial.Label)
	}
	par, err := SweepScopedOpts(cfg, mk, "", "local-uniform", rates, tinySim(),
		RunOptions{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, serial) {
		t.Fatalf("scoped series diverged:\n%+v\nvs\n%+v", par, serial)
	}
}

func TestSweepCacheReplayEqualsColdRun(t *testing.T) {
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Kind: MeshCGroup, ChipletDim: 2, NoCDim: 2, Seed: 5, Workers: 1}
	rates := RateGrid(0.4, 2.0, 0.4)

	plain, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Store: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 || cache.Misses() == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	warm, err := SweepOpts(cfg, "uniform", rates, tinySim(), RunOptions{Store: cache, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int(cache.Hits()) != len(rates) {
		t.Fatalf("warm run: %d hits, want %d", cache.Hits(), len(rates))
	}
	if !reflect.DeepEqual(cold, plain) || !reflect.DeepEqual(warm, cold) {
		t.Fatalf("cache replay diverged:\nplain %+v\ncold  %+v\nwarm  %+v", plain, cold, warm)
	}

	// A different seed must not hit the same cache entries.
	cfg2 := cfg
	cfg2.Seed = 6
	if _, err := SweepOpts(cfg2, "uniform", rates[:1], tinySim(), RunOptions{Store: cache}); err != nil {
		t.Fatal(err)
	}
	if int(cache.Hits()) != len(rates) {
		t.Fatal("cache hit across different seeds: key does not cover the seed")
	}
}

func TestSweepClosesPoolsOnErrorPaths(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := Config{Kind: SwitchlessDragonfly, SLDF: Radix16SLDF(), Seed: 1, Workers: 3}
	cfg.SLDF.G = 1
	// Unknown pattern: the error surfaces after the system (and its worker
	// pool goroutines) was built on the worker.
	if _, err := SweepOpts(cfg, "no-such-pattern", []float64{0.2, 0.4}, tinySim(),
		RunOptions{Jobs: 2}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	// Pool goroutines exit asynchronously after Close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
