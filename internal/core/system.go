package core

import (
	"fmt"

	"sldf/internal/energy"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/routing"
	"sldf/internal/topology"
	"sldf/internal/traffic"
)

// System is a built, routable network ready to run load points.
type System struct {
	Cfg   Config
	Net   *netsim.Network
	Label string

	Chips         int
	NodesPerChip  int
	Groups        int // W-groups (1 for single-switch / mesh systems)
	ChipsPerGroup int

	// SLDF exposes the switch-less topology tables when Kind is
	// SwitchlessDragonfly (nil otherwise); likewise DF for the baseline.
	SLDF *topology.SLDF
	DF   *topology.Dragonfly

	// aliveChips marks chips with a surviving terminal; nil when every
	// chip is alive. MeasureLoad uses it to silence traffic aimed at dead
	// chips on degraded builds. Churn-armed systems always allocate it (the
	// wrapper draws identically when every chip is alive) and update it in
	// place at every event batch, so patterns capturing the slice see deaths
	// and repairs immediately.
	aliveChips []bool

	// churnDomain, installBase and reroute are set by faulted builds:
	// the topology's fault domain (timeline victim sampling), a hook
	// reinstalling the build-time routing (Reset after a mid-run routing
	// swap), and the mid-run recompute — rebuild fault-aware routing from
	// the network's current Disabled state, install it, and retire in-flight
	// packets the new tables cannot carry.
	churnDomain topology.FaultDomain
	installBase func()
	reroute     func() error

	// rateGen is the reusable injection generator: MeasureLoad reinitializes
	// it in place so a sweep's measurement loop allocates nothing per point.
	rateGen traffic.Rate

	// flowDemandBuf is the retained demand-matrix buffer for the flow
	// engine's sampling pass (see flowDemands).
	flowDemandBuf []netsim.FlowDemand

	// routeDirty records that a churn batch swapped the network's routing
	// mid-run. Reset reinstalls the build-time tables only in that case:
	// SetRoute discards the flow solver's route-trace cache, so reinstalling
	// unconditionally would cold-start every point of a churn-armed sweep.
	routeDirty bool
}

// DeadChips returns the chips the fault set removed from the workload.
func (s *System) DeadChips() []int32 { return s.Net.DeadChips() }

// Build constructs the system described by cfg.
func Build(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	width := cfg.IntraWidth
	if width == 0 {
		width = 1
	}
	sys := &System{Cfg: cfg}

	// A non-empty churn timeline also forces the fault-grade build: mid-run
	// deaths need the deep VC ladder and a routing discipline that can
	// recompute around holes from the very first event.
	faulted := !cfg.Faults.Empty() || !cfg.Churn.Empty()

	switch cfg.Kind {
	case SingleSwitch:
		classes := topology.DefaultLinkClasses(1, width)
		s, err := topology.BuildSingleSwitch(cfg.Terminals, classes, cfg.netOptions())
		if err != nil {
			return nil, err
		}
		if faulted {
			if err := applyFaultSpec(s.Net, cfg.Faults, s.FaultDomain(), nil); err != nil {
				s.Net.Close()
				return nil, err
			}
			route, err := routing.NewFaultSwitchRoute(s)
			if err != nil {
				s.Net.Close()
				return nil, err
			}
			s.Net.SetRoute(route)
			sys.churnDomain = s.FaultDomain()
			sys.installBase = func() { s.Net.SetRoute(route) }
			sys.reroute = func() error {
				// The topology has no redundancy, so the recompute is pure
				// validation: a dead switch (or a dead terminal of a chip
				// that still has one) is a partition. Stranded packets were
				// already swept by the churn batch.
				r, err := routing.NewFaultSwitchRoute(s)
				if err != nil {
					return err
				}
				s.Net.SetRoute(r)
				return nil
			}
		} else {
			s.Net.SetRoute(s.Route())
		}
		sys.Net = s.Net
		sys.Groups = 1

	case MeshCGroup:
		classes := topology.DefaultLinkClasses(1, width)
		g, err := topology.BuildMeshCGroup(cfg.ChipletDim, cfg.NoCDim, classes, cfg.netOptions())
		if err != nil {
			return nil, err
		}
		if faulted {
			if err := applyFaultSpec(g.Net, cfg.Faults, g.FaultDomain(), g.FaultClosure); err != nil {
				g.Net.Close()
				return nil, err
			}
			fm, err := routing.NewFaultMeshRouter(g)
			if err != nil {
				g.Net.Close()
				return nil, err
			}
			g.Net.SetRoute(fm.Func())
			sys.churnDomain = g.FaultDomain()
			sys.installBase = func() { g.Net.SetRoute(fm.Func()) }
			sys.reroute = func() error {
				nfm, err := routing.NewFaultMeshRouter(g)
				if err != nil {
					return err
				}
				g.Net.SetRoute(nfm.Func())
				g.Net.SanitizeInFlight(nfm.Sanitize())
				return nil
			}
		} else {
			g.Net.SetRoute(g.RouteXY())
		}
		sys.Net = g.Net
		sys.Groups = 1

	case SwitchDragonfly:
		vcs := routing.DragonflyVCCount(cfg.Mode)
		if faulted {
			vcs = FaultVCs
		}
		classes := topology.DefaultLinkClasses(vcs, width)
		df, err := topology.BuildDragonfly(cfg.DF, classes, cfg.netOptions())
		if err != nil {
			return nil, err
		}
		if faulted {
			if err := applyFaultSpec(df.Net, cfg.Faults, df.FaultDomain(), nil); err != nil {
				df.Net.Close()
				return nil, err
			}
			fd, err := routing.NewFaultDragonflyRoute(df, cfg.Mode)
			if err != nil {
				df.Net.Close()
				return nil, err
			}
			df.Net.SetRoute(fd.Func())
			mode := cfg.Mode
			sys.churnDomain = df.FaultDomain()
			sys.installBase = func() { df.Net.SetRoute(fd.Func()) }
			sys.reroute = func() error {
				nfd, err := routing.NewFaultDragonflyRoute(df, mode)
				if err != nil {
					return err
				}
				df.Net.SetRoute(nfd.Func())
				df.Net.SanitizeInFlight(nfd.Sanitize())
				return nil
			}
		} else {
			route, err := routing.DragonflyRoute(df, cfg.Mode)
			if err != nil {
				df.Net.Close()
				return nil, err
			}
			df.Net.SetRoute(route)
		}
		sys.Net = df.Net
		sys.DF = df
		sys.Groups = cfg.DF.Groups()

	case SwitchlessDragonfly:
		params := cfg.SLDF
		if cfg.Mode == routing.ValiantLower {
			// The restricted-lower mode is defined on the reduced scheme.
			cfg.Scheme = routing.ReducedVC
		}
		if cfg.Scheme == routing.ReducedVC {
			params.Layout = topology.LayoutSouthNorth
		}
		vcs := routing.SLDFVCCount(cfg.Scheme, cfg.Mode)
		if faulted {
			vcs = FaultVCs
		}
		classes := topology.DefaultLinkClasses(vcs, width)
		s, err := topology.BuildSLDF(params, classes, cfg.netOptions())
		if err != nil {
			return nil, err
		}
		if faulted {
			if err := applyFaultSpec(s.Net, cfg.Faults, s.FaultDomain(), s.FaultClosure); err != nil {
				s.Net.Close()
				return nil, err
			}
			fr, err := routing.NewFaultSLDFRouter(s, cfg.Scheme, cfg.Mode)
			if err != nil {
				s.Net.Close()
				return nil, err
			}
			fr.Install(s.Net)
			// Capture the effective scheme/mode (ReducedVC may have been
			// forced above) so mid-run recomputes rebuild the same discipline.
			scheme, mode := cfg.Scheme, cfg.Mode
			sys.churnDomain = s.FaultDomain()
			sys.installBase = func() { fr.Install(s.Net) }
			sys.reroute = func() error {
				nfr, err := routing.NewFaultSLDFRouter(s, scheme, mode)
				if err != nil {
					return err
				}
				nfr.Install(s.Net)
				s.Net.SanitizeInFlight(nfr.Sanitize())
				return nil
			}
		} else {
			sr, err := routing.NewSLDFRouter(s, cfg.Scheme, cfg.Mode)
			if err != nil {
				s.Net.Close()
				return nil, err
			}
			sr.Install(s.Net)
		}
		sys.Net = s.Net
		sys.SLDF = s
		sys.Groups = params.Groups()

	default:
		return nil, fmt.Errorf("core: unknown system kind %d", cfg.Kind)
	}

	sys.Label = cfg.Label()
	sys.Chips = sys.Net.NumChips()
	// NodesPerChip is the pristine per-chip injector count, derived from
	// the configuration rather than the (possibly degraded) node tables:
	// the injection rate is split across this count, so a chip that lost
	// cores keeps the same per-node rate and simply offers proportionally
	// less load.
	switch cfg.Kind {
	case MeshCGroup:
		sys.NodesPerChip = cfg.NoCDim * cfg.NoCDim
	case SwitchlessDragonfly:
		sys.NodesPerChip = cfg.SLDF.NoCDim * cfg.SLDF.NoCDim
	default: // one NIC per chip
		sys.NodesPerChip = 1
	}
	sys.ChipsPerGroup = sys.Chips / sys.Groups
	if dead := sys.Net.DeadChips(); len(dead) > 0 {
		sys.aliveChips = make([]bool, sys.Chips)
		for c := int32(0); c < int32(sys.Chips); c++ {
			sys.aliveChips[c] = sys.Net.ChipAlive(c)
		}
	}
	if !cfg.Churn.Empty() {
		if err := sys.armChurn(); err != nil {
			sys.Net.Close()
			return nil, err
		}
	}
	return sys, nil
}

// armChurn resolves the configured timeline against the topology's fault
// domain and installs it on the network, with an apply hook that rebuilds
// fault-aware routing, retires packets the new tables cannot carry, and
// refreshes the chip-liveness table after every event batch.
func (sys *System) armChurn() error {
	if sys.aliveChips == nil {
		// Allocate up front even when every chip is alive: FilterDead draws
		// identically through an all-alive table, and mid-run deaths then
		// only flip bits in place — patterns and schedules capturing the
		// slice never need re-wrapping.
		sys.aliveChips = make([]bool, sys.Chips)
		sys.refreshAliveChips()
	}
	events := sys.Cfg.Churn.Resolve(sys.churnDomain)
	return sys.Net.ScheduleChurn(events, sys.Cfg.Churn.Policy, func(*netsim.Network) error {
		sys.routeDirty = true
		if err := sys.reroute(); err != nil {
			return err
		}
		sys.refreshAliveChips()
		return nil
	})
}

// refreshAliveChips re-reads chip liveness from the network in place,
// preserving the slice identity that installed traffic filters captured.
func (sys *System) refreshAliveChips() {
	for c := range sys.aliveChips {
		sys.aliveChips[c] = sys.Net.ChipAlive(int32(c))
	}
}

// ApplyChipKill immediately kills every surviving terminal router of the
// chip through the armed fault timeline — the programmatic "chip dies now"
// primitive behind mid-collective death experiments. Routing recomputes and
// stranded packets are dropped or retried per the timeline's policy before
// the call returns. Killing an already-dead chip is a no-op.
func (s *System) ApplyChipKill(chip int32) error {
	if !s.Net.ChurnArmed() {
		return fmt.Errorf("core: ApplyChipKill(%d) on %s without an armed churn timeline (set Cfg.Churn.Armed)", chip, s.Label)
	}
	if chip < 0 || int(chip) >= s.Chips {
		return fmt.Errorf("core: ApplyChipKill: chip %d out of range [0, %d)", chip, s.Chips)
	}
	nodes := s.Net.ChipNodes[chip]
	if len(nodes) == 0 {
		return nil
	}
	events := make([]netsim.TimedFault, 0, len(nodes))
	for _, id := range nodes {
		events = append(events, netsim.RouterFault(s.Net.Cycle, id, false))
	}
	return s.Net.InjectChurn(events)
}

// applyFaultSpec validates spec, resolves it against the topology's fault
// domain and disables the drawn components, tolerating chips that lose
// every terminal (they drop out of the workload; MeasureLoad filters
// traffic aimed at them). closure, when non-nil, is the topology's
// fault-closure hook: nodes the drawn faults cut off from the surviving
// network (e.g. a core isolated inside its C-group mesh) are added to the
// fault set, so a chip keeps only reachable terminals.
func applyFaultSpec(net *netsim.Network, spec topology.FaultSpec, domain topology.FaultDomain,
	closure func([]netsim.NodeID, []int32) []netsim.NodeID) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	routers, links := spec.Resolve(domain)
	if closure != nil {
		routers = append(routers, closure(routers, links)...)
	}
	_, err := net.ApplyFaultsTolerant(routers, links)
	return err
}

// Close releases the system's worker pool.
func (s *System) Close() { s.Net.Close() }

// Reset returns the system to its just-built state — empty network, full
// credit buffers, RNG streams re-derived from the seed — so one
// construction can serve every load point of a series. A measurement on a
// reset system is bitwise identical to one on a fresh Build of the same
// configuration. On churn-armed systems the network restores its build-time
// fault state and rewinds the event cursor; the build-time routing tables
// are reinstalled and chip liveness refreshed here, so a reset mid-churn
// system equals a fresh build with the same timeline.
func (s *System) Reset() {
	s.Net.Reset()
	if s.Net.ChurnArmed() {
		if s.routeDirty && s.installBase != nil {
			s.installBase()
			s.routeDirty = false
		}
		s.refreshAliveChips()
	}
}

// Result is one measured load point with its raw statistics and the
// Table II energy pricing of the observed hop mix.
type Result struct {
	Rate   float64
	Point  metrics.Point
	Stats  netsim.Stats
	Energy energy.Breakdown
	// Utilization is the aggregate link utilization per channel class over
	// the measurement window (1.0 = every link of the class saturated).
	Utilization [netsim.NumHopClasses]float64
	// Hottest lists the most loaded links, for bottleneck analysis.
	Hottest []netsim.LinkUtil
}

// MeasureLoad runs one open-loop load point on a freshly built system:
// warmup, measurement window, and a drain tail with traffic still offered.
// The system's network is consumed (statistics accumulate); build a new
// System for the next point.
func (s *System) MeasureLoad(pat traffic.Pattern, rate float64, sp SimParams) (Result, error) {
	s.Net.SetEngine(sp.Engine)
	if sp.Engine == netsim.EngineFlow {
		// The analytical path samples (and dead-filters) the pattern itself,
		// per churn segment.
		return s.measureLoadFlow(pat, rate, sp)
	}
	pat = traffic.FilterDead(pat, s.aliveChips)
	s.rateGen.Init(pat, rate, sp.PacketSize, s.NodesPerChip)
	s.Net.SetTraffic(&s.rateGen, sp.PacketSize, netsim.DstSameIndex)
	if err := s.Net.Run(sp.Warmup); err != nil {
		return Result{}, fmt.Errorf("%s warmup: %w", s.Label, err)
	}
	s.Net.StartMeasurement()
	if err := s.Net.Run(sp.Measure); err != nil {
		return Result{}, fmt.Errorf("%s measure: %w", s.Label, err)
	}
	s.Net.StopMeasurement()
	if err := s.Net.Run(sp.ExtraDrain); err != nil {
		return Result{}, fmt.Errorf("%s drain: %w", s.Label, err)
	}
	st := s.Net.Snapshot()
	byClass, hottest := s.Net.LinkUtilization(8)
	return Result{
		Rate: rate,
		Point: metrics.Point{
			Rate:       rate,
			Latency:    st.MeanLatency(),
			P50:        float64(st.Latency.Quantile(0.5)),
			P99:        float64(st.Latency.Quantile(0.99)),
			Throughput: st.Throughput(),
			Dropped:    st.DroppedPkts,
			Retried:    st.RetriedPkts,
			Refused:    st.RefusedPkts,
		},
		Stats:       st,
		Energy:      energy.FromStats(st, energy.TableII()),
		Utilization: byClass,
		Hottest:     hottest,
	}, nil
}

// PatternFor builds a standard pattern scoped to this system's chips.
func (s *System) PatternFor(name string) (traffic.Pattern, error) {
	switch name {
	case "hotspot":
		n := 4
		if s.Groups < n {
			n = s.Groups
		}
		hot := make([]int32, n)
		for i := range hot {
			hot[i] = int32(i)
		}
		return traffic.Hotspot{ChipsPerGroup: int32(s.ChipsPerGroup), HotGroups: hot}, nil
	case "worst-case", "worstcase":
		return traffic.WorstCase{ChipsPerGroup: int32(s.ChipsPerGroup), Groups: int32(s.Groups)}, nil
	case "local-uniform-wgroup":
		// Uniform traffic confined to the chips of one W-group (the first
		// ChipsPerGroup chip IDs) — Fig. 12(a)'s local-performance workload,
		// named so the spec stays pure data.
		return traffic.Uniform{N: int32(s.ChipsPerGroup)}, nil
	case "ring":
		return s.ringPattern(false), nil
	case "ring-bidir":
		return s.ringPattern(true), nil
	default:
		return traffic.ByName(name, int32(s.Chips))
	}
}

// ringPattern embeds a ring over the system's chips. On a mesh C-group the
// ring follows a snake (boustrophedon) order so consecutive chips are
// physically adjacent, as a real collective library would schedule it; on
// other systems the chip ID order already walks C-groups consecutively.
func (s *System) ringPattern(bidir bool) traffic.Pattern {
	if s.Cfg.Kind == MeshCGroup {
		dim := s.Cfg.ChipletDim
		order := make([]int32, 0, s.Chips)
		for row := 0; row < dim; row++ {
			for col := 0; col < dim; col++ {
				c := col
				if row%2 == 1 {
					c = dim - 1 - col
				}
				order = append(order, int32(row*dim+c))
			}
		}
		return traffic.NewRingOrder(order, bidir)
	}
	return traffic.Ring{N: int32(s.Chips), Bidirectional: bidir}
}
