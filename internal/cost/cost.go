// Package cost reproduces the paper's case-study comparison (Sec. III-C,
// Table III) and the datacenter-chip survey (Table I).
//
// Every derived quantity is computed from first principles with the paper's
// stated assumptions: 64-port switches; 64 blades × 2 nodes per compute
// cabinet; 8 top-of-rack switches per cabinet; 32 core-layer switches per
// switch cabinet; 16 Hx4Mesh boards or 8 PolarFly co-packages per cabinet;
// 8 wafers per switch-less-Dragonfly cabinet. Cable length is reported as
// inter-cabinet link count × mean cabinet distance in units of E (the
// datacenter grid pitch); the paper's own length figures use an unstated
// distance model, so ratios — not absolute lengths — are the comparison
// target.
package cost

import "fmt"

// ChipSpec is one column of Table I.
type ChipSpec struct {
	Name       string
	Category   string // "switching" or "computing"
	Lanes      int
	DataRateGb float64 // per-lane Gbps
}

// ThroughputTb returns aggregate IO throughput in Tb/s.
func (c ChipSpec) ThroughputTb() float64 {
	return float64(c.Lanes) * c.DataRateGb / 1000
}

// TableI returns the paper's chip survey.
func TableI() []ChipSpec {
	return []ChipSpec{
		{Name: "NVSwitch", Category: "switching", Lanes: 128, DataRateGb: 100},
		{Name: "Tofino2", Category: "switching", Lanes: 256, DataRateGb: 50},
		{Name: "Rosetta", Category: "switching", Lanes: 256, DataRateGb: 50},
		{Name: "H100", Category: "computing", Lanes: 36, DataRateGb: 100},
		{Name: "EPYC", Category: "computing", Lanes: 128, DataRateGb: 32},
		{Name: "DOJO D1", Category: "computing", Lanes: 576, DataRateGb: 112},
	}
}

// Row is one line of Table III.
type Row struct {
	Name       string
	ChipRadix  int
	SWRadix    int // 0 = switch-less
	Switches   int
	Cabinets   int
	Processors int
	// Cables is the total cable count; InterCabinetCables the subset leaving
	// a cabinet (what drives total cable length).
	Cables             int
	InterCabinetCables int
	TLocal             float64
	TGlobal            float64
	// Diameter as a human-readable hop expression.
	Diameter string
}

// CableLengthE returns the estimated total inter-cabinet cable length in
// units of E (mean cabinet-to-cabinet run in the flat layout).
func (r Row) CableLengthE() float64 { return float64(r.InterCabinetCables) }

const (
	swRadix          = 64
	nodesPerCabinet  = 128 // 64 blades × 2 nodes
	torPerCabinet    = 8
	coreSwPerCabinet = 32
	boardsPerCabinet = 16 // Hx4Mesh
	pkgsPerCabinet   = 8  // PolarFly co-packages
	wafersPerCabinet = 8  // switch-less Dragonfly
)

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FatTree returns the three-stage fat-tree row for `planes` parallel planes
// and an optional taper (downlinks:uplinks at the edge, 1 = no taper).
func FatTree(planes int, taper int) Row {
	k := swRadix
	var hosts, switchesPerPlane, edgePerPlane int
	if taper == 1 {
		hosts = k * k * k / 4            // 65536
		switchesPerPlane = 5 * k * k / 4 // 5120
		edgePerPlane = k * k / 2         // 2048 edge switches
	} else {
		// Tapered edge: 3:1 → 48 down / 16 up per edge switch.
		down := k * taper / (taper + 1) // 48
		up := k - down                  // 16
		edgePerPlane = k * k / 2        // keep 2048 edge switches
		hosts = edgePerPlane * down     // 98304
		uplinks := edgePerPlane * up    // 32768
		// Two-tier non-blocking Clos above the edge: agg uses half-radix
		// down, core full radix.
		agg := uplinks / (k / 2)
		core := agg / 2
		switchesPerPlane = edgePerPlane + agg + core // 2048+1024+512 = 3584
	}
	switches := switchesPerPlane * planes
	// Cables per plane: hosts + edge-agg + agg-core (non-blocking), tapered
	// proportionally above the edge.
	var cablesPerPlane int
	if taper == 1 {
		cablesPerPlane = 3 * hosts
	} else {
		cablesPerPlane = hosts + 2*(edgePerPlane*(k-k*taper/(taper+1)))
	}
	computeCab := ceilDiv(hosts, nodesPerCabinet)
	// Edge switches ride top-of-rack; aggregation+core switches live in
	// switch cabinets, 32 per cabinet.
	nonTor := (switchesPerPlane - edgePerPlane) * planes
	cabinets := computeCab + ceilDiv(nonTor, coreSwPerCabinet)
	name := fmt.Sprintf("Three-Stage Fat-Tree ×%d", planes)
	tg := float64(planes)
	if taper != 1 {
		name = fmt.Sprintf("Three-Stage F-T ×%d (%d:1 Taper)", planes, taper)
		tg = float64(planes) / float64(taper)
	}
	return Row{
		Name: name, ChipRadix: planes, SWRadix: k,
		Switches: switches, Cabinets: cabinets, Processors: hosts,
		Cables:             cablesPerPlane * planes,
		InterCabinetCables: cablesPerPlane*planes - hosts*planes, // host links stay in-rack
		TLocal:             float64(planes),
		TGlobal:            tg,
		Diameter:           "2Hg + 2Hl + 2H*l",
	}
}

// HammingMesh returns the Hx4Mesh row (HammingMesh with 4×4 boards) for the
// given number of planes.
func HammingMesh(planes int) Row {
	ft := FatTree(planes, 1)
	boards := ft.Processors / 16
	cabinets := ceilDiv(boards, boardsPerCabinet) +
		ceilDiv((5*swRadix*swRadix/4-swRadix*swRadix/2)*planes, coreSwPerCabinet)
	return Row{
		Name: fmt.Sprintf("%d-Plane Hx4Mesh", planes), ChipRadix: 4 * planes,
		SWRadix: swRadix, Switches: ft.Switches, Cabinets: cabinets,
		Processors:         ft.Processors,
		Cables:             ft.Cables,
		InterCabinetCables: ft.InterCabinetCables,
		TLocal:             2 * float64(planes),
		TGlobal:            0.5 * float64(planes),
		Diameter:           "2Hg + 2Hl + 2H*l + 4Hsr",
	}
}

// PolarFly returns the co-packaged PolarFly row for Erdős–Rényi parameter
// q=63 (radix-64 routers) with p processors per package.
func PolarFly(p int) Row {
	q := 63
	routers := q*q + q + 1 // 4033
	procs := routers * p
	netLinks := routers * (q + 1) / 2
	return Row{
		Name: fmt.Sprintf("Co-Packaged PolarFly (p=%d)", p), ChipRadix: 1,
		SWRadix: swRadix, Switches: routers,
		Cabinets:   ceilDiv(routers, pkgsPerCabinet),
		Processors: procs,
		// Terminal links are in-package (no cables): only network links count.
		Cables:             netLinks,
		InterCabinetCables: netLinks,
		TLocal:             1, TGlobal: 1,
		Diameter: "2Hg + 2Hsr",
	}
}

// Slingshot returns the switch-based Dragonfly row at maximum radix-64
// scale: 16 terminals, 31 local, 17 global per switch; 32 switches per
// group; 545 groups.
func Slingshot() Row {
	const (
		t = 16
		a = 32
		h = 17
	)
	g := a*h + 1 // 545
	switches := a * g
	procs := t * switches
	localCables := g * a * (a - 1) / 2
	globalCables := g * (g - 1) / 2
	termCables := procs
	// One group (32 switches, 512 nodes) occupies 4 compute cabinets with
	// its ToR switches; locals between those cabinets are inter-cabinet.
	cabinets := ceilDiv(procs, nodesPerCabinet)
	interLocal := localCables * 3 / 4 // links leaving their source cabinet
	return Row{
		Name: "Dragonfly (Slingshot)", ChipRadix: 1, SWRadix: swRadix,
		Switches: switches, Cabinets: cabinets, Processors: procs,
		Cables:             localCables + globalCables + termCables,
		InterCabinetCables: globalCables + interLocal,
		TLocal:             1, TGlobal: 1,
		Diameter: "Hg + 2Hl + 2H*l",
	}
}

// SwitchlessDragonfly returns the paper's wafer-based row at the same scale
// as Slingshot: n=12, m=4 chiplets (k=48 ports: 31 local + 17 global),
// ab=32 C-groups per W-group, 545 W-groups, 279040 chiplets.
func SwitchlessDragonfly() Row {
	const (
		m  = 4
		n  = 12
		ab = 32
		h  = 17
	)
	g := ab*h + 1 // 545
	procs := ab * m * m * g
	localCables := g * ab * (ab - 1) / 2
	globalCables := g * (g - 1) / 2
	// One W-group (8 wafers) per cabinet: every local cable stays inside
	// its cabinet; only global cables cross cabinets.
	cabinets := g
	return Row{
		Name: "Switch-less Dragonfly", ChipRadix: n, SWRadix: 0,
		Switches: 0, Cabinets: cabinets, Processors: procs,
		Cables:             localCables + globalCables,
		InterCabinetCables: globalCables,
		TLocal:             3, // intra-C-group (Eq. 5); intra-W-group is 2 (Eq. 4)
		TGlobal:            1,
		Diameter:           "Hg + 2Hl + 30Hsr",
	}
}

// Dojo returns the 2D-mesh-of-wafers + central switch row (Sec. II-A2),
// reported mostly from the paper's DOJO citations.
func Dojo() Row {
	return Row{
		Name: "2D-Mesh & Switch (DOJO)", ChipRadix: 8, SWRadix: 60,
		Switches: 1, Cabinets: 2, Processors: 450,
		TLocal: 1.6, TGlobal: 0.53,
		Diameter: "2H*l + 18Hsr",
	}
}

// TableIII returns all rows of the comparison in paper order.
func TableIII() []Row {
	return []Row{
		Dojo(),
		FatTree(1, 1),
		FatTree(4, 1),
		FatTree(4, 3),
		HammingMesh(1),
		HammingMesh(4),
		PolarFly(32),
		Slingshot(),
		SwitchlessDragonfly(),
	}
}
