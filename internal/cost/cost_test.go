package cost

import (
	"math"
	"testing"
)

func TestTableIThroughputs(t *testing.T) {
	// Paper Table I throughput row: NVSwitch 12.8, Tofino2 12.8, Rosetta
	// 12.8, H100 3.6, EPYC ~4, DOJO D1 ~63 Tb/s.
	want := map[string]float64{
		"NVSwitch": 12.8, "Tofino2": 12.8, "Rosetta": 12.8,
		"H100": 3.6, "EPYC": 4.096, "DOJO D1": 64.512,
	}
	for _, c := range TableI() {
		if math.Abs(c.ThroughputTb()-want[c.Name]) > 0.001 {
			t.Fatalf("%s throughput %v, want %v", c.Name, c.ThroughputTb(), want[c.Name])
		}
	}
}

func TestTableIComputingMatchesSwitching(t *testing.T) {
	// The paper's point: high-end computing chips match or exceed switch
	// silicon in IO throughput.
	var maxSwitch, maxCompute float64
	for _, c := range TableI() {
		if c.Category == "switching" && c.ThroughputTb() > maxSwitch {
			maxSwitch = c.ThroughputTb()
		}
		if c.Category == "computing" && c.ThroughputTb() > maxCompute {
			maxCompute = c.ThroughputTb()
		}
	}
	if maxCompute < maxSwitch {
		t.Fatalf("computing max %v < switching max %v", maxCompute, maxSwitch)
	}
}

func TestFatTreeSinglePlane(t *testing.T) {
	r := FatTree(1, 1)
	if r.Switches != 5120 {
		t.Fatalf("switches %d, want 5120", r.Switches)
	}
	if r.Cabinets != 608 {
		t.Fatalf("cabinets %d, want 608", r.Cabinets)
	}
	if r.Processors != 65536 {
		t.Fatalf("processors %d, want 65536", r.Processors)
	}
	if r.Cables != 196608 { // ≈197K in the paper
		t.Fatalf("cables %d, want 196608", r.Cables)
	}
}

func TestFatTreeFourPlane(t *testing.T) {
	r := FatTree(4, 1)
	if r.Switches != 20480 || r.Cabinets != 896 || r.Processors != 65536 {
		t.Fatalf("4-plane FT: %+v", r)
	}
	if r.Cables != 786432 { // ≈786K
		t.Fatalf("cables %d, want 786432", r.Cables)
	}
	if r.TLocal != 4 || r.TGlobal != 4 {
		t.Fatalf("throughputs %v/%v, want 4/4", r.TLocal, r.TGlobal)
	}
}

func TestFatTreeTapered(t *testing.T) {
	r := FatTree(4, 3)
	if r.Switches != 14336 {
		t.Fatalf("switches %d, want 14336", r.Switches)
	}
	if r.Cabinets != 960 {
		t.Fatalf("cabinets %d, want 960", r.Cabinets)
	}
	if r.Processors != 98304 {
		t.Fatalf("processors %d, want 98304", r.Processors)
	}
	if r.Cables != 655360 { // ≈655K
		t.Fatalf("cables %d, want 655360", r.Cables)
	}
	if math.Abs(r.TGlobal-4.0/3) > 1e-9 {
		t.Fatalf("tapered Tglobal %v, want 4/3", r.TGlobal)
	}
}

func TestHammingMeshRows(t *testing.T) {
	h1 := HammingMesh(1)
	if h1.Cabinets != 352 || h1.Switches != 5120 || h1.Processors != 65536 {
		t.Fatalf("Hx4Mesh 1-plane: %+v", h1)
	}
	if h1.TLocal != 2 || h1.TGlobal != 0.5 {
		t.Fatalf("Hx4Mesh throughput %v/%v", h1.TLocal, h1.TGlobal)
	}
	h4 := HammingMesh(4)
	if h4.Cabinets != 640 || h4.Switches != 20480 || h4.ChipRadix != 16 {
		t.Fatalf("Hx4Mesh 4-plane: %+v", h4)
	}
	if h4.TLocal != 8 || h4.TGlobal != 2 {
		t.Fatalf("Hx4Mesh-4 throughput %v/%v", h4.TLocal, h4.TGlobal)
	}
}

func TestPolarFlyRow(t *testing.T) {
	r := PolarFly(32)
	if r.Switches != 4033 {
		t.Fatalf("PolarFly routers %d, want 4033", r.Switches)
	}
	if r.Processors != 129056 {
		t.Fatalf("PolarFly processors %d, want 129056", r.Processors)
	}
	// Paper rounds cabinets to 504; ceil(4033/8) = 505.
	if r.Cabinets < 504 || r.Cabinets > 505 {
		t.Fatalf("PolarFly cabinets %d, want 504±1", r.Cabinets)
	}
	if r.Cables != 129056 { // ≈129K
		t.Fatalf("PolarFly cables %d, want 129056", r.Cables)
	}
}

func TestSlingshotRow(t *testing.T) {
	r := Slingshot()
	if r.Switches != 17440 {
		t.Fatalf("switches %d, want 17440", r.Switches)
	}
	if r.Processors != 279040 {
		t.Fatalf("processors %d, want 279040", r.Processors)
	}
	if r.Cabinets != 2180 {
		t.Fatalf("cabinets %d, want 2180", r.Cabinets)
	}
	if r.Cables != 697600 { // ≈698K
		t.Fatalf("cables %d, want 697600", r.Cables)
	}
}

func TestSwitchlessDragonflyRow(t *testing.T) {
	r := SwitchlessDragonfly()
	if r.Switches != 0 || r.SWRadix != 0 {
		t.Fatal("switch-less row must have no switches")
	}
	if r.Processors != 279040 {
		t.Fatalf("processors %d, want 279040", r.Processors)
	}
	if r.Cabinets != 545 {
		t.Fatalf("cabinets %d, want 545", r.Cabinets)
	}
	if r.Cables != 418560 { // ≈419K
		t.Fatalf("cables %d, want 418560", r.Cables)
	}
}

func TestSwitchlessBeatsSlingshot(t *testing.T) {
	// The paper's headline cost claims at equal scale (279040 processors):
	// 4× fewer cabinets, zero switches, and less than half the inter-cabinet
	// cable length.
	sl := Slingshot()
	sw := SwitchlessDragonfly()
	if sw.Processors != sl.Processors {
		t.Fatal("rows must compare equal scale")
	}
	if sl.Cabinets < 4*sw.Cabinets {
		t.Fatalf("cabinet reduction %d→%d below 4×", sl.Cabinets, sw.Cabinets)
	}
	ratio := sw.CableLengthE() / sl.CableLengthE()
	if ratio >= 0.5 {
		t.Fatalf("cable length ratio %v, want < 0.5 (paper: 73K/154K)", ratio)
	}
	if sw.TLocal <= sl.TLocal || sw.TGlobal < sl.TGlobal {
		t.Fatalf("throughput regression: %v/%v vs %v/%v",
			sw.TLocal, sw.TGlobal, sl.TLocal, sl.TGlobal)
	}
}

func TestTableIIIComplete(t *testing.T) {
	rows := TableIII()
	if len(rows) != 9 {
		t.Fatalf("Table III rows = %d, want 9", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Name == "" || seen[r.Name] {
			t.Fatalf("bad/duplicate row %q", r.Name)
		}
		seen[r.Name] = true
		if r.Processors <= 0 {
			t.Fatalf("row %q has no processors", r.Name)
		}
	}
}
