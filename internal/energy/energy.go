// Package energy implements the paper's transmission-energy model
// (Sec. V-C, Fig. 15): each delivered packet's energy is the sum of its
// per-class hop counts priced with the Table II constants. The paper also
// uses a simplified "1 pJ/bit average intra-C-group hop"; both pricings are
// provided.
package energy

import "sldf/internal/netsim"

// Model prices one traversed channel per class in pJ/bit.
type Model struct {
	OnChip float64
	SR     float64
	Local  float64
	Global float64
}

// TableII is the paper's per-class pricing: on-chip 0.1, short-reach 2,
// long-reach cable/optical 20 pJ/bit.
func TableII() Model {
	return Model{OnChip: 0.1, SR: 2, Local: 20, Global: 20}
}

// Simplified is the Fig. 15 pricing where every intra-C-group hop (on-chip
// or short-reach) averages 1 pJ/bit.
func Simplified() Model {
	return Model{OnChip: 1, SR: 1, Local: 20, Global: 20}
}

// PerClass returns the price of one hop of the given class.
func (m Model) PerClass(c netsim.HopClass) float64 {
	switch c {
	case netsim.HopOnChip:
		return m.OnChip
	case netsim.HopShortReach:
		return m.SR
	case netsim.HopLongLocal:
		return m.Local
	case netsim.HopGlobal:
		return m.Global
	}
	return 0
}

// Breakdown is the Fig. 15 bar decomposition: the average pJ/bit spent
// inside C-groups (NoC + short-reach + conversion hops) and between
// C-groups (long-reach local + global cables), per delivered packet.
type Breakdown struct {
	IntraCGroup float64 // pJ/bit
	InterCGroup float64 // pJ/bit
}

// Total returns the total average energy per transmitted bit.
func (b Breakdown) Total() float64 { return b.IntraCGroup + b.InterCGroup }

// FromStats prices a simulation's mean per-packet hop counts.
func FromStats(st netsim.Stats, m Model) Breakdown {
	return Breakdown{
		IntraCGroup: st.MeanHops(netsim.HopOnChip)*m.OnChip +
			st.MeanHops(netsim.HopShortReach)*m.SR,
		InterCGroup: st.MeanHops(netsim.HopLongLocal)*m.Local +
			st.MeanHops(netsim.HopGlobal)*m.Global,
	}
}

// FromHops prices explicit mean hop counts (used by analytical estimates).
func FromHops(onChip, sr, local, global float64, m Model) Breakdown {
	return Breakdown{
		IntraCGroup: onChip*m.OnChip + sr*m.SR,
		InterCGroup: local*m.Local + global*m.Global,
	}
}
