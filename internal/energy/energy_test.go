package energy

import (
	"math"
	"testing"

	"sldf/internal/netsim"
)

func TestPerClassPricing(t *testing.T) {
	m := TableII()
	if m.PerClass(netsim.HopOnChip) != 0.1 {
		t.Fatal("on-chip price")
	}
	if m.PerClass(netsim.HopShortReach) != 2 {
		t.Fatal("SR price")
	}
	if m.PerClass(netsim.HopLongLocal) != 20 || m.PerClass(netsim.HopGlobal) != 20 {
		t.Fatal("long-reach price")
	}
	if m.PerClass(netsim.HopEject) != 0 {
		t.Fatal("ejection must be free")
	}
}

func TestBreakdownFromStats(t *testing.T) {
	var st netsim.Stats
	st.WindowPkts = 10
	st.Hops[netsim.HopOnChip] = 40     // 4 per packet
	st.Hops[netsim.HopShortReach] = 20 // 2 per packet
	st.Hops[netsim.HopLongLocal] = 20  // 2 per packet
	st.Hops[netsim.HopGlobal] = 10     // 1 per packet
	b := FromStats(st, TableII())
	if math.Abs(b.IntraCGroup-(4*0.1+2*2)) > 1e-9 {
		t.Fatalf("intra = %v", b.IntraCGroup)
	}
	if math.Abs(b.InterCGroup-(2*20+1*20)) > 1e-9 {
		t.Fatalf("inter = %v", b.InterCGroup)
	}
	if math.Abs(b.Total()-64.4) > 1e-9 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestSwitchlessCheaperThanSwitchBased(t *testing.T) {
	// Paper Fig. 15(a) analytical sanity: a small-scale switch-less minimal
	// path (1 global + 2 local + ~10 intra hops) must be cheaper than the
	// switch-based one (1 global + 4 local-class hops, counting the two
	// terminal links).
	m := Simplified()
	swl := FromHops(6, 6, 2, 1, m) // generous intra-C-group hop count
	swb := FromHops(0, 0, 4, 1, m) // Hg + 2Hl + 2H*l
	if swl.Total() >= swb.Total() {
		t.Fatalf("switch-less %v ≥ switch-based %v pJ/bit", swl.Total(), swb.Total())
	}
}

func TestFromStatsEmpty(t *testing.T) {
	var st netsim.Stats
	b := FromStats(st, TableII())
	if b.Total() != 0 {
		t.Fatalf("empty stats priced at %v", b.Total())
	}
}
