package engine

import "math/bits"

// Bitset is a fixed-capacity bitmap used as a deterministic work set by the
// simulator's active-set cycle engine: Add is idempotent, membership is O(1),
// and iteration always visits members in ascending index order regardless of
// insertion order, which keeps parallel simulations bit-reproducible.
//
// A Bitset is owned by exactly one shard; it performs no synchronization.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a set able to hold indices [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set (valid indices are [0, Len)).
func (b *Bitset) Len() int { return b.n }

// Add inserts i into the set; adding an existing member is a no-op.
func (b *Bitset) Add(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Remove deletes i from the set; removing a non-member is a no-op.
func (b *Bitset) Remove(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Clear empties the set, keeping its capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every member in ascending order. Iteration works on
// a per-word snapshot: fn may remove the index it was called with, and
// removals or additions in words not yet snapshotted (higher than the
// current index's word) are honored, but changes to other indices within
// the current 64-index word take effect only on the next ForEach call.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			w &= w - 1
			fn(base + tz)
		}
	}
}
