package engine

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if b.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		b.Add(i)
		if !b.Has(i) {
			t.Fatalf("Add(%d) did not register", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Add(64) // idempotent
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after duplicate Add = %d, want 7", got)
	}
	b.Remove(64)
	if b.Has(64) || b.Count() != 6 {
		t.Fatalf("Remove(64) failed: has=%v count=%d", b.Has(64), b.Count())
	}
	b.Remove(64) // idempotent
	b.Clear()
	if b.Count() != 0 {
		t.Fatalf("Count after Clear = %d", b.Count())
	}
}

// TestBitsetForEachAscending checks the determinism contract: iteration
// order is ascending no matter the insertion order.
func TestBitsetForEachAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBitset(500)
	want := map[int]bool{}
	for _, i := range rng.Perm(500)[:137] {
		b.Add(i)
		want[i] = true
	}
	prev := -1
	seen := 0
	b.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("iteration not ascending: %d after %d", i, prev)
		}
		if !want[i] {
			t.Fatalf("iterated non-member %d", i)
		}
		prev = i
		seen++
	})
	if seen != len(want) {
		t.Fatalf("visited %d members, want %d", seen, len(want))
	}
}

// TestBitsetRemoveDuringIteration mirrors how the cycle engine retires
// drained routers while walking the active set.
func TestBitsetRemoveDuringIteration(t *testing.T) {
	b := NewBitset(200)
	for i := 0; i < 200; i += 3 {
		b.Add(i)
	}
	b.ForEach(func(i int) {
		if i%2 == 0 {
			b.Remove(i)
		}
	})
	b.ForEach(func(i int) {
		if i%2 == 0 {
			t.Fatalf("even member %d survived removal", i)
		}
	})
}
