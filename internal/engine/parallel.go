package engine

import (
	"runtime"
	"sync"
)

// Pool is a barrier-style parallel executor. It owns a fixed set of worker
// goroutines and runs "phases": a phase applies a function to every shard
// index in [0, shards) and returns only after all shards completed.
//
// The simulator uses one shard per worker and partitions routers statically
// across shards, so a phase touches each router exactly once. Because Run
// is a full barrier, two consecutive phases never overlap, which is what
// makes the single-producer/single-consumer link queues safe without locks.
//
// A Pool with Workers <= 1 degrades to a plain loop with zero goroutine
// overhead, which matters for the many small simulations in the test suite.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup
	closed  bool
}

type task struct {
	fn    func(shard int)
	shard int
	done  *sync.WaitGroup
}

// NewPool creates a pool with the given number of workers.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan task, workers)
		for i := 0; i < workers; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t.fn(t.shard)
		t.done.Done()
	}
}

// Workers returns the degree of parallelism of the pool.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(shard) for every shard in [0, shards) and blocks until all
// have finished. fn must not call Run on the same pool (no nesting).
func (p *Pool) Run(shards int, fn func(shard int)) {
	if p.workers <= 1 || shards <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var done sync.WaitGroup
	done.Add(shards)
	for s := 0; s < shards; s++ {
		p.tasks <- task{fn: fn, shard: s, done: &done}
	}
	done.Wait()
}

// Close shuts the worker goroutines down. The pool must not be used after
// Close. Closing a serial pool is a no-op.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.tasks != nil {
		close(p.tasks)
	}
}

// ShardBounds splits n items into `shards` contiguous ranges and returns the
// half-open range [lo, hi) for the given shard. Ranges differ in size by at
// most one item.
func ShardBounds(n, shards, shard int) (lo, hi int) {
	if shards <= 0 {
		return 0, n
	}
	base := n / shards
	rem := n % shards
	lo = shard*base + min(shard, rem)
	size := base
	if shard < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
