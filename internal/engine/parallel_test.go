package engine

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolRunsAllShards(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		var count int64
		hit := make([]int32, 100)
		p.Run(len(hit), func(s int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&hit[s], 1)
		})
		if count != int64(len(hit)) {
			t.Fatalf("workers=%d: ran %d shards, want %d", workers, count, len(hit))
		}
		for s, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, s, h)
			}
		}
		p.Close()
	}
}

func TestPoolBarrier(t *testing.T) {
	// A phase must be fully complete before Run returns: the second phase
	// observes every write of the first.
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 64)
	for round := 0; round < 50; round++ {
		p.Run(len(buf), func(s int) { buf[s] = round + 1 })
		p.Run(len(buf), func(s int) {
			if buf[s] != round+1 {
				t.Errorf("round %d shard %d: saw stale value %d", round, s, buf[s])
			}
		})
	}
}

func TestPoolZeroShards(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Run(0, func(int) { t.Fatal("shard function called for 0 shards") })
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestPoolSerialFallback(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	order := make([]int, 0, 10)
	p.Run(10, func(s int) { order = append(order, s) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

func TestShardBoundsCoverAndDisjoint(t *testing.T) {
	f := func(nRaw, shardsRaw uint16) bool {
		n := int(nRaw % 5000)
		shards := int(shardsRaw%32) + 1
		prevHi := 0
		for s := 0; s < shards; s++ {
			lo, hi := ShardBounds(n, shards, s)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardBoundsBalanced(t *testing.T) {
	const n, shards = 103, 10
	minSize, maxSize := n, 0
	for s := 0; s < shards; s++ {
		lo, hi := ShardBounds(n, shards, s)
		size := hi - lo
		if size < minSize {
			minSize = size
		}
		if size > maxSize {
			maxSize = size
		}
	}
	if maxSize-minSize > 1 {
		t.Fatalf("imbalanced shards: min %d max %d", minSize, maxSize)
	}
}
