// Package engine provides the low-level execution machinery shared by the
// simulator: deterministic random number generation and a barrier-style
// parallel executor used to step all routers each cycle.
//
// Everything in this package is allocation-free on the hot path and safe to
// shard across goroutines: each RNG instance is owned by exactly one router
// (or one traffic generator), and the executor guarantees phase barriers so
// that single-producer/single-consumer queues need no locks.
package engine

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is not safe for concurrent use;
// give each concurrent owner its own instance.
//
// The zero value is invalid; construct with NewRNG.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, following the xoshiro authors' advice.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
// Two RNGs built from the same seed produce identical streams.
func NewRNG(seed uint64) RNG {
	var r RNG
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	return r
}

// NewRNGStream derives an independent stream for (seed, stream).
// Use it to give every router/generator its own deterministic RNG.
func NewRNGStream(seed, stream uint64) RNG {
	return NewRNG(seed*0x9e3779b97f4a7c15 ^ (stream+1)*0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := -uint64(n) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int31n is Intn for int32 ranges, convenient for node IDs.
func (r *RNG) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliThreshold precomputes the integer threshold for repeated
// Bernoulli draws with a fixed p in (0,1): rng.Hit(BernoulliThreshold(p))
// consumes one Uint64 and decides bit-identically to rng.Bernoulli(p),
// skipping the integer→float conversion on every draw.
//
// Why it is exact: Float64 returns k/2^53 with k = Uint64()>>11, and both
// the conversion and the division are exact, so k/2^53 < p ⇔ k < p·2^53
// ⇔ k < ceil(p·2^53) (k is an integer; p·2^53 is an exact float scaling).
func BernoulliThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// Hit reports true with the probability encoded by BernoulliThreshold.
func (r *RNG) Hit(threshold uint64) bool {
	return r.Uint64()>>11 < threshold
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
