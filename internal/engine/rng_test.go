package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNGStream(7, 0)
	b := NewRNGStream(7, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams 0 and 1 produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r := NewRNG(1)
	r.Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 8, 80000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		out := make([]int32, n)
		r.Perm(out)
		seen := make(map[int32]bool, n)
		for _, v := range out {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt31n(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 1000; i++ {
		v := r.Int31n(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}

// TestBernoulliThresholdExact checks the integer-threshold fast path
// decides bit-identically to Bernoulli for the same RNG stream, including
// awkward probabilities near the representation edges.
func TestBernoulliThresholdExact(t *testing.T) {
	probs := []float64{1e-12, 0.0125, 0.1, 1.0 / 3, 0.5, 0.875, 0.999999,
		1 - 1e-15, 5e-2 / 4 / 4}
	for _, p := range probs {
		a := NewRNG(99)
		b := NewRNG(99)
		thresh := BernoulliThreshold(p)
		for i := 0; i < 200000; i++ {
			want := a.Bernoulli(p)
			got := b.Hit(thresh)
			if want != got {
				t.Fatalf("p=%g draw %d: Bernoulli=%v Hit=%v", p, i, want, got)
			}
		}
	}
}
