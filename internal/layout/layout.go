// Package layout reproduces the paper's physical feasibility study of a
// C-group on the wafer (Sec. V-A1, Fig. 9): placement area, PHY lane
// budgets, off-wafer IO counts, and the resulting bisection/aggregate
// bandwidths. All numbers derive from published technology parameters
// (UCIe x64 PHYs, 112G SerDes, InFO-SoW bump pitch).
package layout

import "fmt"

// Tech captures the wafer/PHY technology constants used by the paper.
type Tech struct {
	WaferDiameterMM   float64 // 300 mm
	BumpPitchUM       float64 // 55 µm on-wafer bump pitch
	LineSpaceUM       float64 // 5 µm RDL line space
	UCIeLaneGbps      float64 // 32 Gb/s per UCIe lane
	SerDesLaneGbps    float64 // 112 Gb/s per long-reach SerDes lane
	ConnectorPitchMM  float64 // ≥0.3 mm off-wafer connector pitch
	UCIeEdgeGBsPerMM  float64 // 1317 GB/s per mm of die edge (UCIe spec)
	UCIeAreaGBsPerMM2 float64 // 947 GB/s per mm² (UCIe spec)
}

// DefaultTech returns the constants cited in the paper.
func DefaultTech() Tech {
	return Tech{
		WaferDiameterMM:   300,
		BumpPitchUM:       55,
		LineSpaceUM:       5,
		UCIeLaneGbps:      32,
		SerDesLaneGbps:    112,
		ConnectorPitchMM:  0.3,
		UCIeEdgeGBsPerMM:  1317,
		UCIeAreaGBsPerMM2: 947,
	}
}

// CGroupPlan is the Fig. 9 floorplan input: a MeshDim×MeshDim array of
// chiplets with per-edge channel counts and PHY provisioning.
type CGroupPlan struct {
	Tech             Tech
	MeshDim          int     // chiplets per edge (4 in Fig. 9)
	ChipletEdgeMM    float64 // ~12 mm
	ChannelsPerEdge  int     // physical channels per chiplet edge (6 in Fig. 9)
	UCIeLanesPerCh   int     // on-wafer lanes per channel (128 = two x64 PHYs)
	SerDesLanesPerCh int     // off-wafer lanes per external channel (8)
	ConvModuleMM2    float64 // SR-LR conversion module area (~6 mm²)
	SizeMM           float64 // C-group edge length (60 mm)
}

// PaperPlan returns the exact Fig. 9 configuration.
func PaperPlan() CGroupPlan {
	return CGroupPlan{
		Tech:             DefaultTech(),
		MeshDim:          4,
		ChipletEdgeMM:    12,
		ChannelsPerEdge:  6,
		UCIeLanesPerCh:   128,
		SerDesLanesPerCh: 8,
		ConvModuleMM2:    6,
		SizeMM:           60,
	}
}

// Report is the computed feasibility summary.
type Report struct {
	Chiplets         int
	ExternalPorts    int     // k: perimeter channels converted to long-reach
	OnWaferPortGbps  float64 // per on-wafer channel
	OffWaferPortGbps float64 // per external channel
	DiffPairs        int     // off-C-group differential pairs
	TotalIOs         int     // incl. power/ground estimate
	BisectionTBs     float64 // on-wafer full-duplex bisection, TB/s
	AggregateTBs     float64 // off-C-group aggregate (both directions), TB/s
	SiliconAreaMM2   float64 // chiplets + conversion modules
	CGroupAreaMM2    float64
	AreaUtilization  float64
	ConnectorEdgeMM  float64 // edge length needed by off-wafer connectors
	EdgeBudgetMM     float64 // available edge length (4 sides)
	CGroupsPerWafer  int     // how many such C-groups fit on the wafer
	WaferIOChannels  int     // off-wafer channels for a 4-C-group wafer at k=48 use
}

// Analyze computes the Fig. 9 numbers for the plan.
func (p CGroupPlan) Analyze() (Report, error) {
	if p.MeshDim < 1 || p.ChannelsPerEdge < 1 {
		return Report{}, fmt.Errorf("layout: invalid plan %+v", p)
	}
	var r Report
	r.Chiplets = p.MeshDim * p.MeshDim
	// Perimeter channels: 4 edges × MeshDim chiplets × ChannelsPerEdge.
	r.ExternalPorts = 4 * p.MeshDim * p.ChannelsPerEdge
	r.OnWaferPortGbps = float64(p.UCIeLanesPerCh) * p.Tech.UCIeLaneGbps
	r.OffWaferPortGbps = float64(p.SerDesLanesPerCh) * p.Tech.SerDesLaneGbps
	// Differential signalling: 2 pads per lane, both directions per channel.
	r.DiffPairs = r.ExternalPorts * p.SerDesLanesPerCh * 2
	// Paper: ~5500 IOs including power and ground (≈1.8× signal pads).
	r.TotalIOs = int(float64(r.DiffPairs*2) * 1.8)
	// Bisection: a vertical cut crosses MeshDim chiplets × ChannelsPerEdge
	// on-wafer channels; convert Gb/s → TB/s (byte = 8 bits).
	cutGbps := float64(p.MeshDim*p.ChannelsPerEdge) * r.OnWaferPortGbps
	r.BisectionTBs = cutGbps / 8 / 1000
	// Aggregate off-C-group bandwidth, both directions.
	r.AggregateTBs = float64(r.ExternalPorts) * r.OffWaferPortGbps * 2 / 8 / 1000
	r.SiliconAreaMM2 = float64(r.Chiplets)*p.ChipletEdgeMM*p.ChipletEdgeMM +
		float64(r.ExternalPorts)*p.ConvModuleMM2
	r.CGroupAreaMM2 = p.SizeMM * p.SizeMM
	r.AreaUtilization = r.SiliconAreaMM2 / r.CGroupAreaMM2
	// Off-wafer connectors: one pad per pair at the connector pitch, in a
	// 4-row pad field along the perimeter.
	r.ConnectorEdgeMM = float64(r.DiffPairs) * p.Tech.ConnectorPitchMM / 4
	r.EdgeBudgetMM = 4 * p.SizeMM
	// Wafer packing: how many SizeMM squares fit in the inscribed square of
	// the wafer (conservative estimate; the paper places 4).
	inscribed := p.Tech.WaferDiameterMM / 1.4142
	perSide := int(inscribed / p.SizeMM)
	r.CGroupsPerWafer = perSide * perSide
	// Sec. III-E: with 4 C-groups per wafer and k=48 ports in use per
	// C-group (Table III config), a wafer fans out 192 channels.
	r.WaferIOChannels = 4 * 48
	return r, nil
}

// Feasible reports whether the plan fits its area and edge budgets.
func (r Report) Feasible() bool {
	return r.AreaUtilization <= 1 && r.ConnectorEdgeMM <= r.EdgeBudgetMM
}
