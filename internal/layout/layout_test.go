package layout

import (
	"math"
	"testing"
)

func TestPaperPlanNumbers(t *testing.T) {
	r, err := PaperPlan().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r.Chiplets != 16 {
		t.Fatalf("chiplets %d, want 16", r.Chiplets)
	}
	if r.ExternalPorts != 96 {
		t.Fatalf("external ports %d, want 96", r.ExternalPorts)
	}
	// "128 lanes of UCIe ... achieving 4096 Gb/s/port".
	if math.Abs(r.OnWaferPortGbps-4096) > 1e-9 {
		t.Fatalf("on-wafer port %v Gb/s, want 4096", r.OnWaferPortGbps)
	}
	// "8 lanes of 112G SerDes ... 896 Gb/s/port".
	if math.Abs(r.OffWaferPortGbps-896) > 1e-9 {
		t.Fatalf("off-wafer port %v Gb/s, want 896", r.OffWaferPortGbps)
	}
	// "a C-group ... leads out 1536 pairs of differential ports".
	if r.DiffPairs != 1536 {
		t.Fatalf("diff pairs %d, want 1536", r.DiffPairs)
	}
	// "~5500 IOs including the power and ground".
	if r.TotalIOs < 5000 || r.TotalIOs > 6000 {
		t.Fatalf("total IOs %d, want ≈5500", r.TotalIOs)
	}
	// "total bisection ... 12TB/s": 24 channels × 4096 Gb/s = 12.29 TB/s.
	if math.Abs(r.BisectionTBs-12.288) > 0.01 {
		t.Fatalf("bisection %v TB/s, want 12.29", r.BisectionTBs)
	}
	// "aggregation bandwidth ... 20.9TB/s": 96 ports × 896 Gb/s × 2 dirs =
	// 21.5 TB/s; the paper reports 20.9 (≈3% derating). Accept ±15%.
	if r.AggregateTBs < 20.9*0.85 || r.AggregateTBs > 20.9*1.15 {
		t.Fatalf("aggregate %v TB/s, want ≈20.9", r.AggregateTBs)
	}
}

func TestPaperPlanFeasible(t *testing.T) {
	r, err := PaperPlan().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("paper plan infeasible: %+v", r)
	}
	// Silicon fits in the 60×60 mm C-group with headroom for routing.
	if r.AreaUtilization > 0.9 {
		t.Fatalf("area utilization %v too high", r.AreaUtilization)
	}
	// Four C-groups per wafer (Sec. III-E).
	if r.CGroupsPerWafer < 4 {
		t.Fatalf("C-groups per wafer %d, want >= 4", r.CGroupsPerWafer)
	}
	// "the total number of IO channels for a wafer is 192".
	if r.WaferIOChannels != 192 {
		t.Fatalf("wafer IO channels %d, want 192", r.WaferIOChannels)
	}
}

func TestBandwidthExceedsSwitches(t *testing.T) {
	// "much larger than the highest-end switches" (12.8 Tb/s = 1.6 TB/s).
	r, _ := PaperPlan().Analyze()
	const rosettaTBs = 12.8 / 8
	if r.BisectionTBs < 4*rosettaTBs {
		t.Fatalf("bisection %v TB/s not clearly above switch silicon", r.BisectionTBs)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	p := PaperPlan()
	p.MeshDim = 0
	if _, err := p.Analyze(); err == nil {
		t.Fatal("invalid plan must be rejected")
	}
}

func TestScalingChannels(t *testing.T) {
	// Doubling per-edge channels doubles bisection and external ports.
	p := PaperPlan()
	base, _ := p.Analyze()
	p.ChannelsPerEdge *= 2
	dbl, _ := p.Analyze()
	if math.Abs(dbl.BisectionTBs-2*base.BisectionTBs) > 1e-9 {
		t.Fatal("bisection must scale linearly with channels")
	}
	if dbl.ExternalPorts != 2*base.ExternalPorts {
		t.Fatal("ports must scale linearly with channels")
	}
}
