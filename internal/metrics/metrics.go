// Package metrics defines the result containers for injection-rate sweeps
// and their rendering as CSV or aligned text — the data behind every
// latency-vs-load figure in the paper.
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one measured load point of a sweep. It is also the value every
// campaign store and backend carries, so experiment families whose natural
// result is not a latency point (collective makespans) encode into it.
type Point struct {
	Rate       float64 // offered load, flits/cycle/chip
	Latency    float64 // mean packet latency, cycles
	P50        float64
	P99        float64
	Throughput float64 // accepted load, flits/cycle/chip

	// Churn accounting, mirrored from netsim.Stats so in-run fault
	// timelines surface their losses in sweep output instead of silently
	// reporting zero. All three stay zero — and omitted from JSON, keeping
	// churn-free cache entries and wire messages byte-identical to older
	// revisions — unless a timeline stranded or refused packets.
	Dropped int64 `json:",omitempty"` // stranded in flight and discarded
	Retried int64 `json:",omitempty"` // stranded and re-injected at the source
	Refused int64 `json:",omitempty"` // refused at injection (destination dead)

	// Aux carries experiment-family-specific extras through the store and
	// the coordinator/worker protocol (collective jobs record delivered
	// packets and per-step makespans here; int64 cycle counts are exact in
	// float64). Nil for ordinary sweep points — and omitted from JSON, so
	// cache entries and wire messages for sweeps are byte-identical to
	// pre-Aux revisions.
	Aux []float64 `json:",omitempty"`
}

// Series is one curve: a labelled sequence of load points.
type Series struct {
	Label  string
	Points []Point
}

// Saturation estimates the saturation injection rate: the highest offered
// rate whose mean latency stays below latencyFactor × the zero-load
// (first-point) latency. A pure latency-knee criterion is used because
// accepted throughput is normalized per chip while permutation patterns may
// leave self-mapped chips silent. It returns 0 for an empty series.
func (s Series) Saturation(latencyFactor float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	zero := s.Points[0].Latency
	if zero <= 0 {
		zero = 1
	}
	sat := 0.0
	for _, p := range s.Points {
		if p.Latency <= latencyFactor*zero && p.Rate > sat {
			sat = p.Rate
		}
	}
	return sat
}

// MaxThroughput returns the highest accepted throughput in the series.
func (s Series) MaxThroughput() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Throughput > m {
			m = p.Throughput
		}
	}
	return m
}

// Figure is a named set of curves, matching one sub-figure of the paper.
type Figure struct {
	Name   string // e.g. "fig10a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// EnergyBar is one bar of an energy figure (paper Fig. 15): average
// transmission energy split into intra- and inter-C-group components.
type EnergyBar struct {
	Label string
	Intra float64 // pJ/bit inside C-groups (NoC + short-reach)
	Inter float64 // pJ/bit on long-reach cables
}

// Total returns the bar height.
func (b EnergyBar) Total() float64 { return b.Intra + b.Inter }

// EnergyFigure is one energy-bar panel.
type EnergyFigure struct {
	Name  string
	Title string
	Bars  []EnergyBar
}

// CSV renders the panel's bars with intra/inter/total pJ-per-bit columns.
func (f EnergyFigure) CSV() string {
	var b strings.Builder
	b.WriteString("system,intra_pj_per_bit,inter_pj_per_bit,total_pj_per_bit\n")
	for _, bar := range f.Bars {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f\n", bar.Label, bar.Intra, bar.Inter, bar.Total())
	}
	return b.String()
}

// CollectiveRow is one measured collective execution: a schedule run to
// completion on a system, with its exact per-step makespans.
type CollectiveRow struct {
	System     string  // system label
	Schedule   string  // schedule name as requested
	Steps      int     // dependent steps executed
	Cycles     int64   // end-to-end makespan
	Packets    int64   // packets delivered
	Efficiency float64 // delivered flits/cycle/chip over the makespan
	StepCycles []int64 // exact per-step makespans
}

// CollectiveFigure is one collective-makespan panel (paper Fig. 4's
// argument measured end to end).
type CollectiveFigure struct {
	Name  string
	Title string
	Rows  []CollectiveRow
}

// CSV renders the panel, one row per (system, schedule) execution. The
// step_cycles column joins the exact per-step makespans with ';' so the
// full barrier trace survives the flat format.
func (f CollectiveFigure) CSV() string {
	var b strings.Builder
	b.WriteString("system,schedule,steps,cycles,packets,flits_per_cycle_per_chip,step_cycles\n")
	for _, r := range f.Rows {
		steps := make([]string, len(r.StepCycles))
		for i, c := range r.StepCycles {
			steps[i] = fmt.Sprintf("%d", c)
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.4f,%s\n",
			r.System, r.Schedule, r.Steps, r.Cycles, r.Packets, r.Efficiency,
			strings.Join(steps, ";"))
	}
	return b.String()
}

// ChurnRow is one measured churn-resilience case: a collective run to
// completion twice on a system — undisturbed, and with a chip killed
// mid-flight at a fixed step — so the death's makespan cost is exact.
type ChurnRow struct {
	System   string // system label
	Schedule string // schedule name as requested
	KillChip int32  // chip killed mid-collective (-1: no case measured)
	KillStep int    // dependent step before which the chip dies
	Steps    int    // dependent steps executed in the disturbed run

	BaselineCycles int64 // undisturbed end-to-end makespan
	Cycles         int64 // makespan with the mid-flight death
	CostCycles     int64 // Cycles - BaselineCycles: what the death cost

	PreCycles  int64   // cycles spent before the death
	PostCycles int64   // cycles to finish on the survivor schedule
	Packets    int64   // packets delivered in the disturbed run
	Dropped    int64   // packets the death stranded and dropped
	Retried    int64   // packets the death stranded and re-injected
	StepCycles []int64 // exact per-step makespans of the disturbed run
}

// ChurnFigure is one churn-resilience panel: the cost of in-flight
// component death across systems and schedules.
type ChurnFigure struct {
	Name  string
	Title string
	Rows  []ChurnRow
}

// CSV renders the panel, one row per (system, schedule, kill) case; the
// step_cycles column joins the disturbed run's per-step makespans with ';'.
func (f ChurnFigure) CSV() string {
	var b strings.Builder
	b.WriteString("system,schedule,kill_chip,kill_step,steps,baseline_cycles,cycles,cost_cycles,pre_cycles,post_cycles,packets,dropped,retried,step_cycles\n")
	for _, r := range f.Rows {
		steps := make([]string, len(r.StepCycles))
		for i, c := range r.StepCycles {
			steps[i] = fmt.Sprintf("%d", c)
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			r.System, r.Schedule, r.KillChip, r.KillStep, r.Steps,
			r.BaselineCycles, r.Cycles, r.CostCycles, r.PreCycles, r.PostCycles,
			r.Packets, r.Dropped, r.Retried, strings.Join(steps, ";"))
	}
	return b.String()
}

// hasChurn reports whether any point of the figure recorded churn losses;
// the CSV grows its churn columns only then, so churn-free figures stay
// byte-identical to older revisions.
func (f Figure) hasChurn() bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Dropped != 0 || p.Retried != 0 || p.Refused != 0 {
				return true
			}
		}
	}
	return false
}

// CSV renders the figure as rate-indexed CSV with one latency and one
// throughput column per series; figures measured under churn additionally
// carry per-series dropped/retried/refused packet columns.
func (f Figure) CSV() string {
	churn := f.hasChurn()
	var b strings.Builder
	b.WriteString("rate")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s_latency,%s_throughput", s.Label, s.Label)
		if churn {
			fmt.Fprintf(&b, ",%s_dropped,%s_retried,%s_refused", s.Label, s.Label, s.Label)
		}
	}
	b.WriteByte('\n')
	// Collect the union of rates.
	rateSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			rateSet[p.Rate] = true
		}
	}
	rates := make([]float64, 0, len(rateSet))
	for r := range rateSet { //sldf:nondeterministic-ok rate union is sorted immediately after collection

		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		fmt.Fprintf(&b, "%.4f", r)
		for _, s := range f.Series {
			found := false
			for _, p := range s.Points {
				if p.Rate == r {
					fmt.Fprintf(&b, ",%.3f,%.4f", p.Latency, p.Throughput)
					if churn {
						fmt.Fprintf(&b, ",%d,%d,%d", p.Dropped, p.Retried, p.Refused)
					}
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",,")
				if churn {
					b.WriteString(",,,")
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders the figure as aligned text for terminal output.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "%-10s", "rate")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%22s", s.Label)
	}
	b.WriteByte('\n')
	maxLen := 0
	for _, s := range f.Series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		rate := -1.0
		for _, s := range f.Series {
			if i < len(s.Points) {
				rate = s.Points[i].Rate
				break
			}
		}
		fmt.Fprintf(&b, "%-10.3f", rate)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%14.1f cycles", s.Points[i].Latency)
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  saturation(%s) ≈ %.2f flits/cycle/chip\n",
			s.Label, s.Saturation(3))
	}
	return b.String()
}
