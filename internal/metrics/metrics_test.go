package metrics

import (
	"strings"
	"testing"
)

func mkSeries() Series {
	return Series{
		Label: "test",
		Points: []Point{
			{Rate: 0.1, Latency: 20, Throughput: 0.1},
			{Rate: 0.5, Latency: 25, Throughput: 0.5},
			{Rate: 1.0, Latency: 40, Throughput: 0.98},
			{Rate: 1.5, Latency: 300, Throughput: 1.05},
			{Rate: 2.0, Latency: 2000, Throughput: 1.02},
		},
	}
}

func TestSaturationEstimate(t *testing.T) {
	s := mkSeries()
	sat := s.Saturation(3)
	// Latency triples somewhere between 1.0 and 1.5.
	if sat != 1.0 {
		t.Fatalf("saturation %v, want 1.0", sat)
	}
}

func TestSaturationEmpty(t *testing.T) {
	if (Series{}).Saturation(3) != 0 {
		t.Fatal("empty series must saturate at 0")
	}
}

func TestMaxThroughput(t *testing.T) {
	if got := mkSeries().MaxThroughput(); got != 1.05 {
		t.Fatalf("max throughput %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := Figure{
		Name:   "figX",
		Title:  "test figure",
		Series: []Series{mkSeries()},
	}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 6 { // header + 5 rates
		t.Fatalf("CSV lines = %d, want 6:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "rate,test_latency,test_throughput") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.1000,20.000,0.1000") {
		t.Fatalf("bad first row %q", lines[1])
	}
}

func TestCSVSparseSeries(t *testing.T) {
	f := Figure{
		Name: "figY",
		Series: []Series{
			{Label: "a", Points: []Point{{Rate: 0.1, Latency: 10, Throughput: 0.1}}},
			{Label: "b", Points: []Point{{Rate: 0.2, Latency: 12, Throughput: 0.2}}},
		},
	}
	csv := f.CSV()
	if !strings.Contains(csv, ",,") {
		t.Fatalf("sparse cells not blanked:\n%s", csv)
	}
}

func TestTableRenders(t *testing.T) {
	f := Figure{Name: "fig10a", Title: "intra-C-group uniform", Series: []Series{mkSeries()}}
	out := f.Table()
	if !strings.Contains(out, "fig10a") || !strings.Contains(out, "saturation") {
		t.Fatalf("table output missing sections:\n%s", out)
	}
}

func TestEnergyFigureCSV(t *testing.T) {
	f := EnergyFigure{Name: "fig15a", Bars: []EnergyBar{
		{Label: "sw-based", Intra: 0, Inter: 134.25},
		{Label: "sw-less", Intra: 33.2, Inter: 93.4},
	}}
	got := f.CSV()
	want := "system,intra_pj_per_bit,inter_pj_per_bit,total_pj_per_bit\n" +
		"sw-based,0.000,134.250,134.250\n" +
		"sw-less,33.200,93.400,126.600\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
	if tot := (EnergyBar{Intra: 2.5, Inter: 40}).Total(); tot != 42.5 {
		t.Fatalf("total %v", tot)
	}
}

func TestCollectiveFigureCSV(t *testing.T) {
	f := CollectiveFigure{Name: "figcollective", Rows: []CollectiveRow{
		{System: "2d-mesh", Schedule: "ring", Steps: 3, Cycles: 95, Packets: 192,
			Efficiency: 2.0211, StepCycles: []int64{31, 32, 32}},
		{System: "switch", Schedule: "hierarchical", Steps: 0, Cycles: 0},
	}}
	got := f.CSV()
	want := "system,schedule,steps,cycles,packets,flits_per_cycle_per_chip,step_cycles\n" +
		"2d-mesh,ring,3,95,192,2.0211,31;32;32\n" +
		"switch,hierarchical,0,0,0,0.0000,\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
}
