package netsim

import "sldf/internal/engine"

// EngineKind selects the cycle-engine implementation.
type EngineKind uint8

const (
	// EngineActiveSet is the default engine: each shard keeps worklists of
	// routers with occupied VCs and links with in-flight flits or credits,
	// so a cycle's drain/allocate phases touch only components that can
	// make progress. At low injection rates — where most of a sweep's
	// points live — the vast majority of routers and links are quiescent
	// and are skipped entirely.
	EngineActiveSet EngineKind = iota
	// EngineReference is the full-scan serial-reference engine: every
	// cycle walks every router and link. It exists to cross-check the
	// active-set engine — both produce bitwise-identical statistics.
	EngineReference
	// EngineFlow is the flow-level analytical engine: instead of stepping
	// packets per cycle it solves per-link steady-state load from a sampled
	// traffic matrix and the installed routing function (iterative
	// waterfilling over link capacities), then synthesizes the same Stats
	// surface with a queueing-theoretic latency approximation. It is
	// approximate — validated against the cycle engines with documented
	// error bounds, not bitwise identity — and exists for campaign points
	// far past the cycle engines' scale ceiling. Networks under EngineFlow
	// are driven through SolveFlow/FlowMakespan, never Step.
	EngineFlow
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineActiveSet:
		return "active-set"
	case EngineReference:
		return "reference"
	case EngineFlow:
		return "flow"
	}
	return "unknown"
}

// shardActive is one shard's active-set state. It is owned by its shard:
// the router bitmap and the link worklists are only touched by the owning
// shard, while the staging lists are written by this shard as a producer
// during allocate and consumed (and truncated) by the destination shard
// during the next drain — phases a pool barrier keeps apart.
type shardActive struct {
	lo, hi int // router ID range [lo, hi) of this shard

	// routers holds bit i when router lo+i has at least one occupied VC.
	// Routers are enqueued on activation (flit arrival, credit return,
	// injection) and lazily retired by the allocate walk once drained.
	// Bitmap iteration is always ascending, matching the reference
	// engine's router order, so results are bit-identical.
	routers engine.Bitset

	// The timing wheel: active links and sleeping routers are parked in
	// the slot of the cycle they next have work (earliest deliverable
	// flit/credit, or the router's nextAlloc wake-up), so quiescent AND
	// merely-waiting components cost nothing per cycle. Slot index is
	// cycle&wheelMask; the wheel is sized past the longest link delay, so
	// a pending wake never wraps onto an earlier one. Routers sleeping
	// beyond the horizon (rare: serialization of a giant packet) simply
	// stay on the bitmap and poll.
	wheelMask   int64
	wheelData   [][]*Link
	wheelCredit [][]*Link
	wheelRouter [][]NodeID

	// stageData/stageCredit[t] collect links this shard activated as a
	// producer during allocate, destined for consumer shard t. Shard t
	// merges (and empties) them into its wheel at the start of the next
	// drain phase.
	stageData   [][]*Link
	stageCredit [][]*Link
}

// stageDataLink marks l's data queue active and stages it for its consumer
// shard. Called from the allocate phase of l's producer (source) shard.
func (a *shardActive) stageDataLink(l *Link) {
	if !l.dataActive {
		l.dataActive = true
		a.stageData[l.dstShard] = append(a.stageData[l.dstShard], l)
	}
}

// stageCreditLink is stageDataLink for the credit queue (produced by the
// destination router's shard, consumed by the source router's shard).
func (a *shardActive) stageCreditLink(l *Link) {
	if !l.creditActive {
		l.creditActive = true
		a.stageCredit[l.srcShard] = append(a.stageCredit[l.srcShard], l)
	}
}

// scheduleData parks l in the data wheel for cycle at (at must be at most
// wheelMask cycles ahead, which link delays guarantee).
func (a *shardActive) scheduleData(l *Link, at int64) {
	slot := at & a.wheelMask
	a.wheelData[slot] = append(a.wheelData[slot], l)
}

// scheduleCredit parks l in the credit wheel for cycle at.
func (a *shardActive) scheduleCredit(l *Link, at int64) {
	slot := at & a.wheelMask
	a.wheelCredit[slot] = append(a.wheelCredit[slot], l)
}

// clear empties all dynamic active-set state (wheel, staging, bitmap) and
// resets the link membership flags of entries still parked.
func (a *shardActive) clear() {
	for slot := range a.wheelData {
		for _, l := range a.wheelData[slot] {
			l.dataActive = false
		}
		a.wheelData[slot] = a.wheelData[slot][:0]
		for _, l := range a.wheelCredit[slot] {
			l.creditActive = false
		}
		a.wheelCredit[slot] = a.wheelCredit[slot][:0]
		a.wheelRouter[slot] = a.wheelRouter[slot][:0]
	}
	for t := range a.stageData {
		for _, l := range a.stageData[t] {
			l.dataActive = false
		}
		a.stageData[t] = a.stageData[t][:0]
		for _, l := range a.stageCredit[t] {
			l.creditActive = false
		}
		a.stageCredit[t] = a.stageCredit[t][:0]
	}
	a.routers.Clear()
}

// Engine returns the cycle engine currently in use.
func (n *Network) Engine() EngineKind { return n.engineKind }

// SetEngine switches the cycle engine. Safe at any phase boundary (between
// Step calls): switching to the active-set engine rebuilds the active sets
// from the network's current contents, so in-flight traffic keeps moving.
func (n *Network) SetEngine(k EngineKind) {
	if n.engineKind == k {
		return
	}
	n.engineKind = k
	if k == EngineActiveSet {
		n.rebuildActive()
	}
}

// rebuildActive reconstructs every shard's active sets from a full scan of
// the network: routers with occupied VCs and links with queued data or
// credits (parked at their earliest delivery cycle, clamped to the next
// step). Used when switching engines and after Reset.
func (n *Network) rebuildActive() {
	for s := range n.active {
		a := &n.active[s]
		a.clear()
		for id := a.lo; id < a.hi; id++ {
			if n.Routers[id].active > 0 {
				a.routers.Add(id - a.lo)
			}
		}
	}
	for i := range n.Links {
		l := &n.Links[i]
		if l.data.n > 0 {
			l.dataActive = true
			n.active[l.dstShard].scheduleData(l, max(l.data.frontAt(), n.Cycle))
		}
		if l.credit.n > 0 {
			l.creditActive = true
			n.active[l.srcShard].scheduleCredit(l, max(l.credit.frontAt(), n.Cycle))
		}
	}
}

// mergeActivations parks the links every producer shard staged for shard s
// during the previous allocate phase into s's timing wheel, at each link's
// earliest delivery cycle. Runs at the start of s's drain phase; the phase
// barrier guarantees no producer is writing the staging cells, and a staged
// link's earliest delivery is never in the past (data arrives after at
// least Delay+1 >= 2 cycles, credits after Delay >= 1).
func (n *Network) mergeActivations(s int) {
	a := &n.active[s]
	for p := range n.active {
		ps := &n.active[p]
		for _, l := range ps.stageData[s] {
			a.scheduleData(l, l.data.frontAt())
		}
		ps.stageData[s] = ps.stageData[s][:0]
		for _, l := range ps.stageCredit[s] {
			a.scheduleCredit(l, l.credit.frontAt())
		}
		ps.stageCredit[s] = ps.stageCredit[s][:0]
	}
}

// drainShardActive is the active-set phase A for shard s: it visits only
// the links whose wheel slot fired this cycle — exactly those with a
// deliverable flit or credit — delivering into router VC buffers and
// returning credits, and enqueues the touched routers on the shard's
// active set. A link with more queued traffic is re-parked at its next
// delivery cycle; an emptied link is released to its producer to re-stage.
func (n *Network) drainShardActive(s int, now int64) {
	a := &n.active[s]
	slot := now & a.wheelMask
	data := a.wheelData[slot]
	a.wheelData[slot] = data[:0]
	for _, l := range data {
		n.drainDataLink(l, now, a)
		if l.data.n == 0 {
			l.dataActive = false
		} else {
			a.scheduleData(l, l.data.frontAt())
		}
	}

	credit := a.wheelCredit[slot]
	a.wheelCredit[slot] = credit[:0]
	for _, l := range credit {
		if n.drainCreditLink(l, now) {
			// A credit alone cannot create work for an empty router; only
			// wake it when it still holds packets to send.
			if src := &n.Routers[l.Src]; src.active > 0 {
				a.routers.Add(int(l.Src) - a.lo)
			}
		}
		if l.credit.n == 0 {
			l.creditActive = false
		} else {
			a.scheduleCredit(l, l.credit.frontAt())
		}
	}
}

// allocShardActive is the active-set phase B for shard s: wake routers
// whose sleep expired this cycle, inject into the shard's terminal
// routers, then run routing/switch allocation for only the routers on the
// active set. Routers that drained are retired; routers sleeping on a
// known serialization wake-up are parked in the wheel instead of polling.
func (n *Network) allocShardActive(s int, now int64) {
	a := &n.active[s]
	slot := now & a.wheelMask
	for _, id := range a.wheelRouter[slot] {
		// An earlier event may have woken (and re-parked) the router
		// already; the bitmap Add is idempotent and a spurious wake-up is
		// a cheap no-op allocate.
		a.routers.Add(int(id) - a.lo)
	}
	a.wheelRouter[slot] = a.wheelRouter[slot][:0]
	n.generate(s, now, a)
	moved := 0
	horizon := a.wheelMask // safe park distance: strictly less than wheel size
	a.routers.ForEach(func(i int) {
		r := &n.Routers[a.lo+i]
		moved += r.allocate(n, now, s, a)
		if r.active == 0 {
			a.routers.Remove(i)
		} else if w := r.nextAlloc; w > now {
			if w-now <= horizon {
				a.routers.Remove(i)
				ws := w & a.wheelMask
				a.wheelRouter[ws] = append(a.wheelRouter[ws], NodeID(a.lo+i))
			}
			// Beyond the horizon: stay on the bitmap and poll (allocate
			// early-outs until the wake-up).
		}
	})
	n.shard[s].moved = int64(moved)
}
