package netsim

import (
	"errors"
	"reflect"
	"testing"

	"sldf/internal/engine"
)

// uniformGen injects with probability prob per node-cycle to a uniformly
// random other chip, using the injector's own RNG stream (deterministic).
func uniformGen(chips int, prob float64) Generator {
	return GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if !rng.Bernoulli(prob) {
			return -1
		}
		dst := int32(rng.Intn(chips - 1))
		if dst >= src {
			dst++
		}
		return dst
	})
}

// runLine steps a fresh 8-router line under uniform traffic for the given
// engine, toggling engines mid-run when toggle is set, and returns the
// final snapshot.
func runLine(t *testing.T, kind EngineKind, toggle bool) Stats {
	t.Helper()
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 8, spec, NetworkOptions{Seed: 42, Workers: 1, Engine: kind})
	defer net.Close()
	net.SetTraffic(uniformGen(8, 0.1), 4, DstSameIndex)
	net.StartMeasurement()
	if toggle {
		// Switch engines with traffic in flight: SetEngine must rebuild the
		// active sets from the network's current contents.
		for i := 0; i < 6; i++ {
			if err := net.Run(50); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				net.SetEngine(EngineReference)
			} else {
				net.SetEngine(EngineActiveSet)
			}
		}
		net.SetEngine(kind)
		if err := net.Run(100); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := net.Run(400); err != nil {
			t.Fatal(err)
		}
	}
	net.StopMeasurement()
	if _, err := net.Drain(10000); err != nil {
		t.Fatal(err)
	}
	return net.Snapshot()
}

// TestEngineSwitchMidRun checks SetEngine's active-set rebuild: a run that
// flips between the engines every 50 cycles must end bit-identical to runs
// that stay on either engine throughout.
func TestEngineSwitchMidRun(t *testing.T) {
	ref := runLine(t, EngineReference, false)
	act := runLine(t, EngineActiveSet, false)
	mixed := runLine(t, EngineActiveSet, true)
	if !reflect.DeepEqual(ref, act) {
		t.Fatalf("engines diverged:\nreference: %+v\nactive:    %+v", ref, act)
	}
	if !reflect.DeepEqual(ref, mixed) {
		t.Fatalf("mid-run engine switching diverged:\nreference: %+v\nmixed:     %+v", ref, mixed)
	}
	if ref.DeliveredPkts == 0 {
		t.Fatal("no traffic delivered; the comparison is vacuous")
	}
}

// TestActiveSetSteadyStateAllocs is the free-list regression gate: once a
// network reaches steady state, stepping it must allocate (essentially)
// nothing — packets come from the per-shard free lists and every queue has
// grown to its working size.
func TestActiveSetSteadyStateAllocs(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 8, spec, NetworkOptions{Seed: 7, Workers: 1})
	defer net.Close()
	net.SetTraffic(uniformGen(8, 0.15), 4, DstSameIndex)
	if err := net.Run(5000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() { net.Step() })
	// Residual allocations (a queue growing past its historical high-water
	// mark) are allowed to be rare, not per-cycle.
	if avg > 0.05 {
		t.Fatalf("steady-state Step allocates %.3f objects/cycle, want ~0", avg)
	}
}

// TestWatchdogTripCounted checks the deadlock watchdog surfaces in Stats:
// a packet that can never fit its downstream buffer (BufFlits < packet
// size) stalls forever, Run returns ErrDeadlock, and the trip is counted.
func TestWatchdogTripCounted(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 2}
	net := buildLine(t, 2, spec, NetworkOptions{Seed: 1, Workers: 1, WatchdogCycles: 50})
	defer net.Close()
	injected := false
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if injected || src != 0 {
			return -1
		}
		injected = true
		return 1
	}), 4, DstSameIndex)
	err := net.Run(500)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if got := net.Snapshot().WatchdogTrips; got != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", got)
	}
	// A second stalled run keeps counting; Reset clears the counter.
	if err := net.Run(500); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second Run = %v, want ErrDeadlock", err)
	}
	if got := net.Snapshot().WatchdogTrips; got != 2 {
		t.Fatalf("WatchdogTrips after second trip = %d, want 2", got)
	}
	net.Reset()
	if got := net.Snapshot().WatchdogTrips; got != 0 {
		t.Fatalf("WatchdogTrips after Reset = %d, want 0", got)
	}
}
