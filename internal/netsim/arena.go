package netsim

import "sync"

// PacketRef is an index into the network's packet arena. All hot-path
// storage (VC rings, link pipelines, free lists) holds refs rather than
// *Packet: a ref is half the size of a pointer and, being an integer, is
// invisible to the garbage collector, so a saturated wafer-scale build no
// longer pays a GC scan proportional to its queued traffic. *Packet is kept
// as the transient working handle — arena chunks never move, so a pointer
// obtained from pkt() stays valid for the packet's lifetime.
type PacketRef = int32

// NilRef marks the absence of a packet.
const NilRef PacketRef = -1

const (
	// arenaChunkShift sizes an arena chunk at 1024 packets (~90 KiB): big
	// enough that growth is rare, small enough that tiny test networks do
	// not overcommit.
	arenaChunkShift = 10
	arenaChunkSize  = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunkSize - 1
	// arenaMaxChunks bounds the chunk directory (32768 chunks = 33M packets
	// in flight, ~3 GiB of packet state — far past any RSS budget).
	arenaMaxChunks = 1 << 15
)

type arenaChunk = [arenaChunkSize]Packet

// packetArena is the network-owned backing store for every live packet.
// Chunks are allocated on demand and never freed or moved; slots are
// recycled through per-shard free lists of refs (see shardStats.free).
//
// Concurrency: the chunk directory is a fixed-length table whose slots are
// filled under mu by whichever shard grows first. A shard only dereferences
// refs it can reach through its own routers' queues and link pipelines, and
// a ref crosses shards exclusively over a link queue, i.e. over at least
// one inter-phase pool barrier — which orders the directory write before
// any cross-shard read. Slot reuse follows the same rule: a freed ref lands
// on the freeing shard's own list.
type packetArena struct {
	mu      sync.Mutex
	chunks  []*arenaChunk // fixed length arenaMaxChunks once allocated
	nchunks int32
}

// at returns the packet addressed by ref. The returned pointer is stable:
// chunks never move.
//
//sldf:hotpath
func (a *packetArena) at(ref PacketRef) *Packet {
	return &a.chunks[ref>>arenaChunkShift][ref&arenaChunkMask]
}

// allocated returns the number of packet slots carved out so far.
func (a *packetArena) allocated() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.nchunks) << arenaChunkShift
}

// grow allocates one chunk and appends its refs to free in descending
// order, so pops hand out ascending (cache-adjacent) slots. Called by a
// shard whose free list ran dry; the mutex serializes concurrent growers.
func (a *packetArena) grow(free *[]PacketRef) {
	a.mu.Lock()
	if a.chunks == nil {
		a.chunks = make([]*arenaChunk, arenaMaxChunks)
	}
	c := a.nchunks
	if int(c) >= arenaMaxChunks {
		a.mu.Unlock()
		panic("netsim: packet arena exhausted (33M packets in flight)")
	}
	a.chunks[c] = new(arenaChunk)
	a.nchunks = c + 1
	a.mu.Unlock()
	base := PacketRef(c) << arenaChunkShift
	for i := arenaChunkSize - 1; i >= 0; i-- {
		*free = append(*free, base+PacketRef(i))
	}
}

// reclaim rebuilds the per-shard free lists from the full arena, handing
// shard s a contiguous ascending range of every allocated slot. Called by
// Reset (single-threaded), where all in-flight refs have just been dropped:
// without this, packets still traveling at reset time would leak their
// slots and a build-once/measure-many loop would grow the arena without
// bound. Existing free-list capacity is reused, so steady-state resets
// allocate nothing.
//
//sldf:hotpath
func (a *packetArena) reclaim(shards []shardStats) {
	total := int(a.nchunks) << arenaChunkShift
	per := total / len(shards)
	rem := total % len(shards)
	lo := 0
	for s := range shards {
		cnt := per
		if s < rem {
			cnt++
		}
		free := shards[s].free[:0]
		for ref := lo + cnt - 1; ref >= lo; ref-- {
			free = append(free, PacketRef(ref))
		}
		shards[s].free = free
		lo += cnt
	}
}

// allocPacket hands out a zeroed packet slot from the shard's free list,
// growing the arena by one chunk when the list is dry.
func (n *Network) allocPacket(shard int) (PacketRef, *Packet) {
	ss := &n.shard[shard]
	if len(ss.free) == 0 {
		n.arena.grow(&ss.free)
	}
	ref := ss.free[len(ss.free)-1]
	ss.free = ss.free[:len(ss.free)-1]
	p := n.arena.at(ref)
	*p = Packet{}
	return ref, p
}

// Pkt returns the packet addressed by ref, for tests and diagnostics.
func (n *Network) Pkt(ref PacketRef) *Packet { return n.arena.at(ref) }

// ArenaSlots returns (allocated, free) packet-slot counts across the
// network: allocated is the arena's total capacity, free the slots
// currently on shard free lists. allocated - free = packets live in queues
// and link pipelines. Used by leak tests and the scale harness.
func (n *Network) ArenaSlots() (allocated, free int) {
	allocated = n.arena.allocated()
	for s := range n.shard {
		free += len(n.shard[s].free)
	}
	return allocated, free
}
