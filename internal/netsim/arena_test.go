package netsim

import (
	"testing"

	"sldf/internal/engine"
)

// TestVCQueueCapacityReuse is the regression test for the ring's freed-slot
// reuse: a queue driven FIFO-style (push to tail, pop from head) must cycle
// through its fixed window indefinitely without growing — the old
// slice-compaction queue missed this case and reallocated once the tail
// reached capacity even though the head had freed slots. Order and occupancy
// accounting are pinned across many wraps.
func TestVCQueueCapacityReuse(t *testing.T) {
	q := vcQueue{buf: make([]PacketRef, 4)}
	base := &q.buf[0]
	next, expect := PacketRef(0), PacketRef(0)
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.push(next, 3)
			next++
		}
	}
	pop := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if got := q.front(); got != expect {
				t.Fatalf("front = %d, want %d", got, expect)
			}
			if got := q.pop(3); got != expect {
				t.Fatalf("pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	push(4)
	pop(2)
	push(2) // tail wraps into the two freed head slots
	pop(3)
	push(3)
	for i := 0; i < 32; i++ { // dozens of full wraps at various phases
		pop(1)
		push(1)
	}
	if q.occ != int32(3*q.size()) {
		t.Fatalf("occ %d with %d packets queued", q.occ, q.size())
	}
	pop(q.size())
	if q.occ != 0 || !q.empty() {
		t.Fatalf("drained queue: occ %d size %d", q.occ, q.size())
	}
	if len(q.buf) != 4 || &q.buf[0] != base {
		t.Fatal("FIFO-bounded queue grew instead of reusing freed capacity")
	}
}

// TestVCQueueGrowPreservesOrder pins that outgrowing the initial window
// migrates the queue to a private ring with FIFO order and occupancy intact,
// including when the ring is wrapped at growth time.
func TestVCQueueGrowPreservesOrder(t *testing.T) {
	q := vcQueue{buf: make([]PacketRef, 4)}
	for i := PacketRef(0); i < 2; i++ {
		q.push(i, 1)
	}
	q.pop(1)
	q.pop(1) // head now mid-window
	for i := PacketRef(2); i < 13; i++ {
		q.push(i, 1) // wraps, then grows twice
	}
	if q.size() != 11 || q.occ != 11 {
		t.Fatalf("size %d occ %d", q.size(), q.occ)
	}
	for i := PacketRef(2); i < 13; i++ {
		if got := q.pop(1); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
}

// TestResetReclaimsArena pins the arena's leak-freedom across resets: after
// Reset, every allocated slot is back on a free list (packets that were
// still in flight included), and a build-once/measure-many loop reaches a
// steady state where the arena stops growing.
func TestResetReclaimsArena(t *testing.T) {
	net := buildRing(t, 8)
	defer net.Close()
	run := func() {
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			d := rng.Int31n(8)
			if d == src {
				return -1
			}
			return d
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(500); err != nil {
			t.Fatal(err)
		}
	}
	run() // stop mid-traffic: packets are in flight
	if alloc, free := net.ArenaSlots(); alloc == free {
		t.Fatal("expected in-flight packets before reset")
	}
	net.Reset()
	alloc, free := net.ArenaSlots()
	if alloc == 0 || alloc != free {
		t.Fatalf("after reset: %d allocated, %d free — in-flight slots leaked", alloc, free)
	}
	for i := 0; i < 5; i++ {
		run()
		net.Reset()
	}
	alloc2, free2 := net.ArenaSlots()
	if alloc2 != alloc {
		t.Fatalf("arena grew across identical reset cycles: %d -> %d slots", alloc, alloc2)
	}
	if free2 != alloc2 {
		t.Fatalf("after steady-state resets: %d allocated, %d free", alloc2, free2)
	}
}

// TestResetSteadyStateAllocs pins Reset's zero-allocation contract: once the
// network has been through one warm-up cycle, Reset reuses every buffer it
// touches (free lists, rings, active sets) and allocates nothing.
func TestResetSteadyStateAllocs(t *testing.T) {
	net := buildRing(t, 8)
	defer net.Close()
	traffic := func() {
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			d := rng.Int31n(8)
			if d == src {
				return -1
			}
			return d
		}), 4, DstSameIndex)
		if err := net.Run(200); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // warm up: grow arena, rings, free-list capacity
		traffic()
		net.Reset()
	}
	if n := testing.AllocsPerRun(10, net.Reset); n != 0 {
		t.Fatalf("Reset allocates %v times per run in steady state, want 0", n)
	}
}
