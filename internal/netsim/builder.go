package netsim

import (
	"fmt"
	"sort"

	"sldf/internal/engine"
)

// LinkSpec describes the physical and flow-control properties of a channel.
type LinkSpec struct {
	Delay int32 // wire latency in cycles
	Width int32 // bandwidth in flits/cycle
	Class HopClass
	VCs   uint8 // virtual channels on the downstream input port
	// BufFlits is the buffer depth per VC in flits (paper Table IV: 32).
	BufFlits int32
}

// Builder incrementally constructs a Network. Topology packages call
// AddRouter/Connect and then Finalize. Builders are single-use.
type Builder struct {
	routers []Router
	links   []*Link
	err     error
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// AddRouter appends a router of the given kind and returns its ID.
// Metadata (coordinates, chip, label) is set through Router().
func (b *Builder) AddRouter(kind RouterKind) NodeID {
	id := NodeID(len(b.routers))
	b.routers = append(b.routers, Router{
		ID:       id,
		Kind:     kind,
		CGroup:   -1,
		WGroup:   -1,
		Chip:     -1,
		Label:    -1,
		InjIn:    -1,
		EjectOut: -1,
	})
	return id
}

// Router returns a pointer to the router under construction. The pointer is
// valid until the next AddRouter call.
func (b *Builder) Router(id NodeID) *Router { return &b.routers[id] }

// NumRouters returns the number of routers added so far.
func (b *Builder) NumRouters() int { return len(b.routers) }

// Connect creates a unidirectional link src→dst and returns the output port
// index on src and the input port index on dst.
func (b *Builder) Connect(src, dst NodeID, spec LinkSpec) (outPort, inPort int) {
	if spec.Delay < 1 {
		b.fail("link %d→%d: delay must be >= 1 (got %d)", src, dst, spec.Delay)
		spec.Delay = 1
	}
	if spec.Width < 1 || spec.VCs < 1 || spec.BufFlits < 1 {
		b.fail("link %d→%d: invalid spec %+v", src, dst, spec)
		return 0, 0
	}
	if spec.VCs > 8 {
		// The per-port occupancy bitmask is 8 bits wide; no evaluated
		// scheme needs more than 6 VCs.
		b.fail("link %d→%d: at most 8 VCs supported (got %d)", src, dst, spec.VCs)
		return 0, 0
	}
	l := &Link{
		ID:       int32(len(b.links)),
		Src:      src,
		Dst:      dst,
		Delay:    spec.Delay,
		Width:    spec.Width,
		Class:    spec.Class,
		VCs:      spec.VCs,
		BufFlits: spec.BufFlits,
	}
	b.links = append(b.links, l)

	sr := &b.routers[src]
	credits := make([]int32, spec.VCs)
	for i := range credits {
		credits[i] = spec.BufFlits
	}
	sr.Out = append(sr.Out, OutPort{Link: l, Credits: credits})
	outPort = len(sr.Out) - 1

	dr := &b.routers[dst]
	dr.In = append(dr.In, InPort{Link: l, VCs: make([]vcQueue, spec.VCs)})
	inPort = len(dr.In) - 1
	l.SrcPort = int16(outPort)
	l.DstPort = int16(inPort)
	return outPort, inPort
}

// ConnectBidi creates a pair of opposite links between a and b with the same
// spec, returning (a's out port, b's out port).
func (b *Builder) ConnectBidi(x, y NodeID, spec LinkSpec) (xOut, yOut int) {
	xOut, _ = b.Connect(x, y, spec)
	yOut, _ = b.Connect(y, x, spec)
	return xOut, yOut
}

// AddTerminal marks router id as the injection/ejection point for chip,
// with nodeIdx as its local index within the chip. It creates the injection
// and ejection pseudo-ports.
func (b *Builder) AddTerminal(id NodeID, chip int32, nodeIdx int32) {
	r := &b.routers[id]
	if r.InjIn >= 0 || r.EjectOut >= 0 {
		b.fail("router %d: terminal added twice", id)
		return
	}
	r.Chip = chip
	r.Local = nodeIdx
	r.In = append(r.In, InPort{Link: nil, VCs: make([]vcQueue, 1)})
	r.InjIn = int16(len(r.In) - 1)
	r.Out = append(r.Out, OutPort{Link: nil})
	r.EjectOut = int16(len(r.Out) - 1)
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Finalize validates the graph and produces a runnable Network.
func (b *Builder) Finalize(opts NetworkOptions) (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.routers) == 0 {
		return nil, fmt.Errorf("netsim: empty network")
	}

	// Collect chips: group terminal routers by chip ID.
	chipMap := map[int32][]NodeID{}
	maxChip := int32(-1)
	for i := range b.routers {
		r := &b.routers[i]
		if r.Chip >= 0 && r.InjIn >= 0 {
			chipMap[r.Chip] = append(chipMap[r.Chip], r.ID)
			if r.Chip > maxChip {
				maxChip = r.Chip
			}
		}
	}
	chips := make([][]NodeID, maxChip+1)
	for c := int32(0); c <= maxChip; c++ {
		nodes := chipMap[c]
		if len(nodes) == 0 {
			return nil, fmt.Errorf("netsim: chip %d has no terminal routers", c)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		chips[c] = nodes
		// Local index must match position for DstSameIndex to be meaningful.
		for idx, id := range nodes {
			b.routers[id].Local = int32(idx)
		}
	}

	workers := opts.Workers
	pool := opts.Pool
	owned := false
	if pool == nil {
		pool = engine.NewPool(workers)
		owned = true
	}
	shards := pool.Workers()
	if shards < 1 {
		shards = 1
	}
	wd := opts.WatchdogCycles
	if wd <= 0 {
		wd = DefaultWatchdogCycles
	}

	n := &Network{
		Routers:       b.routers,
		Links:         b.links,
		ChipNodes:     chips,
		pool:          pool,
		ownedPool:     owned,
		shards:        shards,
		shard:         make([]shardStats, shards),
		seed:          opts.Seed,
		packetSize:    4,
		watchdogLimit: wd,
		engineKind:    opts.Engine,
	}
	for i := range n.Routers {
		n.Routers[i].RNG = engine.NewRNGStream(opts.Seed, uint64(i))
		// Routers beyond 64 ports fall back to full port scans; none of the
		// evaluated systems comes close.
		n.Routers[i].wide = len(n.Routers[i].In) > 64 || len(n.Routers[i].Out) > 64
	}
	// Partition links by consumer shard for the phase-A drain.
	shardOf := func(router NodeID) int {
		for s := 0; s < shards; s++ {
			lo, hi := engine.ShardBounds(len(n.Routers), shards, s)
			if int(router) >= lo && int(router) < hi {
				return s
			}
		}
		return 0
	}
	n.dataLinks = make([][]*Link, shards)
	n.creditLinks = make([][]*Link, shards)
	for _, l := range n.Links {
		ds := shardOf(l.Dst)
		n.dataLinks[ds] = append(n.dataLinks[ds], l)
		l.dstShard = int32(ds)
		cs := shardOf(l.Src)
		n.creditLinks[cs] = append(n.creditLinks[cs], l)
		l.srcShard = int32(cs)
	}
	// Static per-shard injector lists and active-set scaffolding (used by
	// the active-set engine; both engines visit injectors in this order).
	// The timing wheel must reach past the longest link delay (+1 cycle of
	// flit time, +1 so a wake never lands on the slot being drained); the
	// 64-slot floor gives sleeping routers room to park typical
	// serialization waits.
	maxDelay := int32(0)
	for _, l := range n.Links {
		if l.Delay > maxDelay {
			maxDelay = l.Delay
		}
	}
	wheelSize := 64
	for wheelSize < int(maxDelay)+2 {
		wheelSize *= 2
	}
	n.injectors = make([][]NodeID, shards)
	n.active = make([]shardActive, shards)
	for s := 0; s < shards; s++ {
		lo, hi := engine.ShardBounds(len(n.Routers), shards, s)
		for id := lo; id < hi; id++ {
			r := &n.Routers[id]
			if r.InjIn >= 0 && r.Chip >= 0 {
				n.injectors[s] = append(n.injectors[s], r.ID)
			}
		}
		n.active[s] = shardActive{
			lo:          lo,
			hi:          hi,
			routers:     engine.NewBitset(hi - lo),
			wheelMask:   int64(wheelSize - 1),
			wheelData:   make([][]*Link, wheelSize),
			wheelCredit: make([][]*Link, wheelSize),
			wheelRouter: make([][]NodeID, wheelSize),
			stageData:   make([][]*Link, shards),
			stageCredit: make([][]*Link, shards),
		}
		// Stock the packet pool so low-load measurement windows run
		// allocation-free from the first cycle; saturated windows still
		// grow it on demand (once — Reset keeps the pool).
		n.shard[s].free.prealloc(2*len(n.injectors[s]) + 64)
	}
	n.initPhases()
	b.routers = nil
	b.links = nil
	return n, nil
}
