package netsim

import (
	"fmt"
	"sort"

	"sldf/internal/engine"
)

// LinkSpec describes the physical and flow-control properties of a channel.
type LinkSpec struct {
	Delay int32 // wire latency in cycles
	Width int32 // bandwidth in flits/cycle
	Class HopClass
	VCs   uint8 // virtual channels on the downstream input port
	// BufFlits is the buffer depth per VC in flits (paper Table IV: 32).
	BufFlits int32
}

// Builder incrementally constructs a Network. Topology packages call
// AddRouter/Connect and then Finalize. Builders are single-use.
//
// Construction is allocation-lean by design: links accumulate as values and
// ports exist only as per-router counts until Finalize, which carves every
// retained slice — the router table, both port arrays, VC queues, ring
// windows, credits — at exact size from shared slabs. Nothing the builder
// allocates becomes garbage in the finished network, and append-doubling
// overshoot never survives into it.
type Builder struct {
	routers []Router
	// nIn/nOut count ports per router; the InPort/OutPort structs themselves
	// are materialized in Finalize from two network-wide slabs.
	nIn   []int32
	nOut  []int32
	links []Link
	err   error
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// AddRouter appends a router of the given kind and returns its ID.
// Metadata (coordinates, chip, label) is set through Router().
func (b *Builder) AddRouter(kind RouterKind) NodeID {
	id := NodeID(len(b.routers))
	b.routers = append(b.routers, Router{
		ID:       id,
		Kind:     kind,
		CGroup:   -1,
		WGroup:   -1,
		Chip:     -1,
		Label:    -1,
		InjIn:    -1,
		EjectOut: -1,
	})
	b.nIn = append(b.nIn, 0)
	b.nOut = append(b.nOut, 0)
	return id
}

// Router returns a pointer to the router under construction. The pointer is
// valid until the next AddRouter call.
func (b *Builder) Router(id NodeID) *Router { return &b.routers[id] }

// NumRouters returns the number of routers added so far.
func (b *Builder) NumRouters() int { return len(b.routers) }

// Connect creates a unidirectional link src→dst and returns the output port
// index on src and the input port index on dst.
func (b *Builder) Connect(src, dst NodeID, spec LinkSpec) (outPort, inPort int) {
	if spec.Delay < 1 {
		b.fail("link %d→%d: delay must be >= 1 (got %d)", src, dst, spec.Delay)
		spec.Delay = 1
	}
	if spec.Width < 1 || spec.VCs < 1 || spec.BufFlits < 1 {
		b.fail("link %d→%d: invalid spec %+v", src, dst, spec)
		return 0, 0
	}
	if spec.VCs > 8 {
		// The per-port occupancy bitmask is 8 bits wide; no evaluated
		// scheme needs more than 6 VCs.
		b.fail("link %d→%d: at most 8 VCs supported (got %d)", src, dst, spec.VCs)
		return 0, 0
	}
	outPort = int(b.nOut[src])
	b.nOut[src]++
	inPort = int(b.nIn[dst])
	b.nIn[dst]++

	// The ports themselves, their Link pointers and buffer storage are all
	// materialized in Finalize, once the link table has its final address
	// and the slab sizes are known.
	b.links = append(b.links, Link{
		ID:       int32(len(b.links)),
		Src:      src,
		Dst:      dst,
		Delay:    spec.Delay,
		Width:    spec.Width,
		Class:    spec.Class,
		VCs:      spec.VCs,
		BufFlits: spec.BufFlits,
		SrcPort:  int16(outPort),
		DstPort:  int16(inPort),
	})
	return outPort, inPort
}

// ConnectBidi creates a pair of opposite links between a and b with the same
// spec, returning (a's out port, b's out port).
func (b *Builder) ConnectBidi(x, y NodeID, spec LinkSpec) (xOut, yOut int) {
	xOut, _ = b.Connect(x, y, spec)
	yOut, _ = b.Connect(y, x, spec)
	return xOut, yOut
}

// AddTerminal marks router id as the injection/ejection point for chip,
// with nodeIdx as its local index within the chip. It creates the injection
// and ejection pseudo-ports.
func (b *Builder) AddTerminal(id NodeID, chip int32, nodeIdx int32) {
	r := &b.routers[id]
	if r.InjIn >= 0 || r.EjectOut >= 0 {
		b.fail("router %d: terminal added twice", id)
		return
	}
	r.Chip = chip
	r.Local = nodeIdx
	r.InjIn = int16(b.nIn[id])
	b.nIn[id]++
	r.EjectOut = int16(b.nOut[id])
	b.nOut[id]++
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Finalize validates the graph and produces a runnable Network.
func (b *Builder) Finalize(opts NetworkOptions) (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.routers) == 0 {
		return nil, fmt.Errorf("netsim: empty network")
	}

	// Collect chips: group terminal routers by chip ID.
	chipMap := map[int32][]NodeID{}
	maxChip := int32(-1)
	for i := range b.routers {
		r := &b.routers[i]
		if r.Chip >= 0 && r.InjIn >= 0 {
			chipMap[r.Chip] = append(chipMap[r.Chip], r.ID)
			if r.Chip > maxChip {
				maxChip = r.Chip
			}
		}
	}
	chips := make([][]NodeID, maxChip+1)
	for c := int32(0); c <= maxChip; c++ {
		nodes := chipMap[c]
		if len(nodes) == 0 {
			return nil, fmt.Errorf("netsim: chip %d has no terminal routers", c)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		chips[c] = nodes
		// Local index must match position for DstSameIndex to be meaningful.
		for idx, id := range nodes {
			b.routers[id].Local = int32(idx)
		}
	}

	workers := opts.Workers
	pool := opts.Pool
	owned := false
	if pool == nil {
		pool = engine.NewPool(workers)
		owned = true
	}
	shards := pool.Workers()
	if shards < 1 {
		shards = 1
	}
	wd := opts.WatchdogCycles
	if wd <= 0 {
		wd = DefaultWatchdogCycles
	}

	// Retain the router table at exact size: append-doubling overshoot in
	// the builder's slice must not survive into the network.
	routers := make([]Router, len(b.routers))
	copy(routers, b.routers)
	// Compact the per-chip terminal lists into one backing array.
	terms := 0
	for _, nodes := range chips {
		terms += len(nodes)
	}
	termSlab := make([]NodeID, 0, terms)
	for c := range chips {
		start := len(termSlab)
		termSlab = append(termSlab, chips[c]...)
		chips[c] = termSlab[start:len(termSlab):len(termSlab)]
	}

	n := &Network{
		Routers:       routers,
		ChipNodes:     chips,
		pool:          pool,
		ownedPool:     owned,
		shards:        shards,
		shard:         make([]shardStats, shards),
		seed:          opts.Seed,
		packetSize:    4,
		watchdogLimit: wd,
		engineKind:    opts.Engine,
	}
	// Materialize every router's ports from two network-wide slabs, carved
	// at exact size from the builder's per-router counts.
	totIn, totOut := 0, 0
	for i := range b.nIn {
		totIn += int(b.nIn[i])
		totOut += int(b.nOut[i])
	}
	allIn := make([]InPort, totIn)
	allOut := make([]OutPort, totOut)
	ii, oi := 0, 0
	for i := range n.Routers {
		r := &n.Routers[i]
		ki, ko := int(b.nIn[i]), int(b.nOut[i])
		r.In = allIn[ii : ii+ki : ii+ki]
		ii += ki
		r.Out = allOut[oi : oi+ko : oi+ko]
		oi += ko
	}
	for i := range n.Routers {
		n.Routers[i].RNG = engine.NewRNGStream(opts.Seed, uint64(i))
		// Routers beyond 64 ports fall back to full port scans; none of the
		// evaluated systems comes close.
		n.Routers[i].wide = len(n.Routers[i].In) > 64 || len(n.Routers[i].Out) > 64
	}
	// Adopt the link table as the network's contiguous value slice. n.Links
	// never resizes after Finalize, so &n.Links[i] is stable; ports are
	// wired onto it here.
	n.Links = make([]Link, len(b.links))
	copy(n.Links, b.links)
	for i := range n.Links {
		l := &n.Links[i]
		n.Routers[l.Src].Out[l.SrcPort].Link = l
		n.Routers[l.Dst].In[l.DstPort].Link = l
	}
	// Pack each router's hot port state contiguously: all VC queues in one
	// slab, all credit counters in another, and every network VC's initial
	// ring window carved from a shared ref array. A queue that outgrows its
	// window migrates to a private ring (vcQueue.grow); the injection
	// pseudo-queue starts with no window at all since its depth is
	// load-dependent and unbounded.
	for i := range n.Routers {
		r := &n.Routers[i]
		portVCs := func(link *Link) int {
			if link == nil {
				return 1 // injection pseudo-port: a single source queue
			}
			return int(link.VCs)
		}
		nvc, netVCs, ncred := 0, 0, 0
		for in := range r.In {
			nvc += portVCs(r.In[in].Link)
			if r.In[in].Link != nil {
				netVCs += int(r.In[in].Link.VCs)
			}
		}
		for o := range r.Out {
			if l := r.Out[o].Link; l != nil {
				ncred += int(l.VCs)
			}
		}
		vcs := make([]vcQueue, nvc)
		rings := make([]PacketRef, netVCs*vcRingWindow)
		creds := make([]int32, ncred)
		vi, ri, ci := 0, 0, 0
		for in := range r.In {
			ip := &r.In[in]
			k := portVCs(ip.Link)
			ip.VCs = vcs[vi : vi+k : vi+k]
			vi += k
			if ip.Link == nil {
				continue
			}
			for v := range ip.VCs {
				ip.VCs[v].buf = rings[ri : ri+vcRingWindow : ri+vcRingWindow]
				ri += vcRingWindow
			}
		}
		for o := range r.Out {
			op := &r.Out[o]
			if op.Link == nil {
				continue
			}
			k := int(op.Link.VCs)
			nc := creds[ci : ci+k : ci+k]
			ci += k
			for v := range nc {
				nc[v] = op.Link.BufFlits
			}
			op.Credits = nc
		}
	}
	// Partition links by consumer shard for the phase-A drain.
	shardOf := func(router NodeID) int {
		for s := 0; s < shards; s++ {
			lo, hi := engine.ShardBounds(len(n.Routers), shards, s)
			if int(router) >= lo && int(router) < hi {
				return s
			}
		}
		return 0
	}
	n.dataLinks = make([][]*Link, shards)
	n.creditLinks = make([][]*Link, shards)
	for i := range n.Links {
		l := &n.Links[i]
		ds := shardOf(l.Dst)
		n.dataLinks[ds] = append(n.dataLinks[ds], l)
		l.dstShard = int32(ds)
		cs := shardOf(l.Src)
		n.creditLinks[cs] = append(n.creditLinks[cs], l)
		l.srcShard = int32(cs)
	}
	// Static per-shard injector lists and active-set scaffolding (used by
	// the active-set engine; both engines visit injectors in this order).
	// The timing wheel must reach past the longest link delay (+1 cycle of
	// flit time, +1 so a wake never lands on the slot being drained); the
	// 64-slot floor gives sleeping routers room to park typical
	// serialization waits.
	maxDelay := int32(0)
	for i := range n.Links {
		if n.Links[i].Delay > maxDelay {
			maxDelay = n.Links[i].Delay
		}
	}
	wheelSize := 64
	for wheelSize < int(maxDelay)+2 {
		wheelSize *= 2
	}
	n.injectors = make([][]NodeID, shards)
	n.active = make([]shardActive, shards)
	for s := 0; s < shards; s++ {
		lo, hi := engine.ShardBounds(len(n.Routers), shards, s)
		for id := lo; id < hi; id++ {
			r := &n.Routers[id]
			if r.InjIn >= 0 && r.Chip >= 0 {
				n.injectors[s] = append(n.injectors[s], r.ID)
			}
		}
		n.active[s] = shardActive{
			lo:          lo,
			hi:          hi,
			routers:     engine.NewBitset(hi - lo),
			wheelMask:   int64(wheelSize - 1),
			wheelData:   make([][]*Link, wheelSize),
			wheelCredit: make([][]*Link, wheelSize),
			wheelRouter: make([][]NodeID, wheelSize),
			stageData:   make([][]*Link, shards),
			stageCredit: make([][]*Link, shards),
		}
	}
	n.initPhases()
	b.routers = nil
	b.nIn, b.nOut = nil, nil
	b.links = nil
	return n, nil
}
