package netsim

import (
	"errors"
	"fmt"
	"sort"

	"sldf/internal/engine"
)

// TimedFault is one scheduled churn event: a router or link dying (or
// coming back) at the start of cycle Cycle. Exactly one of Router/Link is
// set; the other holds -1. Repairs are reference-counted against deaths:
// a component is alive again only when every death event that hit it has
// been matched by a repair (and it was not already disabled at build time).
type TimedFault struct {
	Cycle  int64
	Repair bool
	Router NodeID // router event when >= 0
	Link   int32  // link event when >= 0 (and Router < 0)
}

// RouterFault builds a router death/repair event.
func RouterFault(cycle int64, id NodeID, repair bool) TimedFault {
	return TimedFault{Cycle: cycle, Repair: repair, Router: id, Link: -1}
}

// LinkFault builds a link death/repair event.
func LinkFault(cycle int64, id int32, repair bool) TimedFault {
	return TimedFault{Cycle: cycle, Repair: repair, Router: -1, Link: id}
}

// DropPolicy selects what happens to in-flight packets stranded by a churn
// event (queued in a dying router, traveling a dying link, or addressed to
// a chip that just lost its last terminal).
type DropPolicy uint8

const (
	// DropInFlight discards stranded packets, counting them in
	// Stats.DroppedPkts. The lossy-fabric model: reliability is someone
	// else's layer.
	DropInFlight DropPolicy = iota
	// RetrySource re-enqueues a stranded packet at its source terminal's
	// injection queue (counting Stats.RetriedPkts) so it is re-routed from
	// scratch; packets whose source or destination chip is dead are dropped
	// as under DropInFlight.
	RetrySource
)

// String names the drop policy.
func (p DropPolicy) String() string {
	switch p {
	case DropInFlight:
		return "drop"
	case RetrySource:
		return "retry"
	}
	return "unknown"
}

// SortTimedFaults puts events in canonical application order: by cycle,
// deaths before repairs, then router ID, then link ID. Every timeline
// producer (topology.FaultTimeline, tests, CLIs) sorts with this so a given
// event set always applies identically.
func SortTimedFaults(events []TimedFault) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Repair != b.Repair {
			return !a.Repair
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		return a.Link < b.Link
	})
}

// churnState is the armed fault timeline of a network: the pending event
// list, reference counts tracking how many unrepaired deaths currently hold
// each component down, and snapshots of the build-time (post-static-fault)
// state that Reset restores.
type churnState struct {
	events []TimedFault
	next   int // first unapplied event
	policy DropPolicy

	// onApply runs serially after every applied event batch (routing
	// recompute, in-flight sanitation). An error aborts the run: it is
	// surfaced by the next Run/RunUntil/Drain call.
	onApply func(*Network) error
	err     error

	// routerRefs[id] counts unrepaired death events on router id; a link's
	// count sums explicit link deaths plus one per dead endpoint router.
	// Component disabled = base flag || refs > 0.
	routerRefs []int16
	linkRefs   []int16

	baseRouterDisabled []bool
	baseLinkDisabled   []bool
	baseChipNodes      [][]NodeID

	// scratch collects packets stranded while a batch's events are being
	// applied; they are disposed of (drop or retry) only after the chip
	// tables reflect the whole batch, so a retry can never target a router
	// that a later event of the same batch kills.
	scratch []strandedRef

	// toggledRouters/toggledLinks record the components that actually
	// flipped alive<->dead while the current batch applied; the flow
	// solver's route-trace cache evicts exactly the entries whose paths
	// cross them. appliedAny marks that some batch has been applied since
	// the last Reset, so resetChurn knows cached traces reflect a mutated
	// component set and must be discarded when the base state is restored.
	toggledRouters []NodeID
	toggledLinks   []int32
	appliedAny     bool
}

// strandedRef is one packet awaiting post-batch disposal, tagged with the
// shard whose counters and free list account for it.
type strandedRef struct {
	ref   PacketRef
	shard int32
}

// ChurnArmed reports whether a fault timeline is installed.
func (n *Network) ChurnArmed() bool { return n.churn != nil }

// ChurnPending returns the number of timeline events not yet applied.
func (n *Network) ChurnPending() int {
	if n.churn == nil {
		return 0
	}
	return len(n.churn.events) - n.churn.next
}

// ChurnErr returns the error (if any) raised by the churn apply hook.
func (n *Network) ChurnErr() error {
	if n.churn == nil {
		return nil
	}
	return n.churn.err
}

// ScheduleChurn arms a fault timeline on a freshly built (or reset)
// network. events are copied and canonically sorted; policy selects the
// stranded-packet treatment; onApply (optional) runs after every applied
// batch — the core layer uses it to rebuild fault-aware routing and
// sanitize in-flight packets against the new component set.
//
// Must be called at cycle zero, after build-time faults: the current
// Disabled flags and chip tables are snapshotted as the base state that
// reference counting (and Reset) restores. An empty event list is valid
// and leaves simulation bitwise identical to an unarmed network.
func (n *Network) ScheduleChurn(events []TimedFault, policy DropPolicy, onApply func(*Network) error) error {
	if n.Cycle != 0 {
		return fmt.Errorf("netsim: ScheduleChurn at cycle %d; arm timelines before the first Step", n.Cycle)
	}
	for _, e := range events {
		if err := n.checkFault(e); err != nil {
			return err
		}
	}
	c := &churnState{
		events:     append([]TimedFault(nil), events...),
		policy:     policy,
		onApply:    onApply,
		routerRefs: make([]int16, len(n.Routers)),
		linkRefs:   make([]int16, len(n.Links)),
	}
	SortTimedFaults(c.events)
	c.baseRouterDisabled = make([]bool, len(n.Routers))
	for i := range n.Routers {
		c.baseRouterDisabled[i] = n.Routers[i].Disabled
	}
	c.baseLinkDisabled = make([]bool, len(n.Links))
	for i := range n.Links {
		c.baseLinkDisabled[i] = n.Links[i].Disabled
	}
	c.baseChipNodes = make([][]NodeID, len(n.ChipNodes))
	for i, nodes := range n.ChipNodes {
		c.baseChipNodes[i] = append([]NodeID(nil), nodes...)
	}
	n.churn = c
	return nil
}

func (n *Network) checkFault(e TimedFault) error {
	if e.Cycle < 0 {
		return fmt.Errorf("netsim: churn event at negative cycle %d", e.Cycle)
	}
	switch {
	case e.Router >= 0:
		if int(e.Router) >= len(n.Routers) {
			return fmt.Errorf("netsim: churn router %d out of range [0,%d)", e.Router, len(n.Routers))
		}
	case e.Link >= 0:
		if int(e.Link) >= len(n.Links) {
			return fmt.Errorf("netsim: churn link %d out of range [0,%d)", e.Link, len(n.Links))
		}
	default:
		return errors.New("netsim: churn event names neither a router nor a link")
	}
	return nil
}

// InjectChurn applies events immediately, at the current step boundary
// (between Steps, or before the first). The timeline must be armed — a
// zero-event ScheduleChurn is the way to enable pure programmatic churn.
// The canonical sort is applied to the batch; the apply hook runs once.
func (n *Network) InjectChurn(events []TimedFault) error {
	if n.churn == nil {
		return errors.New("netsim: InjectChurn on a network with no armed timeline (ScheduleChurn first)")
	}
	if len(events) == 0 {
		return nil
	}
	for _, e := range events {
		if err := n.checkFault(e); err != nil {
			return err
		}
	}
	batch := append([]TimedFault(nil), events...)
	SortTimedFaults(batch)
	n.applyChurnBatch(batch)
	return n.churn.err
}

// applyDueChurn applies every timeline event scheduled at or before the
// current cycle. Called serially at the top of Step; zero pending events
// cost one comparison.
func (n *Network) applyDueChurn() {
	c := n.churn
	if c.next >= len(c.events) || c.events[c.next].Cycle > n.Cycle {
		return
	}
	lo := c.next
	for c.next < len(c.events) && c.events[c.next].Cycle <= n.Cycle {
		c.next++
	}
	n.applyChurnBatch(c.events[lo:c.next])
}

// applyChurnBatch applies one batch of events, then rebuilds the derived
// structures (chip tables, injector and drain lists, active sets), strands
// packets per policy, and runs the apply hook. Serial: called only between
// engine phases.
func (n *Network) applyChurnBatch(batch []TimedFault) {
	c := n.churn
	c.toggledRouters = c.toggledRouters[:0]
	c.toggledLinks = c.toggledLinks[:0]
	c.appliedAny = true
	for _, e := range batch {
		if e.Repair {
			n.repairOne(e)
		} else {
			n.killOne(e)
		}
	}
	n.flowInvalidateChurn(c.toggledRouters, c.toggledLinks)
	n.rebuildChipNodes()
	for _, s := range c.scratch {
		n.strandPacket(s.ref, n.arena.at(s.ref), int(s.shard))
	}
	c.scratch = c.scratch[:0]
	n.sweepStranded()
	n.rebuildShardLists()
	if n.engineKind == EngineActiveSet {
		n.rebuildActive()
	}
	if c.onApply != nil && c.err == nil {
		c.err = c.onApply(n)
	}
}

// killOne applies one death event: bump reference counts and, on an
// alive→dead transition, clear the component's queued traffic.
func (n *Network) killOne(e TimedFault) {
	c := n.churn
	if e.Router >= 0 {
		c.routerRefs[e.Router]++
		r := &n.Routers[e.Router]
		if r.Disabled {
			return // already down (base fault or earlier death)
		}
		r.Disabled = true
		c.toggledRouters = append(c.toggledRouters, e.Router)
		n.clearRouter(r)
		for p := range r.In {
			if l := r.In[p].Link; l != nil {
				c.linkRefs[l.ID]++
				n.killLink(l)
			}
		}
		for p := range r.Out {
			if l := r.Out[p].Link; l != nil {
				c.linkRefs[l.ID]++
				n.killLink(l)
			}
		}
		return
	}
	c.linkRefs[e.Link]++
	n.killLink(&n.Links[e.Link])
}

// killLink disables a link (idempotent) and drops its in-flight traffic.
func (n *Network) killLink(l *Link) {
	if l.Disabled {
		return
	}
	l.Disabled = true
	n.churn.toggledLinks = append(n.churn.toggledLinks, l.ID)
	for {
		ref, ok := l.data.popReady(1 << 62)
		if !ok {
			break
		}
		n.churn.scratch = append(n.churn.scratch, strandedRef{ref, l.dstShard})
	}
	l.credit.clear()
}

// clearRouter drops every packet queued in r (deferred to post-batch
// disposal) and zeroes its allocation state, as if freshly reset. No
// credits are returned: every link into a dying router dies with it, and
// repair rebuilds the credit books.
func (n *Network) clearRouter(r *Router) {
	shard := int32(n.shardOfRouter(r.ID))
	for in := range r.In {
		ip := &r.In[in]
		for vc := range ip.VCs {
			q := &ip.VCs[vc]
			for !q.empty() {
				ref := q.front()
				q.pop(n.arena.at(ref).Size)
				n.churn.scratch = append(n.churn.scratch, strandedRef{ref, shard})
			}
			q.clear()
		}
		ip.busyUntil = 0
		ip.occMask = 0
	}
	for o := range r.Out {
		op := &r.Out[o]
		op.busyUntil = 0
		op.rr = 0
	}
	for g := range r.granted {
		r.granted[g] = 0
	}
	r.active = 0
	r.occPorts = 0
	r.nextAlloc = 0
}

// repairOne applies one repair event: decrement reference counts and, on a
// dead→alive transition, restore the component to service with a coherent
// credit state.
func (n *Network) repairOne(e TimedFault) {
	c := n.churn
	if e.Router >= 0 {
		if c.routerRefs[e.Router] == 0 {
			return // unmatched repair: no-op
		}
		c.routerRefs[e.Router]--
		r := &n.Routers[e.Router]
		if c.routerRefs[e.Router] > 0 || c.baseRouterDisabled[e.Router] {
			return
		}
		r.Disabled = false
		c.toggledRouters = append(c.toggledRouters, e.Router)
		n.clearRouter(r) // queues are already empty; re-zeroes port state
		for p := range r.In {
			if l := r.In[p].Link; l != nil {
				if c.linkRefs[l.ID] > 0 {
					c.linkRefs[l.ID]--
				}
				n.maybeReviveLink(l)
			}
		}
		for p := range r.Out {
			if l := r.Out[p].Link; l != nil {
				if c.linkRefs[l.ID] > 0 {
					c.linkRefs[l.ID]--
				}
				n.maybeReviveLink(l)
			}
		}
		return
	}
	if c.linkRefs[e.Link] == 0 {
		return
	}
	c.linkRefs[e.Link]--
	n.maybeReviveLink(&n.Links[e.Link])
}

// maybeReviveLink re-enables l when nothing holds it down any more,
// restoring the upstream credit counters to the downstream buffer's actual
// free space (packets parked in the downstream VCs across the outage keep
// their claim).
func (n *Network) maybeReviveLink(l *Link) {
	c := n.churn
	if !l.Disabled || c.linkRefs[l.ID] > 0 || c.baseLinkDisabled[l.ID] {
		return
	}
	if n.Routers[l.Src].Disabled || n.Routers[l.Dst].Disabled {
		return
	}
	l.Disabled = false
	c.toggledLinks = append(c.toggledLinks, l.ID)
	l.data.clear()
	l.credit.clear()
	src := &n.Routers[l.Src]
	dst := &n.Routers[l.Dst]
	op := &src.Out[l.SrcPort]
	ip := &dst.In[l.DstPort]
	for vc := range op.Credits {
		occ := int32(0)
		if vc < len(ip.VCs) {
			occ = ip.VCs[vc].occ
		}
		op.Credits[vc] = l.BufFlits - occ
	}
	src.nextAlloc = 0
}

// strandPacket disposes of one in-flight packet per the drop policy,
// crediting the counters of the given shard (whose free list receives the
// arena slot).
func (n *Network) strandPacket(ref PacketRef, p *Packet, shard int) {
	ss := &n.shard[shard]
	if n.churn.policy == RetrySource && n.retryAtSource(p, ref) {
		ss.retriedPkts++
		return
	}
	ss.droppedPkts++
	ss.free = append(ss.free, ref)
}

// retryAtSource re-enqueues p at its source terminal's injection queue for
// a fresh attempt, reporting false when source or destination is gone (the
// caller then drops the packet).
func (n *Network) retryAtSource(p *Packet, ref PacketRef) bool {
	if !n.ChipAlive(p.SrcChip) || !n.ChipAlive(p.DstChip) {
		return false
	}
	src := &n.Routers[p.SrcNode]
	if src.Disabled || src.InjIn < 0 {
		// The original terminal died: hand the retry to the chip's first
		// surviving terminal (deterministic choice).
		src = &n.Routers[n.ChipNodes[p.SrcChip][0]]
		p.SrcNode = src.ID
	}
	p.VC, p.Phase = 0, 0
	p.Aux, p.Aux2 = -1, -1
	ip := &src.In[src.InjIn]
	if ip.VCs[0].empty() {
		if ip.occMask == 0 {
			src.occPorts |= 1 << uint(src.InjIn)
		}
		ip.occMask |= 1
		src.active++
	}
	ip.VCs[0].push(ref, p.Size)
	src.nextAlloc = 0
	return true
}

// rebuildChipNodes refilters every chip's terminal table from the base
// snapshot against the current Disabled flags, keeping Local indices in
// sync with slice positions (DstSameIndex addressing).
func (n *Network) rebuildChipNodes() {
	c := n.churn
	for chip, base := range c.baseChipNodes {
		nodes := n.ChipNodes[chip][:0]
		if nodes == nil && len(base) > 0 {
			nodes = make([]NodeID, 0, len(base))
		}
		for _, id := range base {
			if !n.Routers[id].Disabled {
				nodes = append(nodes, id)
			}
		}
		if len(nodes) == 0 {
			n.ChipNodes[chip] = nil
			continue
		}
		n.ChipNodes[chip] = nodes
		for idx, id := range nodes {
			n.Routers[id].Local = int32(idx)
		}
	}
}

// sweepStranded walks every live packet after a churn batch and strands
// (per policy) the ones whose destination chip died; packets whose exact
// destination terminal died on a surviving chip are retargeted to a
// deterministic sibling terminal. Route caches are invalidated throughout:
// the component set changed under them.
func (n *Network) sweepStranded() {
	for i := range n.Routers {
		r := &n.Routers[i]
		if r.Disabled {
			continue
		}
		shard := n.shardOfRouter(r.ID)
		for in := range r.In {
			ip := &r.In[in]
			for vc := range ip.VCs {
				q := &ip.VCs[vc]
				q.routed = false
				for k := 0; k < q.size(); {
					ref := q.at(k)
					p := n.arena.at(ref)
					if n.ChipAlive(p.DstChip) {
						if n.Routers[p.DstNode].Disabled {
							p.DstNode = n.ChipNodes[p.DstChip][int(p.SrcNode)%len(n.ChipNodes[p.DstChip])]
						}
						k++
						continue
					}
					n.unqueuePacket(r, ip, in, vc, k, p)
					n.strandPacket(ref, p, shard)
				}
			}
		}
	}
	for i := range n.Links {
		l := &n.Links[i]
		if l.Disabled || l.data.n == 0 {
			continue
		}
		n.filterLinkPackets(l, func(p *Packet) bool {
			if !n.ChipAlive(p.DstChip) {
				return false
			}
			if n.Routers[p.DstNode].Disabled {
				p.DstNode = n.ChipNodes[p.DstChip][int(p.SrcNode)%len(n.ChipNodes[p.DstChip])]
			}
			return true
		})
	}
}

// unqueuePacket removes the k-th packet of queue (in, vc) on r, maintaining
// the occupancy bookkeeping and returning the freed buffer space upstream
// when the feeding link is alive.
func (n *Network) unqueuePacket(r *Router, ip *InPort, in, vc, k int, p *Packet) {
	q := &ip.VCs[vc]
	q.removeAt(k, p.Size)
	if q.empty() {
		ip.occMask &^= 1 << vc
		if ip.occMask == 0 {
			r.occPorts &^= 1 << uint(in)
		}
		r.active--
	}
	if l := ip.Link; l != nil && !l.Disabled {
		l.credit.push(timedCredit{at: n.Cycle + int64(l.Delay), flits: p.Size, vc: uint8(vc)})
	}
}

// filterLinkPackets keeps only the data-queue packets for which keep
// returns true, preserving order and delivery times; removed packets are
// stranded per policy with their buffer claim returned upstream (the
// downstream buffer was never charged for packets still on the wire, but
// the upstream output port's credit was).
func (n *Network) filterLinkPackets(l *Link, keep func(*Packet) bool) {
	f := &l.data
	w := 0
	for i := 0; i < f.n; i++ {
		j := (f.head + i) & (len(f.buf) - 1)
		tp := f.buf[j]
		p := n.arena.at(tp.ref)
		if keep(p) {
			f.buf[(f.head+w)&(len(f.buf)-1)] = tp
			w++
			continue
		}
		l.credit.push(timedCredit{at: n.Cycle + int64(l.Delay), flits: p.Size, vc: p.VC})
		n.strandPacket(tp.ref, p, int(l.dstShard))
	}
	f.n = w
}

// SanitizeInFlight strands (per the armed drop policy) every live packet
// for which keep returns false, given the router the packet currently
// occupies (for link traffic: the downstream router it is traveling
// toward). The routing layer calls this after a mid-run route recompute to
// retire packets whose cached scratch state is no longer realizable under
// the new component set. Returns the number of packets stranded.
func (n *Network) SanitizeInFlight(keep func(r *Router, p *Packet) bool) int {
	if n.churn == nil {
		return 0
	}
	stranded := 0
	for i := range n.Routers {
		r := &n.Routers[i]
		if r.Disabled {
			continue
		}
		shard := n.shardOfRouter(r.ID)
		for in := range r.In {
			ip := &r.In[in]
			for vc := range ip.VCs {
				q := &ip.VCs[vc]
				for k := 0; k < q.size(); {
					ref := q.at(k)
					p := n.arena.at(ref)
					if keep(r, p) {
						k++
						continue
					}
					n.unqueuePacket(r, ip, in, vc, k, p)
					n.strandPacket(ref, p, shard)
					stranded++
				}
				q.routed = false
			}
		}
	}
	for i := range n.Links {
		l := &n.Links[i]
		if l.Disabled || l.data.n == 0 {
			continue
		}
		dst := &n.Routers[l.Dst]
		before := l.data.n
		n.filterLinkPackets(l, func(p *Packet) bool { return keep(dst, p) })
		stranded += before - l.data.n
	}
	if n.engineKind == EngineActiveSet {
		n.rebuildActive()
	}
	return stranded
}

// rebuildShardLists reconstructs the per-shard injector walk and the
// reference engine's drain lists from the current Disabled flags, in
// exactly the order Finalize (and build-time applyFaults) produce: routers
// ascending within each shard, links in index order.
func (n *Network) rebuildShardLists() {
	for s := range n.injectors {
		lo, hi := engine.ShardBounds(len(n.Routers), n.shards, s)
		inj := n.injectors[s][:0]
		for id := lo; id < hi; id++ {
			r := &n.Routers[id]
			if r.InjIn >= 0 && r.Chip >= 0 && !r.Disabled {
				inj = append(inj, r.ID)
			}
		}
		n.injectors[s] = inj
	}
	for s := range n.dataLinks {
		n.dataLinks[s] = n.dataLinks[s][:0]
		n.creditLinks[s] = n.creditLinks[s][:0]
	}
	for i := range n.Links {
		l := &n.Links[i]
		if l.Disabled {
			continue
		}
		n.dataLinks[l.dstShard] = append(n.dataLinks[l.dstShard], l)
		n.creditLinks[l.srcShard] = append(n.creditLinks[l.srcShard], l)
	}
}

// shardOfRouter returns the shard owning router id.
func (n *Network) shardOfRouter(id NodeID) int {
	for s := 0; s < n.shards; s++ {
		lo, hi := engine.ShardBounds(len(n.Routers), n.shards, s)
		if int(id) >= lo && int(id) < hi {
			return s
		}
	}
	return 0
}

// resetChurn restores the base (build-time) fault state and re-arms the
// timeline from its first event. Called by Reset on armed networks, after
// the generic queue/statistics reset.
func (n *Network) resetChurn() {
	c := n.churn
	for i := range n.Routers {
		n.Routers[i].Disabled = c.baseRouterDisabled[i]
	}
	for i := range n.Links {
		n.Links[i].Disabled = c.baseLinkDisabled[i]
	}
	for i := range c.routerRefs {
		c.routerRefs[i] = 0
	}
	for i := range c.linkRefs {
		c.linkRefs[i] = 0
	}
	for chip, base := range c.baseChipNodes {
		if len(base) == 0 {
			n.ChipNodes[chip] = nil
			continue
		}
		nodes := n.ChipNodes[chip][:0]
		if nodes == nil {
			nodes = make([]NodeID, 0, len(base))
		}
		nodes = append(nodes, base...)
		n.ChipNodes[chip] = nodes
		for idx, id := range nodes {
			n.Routers[id].Local = int32(idx)
		}
	}
	n.rebuildShardLists()
	c.next = 0
	c.err = nil
	// Cached route traces were computed against the mutated component set;
	// restoring the base state invalidates them wholesale. A reset that
	// never applied an event keeps the cache — that is the common
	// build-once/measure-many sweep case.
	if c.appliedAny {
		n.flowInvalidateAll()
		c.appliedAny = false
	}
}
