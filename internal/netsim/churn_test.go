package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"sldf/internal/engine"
)

// buildChurnRing constructs a bidirectional ring of n core routers, each the
// terminal of its own chip, with a fault-adaptive route: clockwise unless a
// dead component blocks the clockwise walk to the destination, in which
// case counterclockwise. The adaptivity makes churn survivable without the
// routing package, keeping these tests pure netsim.
func buildChurnRing(t testing.TB, n int, opts NetworkOptions) *Network {
	t.Helper()
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 2, BufFlits: 16}
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddRouter(KindCore)
		b.Router(ids[i]).X = int16(i)
		b.AddTerminal(ids[i], int32(i), 0)
	}
	for i := 0; i < n; i++ {
		b.ConnectBidi(ids[i], ids[(i+1)%n], spec)
	}
	net, err := b.Finalize(opts)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	portToward := func(r *Router, want NodeID) int {
		for o := range r.Out {
			if l := r.Out[o].Link; l != nil && l.Dst == want {
				return o
			}
		}
		return -1
	}
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if r.ID == p.DstNode {
			return int(r.EjectOut), 0
		}
		// Walk clockwise from here to the destination; fall back to the
		// counterclockwise direction if anything on the way is dead.
		dir := 1
		for u := int(r.X); ids[u] != p.DstNode; {
			v := (u + 1) % n
			r2 := &net.Routers[ids[u]]
			o := portToward(r2, ids[v])
			if net.Routers[ids[v]].Disabled || r2.Out[o].Link.Disabled {
				dir = -1
				break
			}
			u = v
		}
		next := ids[(int(r.X)+dir+n)%n]
		return portToward(r, next), 0
	})
	return net
}

// linkBetween finds the directed link src→dst.
func linkBetween(t *testing.T, net *Network, src, dst NodeID) *Link {
	t.Helper()
	r := net.Router(src)
	for o := range r.Out {
		if l := r.Out[o].Link; l != nil && l.Dst == dst {
			return l
		}
	}
	t.Fatalf("no link %d→%d", src, dst)
	return nil
}

// streamTo emits one packet src→dst every period cycles until stop.
func streamTo(src, dst int32, period, stop int64) Generator {
	return GeneratorFunc(func(now int64, s int32, node int, rng *engine.RNG) int32 {
		if s == src && now < stop && now%period == 0 {
			return dst
		}
		return -1
	})
}

func TestChurnLinkDeathReroutesAndAccounts(t *testing.T) {
	for _, kind := range []EngineKind{EngineActiveSet, EngineReference} {
		t.Run(kind.String(), func(t *testing.T) {
			net := buildChurnRing(t, 6, NetworkOptions{Seed: 1, Workers: 1})
			defer net.Close()
			net.SetEngine(kind)
			// Sever the clockwise path 0→1→2 mid-stream; packets re-route
			// counterclockwise 0→5→4→3→2 and anything on the dead channel
			// is dropped.
			fwd := linkBetween(t, net, 1, 2)
			rev := linkBetween(t, net, 2, 1)
			events := []TimedFault{
				LinkFault(20, fwd.ID, false),
				LinkFault(20, rev.ID, false),
			}
			if err := net.ScheduleChurn(events, DropInFlight, nil); err != nil {
				t.Fatal(err)
			}
			net.SetTraffic(streamTo(0, 2, 3, 60), 4, DstSameIndex)
			net.StartMeasurement()
			if err := net.Run(80); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Drain(200); err != nil {
				t.Fatal(err)
			}
			st := net.Snapshot()
			if st.DeliveredPkts == 0 {
				t.Fatal("nothing delivered")
			}
			if st.InjectedPkts != st.DeliveredPkts+st.DroppedPkts {
				t.Fatalf("conservation broken: injected %d != delivered %d + dropped %d",
					st.InjectedPkts, st.DeliveredPkts, st.DroppedPkts)
			}
			if st.InFlightPkts != 0 {
				t.Fatalf("in-flight %d after drain", st.InFlightPkts)
			}
			if net.ChurnPending() != 0 {
				t.Fatalf("%d timeline events never applied", net.ChurnPending())
			}
			// The counterclockwise detour is 4 hops instead of 2, so the
			// post-death packets must push mean hops above the pristine 2.
			if hops := float64(st.Hops[HopShortReach]) / float64(st.DeliveredPkts); hops <= 2 {
				t.Fatalf("mean SR hops %.2f; re-route never happened", hops)
			}
		})
	}
}

func TestChurnRouterDeathAndRepair(t *testing.T) {
	net := buildChurnRing(t, 6, NetworkOptions{Seed: 2, Workers: 1})
	defer net.Close()
	// Chip 3's router dies at cycle 20 and is repaired at cycle 120:
	// while it is down, traffic addressed to chip 3 is refused at the
	// source; afterwards delivery resumes.
	events := []TimedFault{
		RouterFault(20, net.ChipNodes[3][0], false),
		RouterFault(120, net.ChipNodes[3][0], true),
	}
	if err := net.ScheduleChurn(events, DropInFlight, nil); err != nil {
		t.Fatal(err)
	}
	net.SetTraffic(streamTo(0, 3, 4, 200), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(100); err != nil {
		t.Fatal(err)
	}
	mid := net.Snapshot()
	if mid.RefusedPkts == 0 {
		t.Fatal("no injections refused while the destination chip was dead")
	}
	if err := net.Run(120); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(200); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.DeliveredPkts <= mid.DeliveredPkts {
		t.Fatalf("delivery did not resume after repair: %d then %d",
			mid.DeliveredPkts, st.DeliveredPkts)
	}
	if st.InjectedPkts != st.DeliveredPkts+st.DroppedPkts {
		t.Fatalf("conservation broken: injected %d != delivered %d + dropped %d",
			st.InjectedPkts, st.DeliveredPkts, st.DroppedPkts)
	}
	if gotR, gotL := net.DisabledCounts(); gotR != 0 || gotL != 0 {
		t.Fatalf("repair left %d routers / %d links disabled", gotR, gotL)
	}
}

func TestChurnRetrySourceRedelivers(t *testing.T) {
	net := buildChurnRing(t, 6, NetworkOptions{Seed: 3, Workers: 1})
	defer net.Close()
	// Router 1 (a through-hop for the 0→2 clockwise stream) dies mid-run.
	// Under RetrySource every stranded packet re-enters chip 0's injection
	// queue and is re-routed counterclockwise, so nothing is lost.
	events := []TimedFault{RouterFault(15, net.ChipNodes[1][0], false)}
	if err := net.ScheduleChurn(events, RetrySource, nil); err != nil {
		t.Fatal(err)
	}
	net.SetTraffic(streamTo(0, 2, 1, 15), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(40); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(300); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.RetriedPkts == 0 {
		t.Fatal("no packets retried; the kill stranded nothing")
	}
	if st.DroppedPkts != 0 {
		t.Fatalf("%d packets dropped under RetrySource with alive endpoints", st.DroppedPkts)
	}
	if st.DeliveredPkts != st.InjectedPkts {
		t.Fatalf("delivered %d of %d injected", st.DeliveredPkts, st.InjectedPkts)
	}
}

// churnRingStats builds the standard churn scenario and returns its final
// statistics: a 6-ring under a two-stream load with a link channel death, a
// router death and a later repair.
func churnRingStats(t *testing.T, kind EngineKind, workers int, withTimeline bool) Stats {
	t.Helper()
	net := buildChurnRing(t, 6, NetworkOptions{Seed: 7, Workers: workers})
	defer net.Close()
	net.SetEngine(kind)
	if withTimeline {
		fwd := linkBetween(t, net, 4, 5)
		rev := linkBetween(t, net, 5, 4)
		events := []TimedFault{
			LinkFault(25, fwd.ID, false),
			LinkFault(25, rev.ID, false),
			RouterFault(40, net.ChipNodes[1][0], false),
			LinkFault(90, fwd.ID, true),
			LinkFault(90, rev.ID, true),
			RouterFault(110, net.ChipNodes[1][0], true),
		}
		if err := net.ScheduleChurn(events, RetrySource, nil); err != nil {
			t.Fatal(err)
		}
	}
	gen := GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if now >= 150 {
			return -1
		}
		switch src {
		case 0:
			if now%3 == 0 {
				return 2
			}
		case 3:
			if now%4 == 0 {
				return 5
			}
		}
		return -1
	})
	net.SetTraffic(gen, 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(170); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(400); err != nil {
		t.Fatal(err)
	}
	return net.Snapshot()
}

func TestChurnEngineEquivalence(t *testing.T) {
	ref := churnRingStats(t, EngineReference, 1, true)
	if ref.DeliveredPkts == 0 || ref.RetriedPkts+ref.DroppedPkts+ref.RefusedPkts == 0 {
		t.Fatalf("scenario too quiet to compare: %+v", ref)
	}
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			act := churnRingStats(t, EngineActiveSet, workers, true)
			if !reflect.DeepEqual(ref, act) {
				t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref, act)
			}
		})
	}
}

func TestChurnEmptyTimelineBitwise(t *testing.T) {
	// An armed zero-event timeline must change nothing: the churn plumbing
	// (per-step due check, snapshots, counters) has to be invisible when no
	// event ever fires.
	for _, kind := range []EngineKind{EngineActiveSet, EngineReference} {
		t.Run(kind.String(), func(t *testing.T) {
			plain := churnRingStats(t, kind, 1, false)
			armedNet := buildChurnRing(t, 6, NetworkOptions{Seed: 7, Workers: 1})
			defer armedNet.Close()
			armedNet.SetEngine(kind)
			if err := armedNet.ScheduleChurn(nil, DropInFlight, nil); err != nil {
				t.Fatal(err)
			}
			gen := GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
				if now >= 150 {
					return -1
				}
				switch src {
				case 0:
					if now%3 == 0 {
						return 2
					}
				case 3:
					if now%4 == 0 {
						return 5
					}
				}
				return -1
			})
			armedNet.SetTraffic(gen, 4, DstSameIndex)
			armedNet.StartMeasurement()
			if err := armedNet.Run(170); err != nil {
				t.Fatal(err)
			}
			if _, err := armedNet.Drain(400); err != nil {
				t.Fatal(err)
			}
			if got := armedNet.Snapshot(); !reflect.DeepEqual(plain, got) {
				t.Fatalf("armed zero-event timeline changed the run:\nplain: %+v\narmed: %+v", plain, got)
			}
		})
	}
}

func TestChurnResetMidTimelineRestoresBuildState(t *testing.T) {
	for _, kind := range []EngineKind{EngineActiveSet, EngineReference} {
		t.Run(kind.String(), func(t *testing.T) {
			fresh := churnRingStats(t, kind, 1, true)

			net := buildChurnRing(t, 6, NetworkOptions{Seed: 7, Workers: 1})
			defer net.Close()
			net.SetEngine(kind)
			fwd := linkBetween(t, net, 4, 5)
			rev := linkBetween(t, net, 5, 4)
			events := []TimedFault{
				LinkFault(25, fwd.ID, false),
				LinkFault(25, rev.ID, false),
				RouterFault(40, net.ChipNodes[1][0], false),
				LinkFault(90, fwd.ID, true),
				LinkFault(90, rev.ID, true),
				RouterFault(110, net.ChipNodes[1][0], true),
			}
			total := len(events)
			if err := net.ScheduleChurn(events, RetrySource, nil); err != nil {
				t.Fatal(err)
			}
			gen := GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
				if now >= 150 {
					return -1
				}
				switch src {
				case 0:
					if now%3 == 0 {
						return 2
					}
				case 3:
					if now%4 == 0 {
						return 5
					}
				}
				return -1
			})
			// Run into the middle of the timeline: the deaths applied, the
			// repairs still pending.
			net.SetTraffic(gen, 4, DstSameIndex)
			if err := net.Run(60); err != nil {
				t.Fatal(err)
			}
			if r, l := net.DisabledCounts(); r == 0 && l == 0 {
				t.Fatal("deaths never applied; the reset is vacuous")
			}
			net.Reset()
			if r, l := net.DisabledCounts(); r != 0 || l != 0 {
				t.Fatalf("Reset left %d routers / %d links disabled", r, l)
			}
			if net.ChurnPending() != total {
				t.Fatalf("Reset left %d of %d events pending", net.ChurnPending(), total)
			}
			// Replay from scratch: bitwise identical to the fresh build.
			net.SetTraffic(gen, 4, DstSameIndex)
			net.StartMeasurement()
			if err := net.Run(170); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Drain(400); err != nil {
				t.Fatal(err)
			}
			if got := net.Snapshot(); !reflect.DeepEqual(fresh, got) {
				t.Fatalf("reset-mid-churn replay diverged:\nfresh: %+v\nreset: %+v", fresh, got)
			}
		})
	}
}

func TestScheduleChurnValidation(t *testing.T) {
	net := buildChurnRing(t, 4, NetworkOptions{Seed: 1, Workers: 1})
	defer net.Close()
	if err := net.InjectChurn([]TimedFault{RouterFault(0, 0, false)}); err == nil {
		t.Fatal("InjectChurn on an unarmed network succeeded")
	}
	if err := net.ScheduleChurn([]TimedFault{RouterFault(0, 9999, false)}, DropInFlight, nil); err == nil {
		t.Fatal("out-of-range router event accepted")
	}
	if err := net.ScheduleChurn([]TimedFault{LinkFault(-1, 0, false)}, DropInFlight, nil); err == nil {
		t.Fatal("negative-cycle event accepted")
	}
	if err := net.ScheduleChurn(nil, DropInFlight, nil); err != nil {
		t.Fatal(err)
	}
	if !net.ChurnArmed() {
		t.Fatal("zero-event ScheduleChurn did not arm the network")
	}
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleChurn(nil, DropInFlight, nil); err == nil {
		t.Fatal("mid-run ScheduleChurn accepted")
	}
}

func TestInjectChurnImmediateKill(t *testing.T) {
	net := buildChurnRing(t, 6, NetworkOptions{Seed: 4, Workers: 1})
	defer net.Close()
	if err := net.ScheduleChurn(nil, DropInFlight, nil); err != nil {
		t.Fatal(err)
	}
	net.SetTraffic(streamTo(0, 2, 3, 40), 4, DstSameIndex)
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	victim := net.ChipNodes[2][0]
	if err := net.InjectChurn([]TimedFault{RouterFault(net.Cycle, victim, false)}); err != nil {
		t.Fatal(err)
	}
	if !net.Router(victim).Disabled {
		t.Fatal("InjectChurn did not kill the router")
	}
	if net.ChipAlive(2) {
		t.Fatal("chip 2 still alive after its only terminal died")
	}
	if err := net.Run(30); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(200); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.RefusedPkts == 0 {
		t.Fatal("no injections refused after the destination chip died")
	}
	if st.InjectedPkts != st.DeliveredPkts+st.DroppedPkts {
		t.Fatalf("conservation broken: injected %d != delivered %d + dropped %d",
			st.InjectedPkts, st.DeliveredPkts, st.DroppedPkts)
	}
}
