package netsim

import (
	"errors"
	"fmt"
	"sort"
)

// ErrDeadChip is the sentinel matched (via errors.Is) by DeadChipError:
// a fault set would leave a terminal chip with no alive injection router,
// which the open-loop traffic model cannot represent.
var ErrDeadChip = errors.New("netsim: fault set kills every terminal of a chip")

// DeadChipError reports which chip a fault set fully disconnects from the
// terminal interface. Wraps ErrDeadChip.
type DeadChipError struct {
	Chip int32
}

// Error implements error.
func (e *DeadChipError) Error() string {
	return fmt.Sprintf("netsim: fault set disables every terminal router of chip %d", e.Chip)
}

// Unwrap makes errors.Is(err, ErrDeadChip) work.
func (e *DeadChipError) Unwrap() error { return ErrDeadChip }

// ApplyFaults permanently disables the given routers and links, modelling
// defective dies and broken cables on a freshly built network. It must be
// called before the first Step (the topology layer applies faults at build
// time). Disabling a router also disables every link incident to it.
//
// Disabled components are invisible to both cycle engines: a disabled
// router is removed from the injector walk and (never receiving traffic)
// never enters a shard's active bitmap; a disabled link is removed from the
// reference engine's drain lists and, carrying no flits or credits, is
// never parked on the active-set timing wheel. A chip whose terminal
// routers are all disabled yields a DeadChipError; a chip that keeps at
// least one alive terminal stays addressable, with its remaining nodes
// re-indexed. Reset preserves fault state.
//
// ApplyFaults only severs connectivity — it does not reroute. Install a
// fault-aware RouteFunc (see the routing package) or packets will be
// forwarded onto dead components.
func (n *Network) ApplyFaults(routers []NodeID, links []int32) error {
	dead, err := n.applyFaults(routers, links)
	if err != nil {
		return err
	}
	if len(dead) > 0 {
		return &DeadChipError{Chip: dead[0]}
	}
	return nil
}

// ApplyFaultsTolerant is ApplyFaults for degraded-operation studies: chips
// whose terminal routers are all disabled are dropped from the workload
// (their ChipNodes entry empties) instead of failing, and their IDs are
// returned. Traffic generators must not target a dead chip — wrap patterns
// with traffic.FilterDead (the core layer does this automatically).
func (n *Network) ApplyFaultsTolerant(routers []NodeID, links []int32) (deadChips []int32, err error) {
	return n.applyFaults(routers, links)
}

func (n *Network) applyFaults(routers []NodeID, links []int32) (deadChips []int32, err error) {
	if n.Cycle != 0 {
		return nil, fmt.Errorf("netsim: ApplyFaults after %d simulated cycles; faults are build-time only", n.Cycle)
	}
	// Build-time faults change connectivity wholesale; discard any cached
	// route traces up front (the mutation below is not transactional).
	n.flowInvalidateAll()
	for _, id := range routers {
		if id < 0 || int(id) >= len(n.Routers) {
			return nil, fmt.Errorf("netsim: fault router %d out of range [0,%d)", id, len(n.Routers))
		}
		n.Routers[id].Disabled = true
	}
	for _, id := range links {
		if id < 0 || int(id) >= len(n.Links) {
			return nil, fmt.Errorf("netsim: fault link %d out of range [0,%d)", id, len(n.Links))
		}
		n.Links[id].Disabled = true
	}
	// A dead router takes all its channels with it.
	for i := range n.Routers {
		r := &n.Routers[i]
		if !r.Disabled {
			continue
		}
		for p := range r.In {
			if l := r.In[p].Link; l != nil {
				l.Disabled = true
			}
		}
		for p := range r.Out {
			if l := r.Out[p].Link; l != nil {
				l.Disabled = true
			}
		}
	}

	// Rebuild the chip→node tables without disabled terminals. Local
	// indices must keep matching slice positions for DstSameIndex.
	for c := range n.ChipNodes {
		nodes := n.ChipNodes[c][:0]
		for _, id := range n.ChipNodes[c] {
			if !n.Routers[id].Disabled {
				nodes = append(nodes, id)
			}
		}
		if len(nodes) == 0 {
			deadChips = append(deadChips, int32(c))
			n.ChipNodes[c] = nil
			continue
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		n.ChipNodes[c] = nodes
		for idx, id := range nodes {
			n.Routers[id].Local = int32(idx)
		}
	}

	// Rebuild the per-shard injector walk (shared by both engines) and the
	// reference engine's drain lists.
	for s := range n.injectors {
		alive := n.injectors[s][:0]
		for _, id := range n.injectors[s] {
			if !n.Routers[id].Disabled {
				alive = append(alive, id)
			}
		}
		n.injectors[s] = alive
	}
	for s := range n.dataLinks {
		alive := n.dataLinks[s][:0]
		for _, l := range n.dataLinks[s] {
			if !l.Disabled {
				alive = append(alive, l)
			}
		}
		n.dataLinks[s] = alive
	}
	for s := range n.creditLinks {
		alive := n.creditLinks[s][:0]
		for _, l := range n.creditLinks[s] {
			if !l.Disabled {
				alive = append(alive, l)
			}
		}
		n.creditLinks[s] = alive
	}
	return deadChips, nil
}

// ChipAlive reports whether chip c still has a terminal router.
func (n *Network) ChipAlive(c int32) bool {
	return c >= 0 && int(c) < len(n.ChipNodes) && len(n.ChipNodes[c]) > 0
}

// DeadChips lists the chips with no surviving terminal router.
func (n *Network) DeadChips() []int32 {
	var dead []int32
	for c := range n.ChipNodes {
		if len(n.ChipNodes[c]) == 0 {
			dead = append(dead, int32(c))
		}
	}
	return dead
}

// Faulted reports whether any router or link of the network is disabled.
func (n *Network) Faulted() bool {
	for i := range n.Routers {
		if n.Routers[i].Disabled {
			return true
		}
	}
	for _, l := range n.Links {
		if l.Disabled {
			return true
		}
	}
	return false
}

// DisabledCounts returns the number of disabled routers and links.
func (n *Network) DisabledCounts() (routers, links int) {
	for i := range n.Routers {
		if n.Routers[i].Disabled {
			routers++
		}
	}
	for _, l := range n.Links {
		if l.Disabled {
			links++
		}
	}
	return
}
