package netsim

import (
	"errors"
	"testing"

	"sldf/internal/engine"
)

// buildFaultRing constructs a ring of n core routers (each its own chip) with a
// clockwise-only routing function. There is no path diversity: tests pick
// traffic whose clockwise arcs avoid the faulted segment.
func buildFaultRing(t testing.TB, n int, opts NetworkOptions) *Network {
	t.Helper()
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddRouter(KindCore)
		b.Router(ids[i]).X = int16(i)
		b.AddTerminal(ids[i], int32(i), 0)
	}
	for i := 0; i < n; i++ {
		b.Connect(ids[i], ids[(i+1)%n], spec) // Out[1] = clockwise
	}
	net, err := b.Finalize(opts)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if p.DstNode == r.ID {
			return int(r.EjectOut), 0
		}
		return 1, 0
	})
	return net
}

func TestApplyFaultsDisablesIncidentLinks(t *testing.T) {
	net := buildTwoNodeChip(t, NetworkOptions{Seed: 1, Workers: 1})
	defer net.Close()
	if net.Faulted() {
		t.Fatal("fresh network reports faults")
	}
	// Router 1 is one of chip 0's two terminals: disabling it must take its
	// two links (1→hub, hub→1) with it while chip 0 stays alive.
	if err := net.ApplyFaults([]NodeID{1}, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Routers[1].Disabled {
		t.Fatal("router 1 not disabled")
	}
	for _, l := range net.Links {
		incident := l.Src == 1 || l.Dst == 1
		if l.Disabled != incident {
			t.Fatalf("link %d→%d disabled=%v, want %v", l.Src, l.Dst, l.Disabled, incident)
		}
	}
	r, l := net.DisabledCounts()
	if r != 1 || l != 2 {
		t.Fatalf("DisabledCounts = (%d, %d), want (1, 2)", r, l)
	}
}

func TestApplyFaultsDeadChip(t *testing.T) {
	net := buildFaultRing(t, 4, NetworkOptions{Seed: 1, Workers: 1})
	defer net.Close()
	err := net.ApplyFaults([]NodeID{1}, nil)
	if err == nil {
		t.Fatal("disabling chip 1's only terminal must fail")
	}
	if !errors.Is(err, ErrDeadChip) {
		t.Fatalf("error %v does not wrap ErrDeadChip", err)
	}
	var dce *DeadChipError
	if !errors.As(err, &dce) || dce.Chip != 1 {
		t.Fatalf("error %v is not DeadChipError{Chip: 1}", err)
	}
}

func TestApplyFaultsValidation(t *testing.T) {
	net := buildFaultRing(t, 4, NetworkOptions{Seed: 1, Workers: 1})
	defer net.Close()
	if err := net.ApplyFaults([]NodeID{99}, nil); err == nil {
		t.Fatal("out-of-range router accepted")
	}
	if err := net.ApplyFaults(nil, []int32{-1}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	net.Step()
	if err := net.ApplyFaults(nil, nil); err == nil {
		t.Fatal("ApplyFaults after Step accepted")
	}
}

// buildTwoNodeChip constructs chip 0 with two terminal routers (0, 1) and
// chip 1 with one terminal router (2), a star around router 2.
func buildTwoNodeChip(t testing.TB, opts NetworkOptions) *Network {
	t.Helper()
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	b := NewBuilder()
	a := b.AddRouter(KindCore)
	b.AddTerminal(a, 0, 0)
	c := b.AddRouter(KindCore)
	b.AddTerminal(c, 0, 1)
	hub := b.AddRouter(KindCore)
	b.AddTerminal(hub, 1, 0)
	b.ConnectBidi(a, hub, spec)
	b.ConnectBidi(c, hub, spec)
	net, err := b.Finalize(opts)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if p.DstNode == r.ID {
			return int(r.EjectOut), 0
		}
		if r.ID != hub {
			return 1, 0 // only one real out port: to the hub
		}
		if p.DstNode == a {
			return 1, 0
		}
		return 2, 0
	})
	return net
}

// TestDisabledTerminalLeavesChipAddressable locks the terminal-side fault
// semantics: a disabled terminal router is dropped from the injector walk
// and from its chip's node table (remaining nodes re-indexed), so traffic
// to the chip lands on the surviving terminal under both engines.
func TestDisabledTerminalLeavesChipAddressable(t *testing.T) {
	for _, kind := range []EngineKind{EngineReference, EngineActiveSet} {
		net := buildTwoNodeChip(t, NetworkOptions{Seed: 7, Workers: 1, Engine: kind})
		if err := net.ApplyFaults([]NodeID{1}, nil); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := len(net.ChipNodes[0]); got != 1 || net.ChipNodes[0][0] != 0 {
			t.Fatalf("%v: ChipNodes[0] = %v, want [0]", kind, net.ChipNodes[0])
		}
		if net.Routers[0].Local != 0 {
			t.Fatalf("%v: surviving node Local = %d, want 0", kind, net.Routers[0].Local)
		}
		// Every alive terminal sends one packet to the other chip; the
		// disabled terminal must stay silent.
		gen := GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if now == 0 {
				return 1 - src
			}
			return -1
		})
		net.SetTraffic(gen, 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(1); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if _, err := net.Drain(200); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := net.Snapshot()
		if st.InjectedPkts != 2 || st.DeliveredPkts != 2 {
			t.Fatalf("%v: injected/delivered = %d/%d, want 2/2 (disabled terminal must not inject)",
				kind, st.InjectedPkts, st.DeliveredPkts)
		}
		net.Close()
	}
}

// TestFaultedRunBothEngines runs a ring with a disabled transit router and
// traffic confined to alive arcs, checking bitwise-equal stats between the
// reference and active-set engines and that faults survive Reset.
func TestFaultedRunBothEngines(t *testing.T) {
	measure := func(kind EngineKind, reset bool) Stats {
		net := buildFaultRing(t, 8, NetworkOptions{Seed: 3, Workers: 1, Engine: kind})
		defer net.Close()
		// Fail only link 5→6; the one-step clockwise traffic below (src 0..3)
		// keeps to arcs 0→1 ... 3→4 and never touches it.
		if err := net.ApplyFaults(nil, []int32{5}); err != nil {
			t.Fatal(err)
		}
		gen := GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if now < 5 && src < 4 {
				return src + 1 // clockwise one step, never crossing link 5→6
			}
			return -1
		})
		run := func() Stats {
			net.SetTraffic(gen, 4, DstSameIndex)
			net.StartMeasurement()
			if err := net.Run(5); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Drain(300); err != nil {
				t.Fatal(err)
			}
			net.StopMeasurement()
			return net.Snapshot()
		}
		st := run()
		if reset {
			net.Reset()
			if !net.Links[5].Disabled {
				t.Fatal("Reset cleared the fault")
			}
			st = run()
		}
		return st
	}
	ref := measure(EngineReference, false)
	act := measure(EngineActiveSet, false)
	actReset := measure(EngineActiveSet, true)
	if ref != act {
		t.Fatalf("stats diverged:\nreference: %+v\nactive:    %+v", ref, act)
	}
	if ref != actReset {
		t.Fatalf("stats diverged after reset:\nreference: %+v\nreset:     %+v", ref, actReset)
	}
	if ref.DeliveredPkts == 0 {
		t.Fatal("no traffic delivered; comparison vacuous")
	}
}
