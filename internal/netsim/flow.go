package netsim

// The flow-level analytical engine (EngineFlow): instead of stepping
// packets cycle by cycle, it solves the steady-state per-link load induced
// by a sampled traffic matrix over the installed routing function, then
// synthesizes the same Stats surface the cycle engines produce — mean and
// quantile latency via an M/D/1-style queueing approximation, accepted
// throughput from the waterfilled loads, and per-link window flits so
// LinkUtilization works unchanged. It is approximate by design (validated
// against the cycle engines with pinned error bounds, see
// internal/core/flowvalidate_test.go) and exists for campaign points far
// beyond the cycle engines' scale ceiling.
//
// The engine reuses the network exactly as built: routes are traced by
// running the installed RouteFunc over a phantom packet hop by hop, so
// fault-aware routing, adaptive pre-allocate hooks and churn rewiring all
// apply without flow-specific code. Armed fault timelines are honored by
// segmenting the measurement window at event cycles and re-solving per
// segment (SolveFlow), which is what keeps churn campaigns working
// unchanged under EngineFlow.
//
// The solve is amortized and parallel:
//
//   - Traced routes live in a network-owned, epoch-versioned cache
//     (tracecache.go) that survives Reset, so a build-once/measure-many
//     sweep traces each (source node, destination node) pair once. SetRoute
//     and build-time faults discard everything; churn batches evict only
//     the entries whose paths crossed a toggled component.
//   - Route tracing fans out across a solver-owned worker pool: phantom
//     traces draw their randomized decisions from per-pair streams
//     (Packet.TraceRNG), making each trace a pure function of network
//     state, safe to run concurrently and identical for any worker count.
//   - The waterfill load pass runs element-major over a flow-incidence
//     transpose: each element's load is a fixed-order reduction over its
//     incident flows, so partitioning elements (or flows, for the throttle
//     pass) across workers cannot change a single bit of the result.
//
// Serial and parallel solves are therefore bitwise identical; the knobs in
// FlowOptions are pure execution controls — except SeedThrottles, which
// warm-starts the waterfill from the previous solution and is documented
// approximate.

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"sldf/internal/engine"
	"sldf/internal/profiling"
)

// FlowDemand is one steady-state flow of the sampled traffic matrix: chip
// Src offers Rate flits/cycle toward chip Dst. The solver spreads a chip's
// demands across its injection nodes the same way DstSameIndex does.
type FlowDemand struct {
	Src, Dst int32
	Rate     float64
}

// FlowVolume is one finite transfer for collective-step makespans: chip
// Src sends Flits flits to chip Dst, split evenly across Src's nodes.
type FlowVolume struct {
	Src, Dst int32
	Flits    int64
}

// FlowOptions configures one SolveFlow measurement window.
type FlowOptions struct {
	// Demands returns the sampled traffic matrix. It is re-invoked after
	// every applied churn segment so the caller can re-filter dead chips
	// (deterministic sampling makes repeated calls identical otherwise).
	Demands func() []FlowDemand
	// PacketSize is the packet size in flits (latency includes the
	// Size-cycle ejection serialization, exactly like the cycle engines).
	PacketSize int32
	// Warmup cycles are modeled but not measured; Measure cycles form the
	// reported window, mirroring the cycle engines' Run(Warmup) /
	// StartMeasurement / Run(Measure) sequence.
	Warmup, Measure int64

	// Workers, when positive, sets the solver's parallelism (equivalent to
	// SetFlowWorkers). Statistics are bit-identical for any worker count.
	Workers int
	// Cold discards the route-trace cache before solving, forcing a full
	// re-trace. Results are identical with or without it; the knob exists
	// for benchmarking and equivalence harnesses.
	Cold bool
	// SeedThrottles warm-starts the waterfill from the previous solve's
	// throttles when the flow structure is unchanged (adjacent rate-grid
	// points). APPROXIMATE: the monotone fixpoint can converge to a
	// slightly different operating point than a cold start; keep it off
	// when bit-reproducibility across invocation orders matters.
	SeedThrottles bool
}

// FlowStats reports cumulative flow-solver diagnostics for a network:
// phase wall times and cache effectiveness counters. Read with
// Network.FlowSolverStats; surfaced by slsim -flowstats.
type FlowStats struct {
	Solves            int64 // SolveFlow calls
	Segments          int64 // churn segments solved (>= Solves)
	Traces            int64 // fresh route traces performed
	CacheHits         int64 // flows served from the route-trace cache
	Evicted           int64 // entries selectively evicted by churn batches
	FullInvalidations int64 // cache-wide discards (SetRoute, faults, Cold)
	WaterfillIters    int64 // waterfill rounds run
	TransposeBuilds   int64 // flow-incidence transpose rebuilds

	TraceWall     time.Duration // wall time tracing routes
	WaterfillWall time.Duration // wall time in the throttle fixpoint
	HistWall      time.Duration // wall time synthesizing stats/histograms
}

// ErrFlowEngine wraps flow-solver usage errors.
var ErrFlowEngine = errors.New("netsim: flow engine")

// flowMaxHops bounds route tracing; any SLDF/Dragonfly/mesh route is far
// shorter, so hitting it means the routing function is cycling.
const flowMaxHops = 256

// flowHistScale is the histogram super-sampling factor: per-flow delivered
// packet counts can be fractional at quick windows, so bucket weights are
// scaled up to keep sub-packet flows from rounding out of the quantiles.
const flowHistScale = 64

// flowWaterfillIters bounds the throttle fixpoint iteration; the monotone
// scheme is usually converged after a handful of rounds.
const flowWaterfillIters = 24

// flowRhoCap keeps the M/D/1 waiting-time term finite at saturation.
const flowRhoCap = 0.98

// flowTraceSeed derives the per-pair trace RNG streams from the network
// seed, keeping them disjoint from the per-router and demand streams.
const flowTraceSeed = 0x7C0FFEE5EEDF10A7

// pprof phase labels (see internal/profiling); free unless a CPU profile
// is being captured.
var (
	flowPhaseTrace     = profiling.NewPhase("flow-trace")
	flowPhaseWaterfill = profiling.NewPhase("flow-waterfill")
	flowPhaseHist      = profiling.NewPhase("flow-histogram")
)

// flowFlow is one node-level flow of the current solve: its offered rate,
// solved throttle, and the route-cache entry holding its traced path.
// entry < 0 marks a demand refused before tracing (dead or out-of-range
// endpoint).
type flowFlow struct {
	rate  float64 // offered flits/cycle on this node-level flow
	x     float64 // throttle after waterfilling (delivered = rate*x)
	entry int32
}

// traceResult is one finished route trace, with its path in the tracing
// worker's scratch buffer until the deterministic merge copies it into the
// cache arena.
type traceResult struct {
	base   int64
	off, n int32
	wrk    int32
	ok     bool
	hops   [NumHopClasses]uint16
}

// flowSolver is the network-owned solver state: the route-trace cache plus
// every per-solve buffer, retained across solves (and Reset) so steady-state
// campaign points allocate nothing. One load/capacity slot exists per link
// plus one per router — the router slots model the 1-flit/cycle ejection
// port, which is what saturates single-node chips long before their links
// do; cached path elements >= len(Links) are ejection elements.
type flowSolver struct {
	cache *traceCache

	flows      []flowFlow
	perChipSeq []int
	load       []float64
	cap        []float64
	ser        []float64 // per-element serialization cycles (queueing service time)
	capSize    int32     // packet size cap/ser currently reflect (0 = stale)

	// Flow-incidence transpose (CSR): for element el, elemFlow[elemOff[el]:
	// elemOff[el+1]] lists the incident flow indices in flow order. shape
	// hashes the flow structure (and cache generation) the transpose was
	// built for, so warm sweep points skip the rebuild.
	elemOff  []int32
	elemCur  []int32
	elemFlow []int32
	shape    uint64

	// Previous solution for opt-in throttle seeding.
	prevX, prevRate []float64
	prevShape       uint64

	// Pending-trace worklist and per-worker scratch.
	pending   []int32
	results   []traceResult
	traceBufs [][]int32
	traceNext atomic.Int64
	traceSize int32

	workers int
	pool    *engine.Pool

	// Waterfill active sets: the monotone scheme only ever lowers
	// throttles, so loads only ever drop and the over-capacity element set
	// only shrinks — each round touches the congested neighborhood, not
	// the whole network. Stamps dedupe the per-round worklists; stamp
	// values are never reused (see waterfill's wrap guard).
	overElems []int32 // elements still loaded past capacity
	cand      []int32 // flows crossing an over-capacity element this round
	dirty     []int32 // elements whose incident flows were rescaled
	flowStamp []int32
	elemStamp []int32
	stamp     int32

	// Persistent phase closures, built once so solves allocate nothing.
	traceFn, loadFn, scaleFn, loadListFn func(int)

	starts []int64
	accum  flowAccum

	stats FlowStats
}

// flowSolver returns the network's solver, creating it on first use. The
// solver (and its route-trace cache) lives as long as the network and
// deliberately survives Reset: a build-once/measure-many sweep re-traces
// nothing between points.
func (n *Network) flowSolver() *flowSolver {
	if n.flow != nil {
		return n.flow
	}
	elems := len(n.Links) + len(n.Routers)
	fl := &flowSolver{
		cache:      newTraceCache(),
		perChipSeq: make([]int, len(n.ChipNodes)),
		load:       make([]float64, elems),
		cap:        make([]float64, elems),
		ser:        make([]float64, elems),
		elemOff:    make([]int32, elems+1),
		elemCur:    make([]int32, elems),
		elemStamp:  make([]int32, elems),
		traceBufs:  make([][]int32, 1),
		workers:    1,
	}
	//sldf:hotpath
	fl.traceFn = func(w int) {
		buf := fl.traceBufs[w][:0]
		for {
			i := int(fl.traceNext.Add(1)) - 1
			if i >= len(fl.pending) {
				break
			}
			e := &fl.cache.entries[fl.pending[i]]
			src, dst := pairFromKey(e.key)
			nb, res := n.traceOne(buf, src, dst, fl.traceSize)
			res.wrk = int32(w)
			fl.results[i] = res
			buf = nb
		}
		fl.traceBufs[w] = buf
	}
	//sldf:hotpath
	fl.loadFn = func(w int) {
		lo, hi := engine.ShardBounds(len(fl.load), fl.workers, w)
		for el := lo; el < hi; el++ {
			s := 0.0
			for k := fl.elemOff[el]; k < fl.elemOff[el+1]; k++ {
				f := &fl.flows[fl.elemFlow[k]]
				s += f.rate * f.x
			}
			fl.load[el] = s
		}
	}
	//sldf:hotpath
	fl.scaleFn = func(w int) {
		lo, hi := engine.ShardBounds(len(fl.cand), fl.workers, w)
		for i := lo; i < hi; i++ {
			f := &fl.flows[fl.cand[i]]
			e := &fl.cache.entries[f.entry]
			scale := 1.0
			for _, el := range fl.cache.path[e.off : e.off+e.n] {
				if fl.load[el] > fl.cap[el] {
					if s := fl.cap[el] / fl.load[el]; s < scale {
						scale = s
					}
				}
			}
			if scale < 1 {
				f.x *= scale
			}
		}
	}
	//sldf:hotpath
	fl.loadListFn = func(w int) {
		lo, hi := engine.ShardBounds(len(fl.dirty), fl.workers, w)
		for i := lo; i < hi; i++ {
			el := fl.dirty[i]
			s := 0.0
			for k := fl.elemOff[el]; k < fl.elemOff[el+1]; k++ {
				f := &fl.flows[fl.elemFlow[k]]
				s += f.rate * f.x
			}
			fl.load[el] = s
		}
	}
	n.flow = fl
	return fl
}

// SetFlowWorkers sets the flow solver's parallelism (1 = serial; <=0 is
// clamped to 1). Worker count is a pure execution knob: statistics are
// bit-identical for any setting. The solver owns its pool — campaigns run
// the cycle engines' pool at Workers:1 and parallelize across points, so
// the flow solver parallelizes within a point independently.
func (n *Network) SetFlowWorkers(w int) {
	fl := n.flowSolver()
	if w <= 0 {
		w = 1
	}
	if w == fl.workers {
		return
	}
	if fl.pool != nil {
		fl.pool.Close()
		fl.pool = nil
	}
	fl.workers = w
	if w > 1 {
		fl.pool = engine.NewPool(w)
	}
	for len(fl.traceBufs) < w {
		fl.traceBufs = append(fl.traceBufs, nil)
	}
}

// FlowSolverStats returns the cumulative solver diagnostics (zero value if
// the flow solver was never used on this network).
func (n *Network) FlowSolverStats() FlowStats {
	if n.flow == nil {
		return FlowStats{}
	}
	return n.flow.stats
}

// flowInvalidateAll discards every cached route trace (no-op when the flow
// solver was never used).
func (n *Network) flowInvalidateAll() {
	if n.flow == nil {
		return
	}
	n.flow.cache.invalidateAll()
	n.flow.stats.FullInvalidations++
}

// flowInvalidateChurn evicts the cached traces a churn batch can have
// affected (see traceCache.invalidateFor).
func (n *Network) flowInvalidateChurn(routers []NodeID, links []int32) {
	if n.flow == nil {
		return
	}
	n.flow.stats.Evicted += int64(n.flow.cache.invalidateFor(routers, links, len(n.Routers), len(n.Links)))
}

// run executes fn(part) for every partition, on the solver pool when
// parallel. Partition layout never affects results (fixed-order reductions
// per element/flow), so this is purely an execution detail.
func (fl *flowSolver) run(fn func(int)) {
	if fl.pool == nil || fl.workers <= 1 {
		fn(0)
		return
	}
	fl.pool.Run(fl.workers, fn)
}

// traceOne runs the installed RouteFunc over a phantom packet from srcNode
// to dstNode, appending the links crossed (and the terminal ejection
// element) to buf. Randomized routing decisions draw from a stream derived
// from the (srcNode, dstNode) pair, so the trace is a pure function of the
// network state — independent of trace order and safe to run concurrently.
// res.ok is false when the route dead-ends, crosses a disabled component,
// or exceeds flowMaxHops; the caller accounts such flows as refused.
func (n *Network) traceOne(buf []int32, srcNode, dstNode NodeID, size int32) ([]int32, traceResult) {
	rng := engine.NewRNGStream(n.seed^flowTraceSeed, pairKey(srcNode, dstNode))
	p := Packet{
		SrcChip: n.Routers[srcNode].Chip, DstChip: n.Routers[dstNode].Chip,
		SrcNode: srcNode, DstNode: dstNode,
		Size: size, Aux: -1, Aux2: -1,
		TraceRNG: &rng,
	}
	var res traceResult
	res.off = int32(len(buf))
	ejBase := int32(len(n.Links))
	r := &n.Routers[srcNode]
	for hop := 0; hop < flowMaxHops; hop++ {
		out, vc := n.route(n, r, &p)
		if out < 0 || out >= len(r.Out) {
			return buf[:res.off], res
		}
		l := r.Out[out].Link
		if l == nil {
			// Ejection: the terminal serializes the whole packet at one
			// flit per cycle, exactly like Router.allocate.
			buf = append(buf, ejBase+int32(r.ID))
			res.n++
			res.base += int64(size)
			res.hops[HopEject]++
			res.ok = true
			return buf, res
		}
		if l.Disabled || n.Routers[l.Dst].Disabled {
			return buf[:res.off], res
		}
		p.VC = vc
		p.Hops[l.Class]++
		res.hops[l.Class]++
		buf = append(buf, l.ID)
		res.n++
		// Wire + the one-cycle handoff into the next router's input buffer
		// (the cycle engines deliver at now + Delay + 1).
		res.base += int64(l.Delay) + 1
		r = &n.Routers[l.Dst]
	}
	return buf[:res.off], res
}

// tracePending traces every reserved cache entry, fanning the independent
// phantom traces across the solver pool, then merges the results into the
// cache arena serially in worklist order — cache contents are identical
// for any worker count.
func (n *Network) tracePending(fl *flowSolver, size int32) {
	if len(fl.pending) == 0 {
		return
	}
	t0 := time.Now() //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
	flowPhaseTrace.Enter()
	if cap(fl.results) < len(fl.pending) {
		fl.results = make([]traceResult, len(fl.pending))
	}
	fl.results = fl.results[:len(fl.pending)]
	fl.traceSize = size
	fl.traceNext.Store(0)
	fl.run(fl.traceFn)
	c := fl.cache
	for i, ei := range fl.pending {
		res := &fl.results[i]
		e := &c.entries[ei]
		e.off = int32(len(c.path))
		e.n = res.n
		e.base = res.base
		e.hops = res.hops
		e.ok = res.ok
		e.traced = true
		c.path = append(c.path, fl.traceBufs[res.wrk][res.off:res.off+res.n]...)
	}
	c.gen++
	fl.stats.Traces += int64(len(fl.pending))
	fl.pending = fl.pending[:0]
	profiling.ExitPhase()
	fl.stats.TraceWall += time.Since(t0) //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
}

// flowBuildFlows expands chip-level demands into node-level flows, serving
// traced paths from the route cache and scheduling misses for tracing.
// Demands on a chip are spread round-robin across its injection nodes
// (matching DstSameIndex's node pairing); demands whose endpoints are dead
// or whose route fails are returned as refused flits/cycle, accumulated in
// demand order.
func (n *Network) flowBuildFlows(fl *flowSolver, demands []FlowDemand, size int32) (refusedRate float64) {
	fl.flows = fl.flows[:0]
	for i := range fl.perChipSeq {
		fl.perChipSeq[i] = 0
	}
	fl.pending = fl.pending[:0]
	for _, d := range demands {
		if d.Rate <= 0 {
			continue
		}
		entry := int32(-1)
		if int(d.Src) < len(n.ChipNodes) && int(d.Dst) < len(n.ChipNodes) {
			srcNodes := n.ChipNodes[d.Src]
			dstNodes := n.ChipNodes[d.Dst]
			if len(srcNodes) > 0 && len(dstNodes) > 0 {
				idx := fl.perChipSeq[d.Src] % len(srcNodes)
				fl.perChipSeq[d.Src]++
				ei, need := fl.cache.lookupOrReserve(pairKey(srcNodes[idx], dstNodes[idx%len(dstNodes)]))
				if need {
					fl.pending = append(fl.pending, ei)
				} else if fl.cache.entries[ei].traced {
					fl.stats.CacheHits++
				}
				entry = ei
			}
		}
		fl.flows = append(fl.flows, flowFlow{rate: d.Rate, x: 1, entry: entry})
	}
	n.tracePending(fl, size)
	// Drop refused flows (dead endpoints, failed traces) in demand order.
	w := 0
	for i := range fl.flows {
		f := fl.flows[i]
		if f.entry < 0 || !fl.cache.entries[f.entry].ok {
			refusedRate += f.rate
			continue
		}
		fl.flows[w] = f
		w++
	}
	fl.flows = fl.flows[:w]
	return refusedRate
}

// flowShape hashes the solve's flow structure: the element space, the
// cache generation (any re-trace or eviction changes it, so an unchanged
// hash guarantees unchanged paths) and the per-flow cache entries. Equal
// shapes mean the incidence transpose — and, for throttle seeding, the
// flow indexing — carry over from the previous solve.
func (fl *flowSolver) flowShape() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	h = (h ^ uint64(len(fl.load))) * prime64
	h = (h ^ fl.cache.gen) * prime64
	h = (h ^ uint64(len(fl.flows))) * prime64
	for i := range fl.flows {
		h = (h ^ uint64(uint32(fl.flows[i].entry))) * prime64
	}
	return h
}

// buildTranspose builds the element->flows CSR used by the waterfill load
// pass. Element-major accumulation makes every element's load a fixed-order
// reduction over its incident flows — which is what keeps serial and
// parallel waterfills bit-identical.
func (fl *flowSolver) buildTranspose() {
	elems := len(fl.load)
	off := fl.elemOff
	for i := range off {
		off[i] = 0
	}
	c := fl.cache
	total := 0
	for i := range fl.flows {
		e := &c.entries[fl.flows[i].entry]
		total += int(e.n)
		for _, el := range c.path[e.off : e.off+e.n] {
			off[el+1]++
		}
	}
	for i := 1; i <= elems; i++ {
		off[i] += off[i-1]
	}
	if cap(fl.elemFlow) < total {
		fl.elemFlow = make([]int32, total)
	}
	fl.elemFlow = fl.elemFlow[:total]
	copy(fl.elemCur, off[:elems])
	for i := range fl.flows {
		e := &c.entries[fl.flows[i].entry]
		for _, el := range c.path[e.off : e.off+e.n] {
			fl.elemFlow[fl.elemCur[el]] = int32(i)
			fl.elemCur[el]++
		}
	}
	fl.stats.TransposeBuilds++
}

// setCapacities fills per-element capacities and service times: links carry
// Width flits/cycle and serialize a packet in ceil(size/Width) cycles;
// ejection ports carry one flit/cycle and serialize in size cycles.
func (fl *flowSolver) setCapacities(n *Network, size int32) {
	eb := len(n.Links)
	for i := range n.Links {
		l := &n.Links[i]
		fl.cap[i] = float64(l.Width)
		fl.ser[i] = float64((size + l.Width - 1) / l.Width)
	}
	for i := range n.Routers {
		fl.cap[eb+i] = 1
		fl.ser[eb+i] = float64(size)
	}
	fl.capSize = size
}

// waterfill runs the monotone throttle fixpoint: every flow crossing an
// over-capacity element is scaled by the worst capacity/load ratio along
// its path until no element is loaded past capacity. The result is a
// feasible operating point that matches the offered load below saturation
// and pins the bottleneck elements at capacity above it.
//
// The fixpoint is monotone — throttles only ever drop, so loads only ever
// drop and an element that reaches capacity never leaves it again. That
// lets each round work active sets instead of the whole network, with
// bit-identical results: a flow touching no over-capacity element would
// scale by exactly 1, and an element none of whose incident flows changed
// would recompute its fixed-order load reduction to exactly the stored
// value. All passes partition work across the solver pool; neither
// partitioning affects the result bits.
//
//sldf:hotpath
func (fl *flowSolver) waterfill() {
	fl.run(fl.loadFn)
	if cap(fl.flowStamp) < len(fl.flows) {
		fl.flowStamp = make([]int32, len(fl.flows)) //sldf:alloc-ok one-time stamp-array growth; steady state reuses capacity
	}
	fl.flowStamp = fl.flowStamp[:len(fl.flows)]
	if fl.stamp > 1<<30 {
		// Stamp values are never reused, so a (practically unreachable)
		// wraparound clears the dedupe arrays instead of risking collision.
		fl.stamp = 0
		for i := range fl.flowStamp {
			fl.flowStamp[i] = 0
		}
		for i := range fl.elemStamp {
			fl.elemStamp[i] = 0
		}
	}
	fl.overElems = fl.overElems[:0]
	for el := range fl.load {
		if fl.load[el] > fl.cap[el] {
			fl.overElems = append(fl.overElems, int32(el))
		}
	}
	for iter := 0; len(fl.overElems) > 0 && iter < flowWaterfillIters; iter++ {
		fl.stats.WaterfillIters++
		// Candidate flows: exactly those crossing an over-capacity element
		// (every one of them has a worst ratio < 1 and will throttle).
		fl.stamp++
		fl.cand = fl.cand[:0]
		for _, el := range fl.overElems {
			for k := fl.elemOff[el]; k < fl.elemOff[el+1]; k++ {
				fi := fl.elemFlow[k]
				if fl.flowStamp[fi] != fl.stamp {
					fl.flowStamp[fi] = fl.stamp
					fl.cand = append(fl.cand, fi)
				}
			}
		}
		fl.run(fl.scaleFn)
		// Dirty elements: those sharing a flow with the throttled set; each
		// recomputes its full fixed-order reduction, so the refreshed loads
		// are bit-identical to a whole-network load pass.
		fl.stamp++
		fl.dirty = fl.dirty[:0]
		for _, fi := range fl.cand {
			e := &fl.cache.entries[fl.flows[fi].entry]
			for _, el := range fl.cache.path[e.off : e.off+e.n] {
				if fl.elemStamp[el] != fl.stamp {
					fl.elemStamp[el] = fl.stamp
					fl.dirty = append(fl.dirty, el)
				}
			}
		}
		fl.run(fl.loadListFn)
		// Monotonicity: no element outside the set can have crossed
		// capacity, so filtering the old set is the full rescan.
		w := 0
		for _, el := range fl.overElems {
			if fl.load[el] > fl.cap[el] {
				fl.overElems[w] = el
				w++
			}
		}
		fl.overElems = fl.overElems[:w]
	}
}

// latency returns flow f's modeled end-to-end latency: the uncontended
// base plus an M/D/1 waiting term per traversed element at its solved
// utilization, capped near saturation so the estimate stays finite.
//
//sldf:hotpath
func (fl *flowSolver) latency(f *flowFlow) float64 {
	e := &fl.cache.entries[f.entry]
	lat := float64(e.base)
	for _, el := range fl.cache.path[e.off : e.off+e.n] {
		rho := fl.load[el] / fl.cap[el]
		if rho > flowRhoCap {
			rho = flowRhoCap
		}
		if rho > 0 {
			lat += rho / (2 * (1 - rho)) * fl.ser[el]
		}
	}
	return lat
}

// flowAccum accumulates window statistics across churn segments in float
// precision; the totals are rounded into the shard counters once.
type flowAccum struct {
	deliveredFlits float64
	refusedPkts    float64
	netLatSum      float64
	hops           [NumHopClasses]float64
	linkFlits      []float64
	hist           LatencyHist
}

// reset clears the accumulator for a new solve, retaining the per-link
// buffer.
func (a *flowAccum) reset(links int) {
	if cap(a.linkFlits) < links {
		a.linkFlits = make([]float64, links)
	}
	a.linkFlits = a.linkFlits[:links]
	for i := range a.linkFlits {
		a.linkFlits[i] = 0
	}
	a.deliveredFlits, a.refusedPkts, a.netLatSum = 0, 0, 0
	a.hops = [NumHopClasses]float64{}
	a.hist = LatencyHist{}
}

// accumulate folds one solved segment of cyc cycles into the totals.
func (a *flowAccum) accumulate(fl *flowSolver, n *Network, size int32, refusedRate float64, cyc int64) {
	c := float64(cyc)
	a.refusedPkts += refusedRate * c / float64(size)
	for i := range a.linkFlits {
		a.linkFlits[i] += fl.load[i] * c
	}
	for i := range fl.flows {
		f := &fl.flows[i]
		delivered := f.rate * f.x * c
		if delivered <= 0 {
			continue
		}
		e := &fl.cache.entries[f.entry]
		a.deliveredFlits += delivered
		pkts := delivered / float64(size)
		lat := fl.latency(f)
		a.netLatSum += pkts * lat
		for h := 0; h < int(NumHopClasses); h++ {
			a.hops[h] += pkts * float64(e.hops[h])
		}
		w := int64(pkts*flowHistScale + 0.5)
		if w <= 0 {
			continue
		}
		v := int64(lat + 0.5)
		a.hist.Buckets[bucketIndex(v)] += w
		a.hist.Count += w
		a.hist.Sum += v * w
		if a.hist.Count == w || v < a.hist.Min {
			a.hist.Min = v
		}
		if v > a.hist.Max {
			a.hist.Max = v
		}
	}
}

// SolveFlow runs one analytical measurement window under EngineFlow. The
// network must be freshly built or Reset; afterwards Snapshot,
// LinkUtilization and the energy pricing read exactly as they would after
// a cycle-engine run of the same window. Armed churn timelines are applied
// at their event cycles: the window is segmented, each segment re-traces
// the routes the event batch invalidated (the apply hook has rebuilt
// routing) and re-solves, and the reported statistics are the
// segment-length-weighted aggregate.
func (n *Network) SolveFlow(opts FlowOptions) error {
	if n.engineKind != EngineFlow {
		return fmt.Errorf("%w: SolveFlow on engine %v", ErrFlowEngine, n.engineKind)
	}
	if opts.Demands == nil || opts.PacketSize <= 0 || opts.Measure <= 0 || opts.Warmup < 0 {
		return fmt.Errorf("%w: need Demands, PacketSize > 0, Measure > 0, Warmup >= 0", ErrFlowEngine)
	}
	size := opts.PacketSize
	horizon := opts.Warmup + opts.Measure

	fl := n.flowSolver()
	if opts.Workers > 0 {
		n.SetFlowWorkers(opts.Workers)
	}
	if opts.Cold {
		n.flowInvalidateAll()
	}
	if fl.cache.size != size {
		// Cached base latencies embed the ejection serialization, so a
		// packet-size change discards the cache.
		n.flowInvalidateAll()
		fl.cache.size = size
	}
	if fl.capSize != size {
		fl.setCapacities(n, size)
	}
	fl.stats.Solves++

	// Segment the horizon at pending churn cycles (the cursor marks events
	// already applied — a Reset rewinds it).
	fl.starts = append(fl.starts[:0], 0)
	if c := n.churn; c != nil {
		for _, e := range c.events[c.next:] {
			if e.Cycle > 0 && e.Cycle < horizon && e.Cycle != fl.starts[len(fl.starts)-1] {
				fl.starts = append(fl.starts, e.Cycle)
			}
		}
	}

	acc := &fl.accum
	acc.reset(len(n.Links))
	for i, segStart := range fl.starts {
		segEnd := horizon
		if i+1 < len(fl.starts) {
			segEnd = fl.starts[i+1]
		}
		n.Cycle = segStart
		if n.churn != nil {
			n.applyDueChurn()
			if err := n.ChurnErr(); err != nil {
				return err
			}
		}
		// The measured overlap of this segment with the window; segments
		// entirely inside warmup only advance the churn cursor.
		cyc := min(segEnd, horizon) - max(segStart, opts.Warmup)
		if cyc <= 0 {
			continue
		}
		fl.stats.Segments++
		if n.preAllocate != nil {
			n.preAllocate(n)
		}
		refused := n.flowBuildFlows(fl, opts.Demands(), size)
		shape := fl.flowShape()
		if shape != fl.shape || len(fl.elemFlow) == 0 {
			fl.buildTranspose()
			fl.shape = shape
		}
		if opts.SeedThrottles && shape == fl.prevShape && len(fl.prevX) == len(fl.flows) {
			for j := range fl.flows {
				f := &fl.flows[j]
				if x0 := fl.prevX[j] * fl.prevRate[j] / f.rate; x0 < 1 {
					f.x = x0
				}
			}
		}
		t := time.Now() //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
		flowPhaseWaterfill.Enter()
		fl.waterfill()
		profiling.ExitPhase()
		fl.stats.WaterfillWall += time.Since(t) //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
		t = time.Now()                          //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
		flowPhaseHist.Enter()
		acc.accumulate(fl, n, size, refused, cyc)
		profiling.ExitPhase()
		fl.stats.HistWall += time.Since(t) //sldf:nondeterministic-ok FlowSolverStats wall-clock diagnostics, never part of measured results
		if opts.SeedThrottles {
			fl.prevX = fl.prevX[:0]
			fl.prevRate = fl.prevRate[:0]
			for j := range fl.flows {
				fl.prevX = append(fl.prevX, fl.flows[j].x)
				fl.prevRate = append(fl.prevRate, fl.flows[j].rate)
			}
			fl.prevShape = shape
		}
	}

	// Publish the synthesized window: counters into shard 0, per-link
	// flits, and the [0, Measure) bookkeeping Snapshot/LinkUtilization
	// expect. The flow model has no in-flight packets, so injected equals
	// delivered and the drain tail is implicit.
	deliveredPkts := int64(acc.deliveredFlits/float64(size) + 0.5)
	ss := &n.shard[0]
	ss.injectedPkts = deliveredPkts
	ss.deliveredPkts = deliveredPkts
	ss.refusedPkts = int64(acc.refusedPkts + 0.5)
	ss.winFlits = int64(acc.deliveredFlits + 0.5)
	ss.winPkts = deliveredPkts
	ss.winNetLatSum = int64(acc.netLatSum + 0.5)
	for h := 0; h < int(NumHopClasses); h++ {
		ss.winHops[h] = int64(acc.hops[h] + 0.5)
	}
	ss.lat = acc.hist
	for i := range n.Links {
		n.Links[i].winFlits = int64(acc.linkFlits[i] + 0.5)
	}
	n.measuring = false
	n.measStart = 0
	n.measEnd = opts.Measure
	n.Cycle = opts.Measure
	return nil
}

// FlowMakespan estimates the cycles one barrier-separated transfer set
// needs to complete: the bottleneck element's serialization time plus the
// longest path's pipeline-fill latency. Transfers whose endpoints are dead
// or unroutable are skipped (collective schedules recompute over survivors
// before each solve). Zero transfers complete in zero cycles. Routes are
// served from (and added to) the same trace cache SolveFlow uses, so
// collective schedules that revisit pairs across steps trace them once.
func (n *Network) FlowMakespan(vols []FlowVolume, packetSize int32) (int64, error) {
	if packetSize <= 0 {
		return 0, fmt.Errorf("%w: PacketSize > 0 required", ErrFlowEngine)
	}
	fl := n.flowSolver()
	if fl.cache.size != packetSize {
		n.flowInvalidateAll()
		fl.cache.size = packetSize
	}
	if fl.capSize != packetSize {
		fl.setCapacities(n, packetSize)
	}
	if n.preAllocate != nil {
		n.preAllocate(n)
	}
	fl.flows = fl.flows[:0]
	fl.pending = fl.pending[:0]
	for _, v := range vols {
		if v.Flits <= 0 || int(v.Src) >= len(n.ChipNodes) || int(v.Dst) >= len(n.ChipNodes) {
			continue
		}
		srcNodes := n.ChipNodes[v.Src]
		dstNodes := n.ChipNodes[v.Dst]
		if len(srcNodes) == 0 || len(dstNodes) == 0 {
			continue
		}
		perNode := float64(v.Flits) / float64(len(srcNodes))
		for idx, srcNode := range srcNodes {
			ei, need := fl.cache.lookupOrReserve(pairKey(srcNode, dstNodes[idx%len(dstNodes)]))
			if need {
				fl.pending = append(fl.pending, ei)
			} else if fl.cache.entries[ei].traced {
				fl.stats.CacheHits++
			}
			fl.flows = append(fl.flows, flowFlow{rate: perNode, x: 1, entry: ei})
		}
	}
	n.tracePending(fl, packetSize)
	for i := range fl.load {
		fl.load[i] = 0
	}
	var maxBase int64
	for i := range fl.flows {
		f := &fl.flows[i]
		e := &fl.cache.entries[f.entry]
		if !e.ok {
			continue
		}
		for _, el := range fl.cache.path[e.off : e.off+e.n] {
			fl.load[el] += f.rate
		}
		if e.base > maxBase {
			maxBase = e.base
		}
	}
	var maxSer float64
	for i, l := range fl.load {
		if l <= 0 {
			continue
		}
		if s := l / fl.cap[i]; s > maxSer {
			maxSer = s
		}
	}
	if maxSer == 0 && maxBase == 0 {
		return 0, nil
	}
	return maxBase + int64(math.Ceil(maxSer)), nil
}

// FlowSampleCount is the per-chip destination sample count the core layer
// uses when discretizing a traffic pattern into FlowDemands: dense enough
// for stable link loads on small systems, thinner at scales where the
// aggregate over many chips smooths the estimate anyway. Deterministic in
// the chip count so cached flow points are reproducible.
func FlowSampleCount(chips int) int {
	switch {
	case chips <= 256:
		// Tiny systems have no cross-chip aggregation to smooth sampling
		// noise — a multinomial wobble of a few samples shifts a whole
		// link's load — so they get a dense draw (still microseconds).
		return 256
	case chips <= 4096:
		return 32
	case chips <= 65536:
		return 8
	default:
		return 4
	}
}

// FlowDemandRNG returns the deterministic per-chip RNG stream for demand
// sampling; exported via helper so core and tests share one derivation.
func FlowDemandRNG(seed uint64, chip int32) engine.RNG {
	return engine.NewRNGStream(seed^0xF10A11CE, uint64(chip)+1)
}
