package netsim

// The flow-level analytical engine (EngineFlow): instead of stepping
// packets cycle by cycle, it solves the steady-state per-link load induced
// by a sampled traffic matrix over the installed routing function, then
// synthesizes the same Stats surface the cycle engines produce — mean and
// quantile latency via an M/D/1-style queueing approximation, accepted
// throughput from the waterfilled loads, and per-link window flits so
// LinkUtilization works unchanged. It is approximate by design (validated
// against the cycle engines with pinned error bounds, see
// internal/core/flowvalidate_test.go) and exists for campaign points far
// beyond the cycle engines' scale ceiling.
//
// The engine reuses the network exactly as built: routes are traced by
// running the installed RouteFunc over a phantom packet hop by hop, so
// fault-aware routing, adaptive pre-allocate hooks and churn rewiring all
// apply without flow-specific code. Armed fault timelines are honored by
// segmenting the measurement window at event cycles and re-solving per
// segment (SolveFlow), which is what keeps churn campaigns working
// unchanged under EngineFlow.

import (
	"errors"
	"fmt"
	"math"

	"sldf/internal/engine"
)

// FlowDemand is one steady-state flow of the sampled traffic matrix: chip
// Src offers Rate flits/cycle toward chip Dst. The solver spreads a chip's
// demands across its injection nodes the same way DstSameIndex does.
type FlowDemand struct {
	Src, Dst int32
	Rate     float64
}

// FlowVolume is one finite transfer for collective-step makespans: chip
// Src sends Flits flits to chip Dst, split evenly across Src's nodes.
type FlowVolume struct {
	Src, Dst int32
	Flits    int64
}

// FlowOptions configures one SolveFlow measurement window.
type FlowOptions struct {
	// Demands returns the sampled traffic matrix. It is re-invoked after
	// every applied churn segment so the caller can re-filter dead chips
	// (deterministic sampling makes repeated calls identical otherwise).
	Demands func() []FlowDemand
	// PacketSize is the packet size in flits (latency includes the
	// Size-cycle ejection serialization, exactly like the cycle engines).
	PacketSize int32
	// Warmup cycles are modeled but not measured; Measure cycles form the
	// reported window, mirroring the cycle engines' Run(Warmup) /
	// StartMeasurement / Run(Measure) sequence.
	Warmup, Measure int64
}

// ErrFlowEngine wraps flow-solver usage errors.
var ErrFlowEngine = errors.New("netsim: flow engine")

// flowMaxHops bounds route tracing; any SLDF/Dragonfly/mesh route is far
// shorter, so hitting it means the routing function is cycling.
const flowMaxHops = 256

// flowHistScale is the histogram super-sampling factor: per-flow delivered
// packet counts can be fractional at quick windows, so bucket weights are
// scaled up to keep sub-packet flows from rounding out of the quantiles.
const flowHistScale = 64

// flowWaterfillIters bounds the throttle fixpoint iteration; the monotone
// scheme is usually converged after a handful of rounds.
const flowWaterfillIters = 24

// flowRhoCap keeps the M/D/1 waiting-time term finite at saturation.
const flowRhoCap = 0.98

// flowFlow is one node-level flow: its offered rate, solved throttle, and
// traced path (links crossed plus the ejection node) as an offset/length
// into flowState.path.
type flowFlow struct {
	rate float64 // offered flits/cycle on this node-level flow
	x    float64 // throttle after waterfilling (delivered = rate*x)
	base int64   // uncontended end-to-end latency in cycles
	off  int32   // path start in flowState.path
	n    int32   // path element count
	hops [NumHopClasses]uint16
}

// flowState is the per-solve scratch: flows with flattened paths, and one
// load/capacity slot per link plus one per router (the router slots model
// the 1-flit/cycle ejection port, which is what saturates single-node
// chips long before their links do).
type flowState struct {
	flows []flowFlow
	path  []int32 // element >= ejBase means ejection at router (element-ejBase)
	load  []float64
	cap   []float64
	ser   []float64 // per-element serialization cycles (queueing service time)
}

func (n *Network) newFlowState() *flowState {
	fs := &flowState{}
	nl := len(n.Links)
	fs.load = make([]float64, nl+len(n.Routers))
	fs.cap = make([]float64, nl+len(n.Routers))
	fs.ser = make([]float64, nl+len(n.Routers))
	return fs
}

// ejBase offsets router (ejection) elements past the link elements.
func (fs *flowState) ejBase(n *Network) int32 { return int32(len(n.Links)) }

// trace runs the installed RouteFunc over a phantom packet from srcNode to
// chip dst, recording the links crossed and the ejection node. It returns
// false when the route dead-ends, crosses a disabled component, or exceeds
// flowMaxHops — the caller accounts such flows as refused.
func (n *Network) trace(fs *flowState, srcNode, dstNode NodeID, src, dst int32, size int32, f *flowFlow) bool {
	p := Packet{
		SrcChip: src, DstChip: dst,
		SrcNode: srcNode, DstNode: dstNode,
		Size: size, Aux: -1, Aux2: -1,
	}
	f.off = int32(len(fs.path))
	f.n = 0
	f.base = 0
	f.hops = [NumHopClasses]uint16{}
	r := &n.Routers[srcNode]
	for hop := 0; hop < flowMaxHops; hop++ {
		out, vc := n.route(n, r, &p)
		if out < 0 || out >= len(r.Out) {
			fs.path = fs.path[:f.off]
			return false
		}
		l := r.Out[out].Link
		if l == nil {
			// Ejection: the terminal serializes the whole packet at one
			// flit per cycle, exactly like Router.allocate.
			fs.path = append(fs.path, fs.ejBase(n)+int32(r.ID))
			f.n++
			f.base += int64(size)
			f.hops[HopEject]++
			return true
		}
		if l.Disabled || n.Routers[l.Dst].Disabled {
			fs.path = fs.path[:f.off]
			return false
		}
		p.VC = vc
		p.Hops[l.Class]++
		f.hops[l.Class]++
		fs.path = append(fs.path, l.ID)
		f.n++
		// Wire + the one-cycle handoff into the next router's input buffer
		// (the cycle engines deliver at now + Delay + 1).
		f.base += int64(l.Delay) + 1
		r = &n.Routers[l.Dst]
	}
	fs.path = fs.path[:f.off]
	return false
}

// buildFlows expands chip-level demands into node-level flows with traced
// paths. Demands on a chip are spread round-robin across its injection
// nodes (matching DstSameIndex's node pairing); demands whose route fails
// are returned as refused flits/cycle.
func (n *Network) buildFlows(fs *flowState, demands []FlowDemand, size int32, perChipSeq []int) (refusedRate float64) {
	fs.flows = fs.flows[:0]
	fs.path = fs.path[:0]
	for i := range perChipSeq {
		perChipSeq[i] = 0
	}
	for _, d := range demands {
		if d.Rate <= 0 {
			continue
		}
		if int(d.Src) >= len(n.ChipNodes) || int(d.Dst) >= len(n.ChipNodes) {
			refusedRate += d.Rate
			continue
		}
		srcNodes := n.ChipNodes[d.Src]
		dstNodes := n.ChipNodes[d.Dst]
		if len(srcNodes) == 0 || len(dstNodes) == 0 {
			refusedRate += d.Rate
			continue
		}
		idx := perChipSeq[d.Src] % len(srcNodes)
		perChipSeq[d.Src]++
		srcNode := srcNodes[idx]
		dstNode := dstNodes[idx%len(dstNodes)]
		var f flowFlow
		f.rate = d.Rate
		f.x = 1
		if !n.trace(fs, srcNode, dstNode, d.Src, d.Dst, size, &f) {
			refusedRate += d.Rate
			continue
		}
		fs.flows = append(fs.flows, f)
	}
	return refusedRate
}

// setCapacities fills per-element capacities and service times: links carry
// Width flits/cycle and serialize a packet in ceil(size/Width) cycles;
// ejection ports carry one flit/cycle and serialize in size cycles.
func (fs *flowState) setCapacities(n *Network, size int32) {
	eb := int(fs.ejBase(n))
	for i := range n.Links {
		l := &n.Links[i]
		fs.cap[i] = float64(l.Width)
		fs.ser[i] = float64((size + l.Width - 1) / l.Width)
	}
	for i := range n.Routers {
		fs.cap[eb+i] = 1
		fs.ser[eb+i] = float64(size)
	}
}

// waterfill runs the monotone throttle fixpoint: every flow is scaled by
// the worst capacity/load ratio along its path until no element is loaded
// past capacity. The result is a feasible operating point that matches the
// offered load below saturation and pins the bottleneck elements at
// capacity above it.
func (fs *flowState) waterfill() {
	for iter := 0; iter < flowWaterfillIters; iter++ {
		for i := range fs.load {
			fs.load[i] = 0
		}
		for i := range fs.flows {
			f := &fs.flows[i]
			r := f.rate * f.x
			for _, e := range fs.path[f.off : f.off+f.n] {
				fs.load[e] += r
			}
		}
		over := false
		for i := range fs.flows {
			f := &fs.flows[i]
			scale := 1.0
			for _, e := range fs.path[f.off : f.off+f.n] {
				if fs.load[e] > fs.cap[e] {
					if s := fs.cap[e] / fs.load[e]; s < scale {
						scale = s
					}
				}
			}
			if scale < 1 {
				f.x *= scale
				over = true
			}
		}
		if !over {
			return
		}
	}
	// One last load pass so the reported loads reflect the final throttles.
	for i := range fs.load {
		fs.load[i] = 0
	}
	for i := range fs.flows {
		f := &fs.flows[i]
		r := f.rate * f.x
		for _, e := range fs.path[f.off : f.off+f.n] {
			fs.load[e] += r
		}
	}
}

// latency returns flow f's modeled end-to-end latency: the uncontended
// base plus an M/D/1 waiting term per traversed element at its solved
// utilization, capped near saturation so the estimate stays finite.
func (fs *flowState) latency(f *flowFlow) float64 {
	lat := float64(f.base)
	for _, e := range fs.path[f.off : f.off+f.n] {
		rho := fs.load[e] / fs.cap[e]
		if rho > flowRhoCap {
			rho = flowRhoCap
		}
		if rho > 0 {
			lat += rho / (2 * (1 - rho)) * fs.ser[e]
		}
	}
	return lat
}

// flowAccum accumulates window statistics across churn segments in float
// precision; the totals are rounded into the shard counters once.
type flowAccum struct {
	deliveredFlits float64
	refusedPkts    float64
	netLatSum      float64
	hops           [NumHopClasses]float64
	linkFlits      []float64
	hist           LatencyHist
}

// accumulate folds one solved segment of cyc cycles into the totals.
func (a *flowAccum) accumulate(fs *flowState, n *Network, size int32, refusedRate float64, cyc int64) {
	c := float64(cyc)
	a.refusedPkts += refusedRate * c / float64(size)
	eb := int(fs.ejBase(n))
	for i := 0; i < eb; i++ {
		a.linkFlits[i] += fs.load[i] * c
	}
	for i := range fs.flows {
		f := &fs.flows[i]
		delivered := f.rate * f.x * c
		if delivered <= 0 {
			continue
		}
		a.deliveredFlits += delivered
		pkts := delivered / float64(size)
		lat := fs.latency(f)
		a.netLatSum += pkts * lat
		for h := 0; h < int(NumHopClasses); h++ {
			a.hops[h] += pkts * float64(f.hops[h])
		}
		w := int64(pkts*flowHistScale + 0.5)
		if w <= 0 {
			continue
		}
		v := int64(lat + 0.5)
		a.hist.Buckets[bucketIndex(v)] += w
		a.hist.Count += w
		a.hist.Sum += v * w
		if a.hist.Count == w || v < a.hist.Min {
			a.hist.Min = v
		}
		if v > a.hist.Max {
			a.hist.Max = v
		}
	}
}

// SolveFlow runs one analytical measurement window under EngineFlow. The
// network must be freshly built or Reset; afterwards Snapshot,
// LinkUtilization and the energy pricing read exactly as they would after
// a cycle-engine run of the same window. Armed churn timelines are applied
// at their event cycles: the window is segmented, each segment re-traces
// routes (the apply hook has rebuilt routing) and re-solves, and the
// reported statistics are the segment-length-weighted aggregate.
func (n *Network) SolveFlow(opts FlowOptions) error {
	if n.engineKind != EngineFlow {
		return fmt.Errorf("%w: SolveFlow on engine %v", ErrFlowEngine, n.engineKind)
	}
	if opts.Demands == nil || opts.PacketSize <= 0 || opts.Measure <= 0 || opts.Warmup < 0 {
		return fmt.Errorf("%w: need Demands, PacketSize > 0, Measure > 0, Warmup >= 0", ErrFlowEngine)
	}
	size := opts.PacketSize
	horizon := opts.Warmup + opts.Measure

	// Segment the horizon at pending churn cycles (the cursor marks events
	// already applied — a Reset rewinds it).
	starts := []int64{0}
	if c := n.churn; c != nil {
		for _, e := range c.events[c.next:] {
			if e.Cycle > 0 && e.Cycle < horizon && e.Cycle != starts[len(starts)-1] {
				starts = append(starts, e.Cycle)
			}
		}
	}

	fs := n.newFlowState()
	acc := flowAccum{linkFlits: make([]float64, len(n.Links))}
	perChipSeq := make([]int, len(n.ChipNodes))
	for i, segStart := range starts {
		segEnd := horizon
		if i+1 < len(starts) {
			segEnd = starts[i+1]
		}
		n.Cycle = segStart
		if n.churn != nil {
			n.applyDueChurn()
			if err := n.ChurnErr(); err != nil {
				return err
			}
		}
		// The measured overlap of this segment with the window; segments
		// entirely inside warmup only advance the churn cursor.
		cyc := min(segEnd, horizon) - max(segStart, opts.Warmup)
		if cyc <= 0 {
			continue
		}
		fs.setCapacities(n, size)
		if n.preAllocate != nil {
			n.preAllocate(n)
		}
		refused := n.buildFlows(fs, opts.Demands(), size, perChipSeq)
		fs.waterfill()
		acc.accumulate(fs, n, size, refused, cyc)
	}

	// Publish the synthesized window: counters into shard 0, per-link
	// flits, and the [0, Measure) bookkeeping Snapshot/LinkUtilization
	// expect. The flow model has no in-flight packets, so injected equals
	// delivered and the drain tail is implicit.
	deliveredPkts := int64(acc.deliveredFlits/float64(size) + 0.5)
	ss := &n.shard[0]
	ss.injectedPkts = deliveredPkts
	ss.deliveredPkts = deliveredPkts
	ss.refusedPkts = int64(acc.refusedPkts + 0.5)
	ss.winFlits = int64(acc.deliveredFlits + 0.5)
	ss.winPkts = deliveredPkts
	ss.winNetLatSum = int64(acc.netLatSum + 0.5)
	for h := 0; h < int(NumHopClasses); h++ {
		ss.winHops[h] = int64(acc.hops[h] + 0.5)
	}
	ss.lat = acc.hist
	for i := range n.Links {
		n.Links[i].winFlits = int64(acc.linkFlits[i] + 0.5)
	}
	n.measuring = false
	n.measStart = 0
	n.measEnd = opts.Measure
	n.Cycle = opts.Measure
	return nil
}

// FlowMakespan estimates the cycles one barrier-separated transfer set
// needs to complete: the bottleneck element's serialization time plus the
// longest path's pipeline-fill latency. Transfers whose endpoints are dead
// or unroutable are skipped (collective schedules recompute over survivors
// before each solve). Zero transfers complete in zero cycles.
func (n *Network) FlowMakespan(vols []FlowVolume, packetSize int32) (int64, error) {
	if packetSize <= 0 {
		return 0, fmt.Errorf("%w: PacketSize > 0 required", ErrFlowEngine)
	}
	fs := n.newFlowState()
	fs.setCapacities(n, packetSize)
	if n.preAllocate != nil {
		n.preAllocate(n)
	}
	var maxBase int64
	for _, v := range vols {
		if v.Flits <= 0 || int(v.Src) >= len(n.ChipNodes) || int(v.Dst) >= len(n.ChipNodes) {
			continue
		}
		srcNodes := n.ChipNodes[v.Src]
		dstNodes := n.ChipNodes[v.Dst]
		if len(srcNodes) == 0 || len(dstNodes) == 0 {
			continue
		}
		perNode := float64(v.Flits) / float64(len(srcNodes))
		for idx, srcNode := range srcNodes {
			var f flowFlow
			f.rate = perNode
			if !n.trace(fs, srcNode, dstNodes[idx%len(dstNodes)], v.Src, v.Dst, packetSize, &f) {
				continue
			}
			for _, e := range fs.path[f.off : f.off+f.n] {
				fs.load[e] += perNode
			}
			if f.base > maxBase {
				maxBase = f.base
			}
		}
	}
	var maxSer float64
	for i, l := range fs.load {
		if l <= 0 {
			continue
		}
		if s := l / fs.cap[i]; s > maxSer {
			maxSer = s
		}
	}
	if maxSer == 0 && maxBase == 0 {
		return 0, nil
	}
	return maxBase + int64(math.Ceil(maxSer)), nil
}

// FlowSampleCount is the per-chip destination sample count the core layer
// uses when discretizing a traffic pattern into FlowDemands: dense enough
// for stable link loads on small systems, thinner at scales where the
// aggregate over many chips smooths the estimate anyway. Deterministic in
// the chip count so cached flow points are reproducible.
func FlowSampleCount(chips int) int {
	switch {
	case chips <= 256:
		// Tiny systems have no cross-chip aggregation to smooth sampling
		// noise — a multinomial wobble of a few samples shifts a whole
		// link's load — so they get a dense draw (still microseconds).
		return 256
	case chips <= 4096:
		return 32
	case chips <= 65536:
		return 8
	default:
		return 4
	}
}

// flowRNG returns the deterministic per-chip RNG stream for demand
// sampling; exported via helper so core and tests share one derivation.
func FlowDemandRNG(seed uint64, chip int32) engine.RNG {
	return engine.NewRNGStream(seed^0xF10A11CE, uint64(chip)+1)
}
