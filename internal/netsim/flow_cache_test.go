package netsim

import (
	"reflect"
	"testing"
)

// ringDemands builds a fixed chip-level demand set on an n-chip ring.
func ringDemands(n int, rate float64) []FlowDemand {
	d := make([]FlowDemand, 0, n)
	for i := 0; i < n; i++ {
		d = append(d, FlowDemand{Src: int32(i), Dst: int32((i + 3) % n), Rate: rate})
	}
	return d
}

// solveFlowRing runs one SolveFlow window and returns the snapshot, leaving
// the network Reset for the next solve.
func solveFlowRing(t *testing.T, net *Network, demands []FlowDemand, opts FlowOptions) Stats {
	t.Helper()
	net.SetEngine(EngineFlow)
	opts.Demands = func() []FlowDemand { return demands }
	opts.PacketSize = 4
	if opts.Measure == 0 {
		opts.Warmup, opts.Measure = 100, 200
	}
	if err := net.SolveFlow(opts); err != nil {
		t.Fatalf("SolveFlow: %v", err)
	}
	st := net.Snapshot()
	net.Reset()
	return st
}

// TestFlowTraceCacheReuse pins the route-trace cache's core contract on a
// build-once/solve-many loop: the second identical solve traces nothing and
// serves every flow from the cache, a parallel solve and a forced-cold solve
// are bitwise identical to it, and SetRoute discards everything.
func TestFlowTraceCacheReuse(t *testing.T) {
	const n = 8
	net := buildRing(t, n)
	defer net.Close()
	demands := ringDemands(n, 0.05)

	first := solveFlowRing(t, net, demands, FlowOptions{})
	s1 := net.FlowSolverStats()
	if s1.Traces != int64(n) || s1.CacheHits != 0 {
		t.Fatalf("cold solve: %d traces, %d hits; want %d, 0", s1.Traces, s1.CacheHits, n)
	}

	warm := solveFlowRing(t, net, demands, FlowOptions{})
	s2 := net.FlowSolverStats()
	if d := s2.Traces - s1.Traces; d != 0 {
		t.Fatalf("warm solve re-traced %d pairs", d)
	}
	if d := s2.CacheHits - s1.CacheHits; d != int64(n) {
		t.Fatalf("warm solve hit cache %d times, want %d", d, n)
	}
	if !reflect.DeepEqual(first, warm) {
		t.Fatalf("warm solve diverged from cold:\ncold: %+v\nwarm: %+v", first, warm)
	}

	par := solveFlowRing(t, net, demands, FlowOptions{Workers: 4})
	if !reflect.DeepEqual(first, par) {
		t.Fatalf("parallel solve diverged from serial:\nserial:   %+v\nparallel: %+v", first, par)
	}

	cold := solveFlowRing(t, net, demands, FlowOptions{Cold: true})
	s4 := net.FlowSolverStats()
	if s4.FullInvalidations == s2.FullInvalidations {
		t.Fatal("Cold solve did not discard the cache")
	}
	if !reflect.DeepEqual(first, cold) {
		t.Fatalf("forced-cold solve diverged:\nfirst: %+v\ncold:  %+v", first, cold)
	}

	// Installing a routing function — even an identical one — must discard
	// every cached trace: the cache cannot see whether the new closure
	// routes differently.
	route := net.route
	net.SetRoute(route)
	before := net.FlowSolverStats()
	again := solveFlowRing(t, net, demands, FlowOptions{})
	after := net.FlowSolverStats()
	if d := after.Traces - before.Traces; d != int64(n) {
		t.Fatalf("solve after SetRoute traced %d pairs, want full re-trace of %d", d, n)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("post-SetRoute solve diverged:\nfirst: %+v\nagain: %+v", first, again)
	}
}

// TestFlowChurnSelectiveInvalidation pins the churn eviction's exactness on
// the adaptive bidirectional ring: killing the 1↔2 channel mid-window must
// evict exactly the one cached pair whose traced path crossed it, re-trace
// only that pair for the post-event segment (the stale clockwise path must
// not survive the reroute), and keep serving the unaffected pair from the
// cache. The post-kill detour is visible in the hop mix, and a parallel
// rerun of the same timeline is bitwise identical.
func TestFlowChurnSelectiveInvalidation(t *testing.T) {
	const n = 6
	build := func() *Network {
		net := buildChurnRing(t, n, NetworkOptions{Seed: 1, Workers: 1})
		net.SetEngine(EngineFlow)
		return net
	}
	// Chip 0→2 traces clockwise across links 0→1, 1→2; chip 3→5 traces
	// clockwise across 3→4, 4→5 and never touches the killed channel.
	demands := []FlowDemand{{Src: 0, Dst: 2, Rate: 0.05}, {Src: 3, Dst: 5, Rate: 0.05}}
	arm := func(net *Network) {
		fwd := linkBetween(t, net, 1, 2)
		rev := linkBetween(t, net, 2, 1)
		events := []TimedFault{LinkFault(100, fwd.ID, false), LinkFault(100, rev.ID, false)}
		if err := net.ScheduleChurn(events, DropInFlight, nil); err != nil {
			t.Fatal(err)
		}
	}
	solve := func(net *Network, workers int) Stats {
		t.Helper()
		if err := net.SolveFlow(FlowOptions{
			Demands:    func() []FlowDemand { return demands },
			PacketSize: 4, Warmup: 0, Measure: 200, Workers: workers,
		}); err != nil {
			t.Fatalf("SolveFlow: %v", err)
		}
		return net.Snapshot()
	}

	net := build()
	defer net.Close()
	arm(net)
	churned := solve(net, 0)
	fs := net.FlowSolverStats()
	if fs.Segments != 2 {
		t.Fatalf("%d segments solved, want 2 (event at cycle 100 splits the window)", fs.Segments)
	}
	if fs.Evicted != 1 {
		t.Fatalf("churn batch evicted %d entries, want exactly the one crossing the dead channel", fs.Evicted)
	}
	if fs.Traces != 3 {
		t.Fatalf("%d traces, want 3: two cold plus the one invalidated re-trace", fs.Traces)
	}
	if fs.CacheHits != 1 {
		t.Fatalf("%d cache hits, want 1: the unaffected pair served warm post-event", fs.CacheHits)
	}

	// The reroute is observable: a churn-free window delivers every packet
	// over 2-hop clockwise paths, the churned window's second segment must
	// carry 0→2 over the 4-hop counterclockwise detour.
	clean := build()
	defer clean.Close()
	pristine := solve(clean, 0)
	if churned.MeanHops(HopShortReach) <= pristine.MeanHops(HopShortReach) {
		t.Fatalf("churned hop mix %.3f not above pristine %.3f: stale clockwise path survived the reroute",
			churned.MeanHops(HopShortReach), pristine.MeanHops(HopShortReach))
	}

	// Same timeline, parallel tracing: bitwise identical.
	par := build()
	defer par.Close()
	arm(par)
	if got := solve(par, 4); !reflect.DeepEqual(churned, got) {
		t.Fatalf("parallel churned solve diverged:\nserial:   %+v\nparallel: %+v", churned, got)
	}
}

// TestFlowSolveSteadyStateAllocs pins the solver's zero-allocation contract:
// once a build-once/solve-many loop has warmed the trace cache and the
// retained buffers, a full SolveFlow + Reset cycle allocates nothing.
func TestFlowSolveSteadyStateAllocs(t *testing.T) {
	const n = 8
	net := buildRing(t, n)
	defer net.Close()
	net.SetEngine(EngineFlow)
	demands := ringDemands(n, 0.05)
	opts := FlowOptions{
		Demands:    func() []FlowDemand { return demands },
		PacketSize: 4, Warmup: 100, Measure: 200,
	}
	cycle := func() {
		if err := net.SolveFlow(opts); err != nil {
			t.Fatal(err)
		}
		net.Reset()
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Fatalf("SolveFlow+Reset allocates %v times per run in steady state, want 0", allocs)
	}
}
