package netsim

import "sldf/internal/engine"

// Generator decides, for every injection node on every cycle, whether to
// create a packet and where to send it.
//
// NextDest may be called concurrently for different (srcChip, nodeIdx)
// pairs; implementations must keep any mutable state confined per
// (chip, node) slot or be stateless. The rng passed in is the injection
// node's own deterministic stream.
type Generator interface {
	// NextDest returns the destination chip for a packet injected this cycle
	// by injection node nodeIdx of srcChip, or -1 to inject nothing.
	NextDest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32

// NextDest calls f.
func (f GeneratorFunc) NextDest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32 {
	return f(now, srcChip, nodeIdx, rng)
}

// BernoulliGenerator is an optional Generator specialization for open-loop
// Bernoulli injection. When a generator implements it, the cycle engine
// inlines the per-injector coin flip — the single hottest generator call —
// and pays the dynamic Dest dispatch only for the injectors whose flip
// succeeded. The contract mirrors Generator.NextDest built from these
// parts: prob <= 0 never injects and consumes no randomness; prob >= 1
// always injects without a flip; otherwise one rng.Hit(thresh) draw decides.
// Dest returns the destination chip, or -1 to inject nothing after all.
type BernoulliGenerator interface {
	Generator
	// InjectionRate returns the per-node-cycle injection probability and
	// its engine.BernoulliThreshold.
	InjectionRate() (prob float64, thresh uint64)
	// Dest picks the destination chip after a successful flip.
	Dest(now int64, srcChip int32, nodeIdx int, rng *engine.RNG) int32
}

// DstNodePolicy selects which node of the destination chip receives a packet.
type DstNodePolicy uint8

const (
	// DstSameIndex delivers to the node with the same local index as the
	// injecting node (cores are paired across chips).
	DstSameIndex DstNodePolicy = iota
	// DstRandom delivers to a uniformly random node of the destination chip.
	DstRandom
)
