package netsim

import (
	"testing"

	"sldf/internal/engine"
)

// buildStar builds one central router with n leaf terminals attached, the
// minimal topology where head-of-line blocking shows: leaves inject to
// random other leaves through the hub.
func buildStar(t testing.TB, n int, ideal bool, vcs uint8) (*Network, NodeID) {
	t.Helper()
	b := NewBuilder()
	hub := b.AddRouter(KindSwitch)
	b.Router(hub).Ideal = ideal
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopLongLocal, VCs: vcs, BufFlits: 32}
	down := make([]int, n)
	for i := 0; i < n; i++ {
		leaf := b.AddRouter(KindNIC)
		b.Router(leaf).Chip = int32(i)
		b.AddTerminal(leaf, int32(i), 0)
		_, _ = b.ConnectBidi(leaf, hub, spec)
		down[i], _ = 0, 0
	}
	net, err := b.Finalize(NetworkOptions{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hub out port for chip c is port c (terminals added in order).
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if r.Kind == KindNIC {
			if r.Chip == p.DstChip {
				return int(r.EjectOut), 0
			}
			return 1, 0 // single uplink after the terminal pseudo-ports
		}
		return int(p.DstChip), 0
	})
	return net, hub
}

func starThroughput(t testing.TB, ideal bool) float64 {
	net, _ := buildStar(t, 8, ideal, 1)
	defer net.Close()
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		// Saturating uniform: one packet per 4 cycles per chip.
		if now%4 != 0 {
			return -1
		}
		d := rng.Int31n(8)
		if d == src {
			return -1
		}
		return d
	}), 4, DstSameIndex)
	if err := net.Run(300); err != nil {
		t.Fatal(err)
	}
	net.StartMeasurement()
	if err := net.Run(1200); err != nil {
		t.Fatal(err)
	}
	net.StopMeasurement()
	st := net.Snapshot()
	return st.Throughput()
}

func TestIdealSwitchBeatsHOLBlocking(t *testing.T) {
	blocked := starThroughput(t, false)
	ideal := starThroughput(t, true)
	// Input-queued FIFO saturates near the classic ~0.6-0.75 HOL limit;
	// the ideal switch must get close to 1 flit/cycle/chip.
	if blocked > 0.85 {
		t.Fatalf("non-ideal star throughput %v suspiciously high", blocked)
	}
	if ideal < 0.85 {
		t.Fatalf("ideal star throughput %v, want near 1", ideal)
	}
	if ideal <= blocked {
		t.Fatalf("ideal (%v) must beat input-queued (%v)", ideal, blocked)
	}
}

func TestIdealSwitchConservation(t *testing.T) {
	net, _ := buildStar(t, 6, true, 2)
	defer net.Close()
	const volume = 50
	sent := make([]int, 6)
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if sent[src] >= volume {
			return -1
		}
		sent[src]++
		return (src + 1) % 6
	}), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(600); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(5000); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.InjectedPkts != 6*volume || st.DeliveredPkts != 6*volume {
		t.Fatalf("conservation violated: injected %d delivered %d want %d",
			st.InjectedPkts, st.DeliveredPkts, 6*volume)
	}
}

func TestIdealSwitchDeterministic(t *testing.T) {
	run := func() Stats {
		net, _ := buildStar(t, 8, true, 1)
		defer net.Close()
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if rng.Bernoulli(0.2) {
				d := rng.Int31n(8)
				if d == src {
					return -1
				}
				return d
			}
			return -1
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(500); err != nil {
			t.Fatal(err)
		}
		return net.Snapshot()
	}
	a, b := run(), run()
	if a.InjectedPkts != b.InjectedPkts || a.Latency.Sum != b.Latency.Sum {
		t.Fatalf("ideal switch nondeterministic: %+v vs %+v", a, b)
	}
}

func TestVCQueueRemoveAt(t *testing.T) {
	var q vcQueue
	for i := PacketRef(1); i <= 5; i++ {
		q.push(i, 4)
	}
	if q.size() != 5 || q.occ != 20 {
		t.Fatalf("size %d occ %d", q.size(), q.occ)
	}
	ref := q.removeAt(2, 4) // removes ref 3
	if ref != 3 {
		t.Fatalf("removed %d, want 3", ref)
	}
	if q.size() != 4 || q.occ != 16 {
		t.Fatalf("after remove: size %d occ %d", q.size(), q.occ)
	}
	// Remaining order must be 1,2,4,5.
	want := []PacketRef{1, 2, 4, 5}
	for i, w := range want {
		if q.at(i) != w {
			t.Fatalf("position %d: ref %d, want %d", i, q.at(i), w)
		}
	}
	// removeAt(0) behaves like pop.
	if q.removeAt(0, 4) != 1 {
		t.Fatal("removeAt(0) did not pop head")
	}
}

func TestPacketFIFOGrowth(t *testing.T) {
	var f packetFIFO
	for i := 0; i < 100; i++ {
		f.push(PacketRef(i), int64(i))
	}
	if f.len() != 100 {
		t.Fatalf("len %d", f.len())
	}
	for i := 0; i < 100; i++ {
		ref, ok := f.popReady(1 << 40)
		if !ok || ref != PacketRef(i) {
			t.Fatalf("pop %d: ok=%v ref=%v", i, ok, ref)
		}
	}
	if _, ok := f.popReady(1 << 40); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestPacketFIFOTimeGate(t *testing.T) {
	var f packetFIFO
	f.push(1, 10)
	if _, ok := f.popReady(9); ok {
		t.Fatal("packet delivered before its time")
	}
	if _, ok := f.popReady(10); !ok {
		t.Fatal("packet not delivered at its time")
	}
}

func TestCreditFIFO(t *testing.T) {
	var f creditFIFO
	for i := 0; i < 50; i++ {
		f.push(timedCredit{at: int64(i), flits: 4, vc: uint8(i % 3)})
	}
	for i := 0; i < 50; i++ {
		c, ok := f.popReady(100)
		if !ok || c.vc != uint8(i%3) {
			t.Fatalf("credit %d: %+v ok=%v", i, c, ok)
		}
	}
}
