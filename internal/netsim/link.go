package netsim

// timedPacket is a packet in flight on a link, ready for delivery at `at`.
// It holds an arena ref, not a pointer, so link pipelines are invisible to
// the garbage collector.
type timedPacket struct {
	at  int64
	ref PacketRef
}

// timedCredit is a credit message returning buffer space to the upstream
// router: `flits` flits freed on virtual channel `vc`, visible at `at`.
type timedCredit struct {
	at    int64
	flits int32
	vc    uint8
}

// packetFIFO is a growable ring buffer of timed packets with one producer
// and one consumer per simulation phase (guaranteed by the two-phase cycle).
type packetFIFO struct {
	buf  []timedPacket
	head int
	n    int
}

func (f *packetFIFO) push(ref PacketRef, at int64) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = timedPacket{ref: ref, at: at}
	f.n++
}

func (f *packetFIFO) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]timedPacket, size)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = nb
	f.head = 0
}

// popReady removes and returns the front packet's ref if it is deliverable
// at cycle `now`; ok reports whether a packet was returned.
func (f *packetFIFO) popReady(now int64) (ref PacketRef, ok bool) {
	if f.n == 0 {
		return NilRef, false
	}
	front := &f.buf[f.head]
	if front.at > now {
		return NilRef, false
	}
	ref = front.ref
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return ref, true
}

func (f *packetFIFO) len() int { return f.n }

// frontAt returns the delivery cycle of the earliest queued packet; the
// queue must be non-empty.
func (f *packetFIFO) frontAt() int64 { return f.buf[f.head].at }

// clear drops all queued packets, keeping the ring's capacity.
func (f *packetFIFO) clear() {
	f.head, f.n = 0, 0
}

// creditFIFO is the same ring-buffer structure for credit messages.
type creditFIFO struct {
	buf  []timedCredit
	head int
	n    int
}

func (f *creditFIFO) push(c timedCredit) {
	if f.n == len(f.buf) {
		size := len(f.buf) * 2
		if size == 0 {
			size = 8
		}
		nb := make([]timedCredit, size)
		for i := 0; i < f.n; i++ {
			nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
		}
		f.buf = nb
		f.head = 0
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = c
	f.n++
}

// clear drops all queued credits, keeping the ring's capacity.
func (f *creditFIFO) clear() { f.head, f.n = 0, 0 }

// frontAt returns the delivery cycle of the earliest queued credit; the
// queue must be non-empty.
func (f *creditFIFO) frontAt() int64 { return f.buf[f.head].at }

func (f *creditFIFO) popReady(now int64) (c timedCredit, ok bool) {
	if f.n == 0 {
		return timedCredit{}, false
	}
	front := &f.buf[f.head]
	if front.at > now {
		return timedCredit{}, false
	}
	c = *front
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return c, true
}

// Link is a unidirectional physical channel between two router ports.
// The data queue carries packets src→dst; the credit queue carries buffer
// credits dst→src (both with the link's delay).
type Link struct {
	ID    int32
	Src   NodeID // source router
	Dst   NodeID // destination router
	Delay int32  // cycles of wire latency
	Width int32  // flits per cycle (bandwidth)
	Class HopClass
	VCs   uint8 // virtual channels on the downstream input port
	// BufFlits is the downstream buffer depth per VC; Reset restores the
	// upstream credit counters to this value.
	BufFlits int32
	// SrcPort/DstPort are the port indices on the endpoint routers.
	SrcPort int16
	DstPort int16

	// Disabled marks a failed channel (cut cable, dead SR-LR module). Set
	// through Network.ApplyFaults before simulation starts; a disabled link
	// carries no traffic and is skipped by both cycle engines.
	Disabled bool

	data   packetFIFO
	credit creditFIFO

	// srcShard/dstShard are the shards owning the endpoint routers.
	// The data queue is produced by srcShard (allocate) and consumed by
	// dstShard (drain); the credit queue is produced by dstShard and
	// consumed by srcShard.
	srcShard int32
	dstShard int32
	// dataActive/creditActive report membership in the consumer shard's
	// active-link worklist. Each flag is set by the producer shard during
	// the allocate phase and cleared by the consumer shard during the drain
	// phase; the inter-phase barrier makes that safe without atomics.
	dataActive   bool
	creditActive bool

	// winFlits counts flits launched onto the link during the measurement
	// window (written only by the source router's shard).
	winFlits int64
}

// WindowFlits returns the flits carried during the measurement window.
func (l *Link) WindowFlits() int64 { return l.winFlits }

// InFlight returns the number of packets currently traversing the link.
func (l *Link) InFlight() int { return l.data.len() }

// serCycles returns the serialization time of size flits on this link.
func (l *Link) serCycles(size int32) int64 {
	return int64((size + l.Width - 1) / l.Width)
}
