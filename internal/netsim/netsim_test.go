package netsim

import (
	"errors"
	"testing"

	"sldf/internal/engine"
)

// buildLine constructs a line of n core routers, each a terminal of its own
// chip, with bidirectional links of the given spec. Routing goes left/right
// toward the destination on VC 0.
func buildLine(t testing.TB, n int, spec LinkSpec, opts NetworkOptions) *Network {
	t.Helper()
	b := NewBuilder()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddRouter(KindCore)
		b.Router(ids[i]).X = int16(i)
		b.AddTerminal(ids[i], int32(i), 0)
	}
	// Port layout per router: In[0]=inj? No: AddTerminal appends after links
	// only if called before Connect. Here terminals were added first, so
	// In[0]/Out[0] are the pseudo-ports and link ports follow.
	for i := 0; i+1 < n; i++ {
		b.ConnectBidi(ids[i], ids[i+1], spec)
	}
	net, err := b.Finalize(opts)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		dst := &net.Routers[p.DstNode]
		if dst.ID == r.ID {
			return int(r.EjectOut), 0
		}
		// Out ports: EjectOut=0, then right link (if any), then left link.
		// Out-port layout: Out[0]=eject; router 0 has Out[1]=right; middle
		// routers have Out[1]=left (created by ConnectBidi with the left
		// neighbour first) and Out[2]=right; the last router has Out[1]=left.
		if dst.X > r.X {
			if r.X == 0 {
				return 1, 0
			}
			return 2, 0
		}
		return 1, 0
	})
	return net
}

func TestLineDelivery(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 4, spec, NetworkOptions{Seed: 1, Workers: 1})
	defer net.Close()

	sent := false
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if !sent && src == 0 {
			sent = true
			return 3
		}
		return -1
	}), 4, DstSameIndex)

	net.StartMeasurement()
	if err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(200); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.DeliveredPkts != 1 {
		t.Fatalf("delivered %d packets, want 1", st.DeliveredPkts)
	}
	if st.Hops[HopShortReach] != 3 {
		t.Fatalf("packet took %d SR hops, want 3", st.Hops[HopShortReach])
	}
	if st.Hops[HopEject] != 1 {
		t.Fatalf("eject hops = %d, want 1", st.Hops[HopEject])
	}
	// Zero-load latency: 3 hops × (1 delay + 1 flit + alloc) + ejection
	// serialization. Must be positive and small.
	mean := st.MeanLatency()
	if mean < 6 || mean > 30 {
		t.Fatalf("unexpected zero-load latency %v", mean)
	}
}

func TestLineBidirectional(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 5, spec, NetworkOptions{Seed: 2, Workers: 1})
	defer net.Close()
	shots := map[int32]int32{0: 4, 4: 0, 2: 1}
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if now == 0 {
			if d, ok := shots[src]; ok {
				return d
			}
		}
		return -1
	}), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(300); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.DeliveredPkts != 3 {
		t.Fatalf("delivered %d, want 3", st.DeliveredPkts)
	}
}

func TestThroughputMeasurement(t *testing.T) {
	// Continuous traffic 0→1 on a 2-node line saturates at 1 flit/cycle.
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 2, spec, NetworkOptions{Seed: 3, Workers: 1})
	defer net.Close()
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if src == 0 && now%4 == 0 { // 1 flit/cycle with 4-flit packets
			return 1
		}
		return -1
	}), 4, DstSameIndex)
	if err := net.Run(200); err != nil {
		t.Fatal(err)
	}
	net.StartMeasurement()
	if err := net.Run(400); err != nil {
		t.Fatal(err)
	}
	net.StopMeasurement()
	st := net.Snapshot()
	// Both chips share the flit count; chip 0 injects 1 flit/cycle, so
	// per-chip accepted throughput is ~0.5.
	if th := st.Throughput(); th < 0.40 || th > 0.55 {
		t.Fatalf("throughput %v, want ~0.5 flits/cycle/chip", th)
	}
}

func TestBackpressureCredits(t *testing.T) {
	// Tiny buffers: only one 4-flit packet fits per VC. The source cannot
	// have more than buffer+in-flight packets outstanding toward a stalled
	// consumer... here the consumer keeps ejecting, so just verify no loss
	// and conservation under sustained load.
	spec := LinkSpec{Delay: 2, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 4}
	net := buildLine(t, 3, spec, NetworkOptions{Seed: 4, Workers: 1})
	defer net.Close()
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if src == 0 && now < 400 && now%4 == 0 {
			return 2
		}
		return -1
	}), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(400); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(2000); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	if st.InjectedPkts != st.DeliveredPkts {
		t.Fatalf("injected %d != delivered %d", st.InjectedPkts, st.DeliveredPkts)
	}
	if st.InjectedPkts != 100 {
		t.Fatalf("injected %d, want 100", st.InjectedPkts)
	}
}

func TestVCBufferNeverOverflows(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 2, BufFlits: 8}
	b := NewBuilder()
	a := b.AddRouter(KindCore)
	c := b.AddRouter(KindCore)
	b.AddTerminal(a, 0, 0)
	b.AddTerminal(c, 1, 0)
	b.ConnectBidi(a, c, spec)
	net, err := b.Finalize(NetworkOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if NodeID(p.DstNode) == r.ID {
			return int(r.EjectOut), 0
		}
		return 1, uint8(p.ID % 2) // alternate VCs
	})
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if src == 0 {
			return 1
		}
		return -1
	}), 4, DstSameIndex)
	for i := 0; i < 300; i++ {
		net.Step()
		for vc := range net.Routers[c].In[1].VCs {
			if occ := net.Routers[c].In[1].VCs[vc].occ; occ > 8 {
				t.Fatalf("cycle %d: VC %d occupancy %d exceeds buffer 8", i, vc, occ)
			}
		}
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	// Two routers each routing to the other with zero-credit-release:
	// construct an artificial cycle by routing every packet to the cross
	// link forever (never ejecting). The buffers fill, progress stops, and
	// the watchdog must fire.
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 4}
	b := NewBuilder()
	a := b.AddRouter(KindCore)
	c := b.AddRouter(KindCore)
	b.AddTerminal(a, 0, 0)
	b.AddTerminal(c, 1, 0)
	b.ConnectBidi(a, c, spec)
	net, err := b.Finalize(NetworkOptions{Seed: 6, Workers: 1, WatchdogCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		return 1, 0 // always forward, never eject: guaranteed livelock/stall
	})
	injected := 0
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if injected < 8 && src == 0 {
			injected++
			return 1
		}
		return -1
	}), 4, DstSameIndex)
	err = net.Run(5000)
	if err == nil {
		t.Fatal("expected deadlock watchdog to fire")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got error %v, want ErrDeadlock", err)
	}
}

// TestRunUntilExactCompletion pins the run-until-predicate drain: the
// returned cycle count is exactly the first cycle at which the predicate
// holds — found by comparing against manual single-Step probing — and an
// already-true predicate runs zero cycles.
func TestRunUntilExactCompletion(t *testing.T) {
	spec := LinkSpec{Delay: 3, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	build := func() *Network {
		net := buildLine(t, 4, spec, NetworkOptions{Seed: 9, Workers: 1})
		sent := false
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if !sent && src == 0 {
				sent = true
				return 3
			}
			return -1
		}), 4, DstSameIndex)
		return net
	}

	// Reference: step manually until the packet lands.
	ref := build()
	defer ref.Close()
	var want int64
	for ref.Snapshot().DeliveredPkts == 0 {
		ref.Step()
		want++
	}

	net := build()
	defer net.Close()
	ran, err := net.RunUntil(func(n *Network) bool {
		return n.Snapshot().DeliveredPkts > 0
	}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if ran != want || net.Cycle != want {
		t.Fatalf("RunUntil ran %d cycles (Cycle=%d), manual stepping needed %d", ran, net.Cycle, want)
	}
	// The predicate is already true: no further cycles may run.
	again, err := net.RunUntil(func(n *Network) bool { return n.Snapshot().DeliveredPkts > 0 }, 10_000)
	if err != nil || again != 0 {
		t.Fatalf("satisfied predicate ran %d cycles (err %v), want 0", again, err)
	}
}

func TestRunUntilCycleLimit(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 3, spec, NetworkOptions{Seed: 2, Workers: 1})
	defer net.Close()
	ran, err := net.RunUntil(func(*Network) bool { return false }, 25)
	if ran != 25 {
		t.Fatalf("ran %d cycles, want the 25-cycle bound", ran)
	}
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("got error %v, want ErrCycleLimit", err)
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) Stats {
		spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
		net := buildLine(t, 8, spec, NetworkOptions{Seed: 7, Workers: workers})
		defer net.Close()
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if rng.Bernoulli(0.05) {
				d := rng.Int31n(8)
				if d == src {
					return -1
				}
				return d
			}
			return -1
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(500); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Drain(5000); err != nil {
			t.Fatal(err)
		}
		return net.Snapshot()
	}
	a := run(1)
	b := run(4)
	if a.InjectedPkts != b.InjectedPkts || a.DeliveredPkts != b.DeliveredPkts {
		t.Fatalf("worker count changed packet counts: %+v vs %+v", a, b)
	}
	if a.Latency.Sum != b.Latency.Sum || a.Latency.Count != b.Latency.Count {
		t.Fatalf("worker count changed latency totals: %v/%v vs %v/%v",
			a.Latency.Sum, a.Latency.Count, b.Latency.Sum, b.Latency.Count)
	}
	if a.Hops != b.Hops {
		t.Fatalf("worker count changed hop counts: %v vs %v", a.Hops, b.Hops)
	}
}

func TestSerializationWidth(t *testing.T) {
	// Width-2 link should double single-flow throughput over width-1.
	measure := func(width int32) float64 {
		spec := LinkSpec{Delay: 1, Width: width, Class: HopShortReach, VCs: 1, BufFlits: 32}
		net := buildLine(t, 2, spec, NetworkOptions{Seed: 8, Workers: 1})
		defer net.Close()
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if src == 0 {
				return 1 // saturate
			}
			return -1
		}), 4, DstSameIndex)
		if err := net.Run(100); err != nil {
			t.Fatal(err)
		}
		net.StartMeasurement()
		if err := net.Run(400); err != nil {
			t.Fatal(err)
		}
		net.StopMeasurement()
		st := net.Snapshot()
		return st.Throughput() * 2 // undo per-chip averaging over 2 chips
	}
	t1 := measure(1)
	t2 := measure(2)
	if t1 < 0.9 || t1 > 1.1 {
		t.Fatalf("width-1 throughput %v, want ~1", t1)
	}
	// Width-2 is limited by the ejection port (1 packet per Size cycles),
	// so expect ~1 still at the terminal... the *link* serialization halves:
	// verify via latency instead: width 2 lowers serialization latency.
	if t2 < t1-0.1 {
		t.Fatalf("width-2 throughput %v worse than width-1 %v", t2, t1)
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Finalize(NetworkOptions{}); err == nil {
		t.Fatal("empty network must not finalize")
	}

	b = NewBuilder()
	x := b.AddRouter(KindCore)
	y := b.AddRouter(KindCore)
	b.Connect(x, y, LinkSpec{Delay: 0, Width: 1, VCs: 1, BufFlits: 8})
	if b.Err() == nil {
		t.Fatal("zero-delay link must be rejected")
	}

	b = NewBuilder()
	x = b.AddRouter(KindCore)
	b.AddTerminal(x, 0, 0)
	b.AddTerminal(x, 0, 0)
	if b.Err() == nil {
		t.Fatal("double terminal must be rejected")
	}
}

func TestChipNodeOrdering(t *testing.T) {
	b := NewBuilder()
	r0 := b.AddRouter(KindCore)
	r1 := b.AddRouter(KindCore)
	r2 := b.AddRouter(KindCore)
	b.AddTerminal(r2, 0, 0)
	b.AddTerminal(r0, 0, 0)
	b.AddTerminal(r1, 1, 0)
	b.ConnectBidi(r0, r1, LinkSpec{Delay: 1, Width: 1, VCs: 1, BufFlits: 8})
	b.ConnectBidi(r1, r2, LinkSpec{Delay: 1, Width: 1, VCs: 1, BufFlits: 8})
	net, err := b.Finalize(NetworkOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if len(net.ChipNodes) != 2 {
		t.Fatalf("chips = %d, want 2", len(net.ChipNodes))
	}
	if net.ChipNodes[0][0] != r0 || net.ChipNodes[0][1] != r2 {
		t.Fatalf("chip 0 nodes %v not sorted by router ID", net.ChipNodes[0])
	}
	if net.Routers[r0].Local != 0 || net.Routers[r2].Local != 1 {
		t.Fatal("local indices not assigned by sorted order")
	}
}

func TestHistogram(t *testing.T) {
	var h LatencyHist
	for i := int64(0); i < 1000; i++ {
		h.Add(i)
	}
	if h.Count != 1000 || h.Min != 0 || h.Max != 999 {
		t.Fatalf("bad summary: %+v", h)
	}
	if m := h.Mean(); m < 499 || m > 500 {
		t.Fatalf("mean %v, want 499.5", m)
	}
	q50 := h.Quantile(0.5)
	if q50 < 400 || q50 > 600 {
		t.Fatalf("p50 %d too far from 500", q50)
	}
	q99 := h.Quantile(0.99)
	if q99 < 900 || q99 > 1000 {
		t.Fatalf("p99 %d too far from 990", q99)
	}
}

func TestHistogramBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v = v*2 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		if low := bucketLow(idx); low > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", idx, low, v)
		}
		prev = idx
	}
}
