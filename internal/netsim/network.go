package netsim

import (
	"errors"
	"fmt"

	"sldf/internal/engine"
)

// RouteFunc computes the output port and next virtual channel for packet p
// at router r. It is called when p is at the head of an input VC; the
// decision is cached until the packet departs, so a RouteFunc may consult
// dynamic state (credits, queue depths) to make adaptive choices.
type RouteFunc func(net *Network, r *Router, p *Packet) (out int, vc uint8)

// ErrDeadlock is returned by Run when the network stops making progress
// while packets are still in flight.
var ErrDeadlock = errors.New("netsim: no progress with packets in flight (routing deadlock?)")

// DefaultWatchdogCycles is the progress-watchdog threshold used when
// NetworkOptions.WatchdogCycles is zero: after this many consecutive
// zero-progress cycles with packets in flight, Run returns ErrDeadlock
// (and the trip is counted in Stats.WatchdogTrips).
const DefaultWatchdogCycles = 10000

// Network is a complete simulated interconnection network.
//
// Hot state lives in flat, index-addressed storage: Routers and Links are
// value slices (one allocation each, walked contiguously by the engines);
// every live packet resides in the network-owned arena and is referenced
// by PacketRef from VC rings and link pipelines; each router's VC queue
// records, ring windows and output credits are packed into per-router
// backing arrays by Builder.Finalize.
type Network struct {
	Routers []Router
	// Links holds the network's channels contiguously. Link pointers
	// (InPort.Link, worklist entries) point into this slice and stay valid
	// because it is never resized after Finalize.
	Links []Link

	// ChipNodes[c] lists the injection-capable router IDs of chip c, in
	// deterministic (ascending router ID) order.
	ChipNodes [][]NodeID

	Cycle int64

	route      RouteFunc
	gen        Generator
	genBern    BernoulliGenerator // non-nil when gen supports the inlined coin flip
	packetSize int32
	dstPolicy  DstNodePolicy
	seed       uint64

	arena packetArena

	// utilScratch is the reusable top-k buffer returned by LinkUtilization.
	utilScratch []LinkUtil

	pool      *engine.Pool
	ownedPool bool
	shards    int
	shard     []shardStats
	// dataLinks[s] lists links whose destination router is in shard s;
	// creditLinks[s] lists links whose source router is in shard s. The
	// reference engine's phase A iterates these flat lists instead of
	// walking every router's ports.
	dataLinks   [][]*Link
	creditLinks [][]*Link

	// engineKind selects between the active-set engine and the full-scan
	// reference engine; active is the per-shard worklist state it uses.
	// injectors[s] statically lists the shard's injection-capable routers.
	engineKind EngineKind
	active     []shardActive
	injectors  [][]NodeID

	// Persistent phase closures (reading n.Cycle for the current time), so
	// Step allocates nothing; built once by initPhases.
	drainActiveFn, drainRefFn func(s int)
	allocActiveFn, allocRefFn func(s int)

	measuring     bool
	measStart     int64
	measEnd       int64
	idleCycles    int64 // consecutive cycles with no packet movement
	watchdogLimit int64
	watchdogTrips int64 // times the progress watchdog fired since reset

	// preAllocate, when set, runs single-threaded between the drain and
	// allocate phases of every cycle. Adaptive routing uses it to snapshot
	// congestion state that route functions may then read without races.
	preAllocate func(*Network)

	// churn is the armed fault timeline (nil on static networks — the nil
	// check is Step's only churn cost, preserving bitwise identity with
	// pre-churn builds).
	churn *churnState

	// flow is the lazily created flow-solver state (route-trace cache and
	// retained solve buffers); nil until the first flow solve. It survives
	// Reset so build-once/measure-many sweeps re-trace nothing.
	flow *flowSolver
}

// SetPreAllocate installs the per-cycle serial hook (may be nil).
func (n *Network) SetPreAllocate(f func(*Network)) { n.preAllocate = f }

// NetworkOptions configure simulation execution.
type NetworkOptions struct {
	// Seed is the master seed; every router and injector derives its own
	// deterministic stream from it.
	Seed uint64
	// Workers is the number of parallel workers (0 = GOMAXPROCS).
	Workers int
	// Pool optionally supplies a shared executor; if nil a pool is created
	// and owned by the network.
	Pool *engine.Pool
	// WatchdogCycles is the number of consecutive zero-progress cycles with
	// in-flight packets after which Run returns ErrDeadlock and increments
	// Stats.WatchdogTrips (0 selects DefaultWatchdogCycles).
	WatchdogCycles int64
	// Engine selects the cycle engine (default EngineActiveSet). Both
	// engines produce bitwise-identical statistics; EngineReference is the
	// full-scan cross-check. It can be changed later with SetEngine.
	Engine EngineKind
}

// SetTraffic installs the traffic generator. packetSize is the packet length
// in flits (paper Table IV default is 4).
func (n *Network) SetTraffic(gen Generator, packetSize int32, policy DstNodePolicy) {
	n.gen = gen
	n.genBern, _ = gen.(BernoulliGenerator)
	n.packetSize = packetSize
	n.dstPolicy = policy
}

// SetRoute installs the routing function. Any cached route traces are
// discarded: a new (or rebuilt fault-aware) RouteFunc can route every pair
// differently, and a stale path must never survive a reroute.
func (n *Network) SetRoute(f RouteFunc) {
	n.route = f
	n.flowInvalidateAll()
}

// NumChips returns the number of terminal chips.
func (n *Network) NumChips() int { return len(n.ChipNodes) }

// Router returns the router with the given ID.
func (n *Network) Router(id NodeID) *Router { return &n.Routers[id] }

// StartMeasurement opens the measurement window at the current cycle.
func (n *Network) StartMeasurement() {
	n.measuring = true
	n.measStart = n.Cycle
	n.measEnd = 1 << 62
}

// StopMeasurement closes the measurement window at the current cycle.
func (n *Network) StopMeasurement() {
	n.measEnd = n.Cycle
	n.measuring = false
}

func (n *Network) inWindow(cycle int64) bool {
	return cycle >= n.measStart && cycle < n.measEnd
}

// deliver records an ejected packet and recycles its arena slot; called
// from router allocation on the given shard.
func (n *Network) deliver(shard int, ref PacketRef, p *Packet) {
	ss := &n.shard[shard]
	ss.deliveredPkts++
	if n.measStart != 0 || n.measuring || n.measEnd != 0 {
		if n.inWindow(p.DeliveredAt) {
			ss.winFlits += int64(p.Size)
		}
		if p.CreatedAt >= n.measStart && p.CreatedAt < n.measEnd {
			ss.winPkts++
			lat := p.DeliveredAt - p.CreatedAt
			ss.lat.Add(lat)
			ss.winNetLatSum += p.DeliveredAt - p.InjectedAt
			for c := 0; c < int(NumHopClasses); c++ {
				ss.winHops[c] += int64(p.Hops[c])
			}
		}
	}
	ss.free = append(ss.free, ref)
}

// generate creates this cycle's new packets for every injection node of the
// shard. act is the shard's active set (nil under the reference engine);
// both engines visit the same injectors in the same ascending-ID order, so
// packet sequence numbers and RNG draws are identical. Bernoulli-style
// generators get their coin flip inlined (the dominant per-cycle generator
// cost); the dynamic Dest call is paid only for winning flips.
func (n *Network) generate(shard int, now int64, act *shardActive) {
	if n.gen == nil {
		return
	}
	if g := n.genBern; g != nil {
		prob, thresh := g.InjectionRate()
		if prob <= 0 {
			return
		}
		always := prob >= 1
		for _, id := range n.injectors[shard] {
			r := &n.Routers[id]
			if !always && !r.RNG.Hit(thresh) {
				continue
			}
			if dst := g.Dest(now, r.Chip, int(r.Local), &r.RNG); dst >= 0 {
				n.admit(shard, r, dst, now, act)
			}
		}
		return
	}
	for _, id := range n.injectors[shard] {
		r := &n.Routers[id]
		if dst := n.gen.NextDest(now, r.Chip, int(r.Local), &r.RNG); dst >= 0 {
			n.admit(shard, r, dst, now, act)
		}
	}
}

// admit queues one new packet from r's terminal toward chip dst.
func (n *Network) admit(shard int, r *Router, dst int32, now int64, act *shardActive) {
	ss := &n.shard[shard]
	if len(n.ChipNodes[dst]) == 0 {
		// Churn killed the destination chip's last terminal under a
		// generator that still targets it: refuse the packet at the source.
		// Never reached on static networks (dead chips are filtered out of
		// traffic patterns at build time).
		ss.refusedPkts++
		return
	}
	nodeIdx := int(r.Local)
	ref, p := n.allocPacket(shard)
	ss.pktSeq++
	p.ID = uint64(shard)<<48 | ss.pktSeq
	p.Aux, p.Aux2 = -1, -1
	p.SrcChip = r.Chip
	p.DstChip = dst
	p.SrcNode = r.ID
	p.DstNode = n.destNode(dst, nodeIdx, &r.RNG)
	p.Size = n.packetSize
	p.CreatedAt = now
	ss.injectedPkts++
	ip := &r.In[r.InjIn]
	if ip.VCs[0].empty() {
		if ip.occMask == 0 {
			r.occPorts |= 1 << uint(r.InjIn)
		}
		ip.occMask |= 1
		r.active++
	}
	ip.VCs[0].push(ref, p.Size)
	r.nextAlloc = 0
	if act != nil {
		act.routers.Add(int(r.ID) - act.lo)
	}
}

// destNode picks the receiving router on the destination chip.
func (n *Network) destNode(dstChip int32, srcNodeIdx int, rng *engine.RNG) NodeID {
	nodes := n.ChipNodes[dstChip]
	switch n.dstPolicy {
	case DstRandom:
		return nodes[rng.Intn(len(nodes))]
	default:
		return nodes[srcNodeIdx%len(nodes)]
	}
}

// drainDataLink delivers every deliverable packet of l into its
// destination router's VC buffers, maintaining the occupancy bookkeeping.
// Shared by both cycle engines so their per-event semantics cannot
// diverge; act is the destination shard's active set (nil under the
// reference engine).
func (n *Network) drainDataLink(l *Link, now int64, act *shardActive) {
	r := &n.Routers[l.Dst]
	ip := &r.In[l.DstPort]
	for {
		ref, ok := l.data.popReady(now)
		if !ok {
			break
		}
		p := n.arena.at(ref)
		q := &ip.VCs[p.VC]
		if q.empty() {
			if ip.occMask == 0 {
				r.occPorts |= 1 << uint(l.DstPort)
			}
			ip.occMask |= 1 << p.VC
			r.active++
		}
		q.push(ref, p.Size)
		r.nextAlloc = 0
		if act != nil {
			act.routers.Add(int(l.Dst) - act.lo)
		}
	}
}

// drainCreditLink returns every arrived credit of l to its source router's
// output port, reporting whether any credit was returned. Shared by both
// cycle engines.
func (n *Network) drainCreditLink(l *Link, now int64) bool {
	src := &n.Routers[l.Src]
	op := &src.Out[l.SrcPort]
	drained := false
	for {
		c, ok := l.credit.popReady(now)
		if !ok {
			break
		}
		op.Credits[c.vc] += c.flits
		drained = true
	}
	if drained {
		src.nextAlloc = 0
	}
	return drained
}

// drainShard delivers arrived packets and returned credits for shard s:
// data to the destination routers' VC buffers, credits to the source
// routers' output ports. Each link queue has exactly one consumer shard.
func (n *Network) drainShard(s int, now int64) {
	for _, l := range n.dataLinks[s] {
		if l.data.n != 0 {
			n.drainDataLink(l, now, nil)
		}
	}
	for _, l := range n.creditLinks[s] {
		if l.credit.n != 0 {
			n.drainCreditLink(l, now)
		}
	}
}

// initPhases builds the persistent per-phase closures once, so Step itself
// allocates nothing. The closures read n.Cycle for the current time: it is
// only advanced between phases, and the pool barrier publishes it to the
// worker goroutines.
func (n *Network) initPhases() {
	//sldf:hotpath
	n.drainActiveFn = func(s int) {
		n.mergeActivations(s)
		n.drainShardActive(s, n.Cycle)
	}
	//sldf:hotpath
	n.drainRefFn = func(s int) {
		n.drainShard(s, n.Cycle)
	}
	//sldf:hotpath
	n.allocActiveFn = func(s int) {
		n.allocShardActive(s, n.Cycle)
	}
	//sldf:hotpath
	n.allocRefFn = func(s int) {
		now := n.Cycle
		lo, hi := engine.ShardBounds(len(n.Routers), n.shards, s)
		n.generate(s, now, nil)
		moved := 0
		for id := lo; id < hi; id++ {
			moved += n.Routers[id].allocate(n, now, s, nil)
		}
		n.shard[s].moved = int64(moved)
	}
}

// Step advances the simulation by one cycle: a drain phase delivering link
// traffic, an optional serial hook, and an allocate phase moving packets.
// The active-set engine runs both phases over per-shard worklists; the
// reference engine walks every link and router.
//
//sldf:hotpath
func (n *Network) Step() {
	if n.churn != nil {
		n.applyDueChurn()
	}
	drain, alloc := n.drainActiveFn, n.allocActiveFn
	if n.engineKind != EngineActiveSet {
		drain, alloc = n.drainRefFn, n.allocRefFn
	}
	n.pool.Run(n.shards, drain)
	if n.preAllocate != nil {
		n.preAllocate(n)
	}
	n.pool.Run(n.shards, alloc)
	var moved int64
	for s := range n.shard {
		moved += n.shard[s].moved
	}
	if moved == 0 && n.InFlight() > 0 {
		n.idleCycles++
	} else {
		n.idleCycles = 0
	}
	n.Cycle++
}

// Run advances the simulation by `cycles` cycles, returning ErrDeadlock if
// the progress watchdog trips.
func (n *Network) Run(cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		n.Step()
		if err := n.ChurnErr(); err != nil {
			return err
		}
		if n.idleCycles >= n.watchdogLimit {
			n.watchdogTrips++
			n.idleCycles = 0
			return fmt.Errorf("%w: cycle %d, %d packets in flight",
				ErrDeadlock, n.Cycle, n.InFlight())
		}
	}
	return nil
}

// ErrCycleLimit is returned (wrapped) by RunUntil when the predicate is
// still false after maxCycles cycles.
var ErrCycleLimit = errors.New("netsim: cycle limit reached before completion")

// RunUntil advances the simulation one cycle at a time until done reports
// true, and returns the exact number of cycles advanced. The predicate is
// evaluated before the first step (an already-satisfied condition runs zero
// cycles) and again after every Step, so completion is detected at its
// precise cycle — unlike polling between fixed-size Run batches, which
// quantizes the observed completion up to the batch length. Both cycle
// engines are served by the same path (Step dispatches internally), so a
// makespan measured under the active-set engine is bitwise identical to the
// full-scan reference.
//
// If the predicate is still false after maxCycles cycles, RunUntil returns
// maxCycles and an error wrapping ErrCycleLimit; if the progress watchdog
// trips first it returns the cycles run and ErrDeadlock, exactly as Run
// does. This is the primitive behind step-barriered collective execution
// (internal/collective) and fixed-volume makespan measurements.
func (n *Network) RunUntil(done func(*Network) bool, maxCycles int64) (int64, error) {
	for ran := int64(0); ; ran++ {
		if done(n) {
			return ran, nil
		}
		if ran >= maxCycles {
			return ran, fmt.Errorf("%w: predicate still false after %d cycles (%d packets in flight)",
				ErrCycleLimit, maxCycles, n.InFlight())
		}
		n.Step()
		if err := n.ChurnErr(); err != nil {
			return ran + 1, err
		}
		if n.idleCycles >= n.watchdogLimit {
			n.watchdogTrips++
			n.idleCycles = 0
			return ran + 1, fmt.Errorf("%w: cycle %d, %d packets in flight",
				ErrDeadlock, n.Cycle, n.InFlight())
		}
	}
}

// Drain runs with traffic generation disabled until all in-flight packets
// are delivered or maxCycles elapse. It returns the number of cycles run.
func (n *Network) Drain(maxCycles int64) (int64, error) {
	savedGen := n.gen
	n.gen = nil
	defer func() { n.gen = savedGen }()
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 {
			return i, nil
		}
		n.Step()
		if err := n.ChurnErr(); err != nil {
			return i, err
		}
		if n.idleCycles >= n.watchdogLimit {
			n.watchdogTrips++
			n.idleCycles = 0
			return i, fmt.Errorf("%w: during drain at cycle %d, %d in flight",
				ErrDeadlock, n.Cycle, n.InFlight())
		}
	}
	if n.InFlight() > 0 {
		return maxCycles, fmt.Errorf("netsim: drain incomplete after %d cycles, %d in flight",
			maxCycles, n.InFlight())
	}
	return maxCycles, nil
}

// InFlight returns the number of packets injected but not yet delivered or
// dropped by churn.
func (n *Network) InFlight() int64 {
	var inj, done int64
	for s := range n.shard {
		inj += n.shard[s].injectedPkts
		done += n.shard[s].deliveredPkts + n.shard[s].droppedPkts
	}
	return inj - done
}

// Snapshot merges per-shard counters into a Stats value. Cycles is the
// measurement window length observed so far.
func (n *Network) Snapshot() Stats {
	var st Stats
	end := n.measEnd
	if n.measuring || end > n.Cycle {
		end = n.Cycle
	}
	st.Cycles = end - n.measStart
	st.Chips = len(n.ChipNodes)
	st.WatchdogTrips = n.watchdogTrips
	for s := range n.shard {
		ss := &n.shard[s]
		st.InjectedPkts += ss.injectedPkts
		st.DeliveredPkts += ss.deliveredPkts
		st.DroppedPkts += ss.droppedPkts
		st.RetriedPkts += ss.retriedPkts
		st.RefusedPkts += ss.refusedPkts
		st.WindowFlits += ss.winFlits
		st.WindowPkts += ss.winPkts
		st.NetLatencySum += ss.winNetLatSum
		for c := 0; c < int(NumHopClasses); c++ {
			st.Hops[c] += ss.winHops[c]
		}
		st.Latency.Merge(&ss.lat)
	}
	st.InFlightPkts = st.InjectedPkts - st.DeliveredPkts - st.DroppedPkts
	return st
}

// Close releases the worker pool if the network owns it, along with the
// flow solver's pool when one was created.
func (n *Network) Close() {
	if n.ownedPool && n.pool != nil {
		n.pool.Close()
	}
	if n.flow != nil && n.flow.pool != nil {
		n.flow.pool.Close()
		n.flow.pool = nil
	}
}
