package netsim

import (
	"errors"
	"fmt"

	"sldf/internal/engine"
)

// RouteFunc computes the output port and next virtual channel for packet p
// at router r. It is called when p is at the head of an input VC; the
// decision is cached until the packet departs, so a RouteFunc may consult
// dynamic state (credits, queue depths) to make adaptive choices.
type RouteFunc func(net *Network, r *Router, p *Packet) (out int, vc uint8)

// ErrDeadlock is returned by Run when the network stops making progress
// while packets are still in flight.
var ErrDeadlock = errors.New("netsim: no progress with packets in flight (routing deadlock?)")

// Network is a complete simulated interconnection network.
type Network struct {
	Routers []Router
	Links   []*Link

	// ChipNodes[c] lists the injection-capable router IDs of chip c, in
	// deterministic (ascending router ID) order.
	ChipNodes [][]NodeID

	Cycle int64

	route      RouteFunc
	gen        Generator
	packetSize int32
	dstPolicy  DstNodePolicy
	seed       uint64

	pool      *engine.Pool
	ownedPool bool
	shards    int
	shard     []shardStats
	// dataLinks[s] lists links whose destination router is in shard s;
	// creditLinks[s] lists links whose source router is in shard s. Phase A
	// iterates these flat lists instead of walking every router's ports.
	dataLinks   [][]*Link
	creditLinks [][]*Link

	measuring     bool
	measStart     int64
	measEnd       int64
	idleCycles    int64 // consecutive cycles with no packet movement
	watchdogLimit int64

	// preAllocate, when set, runs single-threaded between the drain and
	// allocate phases of every cycle. Adaptive routing uses it to snapshot
	// congestion state that route functions may then read without races.
	preAllocate func(*Network)
}

// SetPreAllocate installs the per-cycle serial hook (may be nil).
func (n *Network) SetPreAllocate(f func(*Network)) { n.preAllocate = f }

// NetworkOptions configure simulation execution.
type NetworkOptions struct {
	// Seed is the master seed; every router and injector derives its own
	// deterministic stream from it.
	Seed uint64
	// Workers is the number of parallel workers (0 = GOMAXPROCS).
	Workers int
	// Pool optionally supplies a shared executor; if nil a pool is created
	// and owned by the network.
	Pool *engine.Pool
	// WatchdogCycles is the number of consecutive zero-progress cycles with
	// in-flight packets after which Run returns ErrDeadlock (0 = 10000).
	WatchdogCycles int64
}

// SetTraffic installs the traffic generator. packetSize is the packet length
// in flits (paper Table IV default is 4).
func (n *Network) SetTraffic(gen Generator, packetSize int32, policy DstNodePolicy) {
	n.gen = gen
	n.packetSize = packetSize
	n.dstPolicy = policy
}

// SetRoute installs the routing function.
func (n *Network) SetRoute(f RouteFunc) { n.route = f }

// NumChips returns the number of terminal chips.
func (n *Network) NumChips() int { return len(n.ChipNodes) }

// Router returns the router with the given ID.
func (n *Network) Router(id NodeID) *Router { return &n.Routers[id] }

// StartMeasurement opens the measurement window at the current cycle.
func (n *Network) StartMeasurement() {
	n.measuring = true
	n.measStart = n.Cycle
	n.measEnd = 1 << 62
}

// StopMeasurement closes the measurement window at the current cycle.
func (n *Network) StopMeasurement() {
	n.measEnd = n.Cycle
	n.measuring = false
}

func (n *Network) inWindow(cycle int64) bool {
	return cycle >= n.measStart && cycle < n.measEnd
}

// deliver records an ejected packet; called from router allocation on the
// given shard.
func (n *Network) deliver(shard int, p *Packet) {
	ss := &n.shard[shard]
	ss.deliveredPkts++
	if n.measStart != 0 || n.measuring || n.measEnd != 0 {
		if n.inWindow(p.DeliveredAt) {
			ss.winFlits += int64(p.Size)
		}
		if p.CreatedAt >= n.measStart && p.CreatedAt < n.measEnd {
			ss.winPkts++
			lat := p.DeliveredAt - p.CreatedAt
			ss.lat.Add(lat)
			ss.winNetLatSum += p.DeliveredAt - p.InjectedAt
			for c := 0; c < int(NumHopClasses); c++ {
				ss.winHops[c] += int64(p.Hops[c])
			}
		}
	}
	ss.free.put(p)
}

// generate creates this cycle's new packets for every injection node of the
// routers in [lo, hi).
func (n *Network) generate(shard, lo, hi int, now int64) {
	if n.gen == nil {
		return
	}
	ss := &n.shard[shard]
	for id := lo; id < hi; id++ {
		r := &n.Routers[id]
		if r.InjIn < 0 || r.Chip < 0 {
			continue
		}
		nodeIdx := int(r.Local)
		dst := n.gen.NextDest(now, r.Chip, nodeIdx, &r.RNG)
		if dst < 0 {
			continue
		}
		p := ss.free.get()
		ss.pktSeq++
		p.ID = uint64(shard)<<48 | ss.pktSeq
		p.Aux, p.Aux2 = -1, -1
		p.SrcChip = r.Chip
		p.DstChip = dst
		p.SrcNode = r.ID
		p.DstNode = n.destNode(dst, nodeIdx, &r.RNG)
		p.Size = n.packetSize
		p.CreatedAt = now
		ss.injectedPkts++
		ip := &r.In[r.InjIn]
		if ip.VCs[0].empty() {
			ip.occMask |= 1
			r.active++
		}
		ip.VCs[0].push(p)
		r.nextAlloc = 0
	}
}

// destNode picks the receiving router on the destination chip.
func (n *Network) destNode(dstChip int32, srcNodeIdx int, rng *engine.RNG) NodeID {
	nodes := n.ChipNodes[dstChip]
	switch n.dstPolicy {
	case DstRandom:
		return nodes[rng.Intn(len(nodes))]
	default:
		return nodes[srcNodeIdx%len(nodes)]
	}
}

// drainShard delivers arrived packets and returned credits for shard s:
// data to the destination routers' VC buffers, credits to the source
// routers' output ports. Each link queue has exactly one consumer shard.
func (n *Network) drainShard(s int, now int64) {
	for _, l := range n.dataLinks[s] {
		if l.data.n == 0 {
			continue
		}
		r := &n.Routers[l.Dst]
		ip := &r.In[l.DstPort]
		for {
			tp, ok := l.data.popReady(now)
			if !ok {
				break
			}
			q := &ip.VCs[tp.p.VC]
			if q.empty() {
				ip.occMask |= 1 << tp.p.VC
				r.active++
			}
			q.push(tp.p)
			r.nextAlloc = 0
		}
	}
	for _, l := range n.creditLinks[s] {
		if l.credit.n == 0 {
			continue
		}
		src := &n.Routers[l.Src]
		op := &src.Out[l.SrcPort]
		drained := false
		for {
			c, ok := l.credit.popReady(now)
			if !ok {
				break
			}
			op.Credits[c.vc] += c.flits
			drained = true
		}
		if drained {
			src.nextAlloc = 0
		}
	}
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	now := n.Cycle
	n.pool.Run(n.shards, func(s int) {
		n.drainShard(s, now)
	})
	if n.preAllocate != nil {
		n.preAllocate(n)
	}
	n.pool.Run(n.shards, func(s int) {
		lo, hi := engine.ShardBounds(len(n.Routers), n.shards, s)
		n.generate(s, lo, hi, now)
		moved := 0
		for id := lo; id < hi; id++ {
			moved += n.Routers[id].allocate(n, now, s)
		}
		n.shard[s].moved = int64(moved)
	})
	var moved int64
	for s := range n.shard {
		moved += n.shard[s].moved
	}
	if moved == 0 && n.InFlight() > 0 {
		n.idleCycles++
	} else {
		n.idleCycles = 0
	}
	n.Cycle++
}

// Run advances the simulation by `cycles` cycles, returning ErrDeadlock if
// the progress watchdog trips.
func (n *Network) Run(cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		n.Step()
		if n.idleCycles >= n.watchdogLimit {
			return fmt.Errorf("%w: cycle %d, %d packets in flight",
				ErrDeadlock, n.Cycle, n.InFlight())
		}
	}
	return nil
}

// Drain runs with traffic generation disabled until all in-flight packets
// are delivered or maxCycles elapse. It returns the number of cycles run.
func (n *Network) Drain(maxCycles int64) (int64, error) {
	savedGen := n.gen
	n.gen = nil
	defer func() { n.gen = savedGen }()
	for i := int64(0); i < maxCycles; i++ {
		if n.InFlight() == 0 {
			return i, nil
		}
		n.Step()
		if n.idleCycles >= n.watchdogLimit {
			return i, fmt.Errorf("%w: during drain at cycle %d, %d in flight",
				ErrDeadlock, n.Cycle, n.InFlight())
		}
	}
	if n.InFlight() > 0 {
		return maxCycles, fmt.Errorf("netsim: drain incomplete after %d cycles, %d in flight",
			maxCycles, n.InFlight())
	}
	return maxCycles, nil
}

// InFlight returns the number of packets injected but not yet delivered.
func (n *Network) InFlight() int64 {
	var inj, del int64
	for s := range n.shard {
		inj += n.shard[s].injectedPkts
		del += n.shard[s].deliveredPkts
	}
	return inj - del
}

// Snapshot merges per-shard counters into a Stats value. Cycles is the
// measurement window length observed so far.
func (n *Network) Snapshot() Stats {
	var st Stats
	end := n.measEnd
	if n.measuring || end > n.Cycle {
		end = n.Cycle
	}
	st.Cycles = end - n.measStart
	st.Chips = len(n.ChipNodes)
	for s := range n.shard {
		ss := &n.shard[s]
		st.InjectedPkts += ss.injectedPkts
		st.DeliveredPkts += ss.deliveredPkts
		st.WindowFlits += ss.winFlits
		st.WindowPkts += ss.winPkts
		st.NetLatencySum += ss.winNetLatSum
		for c := 0; c < int(NumHopClasses); c++ {
			st.Hops[c] += ss.winHops[c]
		}
		st.Latency.Merge(&ss.lat)
	}
	st.InFlightPkts = st.InjectedPkts - st.DeliveredPkts
	return st
}

// Close releases the worker pool if the network owns it.
func (n *Network) Close() {
	if n.ownedPool && n.pool != nil {
		n.pool.Close()
	}
}
