// Package netsim is a cycle-accurate interconnection-network simulator.
//
// It models virtual-channel routers with credit-based flow control and
// virtual cut-through switching at packet granularity with flit-level buffer
// and bandwidth accounting, the standard compromise used by fast network
// simulators (the paper's CNSim works at the same abstraction level). Every
// structure is deterministic: same topology + same seed gives bit-identical
// results regardless of how many worker goroutines step the network.
//
// The package is topology-agnostic. Topology packages build the router/link
// graph through a Builder; routing packages provide a RouteFunc; traffic
// packages provide Generators. The core package wires them together.
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package netsim

import "sldf/internal/engine"

// NodeID identifies a router in the network.
type NodeID = int32

// HopClass classifies a physical channel by medium, which determines its
// latency/energy characteristics (paper Table II).
type HopClass uint8

const (
	// HopOnChip is a network-on-chip hop inside one chiplet (~1 ns, 0.1 pJ/bit).
	HopOnChip HopClass = iota
	// HopShortReach is an on-wafer short-reach hop or an SR-LR conversion hop
	// (~5 ns, ~2 pJ/bit).
	HopShortReach
	// HopLongLocal is a long-reach intra-group cable hop (~150 ns, 20+ pJ/bit).
	HopLongLocal
	// HopGlobal is a long-reach inter-group (optical) hop (~150 ns+ToF, 20+ pJ/bit).
	HopGlobal
	// HopEject is the terminal ejection pseudo-hop; it carries no energy cost.
	HopEject
	// NumHopClasses is the number of hop classes.
	NumHopClasses
)

// String returns a short name for the hop class.
func (c HopClass) String() string {
	switch c {
	case HopOnChip:
		return "onchip"
	case HopShortReach:
		return "sr"
	case HopLongLocal:
		return "local"
	case HopGlobal:
		return "global"
	case HopEject:
		return "eject"
	}
	return "unknown"
}

// Packet is a network packet. A packet occupies Size flits of buffer space
// and serializes over a link in ceil(Size/width) cycles. Routing state
// (Phase, Aux, Aux2) is owned by the routing algorithm in use.
//
// Live packets reside in the network's arena (see PacketRef): queues and
// link pipelines address them by index, while RouteFuncs and the cycle
// engines work through stable *Packet handles into the arena's chunks.
type Packet struct {
	ID      uint64
	SrcChip int32 // injecting chip (terminal endpoint)
	DstChip int32 // destination chip
	SrcNode NodeID
	DstNode NodeID
	Size    int32

	CreatedAt   int64 // cycle the packet entered the source queue
	InjectedAt  int64 // cycle the packet left the source queue into the network
	DeliveredAt int64 // cycle the packet's tail left the ejection port

	// VC is the virtual channel the packet currently occupies.
	VC uint8
	// Phase is routing-algorithm state (e.g. which leg of Algorithm 1 the
	// packet is on). Its meaning is owned by the RouteFunc.
	Phase uint8
	// Aux and Aux2 are routing-algorithm scratch (e.g. the Valiant
	// intermediate W-group, or the chosen entry node).
	Aux  int32
	Aux2 int32

	// Hops counts traversed channels by class for energy accounting.
	Hops [NumHopClasses]uint16

	// TraceRNG, when non-nil, replaces the visited routers' RNG streams for
	// this packet's routing decisions. Cycle engines never set it — their
	// packets draw from the per-router streams exactly as before. The flow
	// engine's phantom route traces set it to a stream derived from the
	// (source node, destination node) pair, which makes every trace a pure
	// function of the network state: independent of trace order, safe to run
	// concurrently, and reusable from the route-trace cache with bit-exact
	// results.
	TraceRNG *engine.RNG
}

// RouteRNG returns the stream a RouteFunc must draw from when making a
// randomized decision for p at router r: the packet's trace stream when
// set, otherwise the router's own stream.
func (p *Packet) RouteRNG(r *Router) *engine.RNG {
	if p.TraceRNG != nil {
		return p.TraceRNG
	}
	return &r.RNG
}

// TotalHops returns the number of network hops taken (excluding ejection).
func (p *Packet) TotalHops() int {
	n := 0
	for c := HopClass(0); c < HopEject; c++ {
		n += int(p.Hops[c])
	}
	return n
}
