package netsim

import "sldf/internal/engine"

// Reset restores the network to its just-finalized state: cycle zero, empty
// router queues and link pipelines, full credit buffers, per-router RNG
// streams re-derived from the seed, and all statistics cleared. The
// installed routing function, pre-allocate hook and worker pool are kept,
// while the traffic generator is removed (as after Finalize). A reset
// network behaves bitwise identically to a freshly built one, which lets a
// sweep reuse one construction for every load point of a series. Packets
// still in flight are discarded; per-shard free lists are kept so their
// buffers are recycled.
func (n *Network) Reset() {
	for i := range n.Routers {
		r := &n.Routers[i]
		for in := range r.In {
			ip := &r.In[in]
			ip.busyUntil = 0
			ip.occMask = 0
			for vc := range ip.VCs {
				ip.VCs[vc].clear()
			}
		}
		for o := range r.Out {
			op := &r.Out[o]
			op.busyUntil = 0
			op.rr = 0
			if op.Link != nil {
				for vc := range op.Credits {
					op.Credits[vc] = op.Link.BufFlits
				}
			}
		}
		r.active = 0
		r.occPorts = 0
		r.nextAlloc = 0
		// Grant epochs restart with the cycle counter: zero every slot so a
		// stale pre-reset epoch can never collide with a fresh now+1.
		for g := range r.granted {
			r.granted[g] = 0
		}
		r.RNG = engine.NewRNGStream(n.seed, uint64(i))
	}
	for i := range n.Links {
		// Keep the ring buffers' capacity so a reset network reaches its
		// steady state without re-growing them.
		l := &n.Links[i]
		l.data.clear()
		l.credit.clear()
		l.winFlits = 0
		l.dataActive = false
		l.creditActive = false
	}
	for s := range n.shard {
		free := n.shard[s].free
		n.shard[s] = shardStats{free: free}
	}
	// Rebuild the free lists from the whole arena: dropping in-flight packets
	// above released their queue slots without returning their refs, and
	// reclaim puts every slot back in circulation (reusing list capacity, so
	// steady-state resets allocate nothing).
	n.arena.reclaim(n.shard)
	for s := range n.active {
		n.active[s].clear()
	}
	n.Cycle = 0
	n.gen = nil
	n.genBern = nil
	n.measuring = false
	n.measStart = 0
	n.measEnd = 0
	n.idleCycles = 0
	n.watchdogTrips = 0
	// An armed fault timeline rewinds with the network: the build-time
	// fault state is restored and the event cursor returns to the first
	// event, so a reset mid-churn network is bitwise identical to a fresh
	// build with the same timeline.
	if n.churn != nil {
		n.resetChurn()
	}
}

// clear empties the VC queue and invalidates its cached routing decision,
// dropping any packet refs it still holds. The ring keeps its backing slice
// (refs are integers; nothing is retained for the GC).
func (v *vcQueue) clear() {
	v.head = 0
	v.n = 0
	v.occ = 0
	v.routed = false
}
