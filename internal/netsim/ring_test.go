package netsim

import (
	"testing"
	"testing/quick"

	"sldf/internal/engine"
)

// buildRing constructs a unidirectional ring of n cores with the classic
// dateline VC discipline: packets travel clockwise on VC0 and switch to VC1
// after crossing the wrap-around link out of node n-1, which breaks the
// ring's channel dependency cycle.
func buildRing(t testing.TB, n int) *Network {
	t.Helper()
	b := NewBuilder()
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopOnChip, VCs: 2, BufFlits: 16}
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddRouter(KindCore)
		b.Router(ids[i]).X = int16(i)
		b.AddTerminal(ids[i], int32(i), 0)
	}
	for i := 0; i < n; i++ {
		b.Connect(ids[i], ids[(i+1)%n], spec)
	}
	net, err := b.Finalize(NetworkOptions{Seed: 21, Workers: 1, WatchdogCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	net.SetRoute(func(net *Network, r *Router, p *Packet) (int, uint8) {
		if r.ID == p.DstNode {
			return int(r.EjectOut), 0
		}
		// Out port 1 is the clockwise ring link (0 is ejection).
		vc := p.VC
		if int(r.X) == n-1 {
			vc = 1 // crossing the dateline
		}
		if p.SrcNode == r.ID {
			vc = 0
			if int(r.X) == n-1 {
				vc = 1
			}
		}
		return 1, vc
	})
	return net
}

func TestRingDatelineConservation(t *testing.T) {
	f := func(nRaw, seedRaw uint8) bool {
		n := int(nRaw%10) + 3
		net := buildRing(t, n)
		defer net.Close()
		rate := 0.15
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if now < 300 && rng.Bernoulli(rate) {
				d := rng.Int31n(int32(n))
				if d == src {
					return -1
				}
				return d
			}
			return -1
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(300); err != nil {
			return false
		}
		if _, err := net.Drain(5000); err != nil {
			return false
		}
		st := net.Snapshot()
		return st.InjectedPkts == st.DeliveredPkts && st.InFlightPkts == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingSaturatedNoDeadlock(t *testing.T) {
	// Full-pressure all-to-all on the ring must keep flowing thanks to the
	// dateline VC; without it this pattern wedges (the watchdog proves the
	// machinery can tell the difference — see TestDeadlockWatchdog).
	net := buildRing(t, 8)
	defer net.Close()
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		d := rng.Int31n(8)
		if d == src {
			return -1
		}
		return d
	}), 4, DstSameIndex)
	net.StartMeasurement()
	if err := net.Run(3000); err != nil {
		t.Fatal(err)
	}
	st := net.Snapshot()
	// Theoretical ceiling: 8 links × 1 flit/cycle / 4 mean hops ≈ 0.5
	// packets/cycle; sustained progress at ≥40% of it shows no wedging.
	if st.DeliveredPkts < 600 {
		t.Fatalf("only %d packets delivered under saturation", st.DeliveredPkts)
	}
}

func TestRingLatencyScalesWithDistance(t *testing.T) {
	// One-shot packets over increasing distances: latency must increase
	// monotonically with hop count.
	n := 9
	var prev float64
	for dist := 1; dist <= 4; dist++ {
		net := buildRing(t, n)
		sent := false
		d := dist
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if !sent && src == 0 {
				sent = true
				return int32(d)
			}
			return -1
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(5); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Drain(500); err != nil {
			t.Fatal(err)
		}
		st := net.Snapshot()
		lat := st.MeanLatency()
		if lat <= prev {
			t.Fatalf("latency %v at distance %d not above %v", lat, dist, prev)
		}
		prev = lat
		net.Close()
	}
}
