package netsim

import (
	"math/bits"

	"sldf/internal/engine"
)

// RouterKind tags a router with its architectural role so routing functions
// can dispatch without topology-specific router types.
type RouterKind uint8

const (
	// KindCore is an on-chip NoC router that hosts a terminal (a core of a
	// chiplet in the switch-less Dragonfly, or a plain mesh node).
	KindCore RouterKind = iota
	// KindNIC is a terminal network interface in switch-based topologies:
	// one injection/ejection point with a single uplink.
	KindNIC
	// KindSwitch is a high-radix non-blocking switch.
	KindSwitch
	// KindPort is an SR-LR conversion module at the edge of a C-group: a
	// two-port pass-through node (paper Fig. 5/9).
	KindPort
)

// String returns a short name for the router kind.
func (k RouterKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindNIC:
		return "nic"
	case KindSwitch:
		return "switch"
	case KindPort:
		return "port"
	}
	return "unknown"
}

// vcQueue is one virtual channel of an input port: a FIFO ring of packet
// refs (virtual cut-through moves whole packets) with a cached routing
// decision for the head packet. Network VCs start on a slice of the owning
// router's shared ring backing (see Builder.Finalize), so a router's queue
// state is contiguous in memory; a queue that outgrows its initial window —
// or the unbounded injection pseudo-queue, which starts empty — falls back
// to its own ring, doubling as needed and keeping the capacity forever.
type vcQueue struct {
	buf  []PacketRef
	head int32
	n    int32
	// occ is the flits currently occupied in this VC's buffer.
	occ int32
	// cached head routing decision; routed=false after any head change.
	routed  bool
	outPort int16
	outVC   uint8
}

//sldf:hotpath
func (v *vcQueue) empty() bool { return v.n == 0 }

func (v *vcQueue) size() int { return int(v.n) }

//sldf:hotpath
func (v *vcQueue) front() PacketRef { return v.buf[v.head] }

// at returns the i-th queued ref (0 = head).
//
//sldf:hotpath
func (v *vcQueue) at(i int) PacketRef {
	j := v.head + int32(i)
	if int(j) >= len(v.buf) {
		j -= int32(len(v.buf))
	}
	return v.buf[j]
}

// push appends a packet of the given flit size to the tail.
//
//sldf:hotpath
func (v *vcQueue) push(ref PacketRef, size int32) {
	if int(v.n) == len(v.buf) {
		v.grow()
	}
	j := v.head + v.n
	if int(j) >= len(v.buf) {
		j -= int32(len(v.buf))
	}
	v.buf[j] = ref
	v.n++
	v.occ += size
}

// grow moves the ring onto a private doubled buffer, unwrapping it. The
// old window (possibly shared router backing) is simply abandoned.
func (v *vcQueue) grow() {
	nc := 2 * len(v.buf)
	if nc < 8 {
		nc = 8
	}
	nb := make([]PacketRef, nc)
	for i := 0; i < int(v.n); i++ {
		nb[i] = v.at(i)
	}
	v.buf = nb
	v.head = 0
}

// pop removes and returns the head ref; size must be the head packet's
// flit count (the caller holds the packet already).
//
//sldf:hotpath
func (v *vcQueue) pop(size int32) PacketRef {
	ref := v.buf[v.head]
	v.head++
	if int(v.head) == len(v.buf) {
		v.head = 0
	}
	v.n--
	v.occ -= size
	v.routed = false
	return ref
}

// removeAt removes and returns the i-th queued ref, preserving the order
// of the others. Used by ideal (non-blocking) switches to bypass a blocked
// head-of-line packet.
//
//sldf:hotpath
func (v *vcQueue) removeAt(i int, size int32) PacketRef {
	if i == 0 {
		return v.pop(size)
	}
	ref := v.at(i)
	for k := i; k < int(v.n)-1; k++ {
		j := v.head + int32(k)
		if int(j) >= len(v.buf) {
			j -= int32(len(v.buf))
		}
		nj := j + 1
		if int(nj) >= len(v.buf) {
			nj = 0
		}
		v.buf[j] = v.buf[nj]
	}
	v.n--
	v.occ -= size
	return ref
}

// InPort is a router input port: one VC-partitioned buffer fed by a link.
// The injection pseudo-port has a nil link and a single unbounded queue.
type InPort struct {
	Link      *Link
	VCs       []vcQueue
	busyUntil int64 // input crossbar bandwidth constraint
	// occMask has bit v set iff VCs[v] is non-empty; kept by the router's
	// own shard so allocation can skip empty ports without scanning.
	occMask uint8
}

// Queued returns the total flits buffered across the port's VCs, used by
// adaptive routing decisions and tests.
func (ip *InPort) Queued() int32 {
	var n int32
	for i := range ip.VCs {
		n += ip.VCs[i].occ
	}
	return n
}

// OutPort is a router output port: a link plus per-downstream-VC credits.
// The ejection pseudo-port has a nil link and no credit limit.
type OutPort struct {
	Link      *Link
	Credits   []int32
	busyUntil int64
	// rr is the round-robin pointer for switch allocation on this output.
	rr uint32
}

// FreeCredits returns the credits available on downstream VC vc.
func (op *OutPort) FreeCredits(vc uint8) int32 {
	if op.Link == nil {
		return 1 << 30
	}
	return op.Credits[vc]
}

// Router is a VC router: input-queued, credit flow control, output-first
// round-robin separable allocation, one packet per output per serialization
// window.
type Router struct {
	ID   NodeID
	Kind RouterKind

	// Topology coordinates. X/Y are mesh coordinates when the router is part
	// of a mesh; CGroup/WGroup locate it in the Dragonfly hierarchy (-1 when
	// not applicable); Chip is the terminal chip this router belongs to (-1
	// for pure transit routers); Label is the up*/down* order label; Local
	// is a topology-defined local index (e.g. external port number).
	X, Y   int16
	CGroup int32
	WGroup int32
	Chip   int32
	Label  int32
	Local  int32

	In  []InPort
	Out []OutPort

	// InjIn / EjectOut index the injection input and ejection output pseudo
	// ports (-1 when the router has none).
	InjIn    int16
	EjectOut int16

	// Ideal marks a non-blocking switch: allocation looks past blocked
	// head-of-line packets (bounded lookahead) and the crossbar has input
	// speedup, modelling the paper's "single ideal high-radix router".
	Ideal bool

	// Disabled marks a failed router (defective die). Set through
	// Network.ApplyFaults before simulation starts; a disabled router never
	// injects, never receives traffic (fault-aware routing avoids it), and
	// therefore never enters an engine's active set.
	Disabled bool

	// active counts non-empty (input port, VC) queues; allocation is
	// skipped entirely while it is zero.
	active int32
	// occPorts has bit i set iff In[i].occMask != 0, so allocation visits
	// only occupied ports. Maintained alongside occMask; meaningless (and
	// unused) when wide is set.
	occPorts uint64
	// wide marks a router with more than 64 input or output ports, which
	// falls back to full port scans instead of the bitmask fast paths.
	wide bool
	// nextAlloc is the earliest cycle at which allocation could succeed
	// again when every requested output was serializing; any new arrival,
	// credit return or injection resets it to zero.
	nextAlloc int64

	RNG engine.RNG

	// requests is scratch space for the per-cycle allocation pass:
	// requests[out] lists candidate (inPort, vc, queueIndex) keys.
	requests [][]int32
	// granted[in*8+vc] holds now+1 when that VC queue was granted this
	// cycle, so an ideal switch grants at most one packet per queue per
	// cycle (queue indices in the request lists stay valid). A reusable
	// slice rather than a map so steady-state cycles allocate nothing.
	granted []int64
}

// idealLookahead bounds how many packets per VC queue an ideal switch may
// consider beyond the head.
const idealLookahead = 4

// vcRingWindow is the initial ring capacity (in packet refs) a network VC
// queue gets from its router's shared backing array. Two slots cover the
// common case (a VC holding the packet in service plus one behind it); the
// minority of queues that run deeper under load migrate once to a private
// doubled ring and keep it forever. Kept deliberately small: the windows
// are paid for every VC of every port at build time, and idle VCs — the
// vast majority at any instant — never touch theirs.
const vcRingWindow = 2

// request key encoding: in<<16 | vc<<8 | queueIndex.
func reqKey(in, vc, idx int) int32 {
	return int32(in)<<16 | int32(vc)<<8 | int32(idx)
}

func reqIn(k int32) int  { return int(k >> 16) }
func reqVC(k int32) int  { return int(k>>8) & 0xff }
func reqIdx(k int32) int { return int(k & 0xff) }

// grantIdx indexes Router.granted: the occupancy bitmask caps VCs at 8.
func grantIdx(in, vc int) int { return in<<3 | vc }

// allocate (phase B) performs routing + switch allocation and launches
// packets onto links. It returns the number of packets that moved (for the
// progress watchdog) and records deliveries through the network's sink.
// act is the owning shard's active set, used to stage link activations for
// their consumer shards; it is nil under the reference engine.
func (r *Router) allocate(net *Network, now int64, shard int, act *shardActive) int {
	// Build per-output request lists from occupied ports only. Ordinary
	// routers request only from VC heads (with the routing decision
	// cached); ideal switches additionally request from up to
	// idealLookahead packets behind a blocked head, which removes
	// head-of-line blocking. Request lists are empty on entry (each pass
	// clears what it filled), so no clearing sweep is needed here.
	if r.active == 0 || r.nextAlloc > now {
		return 0
	}
	if r.requests == nil {
		r.requests = make([][]int32, len(r.Out))
	}
	arena := &net.arena
	wide := r.wide
	var outMask uint64
	inIter := r.occPorts
	in := -1
	for {
		// Next occupied input port: bitmask pop on ordinary routers, full
		// scan on wide ones. Both visit ports in ascending order.
		if wide {
			in++
			if in >= len(r.In) {
				break
			}
			if r.In[in].occMask == 0 {
				continue
			}
		} else {
			if inIter == 0 {
				break
			}
			in = bits.TrailingZeros64(inIter)
			inIter &= inIter - 1
		}
		ip := &r.In[in]
		for vc := range ip.VCs {
			if ip.occMask&(1<<vc) == 0 {
				continue
			}
			q := &ip.VCs[vc]
			if !q.routed {
				p := arena.at(q.front())
				out, outVC := net.route(net, r, p)
				q.outPort = int16(out)
				q.outVC = outVC
				q.routed = true
			}
			r.requests[q.outPort] = append(r.requests[q.outPort], reqKey(in, vc, 0))
			outMask |= 1 << uint(q.outPort)
			if r.Ideal {
				depth := q.size()
				if depth > idealLookahead+1 {
					depth = idealLookahead + 1
				}
				for i := 1; i < depth; i++ {
					out, _ := net.route(net, r, arena.at(q.at(i)))
					r.requests[out] = append(r.requests[out], reqKey(in, vc, i))
					outMask |= 1 << uint(out)
				}
			}
		}
	}
	if r.Ideal && r.granted == nil {
		r.granted = make([]int64, len(r.In)<<3)
	}

	moved := 0
	// minWake tracks when the earliest serializing output frees up;
	// otherwiseBlocked records blockers without a known unblock time
	// (credits, input bandwidth), which are handled by event resets.
	minWake := int64(1) << 62
	otherwiseBlocked := false
	outIter := outMask
	o := -1
	for {
		// Next requested output, ascending either way — the per-cycle
		// busyUntil and grant-epoch interactions rely on this order for
		// determinism. Each visited list is consumed (reset to empty), so
		// request lists are empty again when the pass completes.
		if wide {
			o++
			if o >= len(r.Out) {
				break
			}
			if len(r.requests[o]) == 0 {
				continue
			}
		} else {
			if outIter == 0 {
				break
			}
			o = bits.TrailingZeros64(outIter)
			outIter &= outIter - 1
		}
		op := &r.Out[o]
		reqs := r.requests[o]
		r.requests[o] = reqs[:0]
		if op.busyUntil > now {
			if op.busyUntil < minWake {
				minWake = op.busyUntil
			}
			continue
		}
		// Round-robin pick: first eligible requester at or after rr pointer.
		n := len(reqs)
		granted := -1
		var gOutVC uint8
		var gp *Packet
		for k := 0; k < n; k++ {
			idx := (int(op.rr) + k) % n
			key := reqs[idx]
			in, vc, qi := reqIn(key), reqVC(key), reqIdx(key)
			ip := &r.In[in]
			q := &ip.VCs[vc]
			var p *Packet
			var outVC uint8
			if qi == 0 {
				p = arena.at(q.front())
				outVC = q.outVC
			} else {
				// Ideal-switch lookahead request: at most one grant per VC
				// queue per cycle keeps the queue indices valid.
				if r.granted[grantIdx(in, vc)] == now+1 || qi >= q.size() {
					continue
				}
				p = arena.at(q.at(qi))
				var out int
				out, outVC = net.route(net, r, p)
				if out != o {
					continue
				}
			}
			if !r.Ideal && ip.busyUntil > now {
				if ip.busyUntil < minWake {
					minWake = ip.busyUntil
				}
				continue
			}
			if op.Link != nil && (op.Credits[outVC] < p.Size ||
				(net.churn != nil && op.Link.Disabled)) {
				// No credits — or, under an armed fault timeline, a dead
				// output link: a disabled link offers no bandwidth, so the
				// packet waits in place until a repair (or a route recompute
				// after the next churn batch) unblocks it. Without this check
				// the two engines diverge: the reference engine's drain lists
				// skip disabled links (blackholing the packet) while the
				// active-set engine would stage the dead link and deliver
				// through the corpse.
				otherwiseBlocked = true
				continue
			}
			granted = idx
			gOutVC = outVC
			gp = p
			break
		}
		if granted < 0 {
			continue
		}
		op.rr = uint32(granted + 1)
		key := reqs[granted]
		in, vc, qi := reqIn(key), reqVC(key), reqIdx(key)
		ip := &r.In[in]
		q := &ip.VCs[vc]
		p := gp
		ref := q.removeAt(qi, p.Size)
		if q.empty() {
			ip.occMask &^= 1 << vc
			if ip.occMask == 0 {
				r.occPorts &^= 1 << uint(in)
			}
			r.active--
		}
		if r.Ideal {
			r.granted[grantIdx(in, vc)] = now + 1
		}
		moved++
		if ip.Link == nil {
			// Leaving the source queue: network latency starts here.
			p.InjectedAt = now
		}

		// Return credits upstream for the buffer space just freed. A dead
		// feeding link gets no credit (its books are rebuilt on repair);
		// on static networks a disabled link never delivers a packet, so
		// the guard never fires.
		if ip.Link != nil && !ip.Link.Disabled {
			ip.Link.credit.push(timedCredit{
				at:    now + int64(ip.Link.Delay),
				flits: p.Size,
				vc:    uint8(vc),
			})
			if act != nil {
				act.stageCreditLink(ip.Link)
			}
		}

		if op.Link == nil {
			// Ejection: the terminal interface accepts one packet per Size
			// cycles.
			ser := int64(p.Size)
			op.busyUntil = now + ser
			if !r.Ideal {
				ip.busyUntil = now + ser
			}
			p.DeliveredAt = now + ser
			p.Hops[HopEject]++
			net.deliver(shard, ref, p)
			continue
		}

		l := op.Link
		ser := l.serCycles(p.Size)
		op.busyUntil = now + ser
		if !r.Ideal {
			ip.busyUntil = now + ser
		}
		op.Credits[gOutVC] -= p.Size
		p.VC = gOutVC
		p.Hops[l.Class]++
		if net.inWindow(now) {
			l.winFlits += int64(p.Size)
		}
		// Virtual cut-through: head available downstream after wire delay
		// plus one cycle of flit time.
		l.data.push(ref, now+int64(l.Delay)+1)
		if act != nil {
			act.stageDataLink(l)
		}
	}
	// Sleep until the earliest known unblock time when nothing moved and no
	// blocker depends on asynchronous events (credits); arrivals, credit
	// returns and injections reset nextAlloc through the drain/generate
	// paths.
	if moved == 0 && !otherwiseBlocked && minWake < int64(1)<<62 {
		r.nextAlloc = minWake
	} else {
		r.nextAlloc = 0
	}
	return moved
}
