package netsim

// LatencyHist is a compact HDR-style histogram of packet latencies in
// cycles: 64 power-of-two major buckets × 8 linear sub-buckets, giving
// ≤12.5% relative error on quantiles at any magnitude.
type LatencyHist struct {
	Buckets [64 * 8]int64
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 8 {
		return int(v)
	}
	// Major bucket = position of highest set bit; sub-bucket = next 3 bits.
	hi := 63
	for v>>uint(hi)&1 == 0 {
		hi--
	}
	major := hi - 2 // v>=8 means hi>=3, major>=1
	sub := (v >> uint(hi-3)) & 7
	idx := major*8 + int(sub)
	if idx >= len(LatencyHist{}.Buckets) {
		idx = len(LatencyHist{}.Buckets) - 1
	}
	return idx
}

// bucketLow returns the lower bound of bucket idx (inverse of bucketIndex).
func bucketLow(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	major := idx / 8
	sub := idx % 8
	hi := major + 2
	return 1<<uint(hi) | int64(sub)<<uint(hi-3)
}

// Add records one latency sample.
func (h *LatencyHist) Add(v int64) {
	h.Buckets[bucketIndex(v)]++
	h.Count++
	h.Sum += v
	if h.Count == 1 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Merge adds all samples of o into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o.Count == 0 {
		return
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the mean latency, or 0 if empty.
func (h *LatencyHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an approximation of the q-quantile (0<=q<=1).
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if cum > target {
			return bucketLow(i)
		}
	}
	return h.Max
}

// shardStats accumulates results on one shard without synchronization.
type shardStats struct {
	injectedPkts  int64 // all time
	deliveredPkts int64 // all time
	droppedPkts   int64 // stranded by churn and discarded
	retriedPkts   int64 // stranded by churn and re-enqueued at the source
	refusedPkts   int64 // injection attempts refused (destination chip dead)
	winFlits      int64 // flits ejected during the measurement window
	winPkts       int64 // packets created in window and delivered
	winHops       [NumHopClasses]int64
	winNetLatSum  int64 // latency excluding source queueing
	lat           LatencyHist
	moved         int64 // packets that traversed a crossbar this cycle
	pktSeq        uint64
	// free holds recycled arena slots owned by this shard (see packetArena).
	free []PacketRef
}

// Stats is a merged snapshot of simulation results.
type Stats struct {
	Cycles        int64 // measured cycles
	Chips         int   // number of terminals
	InjectedPkts  int64 // since reset (all time)
	DeliveredPkts int64 // since reset (all time)
	InFlightPkts  int64
	// Churn accounting (zero — and omitted from JSON, keeping static-build
	// fixtures byte-stable — unless a fault timeline stranded packets).
	// DroppedPkts were discarded in flight; RetriedPkts were re-enqueued at
	// their source terminal (RetrySource policy; a packet retried k times
	// counts k); RefusedPkts are injection attempts refused because the
	// destination chip had lost its last terminal.
	DroppedPkts   int64 `json:",omitempty"`
	RetriedPkts   int64 `json:",omitempty"`
	RefusedPkts   int64 `json:",omitempty"`
	WindowFlits   int64 // flits delivered during the window
	WindowPkts    int64 // packets created in window and delivered
	Hops          [NumHopClasses]int64
	NetLatencySum int64
	Latency       LatencyHist
	// WatchdogTrips counts how many times the progress watchdog fired
	// (Run/Drain returned ErrDeadlock) since the last reset.
	WatchdogTrips int64
}

// MeanLatency returns the mean end-to-end latency in cycles of packets
// created during the measurement window.
func (s *Stats) MeanLatency() float64 { return s.Latency.Mean() }

// MeanNetLatency is the mean latency excluding source queue waiting time.
func (s *Stats) MeanNetLatency() float64 {
	if s.WindowPkts == 0 {
		return 0
	}
	return float64(s.NetLatencySum) / float64(s.WindowPkts)
}

// Throughput returns accepted traffic in flits/cycle/chip over the window.
func (s *Stats) Throughput() float64 {
	if s.Cycles == 0 || s.Chips == 0 {
		return 0
	}
	return float64(s.WindowFlits) / float64(s.Cycles) / float64(s.Chips)
}

// MeanHops returns the average per-packet hop count for the given class
// over window packets.
func (s *Stats) MeanHops(c HopClass) float64 {
	if s.WindowPkts == 0 {
		return 0
	}
	return float64(s.Hops[c]) / float64(s.WindowPkts)
}
