package netsim

import "testing"

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.MeanLatency() != 0 || st.MeanNetLatency() != 0 || st.Throughput() != 0 {
		t.Fatal("zero stats must report zero means")
	}
	if st.MeanHops(HopGlobal) != 0 {
		t.Fatal("zero stats must report zero hops")
	}
}

func TestStatsThroughputFormula(t *testing.T) {
	st := Stats{Cycles: 1000, Chips: 4, WindowFlits: 2000}
	if got := st.Throughput(); got != 0.5 {
		t.Fatalf("throughput %v, want 0.5", got)
	}
}

func TestStatsMeanHops(t *testing.T) {
	var st Stats
	st.WindowPkts = 4
	st.Hops[HopShortReach] = 10
	if got := st.MeanHops(HopShortReach); got != 2.5 {
		t.Fatalf("mean hops %v, want 2.5", got)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b LatencyHist
	a.Add(5)
	a.Merge(&b) // merging empty must not disturb
	if a.Count != 1 || a.Min != 5 || a.Max != 5 {
		t.Fatalf("merge with empty corrupted: %+v", a)
	}
	b.Merge(&a)
	if b.Count != 1 || b.Min != 5 {
		t.Fatalf("merge into empty wrong: count=%d min=%d", b.Count, b.Min)
	}
}

func TestHistogramMergeMinMax(t *testing.T) {
	var a, b LatencyHist
	a.Add(10)
	a.Add(100)
	b.Add(3)
	b.Add(50)
	a.Merge(&b)
	if a.Count != 4 || a.Min != 3 || a.Max != 100 {
		t.Fatalf("merged summary wrong: %+v", a)
	}
}

func TestHopClassStrings(t *testing.T) {
	want := map[HopClass]string{
		HopOnChip: "onchip", HopShortReach: "sr", HopLongLocal: "local",
		HopGlobal: "global", HopEject: "eject", NumHopClasses: "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestRouterKindStrings(t *testing.T) {
	want := map[RouterKind]string{
		KindCore: "core", KindNIC: "nic", KindSwitch: "switch", KindPort: "port",
		RouterKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestPacketTotalHops(t *testing.T) {
	p := &Packet{}
	p.Hops[HopOnChip] = 3
	p.Hops[HopShortReach] = 2
	p.Hops[HopGlobal] = 1
	p.Hops[HopEject] = 1 // excluded
	if got := p.TotalHops(); got != 6 {
		t.Fatalf("total hops %d, want 6", got)
	}
}

func TestArenaSlotReuse(t *testing.T) {
	n := &Network{shard: make([]shardStats, 1)}
	ref, p := n.allocPacket(0)
	p.ID = 42
	p.Hops[HopGlobal] = 7
	n.shard[0].free = append(n.shard[0].free, ref)
	ref2, q := n.allocPacket(0)
	if ref2 != ref || q != p {
		t.Fatal("arena did not reuse the freed slot")
	}
	if q.ID != 0 || q.Hops[HopGlobal] != 0 {
		t.Fatal("reused slot not zeroed")
	}
	alloc, free := n.ArenaSlots()
	if alloc != arenaChunkSize || free != arenaChunkSize-1 {
		t.Fatalf("slots: alloc %d free %d", alloc, free)
	}
}
