package netsim

// The route-trace cache: traced flow paths keyed by (source node,
// destination node), owned by the network and kept across Reset so
// build-once/measure-many campaigns pay for each route exactly once.
//
// Validity is epoch-versioned. Full invalidation (SetRoute, build-time
// faults, packet-size change, churn rewind) is O(1): the epoch advances and
// every entry goes stale in place — the key index is kept, so a re-trace
// reuses the entry slot. Churn batches invalidate selectively: only entries
// whose path crosses a component that actually flipped alive<->dead are
// evicted (plus every negative entry, since a repair can make a previously
// unroutable pair routable).
//
// Selective retention is sound only when the installed RouteFunc's decisions
// depend on component liveness solely through the components a path actually
// traverses — true for table-free route functions. Fault-aware routing that
// consults rebuilt tables must be reinstalled with SetRoute after the tables
// change (the core layer's churn hook does exactly that), which bumps the
// epoch and discards everything.

// traceEntry is one cached route: the traced path as an offset/length into
// traceCache.path, the uncontended base latency, and the per-class hop
// counts. ok=false entries cache route *failures* (refused pairs), so a
// persistently unroutable pair is not re-traced every solve.
type traceEntry struct {
	key    uint64
	epoch  uint64 // valid iff == traceCache.epoch
	off    int32
	n      int32
	traced bool // reserved entries await tracing within the current build
	ok     bool
	base   int64
	hops   [NumHopClasses]uint16
}

// traceCache owns the entries, their key index, and the shared path arena.
type traceCache struct {
	idx     map[uint64]int32
	entries []traceEntry
	path    []int32
	epoch   uint64
	// gen increments whenever cached structure changes (fresh traces merged
	// or entries evicted); the solver folds it into its flow-shape hash so a
	// stale path can never hide behind an unchanged flow list.
	gen uint64
	// size is the packet size the cached traces were computed with; base
	// latencies embed the ejection serialization, so a size change discards
	// everything.
	size int32

	// mark scratch for selective invalidation: component id -> markGen,
	// stamped per churn batch so no clearing pass is needed.
	routerMark []uint64
	linkMark   []uint64
	markGen    uint64
}

// pairKey packs a (source node, destination node) pair into the cache key.
func pairKey(src, dst NodeID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// pairFromKey unpacks a cache key.
func pairFromKey(key uint64) (src, dst NodeID) {
	return NodeID(key >> 32), NodeID(uint32(key))
}

func newTraceCache() *traceCache {
	return &traceCache{idx: make(map[uint64]int32), epoch: 1}
}

// lookupOrReserve returns the entry index for key and whether the caller
// must schedule a fresh trace for it. A valid entry (traced this epoch)
// needs nothing; a stale or absent entry is reserved in place and reported
// exactly once — later lookups of the same key within the build see the
// reservation and do not re-schedule.
func (c *traceCache) lookupOrReserve(key uint64) (int32, bool) {
	if i, ok := c.idx[key]; ok {
		e := &c.entries[i]
		if e.epoch == c.epoch {
			return i, false
		}
		e.epoch = c.epoch
		e.traced = false
		return i, true
	}
	i := int32(len(c.entries))
	c.entries = append(c.entries, traceEntry{key: key, epoch: c.epoch})
	c.idx[key] = i
	return i, true
}

// invalidateAll discards every cached trace in O(1) and resets the path
// arena (stale entries never read their dangling offsets).
func (c *traceCache) invalidateAll() {
	c.epoch++
	c.gen++
	c.path = c.path[:0]
}

// ensureMarks sizes the component mark arrays for selective invalidation.
func (c *traceCache) ensureMarks(routers, links int) {
	if len(c.routerMark) < routers {
		c.routerMark = make([]uint64, routers)
	}
	if len(c.linkMark) < links {
		c.linkMark = make([]uint64, links)
	}
}

// invalidateFor evicts exactly the entries a churn batch can have affected:
// every negative entry, and every positive entry whose path traverses a
// router or link that flipped alive<->dead. numRouters/numLinks size the
// mark arrays; cached path elements >= numLinks are router (ejection)
// elements. Returns the number of entries evicted.
//
// Evicted entries go stale in place (epoch rollback on the entry); their
// arena regions are reclaimed only by the next full invalidation — churn
// timelines toggle a bounded component set, so the leak is bounded too.
func (c *traceCache) invalidateFor(routers []NodeID, links []int32, numRouters, numLinks int) int {
	c.ensureMarks(numRouters, numLinks)
	ejBase := int32(numLinks)
	c.markGen++
	for _, r := range routers {
		c.routerMark[r] = c.markGen
	}
	for _, l := range links {
		c.linkMark[l] = c.markGen
	}
	evicted := 0
	for i := range c.entries {
		e := &c.entries[i]
		if e.epoch != c.epoch || !e.traced {
			continue
		}
		if !e.ok {
			e.epoch--
			evicted++
			continue
		}
		for _, el := range c.path[e.off : e.off+e.n] {
			hit := false
			if el >= ejBase {
				hit = c.routerMark[el-ejBase] == c.markGen
			} else {
				hit = c.linkMark[el] == c.markGen
			}
			if hit {
				e.epoch--
				evicted++
				break
			}
		}
	}
	if evicted > 0 {
		c.gen++
	}
	return evicted
}
