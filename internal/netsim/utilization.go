package netsim

// LinkUtil summarizes one link's load over the measurement window.
type LinkUtil struct {
	Link        *Link
	Flits       int64
	Utilization float64 // flits / (width × window cycles), 1.0 = saturated
}

// LinkUtilization returns per-class aggregate utilization and the k most
// loaded links, for bottleneck analysis (e.g. showing the C-group mesh
// bisection saturating in Fig. 12 while global channels idle). Disabled
// links carry no flits and contribute no capacity: class utilization is
// relative to the surviving links of the class.
//
// The top-k list is kept by a single running-selection pass over the flat
// link slice and returned in network-owned scratch, so a measurement loop
// calling this every load point allocates nothing; the slice is valid until
// the next call.
func (n *Network) LinkUtilization(k int) (byClass [NumHopClasses]float64, hottest []LinkUtil) {
	end := n.measEnd
	if n.measuring || end > n.Cycle {
		end = n.Cycle
	}
	window := end - n.measStart
	if window <= 0 {
		return byClass, nil
	}
	var classFlits, classCap [NumHopClasses]float64
	if k > len(n.Links) {
		k = len(n.Links)
	}
	top := n.utilScratch[:0]
	if cap(top) < k {
		top = make([]LinkUtil, 0, k)
	}
	// hotter is the ranking: utilization descending, link ID ascending.
	hotter := func(a, b *LinkUtil) bool {
		if a.Utilization != b.Utilization {
			return a.Utilization > b.Utilization
		}
		return a.Link.ID < b.Link.ID
	}
	for i := range n.Links {
		l := &n.Links[i]
		if l.Disabled {
			continue
		}
		capacity := float64(l.Width) * float64(window)
		u := LinkUtil{Link: l, Flits: l.winFlits}
		if capacity > 0 {
			u.Utilization = float64(l.winFlits) / capacity
		}
		classFlits[l.Class] += float64(l.winFlits)
		classCap[l.Class] += capacity
		if len(top) < k {
			top = append(top, u)
		} else if k > 0 && hotter(&u, &top[k-1]) {
			top[k-1] = u
		} else {
			continue
		}
		for j := len(top) - 1; j > 0 && hotter(&top[j], &top[j-1]); j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	for c := range byClass {
		if classCap[c] > 0 {
			byClass[c] = classFlits[c] / classCap[c]
		}
	}
	n.utilScratch = top
	return byClass, top
}
