package netsim

import "sort"

// LinkUtil summarizes one link's load over the measurement window.
type LinkUtil struct {
	Link        *Link
	Flits       int64
	Utilization float64 // flits / (width × window cycles), 1.0 = saturated
}

// LinkUtilization returns per-class aggregate utilization and the k most
// loaded links, for bottleneck analysis (e.g. showing the C-group mesh
// bisection saturating in Fig. 12 while global channels idle). Disabled
// links carry no flits and contribute no capacity: class utilization is
// relative to the surviving links of the class.
func (n *Network) LinkUtilization(k int) (byClass [NumHopClasses]float64, hottest []LinkUtil) {
	end := n.measEnd
	if n.measuring || end > n.Cycle {
		end = n.Cycle
	}
	window := end - n.measStart
	if window <= 0 {
		return byClass, nil
	}
	var classFlits, classCap [NumHopClasses]float64
	utils := make([]LinkUtil, 0, len(n.Links))
	for _, l := range n.Links {
		if l.Disabled {
			continue
		}
		capacity := float64(l.Width) * float64(window)
		u := LinkUtil{Link: l, Flits: l.winFlits}
		if capacity > 0 {
			u.Utilization = float64(l.winFlits) / capacity
		}
		classFlits[l.Class] += float64(l.winFlits)
		classCap[l.Class] += capacity
		utils = append(utils, u)
	}
	for c := range byClass {
		if classCap[c] > 0 {
			byClass[c] = classFlits[c] / classCap[c]
		}
	}
	sort.Slice(utils, func(i, j int) bool {
		if utils[i].Utilization != utils[j].Utilization {
			return utils[i].Utilization > utils[j].Utilization
		}
		return utils[i].Link.ID < utils[j].Link.ID
	})
	if k > len(utils) {
		k = len(utils)
	}
	return byClass, utils[:k]
}
