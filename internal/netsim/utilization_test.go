package netsim

import (
	"testing"

	"sldf/internal/engine"
)

func TestLinkUtilizationSingleFlow(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 2, spec, NetworkOptions{Seed: 11, Workers: 1})
	defer net.Close()
	net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if src == 0 && now%8 == 0 { // 0.5 flits/cycle offered
			return 1
		}
		return -1
	}), 4, DstSameIndex)
	if err := net.Run(100); err != nil {
		t.Fatal(err)
	}
	net.StartMeasurement()
	if err := net.Run(800); err != nil {
		t.Fatal(err)
	}
	net.StopMeasurement()
	byClass, hottest := net.LinkUtilization(2)
	// The 0→1 link carries ~0.5; the reverse link is idle, so the class
	// aggregate is ~0.25.
	if byClass[HopShortReach] < 0.2 || byClass[HopShortReach] > 0.3 {
		t.Fatalf("class utilization %v, want ~0.25", byClass[HopShortReach])
	}
	if len(hottest) != 2 {
		t.Fatalf("hottest links = %d", len(hottest))
	}
	if hottest[0].Utilization < 0.45 || hottest[0].Utilization > 0.55 {
		t.Fatalf("hottest utilization %v, want ~0.5", hottest[0].Utilization)
	}
	if hottest[1].Flits != 0 {
		t.Fatalf("reverse link carried %d flits", hottest[1].Flits)
	}
}

func TestLinkUtilizationNoWindow(t *testing.T) {
	spec := LinkSpec{Delay: 1, Width: 1, Class: HopShortReach, VCs: 1, BufFlits: 32}
	net := buildLine(t, 2, spec, NetworkOptions{Seed: 12, Workers: 1})
	defer net.Close()
	byClass, hottest := net.LinkUtilization(5)
	if hottest != nil {
		t.Fatal("utilization without a window must be empty")
	}
	for _, u := range byClass {
		if u != 0 {
			t.Fatal("nonzero class utilization without a window")
		}
	}
}

func TestLinkUtilizationWidthNormalized(t *testing.T) {
	// A width-2 link carrying the same flits reports half the utilization.
	run := func(width int32) float64 {
		spec := LinkSpec{Delay: 1, Width: width, Class: HopShortReach, VCs: 1, BufFlits: 32}
		net := buildLine(t, 2, spec, NetworkOptions{Seed: 13, Workers: 1})
		defer net.Close()
		net.SetTraffic(GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
			if src == 0 && now%8 == 0 {
				return 1
			}
			return -1
		}), 4, DstSameIndex)
		net.StartMeasurement()
		if err := net.Run(800); err != nil {
			t.Fatal(err)
		}
		net.StopMeasurement()
		_, hottest := net.LinkUtilization(1)
		return hottest[0].Utilization
	}
	u1, u2 := run(1), run(2)
	if u2 > 0.6*u1 {
		t.Fatalf("width-2 utilization %v not ~half of width-1 %v", u2, u1)
	}
}
