// Package profiling wires pprof capture into commands. A command registers
// the standard -cpuprofile/-memprofile flags before flag.Parse and brackets
// its work between Start and Stop:
//
//	prof := profiling.Flags()
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// Both flags default to off and cost nothing unless set.
package profiling

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// labelsOn tracks whether a CPU profile is being captured; phase labels are
// free (one atomic load) while it is off, so hot solver loops can tag their
// phases unconditionally without paying pprof costs in ordinary runs.
var labelsOn atomic.Bool

// Phase is a prebuilt pprof label set naming one phase of a computation.
// Build them once (package var), then bracket work with Enter/Exit; CPU
// profiles captured with -cpuprofile break the samples down by the "phase"
// label. The flow solver tags its trace / waterfill / histogram phases.
type Phase struct {
	ctx context.Context
}

// NewPhase prebuilds the label set for a named phase.
func NewPhase(name string) Phase {
	return Phase{ctx: pprof.WithLabels(context.Background(), pprof.Labels("phase", name))}
}

// Enter tags the calling goroutine with the phase label. No-op (and
// allocation-free) unless a CPU profile is active.
func (p Phase) Enter() {
	if labelsOn.Load() {
		pprof.SetGoroutineLabels(p.ctx)
	}
}

// ExitPhase clears the calling goroutine's phase label.
func ExitPhase() {
	if labelsOn.Load() {
		pprof.SetGoroutineLabels(context.Background())
	}
}

// Profiles holds the flag values and the open CPU-profile file, if any.
type Profiles struct {
	cpu *string
	mem *string
	f   *os.File
}

// Flags registers -cpuprofile and -memprofile on the default flag set.
func Flags() *Profiles {
	return &Profiles{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag.Parse.
func (p *Profiles) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	labelsOn.Store(true)
	p.f = f
	return nil
}

// Stop finishes the CPU profile and, when -memprofile was given, collects
// garbage and writes the live-heap profile. Safe to call when neither flag
// was set.
func (p *Profiles) Stop() error {
	if p.f != nil {
		labelsOn.Store(false)
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.f = nil
	}
	if *p.mem == "" {
		return nil
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // profile live objects, not garbage
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
