package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The package registers flags on the global flag set, so tests drive the
// struct directly instead of going through Flags.
func testProfiles(cpu, mem string) *Profiles {
	return &Profiles{cpu: &cpu, mem: &mem}
}

func TestDisabledIsNoOp(t *testing.T) {
	p := testProfiles("", "")
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	p := testProfiles(cpu, mem)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}

func TestFlagsRegistersOnDefaultSet(t *testing.T) {
	// Flags must only be called once per process against the global set;
	// verify registration happened by looking the flags up.
	p := Flags()
	if p == nil {
		t.Fatal("Flags returned nil")
	}
	for _, name := range []string{"cpuprofile", "memprofile"} {
		if flag.Lookup(name) == nil {
			t.Fatalf("flag -%s not registered", name)
		}
	}
}
