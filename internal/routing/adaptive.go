package routing

import (
	"sldf/internal/engine"
	"sldf/internal/netsim"
)

// ugalThreshold biases the decision toward the minimal path (in flits), the
// standard UGAL hysteresis that prevents needless misrouting at low load.
const ugalThreshold = 8

// channelOccupancy holds a per-cycle snapshot of every global channel's
// output occupancy: occ[w][G] = flits queued (credits consumed) at the
// external output of global channel G of W-group w. It is refreshed by the
// network's pre-allocate hook, which runs single-threaded between the
// simulation phases, so route functions may read it without races.
type channelOccupancy struct {
	occ [][]int32
}

func newChannelOccupancy(groups, channels int) *channelOccupancy {
	o := &channelOccupancy{occ: make([][]int32, groups)}
	for w := range o.occ {
		o.occ[w] = make([]int32, channels)
	}
	return o
}

// Install registers the router on the network: the routing function plus,
// for Adaptive mode, the occupancy-snapshot hook.
func (sr *SLDFRouter) Install(net *netsim.Network) {
	net.SetRoute(sr.Func())
	if sr.mode != Adaptive {
		return
	}
	h := sr.s.Params.H
	channels := sr.s.Params.AB * h
	sr.occ = newChannelOccupancy(sr.groups, channels)
	net.SetPreAllocate(func(n *netsim.Network) {
		for w := 0; w < sr.groups; w++ {
			for c := 0; c < sr.s.Params.AB; c++ {
				for j := 0; j < h; j++ {
					pi := &sr.s.CGroups[w][c].GlobalPorts[j]
					port := n.Router(pi.Node)
					out := &port.Out[pi.PortExt]
					var used int32
					link := out.Link
					if link == nil {
						continue
					}
					// Occupancy = credits consumed across all VCs.
					for vc := uint8(0); vc < link.VCs; vc++ {
						used += 32 - out.FreeCredits(vc) // BufFlits per Table IV
					}
					sr.occ.occ[w][c*h+j] = used
				}
			}
		}
	})
}

// chooseAdaptive implements the UGAL-G decision at the source core for an
// inter-W-group packet: pick one random intermediate candidate and compare
// queue×hops against the minimal path.
func (sr *SLDFRouter) chooseAdaptive(rng *engine.RNG, ws, wd int32) int32 {
	if sr.occ == nil || sr.groups <= 2 {
		return -1
	}
	// Candidate intermediate.
	var aux int32
	for {
		aux = int32(rng.Intn(sr.groups))
		if aux != ws && aux != wd {
			break
		}
	}
	h := sr.s.Params.H
	// Minimal path: the direct channel ws→wd.
	cMin, jMin := sr.s.GlobalChannelOwner(int(ws), int(wd))
	qMin := sr.occ.occ[ws][cMin*h+jMin]
	// Non-minimal: ws→aux, then aux→wd.
	c1, j1 := sr.s.GlobalChannelOwner(int(ws), int(aux))
	c2, j2 := sr.s.GlobalChannelOwner(int(aux), int(wd))
	qVal := sr.occ.occ[ws][c1*h+j1] + sr.occ.occ[aux][c2*h+j2]
	// Misroute only when the summed non-minimal occupancy is clearly below
	// the direct channel's (UGAL with hysteresis).
	if int64(qMin) <= int64(qVal)+ugalThreshold {
		return -1 // minimal
	}
	return aux
}
