package routing

import (
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/traffic"
)

func TestAdaptiveCDGAcyclic(t *testing.T) {
	// Adaptive packets take either the minimal or any Valiant path; the
	// dependency graph is the union of both, which must stay acyclic.
	for _, scheme := range []Scheme{BaselineVC, ReducedVC} {
		s, sr := smallSLDF(t, scheme, Adaptive)
		wOf := func(chip int32) int32 {
			w, _, _ := s.ChipLocation(chip)
			return int32(w)
		}
		unionAux := func(src, dst int32) []int32 {
			out := []int32{-1} // minimal path
			ws, wd := wOf(src), wOf(dst)
			if ws != wd {
				for w := int32(0); w < int32(s.Params.Groups()); w++ {
					if w != ws && w != wd {
						out = append(out, w)
					}
				}
			}
			return out
		}
		g, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), unionAux)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if cyc, witness := g.HasCycle(); cyc {
			t.Fatalf("%v/adaptive: dependency cycle %v", scheme, witness)
		}
		s.Net.Close()
	}
}

// adaptiveThroughput builds a radix-16-lite system and measures accepted
// throughput under the given pattern/mode.
func adaptiveThroughput(t *testing.T, mode Mode, patName string, rate float64) float64 {
	t.Helper()
	sys, router := smallSLDF(t, BaselineVC, mode)
	defer sys.Net.Close()
	router.Install(sys.Net)
	chips := int32(sys.Net.NumChips())
	chipsPerGroup := chips / int32(sys.Params.Groups())
	var pat traffic.Pattern
	switch patName {
	case "uniform":
		pat = traffic.Uniform{N: chips}
	case "worst-case":
		pat = traffic.WorstCase{ChipsPerGroup: chipsPerGroup, Groups: int32(sys.Params.Groups())}
	}
	gen := traffic.NewRate(pat, rate, 4, len(sys.Net.ChipNodes[0]))
	sys.Net.SetTraffic(gen, 4, netsim.DstSameIndex)
	if err := sys.Net.Run(400); err != nil {
		t.Fatal(err)
	}
	sys.Net.StartMeasurement()
	if err := sys.Net.Run(900); err != nil {
		t.Fatal(err)
	}
	sys.Net.StopMeasurement()
	st := sys.Net.Snapshot()
	return st.Throughput()
}

func TestAdaptiveBeatsMinimalOnWorstCase(t *testing.T) {
	tMin := adaptiveThroughput(t, Minimal, "worst-case", 0.3)
	tAda := adaptiveThroughput(t, Adaptive, "worst-case", 0.3)
	if tAda < 1.2*tMin {
		t.Fatalf("adaptive %v did not clearly beat minimal %v on worst-case", tAda, tMin)
	}
}

func TestAdaptiveMatchesMinimalOnUniform(t *testing.T) {
	// The UGAL promise: under benign traffic the adaptive router should
	// mostly choose minimal paths and stay close to minimal throughput.
	tMin := adaptiveThroughput(t, Minimal, "uniform", 0.4)
	tAda := adaptiveThroughput(t, Adaptive, "uniform", 0.4)
	if tAda < 0.85*tMin {
		t.Fatalf("adaptive %v collapsed vs minimal %v on uniform", tAda, tMin)
	}
}

func TestAdaptiveVCBudget(t *testing.T) {
	if SLDFVCCount(BaselineVC, Adaptive) != 6 || SLDFVCCount(ReducedVC, Adaptive) != 4 {
		t.Fatalf("adaptive VC budgets: %d/%d",
			SLDFVCCount(BaselineVC, Adaptive), SLDFVCCount(ReducedVC, Adaptive))
	}
}
