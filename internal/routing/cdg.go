package routing

import (
	"fmt"

	"sldf/internal/netsim"
)

// CDG is a channel dependency graph: nodes are (link, VC) pairs, and an edge
// u→v means some routed packet holds u while waiting for v. A routing
// algorithm is deadlock-free if its CDG is acyclic (Dally & Seitz).
type CDG struct {
	maxVC int
	edges map[int64]map[int64]struct{}
}

// NewCDG returns an empty dependency graph for links carrying maxVC VCs.
func NewCDG(maxVC int) *CDG {
	return &CDG{maxVC: maxVC, edges: map[int64]map[int64]struct{}{}}
}

func (g *CDG) key(link int32, vc uint8) int64 {
	return int64(link)*int64(g.maxVC) + int64(vc)
}

func (g *CDG) addEdge(from, to int64) {
	m, ok := g.edges[from]
	if !ok {
		m = map[int64]struct{}{}
		g.edges[from] = m
	}
	m[to] = struct{}{}
}

// Nodes returns the number of channel-VC nodes with outgoing edges.
func (g *CDG) Nodes() int { return len(g.edges) }

// HasCycle reports whether the dependency graph contains a cycle, returning
// one witness cycle as (link,vc) keys when it does.
func (g *CDG) HasCycle() (bool, []int64) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int64]int8{}
	parent := map[int64]int64{}
	for start := range g.edges {
		if color[start] != white {
			continue
		}
		// Iterative DFS with an explicit stack of (node, expanded) frames.
		type frame struct {
			node int64
			next []int64
		}
		frames := []frame{{node: start, next: succs(g, start)}}
		color[start] = grey
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				frames = frames[:len(frames)-1]
				continue
			}
			n := f.next[0]
			f.next = f.next[1:]
			switch color[n] {
			case white:
				color[n] = grey
				parent[n] = f.node
				frames = append(frames, frame{node: n, next: succs(g, n)})
			case grey:
				// Cycle: walk parents from f.node back to n.
				cyc := []int64{n}
				cur := f.node
				for cur != n {
					cyc = append(cyc, cur)
					cur = parent[cur]
				}
				return true, cyc
			}
		}
	}
	return false, nil
}

func succs(g *CDG, n int64) []int64 {
	m := g.edges[n]
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TracePath walks packet p's route through the network without simulating
// time, returning the sequence of (link, vc) hops. It fails if the route
// does not terminate at the destination within maxHops.
func TracePath(net *netsim.Network, route netsim.RouteFunc, p *netsim.Packet, maxHops int) ([][2]int64, error) {
	r := net.Router(p.SrcNode)
	var hops [][2]int64
	for i := 0; i < maxHops; i++ {
		out, vc := route(net, r, p)
		if out == int(r.EjectOut) && r.Out[out].Link == nil {
			if r.ID != p.DstNode {
				return nil, fmt.Errorf("routing: packet (%d→%d) ejected at router %d",
					p.SrcNode, p.DstNode, r.ID)
			}
			return hops, nil
		}
		l := r.Out[out].Link
		if l == nil {
			return nil, fmt.Errorf("routing: packet (%d→%d) sent to nil link at router %d",
				p.SrcNode, p.DstNode, r.ID)
		}
		hops = append(hops, [2]int64{int64(l.ID), int64(vc)})
		p.VC = vc
		r = net.Router(l.Dst)
	}
	return nil, fmt.Errorf("routing: packet (%d→%d) exceeded %d hops",
		p.SrcNode, p.DstNode, maxHops)
}

// BuildCDG enumerates routes for every (source node, destination chip) pair
// and, for Valiant modes, every possible intermediate W-group given by
// auxChoices (pass []int32{-1} for deterministic/minimal routing). It
// returns the assembled dependency graph.
func BuildCDG(net *netsim.Network, route netsim.RouteFunc, maxVC int, auxChoices func(srcChip, dstChip int32) []int32) (*CDG, error) {
	g := NewCDG(maxVC)
	chips := int32(net.NumChips())
	for srcChip := int32(0); srcChip < chips; srcChip++ {
		for _, srcNode := range net.ChipNodes[srcChip] {
			for dstChip := int32(0); dstChip < chips; dstChip++ {
				if dstChip == srcChip {
					continue
				}
				for _, dstNode := range net.ChipNodes[dstChip] {
					for _, aux := range auxChoices(srcChip, dstChip) {
						// Aux2 = 1 marks the intermediate-group decision as
						// already made, so tracing is deterministic even for
						// aux = -1 (minimal fallback) under Valiant modes.
						p := &netsim.Packet{
							SrcChip: srcChip, DstChip: dstChip,
							SrcNode: srcNode, DstNode: dstNode,
							Size: 4, Aux: aux, Aux2: 1,
						}
						hops, err := TracePath(net, route, p, 4096)
						if err != nil {
							return nil, err
						}
						for i := 1; i < len(hops); i++ {
							g.addEdge(
								g.key(int32(hops[i-1][0]), uint8(hops[i-1][1])),
								g.key(int32(hops[i][0]), uint8(hops[i][1])),
							)
						}
					}
				}
			}
		}
	}
	return g, nil
}

// MinimalAux returns the aux chooser for deterministic minimal routing.
func MinimalAux(srcChip, dstChip int32) []int32 { return []int32{-1} }
