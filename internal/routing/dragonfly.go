package routing

import (
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// DragonflyRoute returns the routing function for the switch-based
// Dragonfly baseline.
//
// Minimal: terminal → source switch → (local) → global-owning switch →
// (global) → destination group → (local) → destination switch → terminal,
// with VC0 in the source group and VC1 in the destination group.
//
// Valiant: every inter-group packet is first routed minimally to a random
// intermediate group (VC1 there), then minimally to the destination (VC2).
func DragonflyRoute(df *topology.Dragonfly, mode Mode) (netsim.RouteFunc, error) {
	if err := validateMode(mode); err != nil {
		return nil, err
	}
	g := df.Params.Groups()

	// vcFor returns the VC a packet uses while buffered at router rr.
	vcFor := func(net *netsim.Network, p *netsim.Packet, rr *netsim.Router) uint8 {
		wd, _, _ := df.Params.ChipLocation(p.DstChip)
		w := int(rr.WGroup)
		ws := int(net.Router(p.SrcNode).WGroup)
		switch {
		case w == wd:
			if mode == Valiant {
				return 2
			}
			return 1
		case w == ws:
			return 0
		default:
			return 1
		}
	}

	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		wd, sd, td := df.Params.ChipLocation(p.DstChip)

		if r.Kind == netsim.KindNIC {
			if r.Chip == p.DstChip {
				return int(r.EjectOut), 0
			}
			// Valiant: pick the intermediate group once, at the source NIC.
			if mode == Valiant && p.Aux < 0 && int(r.WGroup) != wd && g > 2 {
				rng := p.RouteRNG(r)
				for {
					aux := int32(rng.Intn(g))
					if aux != r.WGroup && aux != int32(wd) {
						p.Aux = aux
						break
					}
				}
			}
			up := df.NICUplink(p.SrcChip)
			down := net.Router(r.Out[up].Link.Dst)
			return up, vcFor(net, p, down)
		}

		// Switch.
		w, s := int(r.WGroup), int(r.CGroup)
		var out int
		switch {
		case w == wd && s == sd:
			out = df.TermPort(w, s, td)
		case w == wd:
			out = df.LocalPort(w, s, sd)
		default:
			// In the source group heading to the intermediate group (if
			// Valiant chose one), otherwise straight to the destination.
			wt := wd
			if p.Aux >= 0 && w != int(p.Aux) {
				wt = int(p.Aux)
			}
			so, k := df.GlobalOwner(w, wt)
			if s == so {
				out = df.GlobalPortIdx(w, s, k)
			} else {
				out = df.LocalPort(w, s, so)
			}
		}
		down := net.Router(r.Out[out].Link.Dst)
		return out, vcFor(net, p, down)
	}, nil
}
