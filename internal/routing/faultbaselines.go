package routing

import (
	"fmt"

	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// NewFaultMeshRoute builds fault-aware routing for a standalone C-group
// mesh with disabled components: shortest up*/down* paths over the
// surviving routers on a single virtual channel (XY dimension order does
// not survive holes). Construction fails with PartitionError when some
// pair of alive routers is disconnected.
//
// Per-packet scratch: Aux2 is -1 until first touch, then bit 1 tracks the
// up*/down* descending phase.
func NewFaultMeshRoute(g *topology.MeshCGroup) (netsim.RouteFunc, error) {
	fm, err := NewFaultMeshRouter(g)
	if err != nil {
		return nil, err
	}
	return fm.Func(), nil
}

// FaultMeshRouter is the handle form of NewFaultMeshRoute, exposing the
// mid-run sanitize predicate alongside the routing function.
type FaultMeshRouter struct {
	local []int32
	rg    *region
}

// NewFaultMeshRouter builds fault-aware up*/down* routing for a standalone
// C-group mesh; see NewFaultMeshRoute.
func NewFaultMeshRouter(g *topology.MeshCGroup) (*FaultMeshRouter, error) {
	local := make([]int32, len(g.Net.Routers))
	for i := range local {
		local[i] = -1
	}
	var ids []netsim.NodeID
	for i := range g.Net.Routers {
		if !g.Net.Routers[i].Disabled {
			ids = append(ids, g.Net.Routers[i].ID)
		}
	}
	rg, ok := buildRegion(g.Net, ids, local)
	if !ok {
		return nil, &PartitionError{Where: "mesh"}
	}
	return &FaultMeshRouter{local: local, rg: rg}, nil
}

// Func returns the netsim routing function.
func (fm *FaultMeshRouter) Func() netsim.RouteFunc {
	local, rg := fm.local, fm.rg
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		if r.ID == p.DstNode {
			return int(r.EjectOut), 0
		}
		if p.Aux2 < 0 {
			p.Aux2 = 1
		}
		out, descending := rg.step(local[r.ID], local[p.DstNode], p.Aux2&2 != 0)
		if descending && p.Aux2&2 == 0 {
			p.Aux2 |= 2
		}
		return int(out), 0
	}
}

// Sanitize returns the keep-predicate for netsim.SanitizeInFlight after a
// mid-run recompute: a packet already in the descending up*/down* phase
// whose new tables offer no legal descending path to its destination is
// retired (continuing it would need a forbidden down→up transition).
func (fm *FaultMeshRouter) Sanitize() func(r *netsim.Router, p *netsim.Packet) bool {
	local, rg := fm.local, fm.rg
	return func(r *netsim.Router, p *netsim.Packet) bool {
		if r.ID == p.DstNode {
			return true
		}
		lu, lt := local[r.ID], local[p.DstNode]
		if lu < 0 || lt < 0 {
			return false
		}
		out, _ := rg.step(lu, lt, p.Aux2 >= 0 && p.Aux2&2 != 0)
		return out >= 0
	}
}

// NewFaultSwitchRoute validates a single-switch system against its fault
// set. The topology has no redundancy — every router and link is a single
// point of failure — so any disabled component that a chip depends on is a
// partition. The returned routing function is the pristine one.
func NewFaultSwitchRoute(s *topology.SingleSwitch) (netsim.RouteFunc, error) {
	if s.Net.Router(s.Switch).Disabled {
		return nil, &PartitionError{Where: "switch"}
	}
	for c, nic := range s.NICs {
		if !s.Net.ChipAlive(int32(c)) {
			continue // the chip dropped out of the workload entirely
		}
		if s.Net.Router(nic).Disabled {
			return nil, &PartitionError{Where: fmt.Sprintf("chip %d terminal", c)}
		}
		up := s.Net.Router(nic).Out[s.UplinkPort[c]].Link
		down := s.Net.Router(s.Switch).Out[s.DownPort[c]].Link
		if up.Disabled || down.Disabled {
			return nil, &PartitionError{Where: fmt.Sprintf("chip %d terminal", c)}
		}
	}
	return s.Route(), nil
}

// FaultDragonflyRoute routes packets on a switch-based Dragonfly with
// disabled components: shortest paths on the switch graph (alive local and
// global channels), so a dead cable is detoured through a third switch or
// group. The virtual channel of every hop is the packet's switch-graph
// hop index — derived from the distance tables, not per-packet state, so
// it is safe for the ideal switches' repeated lookahead route calls — and
// strictly increases along any path, keeping the channel dependency graph
// acyclic.
//
// Only minimal routing is supported: Valiant's intermediate-group state
// cannot be updated race-free on ideal switches. Construction fails with
// PartitionError when the surviving switch graph disconnects some pair or
// a chip loses its terminal channels, and with DegradedVCError when the
// degraded diameter needs more VCs than the links provision.
type FaultDragonflyRouter struct {
	df   *topology.Dragonfly
	a    int32
	n    int32   // switches
	next []int16 // [u*n+d] out port toward d, -1 on the diagonal
	dist []int16 // [u*n+d] switch-graph distance
	vcs  uint8
}

// NewFaultDragonflyRoute builds the fault-aware minimal router.
func NewFaultDragonflyRoute(df *topology.Dragonfly, mode Mode) (*FaultDragonflyRouter, error) {
	if mode != Minimal {
		return nil, fmt.Errorf("routing: fault-aware dragonfly routing supports only minimal mode (got %s)", mode)
	}
	g := int32(df.Params.Groups())
	a := int32(df.Params.A)
	n := g * a
	fd := &FaultDragonflyRouter{
		df:   df,
		a:    a,
		n:    n,
		next: make([]int16, n*n),
		dist: make([]int16, n*n),
	}

	// Switch index ↔ router lookup and terminal-channel validation.
	swIndex := make([]int32, len(df.Net.Routers))
	for i := range swIndex {
		swIndex[i] = -1
	}
	for w := int32(0); w < g; w++ {
		for s := int32(0); s < a; s++ {
			id := df.Switches[w][s]
			if df.Net.Router(id).Disabled {
				return nil, &PartitionError{Where: fmt.Sprintf("switch (%d,%d)", w, s)}
			}
			swIndex[id] = w*a + s
		}
	}
	for chip, nic := range df.NICs {
		if !df.Net.ChipAlive(int32(chip)) {
			continue // the chip dropped out of the workload entirely
		}
		if df.Net.Router(nic).Disabled {
			return nil, &PartitionError{Where: fmt.Sprintf("chip %d terminal", chip)}
		}
		w, s, t := df.Params.ChipLocation(int32(chip))
		up := df.Net.Router(nic).Out[df.NICUplink(int32(chip))].Link
		down := df.Net.Router(df.Switches[w][s]).Out[df.TermPort(w, s, t)].Link
		if up.Disabled || down.Disabled {
			return nil, &PartitionError{Where: fmt.Sprintf("chip %d terminal", chip)}
		}
	}

	// Alive inter-switch adjacency, edges in out-port order.
	type swEdge struct {
		to   int32
		port int16
	}
	adj := make([][]swEdge, n)
	radj := make([][]int32, n)
	for w := int32(0); w < g; w++ {
		for s := int32(0); s < a; s++ {
			u := w*a + s
			r := df.Net.Router(df.Switches[w][s])
			for o := range r.Out {
				l := r.Out[o].Link
				if l == nil || l.Disabled {
					continue
				}
				v := swIndex[l.Dst]
				if v < 0 {
					continue // terminal link
				}
				adj[u] = append(adj[u], swEdge{to: v, port: int16(o)})
				radj[v] = append(radj[v], u)
			}
		}
	}

	// Per-destination backward BFS; lowest out port among minimizers.
	const unreached = int16(1) << 14
	maxDist := int16(0)
	dq := make([]int32, 0, n)
	for d := int32(0); d < n; d++ {
		base := func(u int32) int32 { return u*n + d }
		for u := int32(0); u < n; u++ {
			fd.dist[base(u)] = unreached
			fd.next[base(u)] = -1
		}
		fd.dist[base(d)] = 0
		dq = dq[:0]
		dq = append(dq, d)
		for len(dq) > 0 {
			v := dq[0]
			dq = dq[1:]
			for _, u := range radj[v] {
				if fd.dist[base(u)] == unreached {
					fd.dist[base(u)] = fd.dist[base(v)] + 1
					dq = append(dq, u)
				}
			}
		}
		for u := int32(0); u < n; u++ {
			if u == d {
				continue
			}
			du := fd.dist[base(u)]
			if du == unreached {
				return nil, &PartitionError{Where: "switch graph"}
			}
			if du > maxDist {
				maxDist = du
			}
			for _, e := range adj[u] {
				if fd.dist[base(e.to)] == du-1 {
					fd.next[base(u)] = e.port
					break
				}
			}
		}
	}
	// Hop VCs: 0 on the NIC uplink, then 1..D on switch hops, D on the
	// terminal downlink — D+1 channels.
	fd.vcs = uint8(maxDist) + 1
	if prov := minProvisionedVCs(df.Net); fd.vcs > prov {
		return nil, &DegradedVCError{Need: fd.vcs, Provisioned: prov}
	}
	return fd, nil
}

// VCs returns the VC requirement (degraded switch-graph diameter + 1).
func (fd *FaultDragonflyRouter) VCs() uint8 { return fd.vcs }

// Func returns the netsim routing function. It mutates no packet state:
// the hop index is recovered from the distance tables, so repeated calls
// from ideal-switch lookahead are safe.
func (fd *FaultDragonflyRouter) Func() netsim.RouteFunc {
	a, n := fd.a, fd.n
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		if r.Kind == netsim.KindNIC {
			if r.Chip == p.DstChip {
				return int(r.EjectOut), 0
			}
			return fd.df.NICUplink(r.Chip), 0
		}
		wd, sd, td := fd.df.Params.ChipLocation(p.DstChip)
		dst := int32(wd)*a + int32(sd)
		cur := r.WGroup*a + r.CGroup
		ws, ss, _ := fd.df.Params.ChipLocation(p.SrcChip)
		src := int32(ws)*a + int32(ss)
		// VC = hops taken so far on the switch graph; every hop moves one
		// step closer, so it equals D(src,dst) - dist(here,dst).
		total := fd.dist[src*n+dst]
		if cur == dst {
			return fd.df.TermPort(wd, sd, td), uint8(total)
		}
		here := fd.dist[cur*n+dst]
		return int(fd.next[cur*n+dst]), uint8(total-here) + 1
	}
}

// Sanitize returns the keep-predicate for netsim.SanitizeInFlight after a
// mid-run recompute. The router keeps no per-packet scratch, but its VC
// derivation assumes every hop moved one step closer to the destination —
// true on the path the tables produced, not necessarily for a packet that
// followed the previous tables. Packets now farther from their destination
// than their source is (the subtraction would wrap) or whose remaining hop
// VCs would fall below their current VC (breaking the increasing-VC
// deadlock argument) are retired.
func (fd *FaultDragonflyRouter) Sanitize() func(r *netsim.Router, p *netsim.Packet) bool {
	a, n := fd.a, fd.n
	return func(r *netsim.Router, p *netsim.Packet) bool {
		if r.Kind == netsim.KindNIC {
			return true // uplink on VC 0 or ejection, valid under any tables
		}
		wd, sd, _ := fd.df.Params.ChipLocation(p.DstChip)
		dst := int32(wd)*a + int32(sd)
		ws, ss, _ := fd.df.Params.ChipLocation(p.SrcChip)
		src := int32(ws)*a + int32(ss)
		total := int32(fd.dist[src*n+dst])
		cur := r.WGroup*a + r.CGroup
		here := int32(fd.dist[cur*n+dst])
		if here > total {
			return false
		}
		if cur == dst {
			return int32(p.VC) <= total // terminal downlink uses VC total
		}
		return total-here+1 >= int32(p.VC)
	}
}
