package routing

import (
	"errors"
	"fmt"

	"sldf/internal/engine"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// ErrPartitioned is the sentinel matched (via errors.Is) by
// PartitionError: the injected faults disconnect some pair of alive
// terminals, so no fault-aware routing function exists.
var ErrPartitioned = errors.New("routing: faults partition the network")

// PartitionError reports where fault-aware route construction found the
// surviving network disconnected. Wraps ErrPartitioned.
type PartitionError struct {
	// Where names the disconnected structure, e.g. "C-group graph",
	// "C-group (2,1) mesh", "switch graph", "chip 7 terminal".
	Where string
}

// Error implements error.
func (e *PartitionError) Error() string {
	return fmt.Sprintf("routing: faults partition the network at %s", e.Where)
}

// Unwrap makes errors.Is(err, ErrPartitioned) work.
func (e *PartitionError) Unwrap() error { return ErrPartitioned }

// ErrDegradedVCs is the sentinel for fault sets whose detours need more
// virtual channels than the network provisions: the degraded diameter is
// too large for deadlock-free routing.
var ErrDegradedVCs = errors.New("routing: degraded paths exceed the provisioned virtual channels")

// DegradedVCError reports the VC shortfall. Wraps ErrDegradedVCs.
type DegradedVCError struct {
	Need        uint8
	Provisioned uint8
}

// Error implements error.
func (e *DegradedVCError) Error() string {
	return fmt.Sprintf("routing: degraded paths need %d VCs, network provisions %d", e.Need, e.Provisioned)
}

// Unwrap makes errors.Is(err, ErrDegradedVCs) work.
func (e *DegradedVCError) Unwrap() error { return ErrDegradedVCs }

// minProvisionedVCs returns the smallest VC count across alive links.
func minProvisionedVCs(net *netsim.Network) uint8 {
	min := uint8(255)
	for _, l := range net.Links {
		if !l.Disabled && l.VCs < min {
			min = l.VCs
		}
	}
	return min
}

// aliveRouter reports whether id is in range and not disabled.
func aliveRouter(net *netsim.Network, id netsim.NodeID) bool {
	return id >= 0 && int(id) < len(net.Routers) && !net.Router(id).Disabled
}

// ---------------------------------------------------------------------------
// Switch-less Dragonfly
// ---------------------------------------------------------------------------

// cgEdge is one usable external channel of the C-group graph.
type cgEdge struct {
	to   int32         // destination C-group index (w*AB + c)
	exit netsim.NodeID // owning port module on the source side
}

// FaultSLDFRouter routes packets on a switch-less Dragonfly with disabled
// components, generalizing Algorithm 1 to degraded topologies:
//
//   - Across C-groups, packets follow shortest paths on the C-group graph
//     (C-groups as nodes, alive local/global channels as edges), so a dead
//     cable is detoured through a third C-group or W-group.
//   - Inside each C-group, packets follow shortest up*/down* paths over the
//     surviving cores and port modules, so dead mesh links and dies are
//     detoured on a single virtual channel per traversal.
//   - One fresh VC per C-group traversal (Algorithm 1's invariant, tracked
//     in the packet's Phase field), so the VC index strictly increases
//     along any path and the channel dependency graph stays acyclic —
//     verified computationally by the fault property tests.
//
// Supported modes: Minimal and Valiant (an inter-W-group packet first
// routes to a uniformly random intermediate W-group). The reduced-VC
// scheme and the Adaptive/ValiantLower modes rely on geometric invariants
// that faults break, and are rejected.
//
// Construction fails with PartitionError when the surviving network
// disconnects some alive pair, and with DegradedVCError when degraded
// paths would need more VCs than the links provision.
type FaultSLDFRouter struct {
	s      *topology.SLDF
	mode   Mode
	groups int32
	ab     int32

	local   []int32   // router → local index within its C-group region
	regions []*region // per C-group

	// exitCG[cg*numCG+dst] is the port module that owns the next channel
	// on the shortest C-group path cg→dst (-1 when cg == dst).
	exitCG []netsim.NodeID
	// exitToW[cg*groups+w] is the port module toward the nearest C-group
	// of W-group w (-1 when cg is already in w).
	exitToW []netsim.NodeID
	// wActive[w] marks W-groups with surviving chips (Valiant only draws
	// intermediates from these).
	wActive []bool
	// admissible[cg*groups+w] marks detours from cg via w whose worst-case
	// traversal count fits the VC budget; detourCount[cg] counts them.
	// Valiant draws only admissible intermediates and falls back to
	// minimal routing when a source C-group has none.
	admissible  []bool
	detourCount []int32
	// distCG[u*numCG+d] is the C-group-graph distance u→d (cgUnreached when
	// either side is inactive); distToW/nextToW[u*groups+w] give the
	// distance and next C-group toward W-group w (Valiant only). Kept for
	// Sanitize, which must re-budget packets routed under older tables.
	distCG  []int32
	distToW []int32
	nextToW []int32
	// vcs is the worst-case C-group traversal count (the VC requirement).
	vcs uint8
}

// NewFaultSLDFRouter builds fault-aware routing for a switch-less
// Dragonfly whose network has disabled components (see
// netsim.Network.ApplyFaults). scheme/mode support: BaselineVC with
// Minimal or Valiant.
func NewFaultSLDFRouter(s *topology.SLDF, scheme Scheme, mode Mode) (*FaultSLDFRouter, error) {
	if scheme != BaselineVC {
		return nil, fmt.Errorf("routing: fault-aware SLDF routing requires the baseline VC scheme (got %s)", scheme)
	}
	if mode != Minimal && mode != Valiant {
		return nil, fmt.Errorf("routing: fault-aware SLDF routing supports minimal and valiant modes (got %s)", mode)
	}
	g := int32(s.Params.Groups())
	ab := int32(s.Params.AB)
	numCG := g * ab
	fr := &FaultSLDFRouter{
		s:      s,
		mode:   mode,
		groups: g,
		ab:     ab,
		local:  make([]int32, len(s.Net.Routers)),
	}
	for i := range fr.local {
		fr.local[i] = -1
	}

	// Per-C-group up*/down* regions over alive cores and usable ports. A
	// port module is usable only when it and both its SR stubs to an alive
	// attach core survive; an unusable port is treated as dead, taking its
	// external channel with it.
	usable := make([]bool, len(s.Net.Routers))
	portUsable := func(p *topology.PortInfo) bool {
		if !aliveRouter(s.Net, p.Node) || !aliveRouter(s.Net, p.AttachCore) {
			return false
		}
		up := s.Net.Router(p.AttachCore).Out[p.CoreToPort].Link
		down := s.Net.Router(p.Node).Out[p.PortToCore].Link
		return !up.Disabled && !down.Disabled
	}
	// active[cg] marks C-groups with at least one alive core (every core
	// is a terminal, so this is also "has an alive chip"). A coreless
	// C-group can neither source packets nor transit them (its port
	// modules interconnect only through cores), so it is skipped rather
	// than declared a partition.
	fr.regions = make([]*region, numCG)
	active := make([]bool, numCG)
	for w := int32(0); w < g; w++ {
		for c := int32(0); c < ab; c++ {
			cg := &s.CGroups[w][c]
			var ids []netsim.NodeID
			for y := range cg.Cores {
				for x := range cg.Cores[y] {
					if id := cg.Cores[y][x]; aliveRouter(s.Net, id) {
						ids = append(ids, id)
					}
				}
			}
			if len(ids) == 0 {
				continue
			}
			active[w*ab+c] = true
			eachPort(cg, int(c), g > 1, func(p *topology.PortInfo) {
				if portUsable(p) {
					usable[p.Node] = true
					ids = append(ids, p.Node)
				}
			})
			rg, ok := buildRegion(s.Net, ids, fr.local)
			if !ok {
				return nil, &PartitionError{Where: fmt.Sprintf("C-group (%d,%d) mesh", w, c)}
			}
			fr.regions[w*ab+c] = rg
		}
	}

	// C-group graph over usable external channels.
	adj := make([][]cgEdge, numCG)
	channel := func(from int32, p *topology.PortInfo) {
		if !usable[p.Node] {
			return
		}
		l := s.Net.Router(p.Node).Out[p.PortExt].Link
		if l == nil || l.Disabled {
			return
		}
		far := s.Net.Router(l.Dst)
		if !usable[far.ID] {
			return
		}
		adj[from] = append(adj[from], cgEdge{to: p.PeerW*ab + p.PeerC, exit: p.Node})
	}
	for w := int32(0); w < g; w++ {
		for c := int32(0); c < ab; c++ {
			cg := &s.CGroups[w][c]
			from := w*ab + c
			eachPort(cg, int(c), g > 1, func(p *topology.PortInfo) { channel(from, p) })
		}
	}

	// Shortest-path tables per destination C-group and per destination
	// W-group (the latter drives the Valiant detour's first phase). For
	// Valiant, eccPerW[e][w'] accumulates e's worst distance to any
	// C-group of W-group w', so the exact detour-path VC requirement can
	// be computed below.
	valiant := mode == Valiant && g > 2
	fr.exitCG = make([]netsim.NodeID, numCG*numCG)
	fr.distCG = make([]int32, numCG*numCG)
	for i := range fr.exitCG {
		fr.exitCG[i] = -1
		fr.distCG[i] = cgUnreached
	}
	dist := make([]int32, numCG)
	var eccPerW []int32
	if valiant {
		eccPerW = make([]int32, numCG*g)
	}
	maxTraversals := int32(1)
	for d := int32(0); d < numCG; d++ {
		if !active[d] {
			continue // no packet can target a coreless C-group
		}
		bfsCG(adj, []int32{d}, dist)
		for u := int32(0); u < numCG; u++ {
			fr.exitCG[u*numCG+d] = -1
			if u == d && active[u] {
				fr.distCG[u*numCG+d] = 0
			}
			if u == d || !active[u] {
				continue
			}
			fr.distCG[u*numCG+d] = dist[u]
			if dist[u] >= cgUnreached {
				return nil, &PartitionError{Where: "C-group graph"}
			}
			if dist[u]+1 > maxTraversals {
				maxTraversals = dist[u] + 1
			}
			fr.exitCG[u*numCG+d], _ = nextExit(adj, dist, u)
			if valiant && dist[u] > eccPerW[u*g+d/ab] {
				eccPerW[u*g+d/ab] = dist[u]
			}
		}
	}
	if valiant {
		fr.wActive = make([]bool, g)
		fr.admissible = make([]bool, numCG*g)
		fr.detourCount = make([]int32, numCG)
		activeW := int32(0)
		for w := int32(0); w < g; w++ {
			for c := int32(0); c < ab; c++ {
				if active[w*ab+c] {
					fr.wActive[w] = true
					activeW++
					break
				}
			}
		}
		if activeW < 3 {
			// Fewer than three W-groups survive: every detour set stays
			// empty and Valiant degrades to minimal routing.
			valiant = false
		}
	}
	if valiant {
		fr.exitToW = make([]netsim.NodeID, numCG*g)
		fr.nextToW = make([]int32, numCG*g) // next C-group on the path to W w
		fr.distToW = make([]int32, numCG*g)
		for i := range fr.exitToW {
			// Initialized for every W-group, active or not: a stale packet
			// scratch naming an inactive intermediate must resolve to "no
			// exit", never to router 0.
			fr.exitToW[i] = -1
			fr.nextToW[i] = -1
			fr.distToW[i] = cgUnreached
		}
		nextToW, distToW := fr.nextToW, fr.distToW
		sources := make([]int32, 0, ab)
		for w := int32(0); w < g; w++ {
			if !fr.wActive[w] {
				continue // never drawn as an intermediate
			}
			sources = sources[:0]
			for c := int32(0); c < ab; c++ {
				sources = append(sources, w*ab+c)
			}
			bfsCG(adj, sources, dist)
			for u := int32(0); u < numCG; u++ {
				distToW[u*g+w] = dist[u]
				if dist[u] == 0 || !active[u] {
					continue
				}
				if dist[u] >= cgUnreached {
					return nil, &PartitionError{Where: "C-group graph"}
				}
				fr.exitToW[u*g+w], nextToW[u*g+w] = nextExit(adj, dist, u)
			}
		}
		// Exact worst-case Valiant traversal count per (source C-group,
		// intermediate W-group). A detour path from u via W-group w visits
		// distToW(u,w)+1 C-groups reaching w's entry C-group e (determined
		// by the toW tables), then dist(e, dst) more toward a destination
		// outside w; the entry port's possible U-turn is itself the first
		// of those dist hops, so it adds no traversal. Detours that fit
		// the provisioned VC budget are admissible; on heavily degraded
		// networks where some detour would overflow, Valiant simply stops
		// drawing that intermediate (and falls back to minimal routing for
		// source C-groups with no admissible intermediate at all), so the
		// deadlock-freedom invariant — strictly increasing VC per
		// traversal — holds at any damage level that minimal routing
		// survives.
		budget := int32(minProvisionedVCs(s.Net))
		best := make([]int32, numCG)  // max over w' of eccPerW
		bestW := make([]int32, numCG) // its argmax
		second := make([]int32, numCG)
		for u := int32(0); u < numCG; u++ {
			bestW[u] = -1
			for w := int32(0); w < g; w++ {
				if e := eccPerW[u*g+w]; e > best[u] {
					second[u] = best[u]
					best[u], bestW[u] = e, w
				} else if e > second[u] {
					second[u] = e
				}
			}
		}
		for u := int32(0); u < numCG; u++ {
			if !active[u] {
				continue
			}
			wu := u / ab
			for w := int32(0); w < g; w++ {
				if w == wu || !fr.wActive[w] {
					continue
				}
				e := u // entry C-group: chase the toW pointers
				for e/ab != w {
					e = nextToW[e*g+w]
				}
				ecc := best[e]
				if bestW[e] == w {
					ecc = second[e] // destinations never lie in the detour W
				}
				v := distToW[u*g+w] + ecc + 1
				if v > budget {
					continue
				}
				fr.admissible[u*g+w] = true
				fr.detourCount[u]++
				if v > maxTraversals {
					maxTraversals = v
				}
			}
		}
	}
	if maxTraversals > 255 {
		maxTraversals = 255
	}
	fr.vcs = uint8(maxTraversals)
	if prov := minProvisionedVCs(s.Net); fr.vcs > prov {
		return nil, &DegradedVCError{Need: fr.vcs, Provisioned: prov}
	}
	return fr, nil
}

// eachPort visits every external port of a C-group in label order; global
// ports are skipped on single-W-group systems (they are unbuilt).
func eachPort(cg *topology.CGroupInfo, c int, globals bool, f func(*topology.PortInfo)) {
	for peer := range cg.LocalPorts {
		if peer == c {
			continue
		}
		f(&cg.LocalPorts[peer])
	}
	if globals {
		for j := range cg.GlobalPorts {
			f(&cg.GlobalPorts[j])
		}
	}
}

const cgUnreached = int32(1) << 30

// bfsCG fills dist with hop counts to the nearest of the given destination
// C-groups, walking the reversed... the C-group graph is built from
// bidirectional channels whose directions fail together, plus per-direction
// explicit faults; BFS therefore runs over reversed edges to honor
// direction asymmetry.
func bfsCG(adj [][]cgEdge, dsts []int32, dist []int32) {
	// Build the reverse relation lazily per call: the graph is small and
	// construction-time only.
	radj := make([][]int32, len(adj))
	for u := range adj {
		for _, e := range adj[u] {
			radj[e.to] = append(radj[e.to], int32(u))
		}
	}
	for i := range dist {
		dist[i] = cgUnreached
	}
	queue := make([]int32, 0, len(adj))
	for _, d := range dsts {
		dist[d] = 0
		queue = append(queue, d)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range radj[v] {
			if dist[u] == cgUnreached {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
}

// nextExit picks u's exit channel along a shortest path — the first edge
// in adjacency (label) order whose far end is strictly closer — returning
// the owning port and the far C-group.
func nextExit(adj [][]cgEdge, dist []int32, u int32) (netsim.NodeID, int32) {
	for _, e := range adj[u] {
		if dist[e.to] == dist[u]-1 {
			return e.exit, e.to
		}
	}
	return -1, -1
}

// VCs returns the virtual channels the degraded configuration requires
// (the worst-case C-group traversal count).
func (fr *FaultSLDFRouter) VCs() uint8 { return fr.vcs }

// Install sets the routing function on the network.
func (fr *FaultSLDFRouter) Install(net *netsim.Network) { net.SetRoute(fr.Func()) }

// exitOf resolves the packet's exit port from C-group cg: toward the
// intermediate W-group aux when one is pending, else toward dstCG (-1 when
// the packet is home).
func (fr *FaultSLDFRouter) exitOf(cg, dstCG, aux int32) netsim.NodeID {
	if aux >= 0 {
		return fr.exitToW[cg*fr.groups+aux]
	}
	if cg != dstCG {
		return fr.exitCG[cg*int32(len(fr.regions))+dstCG]
	}
	return -1
}

// Func returns the netsim routing function.
//
// Per-packet scratch conventions (all mutations happen on non-ideal
// routers, where the routing function runs exactly once per visit):
// Phase is the 0-based C-group traversal index and the VC of every hop
// inside the current C-group; Aux is the pending Valiant intermediate
// W-group (-1 when none); Aux2 is -1 until first touch, then bit 0 marks
// initialization and bit 1 the up*/down* descending phase (reset on every
// C-group entry).
func (fr *FaultSLDFRouter) Func() netsim.RouteFunc {
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		if p.Aux2 < 0 {
			// First touch, at the source core.
			p.Aux2 = 1
			p.Phase = 0
			p.Aux = -1
			if fr.mode == Valiant && fr.groups > 2 {
				if d := net.Router(p.DstNode); d.WGroup != r.WGroup {
					p.Aux = fr.pickValiant(p.RouteRNG(r), r.WGroup*fr.ab+r.CGroup, r.WGroup, d.WGroup)
				}
			}
		}
		if p.Aux >= 0 && r.WGroup == p.Aux {
			p.Aux = -1 // arrived in the intermediate W-group
		}
		d := net.Router(p.DstNode)
		cg := r.WGroup*fr.ab + r.CGroup
		dstCG := d.WGroup*fr.ab + d.CGroup

		if r.Kind == netsim.KindPort {
			if p.VC == p.Phase+1 {
				// Arrived on the external channel: a new traversal begins.
				p.Phase++
				p.Aux2 = 1
			}
			exit := fr.exitOf(cg, dstCG, p.Aux)
			if exit == r.ID {
				// This port owns the packet's next channel (possibly a
				// U-turn at a Valiant phase switch): go external on the
				// next traversal's VC.
				return portOutExternal, p.Phase + 1
			}
			return fr.regionStep(r, p, exit)
		}

		// Core router.
		if r.ID == p.DstNode {
			return int(r.EjectOut), 0
		}
		exit := fr.exitOf(cg, dstCG, p.Aux)
		return fr.regionStep(r, p, exit)
	}
}

// regionStep advances the packet inside its current C-group along the
// region's up*/down* tables: toward its exit port module, or toward the
// destination core when the packet is home (exit < 0).
func (fr *FaultSLDFRouter) regionStep(r *netsim.Router, p *netsim.Packet, exit netsim.NodeID) (int, uint8) {
	target := exit
	if target < 0 {
		target = p.DstNode
	}
	rg := fr.regions[r.WGroup*fr.ab+r.CGroup]
	out, descending := rg.step(fr.local[r.ID], fr.local[target], p.Aux2&2 != 0)
	if descending && p.Aux2&2 == 0 {
		p.Aux2 |= 2
	}
	return int(out), p.Phase
}

// pickValiant draws a uniform intermediate W-group different from the
// source and destination, among the source C-group's admissible detours.
// Returns -1 (minimal fallback) when none exists.
func (fr *FaultSLDFRouter) pickValiant(rng *engine.RNG, cg, ws, wd int32) int32 {
	n := fr.detourCount[cg]
	if n == 0 {
		return -1
	}
	if n <= 2 {
		// The admissible set may be entirely excluded by ws/wd: enumerate.
		var cands []int32
		for w := int32(0); w < fr.groups; w++ {
			if w != ws && w != wd && fr.admissible[cg*fr.groups+w] {
				cands = append(cands, w)
			}
		}
		if len(cands) == 0 {
			return -1
		}
		return cands[rng.Intn(len(cands))]
	}
	for {
		aux := int32(rng.Intn(int(fr.groups)))
		if aux != ws && aux != wd && fr.admissible[cg*fr.groups+aux] {
			return aux
		}
	}
}

// Sanitize returns the keep-predicate for netsim.SanitizeInFlight after
// this router replaced an older one mid-run (live churn). A surviving
// packet's scratch state was written under the previous component set, so
// the predicate repairs what it can and retires what it cannot:
//
//   - a pending Valiant intermediate (Aux) pointing at a W-group the new
//     tables cannot reach is cleared — the packet continues minimally;
//   - a packet stranded outside every routable region (e.g. inside a port
//     module whose SR stub died) is dropped;
//   - a packet whose remaining C-group traversals no longer fit the VC
//     budget from its current VC is dropped — continuing it would either
//     overflow the provisioned VCs or break the strictly-increasing-VC
//     deadlock invariant;
//   - a descending up*/down* packet with no legal descending path to its
//     (possibly re-chosen) region target under the new labels is dropped.
//
// The predicate mirrors Func's per-visit reads without advancing any state
// other than these repairs, so a kept packet is guaranteed to route on its
// next allocation.
func (fr *FaultSLDFRouter) Sanitize() func(r *netsim.Router, p *netsim.Packet) bool {
	numCG := int32(len(fr.regions))
	net := fr.s.Net
	return func(r *netsim.Router, p *netsim.Packet) bool {
		if fr.local[r.ID] < 0 || fr.regions[r.WGroup*fr.ab+r.CGroup] == nil {
			return false // current position is outside every routable region
		}
		cg := r.WGroup*fr.ab + r.CGroup
		d := net.Router(p.DstNode)
		dstCG := d.WGroup*fr.ab + d.CGroup
		if fr.local[p.DstNode] < 0 {
			return false
		}

		// Repair the Valiant scratch: clear intermediates the new tables
		// cannot serve (the packet then heads straight for its destination).
		aux := p.Aux
		if aux >= 0 {
			if r.WGroup == aux {
				aux = -1 // Func clears this on arrival anyway
			} else if fr.exitToW == nil || aux >= fr.groups || !fr.wActive[aux] ||
				fr.distToW[cg*fr.groups+aux] >= cgUnreached {
				aux = -1
			}
			p.Aux = aux
		}

		// Re-budget: the VC indices still ahead of the packet are
		// phi..phi+t, where phi is its effective current traversal index
		// and t the remaining C-group crossings under the new tables.
		phi := int32(p.Phase)
		bump := r.Kind == netsim.KindPort && p.Aux2 >= 0 && p.VC == p.Phase+1
		if bump {
			phi++
		}
		var t int32
		if aux >= 0 {
			e := cg // entry C-group of the detour W-group
			for e/fr.ab != aux {
				e = fr.nextToW[e*fr.groups+aux]
				if e < 0 {
					return false
				}
			}
			dcd := fr.distCG[e*numCG+dstCG]
			if dcd >= cgUnreached {
				return false
			}
			t = fr.distToW[cg*fr.groups+aux] + dcd
		} else {
			t = fr.distCG[cg*numCG+dstCG]
			if t >= cgUnreached {
				return false
			}
		}
		if phi+t >= int32(fr.vcs) {
			return false
		}

		// The immediate next step must exist. Mirror Func: ports owning the
		// packet's next channel go external; everything else takes a region
		// step, which can dead-end for packets already descending under the
		// old up*/down* labels.
		if r.Kind == netsim.KindCore && r.ID == p.DstNode {
			return true // ejects
		}
		exit := fr.exitOf(cg, dstCG, aux)
		if r.Kind == netsim.KindPort && exit == r.ID {
			return true // goes external on an alive channel by construction
		}
		target := exit
		if target < 0 {
			target = p.DstNode
		}
		lu, lt := fr.local[r.ID], fr.local[target]
		if lt < 0 {
			return false
		}
		rg := fr.regions[cg]
		if lt >= rg.n || rg.nodes[lt] != target || lu >= rg.n || rg.nodes[lu] != r.ID {
			return false // position and target are not in the same region
		}
		descending := p.Aux2 >= 0 && p.Aux2&2 != 0 && !bump
		out, _ := rg.step(lu, lt, descending)
		return out >= 0
	}
}

// AuxChoices returns every intermediate W-group the router may draw for a
// packet srcChip→dstChip, or {-1} when it routes minimally (same W-group,
// minimal mode, or no admissible detour). The property tests use it to
// trace every path the router can produce.
func (fr *FaultSLDFRouter) AuxChoices(srcChip, dstChip int32) []int32 {
	if fr.mode != Valiant || fr.groups <= 2 {
		return []int32{-1}
	}
	ws, cs, _ := fr.s.ChipLocation(srcChip)
	wd, _, _ := fr.s.ChipLocation(dstChip)
	if ws == wd {
		return []int32{-1}
	}
	cg := int32(ws)*fr.ab + int32(cs)
	var out []int32
	for w := int32(0); w < fr.groups; w++ {
		if w != int32(ws) && w != int32(wd) && fr.admissible[cg*fr.groups+w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return []int32{-1}
	}
	return out
}
