package routing

import (
	"errors"
	"fmt"
	"testing"

	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// applySpec resolves a fault spec against a domain and applies it.
func applySpec(t *testing.T, net *netsim.Network, spec topology.FaultSpec, d topology.FaultDomain) error {
	t.Helper()
	routers, links := spec.Resolve(d)
	return net.ApplyFaults(routers, links)
}

// checkTraceAvoidsFaults walks every (source node, destination chip) pair
// (and every aux choice) through the routing function and fails if any hop
// uses a disabled link or touches a disabled router.
func checkTraceAvoidsFaults(t *testing.T, net *netsim.Network, route netsim.RouteFunc, aux func(src, dst int32) []int32) {
	t.Helper()
	chips := int32(net.NumChips())
	for srcChip := int32(0); srcChip < chips; srcChip++ {
		for _, srcNode := range net.ChipNodes[srcChip] {
			for dstChip := int32(0); dstChip < chips; dstChip++ {
				if dstChip == srcChip {
					continue
				}
				for _, dstNode := range net.ChipNodes[dstChip] {
					for _, a := range aux(srcChip, dstChip) {
						p := &netsim.Packet{
							SrcChip: srcChip, DstChip: dstChip,
							SrcNode: srcNode, DstNode: dstNode,
							Size: 4, Aux: a, Aux2: 1,
						}
						hops, err := TracePath(net, route, p, 4096)
						if err != nil {
							t.Fatalf("chip %d→%d (aux %d): %v", srcChip, dstChip, a, err)
						}
						for _, h := range hops {
							l := net.Links[h[0]]
							if l.Disabled {
								t.Fatalf("chip %d→%d (aux %d): route crosses disabled link %d (%d→%d)",
									srcChip, dstChip, a, l.ID, l.Src, l.Dst)
							}
							if net.Router(l.Src).Disabled || net.Router(l.Dst).Disabled {
								t.Fatalf("chip %d→%d (aux %d): route touches a disabled router via link %d",
									srcChip, dstChip, a, l.ID)
							}
						}
					}
				}
			}
		}
	}
}

// faultSLDF builds a small 5-W-group switch-less Dragonfly with 8 VCs (the
// fault-mode provisioning) and the given faults applied.
func faultSLDF(t *testing.T, spec topology.FaultSpec) (*topology.SLDF, error) {
	t.Helper()
	p := topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(8, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := applySpec(t, s.Net, spec, s.FaultDomain()); err != nil {
		s.Net.Close()
		return nil, err
	}
	return s, nil
}

// TestFaultedSLDFProperties is the subsystem's central property test: for
// seeded random fault masks, fault-aware routing must deliver every packet
// between alive terminals without ever crossing a disabled component, and
// its channel dependency graph must stay acyclic (deadlock freedom). Specs
// that happen to kill a chip or partition the survivors must be rejected
// with the typed errors.
func TestFaultedSLDFProperties(t *testing.T) {
	feasible := 0
	for seed := uint64(1); seed <= 4; seed++ {
		for _, fractions := range [][2]float64{{0.08, 0}, {0, 0.08}, {0.15, 0.1}} {
			spec := topology.FaultSpec{Seed: seed, LinkFraction: fractions[0], RouterFraction: fractions[1]}
			for _, mode := range []Mode{Minimal, Valiant} {
				name := fmt.Sprintf("seed%d/links%.2f/routers%.2f/%s", seed, fractions[0], fractions[1], mode)
				s, err := faultSLDF(t, spec)
				if err != nil {
					if !errors.Is(err, netsim.ErrDeadChip) {
						t.Fatalf("%s: unexpected apply error: %v", name, err)
					}
					continue // spec kills a whole chiplet: correctly rejected
				}
				fr, err := NewFaultSLDFRouter(s, BaselineVC, mode)
				if err != nil {
					if !errors.Is(err, ErrPartitioned) && !errors.Is(err, ErrDegradedVCs) {
						t.Fatalf("%s: unexpected construction error: %v", name, err)
					}
					s.Net.Close()
					continue
				}
				feasible++
				// AuxChoices enumerates exactly the intermediates the router
				// may draw (minimal fallback included), so the trace covers
				// every producible path.
				aux := MinimalAux
				if mode == Valiant {
					aux = fr.AuxChoices
				}
				checkTraceAvoidsFaults(t, s.Net, fr.Func(), aux)
				g, err := BuildCDG(s.Net, fr.Func(), 8, aux)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if cyc, witness := g.HasCycle(); cyc {
					t.Fatalf("%s: channel dependency cycle %v", name, witness)
				}
				s.Net.Close()
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible faulted configuration was exercised; the test is vacuous")
	}
}

// TestFaultedSLDFPartitionRejected cuts every external channel of C-group
// (0,0); its chips survive but cannot reach the rest of the system, which
// must surface as the typed partition error.
func TestFaultedSLDFPartitionRejected(t *testing.T) {
	p := topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(8, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	cg := &s.CGroups[0][0]
	var ports []netsim.NodeID
	for peer := range cg.LocalPorts {
		if peer != 0 {
			ports = append(ports, cg.LocalPorts[peer].Node)
		}
	}
	for j := range cg.GlobalPorts {
		ports = append(ports, cg.GlobalPorts[j].Node)
	}
	if err := s.Net.ApplyFaults(ports, nil); err != nil {
		t.Fatal(err)
	}
	_, err = NewFaultSLDFRouter(s, BaselineVC, Minimal)
	if err == nil {
		t.Fatal("partitioned network accepted")
	}
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("error %v does not wrap ErrPartitioned", err)
	}
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PartitionError", err)
	}
}

// TestFaultedSLDFModeRestrictions pins the unsupported combinations.
func TestFaultedSLDFModeRestrictions(t *testing.T) {
	s, err := faultSLDF(t, topology.FaultSpec{Seed: 1, LinkFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if _, err := NewFaultSLDFRouter(s, ReducedVC, Minimal); err == nil {
		t.Fatal("reduced-VC scheme accepted under faults")
	}
	for _, mode := range []Mode{ValiantLower, Adaptive} {
		if _, err := NewFaultSLDFRouter(s, BaselineVC, mode); err == nil {
			t.Fatalf("mode %s accepted under faults", mode)
		}
	}
}

// TestFaultedMeshProperties checks the standalone mesh: seeded fault
// masks, all-pairs delivery avoiding disabled components, acyclic CDG on
// the single virtual channel.
func TestFaultedMeshProperties(t *testing.T) {
	feasible := 0
	for seed := uint64(1); seed <= 6; seed++ {
		g, err := topology.BuildMeshCGroup(4, 2, topology.DefaultLinkClasses(1, 1), opts())
		if err != nil {
			t.Fatal(err)
		}
		spec := topology.FaultSpec{Seed: seed, LinkFraction: 0.1, RouterFraction: 0.05}
		if err := applySpec(t, g.Net, spec, g.FaultDomain()); err != nil {
			if !errors.Is(err, netsim.ErrDeadChip) {
				t.Fatalf("seed %d: %v", seed, err)
			}
			g.Net.Close()
			continue
		}
		route, err := NewFaultMeshRoute(g)
		if err != nil {
			if !errors.Is(err, ErrPartitioned) {
				t.Fatalf("seed %d: %v", seed, err)
			}
			g.Net.Close()
			continue
		}
		feasible++
		checkTraceAvoidsFaults(t, g.Net, route, MinimalAux)
		cdg, err := BuildCDG(g.Net, route, 1, MinimalAux)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cyc, witness := cdg.HasCycle(); cyc {
			t.Fatalf("seed %d: dependency cycle %v", seed, witness)
		}
		g.Net.Close()
	}
	if feasible == 0 {
		t.Fatal("no feasible faulted mesh was exercised")
	}
}

// TestFaultedMeshPartitionRejected splits a 2x2-chiplet mesh by cutting
// the full vertical boundary between its chiplet columns.
func TestFaultedMeshPartitionRejected(t *testing.T) {
	g, err := topology.BuildMeshCGroup(2, 2, topology.DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	var cut []int32
	for _, l := range g.Net.Links {
		src, dst := g.Net.Router(l.Src), g.Net.Router(l.Dst)
		if (src.X == 1 && dst.X == 2) || (src.X == 2 && dst.X == 1) {
			cut = append(cut, l.ID)
		}
	}
	if err := g.Net.ApplyFaults(nil, cut); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultMeshRoute(g); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
}

// TestFaultedDragonflyProperties checks the switch-based baseline: seeded
// channel faults, all-pairs delivery avoiding disabled components, acyclic
// CDG under the hop-indexed VC ladder.
func TestFaultedDragonflyProperties(t *testing.T) {
	feasible := 0
	for seed := uint64(1); seed <= 6; seed++ {
		df, err := topology.BuildDragonfly(topology.DragonflyParams{P: 2, A: 2, H: 1},
			topology.DefaultLinkClasses(8, 1), opts())
		if err != nil {
			t.Fatal(err)
		}
		spec := topology.FaultSpec{Seed: seed, LinkFraction: 0.2}
		if err := applySpec(t, df.Net, spec, df.FaultDomain()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fd, err := NewFaultDragonflyRoute(df, Minimal)
		if err != nil {
			if !errors.Is(err, ErrPartitioned) && !errors.Is(err, ErrDegradedVCs) {
				t.Fatalf("seed %d: %v", seed, err)
			}
			df.Net.Close()
			continue
		}
		feasible++
		checkTraceAvoidsFaults(t, df.Net, fd.Func(), MinimalAux)
		cdg, err := BuildCDG(df.Net, fd.Func(), 8, MinimalAux)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cyc, witness := cdg.HasCycle(); cyc {
			t.Fatalf("seed %d: dependency cycle %v", seed, witness)
		}
		df.Net.Close()
	}
	if feasible == 0 {
		t.Fatal("no feasible faulted dragonfly was exercised")
	}
}

// TestFaultedDragonflyRestrictions pins minimal-only support and the
// partition error for a switch cut off by explicit faults.
func TestFaultedDragonflyRestrictions(t *testing.T) {
	df, err := topology.BuildDragonfly(topology.DragonflyParams{P: 2, A: 2, H: 1},
		topology.DefaultLinkClasses(8, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer df.Net.Close()
	if _, err := NewFaultDragonflyRoute(df, Valiant); err == nil {
		t.Fatal("valiant accepted under faults")
	}
	// Cut every inter-switch channel of switch (0,0): its chips survive the
	// netsim check but the switch graph partitions.
	var cut []int32
	sw := df.Switches[0][0]
	for _, l := range df.Net.Links {
		if (l.Src == sw || l.Dst == sw) &&
			df.Net.Router(l.Src).Kind == netsim.KindSwitch &&
			df.Net.Router(l.Dst).Kind == netsim.KindSwitch {
			cut = append(cut, l.ID)
		}
	}
	if err := df.Net.ApplyFaults(nil, cut); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultDragonflyRoute(df, Minimal); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
}

// TestFaultedSingleSwitch: the single switch has no redundancy, so its
// fault domain is empty and any explicit fault is a partition.
func TestFaultedSingleSwitch(t *testing.T) {
	s, err := topology.BuildSingleSwitch(4, topology.DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if _, err := NewFaultSwitchRoute(s); err != nil {
		t.Fatalf("pristine switch rejected: %v", err)
	}
	if err := s.Net.ApplyFaults(nil, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFaultSwitchRoute(s); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
}
