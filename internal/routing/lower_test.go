package routing

import (
	"testing"
	"testing/quick"

	"sldf/internal/engine"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// lowerAux enumerates the admissible intermediates for ValiantLower:
// every W-group strictly below the destination except the source, plus the
// minimal fallback when no candidate exists.
func lowerAux(wOf func(chip int32) int32) func(src, dst int32) []int32 {
	return func(src, dst int32) []int32 {
		ws, wd := wOf(src), wOf(dst)
		if ws == wd {
			return []int32{-1}
		}
		var out []int32
		for w := int32(0); w < wd; w++ {
			if w != ws {
				out = append(out, w)
			}
		}
		if len(out) == 0 {
			return []int32{-1}
		}
		return out
	}
}

func TestValiantLowerRequiresReduced(t *testing.T) {
	p := topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2,
		Layout: topology.LayoutPerimeter}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(6, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if _, err := NewSLDFRouter(s, BaselineVC, ValiantLower); err == nil {
		t.Fatal("ValiantLower must require ReducedVC")
	}
}

func TestValiantLowerVCCount(t *testing.T) {
	// The whole point: non-minimal routing at the minimal VC count — only
	// one more VC than the traditional Dragonfly's minimal routing needs.
	if got := SLDFVCCount(ReducedVC, ValiantLower); got != 3 {
		t.Fatalf("ValiantLower VCs = %d, want 3", got)
	}
}

func TestValiantLowerCDGAcyclic(t *testing.T) {
	s, sr := smallSLDF(t, ReducedVC, ValiantLower)
	defer s.Net.Close()
	wOf := func(chip int32) int32 {
		w, _, _ := s.ChipLocation(chip)
		return int32(w)
	}
	g, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), lowerAux(wOf))
	if err != nil {
		t.Fatal(err)
	}
	if cyc, witness := g.HasCycle(); cyc {
		t.Fatalf("ValiantLower dependency cycle: %v", witness)
	}
}

func TestValiantLowerAllPairsDeliverable(t *testing.T) {
	s, sr := smallSLDF(t, ReducedVC, ValiantLower)
	defer s.Net.Close()
	route := sr.Func()
	chips := int32(s.Net.NumChips())
	wOf := func(chip int32) int32 {
		w, _, _ := s.ChipLocation(chip)
		return int32(w)
	}
	aux := lowerAux(wOf)
	for src := int32(0); src < chips; src++ {
		for dst := int32(0); dst < chips; dst++ {
			if src == dst {
				continue
			}
			for _, a := range aux(src, dst) {
				p := &netsim.Packet{
					SrcChip: src, DstChip: dst,
					SrcNode: s.Net.ChipNodes[src][0],
					DstNode: s.Net.ChipNodes[dst][0],
					Size:    4, Aux: a, Aux2: 1,
				}
				if _, err := TracePath(s.Net, route, p, 4096); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestPickIntermediateLowerProperty(t *testing.T) {
	s, sr := smallSLDF(t, ReducedVC, ValiantLower)
	defer s.Net.Close()
	rng := engine.NewRNG(5)
	f := func(wsRaw, wdRaw uint8) bool {
		g := int32(s.Params.Groups())
		ws := int32(wsRaw) % g
		wd := int32(wdRaw) % g
		if ws == wd {
			return true
		}
		aux := sr.pickIntermediate(&rng, ws, wd)
		if aux < 0 {
			// Fallback only legal when no candidate exists.
			return wd == 0 || (wd == 1 && ws == 0)
		}
		return aux < wd && aux != ws
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValiantLowerSimulatesUnderLoad(t *testing.T) {
	s, _ := smallSLDF(t, ReducedVC, ValiantLower)
	defer s.Net.Close()
	s.Net.SetTraffic(netsim.GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
		if rng.Bernoulli(0.2) {
			d := rng.Int31n(int32(s.Net.NumChips()))
			if d == src {
				return -1
			}
			return d
		}
		return -1
	}), 4, netsim.DstSameIndex)
	s.Net.StartMeasurement()
	if err := s.Net.Run(1200); err != nil {
		t.Fatal(err)
	}
	st := s.Net.Snapshot()
	if st.DeliveredPkts == 0 {
		t.Fatal("nothing delivered")
	}
}
