package routing

import (
	"testing"
	"testing/quick"

	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// buildFor constructs an SLDF for arbitrary small parameters and a scheme.
func buildFor(t testing.TB, p topology.SLDFParams, scheme Scheme, mode Mode) (*topology.SLDF, *SLDFRouter, error) {
	t.Helper()
	if scheme == ReducedVC {
		p.Layout = topology.LayoutSouthNorth
	}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(SLDFVCCount(scheme, mode), 1), opts())
	if err != nil {
		return nil, nil, err
	}
	sr, err := NewSLDFRouter(s, scheme, mode)
	if err != nil {
		s.Net.Close()
		return nil, nil, err
	}
	return s, sr, nil
}

// TestReducedVCRectangularMeshCDG verifies the reduced scheme's restricted
// routing on non-square C-groups (the radix-24/radix-32 shapes): the
// row-column-row class argument must hold for any MeshX×MeshY.
func TestReducedVCRectangularMeshCDG(t *testing.T) {
	shapes := []topology.SLDFParams{
		{NoCDim: 2, ChipCols: 2, ChipRows: 1, AB: 2, H: 1}, // 4×2 mesh
		{NoCDim: 2, ChipCols: 1, ChipRows: 2, AB: 2, H: 1}, // 2×4 mesh
		{NoCDim: 2, ChipCols: 3, ChipRows: 1, AB: 2, H: 1}, // 6×2 mesh
		{NoCDim: 1, ChipCols: 4, ChipRows: 2, AB: 3, H: 1}, // 4×2, tiny NoC
	}
	for _, p := range shapes {
		for _, mode := range []Mode{Minimal, Valiant, ValiantLower} {
			s, sr, err := buildFor(t, p, ReducedVC, mode)
			if err != nil {
				t.Fatalf("%+v/%v: %v", p, mode, err)
			}
			wOf := func(chip int32) int32 {
				w, _, _ := s.ChipLocation(chip)
				return int32(w)
			}
			aux := MinimalAux
			switch mode {
			case Valiant:
				aux = allAux(s.Params.Groups(), wOf)
			case ValiantLower:
				aux = lowerAux(wOf)
			}
			g, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), aux)
			if err != nil {
				t.Fatalf("%+v/%v: %v", p, mode, err)
			}
			if cyc, witness := g.HasCycle(); cyc {
				t.Fatalf("%+v/%v: dependency cycle %v", p, mode, witness)
			}
			s.Net.Close()
		}
	}
}

// TestRandomParamsAllPairsRoute checks assorted small SLDF parameter
// combinations: every (src,dst) pair must be deliverable under both
// schemes (BuildCDG enumerates all pairs and fails on any routing error).
func TestRandomParamsAllPairsRoute(t *testing.T) {
	cases := []topology.SLDFParams{
		{NoCDim: 1, ChipCols: 2, ChipRows: 1, AB: 2, H: 1},
		{NoCDim: 2, ChipCols: 1, ChipRows: 1, AB: 3, H: 1},
		{NoCDim: 1, ChipCols: 2, ChipRows: 2, AB: 2, H: 2},
	}
	for _, p := range cases {
		if p.MeshX() < 2 || p.MeshY() < 2 {
			continue
		}
		for _, scheme := range []Scheme{BaselineVC, ReducedVC} {
			s, sr, err := buildFor(t, p, scheme, Minimal)
			if err != nil {
				t.Fatalf("%+v/%v: %v", p, scheme, err)
			}
			if _, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), MinimalAux); err != nil {
				t.Fatalf("%+v/%v: %v", p, scheme, err)
			}
			s.Net.Close()
		}
	}
}

// TestTraceDeterministic confirms that tracing the same pair twice yields
// identical paths (routing functions must be pure given fixed Aux).
func TestTraceDeterministic(t *testing.T) {
	s, sr := smallSLDF(t, BaselineVC, Minimal)
	defer s.Net.Close()
	f := func(a, b uint8) bool {
		chips := int32(s.Net.NumChips())
		src := int32(a) % chips
		dst := int32(b) % chips
		if src == dst {
			return true
		}
		trace := func() [][2]int64 {
			p := &netsim.Packet{
				SrcChip: src, DstChip: dst,
				SrcNode: s.Net.ChipNodes[src][0],
				DstNode: s.Net.ChipNodes[dst][0],
				Size:    4, Aux: -1, Aux2: 1,
			}
			hops, err := TracePath(s.Net, sr.Func(), p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			return hops
		}
		h1, h2 := trace(), trace()
		if len(h1) != len(h2) {
			return false
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
