// Package routing implements the paper's routing algorithms:
//
//   - minimal and Valiant (non-minimal) routing for the switch-based
//     Dragonfly baseline (Kim et al.): 2 and 3 virtual channels;
//   - Algorithm 1, the baseline minimal/non-minimal routing for the
//     switch-less Dragonfly: one VC per C-group traversal (4 / 6 VCs);
//   - the reduced-VC scheme (Sec. IV-B): the two C-group traversals inside
//     the destination W-group share one VC (3 VCs minimal, 4 non-minimal).
//
// The reduced scheme realizes the paper's up*/down* idea with a concrete,
// provably deadlock-free construction (see ReducedVCScheme docs): inside a
// merged-VC W-group, packets route row-column-row between dedicated attach
// rows, which makes the channel dependency graph acyclic by geometry. The
// cdg.go checker verifies acyclicity computationally for any configuration.
package routing

import "fmt"

// Mode selects minimal or non-minimal (Valiant) routing.
type Mode uint8

const (
	// Minimal routes every packet along a shortest Dragonfly path.
	Minimal Mode = iota
	// Valiant misroutes every inter-W-group packet through a uniformly
	// random intermediate W-group (the paper's "Mis" curves).
	Valiant
	// ValiantLower restricts misrouting to intermediate W-groups with a
	// lower index than the destination (paper Sec. IV-B, Fig. 7): the
	// intermediate W-group then shares the destination's merged VC, so
	// non-minimal routing needs no additional virtual channel. Only valid
	// with the ReducedVC scheme; packets without a valid lower intermediate
	// fall back to minimal routing.
	ValiantLower
	// Adaptive is UGAL-style source-adaptive routing: each inter-W-group
	// packet compares the occupancy of its direct global channel against a
	// random candidate's (weighted by hop count) and takes the minimal path
	// unless the non-minimal one is clearly less congested. Needs the
	// Valiant VC budget; channel occupancies are snapshotted once per cycle
	// through the network's pre-allocate hook.
	Adaptive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Valiant:
		return "valiant"
	case ValiantLower:
		return "valiant-lower"
	case Adaptive:
		return "adaptive"
	}
	return "minimal"
}

// Scheme selects the virtual-channel discipline for the switch-less
// Dragonfly.
type Scheme uint8

const (
	// BaselineVC is Algorithm 1's discipline: a fresh VC for every C-group
	// traversal (4 VCs minimal, 6 VCs non-minimal).
	BaselineVC Scheme = iota
	// ReducedVC merges the destination W-group's two C-group traversals
	// into one VC (3 VCs minimal, 4 non-minimal), the paper's headline
	// VC reduction. Requires topology.LayoutSouthNorth.
	ReducedVC
)

// String names the scheme.
func (s Scheme) String() string {
	if s == ReducedVC {
		return "reduced"
	}
	return "baseline"
}

// SLDFVCCount returns the number of virtual channels the scheme/mode pair
// needs on every link of a switch-less Dragonfly.
func SLDFVCCount(s Scheme, m Mode) uint8 {
	switch {
	case s == BaselineVC && m == Minimal:
		return 4
	case s == BaselineVC && m == Valiant:
		return 6
	case s == ReducedVC && m == Minimal:
		return 3
	case s == ReducedVC && m == ValiantLower:
		// The lower-index restriction merges the intermediate W-group onto
		// the destination VC: non-minimal routing at the minimal VC count.
		return 3
	case s == BaselineVC && m == Adaptive:
		return 6 // adaptive packets may take either min or Valiant paths
	default: // ReducedVC with Valiant or Adaptive
		return 4
	}
}

// DragonflyVCCount returns the VCs needed by the switch-based baseline.
func DragonflyVCCount(m Mode) uint8 {
	if m == Valiant {
		return 3
	}
	return 2
}

// legs of an SLDF journey, one per C-group traversal (paper Sec. IV-A).
const (
	legSrcC     = 0 // source C-group (source W-group)
	legSrcWMid  = 1 // channel-owning C-group of the source W-group
	legIntEntry = 2 // entry C-group of the intermediate W-group (Valiant)
	legIntExit  = 3 // exit C-group of the intermediate W-group (Valiant)
	legDstEntry = 4 // entry C-group of the destination W-group
	legDstC     = 5 // destination C-group
)

// vcMapFor returns the leg→VC map for a scheme/mode pair.
func vcMapFor(s Scheme, m Mode) [6]uint8 {
	switch {
	case s == BaselineVC && m == Minimal:
		return [6]uint8{0, 1, 0, 0, 2, 3} // legs 2,3 unreachable
	case s == BaselineVC && m == Valiant:
		return [6]uint8{0, 1, 2, 3, 4, 5}
	case s == ReducedVC && m == Minimal:
		return [6]uint8{0, 1, 0, 0, 2, 2}
	case s == ReducedVC && m == ValiantLower:
		// Intermediate and destination W-groups share VC-2 (Fig. 7's
		// restricted-misroute case).
		return [6]uint8{0, 1, 2, 2, 2, 2}
	case s == BaselineVC && m == Adaptive:
		return [6]uint8{0, 1, 2, 3, 4, 5}
	default: // ReducedVC with Valiant/Adaptive: paper Fig. 7 numbering —
		// VC-3 at the intermediate W-group, VC-2 at the destination.
		return [6]uint8{0, 1, 3, 3, 2, 2}
	}
}

func validateMode(m Mode) error {
	if m != Minimal && m != Valiant && m != ValiantLower && m != Adaptive {
		return fmt.Errorf("routing: unknown mode %d", m)
	}
	return nil
}
