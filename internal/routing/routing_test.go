package routing

import (
	"testing"

	"sldf/internal/engine"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

func opts() netsim.NetworkOptions {
	return netsim.NetworkOptions{Seed: 1, Workers: 1}
}

// smallSLDF builds a g=5 switch-less Dragonfly for a scheme/mode pair.
func smallSLDF(t testing.TB, scheme Scheme, mode Mode) (*topology.SLDF, *SLDFRouter) {
	t.Helper()
	layout := topology.LayoutPerimeter
	if scheme == ReducedVC {
		layout = topology.LayoutSouthNorth
	}
	p := topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2, Layout: layout}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(SLDFVCCount(scheme, mode), 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewSLDFRouter(s, scheme, mode)
	if err != nil {
		t.Fatal(err)
	}
	s.Net.SetRoute(sr.Func())
	return s, sr
}

// allAux enumerates every valid Valiant intermediate for a network with g
// W-groups, given the chip→W-group mapping.
func allAux(g int, wOf func(chip int32) int32) func(src, dst int32) []int32 {
	return func(src, dst int32) []int32 {
		ws, wd := wOf(src), wOf(dst)
		if ws == wd || g <= 2 {
			return []int32{-1}
		}
		var out []int32
		for w := int32(0); w < int32(g); w++ {
			if w != ws && w != wd {
				out = append(out, w)
			}
		}
		return out
	}
}

func TestSLDFAllPairsDeliverable(t *testing.T) {
	for _, scheme := range []Scheme{BaselineVC, ReducedVC} {
		for _, mode := range []Mode{Minimal, Valiant} {
			s, sr := smallSLDF(t, scheme, mode)
			wOf := func(chip int32) int32 {
				w, _, _ := s.ChipLocation(chip)
				return int32(w)
			}
			aux := MinimalAux
			if mode == Valiant {
				aux = allAux(s.Params.Groups(), wOf)
			}
			if _, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), aux); err != nil {
				t.Fatalf("%v/%v: %v", scheme, mode, err)
			}
			s.Net.Close()
		}
	}
}

func TestSLDFCDGAcyclic(t *testing.T) {
	for _, scheme := range []Scheme{BaselineVC, ReducedVC} {
		for _, mode := range []Mode{Minimal, Valiant} {
			s, sr := smallSLDF(t, scheme, mode)
			wOf := func(chip int32) int32 {
				w, _, _ := s.ChipLocation(chip)
				return int32(w)
			}
			aux := MinimalAux
			if mode == Valiant {
				aux = allAux(s.Params.Groups(), wOf)
			}
			g, err := BuildCDG(s.Net, sr.Func(), int(sr.VCs()), aux)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, mode, err)
			}
			if cyc, witness := g.HasCycle(); cyc {
				t.Fatalf("%v/%v: channel dependency cycle of length %d: %v",
					scheme, mode, len(witness), witness)
			}
			s.Net.Close()
		}
	}
}

func TestSLDFMinimalHopBounds(t *testing.T) {
	// Minimal paths visit at most 4 C-groups and 3 long-reach channels
	// (1 global + 2 local), per the paper's diameter analysis (Eq. 7).
	s, sr := smallSLDF(t, BaselineVC, Minimal)
	defer s.Net.Close()
	route := sr.Func()
	chips := int32(s.Net.NumChips())
	for src := int32(0); src < chips; src++ {
		for dst := int32(0); dst < chips; dst++ {
			if src == dst {
				continue
			}
			p := &netsim.Packet{
				SrcChip: src, DstChip: dst,
				SrcNode: s.Net.ChipNodes[src][0],
				DstNode: s.Net.ChipNodes[dst][0],
				Size:    4, Aux: -1, Aux2: -1,
			}
			hops, err := TracePath(s.Net, route, p, 4096)
			if err != nil {
				t.Fatal(err)
			}
			var global, local int
			for _, h := range hops {
				switch s.Net.Links[h[0]].Class {
				case netsim.HopGlobal:
					global++
				case netsim.HopLongLocal:
					local++
				}
			}
			if global > 1 {
				t.Fatalf("chip %d→%d: %d global hops on minimal path", src, dst, global)
			}
			if local > 2 {
				t.Fatalf("chip %d→%d: %d local hops on minimal path", src, dst, local)
			}
		}
	}
}

func TestSLDFValiantHopBounds(t *testing.T) {
	// Valiant paths: at most 2 global and 4 local channels.
	s, sr := smallSLDF(t, BaselineVC, Valiant)
	defer s.Net.Close()
	route := sr.Func()
	wOf := func(chip int32) int32 {
		w, _, _ := s.ChipLocation(chip)
		return int32(w)
	}
	aux := allAux(s.Params.Groups(), wOf)
	chips := int32(s.Net.NumChips())
	for src := int32(0); src < chips; src += 3 {
		for dst := int32(0); dst < chips; dst += 3 {
			if src == dst {
				continue
			}
			for _, a := range aux(src, dst) {
				p := &netsim.Packet{
					SrcChip: src, DstChip: dst,
					SrcNode: s.Net.ChipNodes[src][0],
					DstNode: s.Net.ChipNodes[dst][0],
					Size:    4, Aux: a, Aux2: -1,
				}
				hops, err := TracePath(s.Net, route, p, 4096)
				if err != nil {
					t.Fatal(err)
				}
				var global, local int
				for _, h := range hops {
					switch s.Net.Links[h[0]].Class {
					case netsim.HopGlobal:
						global++
					case netsim.HopLongLocal:
						local++
					}
				}
				if global > 2 || local > 4 {
					t.Fatalf("chip %d→%d aux %d: %d global / %d local hops",
						src, dst, a, global, local)
				}
			}
		}
	}
}

func TestSLDFVCMonotoneBaseline(t *testing.T) {
	// Algorithm 1: the VC index never decreases along a path.
	s, sr := smallSLDF(t, BaselineVC, Valiant)
	defer s.Net.Close()
	route := sr.Func()
	wOf := func(chip int32) int32 {
		w, _, _ := s.ChipLocation(chip)
		return int32(w)
	}
	aux := allAux(s.Params.Groups(), wOf)
	chips := int32(s.Net.NumChips())
	for src := int32(0); src < chips; src += 2 {
		for dst := int32(0); dst < chips; dst += 2 {
			if src == dst {
				continue
			}
			for _, a := range aux(src, dst) {
				p := &netsim.Packet{
					SrcChip: src, DstChip: dst,
					SrcNode: s.Net.ChipNodes[src][0],
					DstNode: s.Net.ChipNodes[dst][0],
					Size:    4, Aux: a, Aux2: -1,
				}
				hops, err := TracePath(s.Net, route, p, 4096)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(hops); i++ {
					if hops[i][1] < hops[i-1][1] {
						t.Fatalf("chip %d→%d: VC decreased %d→%d at hop %d",
							src, dst, hops[i-1][1], hops[i][1], i)
					}
				}
			}
		}
	}
}

func TestSLDFReducedUsesFewerVCs(t *testing.T) {
	if SLDFVCCount(ReducedVC, Minimal) >= SLDFVCCount(BaselineVC, Minimal) {
		t.Fatal("reduced minimal must use fewer VCs than baseline")
	}
	if SLDFVCCount(ReducedVC, Valiant) >= SLDFVCCount(BaselineVC, Valiant) {
		t.Fatal("reduced valiant must use fewer VCs than baseline")
	}
	// Paper: only one additional VC vs traditional Dragonfly.
	if SLDFVCCount(ReducedVC, Minimal) != DragonflyVCCount(Minimal)+1 {
		t.Fatalf("reduced minimal VCs = %d, want dragonfly+1 = %d",
			SLDFVCCount(ReducedVC, Minimal), DragonflyVCCount(Minimal)+1)
	}
	if SLDFVCCount(ReducedVC, Valiant) != DragonflyVCCount(Valiant)+1 {
		t.Fatalf("reduced valiant VCs = %d, want dragonfly+1 = %d",
			SLDFVCCount(ReducedVC, Valiant), DragonflyVCCount(Valiant)+1)
	}
}

func TestSLDFReducedRequiresSouthNorth(t *testing.T) {
	p := topology.SLDFParams{NoCDim: 2, ChipCols: 2, ChipRows: 2, AB: 2, H: 2,
		Layout: topology.LayoutPerimeter}
	s, err := topology.BuildSLDF(p, topology.DefaultLinkClasses(3, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	if _, err := NewSLDFRouter(s, ReducedVC, Minimal); err == nil {
		t.Fatal("ReducedVC must reject perimeter layout")
	}
}

func buildDF(t testing.TB, mode Mode) (*topology.Dragonfly, netsim.RouteFunc) {
	t.Helper()
	p := topology.DragonflyParams{P: 2, A: 3, H: 2} // g = 7, 42 chips
	df, err := topology.BuildDragonfly(p, topology.DefaultLinkClasses(DragonflyVCCount(mode), 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	route, err := DragonflyRoute(df, mode)
	if err != nil {
		t.Fatal(err)
	}
	df.Net.SetRoute(route)
	return df, route
}

func TestDragonflyCDGAcyclic(t *testing.T) {
	for _, mode := range []Mode{Minimal, Valiant} {
		df, route := buildDF(t, mode)
		wOf := func(chip int32) int32 {
			w, _, _ := df.Params.ChipLocation(chip)
			return int32(w)
		}
		aux := MinimalAux
		if mode == Valiant {
			aux = allAux(df.Params.Groups(), wOf)
		}
		g, err := BuildCDG(df.Net, route, int(DragonflyVCCount(mode)), aux)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if cyc, witness := g.HasCycle(); cyc {
			t.Fatalf("%v: dependency cycle %v", mode, witness)
		}
		df.Net.Close()
	}
}

func TestDragonflyMinimalDiameter(t *testing.T) {
	// Minimal switch-based Dragonfly: ≤ 1 global + 2 local switch-switch
	// hops + 2 terminal hops.
	df, route := buildDF(t, Minimal)
	defer df.Net.Close()
	chips := int32(df.Net.NumChips())
	for src := int32(0); src < chips; src++ {
		for dst := int32(0); dst < chips; dst++ {
			if src == dst {
				continue
			}
			p := &netsim.Packet{
				SrcChip: src, DstChip: dst,
				SrcNode: df.Net.ChipNodes[src][0],
				DstNode: df.Net.ChipNodes[dst][0],
				Size:    4, Aux: -1, Aux2: -1,
			}
			hops, err := TracePath(df.Net, route, p, 64)
			if err != nil {
				t.Fatal(err)
			}
			var global int
			for _, h := range hops {
				if df.Net.Links[h[0]].Class == netsim.HopGlobal {
					global++
				}
			}
			if global > 1 {
				t.Fatalf("chip %d→%d: %d global hops", src, dst, global)
			}
			if len(hops) > 5 { // NIC→sw, sw→sw, sw→sw(global), sw→sw, sw→NIC
				t.Fatalf("chip %d→%d: %d hops on minimal path", src, dst, len(hops))
			}
		}
	}
}

func TestSLDFLoadedSimulationNoDeadlock(t *testing.T) {
	// Push every scheme/mode near saturation under uniform traffic and
	// verify sustained progress (the watchdog would trip otherwise).
	for _, scheme := range []Scheme{BaselineVC, ReducedVC} {
		for _, mode := range []Mode{Minimal, Valiant} {
			s, _ := smallSLDF(t, scheme, mode)
			uni := netsim.GeneratorFunc(func(now int64, src int32, node int, rng *engine.RNG) int32 {
				if rng.Bernoulli(0.25) { // 4 nodes/chip × 0.25/4-flit ≈ 1 flit/cycle/chip
					d := rng.Int31n(int32(s.Net.NumChips()))
					if d == src {
						return -1
					}
					return d
				}
				return -1
			})
			s.Net.SetTraffic(uni, 4, netsim.DstSameIndex)
			s.Net.StartMeasurement()
			if err := s.Net.Run(1500); err != nil {
				t.Fatalf("%v/%v: %v", scheme, mode, err)
			}
			st := s.Net.Snapshot()
			if st.DeliveredPkts == 0 {
				t.Fatalf("%v/%v: nothing delivered", scheme, mode)
			}
			s.Net.Close()
		}
	}
}
