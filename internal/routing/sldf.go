package routing

import (
	"fmt"

	"sldf/internal/engine"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// Port-node output port layout fixed by the topology builder: out 0 returns
// to the attach core, out 1 is the external (long-reach) link.
const (
	portOutToCore   = 0
	portOutExternal = 1
)

// SLDFRouter routes packets on a switch-less Dragonfly. Create one with
// NewSLDFRouter and install Func on the network.
type SLDFRouter struct {
	s      *topology.SLDF
	scheme Scheme
	mode   Mode
	vcMap  [6]uint8
	groups int
	// occ is the adaptive mode's per-cycle global-channel occupancy
	// snapshot (nil otherwise); see adaptive.go.
	occ *channelOccupancy
}

// NewSLDFRouter builds the routing function for the given scheme and mode.
//
// BaselineVC implements Algorithm 1 exactly: XY dimension-order routing
// inside every C-group and one fresh VC per C-group traversal. Deadlock
// freedom: the VC index strictly follows the leg order along any path, XY
// is acyclic within one (C-group, VC), and ejection sinks.
//
// ReducedVC merges the destination W-group's two traversals onto one VC
// (paper Sec. IV-B). Our realization of the up*/down* idea is geometric and
// requires topology.LayoutSouthNorth: global ports attach on row 0, local
// ports on the top row. Inside a merged-VC W-group, a packet entering from
// a global port moves along row 0 (X±), then straight up its exit column
// (Y+), crosses the local link, then moves along the top row (X±) and
// straight down (Y−) to its destination. The per-C-group channel classes
// therefore form the chain  X(row 0) → Y+ → local → X(top row) → Y− →
// {eject | global-out}, which is acyclic, so no VC cycle can form.
// The cost is non-minimal intra-C-group paths — measured by the ablation
// benchmarks.
func NewSLDFRouter(s *topology.SLDF, scheme Scheme, mode Mode) (*SLDFRouter, error) {
	if err := validateMode(mode); err != nil {
		return nil, err
	}
	if scheme != BaselineVC && scheme != ReducedVC {
		return nil, fmt.Errorf("routing: unknown scheme %d", scheme)
	}
	if scheme == ReducedVC && s.Params.Layout != topology.LayoutSouthNorth {
		return nil, fmt.Errorf("routing: ReducedVC requires LayoutSouthNorth port placement")
	}
	if mode == ValiantLower && scheme != ReducedVC {
		return nil, fmt.Errorf("routing: ValiantLower is only meaningful with ReducedVC")
	}
	return &SLDFRouter{
		s:      s,
		scheme: scheme,
		mode:   mode,
		vcMap:  vcMapFor(scheme, mode),
		groups: s.Params.Groups(),
	}, nil
}

// VCs returns the number of virtual channels the router requires.
func (sr *SLDFRouter) VCs() uint8 { return SLDFVCCount(sr.scheme, sr.mode) }

// legOf returns the journey leg of packet p while buffered at router rr.
func (sr *SLDFRouter) legOf(net *netsim.Network, p *netsim.Packet, rr *netsim.Router) int {
	d := net.Router(p.DstNode)
	src := net.Router(p.SrcNode)
	wd, cd := d.WGroup, d.CGroup
	ws, cs := src.WGroup, src.CGroup
	w, c := rr.WGroup, rr.CGroup
	switch {
	case w == wd:
		if ws == wd && c == cs && c != cd {
			return legSrcC
		}
		if c == cd {
			return legDstC
		}
		return legDstEntry
	case w == ws:
		if c == cs {
			return legSrcC
		}
		return legSrcWMid
	default:
		// Intermediate W-group (Valiant); the packet landed where the
		// direct channel from the source W-group terminates.
		if int32(sr.s.EntryCGroup(int(ws), int(w))) == c {
			return legIntEntry
		}
		return legIntExit
	}
}

// vcAt returns the VC for packet p buffered at router rr.
func (sr *SLDFRouter) vcAt(net *netsim.Network, p *netsim.Packet, rr *netsim.Router) uint8 {
	return sr.vcMap[sr.legOf(net, p, rr)]
}

// exitPort resolves which external port the packet must leave the current
// C-group (w, c) through, or nil if the destination is inside it.
func (sr *SLDFRouter) exitPort(net *netsim.Network, p *netsim.Packet, w, c int32) *topology.PortInfo {
	d := net.Router(p.DstNode)
	wd, cd := d.WGroup, d.CGroup
	if w == wd {
		if c == cd {
			return nil
		}
		return &sr.s.CGroups[w][c].LocalPorts[cd]
	}
	wt := wd
	if p.Aux >= 0 && w != p.Aux {
		wt = p.Aux
	}
	cb, j := sr.s.GlobalChannelOwner(int(w), int(wt))
	if int32(cb) == c {
		return &sr.s.CGroups[w][c].GlobalPorts[j]
	}
	return &sr.s.CGroups[w][c].LocalPorts[cb]
}

// Func returns the netsim routing function.
func (sr *SLDFRouter) Func() netsim.RouteFunc {
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		if r.Kind == netsim.KindPort {
			return sr.routeAtPort(net, r, p)
		}
		return sr.routeAtCore(net, r, p)
	}
}

func (sr *SLDFRouter) routeAtPort(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
	exit := sr.exitPort(net, p, r.WGroup, r.CGroup)
	if exit != nil && exit.Node == r.ID {
		// This port owns the packet's outgoing channel: go external. The
		// packet is buffered next at the remote port node.
		remote := net.Router(r.Out[portOutExternal].Link.Dst)
		return portOutExternal, sr.vcAt(net, p, remote)
	}
	// The packet entered the C-group here: descend to the attach core.
	return portOutToCore, sr.vcAt(net, p, r)
}

func (sr *SLDFRouter) routeAtCore(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
	// Non-minimal modes pick the intermediate W-group once, at the source
	// core. ValiantLower only considers intermediates below the destination
	// index (and falls back to minimal when none exists).
	if p.Aux < 0 && p.Aux2 < 0 && sr.mode != Minimal && sr.groups > 2 {
		d := net.Router(p.DstNode)
		if d.WGroup != r.WGroup {
			if sr.mode == Adaptive {
				p.Aux = sr.chooseAdaptive(p.RouteRNG(r), r.WGroup, d.WGroup)
			} else {
				p.Aux = sr.pickIntermediate(p.RouteRNG(r), r.WGroup, d.WGroup)
			}
			p.Aux2 = 1 // decision made (possibly "no valid intermediate")
		}
	}

	exit := sr.exitPort(net, p, r.WGroup, r.CGroup)
	if exit == nil {
		// Destination C-group.
		if r.ID == p.DstNode {
			return int(r.EjectOut), 0
		}
		d := net.Router(p.DstNode)
		return sr.meshStep(net, r, p, int(d.X), int(d.Y)), sr.vcAt(net, p, r)
	}
	if r.ID == exit.AttachCore {
		// Hand the packet to the conversion module; it is buffered at the
		// port node, same C-group, same leg.
		return exit.CoreToPort, sr.vcAt(net, p, r)
	}
	a := net.Router(exit.AttachCore)
	return sr.meshStep(net, r, p, int(a.X), int(a.Y)), sr.vcAt(net, p, r)
}

// pickIntermediate chooses a uniform intermediate W-group for non-minimal
// routing, or -1 when none is admissible.
func (sr *SLDFRouter) pickIntermediate(rng *engine.RNG, ws, wd int32) int32 {
	if sr.mode == ValiantLower {
		// Candidates: w < wd, w != ws.
		n := wd
		if ws < wd {
			n--
		}
		if n <= 0 {
			return -1
		}
		aux := int32(rng.Intn(int(n)))
		if ws < wd && aux >= ws {
			aux++
		}
		return aux
	}
	for {
		aux := int32(rng.Intn(sr.groups))
		if aux != ws && aux != wd {
			return aux
		}
	}
}

// meshStep picks the mesh direction toward (tx, ty) according to the
// scheme's intra-C-group discipline for the packet's current leg.
func (sr *SLDFRouter) meshStep(net *netsim.Network, r *netsim.Router, p *netsim.Packet, tx, ty int) int {
	dp := sr.s.DirPort[r.ID]
	x, y := int(r.X), int(r.Y)

	if sr.scheme == ReducedVC {
		leg := sr.legOf(net, p, r)
		switch leg {
		case legDstEntry, legIntEntry:
			// Entered on row 0 via a global port: row 0 X± first, then Y+.
			if y == 0 && x != tx {
				return dirTo(dp, x, tx)
			}
			return dp[topology.DirNorth]
		case legDstC, legIntExit:
			// Entered on the top row via a local port — unless this is the
			// source C-group of intra-W traffic handled below, or the
			// destination row itself.
			my := sr.s.Params.MeshY()
			if y == my-1 && x != tx {
				return dirTo(dp, x, tx)
			}
			if x != tx {
				// Off the transit row with a wrong column only happens for
				// packets that started in this C-group (leg mislabel is
				// impossible; source-local traffic is legSrcC): fall back to
				// XY which is safe on a fresh VC.
				return dirTo(dp, x, tx)
			}
			if ty < y {
				return dp[topology.DirSouth]
			}
			return dp[topology.DirNorth]
		}
		// legSrcC / legSrcWMid: plain XY below.
	}

	// XY dimension-order.
	if x != tx {
		return dirTo(dp, x, tx)
	}
	if ty > y {
		return dp[topology.DirNorth]
	}
	return dp[topology.DirSouth]
}

// dirTo returns the east or west port toward tx.
func dirTo(dp []int, x, tx int) int {
	if tx > x {
		return dp[topology.DirEast]
	}
	return dp[topology.DirWest]
}
