package routing

import (
	"sldf/internal/netsim"
)

// region is fault-aware routing over one connected subgraph of alive
// routers (a C-group's surviving cores and port modules, or a standalone
// mesh with holes): precomputed next-hop tables along shortest up*/down*
// paths.
//
// Up*/down* (Autonet) is the classic deadlock-free discipline for
// irregular graphs: nodes are totally ordered by a BFS tree from a root
// (level, then ID), every edge is "up" (toward the root order) or "down",
// and a legal path takes zero or more up edges followed by zero or more
// down edges. Up→down transitions are allowed, down→up never, so the
// channel dependency graph is acyclic on a single virtual channel — the
// property the fault router's CDG tests verify computationally.
//
// Routing is phase-aware: a packet ascends until its region step first
// chooses a down edge, after which it may only descend. The caller tracks
// the packet's descending bit (routing functions are invoked exactly once
// per router visit on non-ideal routers, so the transition is recorded
// race-free in per-packet scratch state).
type region struct {
	n     int32
	nodes []netsim.NodeID
	// next[phase][u*n+d] is the out port on nodes[u] toward nodes[d]
	// (phase 0 = may still ascend, 1 = descending), -1 when unreachable.
	next [2][]int16
	// down[u*n+d] marks that the phase-0 step at u toward d takes a down
	// edge, i.e. the packet transitions to the descending phase.
	down []bool
}

// regionEdge is one alive directed link inside a region.
type regionEdge struct {
	to   int32 // local index of the far endpoint
	port int16 // out port index on the near endpoint
	up   bool
}

// buildRegion computes up*/down* next-hop tables for the given alive
// routers, writing each router's local index into the shared local table
// (regions partition the routers they cover). It returns ok=false when
// some ordered pair of region nodes has no legal path — the caller treats
// that as a partition.
func buildRegion(net *netsim.Network, ids []netsim.NodeID, local []int32) (*region, bool) {
	n := int32(len(ids))
	rg := &region{n: n, nodes: ids}
	for i, id := range ids {
		local[id] = int32(i)
	}

	// Alive adjacency, edges in out-port order for determinism.
	adj := make([][]regionEdge, n)
	radj := make([][]regionEdge, n) // reversed, for the backward BFS
	inRegion := func(id netsim.NodeID) bool {
		return local[id] >= 0 && local[id] < n && rg.nodes[local[id]] == id
	}
	for u := int32(0); u < n; u++ {
		r := net.Router(ids[u])
		for o := range r.Out {
			l := r.Out[o].Link
			if l == nil || l.Disabled || !inRegion(l.Dst) {
				continue
			}
			adj[u] = append(adj[u], regionEdge{to: local[l.Dst], port: int16(o)})
		}
	}

	// BFS-tree order from the lowest-ID node, over the undirected union of
	// the directed edges. Unreached nodes keep the sentinel level; every
	// pair involving them fails the reachability check below.
	const unreached = int32(1) << 30
	level := make([]int32, n)
	for i := range level {
		level[i] = unreached
	}
	undirected := make([][]int32, n)
	for u := range adj {
		for _, e := range adj[u] {
			undirected[u] = append(undirected[u], e.to)
			undirected[e.to] = append(undirected[e.to], int32(u))
		}
	}
	queue := make([]int32, 0, n)
	level[0] = 0
	queue = append(queue, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range undirected[u] {
			if level[v] == unreached {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// Classify edge directions: up = strictly smaller (level, router ID).
	upOf := func(u, v int32) bool {
		if level[v] != level[u] {
			return level[v] < level[u]
		}
		return ids[v] < ids[u]
	}
	for u := range adj {
		for i := range adj[u] {
			adj[u][i].up = upOf(int32(u), adj[u][i].to)
		}
	}
	for u := range adj {
		for _, e := range adj[u] {
			radj[e.to] = append(radj[e.to], regionEdge{to: int32(u), port: e.port, up: e.up})
		}
	}

	// Per-destination backward BFS over the two-phase legal-path automaton:
	// dist0[u] (may still ascend) and dist1[u] (descending only) are the
	// legal distances from u to d.
	rg.next[0] = make([]int16, n*n)
	rg.next[1] = make([]int16, n*n)
	rg.down = make([]bool, n*n)
	dist0 := make([]int32, n)
	dist1 := make([]int32, n)
	type state struct {
		u     int32
		phase int8
	}
	states := make([]state, 0, 2*n)
	for d := int32(0); d < n; d++ {
		for i := int32(0); i < n; i++ {
			dist0[i], dist1[i] = unreached, unreached
		}
		dist0[d], dist1[d] = 0, 0
		states = states[:0]
		states = append(states, state{d, 0}, state{d, 1})
		for len(states) > 0 {
			s := states[0]
			states = states[1:]
			var du int32
			if s.phase == 0 {
				du = dist0[s.u]
			} else {
				du = dist1[s.u]
			}
			// Relax predecessors: an up edge u→v keeps phase 0; a down edge
			// u→v may be taken from either phase and lands in phase 1.
			for _, e := range radj[s.u] {
				u := e.to
				if e.up {
					if s.phase == 0 && dist0[u] > du+1 {
						dist0[u] = du + 1
						states = append(states, state{u, 0})
					}
				} else if s.phase == 1 {
					if dist1[u] > du+1 {
						dist1[u] = du + 1
						states = append(states, state{u, 1})
					}
					if dist0[u] > du+1 {
						dist0[u] = du + 1
						states = append(states, state{u, 0})
					}
				}
			}
		}
		// Select next hops: lowest out-port index among distance minimizers.
		for u := int32(0); u < n; u++ {
			i0, i1 := u*n+d, u*n+d
			rg.next[0][i0], rg.next[1][i1] = -1, -1
			if u == d {
				continue
			}
			best0, best1 := unreached, unreached
			for _, e := range adj[u] {
				if e.up {
					if dist0[e.to] < best0 {
						best0 = dist0[e.to]
						rg.next[0][i0] = e.port
						rg.down[i0] = false
					}
				} else {
					if dist1[e.to] < best0 {
						best0 = dist1[e.to]
						rg.next[0][i0] = e.port
						rg.down[i0] = true
					}
					if dist1[e.to] < best1 {
						best1 = dist1[e.to]
						rg.next[1][i1] = e.port
					}
				}
			}
			if best0 == unreached {
				return nil, false // u cannot legally reach d
			}
		}
	}
	return rg, true
}

// step returns the out port at local node u toward local node d, given the
// packet's descending flag, and whether the packet is descending after the
// step.
func (rg *region) step(u, d int32, descending bool) (out int16, nowDescending bool) {
	i := u*rg.n + d
	if descending {
		return rg.next[1][i], true
	}
	return rg.next[0][i], rg.down[i]
}
