package scale

import (
	"fmt"
	"time"

	"sldf/internal/campaign"
	"sldf/internal/core"
	"sldf/internal/metrics"
	"sldf/internal/netsim"
	"sldf/internal/topology"
)

// simParams is the quick validation run every step performs: long enough to
// exercise injection, multi-hop routing and ejection on every system, short
// enough that wall time stays dominated by the build at large scale.
func simParams() core.SimParams {
	return core.SimParams{Warmup: 100, Measure: 200, ExtraDrain: 100, PacketSize: 4}
}

// validationRate is the offered load of the validation run (flits/cycle/chip):
// low, so giant systems are checked for structural health, not saturation.
const validationRate = 0.1

// ChipsDimension grows the number of terminal chips of one system kind
// along the paper's balanced radix family until a build or validation fails
// or the budget trips. For the Dragonfly kinds the ladder first walks
// single-W-group instances of increasing radix (tens of chips), then the
// full balanced systems (radix-16: 1312 chips, radix-24: 6120, radix-32:
// 18560, and beyond).
func ChipsDimension(kind core.SystemKind, workers int) Dimension {
	return ChipsDimensionEngine(kind, workers, netsim.EngineActiveSet, 0)
}

// ChipsDimensionEngine is ChipsDimension with an explicit simulation engine
// for the validation run. Under netsim.EngineFlow a step's cost is
// dominated by the build rather than the cycle loop, so the ladder climbs
// rungs far past the cycle engines' ceiling; a non-default engine is
// recorded in the dimension name so its trajectory never mixes with
// cycle-engine baselines. flowWorkers parallelizes the flow solve's
// trace/waterfill phases (result-identical, so the trajectory is still
// comparable across values); it is ignored by the cycle engines.
func ChipsDimensionEngine(kind core.SystemKind, workers int, eng netsim.EngineKind, flowWorkers int) Dimension {
	name := "chips/" + kind.String()
	if eng != netsim.EngineActiveSet {
		name += "/" + eng.String()
	}
	return Dimension{
		Name: name,
		Step: func(i int) (Step, bool) {
			cfg, label, ok := chipsConfig(kind, i)
			if !ok {
				return Step{}, false
			}
			cfg.Seed = 1
			cfg.Workers = workers
			return Step{Label: label, Run: func() (StepInfo, error) {
				return measureSystemEngine(cfg, eng, flowWorkers)
			}}, true
		},
	}
}

// chipsConfig returns the i-th rung of the growth ladder for kind.
func chipsConfig(kind core.SystemKind, i int) (core.Config, string, bool) {
	switch kind {
	case core.SwitchlessDragonfly:
		if i < 3 { // single-W-group ladder: 32, 72, 128 chips
			k := i + 2
			return core.Config{Kind: kind, SLDF: sldfFamily(k, 1)},
				fmt.Sprintf("radix%d-g1", 8*k), true
		}
		k := i - 1 // full balanced systems: 1312, 6120, 18560, ...
		return core.Config{Kind: kind, SLDF: sldfFamily(k, 0)},
			fmt.Sprintf("radix%d-full", 8*k), true
	case core.SwitchDragonfly:
		if i < 3 {
			k := i + 2
			return core.Config{Kind: kind, DF: dfFamily(k, 1)},
				fmt.Sprintf("radix%d-g1", 8*k), true
		}
		k := i - 1
		return core.Config{Kind: kind, DF: dfFamily(k, 0)},
			fmt.Sprintf("radix%d-full", 8*k), true
	case core.SingleSwitch:
		t := 32 << i
		return core.Config{Kind: kind, Terminals: t},
			fmt.Sprintf("terminals%d", t), true
	case core.MeshCGroup:
		d := 2 << i
		return core.Config{Kind: kind, ChipletDim: d, NoCDim: 2},
			fmt.Sprintf("mesh%dx%d", d, d), true
	}
	return core.Config{}, "", false
}

// sldfFamily returns the balanced switch-less system of external radix 8k:
// 2k chips per C-group, 4k C-groups per W-group, 2k+1 global ports.
func sldfFamily(k, g int) topology.SLDFParams {
	return topology.SLDFParams{NoCDim: 2, ChipCols: k, ChipRows: 2, AB: 4 * k, H: 2*k + 1, G: g}
}

// dfFamily is the matching switch-based baseline of the same radix.
func dfFamily(k, g int) topology.DragonflyParams {
	return topology.DragonflyParams{P: 2 * k, A: 4 * k, H: 2*k + 1, G: g}
}

// FaultFractionDimension grows the injected link-fault fraction on a fixed
// small system of the given kind, in 2.5% steps, until the degraded build
// fails (disconnected survivors), fault-aware routing gives up, or the
// validation run stops delivering packets.
func FaultFractionDimension(kind core.SystemKind, workers int) Dimension {
	return Dimension{
		Name: "fault-fraction/" + kind.String(),
		Step: func(i int) (Step, bool) {
			f := 0.025 * float64(i+1)
			if f > 0.95 {
				return Step{}, false
			}
			cfg := baseConfig(kind)
			cfg.Seed = 1
			cfg.Workers = workers
			cfg.Faults = topology.FaultSpec{Seed: 7, LinkFraction: f}
			return Step{
				Label: fmt.Sprintf("links%.1f%%", 100*f),
				Value: f,
				Run: func() (StepInfo, error) {
					info, err := measureSystem(cfg)
					info.Value = f // the coordinate is the fraction, not chips
					return info, err
				},
			}, true
		},
	}
}

// JobsDimension doubles the number of concurrent campaign jobs — each job
// builds its own small system of the given kind and measures one load point
// — until a job fails or the budget trips. Its ceiling is the concurrency
// the memory budget sustains, since every in-flight job holds a full system.
func JobsDimension(kind core.SystemKind, workers int) Dimension {
	return Dimension{
		Name: "jobs/" + kind.String(),
		Step: func(i int) (Step, bool) {
			j := 1 << i
			if j > 256 {
				return Step{}, false
			}
			return Step{
				Label: fmt.Sprintf("jobs%d", j),
				Value: float64(j),
				Run: func() (StepInfo, error) {
					var info StepInfo
					info.Value = float64(j)
					jobs := make([]campaign.Job[metrics.Point], j)
					for idx := range jobs {
						cfg := baseConfig(kind)
						cfg.Seed = uint64(idx + 1)
						cfg.Workers = workers
						jobs[idx] = campaign.Job[metrics.Point]{Run: func(w *campaign.Worker) (metrics.Point, error) {
							sys, err := core.Build(cfg)
							if err != nil {
								return metrics.Point{}, err
							}
							defer sys.Close()
							pat, err := sys.PatternFor("uniform")
							if err != nil {
								return metrics.Point{}, err
							}
							res, err := sys.MeasureLoad(pat, validationRate, simParams())
							if err != nil {
								return metrics.Point{}, err
							}
							if err := validateStats(res); err != nil {
								return metrics.Point{}, err
							}
							return res.Point, nil
						}}
					}
					t0 := time.Now()
					pts, err := campaign.Run(jobs, campaign.Options[metrics.Point]{Jobs: j})
					info.SimWall = time.Since(t0)
					info.HeapBytes = HeapLive()
					if err != nil {
						return info, err
					}
					for _, pt := range pts {
						if pt.Throughput <= 0 {
							return info, fmt.Errorf("job produced zero throughput")
						}
					}
					return info, nil
				},
			}, true
		},
	}
}

// baseConfig is the fixed small system the fault and jobs dimensions grow
// around: large enough to have interesting structure, small enough that a
// step is cheap.
func baseConfig(kind core.SystemKind) core.Config {
	switch kind {
	case core.SwitchlessDragonfly:
		p := core.Radix16SLDF()
		p.G = 1
		return core.Config{Kind: kind, SLDF: p}
	case core.SwitchDragonfly:
		p := core.Radix16DF()
		p.G = 1
		return core.Config{Kind: kind, DF: p}
	case core.SingleSwitch:
		return core.Config{Kind: kind, Terminals: 32}
	default:
		return core.Config{Kind: core.MeshCGroup, ChipletDim: 4, NoCDim: 2}
	}
}

// measureSystem builds cfg, captures its footprint, runs the validation
// load point, and checks the run's structural health.
func measureSystem(cfg core.Config) (StepInfo, error) {
	return measureSystemEngine(cfg, netsim.EngineActiveSet, 0)
}

// measureSystemEngine is measureSystem with an explicit simulation engine
// (and flow-solver worker count) for the validation load point.
func measureSystemEngine(cfg core.Config, eng netsim.EngineKind, flowWorkers int) (StepInfo, error) {
	var info StepInfo
	t0 := time.Now()
	sys, err := core.Build(cfg)
	if err != nil {
		return info, err
	}
	defer sys.Close()
	info.BuildWall = time.Since(t0)
	info.Chips = sys.Chips
	info.Value = float64(sys.Chips)
	info.HeapBytes = HeapLive()
	pat, err := sys.PatternFor("uniform")
	if err != nil {
		return info, err
	}
	sp := simParams()
	sp.Engine = eng
	sp.FlowWorkers = flowWorkers
	t1 := time.Now()
	res, err := sys.MeasureLoad(pat, validationRate, sp)
	info.SimWall = time.Since(t1)
	if err != nil {
		return info, err
	}
	return info, validateStats(res)
}

// validateStats checks the structural health of a validation run: traffic
// flowed, nothing deadlocked, and packet conservation held.
func validateStats(res core.Result) error {
	st := res.Stats
	if st.WatchdogTrips > 0 {
		return fmt.Errorf("progress watchdog tripped %d times", st.WatchdogTrips)
	}
	if st.DeliveredPkts == 0 {
		return fmt.Errorf("no packets delivered")
	}
	if st.DeliveredPkts > st.InjectedPkts {
		return fmt.Errorf("conservation violated: delivered %d > injected %d",
			st.DeliveredPkts, st.InjectedPkts)
	}
	return nil
}
