// Package scale finds the simulator's soft scaling ceilings.
//
// A scale run grows exactly one dimension — system size in chips, injected
// fault fraction, or concurrent campaign jobs — step by step until either a
// step fails validation (build error, routing failure, watchdog deadlock,
// conservation violation) or a resource budget trips (per-step wall clock,
// resident set size). Every step records its build/sim wall time and memory
// footprint, so the output is a trajectory ending in a ceiling: the largest
// value of the dimension the simulator handled within budget. Campaign CI
// tracks these ceilings across revisions the same way it tracks benchmark
// medians (see BENCH_*.json).
package scale

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Sample records one step of a growth run.
type Sample struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
	Chips int     `json:"chips,omitempty"`
	// BuildMS/SimMS split the step's wall time into construction and
	// simulation; HeapMB is the live heap with the system still built;
	// RSSMB is the process resident set after the step (a high-water
	// approximation: the Go runtime returns freed spans lazily).
	BuildMS float64 `json:"build_ms"`
	SimMS   float64 `json:"sim_ms"`
	HeapMB  float64 `json:"heap_mb"`
	RSSMB   float64 `json:"rss_mb"`
	// HeapPerChip is bytes of live heap per terminal chip, the figure of
	// merit for memory-layout work (zero when the step has no chip count).
	HeapPerChip float64 `json:"heap_per_chip,omitempty"`
	OK          bool    `json:"ok"`
	Err         string  `json:"err,omitempty"`
}

// Budget bounds a growth run. Zero fields are unlimited.
type Budget struct {
	// MaxStepWall stops growth after a step whose build+sim wall time
	// exceeds it (the step itself still counts toward the ceiling).
	MaxStepWall time.Duration
	// MaxRSS stops growth once the process resident set exceeds it.
	MaxRSS uint64
	// MaxSteps bounds the number of steps attempted.
	MaxSteps int
}

// StepInfo is what a step's Run reports back on success (and as much as it
// measured on failure).
type StepInfo struct {
	Chips     int
	Value     float64 // dimension coordinate override (0 = use Step.Value)
	BuildWall time.Duration
	SimWall   time.Duration
	HeapBytes uint64 // live heap while the system is built (see HeapLive)
}

// Step is one point along a dimension.
type Step struct {
	Label string
	Value float64
	Run   func() (StepInfo, error)
}

// Dimension enumerates the steps of one growth axis in increasing order.
type Dimension struct {
	Name string
	// Step returns the i-th step (from 0); ok=false ends the range.
	Step func(i int) (step Step, ok bool)
}

// Trip reasons reported by Report.Tripped.
const (
	TripValidation = "validation"   // a step failed to build, run, or conserve packets
	TripWall       = "step-wall"    // a step exceeded Budget.MaxStepWall
	TripRSS        = "rss"          // resident set exceeded Budget.MaxRSS
	TripSteps      = "max-steps"    // Budget.MaxSteps reached
	TripEnd        = "end-of-range" // the dimension ran out of steps
)

// Report is the outcome of one growth run.
type Report struct {
	Dimension string   `json:"dimension"`
	Tripped   string   `json:"tripped"`
	Ceiling   *Sample  `json:"ceiling,omitempty"` // last passing sample
	Samples   []Sample `json:"samples"`
}

// Run grows d until validation fails or b trips, reporting the trajectory.
// logf (may be nil) receives one progress line per step.
func Run(d Dimension, b Budget, logf func(format string, args ...any)) Report {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := Report{Dimension: d.Name}
	for i := 0; ; i++ {
		if b.MaxSteps > 0 && i >= b.MaxSteps {
			rep.Tripped = TripSteps
			return rep
		}
		step, ok := d.Step(i)
		if !ok {
			rep.Tripped = TripEnd
			return rep
		}
		info, err := step.Run()
		rss := rssBytes()
		s := Sample{
			Label:   step.Label,
			Value:   step.Value,
			Chips:   info.Chips,
			BuildMS: float64(info.BuildWall) / float64(time.Millisecond),
			SimMS:   float64(info.SimWall) / float64(time.Millisecond),
			HeapMB:  float64(info.HeapBytes) / (1 << 20),
			RSSMB:   float64(rss) / (1 << 20),
			OK:      err == nil,
		}
		if info.Value != 0 {
			s.Value = info.Value
		}
		if info.Chips > 0 {
			s.HeapPerChip = float64(info.HeapBytes) / float64(info.Chips)
		}
		if err != nil {
			s.Err = err.Error()
			rep.Samples = append(rep.Samples, s)
			logf("%s %s: FAIL after %.0f ms: %v", d.Name, s.Label, s.BuildMS+s.SimMS, err)
			rep.Tripped = TripValidation
			return rep
		}
		rep.Samples = append(rep.Samples, s)
		rep.Ceiling = &rep.Samples[len(rep.Samples)-1]
		logf("%s %s: ok — build %.0f ms, sim %.0f ms, heap %.1f MB, rss %.1f MB",
			d.Name, s.Label, s.BuildMS, s.SimMS, s.HeapMB, s.RSSMB)
		wall := info.BuildWall + info.SimWall
		if b.MaxStepWall > 0 && wall > b.MaxStepWall {
			rep.Tripped = TripWall
			return rep
		}
		if b.MaxRSS > 0 && rss > b.MaxRSS {
			rep.Tripped = TripRSS
			return rep
		}
	}
}

// HeapLive forces a collection and returns the live heap, for steps to
// capture their footprint while the system under test is still built.
func HeapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// rssBytes reads the resident set size from /proc/self/statm, or 0 when the
// proc filesystem is unavailable (non-Linux).
func rssBytes() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
