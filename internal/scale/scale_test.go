package scale

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sldf/internal/core"
)

// synthetic builds a dimension whose i-th step reports the given infos and
// fails from step failAt on (-1 = never).
func synthetic(n int, failAt int, info StepInfo) Dimension {
	return Dimension{
		Name: "synthetic",
		Step: func(i int) (Step, bool) {
			if i >= n {
				return Step{}, false
			}
			return Step{
				Label: "step",
				Value: float64(i + 1),
				Run: func() (StepInfo, error) {
					if failAt >= 0 && i >= failAt {
						return StepInfo{}, errors.New("synthetic failure")
					}
					return info, nil
				},
			}, true
		},
	}
}

func TestRunValidationTrip(t *testing.T) {
	rep := Run(synthetic(10, 3, StepInfo{Chips: 4, HeapBytes: 1 << 20}), Budget{}, nil)
	if rep.Tripped != TripValidation {
		t.Fatalf("tripped %q, want %q", rep.Tripped, TripValidation)
	}
	if len(rep.Samples) != 4 {
		t.Fatalf("%d samples, want 4 (3 passing + the failure)", len(rep.Samples))
	}
	if rep.Ceiling == nil || rep.Ceiling.Value != 3 {
		t.Fatalf("ceiling %+v, want value 3", rep.Ceiling)
	}
	last := rep.Samples[3]
	if last.OK || !strings.Contains(last.Err, "synthetic failure") {
		t.Fatalf("failing sample not recorded: %+v", last)
	}
	if rep.Ceiling.HeapPerChip != float64(1<<20)/4 {
		t.Fatalf("heap per chip %v", rep.Ceiling.HeapPerChip)
	}
}

func TestRunEndOfRange(t *testing.T) {
	rep := Run(synthetic(2, -1, StepInfo{}), Budget{}, nil)
	if rep.Tripped != TripEnd || len(rep.Samples) != 2 {
		t.Fatalf("tripped %q with %d samples", rep.Tripped, len(rep.Samples))
	}
	if rep.Ceiling == nil || rep.Ceiling.Value != 2 {
		t.Fatalf("ceiling %+v", rep.Ceiling)
	}
}

func TestRunMaxStepsTrip(t *testing.T) {
	rep := Run(synthetic(10, -1, StepInfo{}), Budget{MaxSteps: 2}, nil)
	if rep.Tripped != TripSteps || len(rep.Samples) != 2 {
		t.Fatalf("tripped %q with %d samples", rep.Tripped, len(rep.Samples))
	}
}

func TestRunWallBudgetTrip(t *testing.T) {
	info := StepInfo{BuildWall: time.Hour}
	rep := Run(synthetic(10, -1, info), Budget{MaxStepWall: time.Minute}, nil)
	if rep.Tripped != TripWall {
		t.Fatalf("tripped %q, want %q", rep.Tripped, TripWall)
	}
	// The over-budget step itself still counts toward the ceiling.
	if len(rep.Samples) != 1 || rep.Ceiling == nil || rep.Ceiling.Value != 1 {
		t.Fatalf("samples %d ceiling %+v", len(rep.Samples), rep.Ceiling)
	}
}

func TestRunValueOverride(t *testing.T) {
	rep := Run(synthetic(1, -1, StepInfo{Value: 42}), Budget{}, nil)
	if rep.Ceiling == nil || rep.Ceiling.Value != 42 {
		t.Fatalf("ceiling %+v, want value 42 from StepInfo override", rep.Ceiling)
	}
}

// TestChipsDimensionSmoke drives one real rung of every system kind's chip
// ladder end to end: build, footprint capture, validation sim.
func TestChipsDimensionSmoke(t *testing.T) {
	for _, kind := range []core.SystemKind{
		core.SwitchlessDragonfly, core.SwitchDragonfly, core.SingleSwitch, core.MeshCGroup,
	} {
		rep := Run(ChipsDimension(kind, 1), Budget{MaxSteps: 1}, t.Logf)
		if rep.Tripped != TripSteps {
			t.Fatalf("%v: tripped %q (samples %+v)", kind, rep.Tripped, rep.Samples)
		}
		c := rep.Ceiling
		if c == nil || !c.OK || c.Chips == 0 || c.HeapMB <= 0 || c.HeapPerChip <= 0 {
			t.Fatalf("%v: bad ceiling %+v", kind, c)
		}
		if c.Value != float64(c.Chips) {
			t.Fatalf("%v: value %v != chips %d", kind, c.Value, c.Chips)
		}
	}
}

func TestFaultFractionDimensionSmoke(t *testing.T) {
	rep := Run(FaultFractionDimension(core.SwitchlessDragonfly, 1), Budget{MaxSteps: 2}, t.Logf)
	if rep.Tripped != TripSteps {
		t.Fatalf("tripped %q (samples %+v)", rep.Tripped, rep.Samples)
	}
	if rep.Ceiling == nil || rep.Ceiling.Value != 0.05 {
		t.Fatalf("ceiling %+v, want fraction 0.05", rep.Ceiling)
	}
}

func TestJobsDimensionSmoke(t *testing.T) {
	rep := Run(JobsDimension(core.MeshCGroup, 1), Budget{MaxSteps: 2}, t.Logf)
	if rep.Tripped != TripSteps {
		t.Fatalf("tripped %q (samples %+v)", rep.Tripped, rep.Samples)
	}
	if rep.Ceiling == nil || rep.Ceiling.Value != 2 {
		t.Fatalf("ceiling %+v, want 2 jobs", rep.Ceiling)
	}
}
