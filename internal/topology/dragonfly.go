package topology

import (
	"fmt"

	"sldf/internal/netsim"
)

// DragonflyParams sizes a switch-based Dragonfly (Kim et al. 2008).
// The paper's baselines: radix-16 → {P:4, A:8, H:5} (g=41, 1312 chips);
// radix-32 → {P:8, A:16, H:9} (g=145, 18560 chips).
type DragonflyParams struct {
	P int // terminals per switch
	A int // switches per group (each switch has A-1 local ports)
	H int // global ports per switch
	G int // number of groups; 0 selects the maximum A*H+1
}

// Validate checks structural feasibility. The builder requires the balanced
// maximum configuration g = A*H + 1 (the paper always evaluates it) unless
// G == 1 (a single fully-connected group, used for intra-group studies).
func (p DragonflyParams) Validate() error {
	if p.P < 1 || p.A < 1 || p.H < 0 {
		return fmt.Errorf("topology: invalid dragonfly params %+v", p)
	}
	g := p.G
	if g == 0 {
		g = p.A*p.H + 1
	}
	if g != 1 && g != p.A*p.H+1 {
		return fmt.Errorf("topology: dragonfly requires G = A*H+1 (=%d) or 1, got %d", p.A*p.H+1, g)
	}
	return nil
}

// Groups returns the resolved group count.
func (p DragonflyParams) Groups() int {
	if p.G != 0 {
		return p.G
	}
	return p.A*p.H + 1
}

// Chips returns the total number of terminal chips.
func (p DragonflyParams) Chips() int { return p.P * p.A * p.Groups() }

// Dragonfly is a built switch-based Dragonfly with its wiring tables.
type Dragonfly struct {
	Net    *netsim.Network
	Params DragonflyParams

	// Switches[w][s] is the switch router of group w, index s.
	Switches [][]netsim.NodeID
	// NICs[chip] is the terminal router of each chip.
	NICs []netsim.NodeID
	// nicUp[chip] is the NIC output port toward its switch.
	nicUp []int
	// termPort[w][s][t] is switch (w,s)'s output port toward terminal t.
	termPort [][][]int
	// localPort[w][s][s2] is switch (w,s)'s output port toward switch s2
	// of the same group (-1 for s2 == s).
	localPort [][][]int
	// globalPort[w][s][k] is switch (w,s)'s k-th global output port.
	globalPort [][][]int
}

// globalTarget returns the peer group of group w's global channel G under
// the relative ("palmtree") arrangement, and the peer's channel index.
func globalTarget(w, G, g, channels int) (peerGroup, peerChannel int) {
	peerGroup = (w + G + 1) % g
	peerChannel = channels - 1 - G
	return
}

// ChipLocation maps a chip to (group, switch, terminal) under the builder's
// numbering: chip = (w*A + s)*P + t.
func (p DragonflyParams) ChipLocation(chip int32) (w, s, t int) {
	t = int(chip) % p.P
	sw := int(chip) / p.P
	s = sw % p.A
	w = sw / p.A
	return
}

// BuildDragonfly constructs the network. Terminal and local links use the
// Local class; global links use the Global class.
func BuildDragonfly(params DragonflyParams, classes LinkClasses, opts netsim.NetworkOptions) (*Dragonfly, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	g := params.Groups()
	a, p, h := params.A, params.P, params.H

	b := netsim.NewBuilder()
	df := &Dragonfly{Params: params}
	df.Switches = make([][]netsim.NodeID, g)
	df.termPort = make([][][]int, g)
	df.localPort = make([][][]int, g)
	df.globalPort = make([][][]int, g)
	df.NICs = make([]netsim.NodeID, params.Chips())
	df.nicUp = make([]int, params.Chips())

	// Switches and their terminals.
	for w := 0; w < g; w++ {
		df.Switches[w] = make([]netsim.NodeID, a)
		df.termPort[w] = make([][]int, a)
		df.localPort[w] = make([][]int, a)
		df.globalPort[w] = make([][]int, a)
		for s := 0; s < a; s++ {
			sw := b.AddRouter(netsim.KindSwitch)
			r := b.Router(sw)
			r.WGroup = int32(w)
			r.CGroup = int32(s)
			// Sec. V-A4: "all the switches are modeled as single ideal
			// high-radix routers".
			r.Ideal = true
			df.Switches[w][s] = sw
			df.termPort[w][s] = make([]int, p)
			df.localPort[w][s] = make([]int, a)
			df.globalPort[w][s] = make([]int, h)
			for t := 0; t < p; t++ {
				chip := int32((w*a+s)*p + t)
				nic := b.AddRouter(netsim.KindNIC)
				nr := b.Router(nic)
				nr.WGroup = int32(w)
				nr.CGroup = int32(s)
				nr.Chip = chip
				b.AddTerminal(nic, chip, 0)
				up, down := b.ConnectBidi(nic, sw, classes.Local)
				df.NICs[chip] = nic
				df.nicUp[chip] = up
				df.termPort[w][s][t] = down
			}
		}
	}

	// Local all-to-all within each group.
	for w := 0; w < g; w++ {
		for s := 0; s < a; s++ {
			df.localPort[w][s][s] = -1
			for s2 := s + 1; s2 < a; s2++ {
				o1, o2 := b.ConnectBidi(df.Switches[w][s], df.Switches[w][s2], classes.Local)
				df.localPort[w][s][s2] = o1
				df.localPort[w][s2][s] = o2
			}
		}
	}

	// Global wiring (relative arrangement), only when g > 1.
	if g > 1 {
		channels := a * h
		for w := 0; w < g; w++ {
			for G := 0; G < channels; G++ {
				// Each undirected link is created once, from the lower-index
				// group endpoint.
				w2, G2 := globalTarget(w, G, g, channels)
				if w >= w2 {
					continue
				}
				s1, k1 := G/h, G%h
				s2, k2 := G2/h, G2%h
				o1, o2 := b.ConnectBidi(df.Switches[w][s1], df.Switches[w2][s2], classes.Global)
				df.globalPort[w][s1][k1] = o1
				df.globalPort[w2][s2][k2] = o2
			}
		}
	}

	net, err := b.Finalize(opts)
	if err != nil {
		return nil, err
	}
	df.Net = net
	return df, nil
}

// GlobalOwner returns, for a packet in group w that must reach group wd, the
// switch index and global port index owning the direct channel w→wd.
func (df *Dragonfly) GlobalOwner(w, wd int) (s, k int) {
	g := df.Params.Groups()
	o := ((wd-w-1)%g + g) % g
	return o / df.Params.H, o % df.Params.H
}

// NICUplink returns the NIC output port of chip toward its switch.
func (df *Dragonfly) NICUplink(chip int32) int { return df.nicUp[chip] }

// TermPort returns switch (w,s)'s output port toward its terminal t.
func (df *Dragonfly) TermPort(w, s, t int) int { return df.termPort[w][s][t] }

// LocalPort returns switch (w,s)'s output port toward switch s2 of the same
// group.
func (df *Dragonfly) LocalPort(w, s, s2 int) int { return df.localPort[w][s][s2] }

// GlobalPortIdx returns switch (w,s)'s k-th global output port.
func (df *Dragonfly) GlobalPortIdx(w, s, k int) int { return df.globalPort[w][s][k] }
