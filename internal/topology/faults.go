package topology

import (
	"fmt"
	"sort"

	"sldf/internal/engine"
	"sldf/internal/netsim"
)

// FaultSpec describes component failures to inject into a freshly built
// network: defective dies (routers) and broken channels (cut cables, dead
// SR-LR conversion modules). Faults are deterministic: the same spec
// applied to the same topology always disables the same components,
// regardless of worker count or cycle engine.
//
// Fraction-based sampling draws from the topology's FaultDomain — the set
// of components whose loss the topology can in principle route around
// (mesh channels, local/global cables, SR-LR port modules, cores of
// multi-core chips). Explicit Links/Routers may name any component; specs
// that kill every terminal of a chip are rejected at apply time
// (netsim.ErrDeadChip), and specs that disconnect the surviving network
// are rejected by the fault-aware routing constructors
// (routing.ErrPartitioned).
type FaultSpec struct {
	// Seed drives the sampling of fraction-based faults. Two specs with the
	// same fractions but different seeds fail different components.
	Seed uint64
	// LinkFraction in [0, 1] disables that fraction of the domain's
	// channels. Both directions of a bidirectional channel fail together,
	// like a cut cable.
	LinkFraction float64
	// RouterFraction in [0, 1] disables that fraction of the domain's
	// eligible routers (with every incident link).
	RouterFraction float64
	// Links lists explicit link IDs to disable, in addition to sampling.
	Links []int32
	// Routers lists explicit router IDs to disable, in addition to
	// sampling.
	Routers []netsim.NodeID
}

// Empty reports whether the spec injects no faults at all. Building with
// an empty spec is bitwise identical to building without one.
func (f FaultSpec) Empty() bool {
	return f.LinkFraction == 0 && f.RouterFraction == 0 &&
		len(f.Links) == 0 && len(f.Routers) == 0
}

// Validate rejects out-of-range fractions.
func (f FaultSpec) Validate() error {
	if f.LinkFraction < 0 || f.LinkFraction > 1 {
		return fmt.Errorf("topology: LinkFraction %g outside [0, 1]", f.LinkFraction)
	}
	if f.RouterFraction < 0 || f.RouterFraction > 1 {
		return fmt.Errorf("topology: RouterFraction %g outside [0, 1]", f.RouterFraction)
	}
	return nil
}

// FaultDomain lists the components of a built topology that are eligible
// for fraction-based fault sampling.
type FaultDomain struct {
	// Channels are bidirectional link pairs {forward ID, reverse ID} that
	// fail as a unit.
	Channels [][2]int32
	// Routers are individually failable routers.
	Routers []netsim.NodeID
}

// Resolve expands the spec against a fault domain into explicit router and
// link sets, deterministically for a given Seed. Channel and router
// candidates are shuffled by independent seeded streams and the first
// round(fraction·len) entries fail; explicit Links/Routers are appended.
func (f FaultSpec) Resolve(d FaultDomain) (routers []netsim.NodeID, links []int32) {
	if k := sampleCount(f.LinkFraction, len(d.Channels)); k > 0 {
		order := samplePerm(f.Seed, 0, len(d.Channels))
		for _, idx := range order[:k] {
			ch := d.Channels[idx]
			links = append(links, ch[0], ch[1])
		}
	}
	if k := sampleCount(f.RouterFraction, len(d.Routers)); k > 0 {
		order := samplePerm(f.Seed, 1, len(d.Routers))
		for _, idx := range order[:k] {
			routers = append(routers, d.Routers[idx])
		}
	}
	links = append(links, f.Links...)
	routers = append(routers, f.Routers...)
	return routers, links
}

// sampleCount rounds fraction·n to the nearest integer, clamped to [0, n].
func sampleCount(fraction float64, n int) int {
	if fraction <= 0 || n == 0 {
		return 0
	}
	k := int(fraction*float64(n) + 0.5)
	if k > n {
		k = n
	}
	return k
}

// samplePerm returns a seeded permutation of [0, n).
func samplePerm(seed, stream uint64, n int) []int32 {
	rng := engine.NewRNGStream(seed^0xFA017, stream)
	out := make([]int32, n)
	rng.Perm(out)
	return out
}

// channelPairs pairs up opposite-direction links of a network: for every
// link src→dst with src < dst whose reverse dst→src exists and satisfies
// keep, a {forward, reverse} channel is emitted in forward-ID order.
func channelPairs(net *netsim.Network, keep func(l *netsim.Link) bool) [][2]int32 {
	type ends struct{ src, dst netsim.NodeID }
	reverse := make(map[ends]int32)
	for i := range net.Links {
		l := &net.Links[i]
		if keep == nil || keep(l) {
			reverse[ends{l.Src, l.Dst}] = l.ID
		}
	}
	var out [][2]int32
	for i := range net.Links {
		l := &net.Links[i]
		if l.Src >= l.Dst || (keep != nil && !keep(l)) {
			continue
		}
		if rev, ok := reverse[ends{l.Dst, l.Src}]; ok {
			out = append(out, [2]int32{l.ID, rev})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// multiCoreTerminals returns the terminal routers of chips that have at
// least two terminals (losing one keeps the chip addressable).
func multiCoreTerminals(net *netsim.Network) []netsim.NodeID {
	var out []netsim.NodeID
	for _, nodes := range net.ChipNodes {
		if len(nodes) < 2 {
			continue
		}
		out = append(out, nodes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FaultDomain returns the switch-less Dragonfly's samplable fault set:
// every mesh, local and global channel, every SR-LR port module, and every
// core of a multi-core chip.
func (s *SLDF) FaultDomain() FaultDomain {
	d := FaultDomain{
		// Core↔core mesh channels plus the long-reach local/global cables.
		// Core↔port SR stubs are excluded: their loss is equivalent to the
		// port module failing, which router sampling covers.
		Channels: channelPairs(s.Net, func(l *netsim.Link) bool {
			srcKind := s.Net.Router(l.Src).Kind
			dstKind := s.Net.Router(l.Dst).Kind
			switch l.Class {
			case netsim.HopOnChip, netsim.HopShortReach:
				return srcKind == netsim.KindCore && dstKind == netsim.KindCore
			default: // local / global cables
				return true
			}
		}),
		Routers: multiCoreTerminals(s.Net),
	}
	for i := range s.Net.Routers {
		if s.Net.Routers[i].Kind == netsim.KindPort {
			d.Routers = append(d.Routers, s.Net.Routers[i].ID)
		}
	}
	sort.Slice(d.Routers, func(i, j int) bool { return d.Routers[i] < d.Routers[j] })
	return d
}

// FaultDomain returns the switch-based Dragonfly's samplable fault set:
// the inter-switch local and global channels. Switches and NICs are single
// points of failure for their terminals and are not sampled.
func (df *Dragonfly) FaultDomain() FaultDomain {
	return FaultDomain{
		Channels: channelPairs(df.Net, func(l *netsim.Link) bool {
			return df.Net.Router(l.Src).Kind == netsim.KindSwitch &&
				df.Net.Router(l.Dst).Kind == netsim.KindSwitch
		}),
	}
}

// FaultDomain returns the standalone mesh C-group's samplable fault set:
// every mesh channel, and every core of a multi-core chip.
func (g *MeshCGroup) FaultDomain() FaultDomain {
	return FaultDomain{
		Channels: channelPairs(g.Net, nil),
		Routers:  multiCoreTerminals(g.Net),
	}
}

// FaultDomain returns the single switch's samplable fault set, which is
// empty: every component is a single point of failure.
func (s *SingleSwitch) FaultDomain() FaultDomain { return FaultDomain{} }

// componentClosure treats the prospective fault sets as applied and
// returns the candidate nodes lying outside the largest surviving
// connected component (over the undirected union of alive links between
// candidates). Ties go to the earliest-discovered component, i.e. the one
// containing the lowest router ID. The returned nodes are as good as dead
// — no usable path reaches them — and the caller adds them to the fault
// set so chips keep only genuinely reachable terminals.
func componentClosure(net *netsim.Network, candidates []netsim.NodeID, deadR map[netsim.NodeID]bool, deadL map[int32]bool) []netsim.NodeID {
	idx := make(map[netsim.NodeID]int32, len(candidates))
	for i, id := range candidates {
		idx[id] = int32(i)
	}
	linkOK := func(l *netsim.Link) bool {
		return l != nil && !l.Disabled && !deadL[l.ID] && !deadR[l.Src] && !deadR[l.Dst]
	}
	adj := make([][]int32, len(candidates))
	for i, id := range candidates {
		r := net.Router(id)
		for o := range r.Out {
			l := r.Out[o].Link
			if !linkOK(l) {
				continue
			}
			if j, ok := idx[l.Dst]; ok {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	comp := make([]int32, len(candidates))
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int32
	var queue []int32
	for i := range candidates {
		if comp[i] >= 0 {
			continue
		}
		c := int32(len(sizes))
		sizes = append(sizes, 0)
		comp[i] = c
		queue = append(queue[:0], int32(i))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			sizes[c]++
			for _, v := range adj[u] {
				if comp[v] < 0 {
					comp[v] = c
					queue = append(queue, v)
				}
			}
		}
	}
	main := int32(0)
	for c, sz := range sizes {
		if sz > sizes[main] {
			main = int32(c)
		}
	}
	var out []netsim.NodeID
	for i, id := range candidates {
		if comp[i] != main {
			out = append(out, id)
		}
	}
	return out
}

// toSets expands fault slices into lookups, folding router faults onto
// their incident links the way ApplyFaults will.
func toSets(net *netsim.Network, routers []netsim.NodeID, links []int32) (map[netsim.NodeID]bool, map[int32]bool) {
	deadR := make(map[netsim.NodeID]bool, len(routers))
	for _, id := range routers {
		deadR[id] = true
	}
	deadL := make(map[int32]bool, len(links))
	for _, id := range links {
		deadL[id] = true
	}
	return deadR, deadL
}

// FaultClosure returns the additional routers a prospective fault set
// effectively kills: for every C-group, the surviving cores and usable
// port modules outside the C-group's largest connected component. A core
// cut off from its C-group's port-connected mesh is unreachable no matter
// how the rest of the system routes, so the build treats it as failed —
// its chip stays addressable through the chip's surviving cores (or the
// spec is rejected with netsim.ErrDeadChip when none survive).
func (s *SLDF) FaultClosure(routers []netsim.NodeID, links []int32) []netsim.NodeID {
	deadR, deadL := toSets(s.Net, routers, links)
	alive := func(id netsim.NodeID) bool {
		return !deadR[id] && !s.Net.Router(id).Disabled
	}
	var out []netsim.NodeID
	g := s.Params.Groups()
	for w := 0; w < g; w++ {
		for c := 0; c < s.Params.AB; c++ {
			cg := &s.CGroups[w][c]
			var candidates []netsim.NodeID
			for y := range cg.Cores {
				for x := range cg.Cores[y] {
					if id := cg.Cores[y][x]; alive(id) {
						candidates = append(candidates, id)
					}
				}
			}
			port := func(p *PortInfo) {
				if !alive(p.Node) || !alive(p.AttachCore) {
					return
				}
				up := s.Net.Router(p.AttachCore).Out[p.CoreToPort].Link
				down := s.Net.Router(p.Node).Out[p.PortToCore].Link
				if up.Disabled || deadL[up.ID] || down.Disabled || deadL[down.ID] {
					return
				}
				candidates = append(candidates, p.Node)
			}
			for peer := range cg.LocalPorts {
				if peer != c {
					port(&cg.LocalPorts[peer])
				}
			}
			if g > 1 {
				for j := range cg.GlobalPorts {
					port(&cg.GlobalPorts[j])
				}
			}
			out = append(out, componentClosure(s.Net, candidates, deadR, deadL)...)
		}
	}
	return out
}

// FaultClosure returns the surviving mesh routers outside the largest
// connected component: a terminal cut off from the main mesh is as good
// as dead, and treating it so keeps the rest of the mesh routable.
func (g *MeshCGroup) FaultClosure(routers []netsim.NodeID, links []int32) []netsim.NodeID {
	deadR, deadL := toSets(g.Net, routers, links)
	var candidates []netsim.NodeID
	for i := range g.Net.Routers {
		r := &g.Net.Routers[i]
		if !deadR[r.ID] && !r.Disabled {
			candidates = append(candidates, r.ID)
		}
	}
	return componentClosure(g.Net, candidates, deadR, deadL)
}
