package topology

import (
	"reflect"
	"testing"

	"sldf/internal/netsim"
)

func TestFaultSpecEmptyAndValidate(t *testing.T) {
	if !(FaultSpec{}).Empty() {
		t.Fatal("zero spec not Empty")
	}
	for _, f := range []FaultSpec{
		{LinkFraction: 0.1},
		{RouterFraction: 0.1},
		{Links: []int32{3}},
		{Routers: []netsim.NodeID{2}},
	} {
		if f.Empty() {
			t.Fatalf("%+v reported Empty", f)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
	}
	for _, f := range []FaultSpec{{LinkFraction: -0.1}, {LinkFraction: 1.5}, {RouterFraction: 2}} {
		if err := f.Validate(); err == nil {
			t.Fatalf("%+v validated", f)
		}
	}
}

func TestFaultResolveDeterministicAndSeedSensitive(t *testing.T) {
	s, err := BuildSLDF(smallSLDF(LayoutPerimeter), DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	d := s.FaultDomain()
	if len(d.Channels) == 0 || len(d.Routers) == 0 {
		t.Fatalf("SLDF domain empty: %d channels, %d routers", len(d.Channels), len(d.Routers))
	}
	spec := FaultSpec{Seed: 42, LinkFraction: 0.2, RouterFraction: 0.1}
	r1, l1 := spec.Resolve(d)
	r2, l2 := spec.Resolve(d)
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(l1, l2) {
		t.Fatal("Resolve is not deterministic")
	}
	if len(l1) == 0 || len(r1) == 0 {
		t.Fatalf("Resolve sampled nothing: %d links, %d routers", len(l1), len(r1))
	}
	if len(l1)%2 != 0 {
		t.Fatalf("links must come in channel pairs, got %d", len(l1))
	}
	other := spec
	other.Seed = 43
	r3, l3 := other.Resolve(d)
	if reflect.DeepEqual(r1, r3) && reflect.DeepEqual(l1, l3) {
		t.Fatal("different seeds sampled identical fault sets")
	}
	// Explicit components ride along untouched.
	spec.Links = []int32{7}
	spec.Routers = []netsim.NodeID{1}
	r4, l4 := spec.Resolve(d)
	if l4[len(l4)-1] != 7 || r4[len(r4)-1] != 1 {
		t.Fatal("explicit faults not appended")
	}
}

func TestFaultDomainEligibility(t *testing.T) {
	// SLDF: every sampled channel must be core↔core or a long-reach cable;
	// every sampled router a port module or a core of a multi-core chip.
	s, err := BuildSLDF(smallSLDF(LayoutSouthNorth), DefaultLinkClasses(4, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Net.Close()
	d := s.FaultDomain()
	for _, ch := range d.Channels {
		fwd := s.Net.Links[ch[0]]
		rev := s.Net.Links[ch[1]]
		if fwd.Src != rev.Dst || fwd.Dst != rev.Src {
			t.Fatalf("channel %v is not an opposite-direction pair", ch)
		}
		if fwd.Class == netsim.HopOnChip || fwd.Class == netsim.HopShortReach {
			if s.Net.Router(fwd.Src).Kind != netsim.KindCore || s.Net.Router(fwd.Dst).Kind != netsim.KindCore {
				t.Fatalf("short channel %v touches a non-core router", ch)
			}
		}
	}
	for _, id := range d.Routers {
		r := s.Net.Router(id)
		if r.Kind == netsim.KindPort {
			continue
		}
		if r.Kind != netsim.KindCore || len(s.Net.ChipNodes[r.Chip]) < 2 {
			t.Fatalf("router %d (kind %v) is not safely failable", id, r.Kind)
		}
	}

	// Dragonfly: channels only, all inter-switch.
	df, err := BuildDragonfly(DragonflyParams{P: 2, A: 2, H: 1}, DefaultLinkClasses(2, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer df.Net.Close()
	dd := df.FaultDomain()
	if len(dd.Routers) != 0 {
		t.Fatalf("dragonfly domain samples routers: %v", dd.Routers)
	}
	if len(dd.Channels) == 0 {
		t.Fatal("dragonfly domain has no channels")
	}
	for _, ch := range dd.Channels {
		l := df.Net.Links[ch[0]]
		if df.Net.Router(l.Src).Kind != netsim.KindSwitch || df.Net.Router(l.Dst).Kind != netsim.KindSwitch {
			t.Fatalf("channel %v is not inter-switch", ch)
		}
	}

	// Single switch: nothing is redundant.
	sw, err := BuildSingleSwitch(4, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Net.Close()
	if dsw := sw.FaultDomain(); len(dsw.Channels) != 0 || len(dsw.Routers) != 0 {
		t.Fatalf("single-switch domain not empty: %+v", dsw)
	}

	// Mesh: all channels, cores only when chips keep a spare.
	g, err := BuildMeshCGroup(2, 2, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	dg := g.FaultDomain()
	if len(dg.Channels) != 24 { // 4x4 mesh: 2*4*3 = 24 bidirectional channels
		t.Fatalf("mesh domain has %d channels, want 24", len(dg.Channels))
	}
	if len(dg.Routers) != 16 {
		t.Fatalf("mesh domain has %d routers, want 16", len(dg.Routers))
	}
}

func TestFaultResolveFullFraction(t *testing.T) {
	g, err := BuildMeshCGroup(2, 2, DefaultLinkClasses(1, 1), opts())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	d := g.FaultDomain()
	_, links := FaultSpec{LinkFraction: 1}.Resolve(d)
	if len(links) != 2*len(d.Channels) {
		t.Fatalf("full fraction sampled %d links, want %d", len(links), 2*len(d.Channels))
	}
}
