package topology

import (
	"fmt"

	"sldf/internal/netsim"
)

// PortLayout selects where a C-group's external ports attach to the mesh
// perimeter.
type PortLayout uint8

const (
	// LayoutPerimeter distributes ports evenly around the whole perimeter in
	// label order (paper Fig. 6/9 style). Valid for the baseline VC scheme.
	LayoutPerimeter PortLayout = iota
	// LayoutSouthNorth attaches global ports along the south row (y=0) and
	// local ports along the north row (y=My-1). Required by the reduced-VC
	// scheme's restricted row-column-row routing (see routing package).
	LayoutSouthNorth
)

// SLDFParams sizes a switch-less Dragonfly on wafers.
//
// A C-group is a ChipCols×ChipRows array of chiplets, each chiplet an
// NoCDim×NoCDim mesh of cores, forming one (ChipCols·NoCDim)×(ChipRows·NoCDim)
// mesh. Each C-group has AB-1 local ports (one per peer C-group in its
// W-group) and H global ports. The system has G W-groups.
//
// The paper's evaluated configurations:
//
//	radix-16 class: {NoCDim:2, ChipCols:2, ChipRows:2, AB:8, H:5}  → g=41, 1312 chips
//	radix-32 class: {NoCDim:2, ChipCols:4, ChipRows:2, AB:16, H:9} → g=145, 18560 chips
type SLDFParams struct {
	NoCDim   int
	ChipCols int
	ChipRows int
	AB       int // C-groups per W-group (a·b in the paper)
	H        int // global ports per C-group
	G        int // W-groups; 0 selects the maximum AB*H+1; 1 = single W-group
	Layout   PortLayout
}

// Validate checks structural feasibility.
func (p SLDFParams) Validate() error {
	if p.NoCDim < 1 || p.ChipCols < 1 || p.ChipRows < 1 {
		return fmt.Errorf("topology: invalid SLDF chiplet dims %+v", p)
	}
	if p.ChipCols*p.NoCDim < 2 || p.ChipRows*p.NoCDim < 2 {
		return fmt.Errorf("topology: SLDF C-group mesh must be at least 2x2")
	}
	if p.AB < 1 {
		return fmt.Errorf("topology: AB = %d, must be >= 1", p.AB)
	}
	g := p.Groups()
	if g != 1 && g != p.AB*p.H+1 {
		return fmt.Errorf("topology: SLDF requires G = AB*H+1 (=%d) or 1, got %d",
			p.AB*p.H+1, p.G)
	}
	if g > 1 && p.H < 1 {
		return fmt.Errorf("topology: multi-W-group SLDF needs H >= 1")
	}
	return nil
}

// Groups returns the resolved W-group count.
func (p SLDFParams) Groups() int {
	if p.G != 0 {
		return p.G
	}
	return p.AB*p.H + 1
}

// MeshX and MeshY return the C-group mesh dimensions in routers.
func (p SLDFParams) MeshX() int { return p.ChipCols * p.NoCDim }

// MeshY returns the C-group mesh height in routers.
func (p SLDFParams) MeshY() int { return p.ChipRows * p.NoCDim }

// ChipsPerCGroup returns chiplets per C-group.
func (p SLDFParams) ChipsPerCGroup() int { return p.ChipCols * p.ChipRows }

// Chips returns the total chip (chiplet) count: N of paper Eq. 1.
func (p SLDFParams) Chips() int { return p.ChipsPerCGroup() * p.AB * p.Groups() }

// ExternalPorts returns k, the external port count per C-group.
func (p SLDFParams) ExternalPorts() int { return p.AB - 1 + p.H }

// PortInfo describes one external port (SR-LR conversion module) of a
// C-group: a two-port router hanging off a perimeter core.
type PortInfo struct {
	Node       netsim.NodeID // the KindPort router
	AttachCore netsim.NodeID // perimeter core it attaches to
	CoreToPort int           // out-port index on AttachCore toward Node
	PortToCore int           // out-port index on Node toward AttachCore
	PortExt    int           // out-port index on Node toward the external link
	// PeerW/PeerC identify the far end: for a local port, (own W-group,
	// peer C-group); for a global port, (peer W-group, peer C-group index).
	PeerW int32
	PeerC int32
}

// CGroupInfo holds the construction tables of one C-group instance.
type CGroupInfo struct {
	// Cores[y][x] is the core router at mesh coordinate (x, y).
	Cores [][]netsim.NodeID
	// LocalPorts[c2] is the port toward peer C-group c2 (self entry unused).
	LocalPorts []PortInfo
	// GlobalPorts[j] is the j-th global port (j in [0, H)).
	GlobalPorts []PortInfo
}

// SLDF is a built switch-less Dragonfly with all wiring tables.
type SLDF struct {
	Net    *netsim.Network
	Params SLDFParams

	// CGroups[w][c] describes C-group c of W-group w.
	CGroups [][]CGroupInfo
	// DirPort[router][dir] is the mesh out-port of a core in direction dir
	// (DirEast..DirSouth), -1 when absent or not a core.
	DirPort [][]int
}

// ChipsPer returns chips per C-group (convenience).
func (s *SLDF) ChipsPer() int { return s.Params.ChipsPerCGroup() }

// ChipLocation maps a chip ID to (W-group, C-group, chiplet index).
func (s *SLDF) ChipLocation(chip int32) (w, c, chiplet int) {
	per := s.Params.ChipsPerCGroup()
	chiplet = int(chip) % per
	cg := int(chip) / per
	c = cg % s.Params.AB
	w = cg / s.Params.AB
	return
}

// GlobalChannelOwner returns, within W-group w needing to reach W-group wd,
// the owning C-group index and global port index of the direct channel.
func (s *SLDF) GlobalChannelOwner(w, wd int) (c, j int) {
	g := s.Params.Groups()
	o := ((wd-w-1)%g + g) % g
	return o / s.Params.H, o % s.Params.H
}

// EntryCGroup returns the C-group index where traffic from W-group ws lands
// when it takes the direct global channel ws→w.
func (s *SLDF) EntryCGroup(ws, w int) int {
	channels := s.Params.AB * s.Params.H
	o := ((w-ws-1)%s.Params.Groups() + s.Params.Groups()) % s.Params.Groups()
	o2 := channels - 1 - o
	return o2 / s.Params.H
}

// perimeterSlots enumerates perimeter coordinates clockwise from (0,0):
// south row west→east, east column south→north, north row east→west, west
// column north→south.
func perimeterSlots(mx, my int) [][2]int {
	var out [][2]int
	for x := 0; x < mx; x++ {
		out = append(out, [2]int{x, 0})
	}
	for y := 1; y < my; y++ {
		out = append(out, [2]int{mx - 1, y})
	}
	for x := mx - 2; x >= 0; x-- {
		out = append(out, [2]int{x, my - 1})
	}
	for y := my - 2; y >= 1; y-- {
		out = append(out, [2]int{0, y})
	}
	return out
}

// portAttachCoords returns the mesh coordinates each of the k ports attaches
// to, in canonical port-label order: local ports to lower C-groups, global
// ports, local ports to higher C-groups (paper Property 2). c is the
// C-group's index within its W-group, used to split the local ports.
func (p SLDFParams) portAttachCoords(c int) [][2]int {
	k := p.ExternalPorts()
	mx, my := p.MeshX(), p.MeshY()
	coords := make([][2]int, 0, k)
	switch p.Layout {
	case LayoutSouthNorth:
		// Global ports spread over the south row; local ports over the
		// north row, both in label order.
		nLocal := p.AB - 1
		localX := func(i int) int {
			if nLocal <= 0 {
				return 0
			}
			return i * mx / nLocal
		}
		globalX := func(j int) int {
			if p.H <= 0 {
				return 0
			}
			return j * mx / p.H
		}
		for i := 0; i < c; i++ { // locals to lower C-groups
			coords = append(coords, [2]int{localX(i), my - 1})
		}
		for j := 0; j < p.H; j++ {
			coords = append(coords, [2]int{globalX(j), 0})
		}
		for i := c; i < nLocal; i++ { // locals to higher C-groups
			coords = append(coords, [2]int{localX(i), my - 1})
		}
	default: // LayoutPerimeter
		slots := perimeterSlots(mx, my)
		for j := 0; j < k; j++ {
			coords = append(coords, slots[j*len(slots)/k])
		}
	}
	return coords
}

// BuildSLDF constructs the full switch-less Dragonfly network.
func BuildSLDF(params SLDFParams, classes LinkClasses, opts netsim.NetworkOptions) (*SLDF, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	g := params.Groups()
	ab := params.AB
	mx, my := params.MeshX(), params.MeshY()
	chipsPer := params.ChipsPerCGroup()

	b := netsim.NewBuilder()
	s := &SLDF{Params: params}
	s.CGroups = make([][]CGroupInfo, g)

	// Pass 1: cores and intra-C-group meshes.
	for w := 0; w < g; w++ {
		s.CGroups[w] = make([]CGroupInfo, ab)
		for c := 0; c < ab; c++ {
			cg := &s.CGroups[w][c]
			cg.Cores = make([][]netsim.NodeID, my)
			for y := 0; y < my; y++ {
				cg.Cores[y] = make([]netsim.NodeID, mx)
				for x := 0; x < mx; x++ {
					id := b.AddRouter(netsim.KindCore)
					r := b.Router(id)
					r.X, r.Y = int16(x), int16(y)
					r.WGroup, r.CGroup = int32(w), int32(c)
					r.Label = int32(y*mx + x)
					chipletCol, chipletRow := x/params.NoCDim, y/params.NoCDim
					chiplet := chipletRow*params.ChipCols + chipletCol
					chip := int32((w*ab+c)*chipsPer + chiplet)
					b.AddTerminal(id, chip, 0)
					cg.Cores[y][x] = id
				}
			}
			addMeshLinks(b, cg.Cores, params.NoCDim, classes)
		}
	}

	// Pass 2: external port (SR-LR converter) nodes.
	wirePort := func(w, c int, attach [2]int) PortInfo {
		cg := &s.CGroups[w][c]
		core := cg.Cores[attach[1]][attach[0]]
		id := b.AddRouter(netsim.KindPort)
		r := b.Router(id)
		r.X, r.Y = int16(attach[0]), int16(attach[1])
		r.WGroup, r.CGroup = int32(w), int32(c)
		coreOut, _ := b.Connect(core, id, classes.SR)
		portOut, _ := b.Connect(id, core, classes.SR)
		return PortInfo{
			Node:       id,
			AttachCore: core,
			CoreToPort: coreOut,
			PortToCore: portOut,
			PortExt:    -1,
		}
	}
	for w := 0; w < g; w++ {
		for c := 0; c < ab; c++ {
			cg := &s.CGroups[w][c]
			coords := params.portAttachCoords(c)
			cg.LocalPorts = make([]PortInfo, ab)
			cg.GlobalPorts = make([]PortInfo, params.H)
			idx := 0
			for peer := 0; peer < c; peer++ {
				cg.LocalPorts[peer] = wirePort(w, c, coords[idx])
				idx++
			}
			if g > 1 {
				for j := 0; j < params.H; j++ {
					cg.GlobalPorts[j] = wirePort(w, c, coords[idx])
					idx++
				}
			} else {
				idx += params.H // single W-group: global ports left unbuilt
			}
			for peer := c + 1; peer < ab; peer++ {
				cg.LocalPorts[peer] = wirePort(w, c, coords[idx])
				idx++
			}
		}
	}

	// Pass 3: local all-to-all within each W-group.
	for w := 0; w < g; w++ {
		for c1 := 0; c1 < ab; c1++ {
			for c2 := c1 + 1; c2 < ab; c2++ {
				p1 := &s.CGroups[w][c1].LocalPorts[c2]
				p2 := &s.CGroups[w][c2].LocalPorts[c1]
				o1, _ := b.Connect(p1.Node, p2.Node, classes.Local)
				o2, _ := b.Connect(p2.Node, p1.Node, classes.Local)
				p1.PortExt, p2.PortExt = o1, o2
				p1.PeerW, p1.PeerC = int32(w), int32(c2)
				p2.PeerW, p2.PeerC = int32(w), int32(c1)
			}
		}
	}

	// Pass 4: global all-to-all between W-groups (relative arrangement).
	if g > 1 {
		channels := ab * params.H
		for w := 0; w < g; w++ {
			for G := 0; G < channels; G++ {
				w2, G2 := globalTarget(w, G, g, channels)
				if w >= w2 {
					continue
				}
				p1 := &s.CGroups[w][G/params.H].GlobalPorts[G%params.H]
				p2 := &s.CGroups[w2][G2/params.H].GlobalPorts[G2%params.H]
				o1, _ := b.Connect(p1.Node, p2.Node, classes.Global)
				o2, _ := b.Connect(p2.Node, p1.Node, classes.Global)
				p1.PortExt, p2.PortExt = o1, o2
				p1.PeerW, p1.PeerC = int32(w2), int32(G2/params.H)
				p2.PeerW, p2.PeerC = int32(w), int32(G/params.H)
			}
		}
	}

	net, err := b.Finalize(opts)
	if err != nil {
		return nil, err
	}
	s.Net = net

	// Direction tables for mesh routing.
	s.DirPort = make([][]int, len(net.Routers))
	for w := 0; w < g; w++ {
		for c := 0; c < ab; c++ {
			fillDirPorts(net, s.CGroups[w][c].Cores, s.DirPort)
		}
	}
	return s, nil
}

// fillDirPorts is buildDirPorts writing into a shared table.
func fillDirPorts(net *netsim.Network, nodes [][]netsim.NodeID, dp [][]int) {
	for y := range nodes {
		for x := range nodes[y] {
			id := nodes[y][x]
			r := net.Router(id)
			ports := []int{-1, -1, -1, -1}
			for o := range r.Out {
				l := r.Out[o].Link
				if l == nil {
					continue
				}
				d := net.Router(l.Dst)
				if d.Kind != netsim.KindCore || d.CGroup != r.CGroup || d.WGroup != r.WGroup {
					continue
				}
				switch {
				case d.X == r.X+1 && d.Y == r.Y:
					ports[DirEast] = o
				case d.X == r.X-1 && d.Y == r.Y:
					ports[DirWest] = o
				case d.Y == r.Y+1 && d.X == r.X:
					ports[DirNorth] = o
				case d.Y == r.Y-1 && d.X == r.X:
					ports[DirSouth] = o
				}
			}
			dp[id] = ports
		}
	}
}
