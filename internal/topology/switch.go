package topology

import (
	"fmt"

	"sldf/internal/netsim"
)

// SingleSwitch is a non-blocking switch with T terminal chips, each attached
// by one bidirectional channel — the "Switch" baseline of Fig. 10(a,b).
type SingleSwitch struct {
	Net    *netsim.Network
	Switch netsim.NodeID
	// NICs[c] is the terminal router of chip c.
	NICs []netsim.NodeID
	// UplinkPort[c] is the NIC's output port index toward the switch.
	UplinkPort []int
	// DownPort[c] is the switch's output port index toward chip c's NIC.
	DownPort []int
}

// BuildSingleSwitch constructs the single-switch system. Terminal links use
// the Local (long-reach) class, matching a chip-to-switch cable; vcs virtual
// channels are provisioned.
func BuildSingleSwitch(terminals int, classes LinkClasses, opts netsim.NetworkOptions) (*SingleSwitch, error) {
	if err := validatePositive("terminals", terminals, 2); err != nil {
		return nil, err
	}
	b := netsim.NewBuilder()
	sw := b.AddRouter(netsim.KindSwitch)
	b.Router(sw).Ideal = true // the paper models switches as ideal routers
	s := &SingleSwitch{
		Switch:     sw,
		NICs:       make([]netsim.NodeID, terminals),
		UplinkPort: make([]int, terminals),
		DownPort:   make([]int, terminals),
	}
	for c := 0; c < terminals; c++ {
		nic := b.AddRouter(netsim.KindNIC)
		b.Router(nic).Chip = int32(c)
		b.AddTerminal(nic, int32(c), 0)
		up, down := b.ConnectBidi(nic, sw, classes.Local)
		s.NICs[c] = nic
		s.UplinkPort[c] = up
		s.DownPort[c] = down
	}
	net, err := b.Finalize(opts)
	if err != nil {
		return nil, err
	}
	s.Net = net
	return s, nil
}

// Route returns the minimal routing function: NIC→switch→NIC, single VC.
func (s *SingleSwitch) Route() netsim.RouteFunc {
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		switch r.Kind {
		case netsim.KindNIC:
			if r.Chip == p.DstChip {
				return int(r.EjectOut), 0
			}
			return s.UplinkPort[r.Chip], 0
		default: // switch
			return s.DownPort[p.DstChip], 0
		}
	}
}

// MeshCGroup is a standalone wafer C-group: an M×M mesh of NoC routers where
// each chiplet contributes NoCDim×NoCDim routers — the "2D-Mesh" curve of
// Fig. 10(a,b). Chips (chiplets) tile the mesh in row-major chiplet order.
type MeshCGroup struct {
	Net    *netsim.Network
	M      int // mesh side in routers
	NoCDim int // routers per chiplet side
	// Nodes[y][x] is the router at mesh coordinate (x, y).
	Nodes [][]netsim.NodeID
	// Port indexes for mesh routing: port[dir] on router (x,y);
	// dirs: 0=+X(E) 1=-X(W) 2=+Y(N) 3=-Y(S); -1 when absent.
	DirPort [][]int
}

// Mesh directions.
const (
	DirEast = iota
	DirWest
	DirNorth
	DirSouth
)

// BuildMeshCGroup constructs a standalone C-group of (chipletDim×noCDim)²
// routers. Links inside a chiplet use the OnChip class; links crossing a
// chiplet boundary use the SR class.
func BuildMeshCGroup(chipletDim, noCDim int, classes LinkClasses, opts netsim.NetworkOptions) (*MeshCGroup, error) {
	if err := validatePositive("chipletDim", chipletDim, 1); err != nil {
		return nil, err
	}
	if err := validatePositive("noCDim", noCDim, 1); err != nil {
		return nil, err
	}
	m := chipletDim * noCDim
	if m < 2 {
		return nil, fmt.Errorf("topology: mesh side %d too small", m)
	}
	b := netsim.NewBuilder()
	g := &MeshCGroup{M: m, NoCDim: noCDim}
	g.Nodes = make([][]netsim.NodeID, m)
	for y := 0; y < m; y++ {
		g.Nodes[y] = make([]netsim.NodeID, m)
		for x := 0; x < m; x++ {
			id := b.AddRouter(netsim.KindCore)
			r := b.Router(id)
			r.X, r.Y = int16(x), int16(y)
			chipX, chipY := x/noCDim, y/noCDim
			chip := int32(chipY*chipletDim + chipX)
			b.AddTerminal(id, chip, 0)
			g.Nodes[y][x] = id
		}
	}
	addMeshLinks(b, g.Nodes, noCDim, classes)
	net, err := b.Finalize(opts)
	if err != nil {
		return nil, err
	}
	g.Net = net
	g.DirPort = buildDirPorts(net, g.Nodes)
	return g, nil
}

// addMeshLinks wires a (possibly rectangular) 2D mesh over nodes, choosing
// OnChip vs SR class by whether the link crosses a chiplet boundary of size
// noCDim. nodes is indexed [y][x].
func addMeshLinks(b *netsim.Builder, nodes [][]netsim.NodeID, noCDim int, classes LinkClasses) {
	my := len(nodes)
	for y := 0; y < my; y++ {
		mx := len(nodes[y])
		for x := 0; x < mx; x++ {
			if x+1 < mx {
				spec := classes.OnChip
				if (x+1)%noCDim == 0 {
					spec = classes.SR
				}
				b.ConnectBidi(nodes[y][x], nodes[y][x+1], spec)
			}
			if y+1 < my {
				spec := classes.OnChip
				if (y+1)%noCDim == 0 {
					spec = classes.SR
				}
				b.ConnectBidi(nodes[y][x], nodes[y+1][x], spec)
			}
		}
	}
}

// buildDirPorts scans each router's output links and maps them to mesh
// directions using coordinates. Index: DirPort[routerID][dir] = out port.
func buildDirPorts(net *netsim.Network, nodes [][]netsim.NodeID) [][]int {
	dp := make([][]int, len(net.Routers))
	for y := range nodes {
		for x := range nodes[y] {
			id := nodes[y][x]
			r := net.Router(id)
			ports := []int{-1, -1, -1, -1}
			for o := range r.Out {
				l := r.Out[o].Link
				if l == nil {
					continue
				}
				d := net.Router(l.Dst)
				switch {
				case d.X == r.X+1 && d.Y == r.Y:
					ports[DirEast] = o
				case d.X == r.X-1 && d.Y == r.Y:
					ports[DirWest] = o
				case d.Y == r.Y+1 && d.X == r.X:
					ports[DirNorth] = o
				case d.Y == r.Y-1 && d.X == r.X:
					ports[DirSouth] = o
				}
			}
			dp[id] = ports
		}
	}
	return dp
}

// RouteXY returns dimension-order (X-then-Y) routing on the standalone
// C-group, single VC, deadlock-free.
func (g *MeshCGroup) RouteXY() netsim.RouteFunc {
	return func(net *netsim.Network, r *netsim.Router, p *netsim.Packet) (int, uint8) {
		d := net.Router(p.DstNode)
		if d.ID == r.ID {
			return int(r.EjectOut), 0
		}
		dp := g.DirPort[r.ID]
		switch {
		case d.X > r.X:
			return dp[DirEast], 0
		case d.X < r.X:
			return dp[DirWest], 0
		case d.Y > r.Y:
			return dp[DirNorth], 0
		default:
			return dp[DirSouth], 0
		}
	}
}
