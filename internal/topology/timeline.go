package topology

import (
	"fmt"
	"strconv"
	"strings"

	"sldf/internal/engine"
	"sldf/internal/netsim"
)

// FaultTimeline describes in-run churn: components of a live network dying
// (and optionally coming back) at scheduled cycles. Like FaultSpec it is
// fully deterministic — the same timeline resolved against the same
// topology yields the same events at the same cycles, regardless of worker
// count or cycle engine.
//
// Fraction-based churn draws victims from the topology's FaultDomain
// (the components the fault-aware routers can route around) and spreads
// their death cycles uniformly over [Start, End); explicit Events ride
// along untouched. Zero knobs and no events with Armed=false is the empty
// timeline: builds are then bitwise identical to ones without the field.
type FaultTimeline struct {
	// Armed forces churn plumbing on even with no events: the build uses
	// fault-grade VC provisioning and fault-aware routing from cycle zero
	// and accepts programmatic mid-run injection (System.ApplyChipKill,
	// Network.InjectChurn). A zero-event armed timeline simulates bitwise
	// identically to the corresponding static faulted build.
	Armed bool
	// Seed drives victim sampling and death-cycle placement.
	Seed uint64
	// LinkChurn / RouterChurn in [0, 1] are the fractions of the fault
	// domain's channels / routers that die during the window. Both
	// directions of a channel die (and are repaired) together.
	LinkChurn   float64
	RouterChurn float64
	// Deaths are placed uniformly in [Start, End) (End <= Start collapses
	// to all deaths at Start).
	Start, End int64
	// Repair, when positive, schedules every sampled component's repair
	// that many cycles after its death; zero makes deaths permanent.
	Repair int64
	// Policy selects stranded-packet treatment (drop or retry-at-source).
	Policy netsim.DropPolicy
	// Events are explicit additional events (already in network component
	// IDs), merged with the sampled ones in canonical order.
	Events []netsim.TimedFault
}

// Empty reports whether the timeline changes nothing: no sampled churn, no
// explicit events, and not armed for programmatic injection.
func (t FaultTimeline) Empty() bool {
	return !t.Armed && t.LinkChurn == 0 && t.RouterChurn == 0 && len(t.Events) == 0
}

// Validate rejects out-of-range knobs.
func (t FaultTimeline) Validate() error {
	if t.LinkChurn < 0 || t.LinkChurn > 1 {
		return fmt.Errorf("topology: LinkChurn %g outside [0, 1]", t.LinkChurn)
	}
	if t.RouterChurn < 0 || t.RouterChurn > 1 {
		return fmt.Errorf("topology: RouterChurn %g outside [0, 1]", t.RouterChurn)
	}
	if t.Start < 0 || t.End < 0 {
		return fmt.Errorf("topology: churn window [%d, %d) has a negative bound", t.Start, t.End)
	}
	if t.Repair < 0 {
		return fmt.Errorf("topology: negative Repair %d", t.Repair)
	}
	for _, e := range t.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("topology: explicit churn event at negative cycle %d", e.Cycle)
		}
	}
	return nil
}

// Resolve expands the timeline against a fault domain into an explicit,
// canonically sorted event list. Victim sampling uses RNG streams 2
// (channels) and 3 (routers) — disjoint from FaultSpec's streams 0/1, so a
// build-time fault spec and a churn timeline with the same seed stay
// independent — and death-cycle placement uses streams 4/5.
func (t FaultTimeline) Resolve(d FaultDomain) []netsim.TimedFault {
	var events []netsim.TimedFault
	span := t.End - t.Start
	if k := sampleCount(t.LinkChurn, len(d.Channels)); k > 0 {
		order := samplePerm(t.Seed, 2, len(d.Channels))
		cycles := engine.NewRNGStream(t.Seed^0xFA017, 4)
		for _, idx := range order[:k] {
			at := t.Start
			if span > 0 {
				at += int64(cycles.Intn(int(span)))
			}
			ch := d.Channels[idx]
			events = append(events,
				netsim.LinkFault(at, ch[0], false),
				netsim.LinkFault(at, ch[1], false))
			if t.Repair > 0 {
				events = append(events,
					netsim.LinkFault(at+t.Repair, ch[0], true),
					netsim.LinkFault(at+t.Repair, ch[1], true))
			}
		}
	}
	if k := sampleCount(t.RouterChurn, len(d.Routers)); k > 0 {
		order := samplePerm(t.Seed, 3, len(d.Routers))
		cycles := engine.NewRNGStream(t.Seed^0xFA017, 5)
		for _, idx := range order[:k] {
			at := t.Start
			if span > 0 {
				at += int64(cycles.Intn(int(span)))
			}
			id := d.Routers[idx]
			events = append(events, netsim.RouterFault(at, id, false))
			if t.Repair > 0 {
				events = append(events, netsim.RouterFault(at+t.Repair, id, true))
			}
		}
	}
	events = append(events, t.Events...)
	netsim.SortTimedFaults(events)
	return events
}

// ParseChurn parses the CLI churn spec: comma-separated key=value pairs,
// e.g. "links=0.02,routers=0.01,seed=7,start=1000,end=5000,repair=2000,policy=retry".
// Keys: links, routers (fractions), seed, start, end, repair (cycles),
// policy (drop|retry). Explicit events ride along as tokens of the form
// [+-][LR]<id>@<cycle> — "-L12@300" kills link 12 at cycle 300, "+R5@900"
// repairs router 5 at cycle 900 — exactly what ChurnString emits, so every
// rendered timeline parses back. An empty spec returns the empty timeline.
func ParseChurn(spec string) (FaultTimeline, error) {
	t := FaultTimeline{Seed: 1}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return FaultTimeline{}, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if len(kv) >= 2 && (kv[0] == '+' || kv[0] == '-') && (kv[1] == 'L' || kv[1] == 'R') {
			ev, err := parseChurnEvent(kv)
			if err != nil {
				return t, err
			}
			t.Events = append(t.Events, ev)
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return t, fmt.Errorf("churn: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "links":
			t.LinkChurn, err = strconv.ParseFloat(val, 64)
		case "routers":
			t.RouterChurn, err = strconv.ParseFloat(val, 64)
		case "seed":
			t.Seed, err = strconv.ParseUint(val, 10, 64)
		case "start":
			t.Start, err = strconv.ParseInt(val, 10, 64)
		case "end":
			t.End, err = strconv.ParseInt(val, 10, 64)
		case "repair":
			t.Repair, err = strconv.ParseInt(val, 10, 64)
		case "policy":
			switch val {
			case "drop":
				t.Policy = netsim.DropInFlight
			case "retry":
				t.Policy = netsim.RetrySource
			default:
				return t, fmt.Errorf("churn: unknown policy %q (drop|retry)", val)
			}
		default:
			return t, fmt.Errorf("churn: unknown key %q", key)
		}
		if err != nil {
			return t, fmt.Errorf("churn: bad value for %s: %v", key, err)
		}
	}
	t.Armed = true
	if err := t.Validate(); err != nil {
		return t, err
	}
	return t, nil
}

// parseChurnEvent parses one explicit event token [+-][LR]<id>@<cycle>
// (ChurnString's rendering): op + is a repair, - a death; L a link ID, R a
// router ID.
func parseChurnEvent(tok string) (netsim.TimedFault, error) {
	idStr, cycStr, ok := strings.Cut(tok[2:], "@")
	if !ok {
		return netsim.TimedFault{}, fmt.Errorf("churn: event %q is not [+-][LR]<id>@<cycle>", tok)
	}
	id, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		return netsim.TimedFault{}, fmt.Errorf("churn: bad event ID in %q: %v", tok, err)
	}
	cycle, err := strconv.ParseInt(cycStr, 10, 64)
	if err != nil {
		return netsim.TimedFault{}, fmt.Errorf("churn: bad event cycle in %q: %v", tok, err)
	}
	repair := tok[0] == '+'
	if tok[1] == 'L' {
		return netsim.LinkFault(cycle, int32(id), repair), nil
	}
	return netsim.RouterFault(cycle, netsim.NodeID(id), repair), nil
}

// ChurnString renders the timeline back into ParseChurn's format (used by
// cache keys); the empty timeline renders as "".
//
//sldf:cachekey FaultTimeline
//sldf:cachekey netsim.TimedFault
func (t FaultTimeline) ChurnString() string {
	if t.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "links=%g,routers=%g,seed=%d,start=%d,end=%d,repair=%d,policy=%s",
		t.LinkChurn, t.RouterChurn, t.Seed, t.Start, t.End, t.Repair, t.Policy)
	for _, e := range t.Events {
		kind, id := "L", int64(e.Link)
		if e.Router >= 0 {
			kind, id = "R", int64(e.Router)
		}
		op := "-"
		if e.Repair {
			op = "+"
		}
		fmt.Fprintf(&b, ",%s%s%d@%d", op, kind, id, e.Cycle)
	}
	return b.String()
}
