package topology

import (
	"math/rand"
	"reflect"
	"testing"

	"sldf/internal/netsim"
)

// randTimeline draws a valid armed timeline: every knob in range, explicit
// events included — the full surface ChurnString renders.
func randTimeline(r *rand.Rand) FaultTimeline {
	tl := FaultTimeline{
		Armed:       true,
		Seed:        r.Uint64(),
		LinkChurn:   float64(r.Intn(101)) / 100,
		RouterChurn: float64(r.Intn(101)) / 100,
		Start:       int64(r.Intn(10000)),
		Repair:      int64(r.Intn(5000)),
	}
	tl.End = tl.Start + int64(r.Intn(10000))
	if r.Intn(2) == 0 {
		tl.Policy = netsim.RetrySource
	}
	for n := r.Intn(6); n > 0; n-- {
		cycle := int64(r.Intn(20000))
		id := int32(r.Intn(1000))
		repair := r.Intn(2) == 0
		if r.Intn(2) == 0 {
			tl.Events = append(tl.Events, netsim.LinkFault(cycle, id, repair))
		} else {
			tl.Events = append(tl.Events, netsim.RouterFault(cycle, netsim.NodeID(id), repair))
		}
	}
	return tl
}

// TestChurnStringRoundTrip pins the CLI churn grammar: ParseChurn is the
// exact inverse of ChurnString over randomized valid timelines, explicit
// event tokens ([+-][LR]<id>@<cycle>) included. This is the property that
// makes ChurnString-based cache keys and logged timelines replayable
// through the -churn flags.
func TestChurnStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(0x5EED))
	for i := 0; i < 1000; i++ {
		tl := randTimeline(r)
		spec := tl.ChurnString()
		got, err := ParseChurn(spec)
		if err != nil {
			t.Fatalf("ParseChurn(%q): %v", spec, err)
		}
		if !reflect.DeepEqual(got, tl) {
			t.Fatalf("round trip lost information:\n spec %q\n want %+v\n got  %+v", spec, tl, got)
		}
	}
}

// FuzzParseChurn feeds arbitrary specs through the parser; whatever parses
// must render (ChurnString) and re-parse to the identical timeline. Crashes
// and render/re-parse drift both count as failures.
func FuzzParseChurn(f *testing.F) {
	f.Add("")
	f.Add("links=0.02,seed=7,start=2000,end=8000,repair=2000,policy=retry")
	f.Add("routers=0.5,policy=drop")
	f.Add("-L12@300")
	f.Add("+R5@900")
	f.Add("links=0.1,-L3@5,+R2@9,seed=3")
	f.Fuzz(func(t *testing.T, spec string) {
		tl, err := ParseChurn(spec)
		if err != nil {
			return // rejected specs only need to not crash
		}
		rendered := tl.ChurnString()
		got, err := ParseChurn(rendered)
		if err != nil {
			t.Fatalf("accepted spec %q rendered unparseable %q: %v", spec, rendered, err)
		}
		if tl.Empty() {
			if !got.Empty() {
				t.Fatalf("empty timeline re-parsed non-empty from %q", rendered)
			}
			return
		}
		if !reflect.DeepEqual(got, tl) {
			t.Fatalf("render/re-parse drift:\n spec %q -> %+v\n rendered %q -> %+v",
				spec, tl, rendered, got)
		}
	})
}
