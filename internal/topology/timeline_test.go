package topology

import (
	"reflect"
	"testing"

	"sldf/internal/netsim"
)

func TestTimelineEmptyAndValidate(t *testing.T) {
	if !(FaultTimeline{}).Empty() {
		t.Error("zero timeline not empty")
	}
	for _, tl := range []FaultTimeline{
		{Armed: true},
		{LinkChurn: 0.1},
		{RouterChurn: 0.1},
		{Events: []netsim.TimedFault{netsim.RouterFault(1, 0, false)}},
	} {
		if tl.Empty() {
			t.Errorf("%+v reported empty", tl)
		}
	}
	for _, tl := range []FaultTimeline{
		{LinkChurn: -0.1},
		{LinkChurn: 1.5},
		{RouterChurn: 2},
		{Start: -1},
		{End: -5},
		{Repair: -1},
		{Events: []netsim.TimedFault{netsim.LinkFault(-3, 0, false)}},
	} {
		if tl.Validate() == nil {
			t.Errorf("%+v passed validation", tl)
		}
	}
	if err := (FaultTimeline{LinkChurn: 0.5, Start: 10, End: 20, Repair: 5}).Validate(); err != nil {
		t.Errorf("valid timeline rejected: %v", err)
	}
}

func TestTimelineResolveDeterministicAndSorted(t *testing.T) {
	// A real fault domain: the mesh exposes every channel plus the spare
	// terminals of multi-core chips.
	g, err := BuildMeshCGroup(4, 2, DefaultLinkClasses(1, 1), netsim.NetworkOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	d := g.FaultDomain()
	if len(d.Channels) == 0 {
		t.Fatal("mesh fault domain has no channels")
	}
	tl := FaultTimeline{Seed: 9, LinkChurn: 0.25, RouterChurn: 0.5, Start: 100, End: 500, Repair: 300}
	a := tl.Resolve(d)
	b := tl.Resolve(d)
	if len(a) == 0 {
		t.Fatal("nothing resolved")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Resolve is not deterministic")
	}
	// Canonical order: non-decreasing cycle; deaths before repairs at equal
	// cycles.
	for i := 1; i < len(a); i++ {
		if a[i].Cycle < a[i-1].Cycle {
			t.Fatalf("events unsorted at %d: %+v after %+v", i, a[i], a[i-1])
		}
		if a[i].Cycle == a[i-1].Cycle && a[i-1].Repair && !a[i].Repair {
			t.Fatalf("repair before death at cycle %d", a[i].Cycle)
		}
	}
	// Window and repair pairing: every death inside [Start, End), every
	// death matched by a repair exactly Repair cycles later on the same
	// component.
	repairs := map[netsim.TimedFault]bool{}
	for _, e := range a {
		if e.Repair {
			repairs[netsim.TimedFault{Cycle: e.Cycle, Router: e.Router, Link: e.Link}] = true
		}
	}
	deaths := 0
	for _, e := range a {
		if e.Repair {
			continue
		}
		deaths++
		if e.Cycle < tl.Start || e.Cycle >= tl.End {
			t.Fatalf("death at %d outside [%d, %d)", e.Cycle, tl.Start, tl.End)
		}
		if !repairs[netsim.TimedFault{Cycle: e.Cycle + tl.Repair, Router: e.Router, Link: e.Link}] {
			t.Fatalf("death %+v has no repair %d cycles later", e, tl.Repair)
		}
	}
	if deaths == 0 {
		t.Fatal("no deaths resolved")
	}
	// Channel deaths take both directions down at the same cycle.
	linkDeaths := map[int64][]int32{}
	for _, e := range a {
		if !e.Repair && e.Link >= 0 {
			linkDeaths[e.Cycle] = append(linkDeaths[e.Cycle], e.Link)
		}
	}
	for cycle, links := range linkDeaths {
		if len(links)%2 != 0 {
			t.Fatalf("odd number of link deaths at cycle %d: %v (channel directions must die together)", cycle, links)
		}
	}
	// A different seed draws different victims or cycles.
	tl2 := tl
	tl2.Seed = 10
	if reflect.DeepEqual(a, tl2.Resolve(d)) {
		t.Fatal("seed change did not change resolution")
	}
	// Explicit events ride along in canonical position.
	tl3 := tl
	tl3.Events = []netsim.TimedFault{netsim.RouterFault(0, 0, false)}
	c := tl3.Resolve(d)
	if len(c) != len(a)+1 || c[0].Cycle != 0 {
		t.Fatalf("explicit cycle-0 event not first: %+v", c[0])
	}
}

func TestTimelineResolveCollapsedWindow(t *testing.T) {
	g, err := BuildMeshCGroup(4, 2, DefaultLinkClasses(1, 1), netsim.NetworkOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Net.Close()
	tl := FaultTimeline{Seed: 3, LinkChurn: 0.1, Start: 42, End: 42}
	for _, e := range tl.Resolve(g.FaultDomain()) {
		if e.Cycle != 42 {
			t.Fatalf("collapsed window placed an event at %d", e.Cycle)
		}
	}
}

func TestParseChurnRoundTrip(t *testing.T) {
	spec := "links=0.02,routers=0.01,seed=7,start=1000,end=5000,repair=2000,policy=retry"
	tl, err := ParseChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultTimeline{Armed: true, Seed: 7, LinkChurn: 0.02, RouterChurn: 0.01,
		Start: 1000, End: 5000, Repair: 2000, Policy: netsim.RetrySource}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("parsed %+v, want %+v", tl, want)
	}
	// ChurnString renders back to a spec that parses to the same timeline.
	back, err := ParseChurn(tl.ChurnString())
	if err != nil {
		t.Fatalf("re-parse %q: %v", tl.ChurnString(), err)
	}
	if !reflect.DeepEqual(back, tl) {
		t.Fatalf("round trip drifted: %+v -> %q -> %+v", tl, tl.ChurnString(), back)
	}
}

func TestParseChurnErrorsAndEmpty(t *testing.T) {
	if tl, err := ParseChurn("  "); err != nil || !tl.Empty() {
		t.Fatalf("blank spec: %+v, %v", tl, err)
	}
	for _, spec := range []string{
		"links",       // not key=value
		"bogus=1",     // unknown key
		"links=x",     // bad float
		"policy=yolo", // unknown policy
		"links=1.5",   // fails validation
		"start=-5",    // fails validation
		"repair=-1",   // fails validation
	} {
		if _, err := ParseChurn(spec); err == nil {
			t.Errorf("ParseChurn(%q) succeeded", spec)
		}
	}
	// Any non-blank spec arms the timeline, even without sampled churn:
	// "seed=5" means "build fault-grade, inject programmatically".
	tl, err := ParseChurn("seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Armed || tl.Empty() {
		t.Fatalf("knob-only spec not armed: %+v", tl)
	}
}

func TestChurnStringEmpty(t *testing.T) {
	if s := (FaultTimeline{}).ChurnString(); s != "" {
		t.Fatalf("empty timeline renders %q", s)
	}
	tl := FaultTimeline{Armed: true, Events: []netsim.TimedFault{
		netsim.RouterFault(100, 5, false),
		netsim.LinkFault(200, 3, true),
	}}
	want := "links=0,routers=0,seed=0,start=0,end=0,repair=0,policy=drop,-R5@100,+L3@200"
	if s := tl.ChurnString(); s != want {
		t.Fatalf("ChurnString = %q, want %q", s, want)
	}
}
