// Package topology builds the router/link graphs evaluated in the paper:
//
//   - a single non-blocking switch with attached terminals (the "Switch"
//     baseline of Fig. 10a-b),
//   - a standalone 2D-mesh C-group (the "2D-Mesh" curve of Fig. 10a-b),
//   - the switch-based Dragonfly (Kim et al.) baseline, and
//   - the switch-less Dragonfly on wafers (the paper's contribution).
//
// Builders return a metadata struct describing the constructed hierarchy;
// the routing package consumes this metadata to produce RouteFuncs.
//
// The package is declared deterministic: results feed figures, caches and
// the bitwise serial==parallel==cached equality contract, so sldfcheck
// flags map iteration, global RNG and wall-clock reads in non-test code.
//
//sldf:deterministic
package topology

import (
	"fmt"

	"sldf/internal/netsim"
)

// LinkClasses bundles the physical link specifications for each channel
// class. Defaults follow paper Table IV.
type LinkClasses struct {
	OnChip netsim.LinkSpec // within a chiplet
	SR     netsim.LinkSpec // on-wafer short-reach (between chiplets, core↔port)
	Local  netsim.LinkSpec // long-reach intra-W-group cable
	Global netsim.LinkSpec // long-reach inter-W-group cable
}

// DefaultLinkClasses returns Table IV link parameters with the given number
// of virtual channels on every link and an intra-C-group bandwidth
// multiplier (1 = paper's uniform bandwidth, 2 = "2B", 4 = "4B").
func DefaultLinkClasses(vcs uint8, intraWidth int32) LinkClasses {
	if intraWidth < 1 {
		intraWidth = 1
	}
	const buf = 32 // flits per VC (Table IV)
	return LinkClasses{
		OnChip: netsim.LinkSpec{Delay: 1, Width: intraWidth, Class: netsim.HopOnChip, VCs: vcs, BufFlits: buf},
		SR:     netsim.LinkSpec{Delay: 1, Width: intraWidth, Class: netsim.HopShortReach, VCs: vcs, BufFlits: buf},
		Local:  netsim.LinkSpec{Delay: 8, Width: 1, Class: netsim.HopLongLocal, VCs: vcs, BufFlits: buf},
		Global: netsim.LinkSpec{Delay: 8, Width: 1, Class: netsim.HopGlobal, VCs: vcs, BufFlits: buf},
	}
}

// validatePositive reports an error when v < min, used by builders.
func validatePositive(name string, v, min int) error {
	if v < min {
		return fmt.Errorf("topology: %s = %d, must be >= %d", name, v, min)
	}
	return nil
}
